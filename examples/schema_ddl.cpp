// Prints the storage schemas of all four evaluation layouts as DDL:
// the Table 1 column families (NoSQL-DWARF), the Table 3 families
// (NoSQL-Min), the Fig. 4 relational schema (MySQL-DWARF) and MySQL-Min.
// Every emitted statement parses back through the corresponding query
// language subset.

#include <iostream>

#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"
#include "nosql/database.h"
#include "sql/engine.h"

using namespace scdwarf;

namespace {

void PrintKeyspace(const nosql::Database& db, const std::string& keyspace,
                   const std::string& title) {
  std::cout << "-- " << title << "\n";
  std::cout << "CREATE KEYSPACE " << keyspace << ";\n";
  auto tables = db.ListTables(keyspace);
  if (!tables.ok()) return;
  for (const std::string& name : *tables) {
    auto table = db.GetTable(keyspace, name);
    if (!table.ok()) continue;
    std::cout << (*table)->schema().ToCqlDdl() << ";\n";
    for (const std::string& index : (*table)->schema().ToCreateIndexDdl()) {
      std::cout << index << ";\n";
    }
  }
  std::cout << "\n";
}

void PrintDatabase(const sql::SqlEngine& engine, const std::string& database,
                   const std::string& title) {
  std::cout << "-- " << title << "\n";
  std::cout << "CREATE DATABASE " << database << ";\n";
  auto tables = engine.ListTables(database);
  if (!tables.ok()) return;
  for (const std::string& name : *tables) {
    auto table = engine.GetTable(database, name);
    if (!table.ok()) continue;
    std::cout << (*table)->def().ToSqlDdl() << ";\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  nosql::Database dwarf_db;
  mapper::NoSqlDwarfMapper dwarf_mapper(&dwarf_db, "dwarfks");
  nosql::Database min_db;
  mapper::NoSqlMinMapper min_mapper(&min_db, "minks");
  sql::SqlEngine dwarf_engine;
  mapper::SqlDwarfMapper sql_dwarf_mapper(&dwarf_engine, "dwarfdb");
  sql::SqlEngine min_engine;
  mapper::SqlMinMapper sql_min_mapper(&min_engine, "mindb");
  for (const Status& status :
       {dwarf_mapper.EnsureSchema(), min_mapper.EnsureSchema(),
        sql_dwarf_mapper.EnsureSchema(), sql_min_mapper.EnsureSchema()}) {
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }

  PrintKeyspace(dwarf_db, "dwarfks", "NoSQL-DWARF (Table 1 column families)");
  PrintKeyspace(min_db, "minks", "NoSQL-Min (Table 3)");
  PrintDatabase(dwarf_engine, "dwarfdb", "MySQL-DWARF (Fig. 4 schema)");
  PrintDatabase(min_engine, "mindb", "MySQL-Min");
  return 0;
}
