// Multi-source smart-city fusion: the paper's introduction motivates cubes
// "fused from multiple sources" — bikes, car parks, air quality, auctions.
// This example builds one cube per feed (XML and JSON side by side) plus a
// fused city-activity cube with a Source dimension, then cross-queries them.

#include <iostream>

#include "citibikes/bike_feed.h"
#include "citibikes/other_feeds.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "etl/extractor.h"
#include "etl/pipeline.h"
#include "etl/tuple_mapper.h"

using namespace scdwarf;

namespace {

Result<dwarf::DwarfCube> BuildCarParkCube() {
  dwarf::CubeSchema schema("carparks",
                           {dwarf::DimensionSpec("Date"),
                            dwarf::DimensionSpec("Hour"),
                            dwarf::DimensionSpec("Zone"),
                            dwarf::DimensionSpec("CarPark")},
                           "free_spaces", dwarf::AggFn::kMin);
  SCD_ASSIGN_OR_RETURN(
      etl::TupleMapper mapper,
      etl::TupleMapper::Create(schema,
                               {{"updated", etl::Transform::kDate},
                                {"updated", etl::Transform::kHour},
                                {"zone"},
                                {"name"}},
                               "free_spaces"));
  SCD_ASSIGN_OR_RETURN(
      etl::XmlExtractor extractor,
      etl::XmlExtractor::Create(
          "carpark",
          {{"name", "name", etl::FieldScope::kRecord, true, ""},
           {"zone", "zone", etl::FieldScope::kRecord, true, ""},
           {"free_spaces", "free_spaces", etl::FieldScope::kRecord, true, ""},
           {"updated", "updated", etl::FieldScope::kRecord, true, ""}}));
  etl::CubePipeline pipeline(schema, std::move(mapper), std::move(extractor),
                             std::nullopt);
  citibikes::CarParkFeedGenerator feed(12, {2016, 1, 5, 6, 0, 0}, 1800, 11);
  for (int tick = 0; tick < 36; ++tick) {  // 6:00 .. 24:00, half-hourly
    SCD_RETURN_IF_ERROR(pipeline.ConsumeXml(feed.NextXml()));
  }
  return std::move(pipeline).Finish();
}

Result<dwarf::DwarfCube> BuildAirQualityCube() {
  dwarf::CubeSchema schema("air",
                           {dwarf::DimensionSpec("Date"),
                            dwarf::DimensionSpec("Hour"),
                            dwarf::DimensionSpec("Zone"),
                            dwarf::DimensionSpec("Site")},
                           "pm25_index", dwarf::AggFn::kMax);
  SCD_ASSIGN_OR_RETURN(
      etl::TupleMapper mapper,
      etl::TupleMapper::Create(schema,
                               {{"measured_at", etl::Transform::kDate},
                                {"measured_at", etl::Transform::kHour},
                                {"zone"},
                                {"site"}},
                               "index"));
  SCD_ASSIGN_OR_RETURN(
      etl::JsonExtractor extractor,
      etl::JsonExtractor::Create(
          "readings",
          {{"site", "site", etl::FieldScope::kRecord, true, ""},
           {"zone", "zone", etl::FieldScope::kRecord, true, ""},
           {"index", "index", etl::FieldScope::kRecord, true, ""},
           {"measured_at", "measured_at", etl::FieldScope::kRecord, true, ""}}));
  etl::CubePipeline pipeline(schema, std::move(mapper), std::nullopt,
                             std::move(extractor));
  citibikes::AirQualityFeedGenerator feed(8, {2016, 1, 5, 6, 0, 0}, 3600, 12);
  for (int tick = 0; tick < 18; ++tick) {
    SCD_RETURN_IF_ERROR(pipeline.ConsumeJson(feed.NextJson()));
  }
  return std::move(pipeline).Finish();
}

Result<dwarf::DwarfCube> BuildAuctionCube() {
  dwarf::CubeSchema schema("auctions",
                           {dwarf::DimensionSpec("Date"),
                            dwarf::DimensionSpec("Category"),
                            dwarf::DimensionSpec("SellerBand")},
                           "price", dwarf::AggFn::kSum);
  SCD_ASSIGN_OR_RETURN(
      etl::TupleMapper mapper,
      etl::TupleMapper::Create(schema,
                               {{"closed_at", etl::Transform::kDate},
                                {"category"},
                                {"seller_band"}},
                               "price"));
  SCD_ASSIGN_OR_RETURN(
      etl::XmlExtractor extractor,
      etl::XmlExtractor::Create(
          "lot", {{"category", "category", etl::FieldScope::kRecord, true, ""},
                  {"seller_band", "seller_band", etl::FieldScope::kRecord, true,
                   ""},
                  {"price", "price", etl::FieldScope::kRecord, true, ""},
                  {"closed_at", "closed_at", etl::FieldScope::kRecord, true,
                   ""}}));
  etl::CubePipeline pipeline(schema, std::move(mapper), std::move(extractor),
                             std::nullopt);
  citibikes::AuctionFeedGenerator feed({2016, 1, 5, 9, 0, 0}, 13);
  for (int batch = 0; batch < 12; ++batch) {
    SCD_RETURN_IF_ERROR(pipeline.ConsumeXml(feed.NextXml(25)));
  }
  return std::move(pipeline).Finish();
}

/// The fused cube: one COUNT cube over (Source, Zone, Hour) built from the
/// bikes and car-park feeds together — the "data cubes, fused from multiple
/// sources" of the abstract.
Result<dwarf::DwarfCube> BuildFusedActivityCube() {
  dwarf::CubeSchema schema("city_activity",
                           {dwarf::DimensionSpec("Source"),
                            dwarf::DimensionSpec("Zone"),
                            dwarf::DimensionSpec("Hour")},
                           "events", dwarf::AggFn::kCount);
  dwarf::DwarfBuilder builder(schema);

  citibikes::BikeFeedConfig bike_config;
  bike_config.num_stations = 20;
  bike_config.target_records = 600;
  bike_config.start = {2016, 1, 5, 0, 0, 0};
  citibikes::BikeFeedGenerator bikes(bike_config);
  SCD_ASSIGN_OR_RETURN(
      etl::XmlExtractor bike_extractor,
      etl::XmlExtractor::Create(
          "station",
          {{"area", "area", etl::FieldScope::kRecord, true, ""},
           {"last_update", "last_update", etl::FieldScope::kRecord, true, ""}}));
  while (bikes.HasNext()) {
    SCD_ASSIGN_OR_RETURN(std::vector<etl::FeedRecord> records,
                         bike_extractor.Extract(bikes.NextXml()));
    for (const etl::FeedRecord& record : records) {
      SCD_ASSIGN_OR_RETURN(std::string hour,
                           etl::ApplyTransform(etl::Transform::kHour,
                                               *record.Get("last_update")));
      SCD_RETURN_IF_ERROR(
          builder.AddTuple({"bikes", *record.Get("area"), hour}, 1));
    }
  }

  citibikes::CarParkFeedGenerator carparks(12, {2016, 1, 5, 0, 0, 0}, 1800, 11);
  SCD_ASSIGN_OR_RETURN(
      etl::XmlExtractor carpark_extractor,
      etl::XmlExtractor::Create(
          "carpark",
          {{"zone", "zone", etl::FieldScope::kRecord, true, ""},
           {"updated", "updated", etl::FieldScope::kRecord, true, ""}}));
  for (int tick = 0; tick < 30; ++tick) {
    SCD_ASSIGN_OR_RETURN(std::vector<etl::FeedRecord> records,
                         carpark_extractor.Extract(carparks.NextXml()));
    for (const etl::FeedRecord& record : records) {
      SCD_ASSIGN_OR_RETURN(
          std::string hour,
          etl::ApplyTransform(etl::Transform::kHour, *record.Get("updated")));
      SCD_RETURN_IF_ERROR(
          builder.AddTuple({"carparks", *record.Get("zone"), hour}, 1));
    }
  }
  return std::move(builder).Build();
}

void PrintRollup(const dwarf::DwarfCube& cube, const std::string& title,
                 const std::vector<size_t>& dims) {
  auto rows = dwarf::RollUp(cube, dims);
  if (!rows.ok()) {
    std::cerr << rows.status() << "\n";
    return;
  }
  std::cout << title << "\n";
  for (const dwarf::SliceRow& row : *rows) {
    std::cout << "  ";
    for (size_t i = 0; i < row.keys.size(); ++i) {
      if (i > 0) std::cout << " / ";
      std::cout << row.keys[i];
    }
    std::cout << " -> " << row.measure << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  auto carparks = BuildCarParkCube();
  auto air = BuildAirQualityCube();
  auto auctions = BuildAuctionCube();
  auto fused = BuildFusedActivityCube();
  for (const Status& status : {carparks.status(), air.status(),
                               auctions.status(), fused.status()}) {
    if (!status.ok()) {
      std::cerr << "cube construction failed: " << status << "\n";
      return 1;
    }
  }

  std::cout << "Built 4 cubes from 3 source formats:\n"
            << "  carparks (XML):  " << carparks->num_nodes() << " nodes\n"
            << "  air (JSON):      " << air->num_nodes() << " nodes\n"
            << "  auctions (XML):  " << auctions->num_nodes() << " nodes\n"
            << "  fused activity:  " << fused->num_nodes() << " nodes\n\n";

  PrintRollup(*carparks, "Minimum free car-park spaces by zone (MIN):", {2});
  PrintRollup(*air, "Worst PM2.5 index by zone (MAX):", {2});
  PrintRollup(*auctions, "Auction revenue by category (SUM):", {1});
  PrintRollup(*fused, "City activity records by source (COUNT):", {0});

  // A cross-source comparison: zone activity vs worst air quality.
  std::cout << "Zone report (activity events vs worst PM2.5):\n";
  auto activity = dwarf::RollUp(*fused, {1});
  if (activity.ok()) {
    for (const dwarf::SliceRow& row : *activity) {
      std::vector<std::optional<std::string>> query = {std::nullopt,
                                                       std::nullopt,
                                                       std::nullopt,
                                                       std::nullopt};
      query[2] = row.keys[0];
      auto pm25 = dwarf::PointQueryByName(*air, query);
      std::cout << "  " << row.keys[0] << ": " << row.measure << " events, "
                << (pm25.ok() ? "PM2.5 max " + std::to_string(*pm25)
                              : "no air sensor")
                << "\n";
    }
  }
  return 0;
}
