// End-to-end reproduction of the paper's pipeline: a bike-sharing XML feed
// is parsed into tuples, a DWARF cube is constructed, stored into the
// NoSQL-DWARF column families (Table 1), reloaded and queried.
//
// Usage: bikes_to_nosql [records] [data_dir]
//   records   number of station records to generate (default 2000)
//   data_dir  optional directory for an on-disk store (default: in-memory)

#include <cstdlib>
#include <iostream>

#include "citibikes/bike_feed.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "dwarf/query.h"
#include "etl/pipeline.h"
#include "mapper/dimension_table.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/cql.h"

using namespace scdwarf;

int main(int argc, char** argv) {
  uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  std::string data_dir = argc > 2 ? argv[2] : "";

  // 1. Generate the web feed.
  citibikes::BikeFeedConfig config;
  config.target_records = records;
  config.period_seconds = 7 * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);

  // 2. Stream it through the 8-dimension cube pipeline.
  auto pipeline = etl::MakeBikesXmlPipeline();
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  Stopwatch build_watch;
  while (feed.HasNext()) {
    Status status = pipeline->ConsumeXml(feed.NextXml());
    if (!status.ok()) {
      std::cerr << "pipeline error: " << status << "\n";
      return 1;
    }
  }
  auto cube = std::move(*pipeline).Finish();
  if (!cube.ok()) {
    std::cerr << "cube construction failed: " << cube.status() << "\n";
    return 1;
  }
  std::cout << "Consumed " << feed.documents_emitted() << " XML documents ("
            << FormatBytes(feed.bytes_emitted()) << ", "
            << FormatWithCommas(static_cast<int64_t>(records))
            << " station records) in " << build_watch.ElapsedMillis()
            << " ms\n";
  std::cout << "DWARF cube: " << cube->num_nodes() << " nodes, "
            << cube->stats().cell_count << " cells, "
            << cube->stats().coalesced_all_count
            << " coalesced ALL pointers\n\n";

  // 3. Store into the NoSQL-DWARF schema.
  nosql::Database memory_db;
  nosql::Database disk_db;
  nosql::Database* db = &memory_db;
  if (!data_dir.empty()) {
    auto opened = nosql::Database::Open(data_dir);
    if (!opened.ok()) {
      std::cerr << opened.status() << "\n";
      return 1;
    }
    disk_db = std::move(*opened);
    db = &disk_db;
  }
  mapper::NoSqlDwarfMapper cube_mapper(db, "dwarfks");
  Stopwatch store_watch;
  mapper::NoSqlStoreStats store_stats;
  auto schema_id = cube_mapper.Store(*cube, {}, &store_stats);
  if (!schema_id.ok()) {
    std::cerr << "store failed: " << schema_id.status() << "\n";
    return 1;
  }
  std::cout << "Stored as DWARF_Schema id " << *schema_id << " ("
            << store_stats.node_rows << " node rows, " << store_stats.cell_rows
            << " cell rows) in " << store_watch.ElapsedMillis() << " ms\n";
  std::cout << "Store size: " << FormatBytes(db->EstimateBytes()) << "\n\n";

  // Show the Fig. 3 transformation for one stored cell.
  auto sample = nosql::ExecuteCql(
      db, "SELECT id, key, measure, parentNode, leaf FROM dwarfks.dwarf_cell "
          "WHERE id = 2");
  if (sample.ok() && !sample->rows.empty()) {
    std::cout << "A stored DWARF_Cell row (cf. Fig. 3):\n"
              << sample->ToString() << "\n";
  }

  // 4. Rebuild the cube from the store (the bidirectional mapping) and
  //    verify it answers queries identically.
  Stopwatch load_watch;
  auto rebuilt = cube_mapper.Load(*schema_id);
  if (!rebuilt.ok()) {
    std::cerr << "load failed: " << rebuilt.status() << "\n";
    return 1;
  }
  std::cout << "Rebuilt the cube from the store in " << load_watch.ElapsedMillis()
            << " ms; structurally equal: "
            << (rebuilt->StructurallyEquals(*cube) ? "yes" : "NO") << "\n\n";

  // 5. Query: busiest weekday by total available bikes.
  auto rollup = dwarf::RollUp(*rebuilt, {2});
  if (rollup.ok()) {
    std::cout << "Total available bikes by weekday (from the rebuilt cube):\n";
    for (const dwarf::SliceRow& row : *rollup) {
      std::cout << "  " << row.keys[0] << ": " << row.measure << "\n";
    }
  }

  // 6. Dimension table (§4): the station catalog is stored next to the cube
  //    (DWARF_Cell.dimension_table_name = "Station" points here) and enriches
  //    query results with descriptive attributes.
  mapper::DimensionTable station_table("Station", {"area", "capacity"});
  for (const citibikes::Station& station : feed.stations()) {
    (void)station_table.AddRow(
        station.name,
        {Value::Text(station.area), Value::Int(station.capacity)});
  }
  mapper::DimensionTableStore dim_store(db, "dwarfks");
  if (Status stored_dim = dim_store.Store(station_table); !stored_dim.ok()) {
    std::cerr << "dimension table store failed: " << stored_dim << "\n";
    return 1;
  }
  auto by_station = dwarf::RollUp(*rebuilt, {5});
  if (by_station.ok() && !by_station->empty()) {
    const dwarf::SliceRow* busiest = &(*by_station)[0];
    for (const dwarf::SliceRow& row : *by_station) {
      if (row.measure > busiest->measure) busiest = &row;
    }
    auto loaded_dim = dim_store.Load("Station");
    std::cout << "\nBusiest station: " << busiest->keys[0] << " ("
              << busiest->measure << " bike-observations)";
    if (loaded_dim.ok()) {
      auto area = loaded_dim->LookupAttribute(busiest->keys[0], "area");
      auto capacity =
          loaded_dim->LookupAttribute(busiest->keys[0], "capacity");
      if (area.ok() && capacity.ok()) {
        std::cout << " — area " << area->ToDisplayString() << ", "
                  << capacity->ToDisplayString()
                  << " stands [from dimension table dim_station]";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
