// Quickstart: builds the paper's running example (Fig. 1 -> Fig. 2) and
// queries it. Mirrors the README's first code block.

#include <iostream>

#include "dwarf/builder.h"
#include "dwarf/query.h"

using namespace scdwarf;

int main() {
  // Fig. 1: tuples of the form (dimension_1, ..., dimension_n, measure).
  dwarf::CubeSchema schema(
      "stations",
      {dwarf::DimensionSpec("Country"), dwarf::DimensionSpec("City"),
       dwarf::DimensionSpec("Station", /*dimension_table=*/"Station")},
      "bikes", dwarf::AggFn::kSum);

  dwarf::DwarfBuilder builder(schema);
  struct InputTuple {
    const char* country;
    const char* city;
    const char* station;
    dwarf::Measure bikes;
  };
  const InputTuple input[] = {
      {"Ireland", "Dublin", "Fenian St", 3},
      {"Ireland", "Dublin", "Pearse St", 5},
      {"Ireland", "Cork", "Patrick St", 2},
      {"France", "Paris", "Bastille", 7},
  };
  std::cout << "Input tuples (Fig. 1):\n";
  for (const InputTuple& tuple : input) {
    std::cout << "  (" << tuple.country << ", " << tuple.city << ", "
              << tuple.station << ", " << tuple.bikes << ")\n";
    Status status =
        builder.AddTuple({tuple.country, tuple.city, tuple.station}, tuple.bikes);
    if (!status.ok()) {
      std::cerr << "AddTuple failed: " << status << "\n";
      return 1;
    }
  }

  auto cube = std::move(builder).Build();
  if (!cube.ok()) {
    std::cerr << "Build failed: " << cube.status() << "\n";
    return 1;
  }

  std::cout << "\nThe resulting DWARF cube (Fig. 2):\n"
            << cube->ToDebugString();

  const dwarf::CubeStats& stats = cube->stats();
  std::cout << "nodes: " << stats.node_count << ", cells: " << stats.cell_count
            << ", coalesced ALL pointers: " << stats.coalesced_all_count
            << "\n\n";

  // Point queries, including the precomputed ALL aggregates.
  auto report = [&](const char* label,
                    const std::vector<std::optional<std::string>>& keys) {
    auto result = dwarf::PointQueryByName(*cube, keys);
    std::cout << "  " << label << " = "
              << (result.ok() ? std::to_string(*result)
                              : result.status().ToString())
              << "\n";
  };
  std::cout << "Queries:\n";
  report("bikes(Ireland, Dublin, Fenian St)", {"Ireland", "Dublin", "Fenian St"});
  report("bikes(Ireland, ALL, ALL)        ", {"Ireland", std::nullopt, std::nullopt});
  report("bikes(ALL, ALL, ALL)            ",
         {std::nullopt, std::nullopt, std::nullopt});
  report("bikes(ALL, ALL, Patrick St)     ",
         {std::nullopt, std::nullopt, "Patrick St"});

  // A rollup over cities using the ALL sub-dwarfs.
  auto rollup = dwarf::RollUp(*cube, {1});
  if (rollup.ok()) {
    std::cout << "\nRoll-up by city:\n";
    for (const dwarf::SliceRow& row : *rollup) {
      std::cout << "  " << row.keys[0] << " -> " << row.measure << "\n";
    }
  }
  return 0;
}
