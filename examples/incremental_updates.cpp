// Incremental cube maintenance + dimensional hierarchies — the paper's §7
// future work ("Our current focus is on cube updates") and the §6 extension
// it sketches (hierarchical DWARFs after Sismanis et al. [11]).
//
// A bike feed arrives in hourly batches. Each batch is merged into the
// standing cube with CubeUpdater, the updated cube is re-stored into the
// NoSQL-DWARF schema, and a City > Area > Station hierarchy answers
// ROLLUP / DRILL DOWN questions after every merge.

#include <iostream>

#include "citibikes/bike_feed.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "dwarf/hierarchy.h"
#include "dwarf/update.h"
#include "etl/extractor.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"

using namespace scdwarf;

namespace {

/// (Area, Station) cube with SUM(available_bikes).
dwarf::CubeSchema Schema() {
  return dwarf::CubeSchema(
      "bikes", {dwarf::DimensionSpec("Area"), dwarf::DimensionSpec("Station")},
      "available_bikes", dwarf::AggFn::kSum);
}

Result<std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>>
ExtractBatch(const etl::XmlExtractor& extractor, const std::string& document) {
  SCD_ASSIGN_OR_RETURN(std::vector<etl::FeedRecord> records,
                       extractor.Extract(document));
  std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> tuples;
  for (const etl::FeedRecord& record : records) {
    SCD_ASSIGN_OR_RETURN(std::string area, record.Get("area"));
    SCD_ASSIGN_OR_RETURN(std::string name, record.Get("name"));
    SCD_ASSIGN_OR_RETURN(std::string bikes, record.Get("available_bikes"));
    SCD_ASSIGN_OR_RETURN(int64_t measure, ParseInt64(bikes));
    tuples.push_back({{area, name}, measure});
  }
  return tuples;
}

}  // namespace

int main() {
  citibikes::BikeFeedConfig config;
  config.num_stations = 24;
  config.target_records = 24 * 12;  // 12 snapshots
  citibikes::BikeFeedGenerator feed(config);

  auto extractor = etl::XmlExtractor::Create(
      "station",
      {{"name", "name", etl::FieldScope::kRecord, true, ""},
       {"area", "area", etl::FieldScope::kRecord, true, ""},
       {"available_bikes", "available_bikes", etl::FieldScope::kRecord, true,
        ""}});
  if (!extractor.ok()) {
    std::cerr << extractor.status() << "\n";
    return 1;
  }

  // Build the City > Area > Station hierarchy from the station catalog.
  auto hierarchy = dwarf::Hierarchy::Create("geo", {"City", "Area", "Station"});
  if (!hierarchy.ok()) {
    std::cerr << hierarchy.status() << "\n";
    return 1;
  }
  for (const citibikes::Station& station : feed.stations()) {
    (void)hierarchy->AddEdge(1, station.area, "Dublin");
    (void)hierarchy->AddEdge(2, station.name, station.area);
  }

  // Standing cube starts empty; the store holds its persisted versions.
  dwarf::DwarfBuilder empty_builder(Schema());
  auto cube = std::move(empty_builder).Build();
  if (!cube.ok()) {
    std::cerr << cube.status() << "\n";
    return 1;
  }
  nosql::Database db;
  mapper::NoSqlDwarfMapper store(&db, "dwarfks");

  int batch_number = 0;
  int64_t previous_version = -1;
  while (feed.HasNext()) {
    ++batch_number;
    auto tuples = ExtractBatch(*extractor, feed.NextXml());
    if (!tuples.ok()) {
      std::cerr << tuples.status() << "\n";
      return 1;
    }
    Stopwatch watch;
    auto updated = dwarf::MergeTuples(std::move(*cube), *tuples);
    if (!updated.ok()) {
      std::cerr << "merge failed: " << updated.status() << "\n";
      return 1;
    }
    cube = std::move(updated);
    auto schema_id = store.Store(*cube);
    if (!schema_id.ok()) {
      std::cerr << "store failed: " << schema_id.status() << "\n";
      return 1;
    }
    // Retire the stale version: the store holds exactly one live cube.
    if (previous_version >= 0) {
      if (Status deleted = store.DeleteCube(previous_version); !deleted.ok()) {
        std::cerr << "delete failed: " << deleted << "\n";
        return 1;
      }
    }
    previous_version = *schema_id;
    if (batch_number % 4 == 0 || !feed.HasNext()) {
      std::cout << "after batch " << batch_number << " (" << tuples->size()
                << " records, merge+store " << watch.ElapsedMillis()
                << " ms): cube has " << cube->num_nodes()
                << " nodes, stored as schema " << *schema_id << "\n";
      auto city_total =
          dwarf::HierarchicalQuery(*cube, 1, *hierarchy, 0, "Dublin");
      std::cout << "  ROLLUP  bikes(Dublin) = "
                << (city_total.ok() ? std::to_string(*city_total) : "n/a")
                << "\n";
      auto areas = dwarf::DrillDown(*cube, 1, *hierarchy, 0, "Dublin");
      if (areas.ok()) {
        std::cout << "  DRILL DOWN by area:";
        for (const dwarf::SliceRow& row : *areas) {
          std::cout << "  " << row.keys[0] << "=" << row.measure;
        }
        std::cout << "\n";
      }
    }
  }

  // Exactly one version remains in the store and it round-trips.
  auto ids = store.ListSchemas();
  if (ids.ok()) {
    std::cout << "\nstored versions remaining after retirement: "
              << ids->size() << "\n";
    if (!ids->empty()) {
      auto reloaded = store.Load(ids->back());
      std::cout << "reloaded newest stored version (schema " << ids->back()
                << "): structurally equal to the live cube: "
                << (reloaded.ok() && reloaded->StructurallyEquals(*cube)
                        ? "yes"
                        : "NO")
                << "\n";
    }
  }
  return 0;
}
