// Query primitives over DWARF cubes — the capability the paper's conclusion
// targets ("efficient query primitives for our DWARF cubes"). Demonstrates
// point queries, range/set aggregates, slices and rollups against an
// in-memory cube, and the same queries against a flat-file clustered DWARF
// (Bao et al. [1]) without loading it.
//
// Usage: cube_queries [records]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "citibikes/bike_feed.h"
#include "clustered/flat_file.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "dwarf/query.h"
#include "etl/pipeline.h"

using namespace scdwarf;

int main(int argc, char** argv) {
  uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  citibikes::BikeFeedConfig config;
  config.target_records = records;
  config.period_seconds = 7 * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);
  auto pipeline = etl::MakeBikesXmlPipeline();
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  while (feed.HasNext()) {
    Status status = pipeline->ConsumeXml(feed.NextXml());
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  auto cube = std::move(*pipeline).Finish();
  if (!cube.ok()) {
    std::cerr << cube.status() << "\n";
    return 1;
  }
  std::cout << "Cube over " << FormatWithCommas(static_cast<int64_t>(records))
            << " records: " << cube->num_nodes() << " nodes\n\n";

  // --- Point queries (fast path through ALL pointers). ---
  Stopwatch watch;
  std::vector<std::optional<std::string>> grand(8, std::nullopt);
  auto total = dwarf::PointQueryByName(*cube, grand);
  std::cout << "Grand total available bikes: "
            << (total.ok() ? std::to_string(*total) : total.status().ToString())
            << "  (" << watch.ElapsedMicros() << " us)\n";

  std::vector<std::optional<std::string>> monday(8, std::nullopt);
  monday[2] = "Monday";
  watch.Restart();
  auto monday_total = dwarf::PointQueryByName(*cube, monday);
  std::cout << "Monday total:                "
            << (monday_total.ok() ? std::to_string(*monday_total) : "n/a")
            << "  (" << watch.ElapsedMicros() << " us)\n";

  // --- Range aggregate: morning rush hours 07-09 on the Hour dimension. ---
  std::vector<dwarf::DimPredicate> rush(8, dwarf::DimPredicate::All());
  {
    std::vector<dwarf::DimKey> hours;
    for (const char* hour : {"07", "08", "09"}) {
      auto key = cube->dictionary(3).Lookup(hour);
      if (key.ok()) hours.push_back(*key);
    }
    rush[3] = dwarf::DimPredicate::Set(hours);
  }
  watch.Restart();
  auto rush_total = dwarf::AggregateQuery(*cube, rush);
  std::cout << "Morning rush (07-09) total:  "
            << (rush_total.ok() ? std::to_string(*rush_total) : "n/a") << "  ("
            << watch.ElapsedMicros() << " us)\n\n";

  // --- Rollup: availability by area. ---
  auto by_area = dwarf::RollUp(*cube, {4});
  if (by_area.ok()) {
    std::cout << "Available bikes by area:\n";
    for (const dwarf::SliceRow& row : *by_area) {
      std::cout << "  " << row.keys[0] << ": " << row.measure << "\n";
    }
    std::cout << "\n";
  }

  // --- Slice: one station across weekdays. ---
  const dwarf::Dictionary& stations = cube->dictionary(5);
  if (stations.size() > 0) {
    std::string station = stations.DecodeUnchecked(0);
    std::vector<std::optional<std::string>> query(8, std::nullopt);
    query[5] = station;
    std::cout << "Weekday profile of '" << station << "':\n";
    for (const char* day : {"Monday", "Tuesday", "Wednesday", "Thursday",
                            "Friday", "Saturday", "Sunday"}) {
      query[2] = day;
      auto value = dwarf::PointQueryByName(*cube, query);
      std::cout << "  " << day << ": "
                << (value.ok() ? std::to_string(*value) : "-") << "\n";
    }
    std::cout << "\n";
  }

  // --- The same queries against the flat-file clustered DWARF. ---
  std::string path =
      (std::filesystem::temp_directory_path() / "cube_queries.dwarf").string();
  for (auto layout : {clustered::ClusterLayout::kHierarchical,
                      clustered::ClusterLayout::kRecursive}) {
    Status write_status = clustered::WriteDwarfFile(*cube, path, layout);
    if (!write_status.ok()) {
      std::cerr << write_status << "\n";
      return 1;
    }
    auto file_cube = clustered::FlatFileCube::Open(path);
    if (!file_cube.ok()) {
      std::cerr << file_cube.status() << "\n";
      return 1;
    }
    watch.Restart();
    auto file_total = file_cube->PointQuery(grand);
    double micros = watch.ElapsedMicros();
    std::cout << "Flat file (" << clustered::ClusterLayoutName(layout)
              << "): size " << FormatBytes(file_cube->file_size())
              << ", grand total "
              << (file_total.ok() ? std::to_string(*file_total) : "n/a")
              << " via " << file_cube->stats().node_reads << " node reads ("
              << micros << " us)\n";
  }
  std::filesystem::remove(path);
  return 0;
}
