#include <gtest/gtest.h>

#include "common/civil_time.h"

namespace scdwarf {
namespace {

TEST(CivilTimeTest, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  CivilTime epoch = CivilFromDays(0);
  EXPECT_EQ(epoch.year, 1970);
  EXPECT_EQ(epoch.month, 1);
  EXPECT_EQ(epoch.day, 1);
}

TEST(CivilTimeTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(2016, 1, 1), 16801);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

TEST(CivilTimeTest, DaysRoundTripSweep) {
  // Every 17 days across ~30 years round-trips exactly.
  for (int64_t days = -4000; days < 16000; days += 17) {
    CivilTime time = CivilFromDays(days);
    EXPECT_EQ(DaysFromCivil(time.year, time.month, time.day), days);
  }
}

TEST(CivilTimeTest, SecondsRoundTrip) {
  CivilTime time{2016, 7, 5, 14, 30, 59};
  EXPECT_EQ(CivilFromSeconds(SecondsFromCivil(time)), time);
  CivilTime before_epoch{1969, 12, 31, 23, 59, 59};
  EXPECT_EQ(CivilFromSeconds(SecondsFromCivil(before_epoch)), before_epoch);
}

TEST(CivilTimeTest, Weekdays) {
  EXPECT_EQ(WeekdayIndex(1970, 1, 1), 3);   // Thursday
  EXPECT_EQ(WeekdayIndex(2016, 1, 1), 4);   // Friday
  EXPECT_EQ(WeekdayIndex(2016, 3, 15), 1);  // EDBT 2016 workshop day: Tuesday
  EXPECT_STREQ(WeekdayName(0), "Monday");
  EXPECT_STREQ(WeekdayName(6), "Sunday");
  EXPECT_STREQ(WeekdayName(9), "?");
}

TEST(CivilTimeTest, MonthHelpers) {
  EXPECT_STREQ(MonthName(1), "January");
  EXPECT_STREQ(MonthName(12), "December");
  EXPECT_STREQ(MonthName(0), "?");
  EXPECT_EQ(DaysInMonth(2016, 2), 29);  // leap
  EXPECT_EQ(DaysInMonth(2015, 2), 28);
  EXPECT_EQ(DaysInMonth(2000, 2), 29);  // 400-year rule
  EXPECT_EQ(DaysInMonth(1900, 2), 28);  // 100-year rule
  EXPECT_EQ(DaysInMonth(2016, 4), 30);
}

TEST(CivilTimeTest, FormatIso) {
  CivilTime time{2016, 1, 5, 8, 3, 0};
  EXPECT_EQ(FormatIso(time), "2016-01-05T08:03:00");
  EXPECT_EQ(FormatIsoDate(time), "2016-01-05");
}

TEST(CivilTimeTest, ParseIsoVariants) {
  auto full = ParseIso("2016-01-05T08:03:09");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->hour, 8);
  EXPECT_EQ(full->second, 9);
  auto with_space = ParseIso("2016-01-05 08:03:09");
  ASSERT_TRUE(with_space.ok());
  EXPECT_EQ(with_space->minute, 3);
  auto date_only = ParseIso("2016-01-05");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(date_only->hour, 0);
  auto no_seconds = ParseIso("2016-01-05T08:03");
  ASSERT_TRUE(no_seconds.ok());
  EXPECT_EQ(no_seconds->second, 0);
}

TEST(CivilTimeTest, ParseIsoRejectsBadInput) {
  for (const char* bad : {"", "not a date", "2016-13-01", "2016-02-30",
                          "2016-01-05T25:00:00", "2016-01-05T08:61:00"}) {
    EXPECT_FALSE(ParseIso(bad).ok()) << bad;
  }
}

TEST(CivilTimeTest, ParseFormatRoundTrip) {
  for (const char* text : {"2016-01-05T08:03:09", "1999-12-31T23:59:59",
                           "2024-02-29T00:00:00"}) {
    auto parsed = ParseIso(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(FormatIso(*parsed), text);
  }
}

}  // namespace
}  // namespace scdwarf
