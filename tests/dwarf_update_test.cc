#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "dwarf/update.h"

namespace scdwarf::dwarf {
namespace {

CubeSchema BikesSchema(AggFn agg = AggFn::kSum) {
  return CubeSchema("bikes",
                    {DimensionSpec("Day"), DimensionSpec("Station")}, "bikes",
                    agg);
}

DwarfCube BuildCube(
    const std::vector<std::pair<std::vector<std::string>, Measure>>& tuples,
    AggFn agg = AggFn::kSum) {
  DwarfBuilder builder(BikesSchema(agg));
  for (const auto& [keys, measure] : tuples) {
    EXPECT_TRUE(builder.AddTuple(keys, measure).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

TEST(ExtractBaseTuplesTest, RoundTripsTheBaseRelation) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Mon", "Pearse St"}, 5},
                              {{"Tue", "Fenian St"}, 4}});
  auto base = ExtractBaseTuples(cube);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 3u);
  // Rebuilding from the base relation reproduces the cube exactly.
  DwarfBuilder builder(cube.schema());
  for (const SliceRow& row : *base) {
    ASSERT_TRUE(builder.AddAggregatedTuple(row.keys, row.measure).ok());
  }
  DwarfCube rebuilt = std::move(builder).Build().ValueOrDie();
  EXPECT_TRUE(rebuilt.StructurallyEquals(cube));
}

TEST(CubeUpdaterTest, UpdateEqualsBuildFromScratch) {
  std::vector<std::pair<std::vector<std::string>, Measure>> first = {
      {{"Mon", "Fenian St"}, 3}, {{"Mon", "Pearse St"}, 5}};
  std::vector<std::pair<std::vector<std::string>, Measure>> second = {
      {{"Tue", "Fenian St"}, 4}, {{"Mon", "Fenian St"}, 2}};

  DwarfCube incremental = BuildCube(first);
  CubeUpdater updater(std::move(incremental));
  for (const auto& [keys, measure] : second) {
    ASSERT_TRUE(updater.AddTuple(keys, measure).ok());
  }
  EXPECT_EQ(updater.num_pending(), 2u);
  auto updated = std::move(updater).Rebuild();
  ASSERT_TRUE(updated.ok()) << updated.status();

  std::vector<std::pair<std::vector<std::string>, Measure>> all = first;
  all.insert(all.end(), second.begin(), second.end());
  DwarfCube reference = BuildCube(all);
  EXPECT_TRUE(updated->StructurallyEquals(reference));
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 5);
}

TEST(CubeUpdaterTest, CountCubesKeepCounting) {
  // The subtle case: COUNT measures must not be re-counted on rebuild.
  std::vector<std::pair<std::vector<std::string>, Measure>> first = {
      {{"Mon", "Fenian St"}, 99}, {{"Mon", "Fenian St"}, 99}};
  DwarfCube cube = BuildCube(first, AggFn::kCount);
  EXPECT_EQ(*PointQueryByName(cube, {"Mon", "Fenian St"}), 2);

  auto updated = MergeTuples(std::move(cube), {{{"Mon", "Fenian St"}, 99}});
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 3);
}

TEST(CubeUpdaterTest, MinMaxUpdates) {
  DwarfCube min_cube = BuildCube({{{"Mon", "Fenian St"}, 5}}, AggFn::kMin);
  auto updated = MergeTuples(std::move(min_cube), {{{"Mon", "Fenian St"}, 2}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 2);

  DwarfCube max_cube = BuildCube({{{"Mon", "Fenian St"}, 5}}, AggFn::kMax);
  auto max_updated =
      MergeTuples(std::move(max_cube), {{{"Mon", "Fenian St"}, 2}});
  ASSERT_TRUE(max_updated.ok());
  EXPECT_EQ(*PointQueryByName(*max_updated, {"Mon", "Fenian St"}), 5);
}

TEST(CubeUpdaterTest, NewDimensionValuesExtendDictionaries) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  auto updated = MergeTuples(std::move(cube), {{{"Wed", "Eyre Sq"}, 8}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->dictionary(0).size(), 2u);
  EXPECT_EQ(*PointQueryByName(*updated, {"Wed", "Eyre Sq"}), 8);
  EXPECT_EQ(*PointQueryByName(*updated, {std::nullopt, std::nullopt}), 11);
}

TEST(CubeUpdaterTest, EmptyCubeUpdate) {
  DwarfBuilder builder(BikesSchema());
  DwarfCube empty = std::move(builder).Build().ValueOrDie();
  auto updated = MergeTuples(std::move(empty), {{{"Mon", "Fenian St"}, 3}});
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 3);
}

TEST(CubeUpdaterTest, NoPendingTuplesIsIdentity) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  DwarfCube copy = BuildCube({{{"Mon", "Fenian St"}, 3}});
  CubeUpdater updater(std::move(cube));
  auto updated = std::move(updater).Rebuild();
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->StructurallyEquals(copy));
}

TEST(CubeUpdaterTest, ArityMismatchRejected) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  CubeUpdater updater(std::move(cube));
  EXPECT_TRUE(updater.AddTuple({"Mon"}, 1).IsInvalidArgument());
}

TEST(MaterializeSubCubeTest, FiltersAndReaggregates) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Mon", "Pearse St"}, 5},
                              {{"Tue", "Fenian St"}, 4}});
  DimKey monday = cube.dictionary(0).Lookup("Mon").ValueOrDie();
  std::vector<DimPredicate> predicates = {DimPredicate::Point(monday),
                                          DimPredicate::All()};
  auto sub = MaterializeSubCube(cube, predicates);
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(*PointQueryByName(*sub, {"Mon", "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(*sub, {std::nullopt, std::nullopt}), 8);
  EXPECT_TRUE(
      PointQueryByName(*sub, {"Tue", "Fenian St"}).status().IsNotFound());
  // Schema is preserved.
  EXPECT_EQ(sub->schema().dimensions()[0].name, "Day");
}

TEST(MaterializeSubCubeTest, EmptySelectionYieldsEmptyCube) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  std::vector<DimPredicate> predicates = {DimPredicate::Set({}),
                                          DimPredicate::All()};
  auto sub = MaterializeSubCube(cube, predicates);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->empty());
}

TEST(MaterializeSubCubeTest, ArityChecked) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  EXPECT_TRUE(MaterializeSubCube(cube, {DimPredicate::All()})
                  .status()
                  .IsInvalidArgument());
}

// Property: a long random stream split into K batches applied through the
// updater equals the cube built from the full stream in one shot.
class UpdaterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdaterPropertyTest, BatchedEqualsOneShot) {
  Rng rng(GetParam());
  std::vector<std::pair<std::vector<std::string>, Measure>> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(
        {{"d" + std::to_string(rng.NextBelow(5)),
          "s" + std::to_string(rng.NextBelow(12))},
         rng.NextInRange(-10, 50)});
  }
  DwarfCube reference = BuildCube(stream);

  // Apply in 4 batches.
  DwarfBuilder builder(BikesSchema());
  DwarfCube cube = std::move(builder).Build().ValueOrDie();
  size_t batch_size = stream.size() / 4 + 1;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(stream.size(), begin + batch_size);
    std::vector<std::pair<std::vector<std::string>, Measure>> batch(
        stream.begin() + begin, stream.begin() + end);
    auto updated = MergeTuples(std::move(cube), batch);
    ASSERT_TRUE(updated.ok()) << updated.status();
    cube = std::move(updated).ValueOrDie();
  }
  EXPECT_TRUE(cube.StructurallyEquals(reference));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdaterPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace scdwarf::dwarf
