#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "dwarf/update.h"

namespace scdwarf::dwarf {
namespace {

CubeSchema BikesSchema(AggFn agg = AggFn::kSum) {
  return CubeSchema("bikes",
                    {DimensionSpec("Day"), DimensionSpec("Station")}, "bikes",
                    agg);
}

DwarfCube BuildCube(
    const std::vector<std::pair<std::vector<std::string>, Measure>>& tuples,
    AggFn agg = AggFn::kSum) {
  DwarfBuilder builder(BikesSchema(agg));
  for (const auto& [keys, measure] : tuples) {
    EXPECT_TRUE(builder.AddTuple(keys, measure).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

TEST(ExtractBaseTuplesTest, RoundTripsTheBaseRelation) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Mon", "Pearse St"}, 5},
                              {{"Tue", "Fenian St"}, 4}});
  auto base = ExtractBaseTuples(cube);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 3u);
  // Rebuilding from the base relation reproduces the cube exactly.
  DwarfBuilder builder(cube.schema());
  for (const SliceRow& row : *base) {
    ASSERT_TRUE(builder.AddAggregatedTuple(row.keys, row.measure).ok());
  }
  DwarfCube rebuilt = std::move(builder).Build().ValueOrDie();
  EXPECT_TRUE(rebuilt.StructurallyEquals(cube));
}

TEST(CubeUpdaterTest, UpdateEqualsBuildFromScratch) {
  std::vector<std::pair<std::vector<std::string>, Measure>> first = {
      {{"Mon", "Fenian St"}, 3}, {{"Mon", "Pearse St"}, 5}};
  std::vector<std::pair<std::vector<std::string>, Measure>> second = {
      {{"Tue", "Fenian St"}, 4}, {{"Mon", "Fenian St"}, 2}};

  DwarfCube incremental = BuildCube(first);
  CubeUpdater updater(std::move(incremental));
  for (const auto& [keys, measure] : second) {
    ASSERT_TRUE(updater.AddTuple(keys, measure).ok());
  }
  EXPECT_EQ(updater.num_pending(), 2u);
  auto updated = std::move(updater).Rebuild();
  ASSERT_TRUE(updated.ok()) << updated.status();

  std::vector<std::pair<std::vector<std::string>, Measure>> all = first;
  all.insert(all.end(), second.begin(), second.end());
  DwarfCube reference = BuildCube(all);
  EXPECT_TRUE(updated->StructurallyEquals(reference));
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 5);
}

TEST(CubeUpdaterTest, CountCubesKeepCounting) {
  // The subtle case: COUNT measures must not be re-counted on rebuild.
  std::vector<std::pair<std::vector<std::string>, Measure>> first = {
      {{"Mon", "Fenian St"}, 99}, {{"Mon", "Fenian St"}, 99}};
  DwarfCube cube = BuildCube(first, AggFn::kCount);
  EXPECT_EQ(*PointQueryByName(cube, {"Mon", "Fenian St"}), 2);

  auto updated = MergeTuples(std::move(cube), {{{"Mon", "Fenian St"}, 99}});
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 3);
}

TEST(CubeUpdaterTest, MinMaxUpdates) {
  DwarfCube min_cube = BuildCube({{{"Mon", "Fenian St"}, 5}}, AggFn::kMin);
  auto updated = MergeTuples(std::move(min_cube), {{{"Mon", "Fenian St"}, 2}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 2);

  DwarfCube max_cube = BuildCube({{{"Mon", "Fenian St"}, 5}}, AggFn::kMax);
  auto max_updated =
      MergeTuples(std::move(max_cube), {{{"Mon", "Fenian St"}, 2}});
  ASSERT_TRUE(max_updated.ok());
  EXPECT_EQ(*PointQueryByName(*max_updated, {"Mon", "Fenian St"}), 5);
}

TEST(CubeUpdaterTest, NewDimensionValuesExtendDictionaries) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  auto updated = MergeTuples(std::move(cube), {{{"Wed", "Eyre Sq"}, 8}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->dictionary(0).size(), 2u);
  EXPECT_EQ(*PointQueryByName(*updated, {"Wed", "Eyre Sq"}), 8);
  EXPECT_EQ(*PointQueryByName(*updated, {std::nullopt, std::nullopt}), 11);
}

TEST(CubeUpdaterTest, EmptyCubeUpdate) {
  DwarfBuilder builder(BikesSchema());
  DwarfCube empty = std::move(builder).Build().ValueOrDie();
  auto updated = MergeTuples(std::move(empty), {{{"Mon", "Fenian St"}, 3}});
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(*PointQueryByName(*updated, {"Mon", "Fenian St"}), 3);
}

TEST(CubeUpdaterTest, NoPendingTuplesIsIdentity) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  DwarfCube copy = BuildCube({{{"Mon", "Fenian St"}, 3}});
  CubeUpdater updater(std::move(cube));
  auto updated = std::move(updater).Rebuild();
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->StructurallyEquals(copy));
}

TEST(CubeUpdaterTest, ArityMismatchRejected) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  CubeUpdater updater(std::move(cube));
  EXPECT_TRUE(updater.AddTuple({"Mon"}, 1).IsInvalidArgument());
}

TEST(CubeUpdaterTest, ApplyEqualsRebuild) {
  std::vector<std::pair<std::vector<std::string>, Measure>> base = {
      {{"Mon", "Fenian St"}, 3},
      {{"Mon", "Pearse St"}, 5},
      {{"Tue", "Fenian St"}, 4},
      {{"Tue", "Eyre Sq"}, 7}};
  std::vector<std::pair<std::vector<std::string>, Measure>> batch = {
      {{"Tue", "Fenian St"}, 2}, {{"Wed", "Custom House"}, 9}};

  CubeUpdater incremental(BuildCube(base));
  CubeUpdater full(BuildCube(base));
  for (const auto& [keys, measure] : batch) {
    ASSERT_TRUE(incremental.AddTuple(keys, measure).ok());
    ASSERT_TRUE(full.AddTuple(keys, measure).ok());
  }
  auto applied = std::move(incremental).Apply();
  ASSERT_TRUE(applied.ok()) << applied.status();
  auto rebuilt = std::move(full).Rebuild();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

  EXPECT_TRUE(applied->StructurallyEquals(*rebuilt));
  // Logical stats agree too: the merged cube's reachable counts must not see
  // the dead prior-epoch arena slots.
  EXPECT_EQ(applied->stats().tuple_count, rebuilt->stats().tuple_count);
  EXPECT_EQ(applied->stats().source_tuple_count,
            rebuilt->stats().source_tuple_count);
  EXPECT_EQ(applied->stats().node_count, rebuilt->stats().node_count);
  EXPECT_EQ(applied->stats().cell_count, rebuilt->stats().cell_count);
  EXPECT_EQ(applied->stats().coalesced_all_count,
            rebuilt->stats().coalesced_all_count);
}

TEST(CubeUpdaterTest, ApplyProfileReportsIncrementalPhases) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Mon", "Pearse St"}, 5},
                              {{"Tue", "Fenian St"}, 4}});
  CubeUpdater updater(std::move(cube));
  ASSERT_TRUE(updater.AddTuple({"Tue", "Pearse St"}, 6).ok());
  UpdateProfile profile;
  auto updated = std::move(updater).Apply(&profile);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_TRUE(profile.incremental);
  EXPECT_EQ(profile.base_tuples, 3u);
  EXPECT_EQ(profile.new_tuples, 1u);
  EXPECT_EQ(profile.changed_prefixes, 1u);
  // The untouched "Mon" subtree is adopted from the prior epoch wholesale.
  EXPECT_GT(profile.nodes_reused, 0u);
  EXPECT_GE(profile.rebuild_ms, profile.delta_build_ms);
}

TEST(CubeUpdaterTest, ApplySharesArenaAcrossEpochs) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Tue", "Pearse St"}, 5}});
  EXPECT_EQ(cube.arena_chunks(), 1u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    CubeUpdater updater(std::move(cube));
    ASSERT_TRUE(
        updater.AddTuple({"Wed", "Stop " + std::to_string(epoch)}, 1).ok());
    auto updated = std::move(updater).Apply();
    ASSERT_TRUE(updated.ok()) << updated.status();
    cube = std::move(updated).ValueOrDie();
    EXPECT_EQ(cube.arena_chunks(), static_cast<size_t>(epoch + 2));
  }
  // A full rebuild compacts the chain back to a single owned chunk.
  CubeUpdater updater(std::move(cube));
  ASSERT_TRUE(updater.AddTuple({"Thu", "Stop X"}, 1).ok());
  auto rebuilt = std::move(updater).Rebuild();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->arena_chunks(), 1u);
}

// Epoch drop frees the arena as whole chunks: chunk counts (not node counts)
// govern allocation lifetime, per-node/per-cell destructors cannot exist
// (static_asserts in dwarf_cube.h pin trivial destructibility), and copying
// or merging a cube shares chunks instead of duplicating nodes.
TEST(CubeUpdaterTest, EpochDropFreesArenaAsWholeChunks) {
  const int64_t baseline = NodeArena::live_instances();
  {
    DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                                {{"Tue", "Pearse St"}, 5}});
    EXPECT_EQ(NodeArena::live_instances(), baseline + 1);
    {
      // Copying shares the chunk — no new arena comes to life.
      DwarfCube copy = cube;
      EXPECT_EQ(NodeArena::live_instances(), baseline + 1);
    }
    EXPECT_EQ(NodeArena::live_instances(), baseline + 1);

    // Each incremental merge appends exactly one tail chunk; the prior
    // epoch's chunks stay shared, not copied.
    CubeUpdater updater(std::move(cube));
    ASSERT_TRUE(updater.AddTuple({"Wed", "Eyre Sq"}, 2).ok());
    auto merged = std::move(updater).Apply();
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(merged->arena_chunks(), 2u);
    EXPECT_EQ(NodeArena::live_instances(), baseline + 2);
  }
  // Dropping the last cube of the lineage releases every chunk.
  EXPECT_EQ(NodeArena::live_instances(), baseline);
}

TEST(CubeUpdaterTest, ApplyWithNoPendingTuplesIsIdentity) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  DwarfCube copy = BuildCube({{{"Mon", "Fenian St"}, 3}});
  CubeUpdater updater(std::move(cube));
  auto updated = std::move(updater).Apply();
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->StructurallyEquals(copy));
  EXPECT_EQ(updated->stats().tuple_count, copy.stats().tuple_count);
}

TEST(MaterializeSubCubeTest, FiltersAndReaggregates) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3},
                              {{"Mon", "Pearse St"}, 5},
                              {{"Tue", "Fenian St"}, 4}});
  DimKey monday = cube.dictionary(0).Lookup("Mon").ValueOrDie();
  std::vector<DimPredicate> predicates = {DimPredicate::Point(monday),
                                          DimPredicate::All()};
  auto sub = MaterializeSubCube(cube, predicates);
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(*PointQueryByName(*sub, {"Mon", "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(*sub, {std::nullopt, std::nullopt}), 8);
  EXPECT_TRUE(
      PointQueryByName(*sub, {"Tue", "Fenian St"}).status().IsNotFound());
  // Schema is preserved.
  EXPECT_EQ(sub->schema().dimensions()[0].name, "Day");
}

TEST(MaterializeSubCubeTest, EmptySelectionYieldsEmptyCube) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  std::vector<DimPredicate> predicates = {DimPredicate::Set({}),
                                          DimPredicate::All()};
  auto sub = MaterializeSubCube(cube, predicates);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->empty());
}

TEST(MaterializeSubCubeTest, ArityChecked) {
  DwarfCube cube = BuildCube({{{"Mon", "Fenian St"}, 3}});
  EXPECT_TRUE(MaterializeSubCube(cube, {DimPredicate::All()})
                  .status()
                  .IsInvalidArgument());
}

// Property: a long random stream split into K batches applied through the
// updater equals the cube built from the full stream in one shot.
class UpdaterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdaterPropertyTest, BatchedEqualsOneShot) {
  Rng rng(GetParam());
  std::vector<std::pair<std::vector<std::string>, Measure>> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(
        {{"d" + std::to_string(rng.NextBelow(5)),
          "s" + std::to_string(rng.NextBelow(12))},
         rng.NextInRange(-10, 50)});
  }
  DwarfCube reference = BuildCube(stream);

  // Apply in 4 batches.
  DwarfBuilder builder(BikesSchema());
  DwarfCube cube = std::move(builder).Build().ValueOrDie();
  size_t batch_size = stream.size() / 4 + 1;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(stream.size(), begin + batch_size);
    std::vector<std::pair<std::vector<std::string>, Measure>> batch(
        stream.begin() + begin, stream.begin() + end);
    auto updated = MergeTuples(std::move(cube), batch);
    ASSERT_TRUE(updated.ok()) << updated.status();
    cube = std::move(updated).ValueOrDie();
  }
  EXPECT_TRUE(cube.StructurallyEquals(reference));
  // The chained incremental merges must also agree with the one-shot build
  // on every reachability-derived statistic.
  EXPECT_EQ(cube.stats().tuple_count, reference.stats().tuple_count);
  EXPECT_EQ(cube.stats().source_tuple_count,
            reference.stats().source_tuple_count);
  EXPECT_EQ(cube.stats().node_count, reference.stats().node_count);
  EXPECT_EQ(cube.stats().cell_count, reference.stats().cell_count);
  EXPECT_EQ(cube.stats().coalesced_all_count,
            reference.stats().coalesced_all_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdaterPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace scdwarf::dwarf
