#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "sql/engine.h"
#include "sql/sql.h"

namespace scdwarf::sql {
namespace {

namespace fs = std::filesystem;

SqlTableDef NodeDef() {
  // DWARF_NODE of the MySQL-DWARF schema (Fig. 4).
  return SqlTableDef("dwarfdb", "dwarf_node",
                     {{"id", DataType::kInt, false},
                      {"root", DataType::kBool},
                      {"schema_id", DataType::kInt}},
                     "id");
}

SqlTableDef NodeChildrenDef() {
  return SqlTableDef("dwarfdb", "node_children",
                     {{"id", DataType::kInt, false},
                      {"node_id", DataType::kInt},
                      {"cell_id", DataType::kInt}},
                     "id");
}

// ---------------------------------------------------------------- catalog

TEST(SqlTableDefTest, RejectsSetColumns) {
  SqlTableDef def("db", "t",
                  {{"id", DataType::kInt}, {"children", DataType::kIntSet}},
                  "id");
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(SqlTableDefTest, ValidationRules) {
  EXPECT_TRUE(NodeDef().Validate().ok());
  SqlTableDef bad_pk("db", "t", {{"a", DataType::kInt}}, "zzz");
  EXPECT_TRUE(bad_pk.Validate().IsInvalidArgument());
  SqlTableDef dup("db", "t",
                  {{"a", DataType::kInt}, {"a", DataType::kInt}}, "a");
  EXPECT_TRUE(dup.Validate().IsInvalidArgument());
}

TEST(SqlTableDefTest, EncodeDecodeRoundTrip) {
  SqlTableDef def = NodeChildrenDef();
  ASSERT_TRUE(def.AddSecondaryIndex("node_id").ok());
  ByteWriter writer;
  def.EncodeTo(&writer);
  ByteReader reader(writer.data());
  auto decoded = SqlTableDef::DecodeFrom(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->QualifiedName(), "dwarfdb.node_children");
  EXPECT_EQ(decoded->secondary_indexes().size(), 1u);
}

// ------------------------------------------------------------- heap table

TEST(HeapTableTest, DuplicatePrimaryKeyRejected) {
  HeapTable table(NodeDef());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Bool(true), Value::Int(1)}).ok());
  EXPECT_TRUE(table.Insert({Value::Int(1), Value::Bool(false), Value::Int(1)})
                  .IsAlreadyExists());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(HeapTableTest, NotNullEnforced) {
  HeapTable table(NodeDef());
  EXPECT_TRUE(table.Insert({Value::Null(), Value::Bool(true), Value::Int(1)})
                  .IsInvalidArgument());
}

TEST(HeapTableTest, ScanIsPrimaryKeyOrdered) {
  HeapTable table(NodeDef());
  for (int id : {5, 1, 9, 3}) {
    ASSERT_TRUE(
        table.Insert({Value::Int(id), Value::Bool(false), Value::Int(1)}).ok());
  }
  auto rows = table.ScanAll();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(*(*rows[0])[0].AsInt(), 1);
  EXPECT_EQ(*(*rows[3])[0].AsInt(), 9);
}

TEST(HeapTableTest, SelectEqFallsBackToScan) {
  HeapTable table(NodeChildrenDef());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        table.Insert({Value::Int(i), Value::Int(i % 2), Value::Int(i)}).ok());
  }
  // MySQL allows unindexed filtering (it is just a table scan).
  auto rows = table.SelectEq("node_id", Value::Int(1));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  ASSERT_TRUE(table.CreateIndex("node_id").ok());
  EXPECT_EQ(table.SelectEq("node_id", Value::Int(1))->size(), 4u);
}

TEST(HeapTableTest, TablespaceRoundTrip) {
  HeapTable table(NodeChildrenDef());
  ASSERT_TRUE(table.CreateIndex("node_id").ok());
  for (int i = 0; i < 3000; ++i) {  // enough rows to span multiple pages
    ASSERT_TRUE(
        table.Insert({Value::Int(i), Value::Int(i / 10), Value::Int(i * 3)})
            .ok());
  }
  ByteWriter writer;
  table.SerializeTo(&writer);
  // Tablespace is page-aligned and substantial.
  EXPECT_GT(writer.size(), InnoDbFormat::kPageBytes);
  ByteReader reader(writer.data());
  auto loaded = HeapTable::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ((*loaded)->num_rows(), 3000u);
  EXPECT_EQ(*(**(*loaded)->GetByPk(Value::Int(2999)))[2].AsInt(), 8997);
  EXPECT_EQ((*loaded)->SelectEq("node_id", Value::Int(5))->size(), 10u);
}

TEST(HeapTableTest, PageOverheadInflatesSize) {
  // The same logical rows must cost more in the InnoDB-style format than
  // their raw payload (record headers + trx metadata + page padding).
  HeapTable table(NodeDef());
  uint64_t payload = 0;
  for (int i = 0; i < 1000; ++i) {
    SqlRow row = {Value::Int(i), Value::Bool(i % 2 == 0), Value::Int(1)};
    for (const Value& value : row) payload += value.EncodedSize();
    ASSERT_TRUE(table.Insert(std::move(row)).ok());
  }
  EXPECT_GT(table.EstimateTablespaceBytes(), payload);
}

// ---------------------------------------------------------------- engine

class SqlEngineDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scdwarf_sql_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST(SqlEngineTest, DatabaseLifecycle) {
  SqlEngine engine;
  EXPECT_TRUE(engine.CreateDatabase("dwarfdb").ok());
  EXPECT_TRUE(engine.CreateDatabase("dwarfdb").IsAlreadyExists());
  EXPECT_TRUE(engine.CreateTable(NodeDef()).ok());
  EXPECT_TRUE(engine.CreateTable(NodeDef()).IsAlreadyExists());
  EXPECT_TRUE(engine.GetTable("dwarfdb", "dwarf_node").ok());
  EXPECT_TRUE(engine.DropTable("dwarfdb", "dwarf_node").ok());
  EXPECT_TRUE(engine.GetTable("dwarfdb", "dwarf_node").status().IsNotFound());
}

TEST_F(SqlEngineDiskTest, FlushAndReopen) {
  {
    auto engine = SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("dwarfdb").ok());
    ASSERT_TRUE(engine->CreateTable(NodeDef()).ok());
    std::vector<SqlRow> rows;
    for (int i = 0; i < 40; ++i) {
      rows.push_back({Value::Int(i), Value::Bool(i == 0), Value::Int(1)});
    }
    ASSERT_TRUE(engine->BulkInsert("dwarfdb", "dwarf_node", std::move(rows)).ok());
    ASSERT_TRUE(engine->Flush().ok());
    EXPECT_GT(*engine->DiskSizeBytes(), 0u);
  }
  {
    auto engine = SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto table = engine->GetTable("dwarfdb", "dwarf_node");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 40u);
  }
}

TEST_F(SqlEngineDiskTest, RedoLogReplayRecoversUnflushedWrites) {
  {
    auto engine = SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->CreateDatabase("dwarfdb").ok());
    ASSERT_TRUE(engine->CreateTable(NodeDef()).ok());
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine
                    ->Insert("dwarfdb", "dwarf_node",
                             {Value::Int(1), Value::Bool(true), Value::Int(1)})
                    .ok());
    // Crash without flushing.
  }
  {
    auto engine = SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    EXPECT_EQ((*engine->GetTable("dwarfdb", "dwarf_node"))->num_rows(), 1u);
  }
}

// ------------------------------------------------------------------- SQL

class SqlLanguageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ExecuteSql(&engine_, "CREATE DATABASE dwarfdb").ok());
    ASSERT_TRUE(ExecuteSql(&engine_,
                           "CREATE TABLE dwarfdb.dwarf_cell ("
                           "id INT NOT NULL, item_name VARCHAR(64), "
                           "measure INT, leaf BOOL, "
                           "PRIMARY KEY (id))")
                    .ok());
  }
  SqlEngine engine_;
};

TEST_F(SqlLanguageTest, InsertAndSelect) {
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "INSERT INTO dwarfdb.dwarf_cell "
                         "(id, item_name, measure, leaf) "
                         "VALUES (3, 'Fenian St', 3, true)")
                  .ok());
  auto result = ExecuteSql(
      &engine_, "SELECT item_name FROM dwarfdb.dwarf_cell WHERE id = 3");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(*result->rows[0][0].AsText(), "Fenian St");
}

TEST_F(SqlLanguageTest, MultiRowInsert) {
  auto result = ExecuteSql(&engine_,
                           "INSERT INTO dwarfdb.dwarf_cell (id, item_name) "
                           "VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*engine_.GetTable("dwarfdb", "dwarf_cell"))->num_rows(), 3u);
}

TEST_F(SqlLanguageTest, CreateTableWithInlineIndex) {
  auto result = ExecuteSql(&engine_,
                           "CREATE TABLE dwarfdb.node_children ("
                           "id INT NOT NULL, node_id INT, cell_id INT, "
                           "PRIMARY KEY (id), INDEX (node_id))");
  ASSERT_TRUE(result.ok()) << result.status();
  auto table = engine_.GetTable("dwarfdb", "node_children");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->def().secondary_indexes().size(), 1u);
}

TEST_F(SqlLanguageTest, JoinNodeChildren) {
  // The MySQL-DWARF rebuild pattern: cells joined through node_children.
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "CREATE TABLE dwarfdb.node_children ("
                         "id INT NOT NULL, node_id INT, cell_id INT, "
                         "PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "INSERT INTO dwarfdb.dwarf_cell (id, item_name) "
                         "VALUES (10, 'Dublin'), (11, 'Cork'), (12, 'Paris')")
                  .ok());
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "INSERT INTO dwarfdb.node_children "
                         "(id, node_id, cell_id) "
                         "VALUES (1, 7, 10), (2, 7, 11), (3, 8, 12)")
                  .ok());
  auto result = ExecuteSql(
      &engine_,
      "SELECT dwarf_cell.item_name FROM dwarfdb.node_children "
      "JOIN dwarfdb.dwarf_cell ON node_children.cell_id = dwarf_cell.id "
      "WHERE node_children.node_id = 7");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(*result->rows[0][0].AsText(), "Dublin");
  EXPECT_EQ(*result->rows[1][0].AsText(), "Cork");
}

TEST_F(SqlLanguageTest, AmbiguousColumnRejected) {
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "CREATE TABLE dwarfdb.other ("
                         "id INT NOT NULL, PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(ExecuteSql(&engine_, "INSERT INTO dwarfdb.other (id) VALUES (3)")
                  .ok());
  ASSERT_TRUE(ExecuteSql(&engine_,
                         "INSERT INTO dwarfdb.dwarf_cell (id) VALUES (3)")
                  .ok());
  auto result = ExecuteSql(&engine_,
                           "SELECT id FROM dwarfdb.dwarf_cell "
                           "JOIN dwarfdb.other ON dwarf_cell.id = other.id");
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
}

TEST_F(SqlLanguageTest, SetTypeRejectedByDdl) {
  auto result = ExecuteSql(&engine_,
                           "CREATE TABLE dwarfdb.bad ("
                           "id INT, children SET(int), PRIMARY KEY (id))");
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlLanguageTest, ParseErrors) {
  for (const char* bad : {
           "",
           "SELECT FROM dwarfdb.dwarf_cell",
           "INSERT INTO dwarfdb.dwarf_cell (id) VALUES (1), (2, 3)",
           "CREATE TABLE dwarfdb.t (id INT)",
           "SELECT * FROM dwarf_cell",  // unqualified
           "DELETE FROM dwarfdb.dwarf_cell",
       }) {
    EXPECT_TRUE(ExecuteSql(&engine_, bad).status().IsParseError())
        << "input: " << bad;
  }
}

TEST_F(SqlLanguageTest, DuplicateKeyReportedThroughSql) {
  ASSERT_TRUE(
      ExecuteSql(&engine_, "INSERT INTO dwarfdb.dwarf_cell (id) VALUES (1)").ok());
  EXPECT_TRUE(
      ExecuteSql(&engine_, "INSERT INTO dwarfdb.dwarf_cell (id) VALUES (1)")
          .status()
          .IsAlreadyExists());
}

}  // namespace
}  // namespace scdwarf::sql
