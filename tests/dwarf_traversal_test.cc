#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/traversal.h"

namespace scdwarf::dwarf {
namespace {

DwarfCube BuildSmallCube() {
  CubeSchema schema("t",
                    {DimensionSpec("Country"), DimensionSpec("City"),
                     DimensionSpec("Station")},
                    "m");
  DwarfBuilder builder(schema);
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Pearse St"}, 5).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Cork", "Patrick St"}, 2).ok());
  EXPECT_TRUE(builder.AddTuple({"France", "Paris", "Bastille"}, 7).ok());
  return std::move(builder).Build().ValueOrDie();
}

TEST(TraversalTest, VisitsEveryReachableNodeExactlyOnce) {
  DwarfCube cube = BuildSmallCube();
  for (TraversalOrder order :
       {TraversalOrder::kDepthFirst, TraversalOrder::kBreadthFirst}) {
    std::vector<NodeId> visited = CollectReachableNodes(cube, order);
    std::set<NodeId> unique(visited.begin(), visited.end());
    EXPECT_EQ(unique.size(), visited.size()) << "duplicate visits";
    // Every arena node is reachable in a freshly built cube.
    EXPECT_EQ(visited.size(), cube.num_nodes());
  }
}

TEST(TraversalTest, RootVisitedFirst) {
  DwarfCube cube = BuildSmallCube();
  for (TraversalOrder order :
       {TraversalOrder::kDepthFirst, TraversalOrder::kBreadthFirst}) {
    std::vector<NodeId> visited = CollectReachableNodes(cube, order);
    ASSERT_FALSE(visited.empty());
    EXPECT_EQ(visited.front(), cube.root());
  }
}

TEST(TraversalTest, BreadthFirstIsLevelMonotonic) {
  DwarfCube cube = BuildSmallCube();
  std::vector<NodeId> visited =
      CollectReachableNodes(cube, TraversalOrder::kBreadthFirst);
  for (size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LE(cube.node(visited[i - 1]).level, cube.node(visited[i]).level);
  }
}

TEST(TraversalTest, DepthFirstDescendsBeforeSiblings) {
  DwarfCube cube = BuildSmallCube();
  std::vector<NodeId> visited =
      CollectReachableNodes(cube, TraversalOrder::kDepthFirst);
  // Second visited node must be a child of the root's first cell
  // (the paper's "Ireland first, then all its descendants" order).
  ASSERT_GE(visited.size(), 2u);
  const NodeView root = cube.node(cube.root());
  EXPECT_EQ(visited[1], root.cells[0].child);
}

TEST(TraversalTest, CellCallbacksCoverAllCells) {
  DwarfCube cube = BuildSmallCube();
  size_t cell_count = 0;
  size_t all_count = 0;
  size_t leaf_cells = 0;
  CubeVisitor visitor;
  visitor.on_cell = [&](NodeId, const DwarfCell&, bool leaf) {
    ++cell_count;
    if (leaf) ++leaf_cells;
    return Status::OK();
  };
  visitor.on_all_cell = [&](NodeId, const NodeView&, bool) {
    ++all_count;
    return Status::OK();
  };
  ASSERT_TRUE(TraverseCube(cube, TraversalOrder::kDepthFirst, visitor).ok());
  EXPECT_EQ(cell_count, cube.stats().cell_count);
  EXPECT_EQ(all_count, cube.num_nodes());
  EXPECT_GT(leaf_cells, 0u);
}

TEST(TraversalTest, VisitorErrorAbortsWalk) {
  DwarfCube cube = BuildSmallCube();
  int visits = 0;
  CubeVisitor visitor;
  visitor.on_node = [&](NodeId, const NodeView&) -> Status {
    if (++visits == 2) return Status::Internal("stop");
    return Status::OK();
  };
  Status status = TraverseCube(cube, TraversalOrder::kDepthFirst, visitor);
  EXPECT_TRUE(status.IsInternal());
  EXPECT_EQ(visits, 2);
}

TEST(TraversalTest, EmptyCubeTraversalIsOk) {
  CubeSchema schema("e", {DimensionSpec("x")}, "m");
  DwarfBuilder builder(schema);
  DwarfCube cube = std::move(builder).Build().ValueOrDie();
  int visits = 0;
  CubeVisitor visitor;
  visitor.on_node = [&](NodeId, const NodeView&) {
    ++visits;
    return Status::OK();
  };
  EXPECT_TRUE(TraverseCube(cube, TraversalOrder::kDepthFirst, visitor).ok());
  EXPECT_EQ(visits, 0);
}

TEST(TraversalTest, ParentIdsInvertChildEdges) {
  DwarfCube cube = BuildSmallCube();
  std::vector<std::vector<NodeId>> parents = ComputeParentIds(cube);
  ASSERT_EQ(parents.size(), cube.num_nodes());
  EXPECT_TRUE(parents[cube.root()].empty());
  // Verify every parent list against a forward scan.
  for (NodeId id = 0; id < cube.num_nodes(); ++id) {
    const NodeView node = cube.node(id);
    if (cube.IsLeafLevel(node.level)) continue;
    for (const DwarfCell& cell : node.cells) {
      const std::vector<NodeId>& p = parents[cell.child];
      EXPECT_NE(std::find(p.begin(), p.end(), id), p.end());
    }
    const std::vector<NodeId>& p = parents[node.all_child];
    EXPECT_NE(std::find(p.begin(), p.end(), id), p.end());
  }
}

TEST(TraversalTest, CoalescedNodesHaveMultipleParents) {
  // A single-chain cube coalesces every ALL pointer, giving the chain nodes
  // two parents (the cell and the ALL pointer of the same parent node count
  // once each... the same parent is deduplicated, so look for the case where
  // two distinct nodes share a child).
  CubeSchema schema("c", {DimensionSpec("a"), DimensionSpec("b")}, "m");
  DwarfBuilder builder(schema);
  // Two 'a' values sharing identical 'b' suffix: 'b' sub-dwarfs stay distinct
  // (prefix expansion), but the root ALL merge is memoized.
  ASSERT_TRUE(builder.AddTuple({"a1", "b1"}, 1).ok());
  ASSERT_TRUE(builder.AddTuple({"a2", "b1"}, 2).ok());
  DwarfCube cube = std::move(builder).Build().ValueOrDie();
  std::vector<std::vector<NodeId>> parents = ComputeParentIds(cube);
  size_t multi_parent = 0;
  for (const auto& p : parents) {
    if (p.size() > 1) ++multi_parent;
  }
  // With only two distinct leaves and one merged ALL node, no sharing is
  // guaranteed here; build a deeper shared case instead.
  CubeSchema schema3("c3",
                     {DimensionSpec("a"), DimensionSpec("b"), DimensionSpec("c")},
                     "m");
  DwarfBuilder builder3(schema3);
  ASSERT_TRUE(builder3.AddTuple({"a1", "b1", "c1"}, 1).ok());
  DwarfCube chain = std::move(builder3).Build().ValueOrDie();
  // Root: cell a1 -> node B, ALL -> node B (coalesced): B has 1 parent entry
  // (deduplicated), but B's child node C is pointed to by B.cell and B.ALL.
  std::vector<std::vector<NodeId>> chain_parents = ComputeParentIds(chain);
  (void)multi_parent;
  size_t chain_multi = 0;
  for (const auto& p : chain_parents) {
    if (p.size() >= 1) ++chain_multi;
  }
  EXPECT_EQ(chain.num_nodes(), 3u);
  EXPECT_EQ(chain.stats().coalesced_all_count, 2u);
}

}  // namespace
}  // namespace scdwarf::dwarf
