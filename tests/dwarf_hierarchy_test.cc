#include <gtest/gtest.h>

#include <map>

#include "dwarf/builder.h"
#include "dwarf/hierarchy.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {
namespace {

/// City > Area > Station hierarchy over a bikes cube.
Hierarchy BikesHierarchy() {
  auto hierarchy = Hierarchy::Create("geo", {"City", "Area", "Station"});
  EXPECT_TRUE(hierarchy.ok());
  struct Edge {
    int level;
    const char* child;
    const char* parent;
  };
  const Edge edges[] = {
      {1, "Docklands", "Dublin"},   {1, "Northside", "Dublin"},
      {1, "Centre", "Cork"},        {2, "Fenian St", "Docklands"},
      {2, "Hanover Quay", "Docklands"}, {2, "Dorset St", "Northside"},
      {2, "Patrick St", "Centre"},
  };
  for (const Edge& edge : edges) {
    EXPECT_TRUE(hierarchy->AddEdge(edge.level, edge.child, edge.parent).ok());
  }
  return std::move(hierarchy).ValueOrDie();
}

DwarfCube BikesCube() {
  CubeSchema schema(
      "bikes", {DimensionSpec("Day"), DimensionSpec("Station")}, "bikes");
  DwarfBuilder builder(schema);
  struct Row {
    const char* day;
    const char* station;
    Measure bikes;
  };
  const Row rows[] = {
      {"Mon", "Fenian St", 3},   {"Mon", "Hanover Quay", 5},
      {"Mon", "Dorset St", 2},   {"Mon", "Patrick St", 7},
      {"Tue", "Fenian St", 4},   {"Tue", "Patrick St", 1},
  };
  for (const Row& row : rows) {
    EXPECT_TRUE(builder.AddTuple({row.day, row.station}, row.bikes).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

// --------------------------------------------------------- structure

TEST(HierarchyTest, CreateValidation) {
  EXPECT_FALSE(Hierarchy::Create("h", {"only"}).ok());
  EXPECT_FALSE(Hierarchy::Create("h", {"a", ""}).ok());
  EXPECT_FALSE(Hierarchy::Create("h", {"a", "a"}).ok());
  EXPECT_TRUE(Hierarchy::Create("h", {"a", "b", "c"}).ok());
}

TEST(HierarchyTest, EdgeRules) {
  auto hierarchy = Hierarchy::Create("h", {"top", "leaf"}).ValueOrDie();
  EXPECT_TRUE(hierarchy.AddEdge(1, "x", "p").ok());
  EXPECT_TRUE(hierarchy.AddEdge(1, "x", "p").ok());  // same edge: idempotent
  EXPECT_TRUE(hierarchy.AddEdge(1, "x", "q").IsInvalidArgument());
  EXPECT_TRUE(hierarchy.AddEdge(0, "x", "p").IsOutOfRange());
  EXPECT_TRUE(hierarchy.AddEdge(2, "x", "p").IsOutOfRange());
}

TEST(HierarchyTest, Navigation) {
  Hierarchy hierarchy = BikesHierarchy();
  EXPECT_EQ(*hierarchy.ParentOf(2, "Fenian St"), "Docklands");
  EXPECT_EQ(*hierarchy.ParentOf(1, "Docklands"), "Dublin");
  EXPECT_TRUE(hierarchy.ParentOf(0, "Dublin").status().IsOutOfRange());
  EXPECT_TRUE(hierarchy.ParentOf(2, "Nowhere").status().IsNotFound());

  EXPECT_EQ(*hierarchy.AncestorOf(2, "Fenian St", 0), "Dublin");
  EXPECT_EQ(*hierarchy.AncestorOf(2, "Fenian St", 2), "Fenian St");

  EXPECT_EQ(hierarchy.ChildrenOf(0, "Dublin"),
            (std::vector<std::string>{"Docklands", "Northside"}));
  EXPECT_EQ(hierarchy.ChildrenOf(1, "Docklands"),
            (std::vector<std::string>{"Fenian St", "Hanover Quay"}));
  EXPECT_TRUE(hierarchy.ChildrenOf(2, "Fenian St").empty());

  EXPECT_EQ(hierarchy.LeafDescendantsOf(0, "Dublin"),
            (std::vector<std::string>{"Fenian St", "Hanover Quay",
                                      "Dorset St"}));
  EXPECT_EQ(hierarchy.LeafDescendantsOf(2, "Patrick St"),
            (std::vector<std::string>{"Patrick St"}));

  EXPECT_EQ(hierarchy.MembersAt(0),
            (std::vector<std::string>{"Cork", "Dublin"}));
  EXPECT_EQ(*hierarchy.LevelIndex("Area"), 1u);
  EXPECT_TRUE(hierarchy.LevelIndex("Country").status().IsNotFound());
}

TEST(HierarchyTest, ValidateCovers) {
  Hierarchy hierarchy = BikesHierarchy();
  DwarfCube cube = BikesCube();
  EXPECT_TRUE(hierarchy.ValidateCovers(cube.dictionary(1)).ok());

  // A cube with a station missing from the hierarchy fails validation.
  CubeSchema schema("b", {DimensionSpec("Station")}, "m");
  DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"Unknown St"}, 1).ok());
  DwarfCube bad = std::move(builder).Build().ValueOrDie();
  EXPECT_TRUE(
      hierarchy.ValidateCovers(bad.dictionary(0)).IsFailedPrecondition());
}

// ------------------------------------------------------------ queries

TEST(HierarchicalQueryTest, RollsUpOverDescendants) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  // Dublin = Fenian St (3+4) + Hanover Quay (5) + Dorset St (2) = 14.
  EXPECT_EQ(*HierarchicalQuery(cube, 1, hierarchy, 0, "Dublin"), 14);
  EXPECT_EQ(*HierarchicalQuery(cube, 1, hierarchy, 0, "Cork"), 8);
  EXPECT_EQ(*HierarchicalQuery(cube, 1, hierarchy, 1, "Docklands"), 12);
  // Leaf level behaves like a point query.
  EXPECT_EQ(*HierarchicalQuery(cube, 1, hierarchy, 2, "Fenian St"), 7);
}

TEST(HierarchicalQueryTest, UnknownMemberIsNotFound) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  // Member with no data under it.
  EXPECT_TRUE(HierarchicalQuery(cube, 1, hierarchy, 0, "Galway")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(HierarchicalQuery(cube, 9, hierarchy, 0, "Dublin")
                  .status()
                  .IsOutOfRange());
}

TEST(DrillDownTest, EnumeratesChildrenWithAggregates) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  auto rows = DrillDown(cube, 1, hierarchy, 0, "Dublin");
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::map<std::string, Measure> by_area;
  for (const SliceRow& row : *rows) by_area[row.keys[0]] = row.measure;
  EXPECT_EQ(by_area.size(), 2u);
  EXPECT_EQ(by_area["Docklands"], 12);
  EXPECT_EQ(by_area["Northside"], 2);
  // Drilling below the leaf level is rejected.
  EXPECT_TRUE(DrillDown(cube, 1, hierarchy, 2, "Fenian St")
                  .status()
                  .IsOutOfRange());
}

TEST(RollUpToLevelTest, MaterializesCoarserCube) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  auto rolled = RollUpToLevel(cube, 1, hierarchy, 1);
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(rolled->schema().dimensions()[1].name, "Area");
  // Three areas instead of four stations.
  EXPECT_EQ(rolled->dictionary(1).size(), 3u);
  EXPECT_EQ(*PointQueryByName(*rolled, {"Mon", "Docklands"}), 8);
  EXPECT_EQ(*PointQueryByName(*rolled, {std::nullopt, "Centre"}), 8);
  // Grand total preserved.
  EXPECT_EQ(*PointQueryByName(*rolled, {std::nullopt, std::nullopt}),
            *PointQueryByName(cube, {std::nullopt, std::nullopt}));
}

TEST(RollUpToLevelTest, CityLevel) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  auto rolled = RollUpToLevel(cube, 1, hierarchy, 0);
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(*PointQueryByName(*rolled, {std::nullopt, "Dublin"}), 14);
  EXPECT_EQ(*PointQueryByName(*rolled, {"Tue", "Cork"}), 1);
}

TEST(RollUpToLevelTest, Validation) {
  DwarfCube cube = BikesCube();
  Hierarchy hierarchy = BikesHierarchy();
  EXPECT_TRUE(RollUpToLevel(cube, 1, hierarchy, 2).status()
                  .IsInvalidArgument());  // leaf level is not a rollup
  EXPECT_TRUE(RollUpToLevel(cube, 7, hierarchy, 0).status().IsOutOfRange());
}

TEST(RollUpToLevelTest, MinMaxAggregatesRollUpCorrectly) {
  CubeSchema schema("m", {DimensionSpec("Station")}, "bikes", AggFn::kMax);
  DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"Fenian St"}, 3).ok());
  ASSERT_TRUE(builder.AddTuple({"Hanover Quay"}, 9).ok());
  ASSERT_TRUE(builder.AddTuple({"Patrick St"}, 5).ok());
  DwarfCube cube = std::move(builder).Build().ValueOrDie();
  Hierarchy hierarchy = BikesHierarchy();
  auto rolled = RollUpToLevel(cube, 0, hierarchy, 1);
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(*PointQueryByName(*rolled, {"Docklands"}), 9);  // max(3, 9)
  EXPECT_EQ(*PointQueryByName(*rolled, {"Centre"}), 5);
}

}  // namespace
}  // namespace scdwarf::dwarf
