#include <gtest/gtest.h>

#include "json/json_parser.h"
#include "json/json_value.h"

namespace scdwarf::json {
namespace {

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(*ParseJson("true")->AsBool(), true);
  EXPECT_EQ(*ParseJson("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(*ParseJson("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(*ParseJson("-0.25e2")->AsNumber(), -25.0);
  EXPECT_EQ(*ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParserTest, WhitespaceTolerated) {
  auto value = ParseJson("  {\n\t\"a\" : 1 }  ");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_DOUBLE_EQ(*value->Get("a")->AsNumber(), 1.0);
}

TEST(JsonParserTest, NestedStructures) {
  auto value = ParseJson(
      R"({"stations":[{"name":"Fenian St","bikes":3},{"name":"Pearse St","bikes":5}]})");
  ASSERT_TRUE(value.ok()) << value.status();
  const JsonArray* stations = value->Get("stations")->AsArray();
  ASSERT_NE(stations, nullptr);
  ASSERT_EQ(stations->size(), 2u);
  EXPECT_EQ(*(*stations)[0].Get("name")->AsString(), "Fenian St");
  EXPECT_DOUBLE_EQ(*(*stations)[1].Get("bikes")->AsNumber(), 5.0);
}

TEST(JsonParserTest, StringEscapes) {
  auto value = ParseJson(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(*value->AsString(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParserTest, UnicodeEscapes) {
  EXPECT_EQ(*ParseJson(R"("A")")->AsString(), "A");
  EXPECT_EQ(*ParseJson(R"("é")")->AsString(), "\xC3\xA9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(*ParseJson(R"("😀")")->AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, UnpairedSurrogateRejected) {
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());
  EXPECT_FALSE(ParseJson(R"("\ude00")").ok());
}

TEST(JsonParserTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "}", "[1,", "[1 2]", "{\"a\":}", "{\"a\" 1}", "{a:1}",
        "tru", "01x", "\"unterminated", "[1]]", "nul", "+1", "--1", "1."}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParserTest, RawControlCharacterRejected) {
  std::string input = "\"a\nb\"";
  EXPECT_FALSE(ParseJson(input).ok());
}

TEST(JsonParserTest, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParserTest, ModerateNestingAccepted) {
  std::string input(100, '[');
  input += "1";
  input += std::string(100, ']');
  EXPECT_TRUE(ParseJson(input).ok());
}

TEST(JsonValueTest, GetPath) {
  auto value = ParseJson(R"({"a":{"b":{"c":42}}})");
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value->GetPath("a.b.c")->AsNumber(), 42.0);
  EXPECT_TRUE(value->GetPath("a.x.c").status().IsNotFound());
}

TEST(JsonValueTest, TypeMismatchErrors) {
  JsonValue number(1.5);
  EXPECT_TRUE(number.AsBool().status().IsInvalidArgument());
  EXPECT_TRUE(number.AsString().status().IsInvalidArgument());
  EXPECT_EQ(number.AsArray(), nullptr);
  EXPECT_TRUE(number.Get("k").status().IsInvalidArgument());
}

TEST(JsonValueTest, ToFieldString) {
  EXPECT_EQ(JsonValue(3).ToFieldString(), "3");
  EXPECT_EQ(JsonValue(3.5).ToFieldString(), "3.5");
  EXPECT_EQ(JsonValue("x").ToFieldString(), "x");
  EXPECT_EQ(JsonValue(true).ToFieldString(), "true");
  EXPECT_EQ(JsonValue(nullptr).ToFieldString(), "null");
}

TEST(JsonSerializerTest, CompactRoundTrip) {
  const char* input =
      R"({"name":"Fenian St","bikes":3,"open":true,"tags":["a","b"],"extra":null})";
  auto value = ParseJson(input);
  ASSERT_TRUE(value.ok());
  std::string out = SerializeJson(*value);
  auto reparsed = ParseJson(out);
  ASSERT_TRUE(reparsed.ok()) << out;
  EXPECT_EQ(*reparsed->Get("name")->AsString(), "Fenian St");
  EXPECT_EQ(reparsed->Get("tags")->AsArray()->size(), 2u);
}

TEST(JsonSerializerTest, PreservesMemberOrder) {
  auto value = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(SerializeJson(*value), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonSerializerTest, PrettyOutputReparses) {
  auto value = ParseJson(R"({"a":[1,2],"b":{"c":true}})");
  ASSERT_TRUE(value.ok());
  std::string pretty = SerializeJson(*value, /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(ParseJson(pretty).ok());
}

TEST(JsonSerializerTest, EscapesControlCharacters) {
  JsonValue value(std::string("a\x01""b"));
  EXPECT_EQ(SerializeJson(value), "\"a\\u0001b\"");
}

TEST(JsonSerializerTest, EmptyContainers) {
  EXPECT_EQ(SerializeJson(JsonValue(JsonArray{})), "[]");
  EXPECT_EQ(SerializeJson(JsonValue(JsonObject{})), "{}");
}

}  // namespace
}  // namespace scdwarf::json
