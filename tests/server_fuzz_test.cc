// Differential fuzz of the cube query service (src/server): ~500
// seeded-random point / aggregate / slice / rollup requests are sent through
// every server path — uncached, cached, and cursor-session pagination — and
// each response must be byte-identical to executing the same request
// directly against the served snapshot with wire::ExecuteRequest. The sweep
// crosses two epoch publishes, so cache revalidation, invalidation and
// snapshot pinning are all on the differential path. Deterministic: one
// xoshiro seed drives the cube, the updates and every request.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "server/query_server.h"
#include "server/wire.h"

namespace scdwarf::server {
namespace {

using dwarf::Measure;
using json::JsonArray;
using json::JsonObject;
using json::JsonValue;

constexpr uint64_t kSeed = 0x5ca1ab1e;
constexpr int kQueries = 500;

const std::vector<std::string>& Days() {
  static const auto* v = new std::vector<std::string>{
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return *v;
}

std::vector<std::string> MakeVocab(const std::string& prefix, int count) {
  std::vector<std::string> vocab;
  vocab.reserve(count);
  for (int i = 0; i < count; ++i) {
    vocab.push_back(prefix + std::to_string(i));
  }
  return vocab;
}

struct FuzzWorld {
  std::vector<std::string> dims = {"Day", "Station", "Area"};
  std::vector<std::vector<std::string>> vocab = {
      Days(), MakeVocab("Station", 12), MakeVocab("Area", 5)};
};

dwarf::CubeSchema FuzzSchema(const FuzzWorld& world) {
  std::vector<dwarf::DimensionSpec> specs;
  for (const std::string& dim : world.dims) {
    specs.emplace_back(dim);
  }
  return dwarf::CubeSchema("fuzz", std::move(specs), "bikes",
                           dwarf::AggFn::kSum);
}

std::vector<std::string> RandomKeyPath(const FuzzWorld& world, Rng& rng) {
  std::vector<std::string> keys;
  keys.reserve(world.dims.size());
  for (const auto& vocab : world.vocab) {
    keys.push_back(vocab[rng.NextBelow(vocab.size())]);
  }
  return keys;
}

dwarf::DwarfCube BuildFuzzCube(const FuzzWorld& world, Rng& rng,
                               int tuple_count) {
  dwarf::DwarfBuilder builder(FuzzSchema(world));
  for (int i = 0; i < tuple_count; ++i) {
    EXPECT_TRUE(builder
                    .AddTuple(RandomKeyPath(world, rng),
                              static_cast<Measure>(rng.NextInRange(1, 50)))
                    .ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

// A dimension value drawn mostly from the vocabulary, sometimes unknown —
// the miss paths (NotFound, empty slices) must differ identically too.
std::string RandomValue(const std::vector<std::string>& vocab, Rng& rng) {
  if (rng.NextBool(0.12)) return "NoSuch" + std::to_string(rng.NextBelow(4));
  return vocab[rng.NextBelow(vocab.size())];
}

std::string RandomRequestJson(const FuzzWorld& world, Rng& rng) {
  JsonObject root;
  switch (rng.NextBelow(4)) {
    case 0: {  // point, each dim null / known / unknown
      root.emplace_back("op", JsonValue("point"));
      JsonArray keys;
      for (const auto& vocab : world.vocab) {
        if (rng.NextBool(0.3)) {
          keys.push_back(JsonValue(nullptr));
        } else {
          keys.push_back(JsonValue(RandomValue(vocab, rng)));
        }
      }
      root.emplace_back("keys", JsonValue(std::move(keys)));
      break;
    }
    case 1: {  // aggregate with a mixed predicate per dimension
      root.emplace_back("op", JsonValue("aggregate"));
      JsonArray predicates;
      for (const auto& vocab : world.vocab) {
        JsonObject predicate;
        switch (rng.NextBelow(4)) {
          case 0:
            predicate.emplace_back("kind", JsonValue("all"));
            break;
          case 1:
            predicate.emplace_back("kind", JsonValue("point"));
            predicate.emplace_back("key", JsonValue(RandomValue(vocab, rng)));
            break;
          case 2: {
            predicate.emplace_back("kind", JsonValue("set"));
            JsonArray members;
            size_t count = 1 + rng.NextBelow(3);
            for (size_t i = 0; i < count; ++i) {
              members.push_back(JsonValue(RandomValue(vocab, rng)));
            }
            predicate.emplace_back("keys", JsonValue(std::move(members)));
            break;
          }
          default: {
            predicate.emplace_back("kind", JsonValue("range"));
            int64_t lo = rng.NextInRange(0, static_cast<int64_t>(vocab.size()));
            int64_t hi = rng.NextInRange(lo, static_cast<int64_t>(vocab.size()));
            predicate.emplace_back("lo", JsonValue(lo));
            predicate.emplace_back("hi", JsonValue(hi));
            break;
          }
        }
        predicates.push_back(JsonValue(std::move(predicate)));
      }
      root.emplace_back("predicates", JsonValue(std::move(predicates)));
      break;
    }
    case 2: {  // slice on a random dimension
      size_t dim = rng.NextBelow(world.dims.size());
      root.emplace_back("op", JsonValue("slice"));
      root.emplace_back("dim", JsonValue(world.dims[dim]));
      root.emplace_back("key", JsonValue(RandomValue(world.vocab[dim], rng)));
      break;
    }
    default: {  // rollup over a random non-empty dimension subset
      root.emplace_back("op", JsonValue("rollup"));
      std::vector<std::string> dims = world.dims;
      // Random order, random non-empty prefix.
      for (size_t i = dims.size(); i > 1; --i) {
        std::swap(dims[i - 1], dims[rng.NextBelow(i)]);
      }
      size_t count = 1 + rng.NextBelow(dims.size());
      JsonArray names;
      for (size_t i = 0; i < count; ++i) names.push_back(JsonValue(dims[i]));
      root.emplace_back("dims", JsonValue(std::move(names)));
      break;
    }
  }
  return json::SerializeJson(JsonValue(std::move(root)));
}

struct ParsedEnvelope {
  bool ok = false;
  uint64_t epoch = 0;
  bool cached = false;
  JsonValue value;
};

ParsedEnvelope ParseEnvelope(const std::string& payload) {
  ParsedEnvelope parsed;
  auto value = json::ParseJson(payload);
  EXPECT_TRUE(value.ok()) << payload;
  if (!value.ok()) return parsed;
  parsed.value = *value;
  parsed.ok = value->Get("ok").ValueOrDie().AsBool().ValueOrDie();
  parsed.epoch = static_cast<uint64_t>(
      value->Get("epoch").ValueOrDie().AsNumber().ValueOrDie());
  parsed.cached = value->Get("cached").ValueOrDie().AsBool().ValueOrDie();
  return parsed;
}

// Serialized "rows" array of a direct ExecuteRequest payload.
std::string DirectRowsJson(const ExecResult& direct) {
  auto payload = json::ParseJson(direct.payload_json);
  EXPECT_TRUE(payload.ok()) << direct.payload_json;
  if (!payload.ok()) return "";
  return json::SerializeJson(payload->Get("rows").ValueOrDie());
}

// Pages a cursor session to exhaustion and returns the concatenated rows,
// asserting every page reports \p want_epoch (the pinned snapshot's epoch).
std::string DrainSessionRows(ServerHandle& handle, const std::string& query,
                             size_t page_size, uint64_t want_epoch,
                             QueryServer* server_to_update_mid_drain = nullptr,
                             const std::vector<std::pair<std::vector<std::string>,
                                                         Measure>>* update = nullptr) {
  ParsedEnvelope opened = ParseEnvelope(handle.QueryOpen(query, page_size));
  EXPECT_TRUE(opened.ok) << query;
  if (!opened.ok) return "";
  EXPECT_EQ(opened.epoch, want_epoch);
  uint64_t cursor = static_cast<uint64_t>(
      opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
  JsonArray rows;
  bool first_page = true;
  for (;;) {
    ParsedEnvelope page = ParseEnvelope(handle.QueryNext(cursor));
    EXPECT_TRUE(page.ok) << query;
    if (!page.ok) break;
    EXPECT_EQ(page.epoch, want_epoch) << "cursor lost its pinned snapshot";
    JsonValue rows_value = page.value.Get("rows").ValueOrDie();
    const JsonArray* got = rows_value.AsArray();
    EXPECT_NE(got, nullptr);
    if (got == nullptr) break;
    rows.insert(rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
    if (first_page && server_to_update_mid_drain != nullptr) {
      // Publish a new epoch mid-pagination: the rest of the drain must not
      // notice.
      EXPECT_TRUE(server_to_update_mid_drain->ApplyUpdate(*update).ok());
      first_page = false;
    }
  }
  return json::SerializeJson(JsonValue(rows));
}

// One differential check: the server's response bytes must equal the
// envelope rebuilt around the direct execution's payload.
void ExpectResponseMatchesDirect(const std::string& response,
                                 const dwarf::DwarfCube& cube,
                                 const QueryRequest& request,
                                 const std::string& request_json) {
  ParsedEnvelope envelope = ParseEnvelope(response);
  ExecResult direct = ExecuteRequest(cube, request);
  EXPECT_EQ(response, MakeResponse(direct.ok, envelope.epoch, envelope.cached,
                                   direct.payload_json))
      << request_json;
}

TEST(ServerFuzzTest, AllServerPathsMatchDirectTraversal) {
  FuzzWorld world;
  Rng rng(kSeed);
  QueryServer server(BuildFuzzCube(world, rng, 400));
  ServerHandle handle(&server);

  // Publish twice during the sweep: one batch re-touches existing prefixes,
  // one introduces brand-new dictionary values.
  int publishes_left = 2;
  uint64_t rows_compared = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (publishes_left > 0 && i > 0 && i % (kQueries / 3) == 0) {
      std::vector<std::pair<std::vector<std::string>, Measure>> batch;
      for (int t = 0; t < 8; ++t) {
        batch.emplace_back(RandomKeyPath(world, rng),
                           static_cast<Measure>(rng.NextInRange(1, 50)));
      }
      if (publishes_left == 1) {
        batch.emplace_back(
            std::vector<std::string>{"Mon", "StationNew", "AreaNew"},
            Measure{17});
      }
      ASSERT_TRUE(server.ApplyUpdate(batch).ok());
      --publishes_left;
    }

    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    EpochCubeStore::Snapshot snapshot = server.store().snapshot();

    // Path 1: one-shot (a mix of cache misses and hits — repeated requests
    // re-occur by seed, and revalidation carries entries across publishes).
    ExpectResponseMatchesDirect(handle.Call(request_json), *snapshot.cube,
                                *request, request_json);
    // Path 2: immediately repeated, usually served from the cache.
    ExpectResponseMatchesDirect(handle.Call(request_json), *snapshot.cube,
                                *request, request_json);

    // Path 3: cursor pagination for row-producing ops.
    if (request->op == RequestOp::kSlice || request->op == RequestOp::kRollUp) {
      ExecResult direct = ExecuteRequest(*snapshot.cube, *request);
      if (direct.ok) {
        size_t page_size = 1 + rng.NextBelow(16);
        std::string rows = DrainSessionRows(handle, request_json, page_size,
                                            snapshot.epoch);
        EXPECT_EQ(rows, DirectRowsJson(direct)) << request_json;
        ++rows_compared;
      }
    }
  }
  EXPECT_EQ(server.epoch(), 2u);  // both publishes happened
  EXPECT_GT(rows_compared, 50u);
  EXPECT_GT(server.Stats().cache.hits, 0u);
  EXPECT_GT(server.Stats().cache.revalidated, 0u);
  EXPECT_EQ(server.open_sessions(), 0u);
}

// Focused differential: sessions opened right before a publish and drained
// right after must replay the pre-publish snapshot exactly, for several page
// sizes, while one-shot queries already serve the new epoch.
TEST(ServerFuzzTest, MidDrainPublishesNeverLeakIntoOpenCursors) {
  FuzzWorld world;
  Rng rng(kSeed ^ 0xfeed);
  QueryServer server(BuildFuzzCube(world, rng, 300));
  ServerHandle handle(&server);

  for (size_t page_size : {size_t{1}, size_t{7}, size_t{64}}) {
    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok());
    if (request->op != RequestOp::kSlice && request->op != RequestOp::kRollUp) {
      continue;  // only row ops page; the seed still advances identically
    }
    EpochCubeStore::Snapshot pinned = server.store().snapshot();
    ExecResult direct = ExecuteRequest(*pinned.cube, *request);
    if (!direct.ok) continue;
    std::vector<std::pair<std::vector<std::string>, Measure>> batch;
    for (int t = 0; t < 4; ++t) {
      batch.emplace_back(RandomKeyPath(world, rng),
                         static_cast<Measure>(rng.NextInRange(1, 50)));
    }
    std::string rows = DrainSessionRows(handle, request_json, page_size,
                                        pinned.epoch, &server, &batch);
    EXPECT_EQ(rows, DirectRowsJson(direct)) << request_json;
  }
}

}  // namespace
}  // namespace scdwarf::server
