// Differential fuzz of the cube query service (src/server): ~500
// seeded-random point / aggregate / slice / rollup requests are sent through
// every server path — uncached, cached, and cursor-session pagination — and
// each response must be byte-identical to executing the same request
// directly against the served snapshot with wire::ExecuteRequest. The sweep
// crosses two epoch publishes, so cache revalidation, invalidation and
// snapshot pinning are all on the differential path. Deterministic: one
// xoshiro seed drives the cube, the updates and every request.
//
// The epoch-storm mode (EpochStormMatchesFromScratchRebuilds) hammers the
// incremental delta-merge publish path: 24 interleaved publishes with
// cursors draining across them, each epoch differentially checked against a
// from-scratch rebuild over the full tuple history — including byte-level
// comparison of the durable `.cf` segments both cubes store.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/rng.h"
#include "dwarf/builder.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"
#include "replica/router.h"
#include "replica/snapshot.h"
#include "server/binwire.h"
#include "server/query_server.h"
#include "server/tcp_server.h"
#include "server/wire.h"

namespace scdwarf::server {
namespace {

using dwarf::Measure;
using json::JsonArray;
using json::JsonObject;
using json::JsonValue;

constexpr uint64_t kSeed = 0x5ca1ab1e;
constexpr int kQueries = 500;

const std::vector<std::string>& Days() {
  static const auto* v = new std::vector<std::string>{
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return *v;
}

std::vector<std::string> MakeVocab(const std::string& prefix, int count) {
  std::vector<std::string> vocab;
  vocab.reserve(count);
  for (int i = 0; i < count; ++i) {
    vocab.push_back(prefix + std::to_string(i));
  }
  return vocab;
}

struct FuzzWorld {
  std::vector<std::string> dims = {"Day", "Station", "Area"};
  std::vector<std::vector<std::string>> vocab = {
      Days(), MakeVocab("Station", 12), MakeVocab("Area", 5)};
  // Day and Station are ordered, so value-form ranges and roll-up "where"
  // filters are legal on them (Area stays unordered to keep the rejection
  // paths on the differential path too).
  std::vector<bool> ordered = {true, true, false};
};

dwarf::CubeSchema FuzzSchema(const FuzzWorld& world) {
  std::vector<dwarf::DimensionSpec> specs;
  for (size_t dim = 0; dim < world.dims.size(); ++dim) {
    specs.emplace_back(world.dims[dim], "", world.ordered[dim]);
  }
  return dwarf::CubeSchema("fuzz", std::move(specs), "bikes",
                           dwarf::AggFn::kSum);
}

std::vector<std::string> RandomKeyPath(const FuzzWorld& world, Rng& rng) {
  std::vector<std::string> keys;
  keys.reserve(world.dims.size());
  for (const auto& vocab : world.vocab) {
    keys.push_back(vocab[rng.NextBelow(vocab.size())]);
  }
  return keys;
}

dwarf::DwarfCube BuildFuzzCube(const FuzzWorld& world, Rng& rng,
                               int tuple_count) {
  dwarf::DwarfBuilder builder(FuzzSchema(world));
  for (int i = 0; i < tuple_count; ++i) {
    EXPECT_TRUE(builder
                    .AddTuple(RandomKeyPath(world, rng),
                              static_cast<Measure>(rng.NextInRange(1, 50)))
                    .ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

// A dimension value drawn mostly from the vocabulary, sometimes unknown —
// the miss paths (NotFound, empty slices) must differ identically too.
std::string RandomValue(const std::vector<std::string>& vocab, Rng& rng) {
  if (rng.NextBool(0.12)) return "NoSuch" + std::to_string(rng.NextBelow(4));
  return vocab[rng.NextBelow(vocab.size())];
}

std::string RandomRequestJson(const FuzzWorld& world, Rng& rng) {
  JsonObject root;
  switch (rng.NextBelow(4)) {
    case 0: {  // point, each dim null / known / unknown
      root.emplace_back("op", JsonValue("point"));
      JsonArray keys;
      for (const auto& vocab : world.vocab) {
        if (rng.NextBool(0.3)) {
          keys.push_back(JsonValue(nullptr));
        } else {
          keys.push_back(JsonValue(RandomValue(vocab, rng)));
        }
      }
      root.emplace_back("keys", JsonValue(std::move(keys)));
      break;
    }
    case 1: {  // aggregate with a mixed predicate per dimension
      root.emplace_back("op", JsonValue("aggregate"));
      JsonArray predicates;
      for (size_t dim = 0; dim < world.vocab.size(); ++dim) {
        const auto& vocab = world.vocab[dim];
        JsonObject predicate;
        switch (rng.NextBelow(4)) {
          case 0:
            predicate.emplace_back("kind", JsonValue("all"));
            break;
          case 1:
            predicate.emplace_back("kind", JsonValue("point"));
            predicate.emplace_back("key", JsonValue(RandomValue(vocab, rng)));
            break;
          case 2: {
            predicate.emplace_back("kind", JsonValue("set"));
            JsonArray members;
            size_t count = 1 + rng.NextBelow(3);
            for (size_t i = 0; i < count; ++i) {
              members.push_back(JsonValue(RandomValue(vocab, rng)));
            }
            predicate.emplace_back("keys", JsonValue(std::move(members)));
            break;
          }
          default: {
            predicate.emplace_back("kind", JsonValue("range"));
            if (world.ordered[dim] && rng.NextBool(0.5)) {
              // Value form: bounds are dimension values resolved through the
              // rank view (sometimes unknown values — the resolver clamps).
              std::string a = RandomValue(vocab, rng);
              std::string b = RandomValue(vocab, rng);
              if (b < a) std::swap(a, b);
              predicate.emplace_back("lo", JsonValue(std::move(a)));
              predicate.emplace_back("hi", JsonValue(std::move(b)));
            } else {
              int64_t lo =
                  rng.NextInRange(0, static_cast<int64_t>(vocab.size()));
              int64_t hi =
                  rng.NextInRange(lo, static_cast<int64_t>(vocab.size()));
              predicate.emplace_back("lo", JsonValue(lo));
              predicate.emplace_back("hi", JsonValue(hi));
            }
            break;
          }
        }
        predicates.push_back(JsonValue(std::move(predicate)));
      }
      root.emplace_back("predicates", JsonValue(std::move(predicates)));
      break;
    }
    case 2: {  // slice on a random dimension
      size_t dim = rng.NextBelow(world.dims.size());
      root.emplace_back("op", JsonValue("slice"));
      root.emplace_back("dim", JsonValue(world.dims[dim]));
      root.emplace_back("key", JsonValue(RandomValue(world.vocab[dim], rng)));
      break;
    }
    default: {  // rollup over a random non-empty dimension subset
      root.emplace_back("op", JsonValue("rollup"));
      std::vector<std::string> dims = world.dims;
      // Random order, random non-empty prefix.
      for (size_t i = dims.size(); i > 1; --i) {
        std::swap(dims[i - 1], dims[rng.NextBelow(i)]);
      }
      size_t count = 1 + rng.NextBelow(dims.size());
      JsonArray names;
      for (size_t i = 0; i < count; ++i) names.push_back(JsonValue(dims[i]));
      root.emplace_back("dims", JsonValue(std::move(names)));
      // Sometimes constrain one grouped ordered dim to a value window.
      if (rng.NextBool(0.4)) {
        for (size_t i = 0; i < count; ++i) {
          size_t dim = std::find(world.dims.begin(), world.dims.end(),
                                 dims[i]) -
                       world.dims.begin();
          if (!world.ordered[dim]) continue;
          std::string a = RandomValue(world.vocab[dim], rng);
          std::string b = RandomValue(world.vocab[dim], rng);
          if (b < a) std::swap(a, b);
          JsonObject filter;
          filter.emplace_back("dim", JsonValue(dims[i]));
          filter.emplace_back("lo", JsonValue(std::move(a)));
          filter.emplace_back("hi", JsonValue(std::move(b)));
          JsonArray where;
          where.push_back(JsonValue(std::move(filter)));
          root.emplace_back("where", JsonValue(std::move(where)));
          break;
        }
      }
      break;
    }
  }
  return json::SerializeJson(JsonValue(std::move(root)));
}

struct ParsedEnvelope {
  bool ok = false;
  uint64_t epoch = 0;
  bool cached = false;
  JsonValue value;
};

ParsedEnvelope ParseEnvelope(const std::string& payload) {
  ParsedEnvelope parsed;
  auto value = json::ParseJson(payload);
  EXPECT_TRUE(value.ok()) << payload;
  if (!value.ok()) return parsed;
  parsed.value = *value;
  parsed.ok = value->Get("ok").ValueOrDie().AsBool().ValueOrDie();
  parsed.epoch = static_cast<uint64_t>(
      value->Get("epoch").ValueOrDie().AsNumber().ValueOrDie());
  parsed.cached = value->Get("cached").ValueOrDie().AsBool().ValueOrDie();
  return parsed;
}

// Serialized "rows" array of a direct ExecuteRequest payload.
std::string DirectRowsJson(const ExecResult& direct) {
  auto payload = json::ParseJson(direct.payload_json);
  EXPECT_TRUE(payload.ok()) << direct.payload_json;
  if (!payload.ok()) return "";
  return json::SerializeJson(payload->Get("rows").ValueOrDie());
}

// Pages a cursor session to exhaustion and returns the concatenated rows,
// asserting every page reports \p want_epoch (the pinned snapshot's epoch).
std::string DrainSessionRows(ServerHandle& handle, const std::string& query,
                             size_t page_size, uint64_t want_epoch,
                             QueryServer* server_to_update_mid_drain = nullptr,
                             const std::vector<std::pair<std::vector<std::string>,
                                                         Measure>>* update = nullptr) {
  ParsedEnvelope opened = ParseEnvelope(handle.QueryOpen(query, page_size));
  EXPECT_TRUE(opened.ok) << query;
  if (!opened.ok) return "";
  EXPECT_EQ(opened.epoch, want_epoch);
  uint64_t cursor = static_cast<uint64_t>(
      opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
  JsonArray rows;
  bool first_page = true;
  for (;;) {
    ParsedEnvelope page = ParseEnvelope(handle.QueryNext(cursor));
    EXPECT_TRUE(page.ok) << query;
    if (!page.ok) break;
    EXPECT_EQ(page.epoch, want_epoch) << "cursor lost its pinned snapshot";
    JsonValue rows_value = page.value.Get("rows").ValueOrDie();
    const JsonArray* got = rows_value.AsArray();
    EXPECT_NE(got, nullptr);
    if (got == nullptr) break;
    rows.insert(rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
    if (first_page && server_to_update_mid_drain != nullptr) {
      // Publish a new epoch mid-pagination: the rest of the drain must not
      // notice.
      EXPECT_TRUE(server_to_update_mid_drain->ApplyUpdate(*update).ok());
      first_page = false;
    }
  }
  return json::SerializeJson(JsonValue(rows));
}

// One differential check: the server's response bytes must equal the
// envelope rebuilt around the direct execution's payload.
void ExpectResponseMatchesDirect(const std::string& response,
                                 const dwarf::DwarfCube& cube,
                                 const QueryRequest& request,
                                 const std::string& request_json) {
  ParsedEnvelope envelope = ParseEnvelope(response);
  ExecResult direct = ExecuteRequest(cube, request);
  EXPECT_EQ(response, MakeResponse(direct.ok, envelope.epoch, envelope.cached,
                                   direct.payload_json))
      << request_json;
}

TEST(ServerFuzzTest, AllServerPathsMatchDirectTraversal) {
  FuzzWorld world;
  Rng rng(kSeed);
  QueryServer server(BuildFuzzCube(world, rng, 400));
  ServerHandle handle(&server);

  // Publish twice during the sweep: one batch re-touches existing prefixes,
  // one introduces brand-new dictionary values.
  int publishes_left = 2;
  uint64_t rows_compared = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (publishes_left > 0 && i > 0 && i % (kQueries / 3) == 0) {
      std::vector<std::pair<std::vector<std::string>, Measure>> batch;
      for (int t = 0; t < 8; ++t) {
        batch.emplace_back(RandomKeyPath(world, rng),
                           static_cast<Measure>(rng.NextInRange(1, 50)));
      }
      if (publishes_left == 1) {
        batch.emplace_back(
            std::vector<std::string>{"Mon", "StationNew", "AreaNew"},
            Measure{17});
      }
      ASSERT_TRUE(server.ApplyUpdate(batch).ok());
      --publishes_left;
    }

    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    EpochCubeStore::Snapshot snapshot = server.store().snapshot();

    // Path 1: one-shot (a mix of cache misses and hits — repeated requests
    // re-occur by seed, and revalidation carries entries across publishes).
    ExpectResponseMatchesDirect(handle.Call(request_json), *snapshot.cube,
                                *request, request_json);
    // Path 2: immediately repeated, usually served from the cache.
    ExpectResponseMatchesDirect(handle.Call(request_json), *snapshot.cube,
                                *request, request_json);

    // Path 3: cursor pagination for row-producing ops.
    if (request->op == RequestOp::kSlice || request->op == RequestOp::kRollUp) {
      ExecResult direct = ExecuteRequest(*snapshot.cube, *request);
      if (direct.ok) {
        size_t page_size = 1 + rng.NextBelow(16);
        std::string rows = DrainSessionRows(handle, request_json, page_size,
                                            snapshot.epoch);
        EXPECT_EQ(rows, DirectRowsJson(direct)) << request_json;
        ++rows_compared;
      }
    }
  }
  EXPECT_EQ(server.epoch(), 2u);  // both publishes happened
  EXPECT_GT(rows_compared, 50u);
  EXPECT_GT(server.Stats().cache.hits, 0u);
  EXPECT_GT(server.Stats().cache.revalidated, 0u);
  EXPECT_EQ(server.open_sessions(), 0u);
}

// \p name's value in a Prometheus text exposition dump ("name 3"), or 0.
uint64_t MetricValue(const std::string& text, const std::string& name) {
  size_t pos = text.find("\n" + name + " ");
  if (pos == std::string::npos) return 0;
  return static_cast<uint64_t>(
      std::stoull(text.substr(pos + name.size() + 2)));
}

// Focused revalidation check: a cached value-range aggregate and a cached
// ranged roll-up must survive a publish whose every changed key falls
// OUTSIDE the range — served cached (not recomputed) on the new epoch, and
// still byte-identical to direct execution. "Mon" < "Tue" < "Wed"
// lexicographically, so a ["Mon","Tue"] window provably misses "Wed" keys.
TEST(ServerFuzzTest, RangeQueriesRevalidateAcrossMissPublish) {
  FuzzWorld world;
  dwarf::DwarfBuilder builder(FuzzSchema(world));
  ASSERT_TRUE(builder.AddTuple({"Mon", "Station1", "Area0"}, 5).ok());
  ASSERT_TRUE(builder.AddTuple({"Tue", "Station2", "Area1"}, 7).ok());
  ASSERT_TRUE(builder.AddTuple({"Wed", "Station3", "Area2"}, 9).ok());
  QueryServer server(std::move(builder).Build().ValueOrDie());
  ServerHandle handle(&server);

  const std::string aggregate =
      R"({"op":"aggregate","predicates":[)"
      R"({"kind":"range","lo":"Mon","hi":"Tue"},)"
      R"({"kind":"all"},{"kind":"all"}]})";
  const std::string rollup =
      R"({"op":"rollup","dims":["Day","Station"],)"
      R"("where":[{"dim":"Day","lo":"Mon","hi":"Tue"}]})";
  for (const std::string& request_json : {aggregate, rollup}) {
    ParsedEnvelope first = ParseEnvelope(handle.Call(request_json));
    ASSERT_TRUE(first.ok) << request_json;
    EXPECT_FALSE(first.cached);
    EXPECT_TRUE(ParseEnvelope(handle.Call(request_json)).cached);
  }

  // Every changed key has Day="Wed", outside ["Mon","Tue"].
  ASSERT_TRUE(server
                  .ApplyUpdate({{{"Wed", "Station1", "Area0"}, 11},
                                {{"Wed", "StationNew", "Area4"}, 13}})
                  .ok());

  uint64_t revalidations =
      MetricValue(server.MetricsText(), "server_range_revalidations_total");
  EXPECT_GE(revalidations, 2u) << server.MetricsText();
  EpochCubeStore::Snapshot snapshot = server.store().snapshot();
  for (const std::string& request_json : {aggregate, rollup}) {
    std::string response = handle.Call(request_json);
    ParsedEnvelope envelope = ParseEnvelope(response);
    EXPECT_TRUE(envelope.cached) << "recomputed after a miss-publish: "
                                 << request_json;
    EXPECT_EQ(envelope.epoch, 1u);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok());
    ExpectResponseMatchesDirect(response, *snapshot.cube, *request,
                                request_json);
  }

  // A publish that DOES land inside the window must invalidate.
  ASSERT_TRUE(server.ApplyUpdate({{{"Tue", "Station2", "Area1"}, 3}}).ok());
  for (const std::string& request_json : {aggregate, rollup}) {
    ParsedEnvelope envelope = ParseEnvelope(handle.Call(request_json));
    EXPECT_FALSE(envelope.cached) << request_json;
    ASSERT_TRUE(envelope.ok);
  }
}

// Focused differential: sessions opened right before a publish and drained
// right after must replay the pre-publish snapshot exactly, for several page
// sizes, while one-shot queries already serve the new epoch.
TEST(ServerFuzzTest, MidDrainPublishesNeverLeakIntoOpenCursors) {
  FuzzWorld world;
  Rng rng(kSeed ^ 0xfeed);
  QueryServer server(BuildFuzzCube(world, rng, 300));
  ServerHandle handle(&server);

  for (size_t page_size : {size_t{1}, size_t{7}, size_t{64}}) {
    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok());
    if (request->op != RequestOp::kSlice && request->op != RequestOp::kRollUp) {
      continue;  // only row ops page; the seed still advances identically
    }
    EpochCubeStore::Snapshot pinned = server.store().snapshot();
    ExecResult direct = ExecuteRequest(*pinned.cube, *request);
    if (!direct.ok) continue;
    std::vector<std::pair<std::vector<std::string>, Measure>> batch;
    for (int t = 0; t < 4; ++t) {
      batch.emplace_back(RandomKeyPath(world, rng),
                         static_cast<Measure>(rng.NextInRange(1, 50)));
    }
    std::string rows = DrainSessionRows(handle, request_json, page_size,
                                        pinned.epoch, &server, &batch);
    EXPECT_EQ(rows, DirectRowsJson(direct)) << request_json;
  }
}

// ----------------------------------------------------------- epoch storm

namespace fs = std::filesystem;

// All segment files under \p dir, keyed by path relative to \p dir.
std::map<std::string, std::string> ReadSegments(const fs::path& dir) {
  std::map<std::string, std::string> segments;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cf") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    segments[fs::relative(entry.path(), dir).string()] = std::move(bytes);
  }
  return segments;
}

// Stores \p cube into a scratch nosql database and returns its `.cf`
// segment bytes.
std::map<std::string, std::string> StoreSegments(const dwarf::DwarfCube& cube,
                                                 const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("scdwarf_storm_" + tag);
  fs::remove_all(dir);
  {
    auto db = nosql::Database::Open(dir.string());
    EXPECT_TRUE(db.ok()) << db.status();
    if (!db.ok()) return {};
    mapper::NoSqlDwarfMapper cube_mapper(&*db, "ks");
    auto id = cube_mapper.Store(cube, {});
    EXPECT_TRUE(id.ok()) << id.status();
  }
  std::map<std::string, std::string> segments = ReadSegments(dir);
  fs::remove_all(dir);
  return segments;
}

// Mini epoch storm against the default (incremental delta-merge) publish
// path: 24 small interleaved publishes, with cursor sessions opened before
// and during the storm draining one page per epoch across many publishes.
// After every publish the served cube is differentially checked against a
// cube rebuilt from scratch over the full tuple history — structural
// equality and identical wire answers every epoch, byte-identical durable
// `.cf` segments on a sample of epochs (the from-scratch builder feeds the
// same tuples in the same order, so dictionaries — and therefore segment
// bytes — are directly comparable).
TEST(ServerFuzzTest, EpochStormMatchesFromScratchRebuilds) {
  FuzzWorld world;
  Rng rng(kSeed ^ 0x5702);
  std::vector<std::pair<std::vector<std::string>, Measure>> history;
  dwarf::DwarfBuilder initial(FuzzSchema(world));
  for (int i = 0; i < 250; ++i) {
    std::vector<std::string> keys = RandomKeyPath(world, rng);
    Measure measure = static_cast<Measure>(rng.NextInRange(1, 50));
    history.emplace_back(keys, measure);
    ASSERT_TRUE(initial.AddTuple(keys, measure).ok());
  }
  QueryServer server(std::move(initial).Build().ValueOrDie());
  ServerHandle handle(&server);

  auto rebuild_reference = [&]() {
    dwarf::DwarfBuilder builder(FuzzSchema(world));
    for (const auto& [keys, measure] : history) {
      EXPECT_TRUE(builder.AddTuple(keys, measure).ok());
    }
    return std::move(builder).Build().ValueOrDie();
  };

  struct OpenDrain {
    uint64_t cursor = 0;
    uint64_t epoch = 0;       ///< pinned snapshot epoch
    std::string request_json;
    std::string expect_rows;  ///< direct rows against the pinned snapshot
    JsonArray rows;
    bool done = false;
  };
  std::vector<OpenDrain> drains;
  auto pull_page = [&](OpenDrain& drain) {
    ParsedEnvelope page = ParseEnvelope(handle.QueryNext(drain.cursor));
    EXPECT_TRUE(page.ok) << drain.request_json;
    if (!page.ok) {
      drain.done = true;
      return;
    }
    EXPECT_EQ(page.epoch, drain.epoch) << "cursor lost its pinned snapshot";
    const JsonArray* got = page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    drain.rows.insert(drain.rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) {
      drain.done = true;
    }
  };

  constexpr int kEpochs = 24;
  uint64_t answers_compared = 0;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    // Publish a small batch; some tuples re-touch existing prefixes, some
    // introduce brand-new dictionary values.
    std::vector<std::pair<std::vector<std::string>, Measure>> batch;
    int batch_size = 1 + static_cast<int>(rng.NextBelow(6));
    for (int t = 0; t < batch_size; ++t) {
      std::vector<std::string> keys = RandomKeyPath(world, rng);
      if (rng.NextBool(0.15)) {
        keys[1] = "FreshStation" + std::to_string(epoch);
      }
      Measure measure = static_cast<Measure>(rng.NextInRange(1, 50));
      history.emplace_back(keys, measure);
      batch.emplace_back(std::move(keys), measure);
    }
    ASSERT_TRUE(server.ApplyUpdate(batch).ok());
    ASSERT_EQ(server.epoch(), static_cast<uint64_t>(epoch));
    EXPECT_TRUE(server.Stats().last_update.incremental);

    // Differential oracle: the served cube must equal a from-scratch build
    // over the whole history.
    dwarf::DwarfCube reference = rebuild_reference();
    EpochCubeStore::Snapshot snapshot = server.store().snapshot();
    ASSERT_TRUE(snapshot.cube->StructurallyEquals(reference))
        << "epoch " << epoch;
    for (int q = 0; q < 5; ++q) {
      const std::string request_json = RandomRequestJson(world, rng);
      auto request = ParseRequest(request_json);
      ASSERT_TRUE(request.ok()) << request_json;
      ExecResult served = ExecuteRequest(*snapshot.cube, *request);
      ExecResult direct = ExecuteRequest(reference, *request);
      EXPECT_EQ(served.ok, direct.ok) << request_json;
      EXPECT_EQ(served.payload_json, direct.payload_json) << request_json;
      ++answers_compared;
    }
    if (epoch % 6 == 0 || epoch == kEpochs) {
      std::map<std::string, std::string> incremental =
          StoreSegments(*snapshot.cube, "inc");
      std::map<std::string, std::string> scratch =
          StoreSegments(reference, "ref");
      ASSERT_FALSE(scratch.empty());
      ASSERT_EQ(incremental.size(), scratch.size()) << "epoch " << epoch;
      for (const auto& [name, bytes] : scratch) {
        auto it = incremental.find(name);
        ASSERT_NE(it, incremental.end()) << "missing segment " << name;
        EXPECT_EQ(it->second, bytes)
            << "segment bytes differ at epoch " << epoch << ": " << name;
      }
    }

    // Advance every open cursor by one page — they keep draining across
    // publishes against their pinned snapshots.
    for (OpenDrain& drain : drains) {
      if (!drain.done) pull_page(drain);
    }
    // Every other epoch, open a new cursor against the current snapshot.
    if (epoch % 2 == 1) {
      const std::string request_json = RandomRequestJson(world, rng);
      auto request = ParseRequest(request_json);
      ASSERT_TRUE(request.ok()) << request_json;
      if (request->op == RequestOp::kSlice ||
          request->op == RequestOp::kRollUp) {
        ExecResult direct = ExecuteRequest(*snapshot.cube, *request);
        if (direct.ok) {
          size_t page_size = 1 + rng.NextBelow(4);
          ParsedEnvelope opened =
              ParseEnvelope(handle.QueryOpen(request_json, page_size));
          ASSERT_TRUE(opened.ok) << request_json;
          OpenDrain drain;
          drain.cursor = static_cast<uint64_t>(
              opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
          drain.epoch = snapshot.epoch;
          EXPECT_EQ(opened.epoch, snapshot.epoch);
          drain.request_json = request_json;
          drain.expect_rows = DirectRowsJson(direct);
          drains.push_back(std::move(drain));
        }
      }
    }
  }

  // Finish every drain and check the replays.
  for (OpenDrain& drain : drains) {
    while (!drain.done) pull_page(drain);
    EXPECT_EQ(json::SerializeJson(JsonValue(drain.rows)), drain.expect_rows)
        << drain.request_json;
  }
  EXPECT_EQ(server.epoch(), static_cast<uint64_t>(kEpochs));
  EXPECT_GE(drains.size(), 4u);
  EXPECT_GT(answers_compared, 100u);
  EXPECT_EQ(server.open_sessions(), 0u);
}

// ----------------------------------------------------- binary wire mode

// Differential fuzz of the bin1 binary framing: the same seeded random
// requests served over real TCP through a JSON connection and a
// binary-negotiated connection, across two epoch publishes. Every binary
// response reconstructed by the client must be byte-identical to the JSON
// connection's bytes (cache state advances in lockstep: warm, binary,
// JSON), one-shots must match direct traversal, and cursor drains on both
// connections must replay exactly the same rows — the binary side checked
// both through Call's transcoding and through the raw CallRaw +
// PeekCursorPage zero-copy path.
TEST(ServerFuzzTest, BinaryWireMatchesJsonAcrossPublishStorm) {
  FuzzWorld world;
  Rng rng(kSeed ^ 0xb141);
  QueryServer server(BuildFuzzCube(world, rng, 400));
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());
  client::Endpoint endpoint;
  endpoint.port = static_cast<uint16_t>(tcp.port());
  client::CubeClient json_client(endpoint);
  client::ClientOptions binary_options;
  binary_options.prefer_binary = true;
  client::CubeClient bin_client(endpoint, binary_options);

  auto call = [](client::CubeClient& wire, const std::string& request_json) {
    auto response = wire.Call(request_json);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  };
  // Opens a cursor over \p wire and drains it to exhaustion; returns the
  // concatenated rows, asserting every page reports \p want_epoch.
  auto drain = [&](client::CubeClient& wire, const std::string& query,
                   size_t page_size, uint64_t want_epoch) {
    ParsedEnvelope opened = ParseEnvelope(
        call(wire, "{\"op\":\"query_open\",\"query\":" + query +
                       ",\"page_size\":" + std::to_string(page_size) + "}"));
    EXPECT_TRUE(opened.ok) << query;
    if (!opened.ok) return std::string();
    EXPECT_EQ(opened.epoch, want_epoch);
    uint64_t cursor = static_cast<uint64_t>(
        opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
    JsonArray rows;
    for (;;) {
      ParsedEnvelope page = ParseEnvelope(call(
          wire, "{\"op\":\"query_next\",\"cursor\":" + std::to_string(cursor) +
                    "}"));
      EXPECT_TRUE(page.ok) << query;
      if (!page.ok) break;
      EXPECT_EQ(page.epoch, want_epoch) << "cursor lost its pinned snapshot";
      const JsonArray* got = page.value.Get("rows").ValueOrDie().AsArray();
      EXPECT_NE(got, nullptr);
      if (got == nullptr) break;
      rows.insert(rows.end(), got->begin(), got->end());
      if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
    }
    return json::SerializeJson(JsonValue(rows));
  };
  // The zero-copy drain: pre-encoded binary query_next via CallRaw, pages
  // steered by PeekCursorPage without JSON reconstruction. Returns the
  // total row count the headers reported.
  auto raw_drain = [&](const std::string& query, size_t page_size,
                       uint64_t want_epoch) -> uint64_t {
    ParsedEnvelope opened = ParseEnvelope(
        call(bin_client,
             "{\"op\":\"query_open\",\"query\":" + query +
                 ",\"page_size\":" + std::to_string(page_size) + "}"));
    EXPECT_TRUE(opened.ok) << query;
    if (!opened.ok) return 0;
    uint64_t cursor = static_cast<uint64_t>(
        opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
    QueryRequest next;
    next.op = RequestOp::kQueryNext;
    next.cursor_id = cursor;
    std::string encoded = binwire::EncodeRequest(next).ValueOrDie();
    uint64_t total_rows = 0;
    for (;;) {
      auto raw = bin_client.CallRaw(encoded);
      EXPECT_TRUE(raw.ok()) << raw.status();
      if (!raw.ok()) break;
      auto header = binwire::PeekCursorPage(*raw);
      EXPECT_TRUE(header.ok()) << header.status();
      if (!header.ok()) break;
      EXPECT_EQ(header->epoch, want_epoch);
      EXPECT_EQ(header->cursor_id, cursor);
      total_rows += header->num_rows;
      if (header->done) break;
    }
    return total_rows;
  };

  int publishes_left = 2;
  uint64_t drains_compared = 0;
  constexpr int kBinQueries = 250;
  for (int i = 0; i < kBinQueries; ++i) {
    if (publishes_left > 0 && i > 0 && i % (kBinQueries / 3) == 0) {
      std::vector<std::pair<std::vector<std::string>, Measure>> batch;
      for (int t = 0; t < 8; ++t) {
        batch.emplace_back(RandomKeyPath(world, rng),
                           static_cast<Measure>(rng.NextInRange(1, 50)));
      }
      ASSERT_TRUE(server.ApplyUpdate(batch).ok());
      --publishes_left;
    }

    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    EpochCubeStore::Snapshot snapshot = server.store().snapshot();

    // Warm the cache, then binary and JSON back-to-back: identical cache
    // state, so the reconstructed bytes must equal the JSON bytes exactly.
    call(json_client, request_json);
    std::string via_binary = call(bin_client, request_json);
    std::string via_json = call(json_client, request_json);
    EXPECT_EQ(via_binary, via_json) << request_json;
    ExpectResponseMatchesDirect(via_binary, *snapshot.cube, *request,
                                request_json);

    if (i % 10 == 0 && (request->op == RequestOp::kSlice ||
                        request->op == RequestOp::kRollUp)) {
      ExecResult direct = ExecuteRequest(*snapshot.cube, *request);
      if (!direct.ok) continue;
      size_t page_size = 1 + rng.NextBelow(8);
      std::string expect_rows = DirectRowsJson(direct);
      EXPECT_EQ(drain(bin_client, request_json, page_size, snapshot.epoch),
                expect_rows)
          << request_json;
      EXPECT_EQ(drain(json_client, request_json, page_size, snapshot.epoch),
                expect_rows)
          << request_json;
      // Row-count cross-check on the raw zero-copy path.
      auto expect_count = json::ParseJson(expect_rows);
      ASSERT_TRUE(expect_count.ok());
      EXPECT_EQ(raw_drain(request_json, page_size, snapshot.epoch),
                expect_count->AsArray()->size())
          << request_json;
      ++drains_compared;
    }
  }

  EXPECT_TRUE(bin_client.binary());
  EXPECT_GT(drains_compared, 5u);
  EXPECT_EQ(server.epoch(), 2u);
  EXPECT_EQ(server.open_sessions(), 0u);
  const std::string metrics_text = server.MetricsText();
  EXPECT_EQ(MetricValue(metrics_text, "server_binary_connections_total"), 1u);
  EXPECT_GT(MetricValue(metrics_text, "server_zero_copy_pages_total"), 0u);

  bin_client.Close();
  json_client.Close();
  tcp.Stop();
}

// ----------------------------------------------------------- router mode

// Differential fuzz of the replica fan-out path: the same ~500 seeded
// requests, but routed client -> TCP -> router -> TCP -> one of three
// replica processes bootstrapped from the publisher's epoch-0 snapshot
// file. The publisher publishes three more epochs mid-sweep (each spooled
// and load_snapshot-notified to the live replicas), cursor sessions drain
// one page per iteration across those publishes, and one replica is killed
// cold mid-run — every response must stay byte-identical to executing the
// request directly against the publisher's snapshot, including the pages
// that fail over to another replica.
TEST(ServerFuzzTest, RouterModeMatchesDirectTraversal) {
  FuzzWorld world;
  Rng rng(kSeed ^ 0x707e);
  fs::path spool = fs::temp_directory_path() / "scdwarf_fuzz_router_spool";
  fs::remove_all(spool);
  fs::create_directories(spool);

  ServerOptions publisher_options;
  publisher_options.num_workers = 1;
  publisher_options.snapshot_dir = spool.string();
  QueryServer publisher(BuildFuzzCube(world, rng, 400), publisher_options);

  // Three replicas bootstrapped from the spooled epoch-0 file, each behind a
  // real socket. Index 1 dies mid-run.
  std::vector<std::unique_ptr<QueryServer>> replicas;
  std::vector<std::unique_ptr<TcpServer>> replica_tcps;
  std::vector<client::Endpoint> endpoints;
  const std::string epoch0 = (spool / replica::SnapshotFileName(0)).string();
  for (int i = 0; i < 3; ++i) {
    auto loaded = replica::LoadCubeSnapshot(epoch0);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ServerOptions replica_options;
    replica_options.num_workers = 1;
    replica_options.allow_snapshot_load = true;
    replica_options.initial_epoch = loaded->epoch;
    replicas.push_back(
        std::make_unique<QueryServer>(std::move(loaded->cube),
                                      replica_options));
    replica_tcps.push_back(std::make_unique<TcpServer>(replicas.back().get()));
    ASSERT_TRUE(replica_tcps.back()->Start(0).ok());
    client::Endpoint endpoint;
    endpoint.port = static_cast<uint16_t>(replica_tcps.back()->port());
    endpoints.push_back(endpoint);
  }

  replica::RouterOptions router_options;
  router_options.health_interval_ms = 0;  // driven manually below
  router_options.unhealthy_after = 1;
  replica::Router router(endpoints, router_options);
  ASSERT_EQ(router.CheckReplicasOnce(), 3u);
  TcpServer front(&router);
  ASSERT_TRUE(front.Start(0).ok());
  client::Endpoint front_endpoint;
  front_endpoint.port = static_cast<uint16_t>(front.port());
  client::CubeClient wire_client(front_endpoint);
  // A second, binary-negotiated client: the router serves bin1 through the
  // generic FrameHandler path while its replica-facing connections stay
  // JSON. A third of the one-shots go through it below.
  client::ClientOptions front_binary_options;
  front_binary_options.prefer_binary = true;
  client::CubeClient binary_client(front_endpoint, front_binary_options);
  auto call = [&](const std::string& request_json) {
    auto response = wire_client.Call(request_json);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  };
  auto binary_call = [&](const std::string& request_json) {
    auto response = binary_client.Call(request_json);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  };

  int dead_replica = -1;
  // Publishes spool a snapshot; the publisher then notifies the live
  // replicas synchronously, exactly like --notify does between processes.
  auto publish = [&](bool fresh_values) {
    std::vector<std::pair<std::vector<std::string>, Measure>> batch;
    for (int t = 0; t < 8; ++t) {
      batch.emplace_back(RandomKeyPath(world, rng),
                         static_cast<Measure>(rng.NextInRange(1, 50)));
    }
    if (fresh_values) {
      batch.emplace_back(
          std::vector<std::string>{"Mon", "StationNew", "AreaNew"},
          Measure{23});
    }
    auto epoch = publisher.ApplyUpdate(batch);
    ASSERT_TRUE(epoch.ok());
    const std::string path =
        (spool / replica::SnapshotFileName(*epoch)).string();
    for (int i = 0; i < 3; ++i) {
      if (i == dead_replica) continue;
      auto loaded_epoch = replicas[i]->LoadSnapshot(path);
      ASSERT_TRUE(loaded_epoch.ok()) << loaded_epoch.status();
    }
  };

  // Cursor sessions drain one page per iteration, across publishes and the
  // kill, each checked against direct rows on its pinned snapshot.
  struct RouterDrain {
    uint64_t cursor = 0;
    uint64_t epoch = 0;
    std::string request_json;
    std::string expect_rows;
    JsonArray rows;
    bool done = false;
  };
  std::vector<RouterDrain> drains;
  auto pull_page = [&](RouterDrain& drain) {
    ParsedEnvelope page = ParseEnvelope(
        call("{\"op\":\"query_next\",\"cursor\":" +
             std::to_string(drain.cursor) + "}"));
    ASSERT_TRUE(page.ok) << drain.request_json;
    EXPECT_EQ(page.epoch, drain.epoch) << "cursor lost its pinned snapshot";
    const JsonArray* got = page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    drain.rows.insert(drain.rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) {
      drain.done = true;
    }
  };

  uint64_t rows_compared = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (i == 250) {
      // Kill one replica cold: connections die mid-use, open cursors pinned
      // to it must fail over, one-shots must retry an alternate.
      dead_replica = 1;
      replica_tcps[1]->Stop();
    }
    if (i > 0 && i % 125 == 0) {
      publish(/*fresh_values=*/i == 375);
    }

    const std::string request_json = RandomRequestJson(world, rng);
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    EpochCubeStore::Snapshot snapshot = publisher.store().snapshot();

    // One-shot through client -> router -> replica, byte-identical to
    // direct traversal of the publisher's current snapshot — whichever
    // wire format the client negotiated.
    std::string one_shot =
        (i % 3 == 2) ? binary_call(request_json) : call(request_json);
    ExpectResponseMatchesDirect(one_shot, *snapshot.cube, *request,
                                request_json);

    for (RouterDrain& drain : drains) {
      if (!drain.done) pull_page(drain);
    }
    if (i % 20 == 0 &&
        (request->op == RequestOp::kSlice ||
         request->op == RequestOp::kRollUp)) {
      ExecResult direct = ExecuteRequest(*snapshot.cube, *request);
      if (direct.ok) {
        size_t page_size = 1 + rng.NextBelow(4);
        ParsedEnvelope opened = ParseEnvelope(
            call("{\"op\":\"query_open\",\"query\":" + request_json +
                 ",\"page_size\":" + std::to_string(page_size) + "}"));
        ASSERT_TRUE(opened.ok) << request_json;
        EXPECT_EQ(opened.epoch, snapshot.epoch);
        RouterDrain drain;
        drain.cursor = static_cast<uint64_t>(
            opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
        drain.epoch = snapshot.epoch;
        drain.request_json = request_json;
        drain.expect_rows = DirectRowsJson(direct);
        drains.push_back(std::move(drain));
      }
    }
  }

  for (RouterDrain& drain : drains) {
    while (!drain.done) pull_page(drain);
    EXPECT_EQ(json::SerializeJson(JsonValue(drain.rows)), drain.expect_rows)
        << drain.request_json;
    ++rows_compared;
  }
  EXPECT_EQ(publisher.epoch(), 3u);
  EXPECT_GE(drains.size(), 6u);
  EXPECT_GT(rows_compared, 5u);
  EXPECT_EQ(router.healthy_replicas(), 2u);  // the kill was observed
  EXPECT_EQ(router.open_sessions(), 0u);
  EXPECT_TRUE(binary_client.binary());
  EXPECT_GE(MetricValue(router.MetricsText(),
                        "router_binary_connections_total"),
            1u);

  binary_client.Close();
  wire_client.Close();
  front.Stop();
  for (auto& tcp : replica_tcps) tcp->Stop();
  fs::remove_all(spool);
}

}  // namespace
}  // namespace scdwarf::server
