// Deletion across the stack: engine row deletes (with index and durability
// behaviour), DELETE statements in both query languages, and the mappers'
// DeleteCube — the operation a cube-update workflow needs to retire stale
// versions.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"
#include "dwarf/update.h"
#include "nosql/cql.h"
#include "sql/sql.h"

namespace scdwarf {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------- nosql engine

nosql::TableSchema SmallSchema() {
  return nosql::TableSchema("ks", "t",
                            {{"id", DataType::kInt},
                             {"tag", DataType::kText},
                             {"group_id", DataType::kInt}},
                            "id");
}

TEST(NoSqlDeleteTest, DeleteRemovesRowAndIndexEntries) {
  nosql::Table table(SmallSchema());
  ASSERT_TRUE(table.CreateIndex("group_id").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        table.Insert({Value::Int(i), Value::Text("x"), Value::Int(i % 2)}).ok());
  }
  ASSERT_TRUE(table.DeleteByPk(Value::Int(2)).ok());
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_TRUE(table.GetByPk(Value::Int(2)).status().IsNotFound());
  EXPECT_EQ(table.SelectEq("group_id", Value::Int(0))->size(), 2u);  // 0, 4
  EXPECT_TRUE(table.DeleteByPk(Value::Int(2)).IsNotFound());
  // Scans skip the tombstone.
  EXPECT_EQ(table.ScanAll().size(), 5u);
}

TEST(NoSqlDeleteTest, DeleteSurvivesSerializeRoundTrip) {
  nosql::Table table(SmallSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        table.Insert({Value::Int(i), Value::Text("x"), Value::Int(0)}).ok());
  }
  ASSERT_TRUE(table.DeleteByPk(Value::Int(1)).ok());
  ByteWriter writer;
  table.SerializeTo(&writer);
  ByteReader reader(writer.data());
  auto loaded = nosql::Table::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->num_rows(), 3u);
  EXPECT_TRUE((*loaded)->GetByPk(Value::Int(1)).status().IsNotFound());
}

TEST(NoSqlDeleteTest, CommitLogReplaysDeletes) {
  fs::path dir = fs::temp_directory_path() /
                 ("scdwarf_del_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    auto db = nosql::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateKeyspace("ks").ok());
    ASSERT_TRUE(db->CreateTable(SmallSchema()).ok());
    ASSERT_TRUE(db->Flush().ok());  // persist the schema; data stays unflushed
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Insert("ks", "t",
                             {Value::Int(i), Value::Text("x"), Value::Int(0)})
                      .ok());
    }
    ASSERT_TRUE(db->Delete("ks", "t", Value::Int(3)).ok());
    // Crash without flush: both the inserts and the delete live only in the
    // commit log.
  }
  {
    auto db = nosql::Database::Open(dir.string());
    ASSERT_TRUE(db.ok()) << db.status();
    auto table = db->GetTable("ks", "t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 4u);
    EXPECT_TRUE((*table)->GetByPk(Value::Int(3)).status().IsNotFound());
  }
  fs::remove_all(dir);
}

TEST(CqlDeleteTest, DeleteStatement) {
  nosql::Database db;
  ASSERT_TRUE(nosql::ExecuteCql(&db, "CREATE KEYSPACE ks").ok());
  ASSERT_TRUE(nosql::ExecuteCql(&db,
                                "CREATE TABLE ks.t (id int, tag text, "
                                "PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(
      nosql::ExecuteCql(&db, "INSERT INTO ks.t (id, tag) VALUES (1, 'a')").ok());
  ASSERT_TRUE(
      nosql::ExecuteCql(&db, "INSERT INTO ks.t (id, tag) VALUES (2, 'b')").ok());
  ASSERT_TRUE(nosql::ExecuteCql(&db, "DELETE FROM ks.t WHERE id = 1").ok());
  auto remaining = nosql::ExecuteCql(&db, "SELECT id FROM ks.t");
  ASSERT_TRUE(remaining.ok());
  ASSERT_EQ(remaining->rows.size(), 1u);
  EXPECT_EQ(*remaining->rows[0][0].AsInt(), 2);
  // Non-pk DELETE rejected (Cassandra semantics).
  EXPECT_TRUE(nosql::ExecuteCql(&db, "DELETE FROM ks.t WHERE tag = 'b'")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(nosql::ExecuteCql(&db, "DELETE FROM ks.t WHERE id = 99")
                  .status()
                  .IsNotFound());
}

// ------------------------------------------------------------- sql engine

TEST(SqlDeleteTest, EngineDelete) {
  sql::SqlEngine engine;
  ASSERT_TRUE(sql::ExecuteSql(&engine, "CREATE DATABASE db").ok());
  ASSERT_TRUE(sql::ExecuteSql(&engine,
                              "CREATE TABLE db.t (id INT NOT NULL, g INT, "
                              "PRIMARY KEY (id), INDEX (g))")
                  .ok());
  ASSERT_TRUE(sql::ExecuteSql(&engine,
                              "INSERT INTO db.t (id, g) VALUES "
                              "(1, 0), (2, 1), (3, 0), (4, 1)")
                  .ok());
  // DELETE by primary key.
  ASSERT_TRUE(sql::ExecuteSql(&engine, "DELETE FROM db.t WHERE id = 2").ok());
  // DELETE by non-pk equality removes all matches (scan/index semantics).
  ASSERT_TRUE(sql::ExecuteSql(&engine, "DELETE FROM db.t WHERE g = 0").ok());
  auto remaining = sql::ExecuteSql(&engine, "SELECT id FROM db.t");
  ASSERT_TRUE(remaining.ok());
  ASSERT_EQ(remaining->rows.size(), 1u);
  EXPECT_EQ(*remaining->rows[0][0].AsInt(), 4);
}

TEST(SqlDeleteTest, RedoLogReplaysDeletes) {
  fs::path dir = fs::temp_directory_path() /
                 ("scdwarf_sqldel_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    auto engine = sql::SqlEngine::Open(dir.string());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine
                    ->CreateTable(sql::SqlTableDef(
                        "db", "t", {{"id", DataType::kInt, false}}, "id"))
                    .ok());
    ASSERT_TRUE(engine->Flush().ok());  // persist the schema only
    ASSERT_TRUE(engine->Insert("db", "t", {Value::Int(1)}).ok());
    ASSERT_TRUE(engine->Insert("db", "t", {Value::Int(2)}).ok());
    ASSERT_TRUE(engine->Delete("db", "t", Value::Int(1)).ok());
  }
  {
    auto engine = sql::SqlEngine::Open(dir.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto table = engine->GetTable("db", "t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 1u);
    EXPECT_TRUE((*table)->GetByPk(Value::Int(1)).status().IsNotFound());
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------- mapper delete

dwarf::DwarfCube SmallCube(const char* suffix) {
  dwarf::CubeSchema schema(
      "c", {dwarf::DimensionSpec("a"), dwarf::DimensionSpec("b")}, "m");
  dwarf::DwarfBuilder builder(schema);
  EXPECT_TRUE(builder.AddTuple({std::string("x") + suffix, "y"}, 1).ok());
  EXPECT_TRUE(builder.AddTuple({std::string("x") + suffix, "z"}, 2).ok());
  return std::move(builder).Build().ValueOrDie();
}

TEST(MapperDeleteTest, NoSqlDwarfDeleteCubeLeavesOthersIntact) {
  nosql::Database db;
  mapper::NoSqlDwarfMapper mapper(&db, "dwarfks");
  auto id1 = mapper.Store(SmallCube("1"));
  auto id2 = mapper.Store(SmallCube("2"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(mapper.DeleteCube(*id1).ok());
  EXPECT_TRUE(mapper.Load(*id1).status().IsNotFound());
  EXPECT_TRUE(mapper.DeleteCube(*id1).IsNotFound());
  // The second cube is untouched.
  auto survivor = mapper.Load(*id2);
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_TRUE(survivor->StructurallyEquals(SmallCube("2")));
  auto ids = mapper.ListSchemas();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 1u);
  // Cell family holds only the survivor's rows.
  auto cells = db.GetTable("dwarfks", mapper::NoSqlDwarfMapper::kCellCf);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ((*cells)->num_rows(),
            SmallCube("2").stats().cell_count + SmallCube("2").num_nodes());
}

TEST(MapperDeleteTest, NoSqlMinDeleteCube) {
  nosql::Database db;
  mapper::NoSqlMinMapper mapper(&db, "minks");
  auto id1 = mapper.Store(SmallCube("1"));
  auto id2 = mapper.Store(SmallCube("2"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(mapper.DeleteCube(*id2).ok());
  EXPECT_TRUE(mapper.Load(*id2).status().IsNotFound());
  ASSERT_TRUE(mapper.Load(*id1).ok());
}

TEST(MapperDeleteTest, SqlDwarfDeleteCubeClearsJoinTables) {
  sql::SqlEngine engine;
  mapper::SqlDwarfMapper mapper(&engine, "dwarfdb");
  auto id1 = mapper.Store(SmallCube("1"));
  auto id2 = mapper.Store(SmallCube("2"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  auto before = (*engine.GetTable("dwarfdb",
                                  mapper::SqlDwarfMapper::kNodeChildrenTable))
                    ->num_rows();
  ASSERT_TRUE(mapper.DeleteCube(*id1).ok());
  EXPECT_TRUE(mapper.Load(*id1).status().IsNotFound());
  auto after = (*engine.GetTable("dwarfdb",
                                 mapper::SqlDwarfMapper::kNodeChildrenTable))
                   ->num_rows();
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0u);  // survivor's edges remain
  auto survivor = mapper.Load(*id2);
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_TRUE(survivor->StructurallyEquals(SmallCube("2")));
}

TEST(MapperDeleteTest, SqlMinDeleteCube) {
  sql::SqlEngine engine;
  mapper::SqlMinMapper mapper(&engine, "mindb");
  auto id = mapper.Store(SmallCube("1"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mapper.DeleteCube(*id).ok());
  EXPECT_TRUE(mapper.Load(*id).status().IsNotFound());
  EXPECT_EQ((*engine.GetTable("mindb", mapper::SqlMinMapper::kCellTable))
                ->num_rows(),
            0u);
}

TEST(MapperDeleteTest, UpdateWorkflowRetiresStaleVersion) {
  // Store v1, update, store v2, delete v1 — the store then holds exactly the
  // new version.
  nosql::Database db;
  mapper::NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::DwarfCube v1 = SmallCube("1");
  auto id1 = mapper.Store(v1);
  ASSERT_TRUE(id1.ok());
  auto v2 = dwarf::MergeTuples(std::move(v1), {{{"x1", "w"}, 7}});
  ASSERT_TRUE(v2.ok());
  auto id2 = mapper.Store(*v2);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(mapper.DeleteCube(*id1).ok());
  auto ids = mapper.ListSchemas();
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  auto reloaded = mapper.Load((*ids)[0]);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->StructurallyEquals(*v2));
}

}  // namespace
}  // namespace scdwarf
