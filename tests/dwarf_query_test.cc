#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "common/metrics.h"
#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "dwarf/update.h"

namespace scdwarf::dwarf {
namespace {

/// 3-dim bikes cube: day x city x station -> available bikes.
DwarfCube BuildBikesCube() {
  CubeSchema schema("bikes",
                    {DimensionSpec("Day"), DimensionSpec("City"),
                     DimensionSpec("Station")},
                    "available", AggFn::kSum);
  DwarfBuilder builder(schema);
  struct Row {
    const char* day;
    const char* city;
    const char* station;
    Measure bikes;
  };
  const Row rows[] = {
      {"Mon", "Dublin", "Fenian St", 3},  {"Mon", "Dublin", "Pearse St", 5},
      {"Mon", "Cork", "Patrick St", 2},   {"Tue", "Dublin", "Fenian St", 4},
      {"Tue", "Cork", "Patrick St", 1},   {"Wed", "Dublin", "Pearse St", 6},
      {"Wed", "Galway", "Eyre Sq", 8},
  };
  for (const Row& row : rows) {
    EXPECT_TRUE(builder.AddTuple({row.day, row.city, row.station}, row.bikes).ok());
  }
  auto cube = std::move(builder).Build();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).ValueOrDie();
}

class DwarfQueryTest : public ::testing::Test {
 protected:
  DwarfQueryTest() : cube_(BuildBikesCube()) {}

  DimKey Key(size_t dim, const std::string& value) {
    return cube_.dictionary(dim).Lookup(value).ValueOrDie();
  }

  DwarfCube cube_;
};

TEST_F(DwarfQueryTest, FullPointQuery) {
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", "Dublin", "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(cube_, {"Wed", "Galway", "Eyre Sq"}), 8);
}

TEST_F(DwarfQueryTest, PointQueryMissingCoordinate) {
  EXPECT_TRUE(
      PointQueryByName(cube_, {"Mon", "Galway", "Eyre Sq"}).status().IsNotFound());
  EXPECT_TRUE(PointQueryByName(cube_, {"Sun", "Dublin", "Fenian St"})
                  .status()
                  .IsNotFound());
}

TEST_F(DwarfQueryTest, PointQueryUnknownLabelIsNotFound) {
  EXPECT_TRUE(PointQueryByName(cube_, {"Mon", "Dublin", "Nowhere"})
                  .status()
                  .IsNotFound());
}

TEST_F(DwarfQueryTest, AllWildcards) {
  // Grand total.
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, std::nullopt, std::nullopt}),
            29);
  // Per-day totals through ALL cells.
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", std::nullopt, std::nullopt}), 10);
  EXPECT_EQ(*PointQueryByName(cube_, {"Tue", std::nullopt, std::nullopt}), 5);
  // Middle-dimension wildcard.
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", std::nullopt, "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, "Dublin", std::nullopt}), 18);
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, std::nullopt, "Patrick St"}),
            3);
}

TEST_F(DwarfQueryTest, ArityMismatchRejected) {
  EXPECT_TRUE(PointQueryByName(cube_, {"Mon", "Dublin"})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DwarfQueryTest, EmptyCubeQueries) {
  CubeSchema schema("e", {DimensionSpec("x")}, "m");
  DwarfBuilder builder(schema);
  auto empty = std::move(builder).Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(PointQuery(*empty, {std::nullopt}).status().IsNotFound());
  EXPECT_TRUE(
      AggregateQuery(*empty, {DimPredicate::All()}).status().IsNotFound());
}

TEST_F(DwarfQueryTest, AggregateQueryPointEqualsPointQuery) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Point(Key(0, "Mon")), DimPredicate::Point(Key(1, "Dublin")),
      DimPredicate::All()};
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 8);
}

TEST_F(DwarfQueryTest, AggregateQuerySet) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Set({Key(0, "Mon"), Key(0, "Tue")}),
      DimPredicate::All(),
      DimPredicate::All(),
  };
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 15);
}

TEST_F(DwarfQueryTest, AggregateQueryRange) {
  // Ids are assigned in first-seen order: Mon=0, Tue=1, Wed=2.
  std::vector<DimPredicate> predicates = {
      DimPredicate::Range(Key(0, "Mon"), Key(0, "Tue")),
      DimPredicate::All(),
      DimPredicate::All(),
  };
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 15);
}

TEST_F(DwarfQueryTest, AggregateQueryNoMatchIsNotFound) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Point(Key(0, "Mon")),
      DimPredicate::Point(Key(1, "Galway")),
      DimPredicate::All(),
  };
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsNotFound());
}

TEST_F(DwarfQueryTest, AggregateQueryEmptySetMatchesNothing) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Set({}), DimPredicate::All(), DimPredicate::All()};
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsNotFound());
}

TEST_F(DwarfQueryTest, SliceByCity) {
  auto rows = Slice(cube_, 1, Key(1, "Dublin"));
  ASSERT_TRUE(rows.ok());
  // Rows are (day, station) pairs within Dublin.
  ASSERT_EQ(rows->size(), 4u);
  Measure total = 0;
  for (const SliceRow& row : *rows) {
    ASSERT_EQ(row.keys.size(), 2u);
    total += row.measure;
  }
  EXPECT_EQ(total, 18);
}

TEST_F(DwarfQueryTest, SliceOutOfRangeDim) {
  EXPECT_TRUE(Slice(cube_, 9, 0).status().IsOutOfRange());
}

TEST_F(DwarfQueryTest, RollUpByDay) {
  auto rows = RollUp(cube_, {0});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  std::map<std::string, Measure> by_day;
  for (const SliceRow& row : *rows) by_day[row.keys[0]] = row.measure;
  EXPECT_EQ(by_day["Mon"], 10);
  EXPECT_EQ(by_day["Tue"], 5);
  EXPECT_EQ(by_day["Wed"], 14);
}

TEST_F(DwarfQueryTest, RollUpByCityUsesAllCells) {
  auto rows = RollUp(cube_, {1});
  ASSERT_TRUE(rows.ok());
  std::map<std::string, Measure> by_city;
  for (const SliceRow& row : *rows) by_city[row.keys[0]] = row.measure;
  EXPECT_EQ(by_city["Dublin"], 18);
  EXPECT_EQ(by_city["Cork"], 3);
  EXPECT_EQ(by_city["Galway"], 8);
}

TEST_F(DwarfQueryTest, RollUpTwoDims) {
  auto rows = RollUp(cube_, {0, 1});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 6u);  // distinct (day, city) pairs
  Measure total = 0;
  for (const SliceRow& row : *rows) total += row.measure;
  EXPECT_EQ(total, 29);
}

TEST_F(DwarfQueryTest, RollUpNoDimsIsGrandTotal) {
  auto rows = RollUp(cube_, {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].measure, 29);
  EXPECT_TRUE((*rows)[0].keys.empty());
}

TEST_F(DwarfQueryTest, RollUpBadDimRejected) {
  EXPECT_TRUE(RollUp(cube_, {7}).status().IsOutOfRange());
}

// Regression: the enumerator emits row keys in ascending cube-dimension
// order, but callers name dims in request order. A {City, Day} roll-up must
// answer (city, day) rows, not (day, city).
TEST_F(DwarfQueryTest, RollUpOutOfOrderDimsKeysFollowRequestOrder) {
  auto rows = RollUp(cube_, {1, 0});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 6u);
  std::map<std::pair<std::string, std::string>, Measure> by_pair;
  for (const SliceRow& row : *rows) {
    ASSERT_EQ(row.keys.size(), 2u);
    by_pair[{row.keys[0], row.keys[1]}] = row.measure;
  }
  // keys[0] must be the City (dim 1), keys[1] the Day (dim 0).
  EXPECT_EQ((by_pair[{"Dublin", "Mon"}]), 8);
  EXPECT_EQ((by_pair[{"Cork", "Tue"}]), 1);
  EXPECT_EQ((by_pair[{"Galway", "Wed"}]), 8);
  EXPECT_EQ((by_pair.count({"Mon", "Dublin"})), 0u);

  // The same request through the ascending spelling returns the same groups
  // with the columns swapped.
  auto ascending = RollUp(cube_, {0, 1});
  ASSERT_TRUE(ascending.ok());
  ASSERT_EQ(ascending->size(), rows->size());
  for (const SliceRow& row : *ascending) {
    EXPECT_EQ((by_pair[{row.keys[1], row.keys[0]}]), row.measure);
  }
}

TEST_F(DwarfQueryTest, RollUpDuplicateDimsRejected) {
  EXPECT_TRUE(RollUp(cube_, {0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(RollUp(cube_, {1, 0, 1}).status().IsInvalidArgument());
}

// lo > hi is a caller error at every entry point (the wire layer has always
// rejected it; the direct API used to silently answer NotFound).
TEST_F(DwarfQueryTest, RangeLoGreaterThanHiRejected) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Range(2, 1), DimPredicate::All(), DimPredicate::All()};
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsInvalidArgument());
}

TEST_F(DwarfQueryTest, RankRangeOnUnorderedDimRejected) {
  // The bikes test cube marks no dimension ordered.
  std::vector<DimPredicate> predicates = {
      DimPredicate::RankRange(0, 1), DimPredicate::All(), DimPredicate::All()};
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsInvalidArgument());
}

TEST(DimPredicateTest, Matches) {
  EXPECT_TRUE(DimPredicate::All().Matches(99));
  EXPECT_TRUE(DimPredicate::Point(5).Matches(5));
  EXPECT_FALSE(DimPredicate::Point(5).Matches(6));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(3));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(2));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(4));
  EXPECT_FALSE(DimPredicate::Range(2, 4).Matches(5));
  EXPECT_TRUE(DimPredicate::Set({1, 3}).Matches(3));
  EXPECT_FALSE(DimPredicate::Set({1, 3}).Matches(2));
}

// Property: AggregateQuery over random predicates equals brute force.
class AggregateQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateQueryPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  constexpr size_t kDims = 3;
  const size_t card = 6;
  CubeSchema schema(
      "p", {DimensionSpec("x"), DimensionSpec("y"), DimensionSpec("z")}, "m");
  DwarfBuilder builder(schema);
  std::vector<std::pair<std::vector<DimKey>, Measure>> facts;
  for (int i = 0; i < 150; ++i) {
    std::vector<std::string> keys(kDims);
    std::vector<DimKey> ids(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      // Pre-encode labels k0..k5 so ids match label indices.
      ids[d] = static_cast<DimKey>(rng.NextBelow(card));
      keys[d] = "k" + std::to_string(ids[d]);
    }
    Measure m = rng.NextInRange(1, 9);
    ASSERT_TRUE(builder.AddTuple(keys, m).ok());
    facts.emplace_back(ids, m);
  }
  auto cube_result = std::move(builder).Build();
  ASSERT_TRUE(cube_result.ok());
  const DwarfCube& cube = *cube_result;

  // Map label -> id per dim, since first-seen encoding need not match k index.
  auto key_id = [&](size_t dim, DimKey label_index) {
    return cube.dictionary(dim)
        .Lookup("k" + std::to_string(label_index))
        .ValueOr(static_cast<DimKey>(-1));
  };

  for (int trial = 0; trial < 60; ++trial) {
    std::vector<DimPredicate> predicates(kDims);
    // Label-space predicates for brute force.
    std::vector<DimPredicate> label_predicates(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      switch (rng.NextBelow(4)) {
        case 0:
          predicates[d] = DimPredicate::All();
          label_predicates[d] = DimPredicate::All();
          break;
        case 1: {
          DimKey label = static_cast<DimKey>(rng.NextBelow(card));
          predicates[d] = DimPredicate::Point(key_id(d, label));
          label_predicates[d] = DimPredicate::Point(label);
          break;
        }
        case 2: {
          std::vector<DimKey> labels, ids;
          for (DimKey label = 0; label < card; ++label) {
            if (rng.NextBool(0.4)) {
              labels.push_back(label);
              ids.push_back(key_id(d, label));
            }
          }
          predicates[d] = DimPredicate::Set(ids);
          label_predicates[d] = DimPredicate::Set(labels);
          break;
        }
        default: {
          // Range over ids: translate to an id set for brute force.
          DimKey lo = static_cast<DimKey>(rng.NextBelow(card));
          DimKey hi = static_cast<DimKey>(lo + rng.NextBelow(card - lo));
          predicates[d] = DimPredicate::Range(lo, hi);
          label_predicates[d] = DimPredicate::Range(lo, hi);
          break;
        }
      }
    }
    // Brute force over encoded facts. Range/Set cases built above operate on
    // different domains (label vs id); normalize: evaluate brute force in id
    // space directly using `predicates` for ranges, label predicates mapped
    // to ids otherwise.
    std::optional<Measure> expected;
    for (const auto& [ids, m] : facts) {
      bool match = true;
      for (size_t d = 0; d < kDims; ++d) {
        const DimPredicate& pred = predicates[d];
        DimKey id = cube.dictionary(d)
                        .Lookup("k" + std::to_string(ids[d]))
                        .ValueOrDie();
        if (!pred.Matches(id)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      expected = expected.has_value() ? AggCombine(AggFn::kSum, *expected, m) : m;
    }
    Result<Measure> actual = AggregateQuery(cube, predicates);
    if (expected.has_value()) {
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, *expected);
    } else {
      EXPECT_TRUE(actual.status().IsNotFound());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateQueryPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Ordered dimensions: value-order rank ranges, subtree pruning, roll-up rank
// filters — differentially checked against a naive tuple evaluator across
// incremental publishes.

using Fact = std::pair<std::vector<std::string>, Measure>;

/// Station (unordered) x Date (ordered). The ordered dim sits BELOW the
/// root level so a narrow date window can prune whole station subtrees —
/// the case the min/max-rank sidecar exists for. Dates are fed OUT of
/// chronological order, so dictionary ids and value-order ranks genuinely
/// differ.
DwarfCube BuildOrderedCube(const std::vector<Fact>& facts) {
  CubeSchema schema("od",
                    {DimensionSpec("Station"),
                     DimensionSpec("Date", "", /*ordered_in=*/true)},
                    "m", AggFn::kSum);
  DwarfBuilder builder(schema);
  for (const Fact& fact : facts) {
    EXPECT_TRUE(builder.AddTuple(fact.first, fact.second).ok());
  }
  auto cube = std::move(builder).Build();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).ValueOrDie();
}

Measure NaiveDateRangeSum(const std::vector<Fact>& facts,
                          const std::string& lo, const std::string& hi,
                          bool* any) {
  Measure sum = 0;
  *any = false;
  for (const Fact& fact : facts) {
    const std::string& date = fact.first[1];
    if (date < lo || date > hi) continue;
    sum += fact.second;
    *any = true;
  }
  return sum;
}

/// Resolves a value range to a RankRange predicate over the Date dim,
/// mirroring the wire layer's LowerBoundRank/UpperBoundRank resolution.
std::optional<DimPredicate> ResolveDateRange(const DwarfCube& cube,
                                             const std::string& lo,
                                             const std::string& hi) {
  const Dictionary& dict = cube.dictionary(1);
  DimKey lo_rank = dict.LowerBoundRank(lo);
  DimKey hi_excl = dict.UpperBoundRank(hi);
  if (lo_rank >= hi_excl) return std::nullopt;  // covers no stored value
  return DimPredicate::RankRange(lo_rank, hi_excl - 1);
}

TEST(OrderedDimTest, RankViewFollowsValueOrderNotIdOrder) {
  DwarfCube cube = BuildOrderedCube({{{"S1", "2013-07-03"}, 1},
                                     {{"S2", "2013-07-01"}, 2},
                                     {{"S1", "2013-07-05"}, 3}});
  const Dictionary& dict = cube.dictionary(1);
  ASSERT_TRUE(dict.has_rank_view());
  // Ids are first-seen order (07-03=0, 07-01=1, 07-05=2); ranks are value
  // order.
  EXPECT_EQ(dict.RankOf(dict.Lookup("2013-07-01").ValueOrDie()), 0u);
  EXPECT_EQ(dict.RankOf(dict.Lookup("2013-07-03").ValueOrDie()), 1u);
  EXPECT_EQ(dict.RankOf(dict.Lookup("2013-07-05").ValueOrDie()), 2u);
  EXPECT_EQ(dict.IdAtRank(0), dict.Lookup("2013-07-01").ValueOrDie());
  // The unordered dim gets no rank view, and the cube carries a range index
  // covering only the Date dim.
  EXPECT_FALSE(cube.dictionary(0).has_rank_view());
  ASSERT_NE(cube.range_index(), nullptr);
  EXPECT_TRUE(cube.range_index()->covers(1));
  EXPECT_FALSE(cube.range_index()->covers(0));
}

TEST(OrderedDimTest, RankRangeMatchesNaiveAcrossPublishes) {
  std::vector<Fact> facts = {
      {{"S1", "2013-07-10"}, 4}, {{"S2", "2013-07-02"}, 7},
      {{"S1", "2013-07-06"}, 1}, {{"S1", "2013-07-02"}, 3},
      {{"S3", "2013-07-14"}, 9},
  };
  DwarfCube cube = BuildOrderedCube(facts);

  // Two incremental publishes, each interleaving new dates between existing
  // ranks (and extending both ends).
  const std::vector<std::vector<Fact>> publishes = {
      {{{"S2", "2013-07-04"}, 5}, {{"S1", "2013-07-01"}, 2}},
      {{{"S3", "2013-07-08"}, 6}, {{"S1", "2013-07-20"}, 8},
       {{"S2", "2013-07-06"}, 1}},
  };
  const std::vector<std::pair<std::string, std::string>> ranges = {
      {"2013-07-01", "2013-07-31"},  // everything
      {"2013-07-02", "2013-07-06"},  // interior window
      {"2013-07-03", "2013-07-05"},  // hits only late-published dates
      {"2013-07-15", "2013-07-19"},  // gap: covers no stored date
      {"2013-07-14", "2013-07-14"},  // single day, one station's subtree
  };

  metrics::Counter* pruned = metrics::GlobalRegistry().GetCounter(
      "dwarf_range_subtrees_pruned_total");
  uint64_t pruned_before = pruned->value();

  for (size_t epoch = 0;; ++epoch) {
    // All station ids, so the root genuinely fans out (the ALL fast path
    // would bypass subtree pruning).
    std::vector<DimKey> all_stations;
    for (DimKey id = 0; id < cube.dictionary(0).size(); ++id) {
      all_stations.push_back(id);
    }
    for (const auto& [lo, hi] : ranges) {
      bool any = false;
      Measure expected = NaiveDateRangeSum(facts, lo, hi, &any);
      std::optional<DimPredicate> range = ResolveDateRange(cube, lo, hi);
      if (!range.has_value()) {
        EXPECT_FALSE(any) << lo << ".." << hi;
        continue;
      }
      for (const DimPredicate& station :
           {DimPredicate::All(), DimPredicate::Set(all_stations)}) {
        Result<Measure> actual = AggregateQuery(cube, {station, *range});
        if (any) {
          ASSERT_TRUE(actual.ok()) << actual.status();
          EXPECT_EQ(*actual, expected)
              << lo << ".." << hi << " epoch " << epoch;
        } else {
          EXPECT_TRUE(actual.status().IsNotFound());
        }
      }
    }
    if (epoch == publishes.size()) break;
    // Publish the next delta through the incremental merge path; ids of
    // existing values must survive, and the rank view must absorb the new
    // interleaved dates.
    std::vector<DimKey> ids_before;
    for (const Fact& fact : facts) {
      ids_before.push_back(
          cube.dictionary(1).Lookup(fact.first[1]).ValueOrDie());
    }
    auto merged = MergeTuples(std::move(cube), publishes[epoch]);
    ASSERT_TRUE(merged.ok()) << merged.status();
    cube = std::move(merged).ValueOrDie();
    for (size_t i = 0; i < facts.size(); ++i) {
      EXPECT_EQ(cube.dictionary(1).Lookup(facts[i].first[1]).ValueOrDie(),
                ids_before[i]);
    }
    facts.insert(facts.end(), publishes[epoch].begin(),
                 publishes[epoch].end());
  }
  // The narrow windows must have skipped at least one disjoint station
  // subtree.
  EXPECT_GT(pruned->value(), pruned_before);
}

TEST(OrderedDimTest, RollUpRankFiltersMatchManualFilter) {
  std::vector<Fact> facts = {
      {{"S1", "2013-07-10"}, 4}, {{"S2", "2013-07-02"}, 7},
      {{"S1", "2013-07-06"}, 1}, {{"S1", "2013-07-02"}, 3},
      {{"S3", "2013-07-14"}, 9},
  };
  DwarfCube cube = BuildOrderedCube(facts);
  const Dictionary& dict = cube.dictionary(1);

  RankFilters filters(cube.num_dimensions());
  filters[1] = RankWindow{dict.LowerBoundRank("2013-07-02"),
                          static_cast<DimKey>(
                              dict.UpperBoundRank("2013-07-10") - 1)};
  auto rows = RollUp(cube, {0, 1}, &filters);
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::map<std::pair<std::string, std::string>, Measure> by_pair;
  for (const SliceRow& row : *rows) {
    EXPECT_GE(row.keys[1], "2013-07-02");
    EXPECT_LE(row.keys[1], "2013-07-10");
    by_pair[{row.keys[0], row.keys[1]}] = row.measure;
  }
  EXPECT_EQ(by_pair.size(), 4u);  // S3's 07-14 row filtered out
  EXPECT_EQ((by_pair[{"S1", "2013-07-02"}]), 3);
  EXPECT_EQ((by_pair[{"S1", "2013-07-10"}]), 4);

  // An empty window (lo > hi) matches nothing: zero rows, not an error.
  filters[1] = RankWindow{1, 0};
  auto empty = RollUp(cube, {0, 1}, &filters);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // A filter on a non-grouped dim is a caller error.
  filters[1] = RankWindow{0, 1};
  EXPECT_TRUE(RollUp(cube, {0}, &filters).status().IsInvalidArgument());
  // As is a filter on an unordered dim.
  RankFilters station_filter(cube.num_dimensions());
  station_filter[0] = RankWindow{0, 1};
  EXPECT_TRUE(
      RollUp(cube, {0, 1}, &station_filter).status().IsInvalidArgument());
}

TEST(OrderedDimTest, MaterializeSubCubeHonorsRankRanges) {
  DwarfCube cube = BuildOrderedCube({{{"S1", "2013-07-03"}, 1},
                                     {{"S2", "2013-07-01"}, 2},
                                     {{"S1", "2013-07-05"}, 3}});
  std::optional<DimPredicate> range =
      ResolveDateRange(cube, "2013-07-01", "2013-07-03");
  ASSERT_TRUE(range.has_value());
  auto sub = MaterializeSubCube(cube, {DimPredicate::All(), *range});
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->stats().tuple_count, 2u);
}

}  // namespace
}  // namespace scdwarf::dwarf
