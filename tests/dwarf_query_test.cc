#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {
namespace {

/// 3-dim bikes cube: day x city x station -> available bikes.
DwarfCube BuildBikesCube() {
  CubeSchema schema("bikes",
                    {DimensionSpec("Day"), DimensionSpec("City"),
                     DimensionSpec("Station")},
                    "available", AggFn::kSum);
  DwarfBuilder builder(schema);
  struct Row {
    const char* day;
    const char* city;
    const char* station;
    Measure bikes;
  };
  const Row rows[] = {
      {"Mon", "Dublin", "Fenian St", 3},  {"Mon", "Dublin", "Pearse St", 5},
      {"Mon", "Cork", "Patrick St", 2},   {"Tue", "Dublin", "Fenian St", 4},
      {"Tue", "Cork", "Patrick St", 1},   {"Wed", "Dublin", "Pearse St", 6},
      {"Wed", "Galway", "Eyre Sq", 8},
  };
  for (const Row& row : rows) {
    EXPECT_TRUE(builder.AddTuple({row.day, row.city, row.station}, row.bikes).ok());
  }
  auto cube = std::move(builder).Build();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).ValueOrDie();
}

class DwarfQueryTest : public ::testing::Test {
 protected:
  DwarfQueryTest() : cube_(BuildBikesCube()) {}

  DimKey Key(size_t dim, const std::string& value) {
    return cube_.dictionary(dim).Lookup(value).ValueOrDie();
  }

  DwarfCube cube_;
};

TEST_F(DwarfQueryTest, FullPointQuery) {
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", "Dublin", "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(cube_, {"Wed", "Galway", "Eyre Sq"}), 8);
}

TEST_F(DwarfQueryTest, PointQueryMissingCoordinate) {
  EXPECT_TRUE(
      PointQueryByName(cube_, {"Mon", "Galway", "Eyre Sq"}).status().IsNotFound());
  EXPECT_TRUE(PointQueryByName(cube_, {"Sun", "Dublin", "Fenian St"})
                  .status()
                  .IsNotFound());
}

TEST_F(DwarfQueryTest, PointQueryUnknownLabelIsNotFound) {
  EXPECT_TRUE(PointQueryByName(cube_, {"Mon", "Dublin", "Nowhere"})
                  .status()
                  .IsNotFound());
}

TEST_F(DwarfQueryTest, AllWildcards) {
  // Grand total.
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, std::nullopt, std::nullopt}),
            29);
  // Per-day totals through ALL cells.
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", std::nullopt, std::nullopt}), 10);
  EXPECT_EQ(*PointQueryByName(cube_, {"Tue", std::nullopt, std::nullopt}), 5);
  // Middle-dimension wildcard.
  EXPECT_EQ(*PointQueryByName(cube_, {"Mon", std::nullopt, "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, "Dublin", std::nullopt}), 18);
  EXPECT_EQ(*PointQueryByName(cube_, {std::nullopt, std::nullopt, "Patrick St"}),
            3);
}

TEST_F(DwarfQueryTest, ArityMismatchRejected) {
  EXPECT_TRUE(PointQueryByName(cube_, {"Mon", "Dublin"})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DwarfQueryTest, EmptyCubeQueries) {
  CubeSchema schema("e", {DimensionSpec("x")}, "m");
  DwarfBuilder builder(schema);
  auto empty = std::move(builder).Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(PointQuery(*empty, {std::nullopt}).status().IsNotFound());
  EXPECT_TRUE(
      AggregateQuery(*empty, {DimPredicate::All()}).status().IsNotFound());
}

TEST_F(DwarfQueryTest, AggregateQueryPointEqualsPointQuery) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Point(Key(0, "Mon")), DimPredicate::Point(Key(1, "Dublin")),
      DimPredicate::All()};
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 8);
}

TEST_F(DwarfQueryTest, AggregateQuerySet) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Set({Key(0, "Mon"), Key(0, "Tue")}),
      DimPredicate::All(),
      DimPredicate::All(),
  };
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 15);
}

TEST_F(DwarfQueryTest, AggregateQueryRange) {
  // Ids are assigned in first-seen order: Mon=0, Tue=1, Wed=2.
  std::vector<DimPredicate> predicates = {
      DimPredicate::Range(Key(0, "Mon"), Key(0, "Tue")),
      DimPredicate::All(),
      DimPredicate::All(),
  };
  EXPECT_EQ(*AggregateQuery(cube_, predicates), 15);
}

TEST_F(DwarfQueryTest, AggregateQueryNoMatchIsNotFound) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Point(Key(0, "Mon")),
      DimPredicate::Point(Key(1, "Galway")),
      DimPredicate::All(),
  };
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsNotFound());
}

TEST_F(DwarfQueryTest, AggregateQueryEmptySetMatchesNothing) {
  std::vector<DimPredicate> predicates = {
      DimPredicate::Set({}), DimPredicate::All(), DimPredicate::All()};
  EXPECT_TRUE(AggregateQuery(cube_, predicates).status().IsNotFound());
}

TEST_F(DwarfQueryTest, SliceByCity) {
  auto rows = Slice(cube_, 1, Key(1, "Dublin"));
  ASSERT_TRUE(rows.ok());
  // Rows are (day, station) pairs within Dublin.
  ASSERT_EQ(rows->size(), 4u);
  Measure total = 0;
  for (const SliceRow& row : *rows) {
    ASSERT_EQ(row.keys.size(), 2u);
    total += row.measure;
  }
  EXPECT_EQ(total, 18);
}

TEST_F(DwarfQueryTest, SliceOutOfRangeDim) {
  EXPECT_TRUE(Slice(cube_, 9, 0).status().IsOutOfRange());
}

TEST_F(DwarfQueryTest, RollUpByDay) {
  auto rows = RollUp(cube_, {0});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  std::map<std::string, Measure> by_day;
  for (const SliceRow& row : *rows) by_day[row.keys[0]] = row.measure;
  EXPECT_EQ(by_day["Mon"], 10);
  EXPECT_EQ(by_day["Tue"], 5);
  EXPECT_EQ(by_day["Wed"], 14);
}

TEST_F(DwarfQueryTest, RollUpByCityUsesAllCells) {
  auto rows = RollUp(cube_, {1});
  ASSERT_TRUE(rows.ok());
  std::map<std::string, Measure> by_city;
  for (const SliceRow& row : *rows) by_city[row.keys[0]] = row.measure;
  EXPECT_EQ(by_city["Dublin"], 18);
  EXPECT_EQ(by_city["Cork"], 3);
  EXPECT_EQ(by_city["Galway"], 8);
}

TEST_F(DwarfQueryTest, RollUpTwoDims) {
  auto rows = RollUp(cube_, {0, 1});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 6u);  // distinct (day, city) pairs
  Measure total = 0;
  for (const SliceRow& row : *rows) total += row.measure;
  EXPECT_EQ(total, 29);
}

TEST_F(DwarfQueryTest, RollUpNoDimsIsGrandTotal) {
  auto rows = RollUp(cube_, {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].measure, 29);
  EXPECT_TRUE((*rows)[0].keys.empty());
}

TEST_F(DwarfQueryTest, RollUpBadDimRejected) {
  EXPECT_TRUE(RollUp(cube_, {7}).status().IsOutOfRange());
}

TEST(DimPredicateTest, Matches) {
  EXPECT_TRUE(DimPredicate::All().Matches(99));
  EXPECT_TRUE(DimPredicate::Point(5).Matches(5));
  EXPECT_FALSE(DimPredicate::Point(5).Matches(6));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(3));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(2));
  EXPECT_TRUE(DimPredicate::Range(2, 4).Matches(4));
  EXPECT_FALSE(DimPredicate::Range(2, 4).Matches(5));
  EXPECT_TRUE(DimPredicate::Set({1, 3}).Matches(3));
  EXPECT_FALSE(DimPredicate::Set({1, 3}).Matches(2));
}

// Property: AggregateQuery over random predicates equals brute force.
class AggregateQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateQueryPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  constexpr size_t kDims = 3;
  const size_t card = 6;
  CubeSchema schema(
      "p", {DimensionSpec("x"), DimensionSpec("y"), DimensionSpec("z")}, "m");
  DwarfBuilder builder(schema);
  std::vector<std::pair<std::vector<DimKey>, Measure>> facts;
  for (int i = 0; i < 150; ++i) {
    std::vector<std::string> keys(kDims);
    std::vector<DimKey> ids(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      // Pre-encode labels k0..k5 so ids match label indices.
      ids[d] = static_cast<DimKey>(rng.NextBelow(card));
      keys[d] = "k" + std::to_string(ids[d]);
    }
    Measure m = rng.NextInRange(1, 9);
    ASSERT_TRUE(builder.AddTuple(keys, m).ok());
    facts.emplace_back(ids, m);
  }
  auto cube_result = std::move(builder).Build();
  ASSERT_TRUE(cube_result.ok());
  const DwarfCube& cube = *cube_result;

  // Map label -> id per dim, since first-seen encoding need not match k index.
  auto key_id = [&](size_t dim, DimKey label_index) {
    return cube.dictionary(dim)
        .Lookup("k" + std::to_string(label_index))
        .ValueOr(static_cast<DimKey>(-1));
  };

  for (int trial = 0; trial < 60; ++trial) {
    std::vector<DimPredicate> predicates(kDims);
    // Label-space predicates for brute force.
    std::vector<DimPredicate> label_predicates(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      switch (rng.NextBelow(4)) {
        case 0:
          predicates[d] = DimPredicate::All();
          label_predicates[d] = DimPredicate::All();
          break;
        case 1: {
          DimKey label = static_cast<DimKey>(rng.NextBelow(card));
          predicates[d] = DimPredicate::Point(key_id(d, label));
          label_predicates[d] = DimPredicate::Point(label);
          break;
        }
        case 2: {
          std::vector<DimKey> labels, ids;
          for (DimKey label = 0; label < card; ++label) {
            if (rng.NextBool(0.4)) {
              labels.push_back(label);
              ids.push_back(key_id(d, label));
            }
          }
          predicates[d] = DimPredicate::Set(ids);
          label_predicates[d] = DimPredicate::Set(labels);
          break;
        }
        default: {
          // Range over ids: translate to an id set for brute force.
          DimKey lo = static_cast<DimKey>(rng.NextBelow(card));
          DimKey hi = static_cast<DimKey>(lo + rng.NextBelow(card - lo));
          predicates[d] = DimPredicate::Range(lo, hi);
          label_predicates[d] = DimPredicate::Range(lo, hi);
          break;
        }
      }
    }
    // Brute force over encoded facts. Range/Set cases built above operate on
    // different domains (label vs id); normalize: evaluate brute force in id
    // space directly using `predicates` for ranges, label predicates mapped
    // to ids otherwise.
    std::optional<Measure> expected;
    for (const auto& [ids, m] : facts) {
      bool match = true;
      for (size_t d = 0; d < kDims; ++d) {
        const DimPredicate& pred = predicates[d];
        DimKey id = cube.dictionary(d)
                        .Lookup("k" + std::to_string(ids[d]))
                        .ValueOrDie();
        if (!pred.Matches(id)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      expected = expected.has_value() ? AggCombine(AggFn::kSum, *expected, m) : m;
    }
    Result<Measure> actual = AggregateQuery(cube, predicates);
    if (expected.has_value()) {
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, *expected);
    } else {
      EXPECT_TRUE(actual.status().IsNotFound());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateQueryPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace scdwarf::dwarf
