#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/rng.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {
namespace {

CubeSchema GeoSchema(AggFn agg = AggFn::kSum) {
  return CubeSchema("geo",
                    {DimensionSpec("Country"), DimensionSpec("City"),
                     DimensionSpec("Station", "Station")},
                    "bikes", agg);
}

/// The running example of the paper's Fig. 1/Fig. 2: country/city/station.
DwarfCube BuildGeoCube(AggFn agg = AggFn::kSum, BuilderOptions options = {}) {
  DwarfBuilder builder(GeoSchema(agg), options);
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Pearse St"}, 5).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Cork", "Patrick St"}, 2).ok());
  EXPECT_TRUE(builder.AddTuple({"France", "Paris", "Bastille"}, 7).ok());
  auto cube = std::move(builder).Build();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).ValueOrDie();
}

TEST(DwarfBuilderTest, EmptyCube) {
  DwarfBuilder builder(GeoSchema());
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok());
  EXPECT_TRUE(cube->empty());
  EXPECT_EQ(cube->num_nodes(), 0u);
}

TEST(DwarfBuilderTest, SingleTuple) {
  DwarfBuilder builder(GeoSchema());
  ASSERT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok()) << cube.status();
  // One node per level; every ALL pointer coalesces onto the single path.
  EXPECT_EQ(cube->num_nodes(), 3u);
  EXPECT_EQ(cube->stats().cell_count, 3u);
  EXPECT_EQ(cube->stats().coalesced_all_count, 2u);
  EXPECT_EQ(*PointQueryByName(*cube, {"Ireland", "Dublin", "Fenian St"}), 3);
  EXPECT_EQ(*PointQueryByName(*cube, {std::nullopt, std::nullopt, std::nullopt}),
            3);
}

TEST(DwarfBuilderTest, SingleDimensionCube) {
  CubeSchema schema("flat", {DimensionSpec("Key")}, "m", AggFn::kSum);
  DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"a"}, 1).ok());
  ASSERT_TRUE(builder.AddTuple({"b"}, 2).ok());
  ASSERT_TRUE(builder.AddTuple({"c"}, 4).ok());
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok()) << cube.status();
  EXPECT_EQ(cube->num_nodes(), 1u);
  const NodeView root = cube->node(cube->root());
  EXPECT_EQ(root.cells.size(), 3u);
  EXPECT_EQ(root.all_measure, 7);
}

TEST(DwarfBuilderTest, GeoCubeStructure) {
  DwarfCube cube = BuildGeoCube();
  EXPECT_EQ(cube.stats().tuple_count, 4u);
  EXPECT_EQ(cube.stats().source_tuple_count, 4u);

  const NodeView root = cube.node(cube.root());
  ASSERT_EQ(root.cells.size(), 2u);  // Ireland, France
  EXPECT_FALSE(root.all_coalesced);

  // France has a single chain, so its city and station ALL cells coalesce.
  EXPECT_GT(cube.stats().coalesced_all_count, 0u);
}

TEST(DwarfBuilderTest, ArityMismatchRejected) {
  DwarfBuilder builder(GeoSchema());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin"}, 3).IsInvalidArgument());
}

TEST(DwarfBuilderTest, InvalidSchemaRejected) {
  CubeSchema no_dims("bad", {}, "m");
  DwarfBuilder builder(no_dims);
  EXPECT_TRUE(std::move(builder).Build().status().IsInvalidArgument());

  CubeSchema dup("bad2", {DimensionSpec("a"), DimensionSpec("a")}, "m");
  DwarfBuilder builder2(dup);
  EXPECT_TRUE(std::move(builder2).Build().status().IsInvalidArgument());
}

TEST(DwarfBuilderTest, DuplicateTuplesMergeThroughAggregate) {
  DwarfBuilder builder(GeoSchema(AggFn::kSum));
  ASSERT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  ASSERT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 4).ok());
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->stats().tuple_count, 1u);
  EXPECT_EQ(cube->stats().source_tuple_count, 2u);
  EXPECT_EQ(*PointQueryByName(*cube, {"Ireland", "Dublin", "Fenian St"}), 7);
}

TEST(DwarfBuilderTest, InputOrderDoesNotMatter) {
  DwarfBuilder shuffled(GeoSchema());
  ASSERT_TRUE(shuffled.AddTuple({"France", "Paris", "Bastille"}, 7).ok());
  ASSERT_TRUE(shuffled.AddTuple({"Ireland", "Cork", "Patrick St"}, 2).ok());
  ASSERT_TRUE(shuffled.AddTuple({"Ireland", "Dublin", "Pearse St"}, 5).ok());
  ASSERT_TRUE(shuffled.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  auto cube = std::move(shuffled).Build();
  ASSERT_TRUE(cube.ok());
  EXPECT_TRUE(cube->StructurallyEquals(BuildGeoCube()));
}

TEST(DwarfBuilderTest, AddEncodedTupleValidatesKeys) {
  DwarfBuilder builder(GeoSchema());
  Tuple tuple;
  tuple.keys = {0, 0, 0};
  tuple.measure = 1;
  // No keys encoded yet -> id 0 unknown.
  EXPECT_TRUE(builder.AddEncodedTuple(tuple).IsInvalidArgument());
  ASSERT_TRUE(builder.EncodeKey(0, "Ireland").ok());
  ASSERT_TRUE(builder.EncodeKey(1, "Dublin").ok());
  ASSERT_TRUE(builder.EncodeKey(2, "Fenian St").ok());
  EXPECT_TRUE(builder.AddEncodedTuple(tuple).ok());
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(*PointQueryByName(*cube, {"Ireland", "Dublin", "Fenian St"}), 1);
}

TEST(DwarfBuilderTest, CountAggregateCountsTuples) {
  DwarfCube cube = BuildGeoCube(AggFn::kCount);
  EXPECT_EQ(*PointQueryByName(cube, {"Ireland", std::nullopt, std::nullopt}), 3);
  EXPECT_EQ(*PointQueryByName(cube, {std::nullopt, std::nullopt, std::nullopt}),
            4);
}

TEST(DwarfBuilderTest, MinMaxAggregates) {
  DwarfCube min_cube = BuildGeoCube(AggFn::kMin);
  EXPECT_EQ(*PointQueryByName(min_cube,
                              {"Ireland", std::nullopt, std::nullopt}),
            2);
  DwarfCube max_cube = BuildGeoCube(AggFn::kMax);
  EXPECT_EQ(*PointQueryByName(max_cube,
                              {std::nullopt, std::nullopt, std::nullopt}),
            7);
}

TEST(DwarfBuilderTest, SuffixCoalescingReducesNodeCount) {
  DwarfCube coalesced = BuildGeoCube();
  BuilderOptions no_coalesce;
  no_coalesce.enable_suffix_coalescing = false;
  DwarfCube full = BuildGeoCube(AggFn::kSum, no_coalesce);
  EXPECT_LT(coalesced.num_nodes(), full.num_nodes());
  EXPECT_EQ(full.stats().coalesced_all_count, 0u);
  // Same answers either way.
  for (const auto& country :
       std::vector<std::optional<std::string>>{"Ireland", "France",
                                               std::nullopt}) {
    EXPECT_EQ(
        PointQueryByName(coalesced, {country, std::nullopt, std::nullopt})
            .ValueOr(-1),
        PointQueryByName(full, {country, std::nullopt, std::nullopt})
            .ValueOr(-1));
  }
}

TEST(DwarfBuilderTest, DebugStringShowsTree) {
  DwarfCube cube = BuildGeoCube();
  std::string dump = cube.ToDebugString();
  EXPECT_NE(dump.find("Ireland"), std::string::npos);
  EXPECT_NE(dump.find("ALL"), std::string::npos);
  EXPECT_NE(dump.find("Fenian St"), std::string::npos);
}

// ------------------------------------------------------------------
// Property test: for random datasets, every point query (all 2^d ALL
// patterns x sampled keys) must equal a brute-force aggregate over the
// input tuples. This is the central correctness invariant of DWARF.
// ------------------------------------------------------------------

struct PropertyCase {
  AggFn agg;
  bool coalesce;
  bool memoize;
  uint64_t seed;
};

class DwarfPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DwarfPropertyTest, PointQueriesMatchBruteForce) {
  const PropertyCase& param = GetParam();
  Rng rng(param.seed);
  constexpr size_t kDims = 4;
  const size_t cardinalities[kDims] = {5, 4, 3, 6};

  CubeSchema schema("prop",
                    {DimensionSpec("d0"), DimensionSpec("d1"),
                     DimensionSpec("d2"), DimensionSpec("d3")},
                    "m", param.agg);
  BuilderOptions options;
  options.enable_suffix_coalescing = param.coalesce;
  options.enable_merge_memoization = param.memoize;
  DwarfBuilder builder(schema, options);

  // Raw facts for brute force, keyed by string keys.
  std::vector<std::pair<std::vector<std::string>, Measure>> facts;
  size_t num_tuples = 120;
  for (size_t i = 0; i < num_tuples; ++i) {
    std::vector<std::string> keys(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      keys[d] = "k" + std::to_string(rng.NextBelow(cardinalities[d]));
    }
    Measure measure = rng.NextInRange(-20, 100);
    ASSERT_TRUE(builder.AddTuple(keys, measure).ok());
    facts.emplace_back(std::move(keys), measure);
  }
  auto cube_result = std::move(builder).Build();
  ASSERT_TRUE(cube_result.ok()) << cube_result.status();
  const DwarfCube& cube = *cube_result;

  auto brute_force = [&](const std::vector<std::optional<std::string>>& query)
      -> std::optional<Measure> {
    std::optional<Measure> acc;
    for (const auto& [keys, measure] : facts) {
      bool match = true;
      for (size_t d = 0; d < kDims; ++d) {
        if (query[d].has_value() && *query[d] != keys[d]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Measure leaf = AggLeafValue(param.agg, measure);
      acc = acc.has_value() ? AggCombine(param.agg, *acc, leaf) : leaf;
    }
    return acc;
  };

  // All 2^4 ALL-patterns x a sample of key combinations.
  for (uint32_t pattern = 0; pattern < (1u << kDims); ++pattern) {
    for (int sample = 0; sample < 40; ++sample) {
      std::vector<std::optional<std::string>> query(kDims);
      for (size_t d = 0; d < kDims; ++d) {
        if (pattern & (1u << d)) {
          query[d] = "k" + std::to_string(rng.NextBelow(cardinalities[d]));
        }
      }
      std::optional<Measure> expected = brute_force(query);
      Result<Measure> actual = PointQueryByName(cube, query);
      if (expected.has_value()) {
        ASSERT_TRUE(actual.ok()) << actual.status();
        EXPECT_EQ(*actual, *expected);
      } else {
        EXPECT_TRUE(actual.status().IsNotFound());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DwarfPropertyTest,
    ::testing::Values(PropertyCase{AggFn::kSum, true, true, 1},
                      PropertyCase{AggFn::kSum, true, false, 2},
                      PropertyCase{AggFn::kSum, false, false, 3},
                      PropertyCase{AggFn::kCount, true, true, 4},
                      PropertyCase{AggFn::kMin, true, true, 5},
                      PropertyCase{AggFn::kMax, true, true, 6},
                      PropertyCase{AggFn::kMax, false, false, 7}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = AggFnName(info.param.agg);
      name += info.param.coalesce ? "_coalesce" : "_full";
      name += info.param.memoize ? "_memo" : "_nomemo";
      name += "_s" + std::to_string(info.param.seed);
      return name;
    });

// Structural invariants on randomly built cubes.
class DwarfInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DwarfInvariantTest, ArenaIsWellFormed) {
  Rng rng(GetParam());
  CubeSchema schema("inv",
                    {DimensionSpec("a"), DimensionSpec("b"), DimensionSpec("c")},
                    "m");
  DwarfBuilder builder(schema);
  size_t n = 50 + rng.NextBelow(200);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(builder
                    .AddTuple({"a" + std::to_string(rng.NextBelow(8)),
                               "b" + std::to_string(rng.NextBelow(8)),
                               "c" + std::to_string(rng.NextBelow(8))},
                              static_cast<Measure>(rng.NextBelow(50)))
                    .ok());
  }
  auto cube = std::move(builder).Build();
  ASSERT_TRUE(cube.ok());
  for (NodeId id = 0; id < cube->num_nodes(); ++id) {
    const NodeView node = cube->node(id);
    ASSERT_FALSE(node.cells.empty());
    for (size_t c = 1; c < node.cells.size(); ++c) {
      ASSERT_LT(node.cells[c - 1].key, node.cells[c].key);
    }
    if (!cube->IsLeafLevel(node.level)) {
      for (const DwarfCell& cell : node.cells) {
        ASSERT_LT(cell.child, cube->num_nodes());
        ASSERT_EQ(cube->node(cell.child).level, node.level + 1);
      }
      ASSERT_LT(node.all_child, cube->num_nodes());
      ASSERT_EQ(cube->node(node.all_child).level, node.level + 1);
    }
  }
  // Root is last committed node in construction order.
  EXPECT_EQ(cube->root(), cube->num_nodes() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DwarfInvariantTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace scdwarf::dwarf
