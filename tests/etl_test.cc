#include <gtest/gtest.h>

#include "citibikes/bike_feed.h"
#include "dwarf/query.h"
#include "etl/extractor.h"
#include "etl/pipeline.h"
#include "etl/tuple_mapper.h"

namespace scdwarf::etl {
namespace {

// ---------------------------------------------------------------- record

TEST(FeedRecordTest, SetGetHas) {
  FeedRecord record;
  record.Set("name", "Fenian St");
  record.Set("bikes", "3");
  EXPECT_EQ(*record.Get("name"), "Fenian St");
  EXPECT_TRUE(record.Has("bikes"));
  EXPECT_TRUE(record.Get("nope").status().IsNotFound());
  // Duplicate set keeps the first value.
  record.Set("name", "Other");
  EXPECT_EQ(*record.Get("name"), "Fenian St");
}

// ------------------------------------------------------------- extractors

constexpr const char* kSampleXml = R"(
<stations city="Dublin" lastUpdate="2016-01-05T08:00:00">
  <station><id>1</id><name>Fenian St</name><bikes>3</bikes></station>
  <station><id>2</id><name>Pearse St</name><bikes>5</bikes></station>
</stations>)";

TEST(XmlExtractorTest, ExtractsRecordAndDocumentFields) {
  auto extractor = XmlExtractor::Create(
      "station", {{"id", "@x", FieldScope::kRecord, false, "?"},
                  {"name", "name", FieldScope::kRecord, true, ""},
                  {"bikes", "bikes", FieldScope::kRecord, true, ""},
                  {"city", "@city", FieldScope::kDocument, true, ""},
                  {"updated", "@lastUpdate", FieldScope::kDocument, true, ""}});
  ASSERT_TRUE(extractor.ok()) << extractor.status();
  auto records = extractor->Extract(kSampleXml);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(*(*records)[0].Get("name"), "Fenian St");
  EXPECT_EQ(*(*records)[1].Get("bikes"), "5");
  EXPECT_EQ(*(*records)[0].Get("city"), "Dublin");
  EXPECT_EQ(*(*records)[1].Get("updated"), "2016-01-05T08:00:00");
  // Missing optional attribute falls back to default.
  EXPECT_EQ(*(*records)[0].Get("id"), "?");
}

TEST(XmlExtractorTest, MissingRequiredFieldFails) {
  auto extractor = XmlExtractor::Create(
      "station", {{"nope", "nonexistent", FieldScope::kRecord, true, ""}});
  ASSERT_TRUE(extractor.ok());
  EXPECT_TRUE(extractor->Extract(kSampleXml).status().IsNotFound());
}

TEST(XmlExtractorTest, MalformedDocumentFails) {
  auto extractor = XmlExtractor::Create(
      "station", {{"name", "name", FieldScope::kRecord, true, ""}});
  ASSERT_TRUE(extractor.ok());
  EXPECT_TRUE(extractor->Extract("<broken").status().IsParseError());
}

TEST(XmlExtractorTest, InvalidPathsRejectedAtCreate) {
  EXPECT_FALSE(XmlExtractor::Create(
                   "a//b", {{"f", "x", FieldScope::kRecord, true, ""}})
                   .ok());
  EXPECT_FALSE(
      XmlExtractor::Create("a", {{"f", "", FieldScope::kRecord, true, ""}})
          .ok());
}

constexpr const char* kSampleJson = R"({
  "city": "Dublin",
  "stations": [
    {"id": 1, "name": "Fenian St", "status": {"bikes": 3}},
    {"id": 2, "name": "Pearse St", "status": {"bikes": 5}}
  ]})";

TEST(JsonExtractorTest, ExtractsNestedFields) {
  auto extractor = JsonExtractor::Create(
      "stations", {{"id", "id", FieldScope::kRecord, true, ""},
                   {"name", "name", FieldScope::kRecord, true, ""},
                   {"bikes", "status.bikes", FieldScope::kRecord, true, ""},
                   {"city", "city", FieldScope::kDocument, true, ""}});
  ASSERT_TRUE(extractor.ok()) << extractor.status();
  auto records = extractor->Extract(kSampleJson);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(*(*records)[0].Get("bikes"), "3");
  EXPECT_EQ(*(*records)[1].Get("name"), "Pearse St");
  EXPECT_EQ(*(*records)[0].Get("city"), "Dublin");
}

TEST(JsonExtractorTest, NonArrayRecordsPathFails) {
  auto extractor = JsonExtractor::Create(
      "city", {{"f", "id", FieldScope::kRecord, true, ""}});
  ASSERT_TRUE(extractor.ok());
  EXPECT_TRUE(extractor->Extract(kSampleJson).status().IsInvalidArgument());
}

// ------------------------------------------------------------- transforms

TEST(TransformTest, CalendarDerivations) {
  EXPECT_EQ(*ApplyTransform(Transform::kMonthName, "2016-01-05T08:00:00"),
            "January");
  EXPECT_EQ(*ApplyTransform(Transform::kDate, "2016-01-05T08:00:00"),
            "2016-01-05");
  EXPECT_EQ(*ApplyTransform(Transform::kWeekday, "2016-01-05T08:00:00"),
            "Tuesday");
  EXPECT_EQ(*ApplyTransform(Transform::kHour, "2016-01-05T08:00:00"), "08");
  EXPECT_EQ(*ApplyTransform(Transform::kHour, "2016-01-05T23:59:59"), "23");
}

TEST(TransformTest, Buckets) {
  EXPECT_EQ(*ApplyTransform(Transform::kBucket10, "25"), "20-29");
  EXPECT_EQ(*ApplyTransform(Transform::kBucket10, "30"), "30-39");
  EXPECT_EQ(*ApplyTransform(Transform::kBucket10, "-5"), "-10--1");
  EXPECT_EQ(*ApplyTransform(Transform::kBucket100, "250"), "200-299");
}

TEST(TransformTest, IdentityAndErrors) {
  EXPECT_EQ(*ApplyTransform(Transform::kIdentity, "anything"), "anything");
  EXPECT_FALSE(ApplyTransform(Transform::kMonthName, "not a date").ok());
  EXPECT_FALSE(ApplyTransform(Transform::kBucket10, "abc").ok());
}

// ------------------------------------------------------------ tuple mapper

dwarf::CubeSchema SmallSchema() {
  return dwarf::CubeSchema(
      "s", {dwarf::DimensionSpec("Weekday"), dwarf::DimensionSpec("Station")},
      "bikes");
}

TEST(TupleMapperTest, MapsRecord) {
  auto mapper = TupleMapper::Create(
      SmallSchema(),
      {{"updated", Transform::kWeekday}, {"name", Transform::kIdentity}},
      "bikes");
  ASSERT_TRUE(mapper.ok()) << mapper.status();
  FeedRecord record;
  record.Set("updated", "2016-01-05T08:00:00");
  record.Set("name", "Fenian St");
  record.Set("bikes", "3");
  auto mapped = mapper->Map(record);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->first, (std::vector<std::string>{"Tuesday", "Fenian St"}));
  EXPECT_EQ(mapped->second, 3);
}

TEST(TupleMapperTest, CreateValidation) {
  EXPECT_FALSE(TupleMapper::Create(SmallSchema(), {{"a"}}, "m").ok());
  EXPECT_FALSE(TupleMapper::Create(SmallSchema(), {{"a"}, {""}}, "m").ok());
  EXPECT_FALSE(TupleMapper::Create(SmallSchema(), {{"a"}, {"b"}}, "").ok());
}

TEST(TupleMapperTest, MapErrors) {
  auto mapper =
      TupleMapper::Create(SmallSchema(), {{"updated", Transform::kWeekday},
                                          {"name"}},
                          "bikes");
  ASSERT_TRUE(mapper.ok());
  FeedRecord missing;
  missing.Set("updated", "2016-01-05");
  missing.Set("bikes", "3");
  EXPECT_TRUE(mapper->Map(missing).status().IsNotFound());

  FeedRecord bad_measure;
  bad_measure.Set("updated", "2016-01-05");
  bad_measure.Set("name", "x");
  bad_measure.Set("bikes", "lots");
  EXPECT_FALSE(mapper->Map(bad_measure).ok());

  FeedRecord bad_date;
  bad_date.Set("updated", "nope");
  bad_date.Set("name", "x");
  bad_date.Set("bikes", "3");
  EXPECT_FALSE(mapper->Map(bad_date).ok());
}

// --------------------------------------------------------------- pipeline

TEST(PipelineTest, BikesXmlEndToEnd) {
  citibikes::BikeFeedConfig config;
  config.num_stations = 8;
  config.target_records = 200;
  citibikes::BikeFeedGenerator feed(config);
  auto pipeline = MakeBikesXmlPipeline();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  while (feed.HasNext()) {
    ASSERT_TRUE(pipeline->ConsumeXml(feed.NextXml()).ok());
  }
  EXPECT_EQ(pipeline->stats().records, 200u);
  EXPECT_EQ(pipeline->stats().documents, feed.documents_emitted());
  EXPECT_GT(pipeline->stats().bytes, 0u);
  auto cube = std::move(*pipeline).Finish();
  ASSERT_TRUE(cube.ok()) << cube.status();
  EXPECT_EQ(cube->num_dimensions(), 8u);
  EXPECT_EQ(cube->stats().source_tuple_count, 200u);
  // Grand total exists.
  std::vector<std::optional<dwarf::DimKey>> all(8, std::nullopt);
  EXPECT_TRUE(dwarf::PointQuery(*cube, all).ok());
}

TEST(PipelineTest, XmlAndJsonFeedsProduceIdenticalCubes) {
  citibikes::BikeFeedConfig config;
  config.num_stations = 8;
  config.target_records = 160;

  citibikes::BikeFeedGenerator xml_feed(config);
  auto xml_pipeline = MakeBikesXmlPipeline();
  ASSERT_TRUE(xml_pipeline.ok());
  while (xml_feed.HasNext()) {
    ASSERT_TRUE(xml_pipeline->ConsumeXml(xml_feed.NextXml()).ok());
  }
  auto xml_cube = std::move(*xml_pipeline).Finish();
  ASSERT_TRUE(xml_cube.ok());

  citibikes::BikeFeedGenerator json_feed(config);
  auto json_pipeline = MakeBikesJsonPipeline();
  ASSERT_TRUE(json_pipeline.ok());
  while (json_feed.HasNext()) {
    auto status = json_pipeline->ConsumeJson(json_feed.NextJson());
    ASSERT_TRUE(status.ok()) << status;
  }
  auto json_cube = std::move(*json_pipeline).Finish();
  ASSERT_TRUE(json_cube.ok());

  // The paper's "canonical approach": same data through either format gives
  // the same cube.
  EXPECT_TRUE(xml_cube->StructurallyEquals(*json_cube));
}

TEST(PipelineTest, WrongFormatRejected) {
  auto pipeline = MakeBikesXmlPipeline();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(pipeline->ConsumeJson("{}").IsFailedPrecondition());
}

TEST(PipelineTest, StrictPipelineFailsOnBadRecord) {
  auto pipeline = MakeBikesXmlPipeline();
  ASSERT_TRUE(pipeline.ok());
  // Well-formed XML whose station lacks required fields.
  EXPECT_FALSE(
      pipeline->ConsumeXml("<stations><station><name>x</name></station>"
                           "</stations>")
          .ok());
}

TEST(PipelineTest, LenientPipelineSkipsBadRecords) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  auto mapper = TupleMapper::Create(
      schema,
      {{"last_update", Transform::kMonthName},
       {"last_update", Transform::kDate},
       {"last_update", Transform::kWeekday},
       {"last_update", Transform::kHour},
       {"area"},
       {"name"},
       {"status"},
       {"bike_stands", Transform::kBucket10}},
      "available_bikes");
  ASSERT_TRUE(mapper.ok());
  auto extractor = XmlExtractor::Create(
      "station",
      {{"name", "name", FieldScope::kRecord, false, ""},
       {"area", "area", FieldScope::kRecord, false, ""},
       {"bike_stands", "bike_stands", FieldScope::kRecord, false, "xx"},
       {"available_bikes", "available_bikes", FieldScope::kRecord, false, "0"},
       {"status", "status", FieldScope::kRecord, false, "UNKNOWN"},
       {"last_update", "last_update", FieldScope::kRecord, false,
        "2016-01-01T00:00:00"}});
  ASSERT_TRUE(extractor.ok());
  CubePipeline pipeline(schema, std::move(*mapper), std::move(*extractor),
                        std::nullopt, /*strict=*/false);
  // One good record, one with an unparsable bucket field.
  ASSERT_TRUE(pipeline
                  .ConsumeXml(
                      "<stations>"
                      "<station><name>a</name><area>z</area>"
                      "<bike_stands>20</bike_stands>"
                      "<available_bikes>3</available_bikes>"
                      "<status>OPEN</status>"
                      "<last_update>2016-01-05T08:00:00</last_update>"
                      "</station>"
                      "<station><name>b</name><area>z</area>"
                      "<available_bikes>4</available_bikes>"
                      "</station>"
                      "</stations>")
                  .ok());
  EXPECT_EQ(pipeline.stats().records, 1u);
  EXPECT_EQ(pipeline.stats().skipped_records, 1u);
}

}  // namespace
}  // namespace scdwarf::etl
