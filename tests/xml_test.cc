#include <gtest/gtest.h>

#include "xml/xml_node.h"
#include "xml/xml_parser.h"
#include "xml/xml_path.h"

namespace scdwarf::xml {
namespace {

// ---------------------------------------------------------------- parser

TEST(XmlParserTest, MinimalDocument) {
  auto doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(XmlParserTest, TextContent) {
  auto doc = ParseXml("<station><name>Fenian St</name></station>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlElement* name = doc->root()->FindChild("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->text(), "Fenian St");
}

TEST(XmlParserTest, Attributes) {
  auto doc = ParseXml(R"(<station id="42" open='true'/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc->root()->FindAttribute("id"), nullptr);
  EXPECT_EQ(*doc->root()->FindAttribute("id"), "42");
  EXPECT_EQ(*doc->root()->FindAttribute("open"), "true");
  EXPECT_EQ(doc->root()->FindAttribute("missing"), nullptr);
}

TEST(XmlParserTest, NestedElements) {
  auto doc = ParseXml(
      "<stations><station><id>1</id></station>"
      "<station><id>2</id></station></stations>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto stations = doc->root()->FindChildren("station");
  ASSERT_EQ(stations.size(), 2u);
  EXPECT_EQ(stations[0]->FindChild("id")->text(), "1");
  EXPECT_EQ(stations[1]->FindChild("id")->text(), "2");
}

TEST(XmlParserTest, EntityDecoding) {
  auto doc = ParseXml("<t>a &lt;b&gt; &amp; &quot;c&quot; &apos;d&apos;</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->text(), "a <b> & \"c\" 'd'");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  auto doc = ParseXml("<t>&#65;&#x42;&#233;</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->text(), "AB\xC3\xA9");  // A, B, é (UTF-8)
}

TEST(XmlParserTest, EntitiesInAttributes) {
  auto doc = ParseXml(R"(<t name="O&apos;Connell &amp; Co"/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(*doc->root()->FindAttribute("name"), "O'Connell & Co");
}

TEST(XmlParserTest, CdataSection) {
  auto doc = ParseXml("<t><![CDATA[raw <unescaped> & data]]></t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->text(), "raw <unescaped> & data");
}

TEST(XmlParserTest, CommentsAndProcessingInstructionsSkipped) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- header -->"
      "<t><!-- inner --><a>1</a><?pi data?></t><!-- trailer -->");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->children().size(), 1u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  auto doc = ParseXml("<!DOCTYPE stations SYSTEM \"x.dtd\"><stations/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->name(), "stations");
}

TEST(XmlParserTest, DoctypeInternalSubsetRejected) {
  auto doc = ParseXml("<!DOCTYPE t [<!ENTITY e \"x\">]><t/>");
  EXPECT_TRUE(doc.status().IsParseError());
}

TEST(XmlParserTest, MismatchedTagsRejected) {
  auto doc = ParseXml("<a><b></a></b>");
  ASSERT_TRUE(doc.status().IsParseError());
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, UnterminatedElementRejected) {
  EXPECT_TRUE(ParseXml("<a><b>").status().IsParseError());
}

TEST(XmlParserTest, DuplicateAttributeRejected) {
  EXPECT_TRUE(ParseXml(R"(<a x="1" x="2"/>)").status().IsParseError());
}

TEST(XmlParserTest, UnknownEntityRejected) {
  EXPECT_TRUE(ParseXml("<a>&nbsp;</a>").status().IsParseError());
}

TEST(XmlParserTest, TrailingGarbageRejected) {
  EXPECT_TRUE(ParseXml("<a/>junk").status().IsParseError());
}

TEST(XmlParserTest, ErrorsReportLocation) {
  auto doc = ParseXml("<a>\n\n  <b x=></b></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status();
}

TEST(XmlParserTest, WhitespaceOnlyTextIsTrimmedAway) {
  auto doc = ParseXml("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->text(), "");
}

TEST(XmlParserTest, SubtreeSize) {
  auto doc = ParseXml("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->SubtreeSize(), 4u);
}

// ---------------------------------------------------------------- serializer

TEST(XmlSerializerTest, RoundTrip) {
  const char* input =
      "<stations updated=\"2016-01-05\">"
      "<station id=\"1\"><name>Fenian St &amp; Co</name><bikes>3</bikes>"
      "</station></stations>";
  auto doc = ParseXml(input);
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::string serialized = SerializeXml(*doc);
  auto reparsed = ParseXml(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->root()->FindChildren("station").size(), 1u);
  EXPECT_EQ(
      reparsed->root()->FindChild("station")->FindChild("name")->text(),
      "Fenian St & Co");
}

TEST(XmlSerializerTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeXmlText("<a & 'b' \"c\">"),
            "&lt;a &amp; &apos;b&apos; &quot;c&quot;&gt;");
}

// ---------------------------------------------------------------- path

class XmlPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseXml(
        "<city><carparks><carpark id=\"cp1\"><name>North</name>"
        "<spaces>120</spaces></carpark>"
        "<carpark id=\"cp2\"><name>South</name><spaces>80</spaces></carpark>"
        "</carparks><updated>noon</updated></city>");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).ValueOrDie();
  }
  XmlDocument doc_;
};

TEST_F(XmlPathTest, SelectsNestedElements) {
  auto path = XmlPath::Compile("carparks/carpark/name");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->SelectValues(*doc_.root()),
            (std::vector<std::string>{"North", "South"}));
}

TEST_F(XmlPathTest, SelectsAttributes) {
  auto path = XmlPath::Compile("carparks/carpark/@id");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->SelectValues(*doc_.root()),
            (std::vector<std::string>{"cp1", "cp2"}));
}

TEST_F(XmlPathTest, WildcardStep) {
  auto path = XmlPath::Compile("carparks/*/spaces");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->SelectValues(*doc_.root()),
            (std::vector<std::string>{"120", "80"}));
}

TEST_F(XmlPathTest, FirstValue) {
  auto path = XmlPath::Compile("updated");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path->SelectFirstValue(*doc_.root()), "noon");
}

TEST_F(XmlPathTest, MissingPathIsNotFound) {
  auto path = XmlPath::Compile("nope/never");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->SelectFirstValue(*doc_.root()).status().IsNotFound());
}

TEST(XmlPathCompileTest, RejectsBadSyntax) {
  EXPECT_TRUE(XmlPath::Compile("").status().IsParseError());
  EXPECT_TRUE(XmlPath::Compile("a//b").status().IsParseError());
  EXPECT_TRUE(XmlPath::Compile("@id/b").status().IsParseError());
  EXPECT_TRUE(XmlPath::Compile("a/@").status().IsParseError());
}

}  // namespace
}  // namespace scdwarf::xml
