// Unit tests of the sharded LRU result cache (src/server/result_cache):
// eviction order, per-shard capacity accounting, and the revalidated-vs-
// invalidated split of the epoch-publish sweep.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/result_cache.h"

namespace scdwarf::server {
namespace {

CachedResult MakeResult(const std::string& payload) {
  return CachedResult{true, payload};
}

TEST(ResultCacheTest, GetMissesThenHitsAfterPut) {
  ResultCache cache(/*capacity=*/8, /*num_shards=*/1);
  EXPECT_FALSE(cache.Get("q1", 0).has_value());
  cache.Put("q1", 0, MakeResult("r1"));
  auto hit = cache.Get("q1", 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload_json, "r1");
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EpochIsPartOfTheLookupKey) {
  ResultCache cache(8, 1);
  cache.Put("q1", 0, MakeResult("epoch0"));
  cache.Put("q1", 1, MakeResult("epoch1"));
  EXPECT_EQ(cache.Get("q1", 0)->payload_json, "epoch0");
  EXPECT_EQ(cache.Get("q1", 1)->payload_json, "epoch1");
  EXPECT_FALSE(cache.Get("q1", 2).has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  ResultCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put("a", 0, MakeResult("ra"));
  cache.Put("b", 0, MakeResult("rb"));
  cache.Put("c", 0, MakeResult("rc"));
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.Get("a", 0).has_value());
  cache.Put("d", 0, MakeResult("rd"));

  EXPECT_TRUE(cache.Get("a", 0).has_value());
  EXPECT_FALSE(cache.Get("b", 0).has_value());  // evicted
  EXPECT_TRUE(cache.Get("c", 0).has_value());
  EXPECT_TRUE(cache.Get("d", 0).has_value());
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ResultCacheTest, RefreshingAnEntryDoesNotGrowTheCache) {
  ResultCache cache(2, 1);
  cache.Put("a", 0, MakeResult("v1"));
  cache.Put("a", 0, MakeResult("v2"));  // refresh, not insert
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Get("a", 0)->payload_json, "v2");
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, CapacityIsSplitAcrossShards) {
  // 8 entries over 4 shards: each shard holds at most 2, so inserting many
  // keys can never push the total past the configured capacity.
  ResultCache cache(/*capacity=*/8, /*num_shards=*/4);
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), 0, MakeResult("r"));
  }
  ResultCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0, 4);
  cache.Put("a", 0, MakeResult("r"));
  EXPECT_FALSE(cache.Get("a", 0).has_value());
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheTest, RevalidateSplitsKeptAndDroppedEntries) {
  ResultCache cache(8, 2);
  cache.Put("keep1", 0, MakeResult("r1"));
  cache.Put("keep2", 0, MakeResult("r2"));
  cache.Put("drop1", 0, MakeResult("r3"));

  size_t kept = cache.Revalidate(
      1, [](const std::string& key) { return key.rfind("keep", 0) == 0; });
  EXPECT_EQ(kept, 2u);

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.revalidated, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 2u);

  // Kept entries answer at the new epoch only; the old epoch is gone.
  EXPECT_TRUE(cache.Get("keep1", 1).has_value());
  EXPECT_TRUE(cache.Get("keep2", 1).has_value());
  EXPECT_FALSE(cache.Get("keep1", 0).has_value());
  EXPECT_FALSE(cache.Get("drop1", 1).has_value());
}

TEST(ResultCacheTest, RevalidateKeepsOnlyImmediatelyPreviousEpoch) {
  ResultCache cache(8, 1);
  cache.Put("old", 0, MakeResult("r0"));
  cache.Put("fresh", 1, MakeResult("r1"));

  // Publishing epoch 2: "fresh" (epoch 1) may carry over, "old" (epoch 0)
  // missed the epoch-1 publish and must drop even though the predicate says
  // it is unaffected.
  size_t kept = cache.Revalidate(2, [](const std::string&) { return true; });
  EXPECT_EQ(kept, 1u);
  EXPECT_TRUE(cache.Get("fresh", 2).has_value());
  EXPECT_FALSE(cache.Get("old", 2).has_value());
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.revalidated, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(ResultCacheTest, RevalidatedEntryKeepsWorkingAcrossChainedPublishes) {
  ResultCache cache(8, 1);
  cache.Put("q", 0, MakeResult("r"));
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    EXPECT_EQ(cache.Revalidate(epoch,
                               [](const std::string&) { return true; }),
              1u);
  }
  EXPECT_TRUE(cache.Get("q", 4).has_value());
  EXPECT_EQ(cache.stats().revalidated, 4u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(ResultCacheTest, InvalidateAllDropsEverythingAndCounts) {
  ResultCache cache(8, 2);
  cache.Put("a", 0, MakeResult("r"));
  cache.Put("b", 0, MakeResult("r"));
  cache.InvalidateAll();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_FALSE(cache.Get("a", 0).has_value());
}

TEST(ResultCacheTest, RevalidateWithNullPredicateDropsStaleEntries) {
  ResultCache cache(8, 1);
  cache.Put("a", 0, MakeResult("r"));
  EXPECT_EQ(cache.Revalidate(1, nullptr), 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

}  // namespace
}  // namespace scdwarf::server
