// Determinism tests for the parallel construction path: cubes built through
// ParallelCubePipeline with any worker count must be identical — same
// dictionaries (ids AND order), same structure, same query results, same
// stored bytes — to the serial CubePipeline's, including under the
// lenient/strict malformed-record policies and the builder ablations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "citibikes/bike_feed.h"
#include "common/parallel.h"
#include "dwarf/query.h"
#include "etl/parallel_pipeline.h"
#include "etl/pipeline.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"

namespace scdwarf::etl {
namespace {

// Large enough that the builder's parallel sort path (>= 4096 tuples)
// actually engages.
citibikes::BikeFeedConfig TestFeedConfig() {
  citibikes::BikeFeedConfig config;
  config.num_stations = 24;
  config.target_records = 6000;
  return config;
}

dwarf::DwarfCube BuildSerialXml(dwarf::BuilderOptions builder_options = {}) {
  citibikes::BikeFeedGenerator feed(TestFeedConfig());
  auto pipeline = MakeBikesXmlPipeline(builder_options);
  EXPECT_TRUE(pipeline.ok()) << pipeline.status();
  while (feed.HasNext()) {
    Status status = pipeline->ConsumeXml(feed.NextXml());
    EXPECT_TRUE(status.ok()) << status;
  }
  auto cube = std::move(*pipeline).Finish();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(*cube);
}

dwarf::DwarfCube BuildParallelXml(int threads,
                                  dwarf::BuilderOptions builder_options = {}) {
  citibikes::BikeFeedGenerator feed(TestFeedConfig());
  builder_options.num_threads = threads;
  auto pipeline = MakeBikesXmlParallelPipeline(builder_options,
                                               {.num_threads = threads});
  EXPECT_TRUE(pipeline.ok()) << pipeline.status();
  while (feed.HasNext()) {
    Status status = pipeline->ConsumeXml(feed.NextXml());
    EXPECT_TRUE(status.ok()) << status;
  }
  auto cube = std::move(*pipeline).Finish();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(*cube);
}

uint64_t StoredBytes(const dwarf::DwarfCube& cube) {
  nosql::Database db;  // in-memory
  mapper::NoSqlDwarfMapper cube_mapper(&db, "eqks");
  auto id = cube_mapper.Store(cube);
  EXPECT_TRUE(id.ok()) << id.status();
  return db.EstimateBytes();
}

// Byte-identical in every observable way: structure, statistics, dictionary
// contents *in id order* (the strongest determinism claim — ids depend on
// first-seen order), query results, and serialized size.
void ExpectCubesIdentical(const dwarf::DwarfCube& serial,
                          const dwarf::DwarfCube& parallel) {
  EXPECT_TRUE(serial.StructurallyEquals(parallel));
  EXPECT_EQ(serial.stats().node_count, parallel.stats().node_count);
  EXPECT_EQ(serial.stats().cell_count, parallel.stats().cell_count);
  EXPECT_EQ(serial.stats().coalesced_all_count,
            parallel.stats().coalesced_all_count);
  EXPECT_EQ(serial.stats().tuple_count, parallel.stats().tuple_count);
  EXPECT_EQ(serial.stats().source_tuple_count,
            parallel.stats().source_tuple_count);
  EXPECT_EQ(serial.stats().approx_bytes, parallel.stats().approx_bytes);

  ASSERT_EQ(serial.num_dimensions(), parallel.num_dimensions());
  for (size_t dim = 0; dim < serial.num_dimensions(); ++dim) {
    ASSERT_EQ(serial.dictionary(dim).size(), parallel.dictionary(dim).size());
    for (dwarf::DimKey id = 0; id < serial.dictionary(dim).size(); ++id) {
      EXPECT_EQ(serial.dictionary(dim).DecodeUnchecked(id),
                parallel.dictionary(dim).DecodeUnchecked(id));
    }
  }

  // Grand total and a per-dimension rollup agree.
  size_t dims = serial.num_dimensions();
  std::vector<std::optional<dwarf::DimKey>> all(dims, std::nullopt);
  auto serial_total = dwarf::PointQuery(serial, all);
  auto parallel_total = dwarf::PointQuery(parallel, all);
  ASSERT_TRUE(serial_total.ok()) << serial_total.status();
  ASSERT_TRUE(parallel_total.ok()) << parallel_total.status();
  EXPECT_EQ(*serial_total, *parallel_total);
  for (size_t dim = 0; dim < dims; ++dim) {
    for (dwarf::DimKey id = 0; id < serial.dictionary(dim).size(); ++id) {
      std::vector<std::optional<dwarf::DimKey>> keys(dims, std::nullopt);
      keys[dim] = id;
      auto lhs = dwarf::PointQuery(serial, keys);
      auto rhs = dwarf::PointQuery(parallel, keys);
      ASSERT_EQ(lhs.ok(), rhs.ok());
      if (lhs.ok()) {
        EXPECT_EQ(*lhs, *rhs);
      }
    }
  }

  EXPECT_EQ(StoredBytes(serial), StoredBytes(parallel));
}

TEST(ParallelPipelineTest, XmlTwoAndFourThreadsMatchSerial) {
  dwarf::DwarfCube serial = BuildSerialXml();
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    dwarf::DwarfCube parallel = BuildParallelXml(threads);
    ExpectCubesIdentical(serial, parallel);
  }
}

TEST(ParallelPipelineTest, JsonParallelMatchesSerial) {
  citibikes::BikeFeedGenerator serial_feed(TestFeedConfig());
  auto serial_pipeline = MakeBikesJsonPipeline();
  ASSERT_TRUE(serial_pipeline.ok());
  while (serial_feed.HasNext()) {
    ASSERT_TRUE(serial_pipeline->ConsumeJson(serial_feed.NextJson()).ok());
  }
  auto serial = std::move(*serial_pipeline).Finish();
  ASSERT_TRUE(serial.ok()) << serial.status();

  citibikes::BikeFeedGenerator feed(TestFeedConfig());
  auto pipeline = MakeBikesJsonParallelPipeline({}, {.num_threads = 4});
  ASSERT_TRUE(pipeline.ok());
  while (feed.HasNext()) {
    ASSERT_TRUE(pipeline->ConsumeJson(feed.NextJson()).ok());
  }
  auto parallel = std::move(*pipeline).Finish();
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ExpectCubesIdentical(*serial, *parallel);
}

TEST(ParallelPipelineTest, AblationOptionsStayIdentical) {
  dwarf::BuilderOptions no_coalescing;
  no_coalescing.enable_suffix_coalescing = false;
  dwarf::BuilderOptions no_memo;
  no_memo.enable_merge_memoization = false;
  for (const dwarf::BuilderOptions& options : {no_coalescing, no_memo}) {
    SCOPED_TRACE(options.enable_suffix_coalescing ? "no_memo"
                                                  : "no_coalescing");
    dwarf::DwarfCube serial = BuildSerialXml(options);
    dwarf::DwarfCube parallel = BuildParallelXml(4, options);
    ExpectCubesIdentical(serial, parallel);
  }
}

TEST(ParallelPipelineTest, StatsMatchSerial) {
  citibikes::BikeFeedGenerator serial_feed(TestFeedConfig());
  auto serial_pipeline = MakeBikesXmlPipeline();
  ASSERT_TRUE(serial_pipeline.ok());
  while (serial_feed.HasNext()) {
    ASSERT_TRUE(serial_pipeline->ConsumeXml(serial_feed.NextXml()).ok());
  }
  PipelineStats serial_stats = serial_pipeline->stats();
  ASSERT_TRUE(std::move(*serial_pipeline).Finish().ok());

  citibikes::BikeFeedGenerator feed(TestFeedConfig());
  auto pipeline = MakeBikesXmlParallelPipeline({}, {.num_threads = 3});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->num_threads(), 3);
  while (feed.HasNext()) {
    ASSERT_TRUE(pipeline->ConsumeXml(feed.NextXml()).ok());
  }
  ASSERT_TRUE(std::move(*pipeline).Finish().ok());
  PipelineStats parallel_stats = pipeline->stats();

  EXPECT_EQ(parallel_stats.documents, serial_stats.documents);
  EXPECT_EQ(parallel_stats.records, serial_stats.records);
  EXPECT_EQ(parallel_stats.bytes, serial_stats.bytes);
  EXPECT_EQ(parallel_stats.skipped_records, serial_stats.skipped_records);
}

// ------------------------------------------------- malformed-record policy

constexpr const char* kGoodAndBadStations =
    "<stations>"
    "<station><name>a</name><area>z</area>"
    "<bike_stands>20</bike_stands>"
    "<available_bikes>3</available_bikes>"
    "<status>OPEN</status>"
    "<last_update>2016-01-05T08:00:00</last_update>"
    "</station>"
    "<station><name>b</name><area>z</area>"
    "<available_bikes>4</available_bikes>"
    "</station>"
    "</stations>";

// Extractor whose fields are all optional, so a record can survive
// extraction yet fail mapping (the unparsable bike_stands default).
Result<XmlExtractor> LenientExtractor() {
  return XmlExtractor::Create(
      "station",
      {{"name", "name", FieldScope::kRecord, false, ""},
       {"area", "area", FieldScope::kRecord, false, ""},
       {"bike_stands", "bike_stands", FieldScope::kRecord, false, "xx"},
       {"available_bikes", "available_bikes", FieldScope::kRecord, false, "0"},
       {"status", "status", FieldScope::kRecord, false, "UNKNOWN"},
       {"last_update", "last_update", FieldScope::kRecord, false,
        "2016-01-01T00:00:00"}});
}

ParallelCubePipeline MakeLenientParallel(bool strict, int threads) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  auto mapper =
      TupleMapper::Create(schema, BikesDimensionMappings(), "available_bikes");
  EXPECT_TRUE(mapper.ok());
  auto extractor = LenientExtractor();
  EXPECT_TRUE(extractor.ok());
  return ParallelCubePipeline(schema, std::move(*mapper),
                              std::move(*extractor), std::nullopt, strict,
                              /*builder_options=*/{},
                              {.num_threads = threads});
}

TEST(ParallelPipelineTest, LenientPolicySkipsBadRecords) {
  ParallelCubePipeline pipeline = MakeLenientParallel(/*strict=*/false, 4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pipeline.ConsumeXml(kGoodAndBadStations).ok());
  }
  auto cube = std::move(pipeline).Finish();
  ASSERT_TRUE(cube.ok()) << cube.status();
  EXPECT_EQ(pipeline.stats().records, 8u);
  EXPECT_EQ(pipeline.stats().skipped_records, 8u);
  EXPECT_EQ(cube->stats().source_tuple_count, 8u);
}

TEST(ParallelPipelineTest, StrictPolicyFailsAtFinish) {
  ParallelCubePipeline pipeline = MakeLenientParallel(/*strict=*/true, 4);
  // The enqueue itself succeeds — the failure surfaces when draining.
  ASSERT_TRUE(pipeline.ConsumeXml(kGoodAndBadStations).ok());
  EXPECT_FALSE(std::move(pipeline).Finish().ok());
}

TEST(ParallelPipelineTest, MalformedDocumentFailsAtFinish) {
  auto pipeline = MakeBikesXmlParallelPipeline({}, {.num_threads = 2});
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->ConsumeXml("<broken").ok());  // queued, not parsed yet
  EXPECT_TRUE(std::move(*pipeline).Finish().status().IsParseError());
}

TEST(ParallelPipelineTest, WrongFormatRejectedImmediately) {
  auto pipeline = MakeBikesXmlParallelPipeline({}, {.num_threads = 2});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(pipeline->ConsumeJson("{}").IsFailedPrecondition());
  ASSERT_TRUE(std::move(*pipeline).Finish().ok());
}

// ------------------------------------------------------- thread-count knob

TEST(ParallelPipelineTest, SingleThreadUsesSerialFallback) {
  auto pipeline = MakeBikesXmlParallelPipeline({}, {.num_threads = 1});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->num_threads(), 1);
}

TEST(ParallelPipelineTest, ScdwarfThreadsEnvOverridesAuto) {
  ASSERT_EQ(::setenv("SCDWARF_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  EXPECT_EQ(ResolveThreadCount(2), 2);  // explicit knob wins
  auto pipeline = MakeBikesXmlParallelPipeline({}, {});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->num_threads(), 3);
  ASSERT_EQ(::setenv("SCDWARF_THREADS", "junk", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1);  // unparsable -> hardware fallback
  ASSERT_EQ(::unsetenv("SCDWARF_THREADS"), 0);
  ASSERT_TRUE(std::move(*pipeline).Finish().ok());
}

// ------------------------------------------------ parallel row serialization

TEST(ParallelStoreTest, NoSqlMappersStoreIdenticalBytes) {
  dwarf::DwarfCube cube = BuildSerialXml();

  nosql::Database serial_db, parallel_db;
  mapper::NoSqlDwarfMapper serial_mapper(&serial_db, "ks");
  mapper::NoSqlDwarfMapper parallel_mapper(&parallel_db, "ks");
  ASSERT_TRUE(serial_mapper.Store(cube, {.num_threads = 1}).ok());
  ASSERT_TRUE(parallel_mapper.Store(cube, {.num_threads = 4}).ok());
  EXPECT_EQ(serial_db.EstimateBytes(), parallel_db.EstimateBytes());
  auto reloaded = parallel_mapper.Load(0);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE(reloaded->StructurallyEquals(cube));

  nosql::Database serial_min_db, parallel_min_db;
  mapper::NoSqlMinMapper serial_min(&serial_min_db, "ks", {.num_threads = 1});
  mapper::NoSqlMinMapper parallel_min(&parallel_min_db, "ks",
                                      {.num_threads = 4});
  ASSERT_TRUE(serial_min.Store(cube).ok());
  ASSERT_TRUE(parallel_min.Store(cube).ok());
  EXPECT_EQ(serial_min_db.EstimateBytes(), parallel_min_db.EstimateBytes());
  auto min_reloaded = parallel_min.Load(0);
  ASSERT_TRUE(min_reloaded.ok()) << min_reloaded.status();
  EXPECT_TRUE(min_reloaded->StructurallyEquals(cube));
}

TEST(ParallelStoreTest, SqlMappersStoreIdenticalBytes) {
  dwarf::DwarfCube cube = BuildSerialXml();

  sql::SqlEngine serial_engine, parallel_engine;
  mapper::SqlDwarfMapper serial_mapper(&serial_engine, "db");
  serial_mapper.set_num_threads(1);
  mapper::SqlDwarfMapper parallel_mapper(&parallel_engine, "db");
  parallel_mapper.set_num_threads(4);
  ASSERT_TRUE(serial_mapper.Store(cube).ok());
  ASSERT_TRUE(parallel_mapper.Store(cube).ok());
  EXPECT_EQ(serial_engine.EstimateBytes(), parallel_engine.EstimateBytes());
  auto reloaded = parallel_mapper.Load(0);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE(reloaded->StructurallyEquals(cube));

  sql::SqlEngine serial_min_engine, parallel_min_engine;
  mapper::SqlMinMapper serial_min(&serial_min_engine, "db");
  serial_min.set_num_threads(1);
  mapper::SqlMinMapper parallel_min(&parallel_min_engine, "db");
  parallel_min.set_num_threads(4);
  ASSERT_TRUE(serial_min.Store(cube).ok());
  ASSERT_TRUE(parallel_min.Store(cube).ok());
  EXPECT_EQ(serial_min_engine.EstimateBytes(),
            parallel_min_engine.EstimateBytes());
  auto min_reloaded = parallel_min.Load(0);
  ASSERT_TRUE(min_reloaded.ok()) << min_reloaded.status();
  EXPECT_TRUE(min_reloaded->StructurallyEquals(cube));
}

// -------------------------------------------------- common/parallel helpers

TEST(ParallelHelpersTest, SplitShardsCoversRangeContiguously) {
  auto shards = SplitShards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  size_t total = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].shard, i);
    if (i > 0) {
      EXPECT_EQ(shards[i].begin, shards[i - 1].end);
    }
    total += shards[i].end - shards[i].begin;
  }
  EXPECT_EQ(shards.back().end, 10u);
  EXPECT_EQ(total, 10u);
  EXPECT_TRUE(SplitShards(0, 4).empty());
  EXPECT_EQ(SplitShards(2, 4).size(), 2u);  // never emits empty shards
}

TEST(ParallelHelpersTest, ParallelMapShardsPreservesShardOrder) {
  ThreadPool pool(4);
  std::vector<size_t> begins = ParallelMapShards<size_t>(
      pool, 1000, [](const ShardRange& shard) { return shard.begin; });
  ASSERT_EQ(begins.size(), 4u);
  EXPECT_TRUE(std::is_sorted(begins.begin(), begins.end()));
}

}  // namespace
}  // namespace scdwarf::etl
