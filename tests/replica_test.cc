// Tests for the replica fan-out subsystem (src/replica + src/client): the
// snapshot codec round-trip (including arenas with dead merge slots and a
// corruption sweep), the new wire ops (ping, metrics_text, load_snapshot,
// epoch-pinned query_open), the client library, the replica serving process,
// and the shard router's routing + mid-drain failover.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/rng.h"
#include "dwarf/builder.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/replica.h"
#include "replica/router.h"
#include "replica/snapshot.h"
#include "server/query_server.h"
#include "server/tcp_server.h"
#include "server/wire.h"

namespace scdwarf::replica {
namespace {

namespace fs = std::filesystem;

using dwarf::Measure;
using json::JsonValue;
using server::ExecResult;
using server::MakeResponse;
using server::ParseRequest;
using server::QueryServer;
using server::ServerHandle;
using server::ServerOptions;

const std::vector<std::string>& Days() {
  static const auto* v = new std::vector<std::string>{
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return *v;
}

const std::vector<std::string>& Stations() {
  static const auto* v = new std::vector<std::string>{
      "Station0", "Station1", "Station2", "Station3", "Station4", "Station5"};
  return *v;
}

dwarf::CubeSchema TestSchema() {
  std::vector<dwarf::DimensionSpec> specs;
  specs.emplace_back("Day");
  specs.emplace_back("Station");
  return dwarf::CubeSchema("replica_test", std::move(specs), "bikes",
                           dwarf::AggFn::kSum);
}

std::vector<std::string> RandomKeys(Rng& rng) {
  return {Days()[rng.NextBelow(Days().size())],
          Stations()[rng.NextBelow(Stations().size())]};
}

dwarf::DwarfCube BuildCube(uint64_t seed, int tuples) {
  Rng rng(seed);
  dwarf::DwarfBuilder builder(TestSchema());
  for (int i = 0; i < tuples; ++i) {
    EXPECT_TRUE(builder
                    .AddTuple(RandomKeys(rng),
                              static_cast<Measure>(rng.NextInRange(1, 40)))
                    .ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

std::vector<std::pair<std::vector<std::string>, Measure>> RandomBatch(
    Rng& rng, int size) {
  std::vector<std::pair<std::vector<std::string>, Measure>> batch;
  for (int i = 0; i < size; ++i) {
    batch.emplace_back(RandomKeys(rng),
                       static_cast<Measure>(rng.NextInRange(1, 40)));
  }
  return batch;
}

/// Fresh scratch directory under the system temp dir.
fs::path ScratchDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("scdwarf_replica_test_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Requests exercising every one-shot op against the 2-dim test schema.
std::vector<std::string> DifferentialRequests() {
  return {
      R"({"op":"point","keys":["Mon","Station1"]})",
      R"({"op":"point","keys":[null,"Station2"]})",
      R"({"op":"point","keys":["NoSuchDay","Station0"]})",
      R"({"op":"slice","dim":"Day","key":"Tue"})",
      R"({"op":"slice","dim":"Station","key":"Station3"})",
      R"({"op":"rollup","dims":["Day"]})",
      R"({"op":"rollup","dims":["Station","Day"]})",
      R"({"op":"aggregate","predicates":[{"kind":"all"},{"kind":"set","keys":["Station1","Station4"]}]})",
  };
}

/// Asserts both cubes answer every differential request byte-identically.
void ExpectSameAnswers(const dwarf::DwarfCube& a, const dwarf::DwarfCube& b) {
  for (const std::string& request_json : DifferentialRequests()) {
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    ExecResult left = server::ExecuteRequest(a, *request);
    ExecResult right = server::ExecuteRequest(b, *request);
    EXPECT_EQ(left.ok, right.ok) << request_json;
    EXPECT_EQ(left.payload_json, right.payload_json) << request_json;
  }
}

struct Envelope {
  bool ok = false;
  uint64_t epoch = 0;
  std::string code;
  JsonValue value;
};

Envelope Parse(const std::string& response) {
  Envelope env;
  auto root = json::ParseJson(response);
  EXPECT_TRUE(root.ok()) << response;
  if (!root.ok()) return env;
  env.value = *root;
  env.ok = root->Get("ok").ValueOrDie().AsBool().ValueOrDie();
  env.epoch = static_cast<uint64_t>(
      root->Get("epoch").ValueOrDie().AsNumber().ValueOrDie());
  if (auto code = root->Get("code"); code.ok()) {
    env.code = code->AsString().ValueOrDie();
  }
  return env;
}

// ------------------------------------------------------------ snapshot codec

TEST(SnapshotCodecTest, FileNameAndListing) {
  EXPECT_EQ(SnapshotFileName(0), "epoch-00000000000000000000.cf");
  EXPECT_EQ(SnapshotFileName(7), "epoch-00000000000000000007.cf");
  EXPECT_EQ(SnapshotFileName(12345678901234ull),
            "epoch-00000012345678901234.cf");

  EXPECT_FALSE(ListSnapshots("/no/such/directory/scdwarf").ok());

  fs::path dir = ScratchDir("listing");
  auto empty = ListSnapshots(dir.string());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  dwarf::DwarfCube cube = BuildCube(1, 20);
  // Written out of order; listed ascending. Strays are ignored.
  for (uint64_t epoch : {5u, 1u, 3u}) {
    ASSERT_TRUE(WriteCubeSnapshot(cube, epoch,
                                  (dir / SnapshotFileName(epoch)).string())
                    .ok());
  }
  WriteFileBytes(dir / "not-a-snapshot.txt", "hello");
  WriteFileBytes(dir / "epoch-bogus.cf", "hello");
  auto listed = ListSnapshots(dir.string());
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 3u);
  EXPECT_EQ((*listed)[0].epoch, 1u);
  EXPECT_EQ((*listed)[1].epoch, 3u);
  EXPECT_EQ((*listed)[2].epoch, 5u);
  EXPECT_EQ((*listed)[2].path, (dir / SnapshotFileName(5)).string());
  fs::remove_all(dir);
}

TEST(SnapshotCodecTest, RoundTripPreservesStructureAndAnswers) {
  fs::path dir = ScratchDir("roundtrip");
  dwarf::DwarfCube cube = BuildCube(2, 60);
  const std::string path = (dir / SnapshotFileName(3)).string();
  ASSERT_TRUE(WriteCubeSnapshot(cube, 3, path).ok());

  auto loaded = LoadCubeSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 3u);
  EXPECT_TRUE(loaded->cube.StructurallyEquals(cube));
  EXPECT_EQ(loaded->cube.num_nodes(), cube.num_nodes());
  EXPECT_EQ(loaded->cube.stats().tuple_count, cube.stats().tuple_count);
  EXPECT_EQ(loaded->cube.stats().source_tuple_count,
            cube.stats().source_tuple_count);
  ExpectSameAnswers(cube, loaded->cube);

  // The snapshot file is immutable input: loading must not change a byte.
  std::string before = ReadFileBytes(path);
  auto again = LoadCubeSnapshot(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ReadFileBytes(path), before);
  fs::remove_all(dir);
}

TEST(SnapshotCodecTest, RoundTripAfterIncrementalMerges) {
  fs::path dir = ScratchDir("merged");
  QueryServer server(BuildCube(3, 50));
  Rng rng(33);
  for (int round = 0; round < 3; ++round) {
    auto batch = RandomBatch(rng, 5);
    // Brand-new dictionary values force real merge work each round.
    batch.emplace_back(
        std::vector<std::string>{"Mon", "Fresh" + std::to_string(round)},
        Measure{9});
    ASSERT_TRUE(server.ApplyUpdate(batch).ok());
  }
  auto snapshot = server.store().snapshot();
  ASSERT_GT(snapshot.cube->arena_chunks(), 1u);  // dead slots exist

  const std::string path = (dir / SnapshotFileName(snapshot.epoch)).string();
  ASSERT_TRUE(WriteCubeSnapshot(*snapshot.cube, snapshot.epoch, path).ok());
  auto loaded = LoadCubeSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, snapshot.epoch);
  // Ids survive: dead merge slots are serialized too, so the arena extent is
  // preserved even though the loaded cube holds a single chunk.
  EXPECT_EQ(loaded->cube.num_nodes(), snapshot.cube->num_nodes());
  EXPECT_TRUE(loaded->cube.StructurallyEquals(*snapshot.cube));
  ExpectSameAnswers(*snapshot.cube, loaded->cube);
  fs::remove_all(dir);
}

// v2 snapshots persist each dimension's ordered flag; the load path
// recomputes the rank views and range index from the dictionaries, so a
// freshly-bootstrapped replica answers value-range requests identically.
TEST(SnapshotCodecTest, OrderedFlagsSurviveRoundTrip) {
  std::vector<dwarf::DimensionSpec> specs;
  specs.emplace_back("Day", "", /*ordered_in=*/true);
  specs.emplace_back("Station");
  dwarf::DwarfBuilder builder(dwarf::CubeSchema("ordered", std::move(specs),
                                                "bikes", dwarf::AggFn::kSum));
  ASSERT_TRUE(builder.AddTuple({"Wed", "Station2"}, 5).ok());
  ASSERT_TRUE(builder.AddTuple({"Mon", "Station0"}, 7).ok());
  ASSERT_TRUE(builder.AddTuple({"Tue", "Station1"}, 9).ok());
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();

  fs::path dir = ScratchDir("ordered");
  const std::string path = (dir / SnapshotFileName(1)).string();
  ASSERT_TRUE(WriteCubeSnapshot(cube, 1, path).ok());
  auto loaded = LoadCubeSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->cube.schema().dimensions()[0].ordered);
  EXPECT_FALSE(loaded->cube.schema().dimensions()[1].ordered);
  ASSERT_TRUE(loaded->cube.dictionary(0).has_rank_view());
  ASSERT_NE(loaded->cube.range_index(), nullptr);
  EXPECT_TRUE(loaded->cube.range_index()->covers(0));

  const std::string ranged =
      R"({"op":"aggregate","predicates":[)"
      R"({"kind":"range","lo":"Mon","hi":"Tue"},{"kind":"all"}]})";
  auto request = ParseRequest(ranged);
  ASSERT_TRUE(request.ok());
  ExecResult original = server::ExecuteRequest(cube, *request);
  ExecResult replica = server::ExecuteRequest(loaded->cube, *request);
  ASSERT_TRUE(original.ok);
  EXPECT_EQ(original.payload_json, replica.payload_json);
  fs::remove_all(dir);
}

/// Re-encodes \p cube in the legacy v2 snapshot layout (per-node records,
/// no arena image) — the bytes a pre-v3 publisher shipped. The production
/// writer moved to the v3 flat-arena image, so v2/v1 compat coverage (and
/// golden regen) builds its legacy bytes here.
std::string EncodeLegacyV2Snapshot(const dwarf::DwarfCube& cube,
                                   uint64_t epoch) {
  std::string out;
  auto put_u16 = [&out](uint16_t v) {
    for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  auto put_u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  auto put_u64 = [&out](uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  auto put_string = [&](const std::string& s) {
    put_u32(static_cast<uint32_t>(s.size()));
    out.append(s);
  };
  const dwarf::CubeSchema& schema = cube.schema();
  out.append("SCDWCUBE", 8);
  put_u32(2);  // legacy version
  put_u64(epoch);
  put_string(schema.name());
  put_u32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const dwarf::DimensionSpec& dim : schema.dimensions()) {
    put_string(dim.name);
    put_string(dim.dimension_table);
    out.push_back(dim.ordered ? 1 : 0);
  }
  put_string(schema.measure_name());
  put_u32(static_cast<uint32_t>(schema.agg()));
  for (size_t d = 0; d < cube.num_dimensions(); ++d) {
    const dwarf::Dictionary& dict = cube.dictionary(d);
    put_u64(dict.size());
    for (dwarf::DimKey id = 0; id < dict.size(); ++id) {
      put_string(dict.DecodeUnchecked(id));
    }
  }
  put_u32(cube.root());
  put_u64(cube.num_nodes());
  for (dwarf::NodeId id = 0; id < cube.num_nodes(); ++id) {
    const dwarf::NodeView node = cube.node(id);
    put_u16(node.level);
    out.push_back(node.all_coalesced ? 1 : 0);
    put_u32(node.all_child);
    put_u64(static_cast<uint64_t>(node.all_measure));
    put_u32(static_cast<uint32_t>(node.cells.size()));
    for (const dwarf::DwarfCell& cell : node.cells) {
      put_u32(cell.key);
      put_u32(cell.child);
      put_u64(static_cast<uint64_t>(cell.measure));
    }
  }
  put_u64(cube.stats().tuple_count);
  put_u64(cube.stats().source_tuple_count);
  out.append("SCDWEND", 7);
  out.push_back('\0');
  return out;
}

/// Downgrades v2 snapshot bytes to the v1 layout in place: version field
/// back to 1 and the per-dimension ordered byte v2 appends after each
/// dimension spec stripped (it must be 0 — v1 cannot express ordered dims).
std::string DowngradeV2ToV1(std::string bytes) {
  auto u32le = [&bytes](size_t pos) {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) |
          static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]);
    }
    return v;
  };
  size_t pos = 8;  // past the magic
  EXPECT_EQ(u32le(pos), 2u);
  bytes[pos] = 1;
  pos += 4 + 8;             // version + epoch
  pos += 4 + u32le(pos);    // schema name
  uint32_t num_dims = u32le(pos);
  pos += 4;
  for (uint32_t d = 0; d < num_dims; ++d) {
    pos += 4 + u32le(pos);  // dimension name
    pos += 4 + u32le(pos);  // dimension table
    EXPECT_EQ(bytes[pos], 0);
    bytes.erase(pos, 1);
  }
  return bytes;
}

// A v2 file (per-node records) and a v1 file (additionally predating the
// per-dimension ordered byte) both still load — v1 as all-unordered;
// versions past kVersion are rejected cleanly.
TEST(SnapshotCodecTest, V1SnapshotsLoadAsUnordered) {
  dwarf::DwarfCube cube = BuildCube(0xabc, 40);  // all-unordered schema
  fs::path dir = ScratchDir("v1compat");
  const std::string v2_path = (dir / SnapshotFileName(2)).string();
  WriteFileBytes(v2_path, EncodeLegacyV2Snapshot(cube, 2));
  const std::string v1_path = (dir / SnapshotFileName(3)).string();
  WriteFileBytes(v1_path, DowngradeV2ToV1(ReadFileBytes(v2_path)));

  auto v2_loaded = LoadCubeSnapshot(v2_path);
  ASSERT_TRUE(v2_loaded.ok()) << v2_loaded.status();
  EXPECT_EQ(v2_loaded->epoch, 2u);
  EXPECT_TRUE(v2_loaded->cube.StructurallyEquals(cube));
  ExpectSameAnswers(cube, v2_loaded->cube);

  auto loaded = LoadCubeSnapshot(v1_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 2u);
  for (const auto& dim : loaded->cube.schema().dimensions()) {
    EXPECT_FALSE(dim.ordered);
  }
  EXPECT_EQ(loaded->cube.range_index(), nullptr);
  ExpectSameAnswers(cube, loaded->cube);

  // An unknown future version is an InvalidArgument, not a parse attempt.
  std::string future = ReadFileBytes(v2_path);
  future[8] = 99;
  const std::string future_path = (dir / SnapshotFileName(4)).string();
  WriteFileBytes(future_path, future);
  EXPECT_TRUE(LoadCubeSnapshot(future_path).status().IsInvalidArgument());
  fs::remove_all(dir);
}

/// The fixed cube behind the committed v1 golden file — small enough that
/// the pinned answers below are hand-checkable.
dwarf::DwarfCube GoldenCube() {
  dwarf::DwarfBuilder builder(TestSchema());
  const std::vector<std::tuple<const char*, const char*, Measure>> tuples = {
      {"Mon", "Station0", 5},  {"Mon", "Station1", 7}, {"Tue", "Station0", 11},
      {"Wed", "Station2", 13}, {"Mon", "Station0", 3}, {"Sun", "Station4", 2},
  };
  for (const auto& [day, station, measure] : tuples) {
    EXPECT_TRUE(builder.AddTuple({day, station}, measure).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

// The committed golden file pins the v1 on-disk layout: bytes an older
// publisher shipped must keep loading under every future reader, with the
// answers they encoded. Unlike V1SnapshotsLoadAsUnordered (which builds its
// legacy bytes fresh each run), this catches reader regressions against the
// historical format even after the writer moves on (it writes v3 images
// now). SCDWARF_REGEN_GOLDEN=1 rewrites the file and prints fresh pinned
// payloads — only legitimate when the legacy encode/downgrade helpers
// themselves change; never regen to paper over a reader-side failure.
TEST(SnapshotCodecTest, V1GoldenFileKeepsLoadingWithPinnedAnswers) {
  const std::string golden =
      std::string(SCDWARF_TESTDATA_DIR) + "/epoch-v1-golden.cf";
  const std::pair<const char*, const char*> kPinned[] = {
      {R"({"op":"point","keys":["Mon","Station0"]})", R"({"measure":8})"},
      {R"({"op":"point","keys":[null,null]})", R"({"measure":41})"},
      {R"({"op":"rollup","dims":["Day"]})",
       R"({"rows":[{"keys":["Mon"],"measure":15},{"keys":["Tue"],"measure":11},)"
       R"({"keys":["Wed"],"measure":13},{"keys":["Sun"],"measure":2}]})"},
      {R"({"op":"slice","dim":"Station","key":"Station0"})",
       R"({"rows":[{"keys":["Mon"],"measure":8},)"
       R"({"keys":["Tue"],"measure":11}]})"},
  };

  if (std::getenv("SCDWARF_REGEN_GOLDEN") != nullptr) {
    WriteFileBytes(golden,
                   DowngradeV2ToV1(EncodeLegacyV2Snapshot(GoldenCube(), 1)));
    for (const auto& [request_json, unused] : kPinned) {
      auto request = ParseRequest(request_json);
      ASSERT_TRUE(request.ok());
      ExecResult fresh = server::ExecuteRequest(GoldenCube(), *request);
      std::fprintf(stderr, "pin %s -> %s\n", request_json,
                   fresh.payload_json.c_str());
    }
  }

  auto loaded = LoadCubeSnapshot(golden);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 1u);
  for (const auto& dim : loaded->cube.schema().dimensions()) {
    EXPECT_FALSE(dim.ordered);
  }
  ExpectSameAnswers(GoldenCube(), loaded->cube);
  for (const auto& [request_json, payload] : kPinned) {
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    ExecResult got = server::ExecuteRequest(loaded->cube, *request);
    EXPECT_TRUE(got.ok) << request_json;
    EXPECT_EQ(got.payload_json, payload) << request_json;
  }
}

// v3 files are direct flat-arena images: loading validates the raw arrays
// and points the cube at the mapping — one new arena, a single chunk, stats
// straight from the header — instead of rebuilding node by node.
TEST(SnapshotCodecTest, V3ImageLoadsByValidateAndPoint) {
  fs::path dir = ScratchDir("v3image");
  dwarf::DwarfCube cube = BuildCube(0x33, 50);
  const std::string path = (dir / SnapshotFileName(9)).string();
  ASSERT_TRUE(WriteCubeSnapshot(cube, 9, path).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 12u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 3u);  // version field

  const int64_t arenas_before = dwarf::NodeArena::live_instances();
  auto loaded = LoadCubeSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 9u);
  EXPECT_EQ(loaded->cube.arena_chunks(), 1u);
  EXPECT_EQ(dwarf::NodeArena::live_instances(), arenas_before + 1);
  // Stats come from the header block, not a rebuild walk.
  EXPECT_EQ(loaded->cube.stats().node_count, cube.stats().node_count);
  EXPECT_EQ(loaded->cube.stats().cell_count, cube.stats().cell_count);
  EXPECT_EQ(loaded->cube.stats().coalesced_all_count,
            cube.stats().coalesced_all_count);
  EXPECT_EQ(loaded->cube.stats().tuple_count, cube.stats().tuple_count);
  EXPECT_EQ(loaded->cube.stats().approx_bytes, cube.stats().approx_bytes);
  EXPECT_TRUE(loaded->cube.StructurallyEquals(cube));
  ExpectSameAnswers(cube, loaded->cube);
  fs::remove_all(dir);
}

TEST(SnapshotCodecTest, TruncatedAndCorruptBytesNeverCrash) {
  fs::path dir = ScratchDir("corrupt");
  dwarf::DwarfCube cube = BuildCube(4, 12);
  const std::string path = (dir / SnapshotFileName(1)).string();
  ASSERT_TRUE(WriteCubeSnapshot(cube, 1, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Every strict prefix must fail cleanly (the trailer is never reached).
  const fs::path victim = dir / "victim.cf";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(victim, bytes.substr(0, len));
    auto loaded = LoadCubeSnapshot(victim.string());
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }

  // Single-byte corruption anywhere must never crash; it either fails or
  // (e.g. a flipped measure byte) still parses as a well-formed snapshot.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5a);
    WriteFileBytes(victim, flipped);
    (void)LoadCubeSnapshot(victim.string());
  }

  // Magic and trailer damage is always detected.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteFileBytes(victim, bad_magic);
  EXPECT_FALSE(LoadCubeSnapshot(victim.string()).ok());
  std::string bad_trailer = bytes;
  bad_trailer[bad_trailer.size() - 1] =
      static_cast<char>(bad_trailer.back() ^ 0xff);
  WriteFileBytes(victim, bad_trailer);
  EXPECT_FALSE(LoadCubeSnapshot(victim.string()).ok());

  EXPECT_FALSE(LoadCubeSnapshot((dir / "missing.cf").string()).ok());
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ wire ops

TEST(WireOpsTest, PingReportsEpochUptimeSessions) {
  QueryServer server(BuildCube(5, 40));
  ServerHandle handle(&server);

  Envelope env = Parse(handle.Call(R"({"op":"ping"})"));
  ASSERT_TRUE(env.ok);
  EXPECT_EQ(env.epoch, 0u);
  EXPECT_EQ(env.value.Get("epoch").ValueOrDie().AsNumber().ValueOrDie(), 0.0);
  EXPECT_GE(env.value.Get("uptime_s").ValueOrDie().AsNumber().ValueOrDie(),
            0.0);
  EXPECT_EQ(env.value.Get("sessions").ValueOrDie().AsNumber().ValueOrDie(),
            0.0);

  Envelope opened =
      Parse(handle.QueryOpen(R"({"op":"rollup","dims":["Day"]})", 2));
  ASSERT_TRUE(opened.ok);
  Envelope after = Parse(handle.Call(R"({"op":"ping"})"));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.value.Get("sessions").ValueOrDie().AsNumber().ValueOrDie(),
            1.0);
}

TEST(WireOpsTest, MetricsTextRendersPrometheus) {
  QueryServer server(BuildCube(6, 40));
  ServerHandle handle(&server);
  (void)handle.Call(R"({"op":"point","keys":["Mon","Station1"]})");

  const std::string text = server.MetricsText();
  EXPECT_NE(text.find("# TYPE server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP server_requests_total"), std::string::npos);
  EXPECT_NE(text.find("server_request_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("server_sessions_open "), std::string::npos);

  // The same text is reachable over the wire.
  Envelope env = Parse(handle.Call(R"({"op":"metrics_text"})"));
  ASSERT_TRUE(env.ok);
  std::string wired = env.value.Get("text").ValueOrDie().AsString().ValueOrDie();
  EXPECT_NE(wired.find("server_requests_total"), std::string::npos);
}

TEST(WireOpsTest, LoadSnapshotGatedOffByDefault) {
  QueryServer server(BuildCube(7, 30));
  ServerHandle handle(&server);
  Envelope env =
      Parse(handle.Call(R"({"op":"load_snapshot","path":"/nonexistent.cf"})"));
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.code, "failed_precondition");
}

TEST(WireOpsTest, ReplicaLoadsSnapshotsAndRejectsStaleEpochs) {
  fs::path dir = ScratchDir("load");
  ServerOptions publisher_options;
  publisher_options.num_workers = 1;
  publisher_options.snapshot_dir = dir.string();
  QueryServer publisher(BuildCube(8, 50), publisher_options);
  // The initial cube spools as epoch 0 at construction.
  const std::string epoch0 = (dir / SnapshotFileName(0)).string();
  ASSERT_TRUE(fs::exists(epoch0));

  auto bootstrap = LoadCubeSnapshot(epoch0);
  ASSERT_TRUE(bootstrap.ok());
  ServerOptions replica_options;
  replica_options.num_workers = 1;
  replica_options.allow_snapshot_load = true;
  replica_options.initial_epoch = bootstrap->epoch;
  QueryServer replica(std::move(bootstrap->cube), replica_options);
  ServerHandle handle(&replica);

  Rng rng(88);
  ASSERT_TRUE(publisher.ApplyUpdate(RandomBatch(rng, 6)).ok());
  const std::string epoch1 = (dir / SnapshotFileName(1)).string();
  ASSERT_TRUE(fs::exists(epoch1));

  Envelope env = Parse(
      handle.Call(R"({"op":"load_snapshot","path":")" + epoch1 + "\"}"));
  ASSERT_TRUE(env.ok);
  EXPECT_EQ(env.epoch, 1u);
  EXPECT_TRUE(env.value.Get("loaded").ValueOrDie().AsBool().ValueOrDie());
  EXPECT_EQ(replica.epoch(), 1u);

  // A redelivered notification is rejected, not reapplied.
  Envelope replay = Parse(
      handle.Call(R"({"op":"load_snapshot","path":")" + epoch1 + "\"}"));
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.code, "failed_precondition");
  EXPECT_EQ(replica.epoch(), 1u);

  // Replica answers now match the publisher's current cube byte-for-byte.
  ExpectSameAnswers(*publisher.store().snapshot().cube,
                    *replica.store().snapshot().cube);
  fs::remove_all(dir);
}

TEST(WireOpsTest, EpochPinnedOpenServesRetainedEpochsAndReportsGone) {
  ServerOptions options;
  options.num_workers = 1;
  options.retain_epochs = 2;
  QueryServer server(BuildCube(9, 60), options);
  ServerHandle handle(&server);
  Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.ApplyUpdate(RandomBatch(rng, 4)).ok());
  }
  ASSERT_EQ(server.epoch(), 3u);  // retained: {2, 3}

  // Open pinned to the retained previous epoch and drain it fully.
  const std::string query = R"({"op":"rollup","dims":["Station"]})";
  Envelope opened = Parse(handle.Call(
      R"({"op":"query_open","query":)" + query + R"(,"page_size":4,"epoch":2})"));
  ASSERT_TRUE(opened.ok);
  EXPECT_EQ(opened.epoch, 2u);
  uint64_t cursor = static_cast<uint64_t>(
      opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
  auto pinned = server.store().SnapshotAt(2);
  ASSERT_TRUE(pinned.ok());
  ExecResult direct =
      server::ExecuteRequest(*pinned->cube, *ParseRequest(query));
  ASSERT_TRUE(direct.ok);
  json::JsonArray rows;
  for (;;) {
    Envelope page = Parse(handle.QueryNext(cursor));
    ASSERT_TRUE(page.ok);
    EXPECT_EQ(page.epoch, 2u);
    const json::JsonArray* got =
        page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    rows.insert(rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
  }
  auto direct_payload = json::ParseJson(direct.payload_json);
  ASSERT_TRUE(direct_payload.ok());
  EXPECT_EQ(json::SerializeJson(JsonValue(std::move(rows))),
            json::SerializeJson(direct_payload->Get("rows").ValueOrDie()));

  // Epoch 1 aged out of the retention window.
  Envelope gone = Parse(handle.Call(
      R"({"op":"query_open","query":)" + query + R"(,"page_size":4,"epoch":1})"));
  EXPECT_FALSE(gone.ok);
  EXPECT_EQ(gone.code, "epoch_gone");
}

// -------------------------------------------------------------------- client

TEST(ClientTest, ParseEndpointAcceptsAndRejects) {
  auto full = client::ParseEndpoint("127.0.0.1:9000");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->host, "127.0.0.1");
  EXPECT_EQ(full->port, 9000);
  EXPECT_EQ(full->ToString(), "127.0.0.1:9000");

  // Host defaults to loopback when omitted, with or without the colon.
  auto colon = client::ParseEndpoint(":9000");
  ASSERT_TRUE(colon.ok());
  EXPECT_EQ(colon->host, "127.0.0.1");
  auto bare = client::ParseEndpoint("9000");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 9000);
  EXPECT_TRUE(client::ParseEndpoint("localhost:80").ok());

  EXPECT_FALSE(client::ParseEndpoint("").ok());
  EXPECT_FALSE(client::ParseEndpoint("host:").ok());
  EXPECT_FALSE(client::ParseEndpoint(":").ok());
  EXPECT_FALSE(client::ParseEndpoint("1.2.3.4:0").ok());
  EXPECT_FALSE(client::ParseEndpoint("1.2.3.4:65536").ok());
  EXPECT_FALSE(client::ParseEndpoint("1.2.3.4:http").ok());

  auto list = client::ParseEndpointList("127.0.0.1:1,:2,9003");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[1].port, 2);
  EXPECT_EQ((*list)[2].port, 9003);
  EXPECT_FALSE(client::ParseEndpointList("").ok());
  EXPECT_FALSE(client::ParseEndpointList("127.0.0.1:1,,127.0.0.1:2").ok());
}

TEST(ClientTest, PoolCallsOverTcpAndNamesPeerInErrors) {
  QueryServer server(BuildCube(10, 40));
  server::TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());
  client::Endpoint endpoint;
  endpoint.port = static_cast<uint16_t>(tcp.port());

  client::ClientOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 2000;
  client::ClientPool pool(endpoint, options);
  auto response = pool.Call(R"({"op":"ping"})");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(Parse(*response).ok);

  // Once the server is gone every attempt fails, and the error names the
  // replica that failed (threaded through wire::ReadFull/WriteFull).
  tcp.Stop();
  auto failed = pool.Call(R"({"op":"ping"})");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find(endpoint.ToString()),
            std::string::npos)
      << failed.status();
}

// ------------------------------------------------------------ replica server

TEST(ReplicaServerTest, BootstrapsFollowsSpoolAndNotifications) {
  fs::path dir = ScratchDir("fleet");
  ServerOptions publisher_options;
  publisher_options.num_workers = 1;
  publisher_options.snapshot_dir = dir.string();
  QueryServer publisher(BuildCube(11, 60), publisher_options);

  ReplicaOptions options;
  options.snapshot_dir = dir.string();
  options.num_workers = 1;
  options.bootstrap_wait_ms = 2000;
  ReplicaServer replica_server(options);
  ASSERT_TRUE(replica_server.Start().ok());
  EXPECT_EQ(replica_server.epoch(), 0u);
  ASSERT_GT(replica_server.port(), 0);

  client::Endpoint endpoint;
  endpoint.port = static_cast<uint16_t>(replica_server.port());
  client::CubeClient conn(endpoint);
  const std::string request_json = R"({"op":"slice","dim":"Day","key":"Mon"})";
  ExecResult direct = server::ExecuteRequest(
      *publisher.store().snapshot().cube, *ParseRequest(request_json));
  auto served = conn.Call(request_json);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(*served, MakeResponse(direct.ok, 0, false, direct.payload_json));

  // Epoch 1 arrives by spool polling.
  Rng rng(111);
  ASSERT_TRUE(publisher.ApplyUpdate(RandomBatch(rng, 5)).ok());
  auto polled = replica_server.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 1u);
  EXPECT_EQ(replica_server.epoch(), 1u);

  // Epoch 2 arrives by publisher notification.
  ASSERT_TRUE(publisher.ApplyUpdate(RandomBatch(rng, 5)).ok());
  SnapshotNotifier notifier({endpoint});
  EXPECT_EQ(notifier.NotifyAll((dir / SnapshotFileName(2)).string()), 1u);
  EXPECT_EQ(replica_server.epoch(), 2u);

  // Nothing new left in the spool.
  polled = replica_server.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 0u);

  ExpectSameAnswers(*publisher.store().snapshot().cube,
                    *replica_server.server()->store().snapshot().cube);
  replica_server.Stop();
  fs::remove_all(dir);
}

// --------------------------------------------------------------------- router

TEST(RouterTest, RoutesOneShotsSticksCursorsAndFailsOver) {
  fs::path dir = ScratchDir("router");
  dwarf::DwarfCube cube = BuildCube(12, 80);
  const std::string path = (dir / SnapshotFileName(0)).string();
  ASSERT_TRUE(WriteCubeSnapshot(cube, 0, path).ok());

  // Three replicas serving the same snapshot file behind real sockets.
  std::vector<std::unique_ptr<QueryServer>> replicas;
  std::vector<std::unique_ptr<server::TcpServer>> tcps;
  std::vector<client::Endpoint> endpoints;
  for (int i = 0; i < 3; ++i) {
    auto loaded = LoadCubeSnapshot(path);
    ASSERT_TRUE(loaded.ok());
    ServerOptions options;
    options.num_workers = 1;
    options.allow_snapshot_load = true;
    options.initial_epoch = loaded->epoch;
    replicas.push_back(
        std::make_unique<QueryServer>(std::move(loaded->cube), options));
    tcps.push_back(std::make_unique<server::TcpServer>(replicas.back().get()));
    ASSERT_TRUE(tcps.back()->Start(0).ok());
    client::Endpoint endpoint;
    endpoint.port = static_cast<uint16_t>(tcps.back()->port());
    endpoints.push_back(endpoint);
  }

  RouterOptions options;
  options.health_interval_ms = 0;  // tests drive health checks manually
  options.unhealthy_after = 1;
  Router router(endpoints, options);
  EXPECT_EQ(router.CheckReplicasOnce(), 3u);
  EXPECT_EQ(router.healthy_replicas(), 3u);
  EXPECT_EQ(router.BestEpoch(), 0u);

  // One-shots through the router are byte-identical to direct execution.
  for (const std::string& request_json : DifferentialRequests()) {
    ExecResult direct =
        server::ExecuteRequest(cube, *ParseRequest(request_json));
    EXPECT_EQ(router.HandleFrame(request_json),
              MakeResponse(direct.ok, 0, false, direct.payload_json))
        << request_json;
  }

  // The router answers ping/metrics itself and rejects load_snapshot.
  Envelope ping = Parse(router.HandleFrame(R"({"op":"ping"})"));
  ASSERT_TRUE(ping.ok);
  EXPECT_EQ(ping.epoch, 0u);
  EXPECT_NE(router.MetricsText().find("router_requests_total"),
            std::string::npos);
  Envelope rejected =
      Parse(router.HandleFrame(R"({"op":"load_snapshot","path":"x"})"));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "failed_precondition");

  // Unknown cursors behave exactly like a server's.
  Envelope unknown = Parse(router.HandleFrame(R"({"op":"query_next","cursor":424242})"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.code, "not_found");

  // Sticky cursor drain with a mid-drain replica kill. The first query_open
  // lands on backend 0 (round-robin from zero), so stopping tcps[0] after two
  // pages forces an epoch-pinned failover with a two-page replay.
  const std::string query = R"({"op":"rollup","dims":["Station","Day"]})";
  ExecResult direct = server::ExecuteRequest(cube, *ParseRequest(query));
  ASSERT_TRUE(direct.ok);
  server::ClientContext context;
  Envelope opened = Parse(router.HandleFrame(
      R"({"op":"query_open","query":)" + query + R"(,"page_size":3})",
      &context));
  ASSERT_TRUE(opened.ok);
  EXPECT_EQ(router.open_sessions(), 1u);
  uint64_t cursor = static_cast<uint64_t>(
      opened.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
  json::JsonArray rows;
  int pages = 0;
  for (;;) {
    Envelope page = Parse(router.HandleFrame(
        R"({"op":"query_next","cursor":)" + std::to_string(cursor) + "}",
        &context));
    ASSERT_TRUE(page.ok) << "page " << pages;
    EXPECT_EQ(page.epoch, 0u);
    const json::JsonArray* got =
        page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    rows.insert(rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
    if (++pages == 2) tcps[0]->Stop();  // kill the pinned replica mid-drain
  }
  ASSERT_GE(pages, 2);
  auto direct_payload = json::ParseJson(direct.payload_json);
  ASSERT_TRUE(direct_payload.ok());
  EXPECT_EQ(json::SerializeJson(JsonValue(std::move(rows))),
            json::SerializeJson(direct_payload->Get("rows").ValueOrDie()));
  EXPECT_EQ(router.open_sessions(), 0u);

  // The kill was observed: the dead replica is marked down, the failover
  // counted, and one-shots keep working over the survivors.
  Envelope stats = Parse(router.HandleFrame(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok);
  JsonValue router_stats = stats.value.Get("stats")
                               .ValueOrDie()
                               .Get("router")
                               .ValueOrDie();
  EXPECT_GE(router_stats.Get("failovers_total").ValueOrDie().AsNumber()
                .ValueOrDie(),
            1.0);
  EXPECT_EQ(router.healthy_replicas(), 2u);
  // One-shots keep working over the survivors (the hash ring shrank, so the
  // query may land on a cold cache — only the payload is asserted).
  ExecResult again = server::ExecuteRequest(
      cube, *ParseRequest(DifferentialRequests()[0]));
  Envelope survivor = Parse(router.HandleFrame(DifferentialRequests()[0]));
  EXPECT_EQ(survivor.ok, again.ok);
  EXPECT_EQ(survivor.epoch, 0u);

  // Client-context cleanup closes router-side sessions on disconnect.
  server::ClientContext second;
  Envelope reopened = Parse(router.HandleFrame(
      R"({"op":"query_open","query":)" + query + R"(,"page_size":3})",
      &second));
  ASSERT_TRUE(reopened.ok);
  EXPECT_EQ(router.open_sessions(), 1u);
  router.CloseClientSessions(second);
  EXPECT_EQ(router.open_sessions(), 0u);

  for (auto& tcp : tcps) tcp->Stop();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace scdwarf::replica
