// Parser edge cases for the CQL and SQL front ends: quoted strings that
// contain commas (the classic value-list splitter bug), empty set<int>
// literals, and a truncation sweep feeding every byte prefix of valid
// statements through the parsers. Everything must come back as a Result —
// never an abort, hang, or out-of-bounds read. Plus the wire-protocol
// request parser: range bounds that are not valid dictionary ids must be
// rejected before they are cast to DimKey.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nosql/cql.h"
#include "server/wire.h"
#include "sql/engine.h"
#include "sql/sql.h"

namespace {

// ------------------------------------------------------------------- CQL

class CqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec("CREATE KEYSPACE ks").ok());
    ASSERT_TRUE(Exec("CREATE TABLE ks.t (id int, name text, tags set<int>, "
                     "PRIMARY KEY (id))")
                    .ok());
  }
  scdwarf::Result<scdwarf::nosql::QueryResult> Exec(const std::string& cql) {
    return scdwarf::nosql::ExecuteCql(&db_, cql);
  }
  scdwarf::nosql::Database db_;
};

TEST_F(CqlEdgeTest, QuotedStringsWithCommasDoNotSplitValueLists) {
  ASSERT_TRUE(Exec("INSERT INTO ks.t (id, name, tags) "
                   "VALUES (1, 'Dame St, Dublin 2', {7})")
                  .ok());
  auto select = Exec("SELECT name, tags FROM ks.t WHERE id = 1");
  ASSERT_TRUE(select.ok()) << select.status();
  ASSERT_EQ(select->rows.size(), 1u);
  // The comma stays inside the text value instead of splitting the list.
  EXPECT_EQ(*select->rows[0][0].AsText(), "Dame St, Dublin 2");
  EXPECT_EQ(*select->rows[0][1].AsIntSet(), (std::vector<int64_t>{7}));
}

TEST_F(CqlEdgeTest, DoubledQuoteEscapesRoundTrip) {
  ASSERT_TRUE(Exec("INSERT INTO ks.t (id, name) "
                   "VALUES (1, 'O''Connell St, D1')")
                  .ok());
  auto select = Exec("SELECT id FROM ks.t "
                     "WHERE name = 'O''Connell St, D1' ALLOW FILTERING");
  ASSERT_TRUE(select.ok()) << select.status();
  ASSERT_EQ(select->rows.size(), 1u);
  EXPECT_EQ(*select->rows[0][0].AsInt(), 1);
}

TEST_F(CqlEdgeTest, CommaStringsInsideBatchesDoNotSplitStatements) {
  auto result = Exec(
      "BEGIN BATCH "
      "INSERT INTO ks.t (id, name) VALUES (1, 'a, b'); "
      "INSERT INTO ks.t (id, name) VALUES (2, 'c; APPLY BATCH'); "
      "APPLY BATCH");
  ASSERT_TRUE(result.ok()) << result.status();
  auto select = Exec("SELECT name FROM ks.t WHERE id = 2");
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(*select->rows[0][0].AsText(), "c; APPLY BATCH");
}

TEST_F(CqlEdgeTest, EmptySetLiteralYieldsEmptySet) {
  ASSERT_TRUE(Exec("INSERT INTO ks.t (id, tags) VALUES (1, {})").ok());
  ASSERT_TRUE(Exec("INSERT INTO ks.t (id, tags) VALUES (2, { })").ok());
  for (int id : {1, 2}) {
    auto select =
        Exec("SELECT tags FROM ks.t WHERE id = " + std::to_string(id));
    ASSERT_TRUE(select.ok()) << select.status();
    ASSERT_EQ(select->rows.size(), 1u);
    EXPECT_TRUE(select->rows[0][0].AsIntSet()->empty());
  }
}

TEST_F(CqlEdgeTest, MalformedSetLiteralsAreParseErrors) {
  for (const char* bad : {
           "INSERT INTO ks.t (id, tags) VALUES (1, {1,})",
           "INSERT INTO ks.t (id, tags) VALUES (1, {,1})",
           "INSERT INTO ks.t (id, tags) VALUES (1, {'a'})",
           "INSERT INTO ks.t (id, tags) VALUES (1, {1 2})",
           "INSERT INTO ks.t (id, tags) VALUES (1, {1,2)",
           "INSERT INTO ks.t (id, tags) VALUES (1, {",
       }) {
    auto result = scdwarf::nosql::ParseCql(bad);
    EXPECT_TRUE(result.status().IsParseError()) << "input: " << bad;
  }
}

TEST_F(CqlEdgeTest, BrokenStringLiteralsAreParseErrors) {
  for (const char* bad : {
           "INSERT INTO ks.t (id, name) VALUES (1, 'unterminated",
           "INSERT INTO ks.t (id, name) VALUES (1, ')",
           // The trailing '' is an escape, so the literal never closes.
           "INSERT INTO ks.t (id, name) VALUES (1, 'abc''",
       }) {
    auto result = scdwarf::nosql::ParseCql(bad);
    EXPECT_TRUE(result.status().IsParseError()) << "input: " << bad;
  }
}

// Every byte prefix of a valid statement must come back as a Result. Most
// prefixes are parse errors; a few are complete statements in their own
// right (e.g. an identifier shortened by one letter) — both are fine, the
// invariant is "no abort, no crash, no hang".
void SweepCqlPrefixes(const std::string& statement) {
  for (size_t len = 0; len <= statement.size(); ++len) {
    std::string prefix = statement.substr(0, len);
    auto result = scdwarf::nosql::ParseCql(prefix);
    EXPECT_TRUE(result.ok() || result.status().IsParseError())
        << "prefix[" << len << "]: " << prefix << " -> " << result.status();
  }
  EXPECT_TRUE(scdwarf::nosql::ParseCql(statement).ok()) << statement;
}

TEST(CqlTruncationTest, EveryPrefixReturnsAResult) {
  for (const char* statement : {
           "CREATE KEYSPACE ks",
           "CREATE TABLE ks.t (id int, name text, tags set<int>, "
           "PRIMARY KEY (id))",
           "CREATE INDEX ON ks.t (name)",
           "DROP TABLE ks.t",
           "INSERT INTO ks.t (id, name, tags) "
           "VALUES (1, 'Dame St, ''D2''', {1,2,3});",
           "DELETE FROM ks.t WHERE id = -42",
           "SELECT id, name FROM ks.t WHERE name = 'x' AND id = 1 "
           "ALLOW FILTERING",
           "BEGIN BATCH INSERT INTO ks.t (id) VALUES (1); APPLY BATCH",
       }) {
    SweepCqlPrefixes(statement);
  }
}

// ------------------------------------------------------------------- SQL

class SqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec("CREATE DATABASE db").ok());
    ASSERT_TRUE(Exec("CREATE TABLE db.t (id INT NOT NULL, "
                     "name VARCHAR(64), PRIMARY KEY (id))")
                    .ok());
  }
  scdwarf::Result<scdwarf::sql::SqlResult> Exec(const std::string& sql) {
    return scdwarf::sql::ExecuteSql(&engine_, sql);
  }
  scdwarf::sql::SqlEngine engine_;
};

TEST_F(SqlEdgeTest, QuotedStringsWithCommasDoNotSplitRowLists) {
  // Commas inside the literals must not be confused with the row and value
  // separators of a multi-row insert.
  ASSERT_TRUE(Exec("INSERT INTO db.t (id, name) "
                   "VALUES (1, 'Fenian St, Dublin'), (2, 'a,b,c')")
                  .ok());
  auto select = Exec("SELECT name FROM db.t WHERE name = 'a,b,c'");
  ASSERT_TRUE(select.ok()) << select.status();
  ASSERT_EQ(select->rows.size(), 1u);
  EXPECT_EQ(*select->rows[0][0].AsText(), "a,b,c");
}

TEST_F(SqlEdgeTest, DoubledQuoteEscapesRoundTrip) {
  ASSERT_TRUE(
      Exec("INSERT INTO db.t (id, name) VALUES (1, 'O''Brien, P.')").ok());
  auto select = Exec("SELECT id FROM db.t WHERE name = 'O''Brien, P.'");
  ASSERT_TRUE(select.ok()) << select.status();
  ASSERT_EQ(select->rows.size(), 1u);
}

TEST_F(SqlEdgeTest, SetLiteralsAreParseErrorsNotAborts) {
  // The relational subset has no set type; '{' is not even a lexable
  // character. Both the empty and the populated literal must fail cleanly.
  for (const char* bad : {
           "INSERT INTO db.t (id, name) VALUES (1, {})",
           "INSERT INTO db.t (id, name) VALUES (1, {1,2,3})",
           "SELECT * FROM db.t WHERE id = {}",
       }) {
    auto result = scdwarf::sql::ParseSql(bad);
    EXPECT_TRUE(result.status().IsParseError()) << "input: " << bad;
  }
}

TEST_F(SqlEdgeTest, BrokenStringLiteralsAreParseErrors) {
  for (const char* bad : {
           "INSERT INTO db.t (id, name) VALUES (1, 'unterminated",
           "INSERT INTO db.t (id, name) VALUES (1, 'abc''",
           "SELECT * FROM db.t WHERE name = '",
       }) {
    auto result = scdwarf::sql::ParseSql(bad);
    EXPECT_TRUE(result.status().IsParseError()) << "input: " << bad;
  }
}

TEST_F(SqlEdgeTest, TrailingTokensAfterStatementAreRejected) {
  auto result = scdwarf::sql::ParseSql(
      "INSERT INTO db.t (id) VALUES (1); SELECT * FROM db.t");
  EXPECT_TRUE(result.status().IsParseError());
}

void SweepSqlPrefixes(const std::string& statement) {
  for (size_t len = 0; len <= statement.size(); ++len) {
    std::string prefix = statement.substr(0, len);
    auto result = scdwarf::sql::ParseSql(prefix);
    EXPECT_TRUE(result.ok() || result.status().IsParseError())
        << "prefix[" << len << "]: " << prefix << " -> " << result.status();
  }
  EXPECT_TRUE(scdwarf::sql::ParseSql(statement).ok()) << statement;
}

TEST(SqlTruncationTest, EveryPrefixReturnsAResult) {
  for (const char* statement : {
           "CREATE DATABASE db",
           "CREATE TABLE db.t (id INT NOT NULL, name VARCHAR(64), "
           "leaf BOOL, PRIMARY KEY (id), INDEX (name))",
           "CREATE INDEX ON db.t (name)",
           "DROP TABLE db.t",
           "INSERT INTO db.t (id, name) "
           "VALUES (1, 'Dame St, ''D2'''), (-2, 'x');",
           "DELETE FROM db.t WHERE name = 'a, b'",
           "SELECT t.id, name FROM db.t JOIN db.u ON t.id = u.id "
           "WHERE t.name = 'x' AND id = 1",
       }) {
    SweepSqlPrefixes(statement);
  }
}

// ------------------------------------------------------------------ wire

std::string AggregateWithRange(const std::string& lo, const std::string& hi) {
  return R"({"op":"aggregate","predicates":[{"kind":"range","lo":)" + lo +
         R"(,"hi":)" + hi + "}]}";
}

// Regression: id-form bounds used to be cast straight from double to DimKey.
// A NaN slipped past the `< 0` check (every comparison with NaN is false)
// and the cast was undefined behaviour; 3.5 silently truncated to 3; 2^32
// and 1e300 wrapped. All of them must be InvalidArgument now.
TEST(WireRangeBoundTest, NonIdNumericBoundsAreRejected) {
  for (const char* bounds : {
           "3.5,4",       // non-integral lo
           "0,6.25",      // non-integral hi
           "-1,4",        // negative
           "0,-0.5",      // negative fraction
           "4294967296,4294967297",  // 2^32: one past DimKey range
           "0,1e300",     // astronomically large
           "1e300,1e301",
       }) {
    std::string lo = bounds, hi = lo.substr(lo.find(',') + 1);
    lo = lo.substr(0, lo.find(','));
    auto parsed = scdwarf::server::ParseRequest(AggregateWithRange(lo, hi));
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << "bounds " << bounds << " -> " << parsed.status();
  }
}

TEST(WireRangeBoundTest, ValidIdBoundsStillParse) {
  for (const char* bounds : {"0,0", "0,4294967295", "7,7"}) {
    std::string lo = bounds, hi = lo.substr(lo.find(',') + 1);
    lo = lo.substr(0, lo.find(','));
    auto parsed = scdwarf::server::ParseRequest(AggregateWithRange(lo, hi));
    EXPECT_TRUE(parsed.ok()) << "bounds " << bounds << " -> "
                             << parsed.status();
  }
}

TEST(WireRangeBoundTest, LoGreaterThanHiIsInvalidAtTheWireLayer) {
  auto id_form = scdwarf::server::ParseRequest(AggregateWithRange("5", "4"));
  EXPECT_TRUE(id_form.status().IsInvalidArgument());
  auto value_form = scdwarf::server::ParseRequest(
      AggregateWithRange("\"2013-07-31\"", "\"2013-07-01\""));
  EXPECT_TRUE(value_form.status().IsInvalidArgument());
}

TEST(WireRangeBoundTest, ValueBoundsParseAndMixedBoundsAreRejected) {
  auto value_form = scdwarf::server::ParseRequest(
      AggregateWithRange("\"2013-07-01\"", "\"2013-07-31\""));
  ASSERT_TRUE(value_form.ok()) << value_form.status();
  ASSERT_EQ(value_form->predicates.size(), 1u);
  EXPECT_TRUE(value_form->predicates[0].value_bounds);
  EXPECT_EQ(value_form->predicates[0].lo_value, "2013-07-01");
  EXPECT_EQ(value_form->predicates[0].hi_value, "2013-07-31");

  for (const char* mixed : {R"("2013-07-01",4)", R"(4,"2013-07-31")"}) {
    std::string lo = mixed, hi = lo.substr(lo.find(',') + 1);
    lo = lo.substr(0, lo.find(','));
    auto parsed = scdwarf::server::ParseRequest(AggregateWithRange(lo, hi));
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << mixed << " -> " << parsed.status();
  }
}

TEST(WireRollupWhereTest, ParsesAndValidates) {
  auto ok = scdwarf::server::ParseRequest(
      R"({"op":"rollup","dims":["Date","Area"],)"
      R"("where":[{"dim":"Date","lo":"2013-07-01","hi":"2013-07-31"}]})");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->rollup_where.size(), 1u);
  EXPECT_EQ(ok->rollup_where[0].dim, "Date");
  EXPECT_EQ(ok->rollup_where[0].lo, "2013-07-01");
  EXPECT_EQ(ok->rollup_where[0].hi, "2013-07-31");

  for (const char* bad : {
           // filter dim not in the grouped dims
           R"({"op":"rollup","dims":["Area"],)"
           R"("where":[{"dim":"Date","lo":"a","hi":"b"}]})",
           // duplicate filter dims
           R"({"op":"rollup","dims":["Date"],)"
           R"("where":[{"dim":"Date","lo":"a","hi":"b"},)"
           R"({"dim":"Date","lo":"c","hi":"d"}]})",
           // lo > hi
           R"({"op":"rollup","dims":["Date"],)"
           R"("where":[{"dim":"Date","lo":"b","hi":"a"}]})",
       }) {
    auto parsed = scdwarf::server::ParseRequest(bad);
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << bad << " -> " << parsed.status();
  }
}

}  // namespace
