// Tests for the fleet soak harness (src/testing/soak.h) and the fault paths
// it leans on: a short deterministic churn slice of the full fleet, replica
// crash-restart with epoch-pinned failover mid-cursor-drain, spool-corruption
// skip-and-count (both through real scdwarf_replica subprocesses and against
// an in-process ReplicaServer), and the TcpServer bind-address knob.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "dwarf/builder.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/replica.h"
#include "replica/snapshot.h"
#include "server/query_server.h"
#include "server/tcp_server.h"
#include "server/wire.h"
#include "testing/soak.h"

namespace scdwarf::soak {
namespace {

namespace fs = std::filesystem;

using json::JsonArray;
using json::JsonValue;

fs::path ScratchDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("scdwarf_soak_test_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small cube over the soak schema, deterministic in \p seed.
dwarf::DwarfCube BuildSoakCube(uint64_t seed, int tuples) {
  Rng rng(seed);
  dwarf::DwarfBuilder builder(SoakSchema());
  for (auto& [keys, measure] : SoakBatch(rng, tuples)) {
    EXPECT_TRUE(builder.AddTuple(keys, measure).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

/// "ping" a port directly; returns (epoch, open sessions).
struct PingInfo {
  bool ok = false;
  uint64_t epoch = 0;
  int64_t sessions = 0;
};

PingInfo PingPort(uint16_t port) {
  PingInfo info;
  client::Endpoint endpoint;
  endpoint.port = port;
  client::CubeClient conn(endpoint);
  auto response = conn.Call("{\"op\":\"ping\"}");
  if (!response.ok()) return info;
  auto root = json::ParseJson(*response);
  if (!root.ok()) return info;
  auto epoch = root->Get("epoch");
  if (!epoch.ok() || !epoch->AsNumber().ok()) return info;
  info.ok = true;
  info.epoch = static_cast<uint64_t>(*epoch->AsNumber());
  if (auto sessions = root->Get("sessions");
      sessions.ok() && sessions->AsNumber().ok()) {
    info.sessions = static_cast<int64_t>(*sessions->AsNumber());
  }
  return info;
}

/// Waits until the replica on \p port reports at least \p epoch.
bool WaitForEpoch(uint16_t port, uint64_t epoch, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    PingInfo info = PingPort(port);
    if (info.ok && info.epoch >= epoch) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

uint64_t GlobalCounterValue(const std::string& name) {
  return metrics::GlobalRegistry().GetCounter(name, {}, "")->value();
}

// --------------------------------------------------------- the churn slice

// The ctest slice of the open-ended soak: full fleet (real replica
// subprocesses, router, publisher), all three fault injectors enabled at a
// cadence that guarantees several firings, differential checking on. Any
// wrong answer fails the run.
TEST(SoakFleetTest, ShortChurnSliceHasZeroMismatches) {
  FleetOptions options;
  options.replicas = 2;
  options.sessions = 2;
  options.publish_interval_ms = 150;
  options.kill_interval_ms = 900;
  options.corrupt_interval_ms = 700;
  options.replica_poll_ms = 50;
  options.drop_every = 48;
  options.seed = 0xc0ffee;
  Fleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());

  Status run = fleet.RunFor(3.5);
  FleetCounters counters = fleet.Counters();
  EXPECT_TRUE(run.ok()) << run;
  EXPECT_EQ(counters.mismatches, 0u);
  EXPECT_GT(counters.requests, 0u);
  EXPECT_GT(counters.cursor_drains, 0u);
  EXPECT_GT(counters.published_epochs, 0u);
  // The injectors actually fired.
  EXPECT_GT(counters.kills, 0u);
  EXPECT_GT(counters.corruptions, 0u);
  EXPECT_EQ(counters.kills, counters.restarts);
  // Every restart rejoined at the newest spooled epoch purely by polling
  // (the soak publisher sends no notifications).
  EXPECT_EQ(counters.catchups, counters.restarts);
  fleet.Stop();
}

// ------------------------------------------------------------ crash-restart

// kill -9 the exact replica a cursor is pinned to, mid-drain, and require
// the router's epoch-pinned failover to keep the pages byte-identical to the
// model; then respawn the replica and require it to fast-forward to the
// newest spooled epoch with no publisher notification.
TEST(SoakFleetTest, KillMidDrainFailsOverAndRestartCatchesUpViaSpool) {
  FleetOptions options;
  options.replicas = 2;
  options.sessions = 0;           // we drive everything by hand
  options.publish_interval_ms = 0;  // no background threads at all
  options.replica_poll_ms = 50;
  options.retain_epochs = 8;
  Fleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fleet.PublishBatch().ok());
  }
  const uint64_t epoch = fleet.published_epoch();
  ASSERT_EQ(epoch, 3u);
  ASSERT_TRUE(WaitForEpoch(fleet.replica_port(0), epoch));
  ASSERT_TRUE(WaitForEpoch(fleet.replica_port(1), epoch));

  // Open a many-paged cursor through the router.
  client::Endpoint router_endpoint;
  router_endpoint.port = fleet.router_port();
  client::CubeClient conn(router_endpoint);
  const std::string query = R"({"op":"rollup","dims":["Date","Station"]})";
  auto opened =
      conn.Call("{\"op\":\"query_open\",\"query\":" + query +
                ",\"page_size\":3}");
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto open_root = json::ParseJson(*opened);
  ASSERT_TRUE(open_root.ok());
  ASSERT_TRUE(*open_root->Get("ok").ValueOrDie().AsBool()) << *opened;
  const uint64_t pinned_epoch = static_cast<uint64_t>(
      *open_root->Get("epoch").ValueOrDie().AsNumber());
  const uint64_t cursor = static_cast<uint64_t>(
      *open_root->Get("cursor").ValueOrDie().AsNumber());
  ASSERT_EQ(pinned_epoch, epoch);

  // The replica holding the session is the one whose ping reports it.
  int pinned = -1;
  for (int i = 0; i < 2; ++i) {
    PingInfo info = PingPort(fleet.replica_port(i));
    ASSERT_TRUE(info.ok);
    if (info.sessions > 0) pinned = i;
  }
  ASSERT_GE(pinned, 0) << "no replica reports the open session";

  // One page before the kill, the rest after — failover happens mid-drain.
  JsonArray rows;
  auto drain_page = [&](bool* done) {
    auto next = conn.Call("{\"op\":\"query_next\",\"cursor\":" +
                          std::to_string(cursor) + "}");
    ASSERT_TRUE(next.ok()) << next.status();
    auto page = json::ParseJson(*next);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(*page->Get("ok").ValueOrDie().AsBool()) << *next;
    // Failover must keep the cursor pinned to the epoch it opened on.
    EXPECT_EQ(static_cast<uint64_t>(
                  *page->Get("epoch").ValueOrDie().AsNumber()),
              pinned_epoch);
    const JsonArray* page_rows =
        page->Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(page_rows, nullptr);
    rows.insert(rows.end(), page_rows->begin(), page_rows->end());
    *done = *page->Get("done").ValueOrDie().AsBool();
  };
  bool done = false;
  drain_page(&done);
  ASSERT_FALSE(done) << "query too small to still be draining at the kill";

  ASSERT_TRUE(fleet.KillReplica(pinned).ok());
  for (int pages = 0; !done && pages < 10000; ++pages) drain_page(&done);
  ASSERT_TRUE(done);

  // Byte-identical to the model pinned to the open epoch.
  auto snapshot = fleet.publisher()->store().SnapshotAt(pinned_epoch);
  ASSERT_TRUE(snapshot.ok());
  auto request = server::ParseRequest(query);
  ASSERT_TRUE(request.ok());
  server::ExecResult direct =
      server::ExecuteRequest(*snapshot->cube, *request);
  ASSERT_TRUE(direct.ok);
  auto direct_rows =
      json::ParseJson(direct.payload_json)->Get("rows").ValueOrDie();
  EXPECT_EQ(json::SerializeJson(JsonValue(std::move(rows))),
            json::SerializeJson(direct_rows));

  // Publish two more epochs while the replica is down, then respawn it: the
  // restart must rejoin at the newest spooled epoch (RestartReplica records
  // the publisher epoch before spawning and only counts a catch-up when the
  // banner proves it) — with no notifier anywhere, only the spool.
  ASSERT_TRUE(fleet.PublishBatch().ok());
  ASSERT_TRUE(fleet.PublishBatch().ok());
  ASSERT_TRUE(fleet.RestartReplica(pinned).ok());
  FleetCounters counters = fleet.Counters();
  EXPECT_EQ(counters.kills, 1u);
  EXPECT_EQ(counters.restarts, 1u);
  EXPECT_EQ(counters.catchups, 1u);
  // The fresh process bootstrapped from the oldest retained file and
  // fast-forwarded through the rest — those loads are counted.
  auto catchup_loads =
      fleet.ReplicaCounter(pinned, "replica_catchup_loads_total");
  ASSERT_TRUE(catchup_loads.ok()) << catchup_loads.status();
  EXPECT_GT(*catchup_loads, 0u);

  // And it keeps following: a post-restart publish arrives by polling.
  ASSERT_TRUE(fleet.PublishBatch().ok());
  EXPECT_TRUE(WaitForEpoch(fleet.replica_port(pinned),
                           fleet.published_epoch()));
  EXPECT_EQ(fleet.Counters().mismatches, 0u);
  fleet.Stop();
}

// --------------------------------------------------------- spool corruption

// Corrupt artifacts dropped into a live fleet's spool: real replica
// subprocesses must skip them (counting replica_snapshot_load_failures_total
// over the wire), keep serving, and load the good bytes once the publisher
// overwrites the slot.
TEST(SoakFleetTest, CorruptSpoolFilesAreSkippedCountedAndOverwritten) {
  FleetOptions options;
  options.replicas = 1;
  options.sessions = 0;
  options.publish_interval_ms = 0;
  options.replica_poll_ms = 50;
  Fleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.PublishBatch().ok());
  ASSERT_TRUE(WaitForEpoch(fleet.replica_port(0), 1));

  // Two corrupt files at the next future epochs: bad magic at 2, a
  // truncated copy at 3. The replica must count both and stay on epoch 1.
  ASSERT_TRUE(fleet.CorruptSpool().ok());
  ASSERT_TRUE(fleet.CorruptSpool().ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  uint64_t failures = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto counted =
        fleet.ReplicaCounter(0, "replica_snapshot_load_failures_total");
    ASSERT_TRUE(counted.ok()) << counted.status();
    failures = *counted;
    if (failures >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_EQ(failures, 2u);
  EXPECT_EQ(PingPort(fleet.replica_port(0)).epoch, 1u);

  // Real publishes atomically overwrite the corrupt slots; the replica's
  // size-keyed retry picks the good bytes up and fast-forwards.
  ASSERT_TRUE(fleet.PublishBatch().ok());
  ASSERT_TRUE(fleet.PublishBatch().ok());
  EXPECT_TRUE(WaitForEpoch(fleet.replica_port(0), 3));
  auto catchup_loads =
      fleet.ReplicaCounter(0, "replica_catchup_loads_total");
  ASSERT_TRUE(catchup_loads.ok());
  EXPECT_GE(*catchup_loads, 2u);
  fleet.Stop();
}

// The same skip-and-count contract, in-process and fully deterministic:
// bootstrap walks past corrupt files to the first loadable one, PollOnce
// skips them on the way forward, a failed file is counted once (not once per
// poll) and retried only when its size changes.
TEST(ReplicaSpoolTest, CorruptFilesSkippedCountedOnceAndRetriedOnNewBytes) {
  fs::path dir = ScratchDir("corrupt_spool");
  dwarf::DwarfCube cube = BuildSoakCube(7, 40);
  auto snapshot_path = [&dir](uint64_t epoch) {
    return (dir / replica::SnapshotFileName(epoch)).string();
  };
  ASSERT_TRUE(replica::WriteCubeSnapshot(cube, 1, snapshot_path(1)).ok());
  WriteFileBytes(snapshot_path(2), "NOTACUBE" + std::string(100, 'x'));
  {
    std::ifstream in(snapshot_path(1), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    WriteFileBytes(snapshot_path(3), bytes.substr(0, bytes.size() / 2));
  }
  ASSERT_TRUE(replica::WriteCubeSnapshot(cube, 4, snapshot_path(4)).ok());

  const uint64_t failures_before =
      GlobalCounterValue("replica_snapshot_load_failures_total");
  replica::ReplicaOptions options;
  options.snapshot_dir = dir.string();
  options.poll_interval_ms = 0;  // tests drive PollOnce directly
  options.bootstrap_wait_ms = 2000;
  options.retain_epochs = 8;
  replica::ReplicaServer server(options);
  ASSERT_TRUE(server.Start().ok());
  // Bootstrapped at 1, fast-forwarded past the two corrupt files to 4.
  EXPECT_EQ(server.epoch(), 4u);
  EXPECT_EQ(GlobalCounterValue("replica_snapshot_load_failures_total"),
            failures_before + 2);

  // Polling again must not re-count the same bad files.
  auto polled = server.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 0u);
  EXPECT_EQ(GlobalCounterValue("replica_snapshot_load_failures_total"),
            failures_before + 2);

  // A new corrupt file at a newer epoch is counted (once), and the replica
  // keeps serving its current epoch.
  WriteFileBytes(snapshot_path(5), "NOTACUBE????");
  polled = server.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 0u);
  EXPECT_EQ(GlobalCounterValue("replica_snapshot_load_failures_total"),
            failures_before + 3);
  EXPECT_EQ(server.epoch(), 4u);

  // Good bytes landing under the failed name (different size) are retried
  // and load — the self-healing path a publisher overwrite exercises.
  ASSERT_TRUE(replica::WriteCubeSnapshot(cube, 5, snapshot_path(5)).ok());
  polled = server.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 1u);
  EXPECT_EQ(server.epoch(), 5u);
  EXPECT_EQ(GlobalCounterValue("replica_snapshot_load_failures_total"),
            failures_before + 3);
  server.Stop();
  fs::remove_all(dir);
}

// A spool holding nothing loadable fails bootstrap with a clear NotFound
// after the wait — it must not crash or spin forever.
TEST(ReplicaSpoolTest, BootstrapFailsCleanlyWhenNothingLoads) {
  fs::path dir = ScratchDir("all_corrupt");
  WriteFileBytes(dir / replica::SnapshotFileName(1), "NOTACUBE");
  replica::ReplicaOptions options;
  options.snapshot_dir = dir.string();
  options.bootstrap_wait_ms = 300;
  replica::ReplicaServer server(options);
  Status status = server.Start();
  EXPECT_TRUE(status.IsNotFound()) << status;
  EXPECT_NE(status.ToString().find("no loadable snapshot"), std::string::npos)
      << status;
  fs::remove_all(dir);
}

// -------------------------------------------------------- bind-address knob

TEST(TcpServerBindTest, DefaultsToLoopback) {
  server::QueryServer query_server(BuildSoakCube(11, 20));
  server::TcpServer tcp(&query_server);
  ASSERT_TRUE(tcp.Start().ok());
  EXPECT_EQ(tcp.bind_address(), "127.0.0.1");
  EXPECT_TRUE(PingPort(static_cast<uint16_t>(tcp.port())).ok);
  tcp.Stop();
}

TEST(TcpServerBindTest, BindsAllInterfacesOnRequest) {
  server::QueryServer query_server(BuildSoakCube(12, 20));
  server::TcpServer tcp(&query_server);
  ASSERT_TRUE(tcp.Start(0, "0.0.0.0").ok());
  EXPECT_EQ(tcp.bind_address(), "0.0.0.0");
  // A wildcard bind is still reachable over loopback.
  EXPECT_TRUE(PingPort(static_cast<uint16_t>(tcp.port())).ok);
  tcp.Stop();
}

TEST(TcpServerBindTest, RejectsGarbageAddressesWithClearError) {
  server::QueryServer query_server(BuildSoakCube(13, 20));
  server::TcpServer tcp(&query_server);
  for (const std::string& bad :
       {std::string("not-an-address"), std::string("256.0.0.1"),
        std::string("10.0.0"), std::string("")}) {
    Status status = tcp.Start(0, bad);
    EXPECT_TRUE(status.IsInvalidArgument()) << bad << ": " << status;
    EXPECT_NE(status.ToString().find("invalid bind address"),
              std::string::npos)
        << status;
  }
  // The failed attempts must not leak a listener: a good Start still works.
  ASSERT_TRUE(tcp.Start(0, "127.0.0.1").ok());
  EXPECT_TRUE(PingPort(static_cast<uint16_t>(tcp.port())).ok);
  tcp.Stop();
}

}  // namespace
}  // namespace scdwarf::soak
