// Thread-count matrix for the parallel construction sweep and the parallel
// store apply: DwarfBuilder::Build with num_threads in {1, 2, 8} must produce
// bit-identical cube arenas (structure, statistics, bytes), and storing a
// cube into a durable nosql database with any thread count must write
// byte-identical segment files — the parallel paths are pure speedups, never
// observable behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dwarf/builder.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/query.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"

namespace scdwarf::dwarf {
namespace {

namespace fs = std::filesystem;

// Enough tuples to clear the builder's parallel-sweep floor (4096), with
// plenty of distinct first-dimension groups to split into subtree tasks.
constexpr int kTuples = 6000;

DwarfBuilder MakeSeededBuilder(BuilderOptions options) {
  CubeSchema schema("sweep",
                    {DimensionSpec("Day"), DimensionSpec("Station"),
                     DimensionSpec("Area")},
                    "m", AggFn::kSum);
  DwarfBuilder builder(schema, options);
  // 97, 89 and 10 are pairwise coprime, so all kTuples key combinations are
  // distinct: duplicate aggregation removes nothing and the sweep sees more
  // than its 4096-tuple parallel floor.
  for (int i = 0; i < kTuples; ++i) {
    Status status = builder.AddTuple({"d" + std::to_string(i % 97),
                                      "s" + std::to_string((i * 7) % 89),
                                      "a" + std::to_string(i % 10)},
                                     static_cast<Measure>(i % 13));
    EXPECT_TRUE(status.ok()) << status;
  }
  return builder;
}

DwarfCube BuildWithThreads(int threads, BuildProfile* profile,
                           BuilderOptions options = {}) {
  options.num_threads = threads;
  DwarfBuilder builder = MakeSeededBuilder(options);
  auto cube = std::move(builder).Build(profile);
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(*cube);
}

void ExpectBitIdentical(const DwarfCube& serial, const DwarfCube& parallel) {
  EXPECT_TRUE(serial.StructurallyEquals(parallel));
  EXPECT_EQ(serial.stats().node_count, parallel.stats().node_count);
  EXPECT_EQ(serial.stats().cell_count, parallel.stats().cell_count);
  EXPECT_EQ(serial.stats().coalesced_all_count,
            parallel.stats().coalesced_all_count);
  EXPECT_EQ(serial.stats().tuple_count, parallel.stats().tuple_count);
  EXPECT_EQ(serial.stats().approx_bytes, parallel.stats().approx_bytes);
  std::vector<std::optional<DimKey>> all(serial.num_dimensions(),
                                         std::nullopt);
  auto lhs = PointQuery(serial, all);
  auto rhs = PointQuery(parallel, all);
  ASSERT_TRUE(lhs.ok()) << lhs.status();
  ASSERT_TRUE(rhs.ok()) << rhs.status();
  EXPECT_EQ(*lhs, *rhs);
}

TEST(ParallelSweepTest, ThreadMatrixProducesBitIdenticalCubes) {
  BuildProfile serial_profile;
  DwarfCube serial = BuildWithThreads(1, &serial_profile);
  EXPECT_EQ(serial_profile.sweep_tasks, 0);  // exact serial path

  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    BuildProfile profile;
    DwarfCube parallel = BuildWithThreads(threads, &profile);
    // The sweep actually split into per-first-dimension subtree tasks.
    EXPECT_GT(profile.sweep_tasks, 1);
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(ParallelSweepTest, AblationsStayBitIdenticalAcrossThreads) {
  BuilderOptions no_coalescing;
  no_coalescing.enable_suffix_coalescing = false;
  BuilderOptions no_memo;
  no_memo.enable_merge_memoization = false;
  for (const BuilderOptions& options : {no_coalescing, no_memo}) {
    SCOPED_TRACE(options.enable_suffix_coalescing ? "no_memo"
                                                  : "no_coalescing");
    DwarfCube serial = BuildWithThreads(1, nullptr, options);
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      DwarfCube parallel = BuildWithThreads(threads, nullptr, options);
      ExpectBitIdentical(serial, parallel);
    }
  }
}

TEST(ParallelSweepTest, SingleValuedLeadingDimensionStillSplits) {
  // Mirrors the bikes schema on a one-month feed: the leading dimension
  // holds a single key, so the sweep must descend to the first varying
  // dimension instead of degenerating to one task.
  CubeSchema schema("monthlike",
                    {DimensionSpec("Month"), DimensionSpec("Day"),
                     DimensionSpec("Station")},
                    "m", AggFn::kSum);
  auto build = [&schema](int threads, BuildProfile* profile) {
    DwarfBuilder builder(schema, {.num_threads = threads});
    for (int i = 0; i < kTuples; ++i) {
      EXPECT_TRUE(builder
                      .AddTuple({"2016-01", "d" + std::to_string(i % 97),
                                 "s" + std::to_string((i * 7) % 89)},
                                static_cast<Measure>(i % 13))
                      .ok());
    }
    auto cube = std::move(builder).Build(profile);
    EXPECT_TRUE(cube.ok()) << cube.status();
    return std::move(*cube);
  };
  DwarfCube serial = build(1, nullptr);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    BuildProfile profile;
    DwarfCube parallel = build(threads, &profile);
    EXPECT_GT(profile.sweep_tasks, 1);  // split below the Month level
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(ParallelSweepTest, SmallInputsFallBackToSerialSweep) {
  CubeSchema schema("small", {DimensionSpec("Day"), DimensionSpec("Station")},
                    "m", AggFn::kSum);
  DwarfBuilder serial_builder(schema, {.num_threads = 1});
  DwarfBuilder parallel_builder(schema, {.num_threads = 8});
  for (int i = 0; i < 50; ++i) {  // far below the 4096-tuple floor
    ASSERT_TRUE(serial_builder
                    .AddTuple({"d" + std::to_string(i % 5),
                               "s" + std::to_string(i % 7)},
                              1)
                    .ok());
    ASSERT_TRUE(parallel_builder
                    .AddTuple({"d" + std::to_string(i % 5),
                               "s" + std::to_string(i % 7)},
                              1)
                    .ok());
  }
  BuildProfile profile;
  auto serial = std::move(serial_builder).Build();
  auto parallel = std::move(parallel_builder).Build(&profile);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(profile.sweep_tasks, 0);
  ExpectBitIdentical(*serial, *parallel);
}

// ------------------------------------------------- durable segment identity

// All segment files under \p dir, keyed by path relative to \p dir.
std::map<std::string, std::string> ReadSegments(const fs::path& dir) {
  std::map<std::string, std::string> segments;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cf") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    segments[fs::relative(entry.path(), dir).string()] = std::move(bytes);
  }
  return segments;
}

TEST(ParallelSweepTest, StoreThreadMatrixWritesByteIdenticalSegments) {
  DwarfCube cube = BuildWithThreads(1, nullptr);

  std::map<std::string, std::string> baseline;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    fs::path dir = fs::temp_directory_path() /
                   ("scdwarf_sweep_store_" + std::to_string(threads));
    fs::remove_all(dir);
    {
      auto db = nosql::Database::Open(dir.string());
      ASSERT_TRUE(db.ok()) << db.status();
      mapper::NoSqlDwarfMapper cube_mapper(&*db, "ks");
      auto id = cube_mapper.Store(cube, {.num_threads = threads});
      ASSERT_TRUE(id.ok()) << id.status();
      // Store() already flushed (through the async flusher when threads>1);
      // the database going out of scope drains any remaining work.
    }
    std::map<std::string, std::string> segments = ReadSegments(dir);
    EXPECT_FALSE(segments.empty());
    if (threads == 1) {
      baseline = std::move(segments);
    } else {
      ASSERT_EQ(segments.size(), baseline.size());
      for (const auto& [name, bytes] : baseline) {
        auto it = segments.find(name);
        ASSERT_NE(it, segments.end()) << "missing segment " << name;
        EXPECT_EQ(it->second, bytes) << "segment bytes differ: " << name;
      }
    }
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace scdwarf::dwarf
