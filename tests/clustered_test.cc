#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "citibikes/bike_feed.h"
#include "clustered/flat_file.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "etl/pipeline.h"

namespace scdwarf::clustered {
namespace {

namespace fs = std::filesystem;

class FlatFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scdwarf_clustered_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static dwarf::DwarfCube BuildGeoCube() {
    dwarf::CubeSchema schema("geo",
                             {dwarf::DimensionSpec("Country"),
                              dwarf::DimensionSpec("City"),
                              dwarf::DimensionSpec("Station")},
                             "bikes");
    dwarf::DwarfBuilder builder(schema);
    EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
    EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Pearse St"}, 5).ok());
    EXPECT_TRUE(builder.AddTuple({"Ireland", "Cork", "Patrick St"}, 2).ok());
    EXPECT_TRUE(builder.AddTuple({"France", "Paris", "Bastille"}, 7).ok());
    return std::move(builder).Build().ValueOrDie();
  }

  static dwarf::DwarfCube BuildBikesCube(uint64_t records = 500) {
    citibikes::BikeFeedConfig config;
    config.target_records = records;
    citibikes::BikeFeedGenerator feed(config);
    auto pipeline = etl::MakeBikesXmlPipeline();
    EXPECT_TRUE(pipeline.ok());
    while (feed.HasNext()) {
      EXPECT_TRUE(pipeline->ConsumeXml(feed.NextXml()).ok());
    }
    return std::move(*pipeline).Finish().ValueOrDie();
  }

  fs::path dir_;
};

TEST_F(FlatFileTest, FullRoundTripBothLayouts) {
  dwarf::DwarfCube cube = BuildGeoCube();
  for (ClusterLayout layout :
       {ClusterLayout::kHierarchical, ClusterLayout::kRecursive}) {
    std::string path = Path(std::string("geo_") + ClusterLayoutName(layout));
    ASSERT_TRUE(WriteDwarfFile(cube, path, layout).ok());
    auto loaded = ReadDwarfFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_TRUE(loaded->StructurallyEquals(cube))
        << "layout " << ClusterLayoutName(layout);
  }
}

TEST_F(FlatFileTest, BikesCubeRoundTrip) {
  dwarf::DwarfCube cube = BuildBikesCube();
  std::string path = Path("bikes.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, path, ClusterLayout::kRecursive).ok());
  auto loaded = ReadDwarfFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->StructurallyEquals(cube));
}

TEST_F(FlatFileTest, EmptyCubeRoundTrip) {
  dwarf::CubeSchema schema("e", {dwarf::DimensionSpec("x")}, "m");
  dwarf::DwarfBuilder builder(schema);
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();
  std::string path = Path("empty.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, path, ClusterLayout::kHierarchical).ok());
  auto loaded = ReadDwarfFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->empty());
}

TEST_F(FlatFileTest, CorruptFileRejected) {
  std::string path = Path("corrupt.dwarf");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dwarf file at all";
  }
  EXPECT_FALSE(ReadDwarfFile(path).ok());
  EXPECT_FALSE(FlatFileCube::Open(path).ok());
  EXPECT_TRUE(ReadDwarfFile(Path("missing.dwarf")).status().IsIoError());
}

TEST_F(FlatFileTest, PointQueriesWithoutFullLoad) {
  dwarf::DwarfCube cube = BuildGeoCube();
  std::string path = Path("geo.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, path, ClusterLayout::kRecursive).ok());
  auto file_cube = FlatFileCube::Open(path);
  ASSERT_TRUE(file_cube.ok()) << file_cube.status();

  EXPECT_EQ(*file_cube->PointQuery({"Ireland", "Dublin", "Fenian St"}), 3);
  EXPECT_EQ(*file_cube->PointQuery({"France", "Paris", "Bastille"}), 7);
  EXPECT_EQ(*file_cube->PointQuery({std::nullopt, std::nullopt, std::nullopt}),
            17);
  EXPECT_EQ(*file_cube->PointQuery({"Ireland", std::nullopt, std::nullopt}),
            10);
  EXPECT_TRUE(file_cube->PointQuery({"Spain", std::nullopt, std::nullopt})
                  .status()
                  .IsNotFound());
  // A point query touches at most one node per level.
  EXPECT_LE(file_cube->stats().node_reads, 5u * 3u);
  EXPECT_LT(file_cube->stats().bytes_read, file_cube->file_size());
}

TEST_F(FlatFileTest, QueriesMatchInMemoryCube) {
  dwarf::DwarfCube cube = BuildBikesCube();
  std::string path = Path("bikes.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, path, ClusterLayout::kHierarchical).ok());
  auto file_cube = FlatFileCube::Open(path);
  ASSERT_TRUE(file_cube.ok());

  // Compare a rollup-like sweep: every station key at dimension 5.
  const dwarf::Dictionary& stations = cube.dictionary(5);
  for (dwarf::DimKey id = 0; id < stations.size(); ++id) {
    std::vector<std::optional<std::string>> query(8, std::nullopt);
    query[5] = stations.DecodeUnchecked(id);
    std::vector<std::optional<dwarf::DimKey>> encoded(8, std::nullopt);
    encoded[5] = id;
    EXPECT_EQ(file_cube->PointQuery(query).ValueOr(-1),
              dwarf::PointQuery(cube, encoded).ValueOr(-1));
  }
}

TEST_F(FlatFileTest, AggregateQueriesMatchInMemory) {
  dwarf::DwarfCube cube = BuildGeoCube();
  std::string path = Path("geo.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, path, ClusterLayout::kRecursive).ok());
  auto file_cube = FlatFileCube::Open(path);
  ASSERT_TRUE(file_cube.ok());

  dwarf::DimKey ireland = *file_cube->EncodeKey(0, "Ireland");
  dwarf::DimKey france = *file_cube->EncodeKey(0, "France");
  std::vector<dwarf::DimPredicate> predicates = {
      dwarf::DimPredicate::Set({ireland, france}),
      dwarf::DimPredicate::All(),
      dwarf::DimPredicate::All(),
  };
  EXPECT_EQ(*file_cube->AggregateQuery(predicates),
            *dwarf::AggregateQuery(cube, predicates));
}

TEST_F(FlatFileTest, LayoutsDifferInSeekBehaviour) {
  dwarf::DwarfCube cube = BuildBikesCube(800);
  std::string hier_path = Path("h.dwarf");
  std::string rec_path = Path("r.dwarf");
  ASSERT_TRUE(WriteDwarfFile(cube, hier_path, ClusterLayout::kHierarchical).ok());
  ASSERT_TRUE(WriteDwarfFile(cube, rec_path, ClusterLayout::kRecursive).ok());

  auto hier = FlatFileCube::Open(hier_path);
  auto rec = FlatFileCube::Open(rec_path);
  ASSERT_TRUE(hier.ok());
  ASSERT_TRUE(rec.ok());
  // Same bytes on disk regardless of ordering (node indexing, varints aside).
  EXPECT_NEAR(static_cast<double>(hier->file_size()),
              static_cast<double>(rec->file_size()),
              0.02 * static_cast<double>(hier->file_size()));

  // Drill one full point path on both; the recursive layout must not seek
  // more than the hierarchical one for point queries (it is the layout
  // optimised for them in [1]).
  std::vector<std::optional<std::string>> path_query(8, std::nullopt);
  path_query[0] = "January";
  ASSERT_TRUE(hier->PointQuery(path_query).ok());
  ASSERT_TRUE(rec->PointQuery(path_query).ok());
  EXPECT_EQ(hier->stats().node_reads, rec->stats().node_reads);
  EXPECT_GT(hier->stats().seek_distance, 0u);
}

}  // namespace
}  // namespace scdwarf::clustered
