#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "nosql/cql.h"
#include "nosql/database.h"

namespace scdwarf::nosql {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- Value

TEST(ValueTest, Accessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(*Value::Int(7).AsInt(), 7);
  EXPECT_EQ(*Value::Text("hi").AsText(), "hi");
  EXPECT_EQ(*Value::Bool(true).AsBool(), true);
  EXPECT_EQ(*Value::IntSet({3, 1, 2, 1}).AsIntSet(),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST(ValueTest, TypeMismatchErrors) {
  EXPECT_TRUE(Value::Int(1).AsText().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Text("x").AsInt().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Null().AsBool().status().IsInvalidArgument());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value::Int(1).MatchesType(DataType::kInt));
  EXPECT_TRUE(Value::Int(1).MatchesType(DataType::kBigint));
  EXPECT_FALSE(Value::Int(1).MatchesType(DataType::kText));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kText));
  EXPECT_TRUE(Value::IntSet({1}).MatchesType(DataType::kIntSet));
  EXPECT_FALSE(Value::Bool(true).MatchesType(DataType::kInt));
}

TEST(ValueTest, CqlLiterals) {
  EXPECT_EQ(Value::Null().ToCqlLiteral(), "null");
  EXPECT_EQ(Value::Int(-3).ToCqlLiteral(), "-3");
  EXPECT_EQ(Value::Text("O'Brien").ToCqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::Bool(false).ToCqlLiteral(), "false");
  EXPECT_EQ(Value::IntSet({2, 1}).ToCqlLiteral(), "{1,2}");
}

TEST(ValueTest, BinaryRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),       Value::Bool(true),      Value::Int(0),
      Value::Int(-999999), Value::Text(""),        Value::Text("Fenian St"),
      Value::IntSet({}),   Value::IntSet({5, 1, 9, 1000000}),
  };
  ByteWriter writer;
  for (const Value& value : values) value.EncodeTo(&writer);
  ByteReader reader(writer.data());
  for (const Value& value : values) {
    auto decoded = Value::DecodeFrom(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ValueTest, OrderingAndEquality) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Text("a") < Value::Text("b"));
  EXPECT_EQ(Value::IntSet({1, 2}), Value::IntSet({2, 1}));
  EXPECT_NE(Value::Int(1), Value::Text("1"));
}

TEST(ValueTest, HashStability) {
  EXPECT_EQ(Value::Text("x").Hash(), Value::Text("x").Hash());
  EXPECT_NE(Value::Text("x").Hash(), Value::Text("y").Hash());
  EXPECT_EQ(Value::IntSet({1, 2}).Hash(), Value::IntSet({2, 1}).Hash());
}

TEST(DataTypeTest, ParseNames) {
  EXPECT_EQ(*ParseDataType("int"), DataType::kInt);
  EXPECT_EQ(*ParseDataType("TEXT"), DataType::kText);
  EXPECT_EQ(*ParseDataType("set<int>"), DataType::kIntSet);
  EXPECT_EQ(*ParseDataType("set < int >"), DataType::kIntSet);
  EXPECT_TRUE(ParseDataType("blob").status().IsParseError());
}

// ---------------------------------------------------------------- schema

TableSchema CellSchema() {
  // The paper's DWARF_Cell column family (Table 1-C).
  TableSchema schema(
      "dwarfks", "dwarf_cell",
      {{"id", DataType::kInt},
       {"key", DataType::kText},
       {"measure", DataType::kInt},
       {"parentnode", DataType::kInt},
       {"pointernode", DataType::kInt},
       {"leaf", DataType::kBool},
       {"schema_id", DataType::kInt},
       {"dimension_table_name", DataType::kText}},
      "id");
  return schema;
}

TEST(TableSchemaTest, Validation) {
  EXPECT_TRUE(CellSchema().Validate().ok());

  TableSchema no_pk("ks", "t", {{"a", DataType::kInt}}, "b");
  EXPECT_TRUE(no_pk.Validate().IsInvalidArgument());

  TableSchema dup("ks", "t",
                  {{"a", DataType::kInt}, {"a", DataType::kText}}, "a");
  EXPECT_TRUE(dup.Validate().IsInvalidArgument());

  TableSchema empty("ks", "t", {}, "a");
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());
}

TEST(TableSchemaTest, SecondaryIndexRules) {
  TableSchema schema = CellSchema();
  EXPECT_TRUE(schema.AddSecondaryIndex("parentnode").ok());
  EXPECT_TRUE(schema.AddSecondaryIndex("parentnode").IsAlreadyExists());
  EXPECT_TRUE(schema.AddSecondaryIndex("id").IsInvalidArgument());
  EXPECT_TRUE(schema.AddSecondaryIndex("nope").IsNotFound());
  EXPECT_EQ(schema.secondary_indexes().size(), 1u);
}

TEST(TableSchemaTest, EncodeDecodeRoundTrip) {
  TableSchema schema = CellSchema();
  ASSERT_TRUE(schema.AddSecondaryIndex("parentnode").ok());
  ByteWriter writer;
  schema.EncodeTo(&writer);
  ByteReader reader(writer.data());
  auto decoded = TableSchema::DecodeFrom(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, schema);
}

// ---------------------------------------------------------------- table

Row CellRow(int64_t id, const std::string& key, int64_t measure,
            int64_t parent, Value pointer, bool leaf) {
  return {Value::Int(id),     Value::Text(key),  Value::Int(measure),
          Value::Int(parent), std::move(pointer), Value::Bool(leaf),
          Value::Int(1),      Value::Text("Station")};
}

TEST(TableTest, InsertAndGet) {
  Table table(CellSchema());
  ASSERT_TRUE(
      table.Insert(CellRow(3, "Fenian St", 3, 3, Value::Null(), true)).ok());
  EXPECT_EQ(table.num_rows(), 1u);
  auto row = table.GetByPk(Value::Int(3));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(**row)[1].AsText(), "Fenian St");
  EXPECT_TRUE(table.GetByPk(Value::Int(4)).status().IsNotFound());
}

TEST(TableTest, InsertIsUpsert) {
  Table table(CellSchema());
  ASSERT_TRUE(table.Insert(CellRow(1, "a", 1, 0, Value::Null(), true)).ok());
  ASSERT_TRUE(table.Insert(CellRow(1, "b", 2, 0, Value::Null(), true)).ok());
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(*(**table.GetByPk(Value::Int(1)))[1].AsText(), "b");
}

TEST(TableTest, RowValidation) {
  Table table(CellSchema());
  EXPECT_TRUE(table.Insert({Value::Int(1)}).IsInvalidArgument());  // arity
  Row bad_type = CellRow(1, "a", 1, 0, Value::Null(), true);
  bad_type[1] = Value::Int(9);  // key must be text
  EXPECT_TRUE(table.Insert(bad_type).IsInvalidArgument());
  Row null_pk = CellRow(1, "a", 1, 0, Value::Null(), true);
  null_pk[0] = Value::Null();
  EXPECT_TRUE(table.Insert(null_pk).IsInvalidArgument());
}

TEST(TableTest, SelectWithoutIndexRequiresFiltering) {
  Table table(CellSchema());
  ASSERT_TRUE(table.Insert(CellRow(1, "a", 1, 7, Value::Null(), true)).ok());
  EXPECT_TRUE(table.SelectEq("parentnode", Value::Int(7))
                  .status()
                  .IsFailedPrecondition());
  auto rows = table.SelectEq("parentnode", Value::Int(7), true);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(TableTest, SecondaryIndexServesSelect) {
  Table table(CellSchema());
  ASSERT_TRUE(table.CreateIndex("parentnode").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert(CellRow(i, "k", i, i % 3, Value::Null(), true)).ok());
  }
  auto rows = table.SelectEq("parentnode", Value::Int(1));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // ids 1, 4, 7
}

TEST(TableTest, IndexBackfillAndUpsertMaintenance) {
  Table table(CellSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table.Insert(CellRow(i, "k", i, 100, Value::Null(), true)).ok());
  }
  ASSERT_TRUE(table.CreateIndex("parentnode").ok());  // backfill
  EXPECT_EQ(table.SelectEq("parentnode", Value::Int(100))->size(), 5u);
  // Upsert moves row 2 to parent 200; index must follow.
  ASSERT_TRUE(table.Insert(CellRow(2, "k", 2, 200, Value::Null(), true)).ok());
  EXPECT_EQ(table.SelectEq("parentnode", Value::Int(100))->size(), 4u);
  EXPECT_EQ(table.SelectEq("parentnode", Value::Int(200))->size(), 1u);
}

TEST(TableTest, SetColumnRoundTrip) {
  TableSchema schema("ks", "dwarf_node",
                     {{"id", DataType::kInt},
                      {"parentids", DataType::kIntSet},
                      {"childrenids", DataType::kIntSet},
                      {"root", DataType::kBool},
                      {"schema_id", DataType::kInt}},
                     "id");
  Table table(schema);
  ASSERT_TRUE(table
                  .Insert({Value::Int(1), Value::IntSet({2, 3}),
                           Value::IntSet({4, 5, 6}), Value::Bool(true),
                           Value::Int(1)})
                  .ok());
  auto row = table.GetByPk(Value::Int(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(**row)[2].AsIntSet(), (std::vector<int64_t>{4, 5, 6}));
}

TEST(TableTest, SerializeDeserializeRoundTrip) {
  Table table(CellSchema());
  ASSERT_TRUE(table.CreateIndex("parentnode").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table
                    .Insert(CellRow(i, "station " + std::to_string(i), i * 2,
                                    i / 5, i % 2 ? Value::Int(i) : Value::Null(),
                                    i % 2 == 0))
                    .ok());
  }
  ByteWriter writer;
  table.SerializeTo(&writer);
  ByteReader reader(writer.data());
  auto loaded = Table::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ((*loaded)->num_rows(), 50u);
  EXPECT_EQ((*loaded)->schema(), table.schema());
  auto row = (*loaded)->GetByPk(Value::Int(49));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(**row)[1].AsText(), "station 49");
  // Index survives reload.
  EXPECT_EQ((*loaded)->SelectEq("parentnode", Value::Int(3))->size(), 5u);
}

TEST(TableTest, SecondaryIndexGrowsSegment) {
  Table plain(CellSchema());
  Table indexed(CellSchema());
  ASSERT_TRUE(indexed.CreateIndex("parentnode").ok());
  ASSERT_TRUE(indexed.CreateIndex("pointernode").ok());
  for (int i = 0; i < 200; ++i) {
    Row row = CellRow(i, "k" + std::to_string(i), i, i / 4, Value::Int(i), false);
    ASSERT_TRUE(plain.Insert(row).ok());
    ASSERT_TRUE(indexed.Insert(row).ok());
  }
  EXPECT_GT(indexed.EstimateSegmentBytes(), plain.EstimateSegmentBytes());
}

// -------------------------------------------------------------- database

class DatabaseDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scdwarf_nosql_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST(DatabaseTest, KeyspaceAndTableLifecycle) {
  Database db;
  EXPECT_TRUE(db.CreateKeyspace("dwarfks").ok());
  EXPECT_TRUE(db.CreateKeyspace("dwarfks").IsAlreadyExists());
  EXPECT_TRUE(db.CreateTable(CellSchema()).ok());
  EXPECT_TRUE(db.CreateTable(CellSchema()).IsAlreadyExists());
  EXPECT_TRUE(db.GetTable("dwarfks", "dwarf_cell").ok());
  EXPECT_TRUE(db.GetTable("nope", "dwarf_cell").status().IsNotFound());
  EXPECT_TRUE(db.DropTable("dwarfks", "dwarf_cell").ok());
  EXPECT_TRUE(db.GetTable("dwarfks", "dwarf_cell").status().IsNotFound());
}

TEST(DatabaseTest, TableInMissingKeyspaceRejected) {
  Database db;
  EXPECT_TRUE(db.CreateTable(CellSchema()).IsNotFound());
}

TEST_F(DatabaseDiskTest, FlushAndReopen) {
  {
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateKeyspace("dwarfks").ok());
    ASSERT_TRUE(db->CreateTable(CellSchema()).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->Insert("dwarfks", "dwarf_cell",
                             CellRow(i, "s" + std::to_string(i), i, 0,
                                     Value::Null(), true))
                      .ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    auto size = db->DiskSizeBytes();
    ASSERT_TRUE(size.ok());
    EXPECT_GT(*size, 0u);
  }
  {
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    auto table = db->GetTable("dwarfks", "dwarf_cell");
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ((*table)->num_rows(), 20u);
    EXPECT_EQ(*(**(*table)->GetByPk(Value::Int(7)))[1].AsText(), "s7");
  }
}

TEST_F(DatabaseDiskTest, CommitLogReplayRecoversUnflushedWrites) {
  {
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateKeyspace("dwarfks").ok());
    ASSERT_TRUE(db->CreateTable(CellSchema()).ok());
    ASSERT_TRUE(db->Flush().ok());  // persist empty table + schema
    // These writes hit the commit log but are never flushed.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Insert("dwarfks", "dwarf_cell",
                             CellRow(i, "unflushed", i, 0, Value::Null(), true))
                      .ok());
    }
    // No Flush: simulate a crash.
  }
  {
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    auto table = db->GetTable("dwarfks", "dwarf_cell");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 5u);
  }
}

TEST_F(DatabaseDiskTest, BulkInsertAppliesAllRows) {
  auto db = Database::Open(dir_.string());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CreateKeyspace("ks").ok());
  ASSERT_TRUE(db->CreateTable(CellSchema()).IsNotFound());  // wrong keyspace
  TableSchema schema = CellSchema();
  ASSERT_TRUE(db->CreateKeyspace("dwarfks").ok());
  ASSERT_TRUE(db->CreateTable(schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(CellRow(i, "bulk", i, 0, Value::Null(), true));
  }
  ASSERT_TRUE(db->BulkInsert("dwarfks", "dwarf_cell", std::move(rows)).ok());
  EXPECT_EQ((*db->GetTable("dwarfks", "dwarf_cell"))->num_rows(), 100u);
}

// ------------------------------------------------------------------- CQL

class CqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ExecuteCql(&db_, "CREATE KEYSPACE dwarfks").ok());
    ASSERT_TRUE(ExecuteCql(&db_,
                           "CREATE TABLE dwarfks.dwarf_cell ("
                           "id int, key text, measure int, parentNode int, "
                           "pointerNode int, leaf boolean, schema_id int, "
                           "dimension_table_name text, "
                           "PRIMARY KEY (id))")
                    .ok());
  }
  Database db_;
};

TEST_F(CqlTest, Figure3Insert) {
  // The exact transformation output of Fig. 3.
  auto result = ExecuteCql(
      &db_,
      "INSERT INTO dwarfks.DWARF_CELL (id,key,measure,parentNode,"
      "pointerNode,leaf, schema_id, dimension_table_name) "
      "VALUES (3,'Fenian St', 3,3,null,true,1,'Station');");
  ASSERT_TRUE(result.ok()) << result.status();
  auto select =
      ExecuteCql(&db_, "SELECT key, measure FROM dwarfks.dwarf_cell WHERE id = 3");
  ASSERT_TRUE(select.ok()) << select.status();
  ASSERT_EQ(select->rows.size(), 1u);
  EXPECT_EQ(*select->rows[0][0].AsText(), "Fenian St");
  EXPECT_EQ(*select->rows[0][1].AsInt(), 3);
}

TEST_F(CqlTest, SelectStar) {
  ASSERT_TRUE(ExecuteCql(&db_,
                         "INSERT INTO dwarfks.dwarf_cell (id, key) "
                         "VALUES (1, 'x')")
                  .ok());
  auto result = ExecuteCql(&db_, "SELECT * FROM dwarfks.dwarf_cell");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 8u);
  EXPECT_EQ(result->rows.size(), 1u);
  // Unset columns are null.
  EXPECT_TRUE(result->rows[0][2].is_null());
}

TEST_F(CqlTest, CreateTableWithSetColumns) {
  auto result = ExecuteCql(&db_,
                           "CREATE TABLE dwarfks.dwarf_node ("
                           "id int, parentIds set<int>, childrenIds set<int>, "
                           "root boolean, schema_id int, PRIMARY KEY (id))");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(ExecuteCql(&db_,
                         "INSERT INTO dwarfks.dwarf_node "
                         "(id, parentIds, childrenIds, root, schema_id) "
                         "VALUES (1, {2,3}, {4,5,6}, true, 1)")
                  .ok());
  auto select = ExecuteCql(
      &db_, "SELECT childrenIds FROM dwarfks.dwarf_node WHERE id = 1");
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(*select->rows[0][0].AsIntSet(), (std::vector<int64_t>{4, 5, 6}));
}

TEST_F(CqlTest, SecondaryIndexViaCql) {
  ASSERT_TRUE(
      ExecuteCql(&db_, "CREATE INDEX ON dwarfks.dwarf_cell (parentNode)").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ExecuteCql(&db_, "INSERT INTO dwarfks.dwarf_cell "
                                 "(id, key, parentNode) VALUES (" +
                                     std::to_string(i) + ", 'k', " +
                                     std::to_string(i % 2) + ")")
                    .ok());
  }
  auto result = ExecuteCql(
      &db_, "SELECT id FROM dwarfks.dwarf_cell WHERE parentNode = 0");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(CqlTest, UnindexedWhereNeedsAllowFiltering) {
  ASSERT_TRUE(ExecuteCql(&db_, "INSERT INTO dwarfks.dwarf_cell (id, key) "
                               "VALUES (1, 'x')")
                  .ok());
  EXPECT_TRUE(
      ExecuteCql(&db_, "SELECT id FROM dwarfks.dwarf_cell WHERE key = 'x'")
          .status()
          .IsFailedPrecondition());
  auto result = ExecuteCql(
      &db_,
      "SELECT id FROM dwarfks.dwarf_cell WHERE key = 'x' ALLOW FILTERING");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(CqlTest, BatchInsert) {
  auto result = ExecuteCql(&db_,
                           "BEGIN BATCH "
                           "INSERT INTO dwarfks.dwarf_cell (id,key) VALUES (1,'a'); "
                           "INSERT INTO dwarfks.dwarf_cell (id,key) VALUES (2,'b'); "
                           "INSERT INTO dwarfks.dwarf_cell (id,key) VALUES (3,'c'); "
                           "APPLY BATCH");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*db_.GetTable("dwarfks", "dwarf_cell"))->num_rows(), 3u);
}

TEST_F(CqlTest, ParseErrors) {
  for (const char* bad : {
           "",
           "SELEC * FROM a.b",
           "CREATE TABLE missing_keyspace (id int, PRIMARY KEY (id))",
           "INSERT INTO dwarfks.dwarf_cell (id) VALUES (1, 2)",
           "SELECT * FROM dwarfks.dwarf_cell WHERE id > 3",
           "CREATE TABLE dwarfks.t (id int)",  // no primary key
           "INSERT INTO dwarfks.dwarf_cell (id) VALUES ('unterminated",
       }) {
    EXPECT_TRUE(ExecuteCql(&db_, bad).status().IsParseError())
        << "input: " << bad << " -> " << ExecuteCql(&db_, bad).status();
  }
}

TEST_F(CqlTest, ExecutionErrors) {
  EXPECT_TRUE(ExecuteCql(&db_, "SELECT * FROM nope.t").status().IsNotFound());
  EXPECT_TRUE(ExecuteCql(&db_, "INSERT INTO dwarfks.dwarf_cell (nope) VALUES (1)")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteCql(&db_, "CREATE KEYSPACE dwarfks").status()
                  .IsAlreadyExists());
}

TEST_F(CqlTest, QueryResultToStringRendersRows) {
  ASSERT_TRUE(ExecuteCql(&db_, "INSERT INTO dwarfks.dwarf_cell (id,key) "
                               "VALUES (1, 'Fenian St')")
                  .ok());
  auto result = ExecuteCql(&db_, "SELECT id, key FROM dwarfks.dwarf_cell");
  ASSERT_TRUE(result.ok());
  std::string rendered = result->ToString();
  EXPECT_NE(rendered.find("Fenian St"), std::string::npos);
  EXPECT_NE(rendered.find("id | key"), std::string::npos);
}

}  // namespace
}  // namespace scdwarf::nosql
