#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace scdwarf {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "Not found: missing thing");
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::IoError("disk on fire");
  Status copy = original;
  EXPECT_TRUE(copy.IsIoError());
  EXPECT_EQ(copy.message(), "disk on fire");
  EXPECT_EQ(copy, original);
}

TEST(StatusTest, WithContextPrepends) {
  Status status = Status::ParseError("bad token").WithContext("line 3");
  EXPECT_EQ(status.message(), "line 3: bad token");
  EXPECT_TRUE(status.IsParseError());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= 9; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

// ---------------------------------------------------------------- Result

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = Half(10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 5);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Half(7);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

Result<int> Quarter(int x) {
  SCD_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(42));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).ValueOrDie();
  EXPECT_EQ(*value, 42);
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nhi"), "hi");
  EXPECT_EQ(StrTrim("hi"), "hi");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("HeLLo"), "hello");
  EXPECT_EQ(AsciiToUpper("HeLLo"), "HELLO");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hel", "hello"));
  EXPECT_TRUE(EndsWith("hello world", "world"));
  EXPECT_FALSE(EndsWith("rld", "world"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13  "), 13);
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("12x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsOutOfRange());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_TRUE(ParseDouble("abc").status().IsParseError());
}

TEST(StringsTest, QuoteSqlStringDoublesQuotes) {
  EXPECT_EQ(QuoteSqlString("Fenian St"), "'Fenian St'");
  EXPECT_EQ(QuoteSqlString("O'Connell"), "'O''Connell'");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(5ull * 1024 * 1024), "5.0 MB");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1181344), "1,181,344");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---------------------------------------------------------------- bytes

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutDouble(2.5);

  ByteReader reader(writer.data());
  EXPECT_EQ(*reader.ReadU8(), 0xAB);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(*reader.ReadDouble(), 2.5);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,        127,        128,
                                  16383,   16384,    (1ull << 32) - 1,
                                  1ull << 32, std::numeric_limits<uint64_t>::max()};
  ByteWriter writer;
  for (uint64_t v : values) writer.PutVarint(v);
  ByteReader reader(writer.data());
  for (uint64_t v : values) EXPECT_EQ(*reader.ReadVarint(), v);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  std::vector<int64_t> values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  ByteWriter writer;
  for (int64_t v : values) writer.PutSignedVarint(v);
  ByteReader reader(writer.data());
  for (int64_t v : values) EXPECT_EQ(*reader.ReadSignedVarint(), v);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter writer;
  writer.PutString("hello");
  writer.PutString("");
  writer.PutString(std::string(1000, 'x'));
  ByteReader reader(writer.data());
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadString(), "");
  EXPECT_EQ(reader.ReadString()->size(), 1000u);
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter writer;
  writer.PutU32(7);
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.ReadU64().status().IsOutOfRange());
}

TEST(BytesTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation bit never cleared
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter writer;
  writer.PutVarint(100);  // claims 100 bytes follow
  writer.PutRaw("abc", 3);
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.ReadString().status().IsOutOfRange());
}

TEST(BytesTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 300ull, 1ull << 40}) {
    ByteWriter writer;
    writer.PutVarint(v);
    EXPECT_EQ(VarintLength(v), writer.size()) << v;
  }
}

TEST(BytesTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  for (int64_t v : {int64_t{0}, int64_t{-5}, int64_t{5}, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

// ---------------------------------------------------------------- hash

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t a = HashCombine(HashString("x"), HashString("y"));
  uint64_t b = HashCombine(HashString("y"), HashString("x"));
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(FixedBucketHistogramTest, EmptyHistogramReportsZero) {
  FixedBucketHistogram hist({1.0, 10.0, 100.0});
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.Quantile(0.0), 0.0);
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_EQ(hist.Quantile(1.0), 0.0);
}

TEST(FixedBucketHistogramTest, ExtremeQuantilesAreExactMinMax) {
  FixedBucketHistogram hist({1.0, 10.0, 100.0});
  hist.Record(3.0);
  hist.Record(7.0);
  hist.Record(42.0);
  EXPECT_EQ(hist.min(), 3.0);
  EXPECT_EQ(hist.max(), 42.0);
  EXPECT_EQ(hist.Quantile(0.0), 3.0);
  EXPECT_EQ(hist.Quantile(1.0), 42.0);
  // Out-of-range q is clamped, not an error.
  EXPECT_EQ(hist.Quantile(-0.5), 3.0);
  EXPECT_EQ(hist.Quantile(2.0), 42.0);
}

TEST(FixedBucketHistogramTest, OverflowBucketRanksReportLargestSample) {
  FixedBucketHistogram hist({1.0, 10.0});
  hist.Record(500.0);
  hist.Record(900.0);
  // Every rank lands in the overflow bucket; the estimate must not fall
  // below the samples it summarizes (the old behavior reported the last
  // finite bound, 10).
  EXPECT_EQ(hist.Quantile(0.5), 900.0);
  auto snapshot = hist.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[2].count, 2u);
  EXPECT_TRUE(std::isinf(snapshot[2].upper_bound));
}

TEST(FixedBucketHistogramTest, FirstBucketInterpolatesFromRecordedMin) {
  FixedBucketHistogram hist({100.0, 1000.0});
  for (int i = 0; i < 10; ++i) hist.Record(50.0);
  // All mass sits in [50, 50]; interpolating from 0 would report values the
  // histogram never saw.
  double median = hist.Quantile(0.5);
  EXPECT_GE(median, 50.0);
  EXPECT_LE(median, 100.0);
  EXPECT_EQ(hist.Quantile(0.0), 50.0);
  EXPECT_EQ(hist.Quantile(1.0), 50.0);
}

TEST(FixedBucketHistogramTest, ValuesBelowFirstBoundStayInObservedRange) {
  FixedBucketHistogram hist({1.0, 10.0});
  hist.Record(-8.0);
  hist.Record(-2.0);
  EXPECT_EQ(hist.min(), -8.0);
  EXPECT_EQ(hist.max(), -2.0);
  double median = hist.Quantile(0.5);
  EXPECT_GE(median, -8.0);
  EXPECT_LE(median, -2.0);
}

TEST(FixedBucketHistogramTest, EmptyBucketsAreSkippedWhenWalkingRanks) {
  FixedBucketHistogram hist({1.0, 10.0, 100.0, 1000.0});
  // Mass only in buckets 0 and 3; buckets 1 and 2 are empty.
  hist.Record(0.5);
  hist.Record(600.0);
  hist.Record(700.0);
  hist.Record(800.0);
  double q75 = hist.Quantile(0.75);
  EXPECT_GE(q75, 100.0);  // must land in the (100, 1000] bucket
  EXPECT_LE(q75, 800.0);
  EXPECT_EQ(hist.Quantile(0.0), 0.5);
}

TEST(FixedBucketHistogramTest, InterpolationStaysInsideOwningBucket) {
  FixedBucketHistogram hist({1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) hist.Record(5.0);  // bucket (1, 10]
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double estimate = hist.Quantile(q);
    EXPECT_GE(estimate, 1.0) << "q=" << q;
    EXPECT_LE(estimate, 5.0) << "q=" << q;  // clamped by recorded max
  }
}

}  // namespace
}  // namespace scdwarf
