#include <gtest/gtest.h>

#include "citibikes/stations.h"
#include "dwarf/builder.h"
#include "mapper/dimension_table.h"
#include "nosql/cql.h"

namespace scdwarf::mapper {
namespace {

DimensionTable StationTable() {
  DimensionTable table("Station", {"area", "capacity", "open"});
  EXPECT_TRUE(table
                  .AddRow("Fenian St", {Value::Text("Docklands"),
                                        Value::Int(30), Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(table
                  .AddRow("Pearse St", {Value::Text("City Centre"),
                                        Value::Int(25), Value::Bool(true)})
                  .ok());
  return table;
}

TEST(DimensionTableTest, RowRules) {
  DimensionTable table = StationTable();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(table.AddRow("Fenian St", {Value::Null(), Value::Null(),
                                         Value::Null()})
                  .IsAlreadyExists());
  EXPECT_TRUE(table.AddRow("Short", {Value::Null()}).IsInvalidArgument());
}

TEST(DimensionTableTest, Lookups) {
  DimensionTable table = StationTable();
  EXPECT_EQ(*table.LookupAttribute("Fenian St", "capacity"), Value::Int(30));
  EXPECT_EQ(*table.LookupAttribute("Pearse St", "area"),
            Value::Text("City Centre"));
  EXPECT_TRUE(table.Lookup("Nowhere").status().IsNotFound());
  EXPECT_TRUE(
      table.LookupAttribute("Fenian St", "nope").status().IsNotFound());
}

TEST(DimensionTableStoreTest, StoreLoadRoundTrip) {
  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  ASSERT_TRUE(store.Store(StationTable()).ok());
  auto loaded = store.Load("Station");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(*loaded->LookupAttribute("Fenian St", "capacity"), Value::Int(30));
  EXPECT_EQ(*loaded->LookupAttribute("Fenian St", "open"), Value::Bool(true));
  EXPECT_TRUE(store.Load("Nothing").status().IsNotFound());
}

TEST(DimensionTableStoreTest, QueryableThroughCql) {
  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  ASSERT_TRUE(store.Store(StationTable()).ok());
  auto result = nosql::ExecuteCql(
      &db, "SELECT area, capacity FROM dwarfks.dim_station "
           "WHERE member = 'Fenian St'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(*result->rows[0][0].AsText(), "Docklands");
  EXPECT_EQ(*result->rows[0][1].AsInt(), 30);
}

TEST(DimensionTableStoreTest, StoreIsUpsert) {
  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  ASSERT_TRUE(store.Store(StationTable()).ok());
  DimensionTable updated("Station", {"area", "capacity", "open"});
  ASSERT_TRUE(updated
                  .AddRow("Fenian St", {Value::Text("Docklands"),
                                        Value::Int(40), Value::Bool(false)})
                  .ok());
  ASSERT_TRUE(store.Store(updated).ok());
  auto loaded = store.Load("Station");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded->LookupAttribute("Fenian St", "capacity"), Value::Int(40));
  // Pearse St survives (upsert, not truncate).
  EXPECT_TRUE(loaded->Lookup("Pearse St").ok());
}

TEST(DimensionTableStoreTest, MixedAttributeTypesRejected) {
  DimensionTable table("Bad", {"attr"});
  ASSERT_TRUE(table.AddRow("a", {Value::Int(1)}).ok());
  ASSERT_TRUE(table.AddRow("b", {Value::Text("x")}).ok());
  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  EXPECT_TRUE(store.Store(table).IsInvalidArgument());
}

TEST(DimensionTableStoreTest, CoverageValidation) {
  // Cube whose Station dimension declares a dimension table.
  dwarf::CubeSchema schema(
      "bikes",
      {dwarf::DimensionSpec("Day"), dwarf::DimensionSpec("Station", "Station")},
      "bikes");
  dwarf::DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"Mon", "Fenian St"}, 1).ok());
  ASSERT_TRUE(builder.AddTuple({"Mon", "Pearse St"}, 2).ok());
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();

  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  ASSERT_TRUE(store.Store(StationTable()).ok());
  EXPECT_TRUE(store.ValidateCoverage(cube, 1).ok());
  // Day declares no dimension table.
  EXPECT_TRUE(store.ValidateCoverage(cube, 0).IsFailedPrecondition());

  // A member outside the table breaks coverage.
  dwarf::DwarfBuilder builder2(schema);
  ASSERT_TRUE(builder2.AddTuple({"Mon", "Ghost Stop"}, 1).ok());
  dwarf::DwarfCube uncovered = std::move(builder2).Build().ValueOrDie();
  EXPECT_TRUE(store.ValidateCoverage(uncovered, 1).IsFailedPrecondition());
}

TEST(DimensionTableStoreTest, StationCatalogAsDimensionTable) {
  // The generator's station catalog becomes the Station dimension table.
  auto stations = citibikes::GenerateStations(12, 2016);
  DimensionTable table("Station", {"area", "capacity"});
  for (const citibikes::Station& station : stations) {
    ASSERT_TRUE(table
                    .AddRow(station.name,
                            {Value::Text(station.area),
                             Value::Int(station.capacity)})
                    .ok());
  }
  nosql::Database db;
  DimensionTableStore store(&db, "dwarfks");
  ASSERT_TRUE(store.Store(table).ok());
  auto loaded = store.Load("Station");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 12u);
  EXPECT_EQ(*loaded->LookupAttribute(stations[3].name, "capacity"),
            Value::Int(stations[3].capacity));
}

}  // namespace
}  // namespace scdwarf::mapper
