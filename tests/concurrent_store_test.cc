/// \file concurrent_store_test.cc
/// \brief Concurrency regressions for the storage engines (ctest label
/// `parallel`, run under TSAN in the verify flow):
///  - DropTable racing mutations and background flushes must not free a
///    table out from under its users (tables are shared_ptr-owned).
///  - Flush() racing writers must not lose acknowledged mutations: the
///    commit/redo log is rotated to a sidecar under the shard locks and
///    only removed once every segment is on disk.
///  - A sidecar left by a flush that never finished (crash simulation) is
///    replayed at reopen, before the live log.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "nosql/database.h"
#include "sql/engine.h"

namespace scdwarf {
namespace {

namespace fs = std::filesystem;

nosql::TableSchema KvSchema(const std::string& name) {
  return nosql::TableSchema("ks", name,
                            {{"id", DataType::kInt},
                             {"payload", DataType::kText}},
                            "id");
}

nosql::Row KvRow(int64_t id) {
  return {Value::Int(id), Value::Text("p" + std::to_string(id))};
}

sql::SqlTableDef SqlKvDef(const std::string& name) {
  return sql::SqlTableDef("db", name,
                          {{"id", DataType::kInt, false},
                           {"payload", DataType::kText}},
                          "id");
}

sql::SqlRow SqlKvRow(int64_t id) {
  return {Value::Int(id), Value::Text("p" + std::to_string(id))};
}

class ConcurrentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scdwarf_concurrent_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// Regression: GetTable used to hand out a raw pointer that DropTable could
// destroy mid-mutation (and mid-background-flush) — a use-after-free that
// TSAN/ASAN flags here. With shared_ptr ownership the mutation lands on the
// orphaned table object and is discarded with it.
TEST_F(ConcurrentStoreTest, NoSqlDropTableDuringMutationsAndFlushesIsSafe) {
  auto db = nosql::Database::Open(dir_.string());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->CreateKeyspace("ks").ok());
  ASSERT_TRUE(db->CreateTable(KvSchema("t")).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t id = 0;
    while (!stop.load()) {
      std::vector<nosql::Row> rows;
      for (int i = 0; i < 8; ++i) rows.push_back(KvRow(id++));
      // NotFound while the table is dropped is fine; crashing is not.
      (void)db->BulkInsert("ks", "t", std::move(rows));
      (void)db->FlushTableAsync("ks", "t");
    }
  });
  for (int round = 0; round < 50; ++round) {
    (void)db->DropTable("ks", "t");
    (void)db->CreateTable(KvSchema("t"));
  }
  stop.store(true);
  writer.join();
  EXPECT_TRUE(db->WaitFlushed().ok());
  // The final incarnation of the table is still usable.
  ASSERT_TRUE(db->GetTable("ks", "t").ok());
  EXPECT_TRUE(db->Insert("ks", "t", KvRow(1 << 20)).ok());
}

// Regression: Flush() used to delete the whole commit log after its barrier,
// dropping records for rows a concurrent writer appended-and-applied after
// their table was serialized — those rows then existed nowhere durable.
// With the rotate-then-delete protocol every acknowledged row survives
// reopen, whichever side of a concurrent flush it landed on.
TEST_F(ConcurrentStoreTest, NoSqlFlushDuringWritesLosesNoAcknowledgedRow) {
  constexpr int64_t kRows = 400;
  {
    auto db = nosql::Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateKeyspace("ks").ok());
    ASSERT_TRUE(db->CreateTable(KvSchema("t")).ok());
    ASSERT_TRUE(db->Flush().ok());  // persist schema before the race starts
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (int64_t id = 0; id < kRows; ++id) {
        ASSERT_TRUE(db->BulkInsert("ks", "t", {KvRow(id)}).ok());
      }
      done.store(true);
    });
    while (!done.load()) {
      ASSERT_TRUE(db->Flush().ok());
    }
    writer.join();
    // Simulated crash: no final Flush — rows not captured by the racing
    // flushes must still be in the live log (or the sidecar of a flush
    // that hadn't deleted it yet).
  }
  auto db = nosql::Database::Open(dir_.string());
  ASSERT_TRUE(db.ok()) << db.status();
  auto table = db->GetTable("ks", "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), static_cast<size_t>(kRows));
}

// Crash between log rotation and sidecar deletion: the sidecar must replay
// at reopen, and must replay before the live log.
TEST_F(ConcurrentStoreTest, NoSqlRotatedCommitLogReplaysOnOpen) {
  {
    auto db = nosql::Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateKeyspace("ks").ok());
    ASSERT_TRUE(db->CreateTable(KvSchema("t")).ok());
    ASSERT_TRUE(db->Flush().ok());  // persist schema; the log only has rows
    for (int64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(db->Insert("ks", "t", KvRow(id)).ok());
    }
  }
  // Simulate a flush that rotated the log and then died.
  fs::rename(dir_ / "commitlog.bin", dir_ / "commitlog.old.bin");
  {
    auto db = nosql::Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ((*db->GetTable("ks", "t"))->num_rows(), 10u);
    // More unflushed writes land in a fresh live log while the sidecar
    // still exists; both must replay, sidecar first.
    for (int64_t id = 10; id < 15; ++id) {
      ASSERT_TRUE(db->Insert("ks", "t", KvRow(id)).ok());
    }
  }
  auto db = nosql::Database::Open(dir_.string());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db->GetTable("ks", "t"))->num_rows(), 15u);
  // A later clean Flush folds both logs away.
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_FALSE(fs::exists(dir_ / "commitlog.bin"));
  EXPECT_FALSE(fs::exists(dir_ / "commitlog.old.bin"));
}

TEST_F(ConcurrentStoreTest, SqlDropTableDuringMutationsIsSafe) {
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->CreateDatabase("db").ok());
  ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t id = 0;
    while (!stop.load()) {
      std::vector<sql::SqlRow> rows;
      for (int i = 0; i < 8; ++i) rows.push_back(SqlKvRow(id++));
      (void)engine->BulkInsert("db", "t", std::move(rows));
    }
  });
  for (int round = 0; round < 50; ++round) {
    (void)engine->DropTable("db", "t");
    (void)engine->CreateTable(SqlKvDef("t"));
  }
  stop.store(true);
  writer.join();
  ASSERT_TRUE(engine->GetTable("db", "t").ok());
  EXPECT_TRUE(engine->Insert("db", "t", SqlKvRow(1 << 20)).ok());
}

TEST_F(ConcurrentStoreTest, SqlFlushDuringWritesLosesNoAcknowledgedRow) {
  constexpr int64_t kRows = 200;  // redo appends fsync: keep the count modest
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());  // persist schema before the race starts
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (int64_t id = 0; id < kRows; ++id) {
        ASSERT_TRUE(engine->BulkInsert("db", "t", {SqlKvRow(id)}).ok());
      }
      done.store(true);
    });
    while (!done.load()) {
      ASSERT_TRUE(engine->Flush().ok());
    }
    writer.join();
  }
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto table = engine->GetTable("db", "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), static_cast<size_t>(kRows));
}

TEST_F(ConcurrentStoreTest, SqlRotatedRedoLogReplaysOnOpen) {
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());  // persist schema; the log only has rows
    for (int64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
  }
  fs::rename(dir_ / "redolog.bin", dir_ / "redolog.old.bin");
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    EXPECT_EQ((*engine->GetTable("db", "t"))->num_rows(), 10u);
    for (int64_t id = 10; id < 15; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
  }
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine->GetTable("db", "t"))->num_rows(), 15u);
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_FALSE(fs::exists(dir_ / "redolog.bin"));
  EXPECT_FALSE(fs::exists(dir_ / "redolog.old.bin"));
}

// --- SQL crash-recovery matrix -------------------------------------------
// The remaining cases walk the redo-log protocol's crash windows one by one,
// mirroring the nosql commit-log coverage: every acknowledged mutation must
// survive reopen, and replay must be idempotent no matter how many times a
// log (or its rotated sidecar) is applied.

// Replay without an intervening Flush: every reopen re-applies the same live
// redo log onto the recovered state. Inserts that already landed must be
// tolerated (AlreadyExists) and deletes of already-deleted keys too
// (NotFound) — row counts must be identical after each reopen.
TEST_F(ConcurrentStoreTest, SqlReplayIsIdempotentAcrossRepeatedReopens) {
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());  // persist schema; the log only has rows
    for (int64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
    for (int64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(engine->Delete("db", "t", Value::Int(id)).ok());
    }
    // Simulated crash: no Flush, the log holds 10 inserts + 3 deletes.
  }
  for (int reopen = 0; reopen < 3; ++reopen) {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto table = engine->GetTable("db", "t");
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ((*table)->num_rows(), 7u) << "reopen " << reopen;
  }
}

// Crash window between tablespace serialization and sidecar deletion: the
// flush wrote every row to its tablespace but died before removing the
// rotated log, so reopen replays mutations that are already durable. The
// duplicate application must be absorbed, not doubled and not fatal.
TEST_F(ConcurrentStoreTest, SqlSidecarReplayOverSerializedTablespaceIsAbsorbed) {
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());
    for (int64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
    ASSERT_TRUE(engine->Delete("db", "t", Value::Int(0)).ok());
    // Keep a copy of the live log, then let the flush complete normally
    // (tablespaces serialized, both logs gone).
    fs::copy_file(dir_ / "redolog.bin", dir_ / "redolog.stash");
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_FALSE(fs::exists(dir_ / "redolog.bin"));
  }
  // Resurrect the pre-flush log as the sidecar a dying flush would leave.
  fs::rename(dir_ / "redolog.stash", dir_ / "redolog.old.bin");
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto table = engine->GetTable("db", "t");
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ((*table)->num_rows(), 9u);  // 10 inserts - 1 delete, no doubles
    // The recovered engine keeps working and the next flush retires the
    // sidecar for good.
    ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(100)).ok());
    ASSERT_TRUE(engine->Flush().ok());
  }
  EXPECT_FALSE(fs::exists(dir_ / "redolog.old.bin"));
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine->GetTable("db", "t"))->num_rows(), 10u);
}

// Kill after rotation with deletes in flight, then keep working across two
// more incarnations: the sidecar (inserts + deletes) and the new live log
// must replay in order, sidecar first, and a clean flush folds both away.
TEST_F(ConcurrentStoreTest, SqlKillAfterRotationWithDeletesReplaysInOrder) {
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());
    for (int64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
    for (int64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(engine->Delete("db", "t", Value::Int(id)).ok());
    }
  }
  // The flush rotated the log and died before serializing anything.
  fs::rename(dir_ / "redolog.bin", dir_ / "redolog.old.bin");
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    EXPECT_EQ((*engine->GetTable("db", "t"))->num_rows(), 7u);
    // More acknowledged work lands in a fresh live log while the sidecar
    // still exists; crash again without flushing.
    ASSERT_TRUE(engine->Delete("db", "t", Value::Int(3)).ok());
    for (int64_t id = 10; id < 13; ++id) {
      ASSERT_TRUE(engine->Insert("db", "t", SqlKvRow(id)).ok());
    }
  }
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine->GetTable("db", "t"))->num_rows(), 9u);  // 7 - 1 + 3
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_FALSE(fs::exists(dir_ / "redolog.bin"));
  EXPECT_FALSE(fs::exists(dir_ / "redolog.old.bin"));
  auto reopened = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened->GetTable("db", "t"))->num_rows(), 9u);
}

// Kill mid-flush after rotation while a writer is still appending: rows
// acknowledged on either side of the rotation must all be present at
// reopen. The kill point is simulated by copying the directory at a moment
// when the sidecar exists (flush still running) and recovering from the
// copy.
TEST_F(ConcurrentStoreTest, SqlConcurrentWriterSurvivesKillAfterRotation) {
  constexpr int64_t kRows = 120;
  {
    auto engine = sql::SqlEngine::Open(dir_.string());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    ASSERT_TRUE(engine->CreateTable(SqlKvDef("t")).ok());
    ASSERT_TRUE(engine->Flush().ok());
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (int64_t id = 0; id < kRows; ++id) {
        ASSERT_TRUE(engine->BulkInsert("db", "t", {SqlKvRow(id)}).ok());
      }
      done.store(true);
    });
    while (!done.load()) {
      ASSERT_TRUE(engine->Flush().ok());
    }
    writer.join();
    // Crash: whatever the racing flushes didn't serialize is in the live
    // log or a sidecar.
  }
  auto engine = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto table = engine->GetTable("db", "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), static_cast<size_t>(kRows));
  // Recovery must also be repeatable before the next flush.
  auto again = sql::SqlEngine::Open(dir_.string());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again->GetTable("db", "t"))->num_rows(),
            static_cast<size_t>(kRows));
}

}  // namespace
}  // namespace scdwarf
