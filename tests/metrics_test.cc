// Tests of the metrics registry and scoped-span tracer (src/common/metrics,
// src/common/trace): series identity and label normalization, the
// cardinality cap and its overflow series, concurrent increments and
// snapshots taken under live writers (the reason this binary carries the
// `parallel` ctest label — run it from a -DSCDWARF_TSAN=ON build), plus the
// JSON exports and trace parent linkage.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "json/json_parser.h"
#include "json/json_value.h"

namespace scdwarf::metrics {
namespace {

TEST(MetricRegistryTest, SameNameAndLabelsYieldOneSeries) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("requests", {{"op", "point"}});
  Counter* b = registry.GetCounter("requests", {{"op", "point"}});
  EXPECT_EQ(a, b);
  // Labels are order-insensitive: sorted before composing the identity.
  Counter* c =
      registry.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
  Counter* d =
      registry.GetCounter("multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(c, d);
  // A different label value is a different series.
  Counter* e = registry.GetCounter("requests", {{"op", "slice"}});
  EXPECT_NE(a, e);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricRegistryTest, CounterGaugeHistogramValues) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("events");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);

  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(10);
  gauge->Add(5);
  gauge->Sub(20);
  EXPECT_EQ(gauge->value(), -5);

  FixedBucketHistogram* hist = registry.GetHistogram("latency_us");
  hist->Record(100);
  hist->Record(200);
  EXPECT_EQ(hist->count(), 2u);

  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "events");
  EXPECT_EQ(snapshot[0].type, MetricType::kCounter);
  EXPECT_EQ(snapshot[0].counter_value, 42u);
  EXPECT_EQ(snapshot[1].gauge_value, -5);
  EXPECT_EQ(snapshot[2].hist_count, 2u);
  EXPECT_GT(snapshot[2].hist_p50, 0);
}

TEST(MetricRegistryTest, TypeConflictReturnsDummyOutsideSnapshot) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("shared_name");
  counter->Increment(7);
  // Re-registering the name as a gauge is a bug in the caller; the registry
  // degrades to a dummy instead of crashing or corrupting the series.
  Gauge* dummy = registry.GetGauge("shared_name");
  dummy->Set(999);
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].type, MetricType::kCounter);
  EXPECT_EQ(snapshot[0].counter_value, 7u);
}

TEST(MetricRegistryTest, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half the increments re-resolve the series to exercise the
      // registration path under contention, half use a cached pointer (the
      // instrumented call sites' pattern).
      Counter* cached = registry.GetCounter("hits", {{"kind", "cached"}});
      for (int i = 0; i < kPerThread; ++i) {
        cached->Increment();
        registry.GetCounter("hits", {{"kind", "looked_up"}})->Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("hits", {{"kind", "cached"}})->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetCounter("hits", {{"kind", "looked_up"}})->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistryTest, LabelCardinalityCapsIntoOverflowSeries) {
  MetricRegistry registry;
  for (size_t i = 0; i < kMaxSeriesPerName + 10; ++i) {
    registry.GetCounter("unbounded", {{"id", std::to_string(i)}})->Increment();
  }
  // Every over-cap label set aliases the single overflow series.
  Counter* over_a =
      registry.GetCounter("unbounded", {{"id", "beyond-the-cap-a"}});
  Counter* over_b =
      registry.GetCounter("unbounded", {{"id", "beyond-the-cap-b"}});
  EXPECT_EQ(over_a, over_b);
  EXPECT_LE(registry.size(), kMaxSeriesPerName + 1);

  size_t overflow_series = 0;
  uint64_t overflow_count = 0;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    EXPECT_EQ(m.name, "unbounded");
    if (m.labels == Labels{{"overflow", "true"}}) {
      ++overflow_series;
      overflow_count = m.counter_value;
    }
  }
  EXPECT_EQ(overflow_series, 1u);
  EXPECT_EQ(overflow_count, 10u);  // the 10 registrations past the cap
}

TEST(MetricRegistryTest, SnapshotIsConsistentUnderLiveWriters) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("written");
  FixedBucketHistogram* hist = registry.GetHistogram("written_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Record(50);
        // Registration of fresh series concurrently with snapshots.
        registry.GetGauge("ephemeral", {{"writer", "x"}})->Set(1);
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    for (const MetricSnapshot& m : registry.Snapshot()) {
      if (m.name == "written") {
        // Counters are monotonic: successive snapshots never go backwards.
        EXPECT_GE(m.counter_value, last);
        last = m.counter_value;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(counter->value(), hist->count());
}

TEST(MetricRegistryTest, SnapshotToJsonIsValidAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("requests", {{"op", "point"}}, "completed \"requests\"")
      ->Increment(3);
  registry.GetGauge("depth", {}, "queue depth")->Set(-2);
  registry.GetHistogram("lat_us")->Record(123);

  std::string text = SnapshotToJson(registry.Snapshot());
  auto parsed = json::ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << text;
  const json::JsonArray* entries = parsed->AsArray();
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->size(), 3u);

  const json::JsonValue& counter = (*entries)[0];
  EXPECT_EQ(counter.Get("name").ValueOrDie().AsString().ValueOrDie(),
            "requests");
  EXPECT_EQ(counter.Get("type").ValueOrDie().AsString().ValueOrDie(),
            "counter");
  EXPECT_EQ(counter.GetPath("labels.op").ValueOrDie().AsString().ValueOrDie(),
            "point");
  EXPECT_EQ(counter.Get("help").ValueOrDie().AsString().ValueOrDie(),
            "completed \"requests\"");
  EXPECT_EQ(counter.Get("value").ValueOrDie().AsNumber().ValueOrDie(), 3.0);

  const json::JsonValue& gauge = (*entries)[1];
  EXPECT_EQ(gauge.Get("type").ValueOrDie().AsString().ValueOrDie(), "gauge");
  EXPECT_EQ(gauge.Get("value").ValueOrDie().AsNumber().ValueOrDie(), -2.0);

  const json::JsonValue& hist = (*entries)[2];
  EXPECT_EQ(hist.Get("type").ValueOrDie().AsString().ValueOrDie(),
            "histogram");
  EXPECT_EQ(hist.Get("count").ValueOrDie().AsNumber().ValueOrDie(), 1.0);
  EXPECT_GT(hist.Get("p50").ValueOrDie().AsNumber().ValueOrDie(), 0.0);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace::Enabled());
  {
    trace::ScopedSpan outer("outer");
    trace::ScopedSpan inner("inner");
  }
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansLinkToTheirParent) {
  trace::SetEnabled(true);
  {
    trace::ScopedSpan outer("outer");
    { trace::ScopedSpan inner("inner"); }
    { trace::ScopedSpan sibling("sibling"); }
  }
  std::vector<trace::Span> spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Spans are recorded at scope *exit*, so children precede their parent.
  const trace::Span& inner = spans[0];
  const trace::Span& sibling = spans[1];
  const trace::Span& outer = spans[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_EQ(inner.thread, outer.thread);
  EXPECT_GE(outer.dur_us, inner.dur_us);
}

TEST_F(TraceTest, SpansFromDifferentThreadsGetDistinctThreadIds) {
  trace::SetEnabled(true);
  { trace::ScopedSpan here("main"); }
  std::thread other([] { trace::ScopedSpan there("worker"); });
  other.join();
  std::vector<trace::Span> spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
  // Both are roots of their own thread's stack.
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, 0u);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  trace::SetEnabled(true);
  const size_t total = trace::kTraceCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    trace::ScopedSpan span("tick");
  }
  EXPECT_EQ(trace::Snapshot().size(), trace::kTraceCapacity);
  EXPECT_EQ(trace::dropped_spans(), 100u);
  trace::Clear();
  EXPECT_TRUE(trace::Snapshot().empty());
  EXPECT_EQ(trace::dropped_spans(), 0u);
}

TEST_F(TraceTest, ExportChromeJsonParses) {
  trace::SetEnabled(true);
  {
    trace::ScopedSpan outer("etl.parse");
    trace::ScopedSpan inner("dwarf.sort");
  }
  std::string text = trace::ExportChromeJson();
  auto parsed = json::ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << text;
  auto events = parsed->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  const json::JsonArray* array = events->AsArray();
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->size(), 2u);
  std::set<std::string> names;
  for (const json::JsonValue& event : *array) {
    names.insert(event.Get("name").ValueOrDie().AsString().ValueOrDie());
    EXPECT_EQ(event.Get("ph").ValueOrDie().AsString().ValueOrDie(), "X");
    EXPECT_GE(event.Get("dur").ValueOrDie().AsNumber().ValueOrDie(), 0.0);
  }
  EXPECT_EQ(names, (std::set<std::string>{"etl.parse", "dwarf.sort"}));
}

}  // namespace
}  // namespace scdwarf::metrics
