#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>

#include "citibikes/bike_feed.h"
#include "etl/pipeline.h"
#include "mapper/id_map.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"
#include "mapper/stored_cube.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "dwarf/update.h"

namespace scdwarf::mapper {
namespace {

namespace fs = std::filesystem;

dwarf::DwarfCube BuildGeoCube() {
  dwarf::CubeSchema schema("geo",
                           {dwarf::DimensionSpec("Country"),
                            dwarf::DimensionSpec("City"),
                            dwarf::DimensionSpec("Station", "Station")},
                           "bikes", dwarf::AggFn::kSum);
  dwarf::DwarfBuilder builder(schema);
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Dublin", "Pearse St"}, 5).ok());
  EXPECT_TRUE(builder.AddTuple({"Ireland", "Cork", "Patrick St"}, 2).ok());
  EXPECT_TRUE(builder.AddTuple({"France", "Paris", "Bastille"}, 7).ok());
  return std::move(builder).Build().ValueOrDie();
}

/// A realistic cube from two days of generated feed (multiple documents).
dwarf::DwarfCube BuildBikesCube(uint64_t records = 600) {
  citibikes::BikeFeedConfig config;
  config.target_records = records;
  config.period_seconds = 2 * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);
  auto pipeline = etl::MakeBikesXmlPipeline();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status();
  while (feed.HasNext()) {
    Status status = pipeline->ConsumeXml(feed.NextXml());
    EXPECT_TRUE(status.ok()) << status;
  }
  auto cube = std::move(*pipeline).Finish();
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).ValueOrDie();
}

// ----------------------------------------------------------------- id map

TEST(IdMapTest, AssignsEveryNodeAndCellOnce) {
  dwarf::DwarfCube cube = BuildGeoCube();
  CubeIdMap ids = AssignIds(cube, 100, 1000);
  EXPECT_EQ(ids.visit_order.size(), cube.num_nodes());
  std::set<int64_t> node_ids;
  std::set<int64_t> cell_ids;
  for (dwarf::NodeId node : ids.visit_order) {
    EXPECT_NE(ids.node_ids[node], CubeIdMap::kInvalidId);
    node_ids.insert(ids.node_ids[node]);
    for (int64_t id : ids.cell_ids[node]) cell_ids.insert(id);
    cell_ids.insert(ids.all_cell_ids[node]);
  }
  EXPECT_EQ(node_ids.size(), cube.num_nodes());
  EXPECT_EQ(*node_ids.begin(), 100);
  EXPECT_EQ(cell_ids.size(),
            cube.stats().cell_count + cube.num_nodes());  // + ALL cells
  EXPECT_EQ(*cell_ids.begin(), 1000);
  // Root gets the first node id (top-down order).
  EXPECT_EQ(ids.node_ids[cube.root()], 100);
}

TEST(IdMapTest, ReservedKeyValidation) {
  dwarf::CubeSchema schema("r", {dwarf::DimensionSpec("k")}, "m");
  dwarf::DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"ALL"}, 1).ok());
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();
  EXPECT_TRUE(ValidateNoReservedKeys(cube).IsInvalidArgument());
  EXPECT_TRUE(ValidateNoReservedKeys(BuildGeoCube()).ok());
}

// ------------------------------------------------------------ meta codec

TEST(CubeMetaTest, RowsRoundTrip) {
  CubeMeta meta = CubeMeta::FromSchema(BuildGeoCube().schema());
  auto rows = MetaToRows(meta);
  auto decoded = MetaFromRows(rows);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cube_name, "geo");
  EXPECT_EQ(decoded->dimension_names,
            (std::vector<std::string>{"Country", "City", "Station"}));
  EXPECT_EQ(decoded->dimension_tables[2], "Station");
  EXPECT_EQ(decoded->measure_name, "bikes");
  EXPECT_EQ(decoded->agg, dwarf::AggFn::kSum);
  auto schema = decoded->ToSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_dimensions(), 3u);
}

TEST(CubeMetaTest, RejectsGapsAndUnknownKinds) {
  EXPECT_TRUE(MetaFromRows({{"dimension", 1, "b"}}).status().IsParseError());
  EXPECT_TRUE(MetaFromRows({{"wat", 0, "x"}}).status().IsParseError());
  EXPECT_TRUE(MetaFromRows({{"name", 0, "x"}}).status().IsNotFound());
}

// -------------------------------------------------- round trips (4 mappers)

void ExpectCubesEquivalent(const dwarf::DwarfCube& original,
                           const dwarf::DwarfCube& rebuilt) {
  ASSERT_EQ(rebuilt.num_dimensions(), original.num_dimensions());
  EXPECT_TRUE(rebuilt.StructurallyEquals(original))
      << "original:\n"
      << (original.num_nodes() < 40 ? original.ToDebugString() : "(large)")
      << "rebuilt:\n"
      << (rebuilt.num_nodes() < 40 ? rebuilt.ToDebugString() : "(large)");
  // Grand total must agree regardless of structure.
  std::vector<std::optional<dwarf::DimKey>> all(original.num_dimensions(),
                                                std::nullopt);
  EXPECT_EQ(dwarf::PointQuery(original, all).ValueOr(-1),
            dwarf::PointQuery(rebuilt, all).ValueOr(-1));
}

TEST(NoSqlDwarfMapperTest, GeoRoundTrip) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::DwarfCube cube = BuildGeoCube();
  NoSqlStoreStats stats;
  auto schema_id = mapper.Store(cube, {}, &stats);
  ASSERT_TRUE(schema_id.ok()) << schema_id.status();
  EXPECT_EQ(stats.node_rows, cube.num_nodes());
  EXPECT_EQ(stats.cell_rows, cube.stats().cell_count + cube.num_nodes());
  auto rebuilt = mapper.Load(*schema_id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(NoSqlDwarfMapperTest, BikesRoundTrip) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::DwarfCube cube = BuildBikesCube();
  auto schema_id = mapper.Store(cube);
  ASSERT_TRUE(schema_id.ok()) << schema_id.status();
  auto rebuilt = mapper.Load(*schema_id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(NoSqlDwarfMapperTest, MultipleCubesShareColumnFamilies) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  auto id1 = mapper.Store(BuildGeoCube());
  auto id2 = mapper.Store(BuildBikesCube(200));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  auto ids = mapper.ListSchemas();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  // Both cubes still load correctly.
  ExpectCubesEquivalent(BuildGeoCube(), *mapper.Load(*id1));
  ExpectCubesEquivalent(BuildBikesCube(200), *mapper.Load(*id2));
}

TEST(NoSqlDwarfMapperTest, CqlStatementModeMatchesBulkMode) {
  nosql::Database bulk_db;
  nosql::Database cql_db;
  dwarf::DwarfCube cube = BuildGeoCube();
  NoSqlDwarfMapper bulk_mapper(&bulk_db, "dwarfks");
  NoSqlDwarfMapper cql_mapper(&cql_db, "dwarfks");
  auto bulk_id = bulk_mapper.Store(cube);
  NoSqlDwarfMapperOptions options;
  options.via_cql_statements = true;
  NoSqlStoreStats stats;
  auto cql_id = cql_mapper.Store(cube, options, &stats);
  ASSERT_TRUE(bulk_id.ok());
  ASSERT_TRUE(cql_id.ok()) << cql_id.status();
  EXPECT_GT(stats.statements, cube.num_nodes());
  ExpectCubesEquivalent(*bulk_mapper.Load(*bulk_id), *cql_mapper.Load(*cql_id));
}

TEST(NoSqlDwarfMapperTest, EmptyCubeRoundTrip) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::CubeSchema schema("e", {dwarf::DimensionSpec("x")}, "m");
  dwarf::DwarfBuilder builder(schema);
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(rebuilt->empty());
}

TEST(NoSqlDwarfMapperTest, IsCubeFlagDistinguishesDerivedCubes) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::DwarfCube cube = BuildGeoCube();
  auto full_id = mapper.Store(cube);
  ASSERT_TRUE(full_id.ok());
  EXPECT_FALSE(*mapper.IsDerivedCube(*full_id));

  // A sub-cube materialized from a query is stored with is_cube = true.
  dwarf::DimKey ireland = cube.dictionary(0).Lookup("Ireland").ValueOrDie();
  auto sub = dwarf::MaterializeSubCube(
      cube, {dwarf::DimPredicate::Point(ireland), dwarf::DimPredicate::All(),
             dwarf::DimPredicate::All()});
  ASSERT_TRUE(sub.ok()) << sub.status();
  NoSqlDwarfMapperOptions options;
  options.is_derived_cube = true;
  auto sub_id = mapper.Store(*sub, options);
  ASSERT_TRUE(sub_id.ok());
  EXPECT_TRUE(*mapper.IsDerivedCube(*sub_id));
  // Both load back correctly and independently.
  ExpectCubesEquivalent(cube, *mapper.Load(*full_id));
  ExpectCubesEquivalent(*sub, *mapper.Load(*sub_id));
}

TEST(NoSqlDwarfMapperTest, LoadUnknownSchemaIsNotFound) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  ASSERT_TRUE(mapper.EnsureSchema().ok());
  EXPECT_TRUE(mapper.Load(42).status().IsNotFound());
}

TEST(NoSqlMinMapperTest, GeoRoundTrip) {
  nosql::Database db;
  NoSqlMinMapper mapper(&db, "minks");
  dwarf::DwarfCube cube = BuildGeoCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(NoSqlMinMapperTest, BikesRoundTrip) {
  nosql::Database db;
  NoSqlMinMapper mapper(&db, "minks");
  dwarf::DwarfCube cube = BuildBikesCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(NoSqlMinMapperTest, SecondaryIndexesCreatedByDefault) {
  nosql::Database db;
  NoSqlMinMapper mapper(&db, "minks");
  ASSERT_TRUE(mapper.EnsureSchema().ok());
  auto table = db.GetTable("minks", NoSqlMinMapper::kCellCf);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().secondary_indexes().size(), 2u);
}

TEST(NoSqlMinMapperTest, IndexAblationSkipsIndexes) {
  nosql::Database db;
  NoSqlMinMapperOptions options;
  options.create_secondary_indexes = false;
  NoSqlMinMapper mapper(&db, "minks", options);
  dwarf::DwarfCube cube = BuildGeoCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto table = db.GetTable("minks", NoSqlMinMapper::kCellCf);
  EXPECT_TRUE((*table)->schema().secondary_indexes().empty());
  // Load still works (falls back to filtering scans).
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(SqlDwarfMapperTest, GeoRoundTrip) {
  sql::SqlEngine engine;
  SqlDwarfMapper mapper(&engine, "dwarfdb");
  dwarf::DwarfCube cube = BuildGeoCube();
  SqlDwarfStoreStats stats;
  auto id = mapper.Store(cube, &stats);
  ASSERT_TRUE(id.ok()) << id.status();
  // Every cell yields a NODE_CHILDREN row; every interior cell a
  // CELL_CHILDREN row — the Fig. 4 row explosion.
  EXPECT_EQ(stats.node_children_rows, stats.cell_rows);
  EXPECT_GT(stats.cell_children_rows, 0u);
  EXPECT_LT(stats.cell_children_rows, stats.cell_rows);
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(SqlDwarfMapperTest, BikesRoundTrip) {
  sql::SqlEngine engine;
  SqlDwarfMapper mapper(&engine, "dwarfdb");
  dwarf::DwarfCube cube = BuildBikesCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(SqlMinMapperTest, GeoRoundTrip) {
  sql::SqlEngine engine;
  SqlMinMapper mapper(&engine, "mindb");
  dwarf::DwarfCube cube = BuildGeoCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(SqlMinMapperTest, BikesRoundTrip) {
  sql::SqlEngine engine;
  SqlMinMapper mapper(&engine, "mindb");
  dwarf::DwarfCube cube = BuildBikesCube();
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok()) << id.status();
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ExpectCubesEquivalent(cube, *rebuilt);
}

TEST(SqlMinMapperTest, MultipleCubesShareTables) {
  sql::SqlEngine engine;
  SqlMinMapper mapper(&engine, "mindb");
  auto id1 = mapper.Store(BuildGeoCube());
  auto id2 = mapper.Store(BuildBikesCube(200));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ExpectCubesEquivalent(BuildGeoCube(), *mapper.Load(*id1));
  ExpectCubesEquivalent(BuildBikesCube(200), *mapper.Load(*id2));
}

// Queries against a rebuilt cube must answer like the original.
TEST(MapperQueryEquivalenceTest, PointQueriesSurviveRoundTrip) {
  nosql::Database db;
  NoSqlDwarfMapper mapper(&db, "dwarfks");
  dwarf::DwarfCube cube = BuildBikesCube(400);
  auto id = mapper.Store(cube);
  ASSERT_TRUE(id.ok());
  auto rebuilt = mapper.Load(*id);
  ASSERT_TRUE(rebuilt.ok());
  // Roll up by weekday on both.
  auto original_rows = dwarf::RollUp(cube, {2});
  auto rebuilt_rows = dwarf::RollUp(*rebuilt, {2});
  ASSERT_TRUE(original_rows.ok());
  ASSERT_TRUE(rebuilt_rows.ok());
  std::map<std::string, dwarf::Measure> original_map;
  for (const auto& row : *original_rows) original_map[row.keys[0]] = row.measure;
  std::map<std::string, dwarf::Measure> rebuilt_map;
  for (const auto& row : *rebuilt_rows) rebuilt_map[row.keys[0]] = row.measure;
  EXPECT_EQ(original_map, rebuilt_map);
}

// Durable round trip through an on-disk NoSQL database.
TEST(MapperDurabilityTest, RoundTripThroughDisk) {
  fs::path dir = fs::temp_directory_path() /
                 ("scdwarf_mapper_disk_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  dwarf::DwarfCube cube = BuildGeoCube();
  int64_t id = -1;
  {
    auto db = nosql::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    NoSqlDwarfMapper mapper(&*db, "dwarfks");
    auto stored = mapper.Store(cube);
    ASSERT_TRUE(stored.ok()) << stored.status();
    id = *stored;
    ASSERT_TRUE(db->Flush().ok());
  }
  {
    auto db = nosql::Database::Open(dir.string());
    ASSERT_TRUE(db.ok()) << db.status();
    NoSqlDwarfMapper mapper(&*db, "dwarfks");
    auto rebuilt = mapper.Load(id);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    ExpectCubesEquivalent(cube, *rebuilt);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace scdwarf::mapper
