#include <gtest/gtest.h>

#include <set>

#include "citibikes/bike_feed.h"
#include "citibikes/datasets.h"
#include "citibikes/other_feeds.h"
#include "json/json_parser.h"
#include "xml/xml_parser.h"

namespace scdwarf::citibikes {
namespace {

TEST(StationsTest, GeneratesRequestedCount) {
  auto stations = GenerateStations(46, 2016);
  ASSERT_EQ(stations.size(), 46u);
  std::set<std::string> names;
  for (const Station& station : stations) {
    EXPECT_FALSE(station.name.empty());
    EXPECT_GE(station.capacity, 20);
    EXPECT_LE(station.capacity, 40);
    names.insert(station.name);
  }
  EXPECT_EQ(names.size(), 46u) << "station names must be distinct";
}

TEST(StationsTest, NamesStayDistinctBeyondPool) {
  auto stations = GenerateStations(150, 1);
  std::set<std::string> names;
  for (const Station& station : stations) names.insert(station.name);
  EXPECT_EQ(names.size(), 150u);
}

TEST(StationsTest, DeterministicForSeed) {
  auto a = GenerateStations(46, 7);
  auto b = GenerateStations(46, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].area, b[i].area);
    EXPECT_EQ(a[i].capacity, b[i].capacity);
  }
  auto c = GenerateStations(46, 8);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].area != c[i].area || a[i].capacity != c[i].capacity) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(BikeFeedTest, EmitsExactTargetRecordCount) {
  BikeFeedConfig config;
  config.num_stations = 10;
  config.target_records = 47;  // forces a truncated final snapshot
  BikeFeedGenerator feed(config);
  uint64_t docs = 0;
  while (feed.HasNext()) {
    feed.NextXml();
    ++docs;
  }
  EXPECT_EQ(feed.records_emitted(), 47u);
  EXPECT_EQ(docs, 5u);  // 4 full snapshots of 10 + one of 7
  EXPECT_GT(feed.bytes_emitted(), 0u);
}

TEST(BikeFeedTest, XmlDocumentsParseAndValidate) {
  BikeFeedConfig config;
  config.num_stations = 5;
  config.target_records = 15;
  BikeFeedGenerator feed(config);
  while (feed.HasNext()) {
    std::string document = feed.NextXml();
    auto parsed = xml::ParseXml(document);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto stations = parsed->root()->FindChildren("station");
    ASSERT_FALSE(stations.empty());
    for (const xml::XmlElement* station : stations) {
      int capacity = std::stoi(station->FindChild("bike_stands")->text());
      int bikes = std::stoi(station->FindChild("available_bikes")->text());
      int stands =
          std::stoi(station->FindChild("available_bike_stands")->text());
      EXPECT_GE(bikes, 0);
      EXPECT_EQ(bikes + stands, capacity);
      std::string status = station->FindChild("status")->text();
      EXPECT_TRUE(status == "OPEN" || status == "CLOSED");
    }
  }
}

TEST(BikeFeedTest, JsonDocumentsParse) {
  BikeFeedConfig config;
  config.num_stations = 5;
  config.target_records = 10;
  BikeFeedGenerator feed(config);
  while (feed.HasNext()) {
    auto parsed = json::ParseJson(feed.NextJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const json::JsonArray* stations = parsed->Get("stations")->AsArray();
    ASSERT_NE(stations, nullptr);
    EXPECT_EQ(stations->size(), 5u);
  }
}

TEST(BikeFeedTest, TimestampsSpanTheConfiguredPeriod) {
  BikeFeedConfig config;
  config.num_stations = 4;
  config.target_records = 400;
  config.period_seconds = 24 * 3600;
  config.start = {2016, 1, 1, 0, 0, 0};
  BikeFeedGenerator feed(config);
  std::string first_doc = feed.NextXml();
  std::string last_doc;
  while (feed.HasNext()) last_doc = feed.NextXml();
  EXPECT_NE(first_doc.find("2016-01-01T00:00:00"), std::string::npos);
  // Final snapshot lands near the end of the day.
  EXPECT_NE(last_doc.find("2016-01-01T23"), std::string::npos) << last_doc;
}

TEST(BikeFeedTest, DeterministicStream) {
  BikeFeedConfig config;
  config.target_records = 100;
  BikeFeedGenerator a(config);
  BikeFeedGenerator b(config);
  while (a.HasNext()) {
    ASSERT_EQ(a.NextXml(), b.NextXml());
  }
}

TEST(DatasetsTest, Table2Presets) {
  const auto& datasets = Table2Datasets();
  ASSERT_EQ(datasets.size(), 5u);
  EXPECT_EQ(datasets[0].name, "Day");
  EXPECT_EQ(datasets[0].tuples, 7358u);
  EXPECT_EQ(datasets[4].name, "SMonth");
  EXPECT_EQ(datasets[4].tuples, 1181344u);
  for (size_t i = 1; i < datasets.size(); ++i) {
    EXPECT_GT(datasets[i].tuples, datasets[i - 1].tuples);
    EXPECT_GT(datasets[i].days, datasets[i - 1].days);
  }
}

TEST(DatasetsTest, FindDataset) {
  EXPECT_TRUE(FindDataset("Week").ok());
  EXPECT_EQ(FindDataset("Week")->tuples, 60102u);
  EXPECT_TRUE(FindDataset("Year").status().IsNotFound());
}

TEST(DatasetsTest, ConfigMatchesSpec) {
  auto dataset = FindDataset("Day");
  ASSERT_TRUE(dataset.ok());
  BikeFeedConfig config = MakeFeedConfig(*dataset);
  EXPECT_EQ(config.target_records, 7358u);
  EXPECT_EQ(config.period_seconds, 24 * 3600);
  BikeFeedGenerator feed(config);
  while (feed.HasNext()) feed.NextXml();
  EXPECT_EQ(feed.records_emitted(), 7358u);
}

TEST(OtherFeedsTest, CarParkXmlParses) {
  CarParkFeedGenerator feed(8, {2016, 1, 1, 9, 0, 0}, 600, 1);
  for (int i = 0; i < 3; ++i) {
    auto parsed = xml::ParseXml(feed.NextXml());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->root()->FindChildren("carpark").size(), 8u);
  }
}

TEST(OtherFeedsTest, AirQualityJsonParses) {
  AirQualityFeedGenerator feed(6, {2016, 1, 1, 8, 0, 0}, 3600, 2);
  auto parsed = json::ParseJson(feed.NextJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::JsonArray* readings = parsed->Get("readings")->AsArray();
  ASSERT_NE(readings, nullptr);
  EXPECT_EQ(readings->size(), 6u);
  EXPECT_EQ(*(*readings)[0].Get("pollutant")->AsString(), "PM2.5");
}

TEST(OtherFeedsTest, AuctionXmlParses) {
  AuctionFeedGenerator feed({2016, 1, 1, 12, 0, 0}, 3);
  auto parsed = xml::ParseXml(feed.NextXml(10));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto lots = parsed->root()->FindChildren("lot");
  ASSERT_EQ(lots.size(), 10u);
  for (const xml::XmlElement* lot : lots) {
    EXPECT_NE(lot->FindAttribute("id"), nullptr);
    EXPECT_GT(std::stoi(lot->FindChild("price")->text()), 0);
  }
}

}  // namespace
}  // namespace scdwarf::citibikes
