// Failure-injection and fuzz-style robustness tests: corrupted store
// contents must produce descriptive errors (never crashes or silent
// misreads), truncated files must be rejected, and the parsers must survive
// arbitrary byte soup.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "clustered/flat_file.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "json/json_parser.h"
#include "mapper/id_map.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/row_batcher.h"
#include "mapper/stored_cube.h"
#include "nosql/cql.h"
#include "nosql/database.h"
#include "sql/sql.h"
#include "xml/xml_parser.h"

namespace scdwarf {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------- stored-cube repair

mapper::CubeMeta GeoMeta() {
  mapper::CubeMeta meta;
  meta.cube_name = "geo";
  meta.dimension_names = {"Country", "City"};
  meta.dimension_tables = {"", ""};
  meta.measure_name = "m";
  meta.agg = dwarf::AggFn::kSum;
  return meta;
}

/// A well-formed 2-dim stored cube:
///   node 0 (root): cell "IE"(1) -> node 1, ALL(2) -> node 1 (coalesced)
///   node 1 (leaf): cell "Dublin"(3) = 5, ALL(4) = 5
mapper::StoredCube ValidStored() {
  mapper::StoredCube stored;
  stored.meta = GeoMeta();
  stored.entry_node_id = 0;
  stored.cells = {
      {1, "IE", 0, 0, 1, false},
      {2, mapper::kAllCellKey, 0, 0, 1, false},
      {3, "Dublin", 5, 1, -1, true},
      {4, mapper::kAllCellKey, 5, 1, -1, true},
  };
  return stored;
}

TEST(StoredCubeRepairTest, ValidInputRebuilds) {
  auto cube = mapper::RebuildCube(ValidStored());
  ASSERT_TRUE(cube.ok()) << cube.status();
  EXPECT_EQ(cube->num_nodes(), 2u);
  EXPECT_EQ(*dwarf::PointQueryByName(*cube, {"IE", "Dublin"}), 5);
}

TEST(StoredCubeRepairTest, DanglingPointerRejected) {
  mapper::StoredCube stored = ValidStored();
  stored.cells[0].pointer_node = 99;
  auto cube = mapper::RebuildCube(stored);
  ASSERT_TRUE(cube.status().IsParseError());
  EXPECT_NE(cube.status().message().find("unknown node"), std::string::npos);
}

TEST(StoredCubeRepairTest, MissingAllCellRejected) {
  mapper::StoredCube stored = ValidStored();
  stored.cells.erase(stored.cells.begin() + 3);  // leaf node loses its ALL
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, DuplicateAllCellRejected) {
  mapper::StoredCube stored = ValidStored();
  stored.cells.push_back({5, mapper::kAllCellKey, 9, 1, -1, true});
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, UnknownEntryNodeRejected) {
  mapper::StoredCube stored = ValidStored();
  stored.entry_node_id = 42;
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, UnreachableNodeRejected) {
  mapper::StoredCube stored = ValidStored();
  // Node 7 exists but nothing points at it.
  stored.cells.push_back({6, "orphan", 1, 7, -1, true});
  stored.cells.push_back({7, mapper::kAllCellKey, 1, 7, -1, true});
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, LevelConflictRejected) {
  mapper::StoredCube stored = ValidStored();
  // Root's ALL cell points at the root itself -> level conflict/cycle.
  stored.cells[1].pointer_node = 0;
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, CellBelowLeafLevelRejected) {
  mapper::StoredCube stored = ValidStored();
  // Leaf cell claims to point to yet another node.
  stored.cells[2].leaf = false;
  stored.cells[2].pointer_node = 2;
  stored.cells.push_back({8, "deep", 3, 2, -1, true});
  stored.cells.push_back({9, mapper::kAllCellKey, 3, 2, -1, true});
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

TEST(StoredCubeRepairTest, InteriorCellWithoutPointerRejected) {
  mapper::StoredCube stored = ValidStored();
  stored.cells[0].pointer_node = -1;
  stored.cells[0].leaf = false;
  EXPECT_TRUE(mapper::RebuildCube(stored).status().IsParseError());
}

// Corruption injected through the actual store: delete a cell row and the
// mapper's Load must fail loudly, not return a wrong cube.
TEST(StoreCorruptionTest, MissingCellRowFailsLoad) {
  nosql::Database db;
  mapper::NoSqlDwarfMapper cube_mapper(&db, "dwarfks");
  dwarf::CubeSchema schema(
      "g", {dwarf::DimensionSpec("a"), dwarf::DimensionSpec("b")}, "m");
  dwarf::DwarfBuilder builder(schema);
  ASSERT_TRUE(builder.AddTuple({"x", "y"}, 1).ok());
  ASSERT_TRUE(builder.AddTuple({"x", "z"}, 2).ok());
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();
  auto id = cube_mapper.Store(cube);
  ASSERT_TRUE(id.ok());

  // Tamper: repoint a cell's parent to a node id that does not exist.
  auto table = db.GetTable("dwarfks", mapper::NoSqlDwarfMapper::kCellCf);
  ASSERT_TRUE(table.ok());
  auto rows = (*table)->ScanAll();
  ASSERT_FALSE(rows.empty());
  nosql::Row tampered = *rows.front();
  tampered[4] = Value::Int(424242);  // pointernode
  tampered[5] = Value::Bool(false);  // leaf
  ASSERT_TRUE((*table)->Insert(tampered).ok());  // upsert by pk

  auto reloaded = cube_mapper.Load(*id);
  EXPECT_FALSE(reloaded.ok());
}

// ------------------------------------------------------ flat-file fuzzing

class FlatFileFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatFileFuzzTest, TruncationsNeverCrash) {
  dwarf::CubeSchema schema(
      "f", {dwarf::DimensionSpec("a"), dwarf::DimensionSpec("b")}, "m");
  dwarf::DwarfBuilder builder(schema);
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(builder
                    .AddTuple({"a" + std::to_string(rng.NextBelow(6)),
                               "b" + std::to_string(rng.NextBelow(6))},
                              1)
                    .ok());
  }
  dwarf::DwarfCube cube = std::move(builder).Build().ValueOrDie();
  fs::path dir = fs::temp_directory_path() /
                 ("scdwarf_fuzz_" + std::to_string(::getpid()) + "_" +
                  std::to_string(GetParam()));
  fs::create_directories(dir);
  std::string path = (dir / "cube.dwarf").string();
  ASSERT_TRUE(clustered::WriteDwarfFile(cube, path,
                                        clustered::ClusterLayout::kRecursive)
                  .ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<char> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();

  // Truncate at 25 random points and at every small prefix; loading must
  // fail cleanly every time.
  std::vector<size_t> cut_points;
  for (size_t i = 0; i < 16 && i < bytes.size(); ++i) cut_points.push_back(i);
  for (int i = 0; i < 25; ++i) {
    cut_points.push_back(rng.NextBelow(bytes.size()));
  }
  std::string truncated_path = (dir / "trunc.dwarf").string();
  for (size_t cut : cut_points) {
    {
      std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    auto loaded = clustered::ReadDwarfFile(truncated_path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }

  // Random single-byte corruptions: must never crash; either a clean error
  // or a cube (some header bytes are genuinely don't-care).
  for (int i = 0; i < 40; ++i) {
    std::vector<char> mutated = bytes;
    size_t index = rng.NextBelow(mutated.size());
    mutated[index] = static_cast<char>(rng.NextU64());
    {
      std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    auto loaded = clustered::ReadDwarfFile(truncated_path);
    (void)loaded;  // outcome may be ok or error; crash/UB is the failure mode
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatFileFuzzTest,
                         ::testing::Values(1001, 2002, 3003));

// --------------------------------------------------------- parser fuzzing

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    size_t length = rng.NextBelow(200);
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    (void)xml::ParseXml(input);
    (void)json::ParseJson(input);
  }
}

TEST_P(ParserFuzzTest, StructuredGarbageNeverCrashesParsers) {
  Rng rng(GetParam() ^ 0xdeadULL);
  const char* fragments[] = {"<",    ">",   "</",  "/>",  "station", "\"",
                             "'",    "&",   ";",   "{",   "}",       "[",
                             "]",    ":",   ",",   "=",   "null",    "1e9",
                             "<!--", "-->", "<![CDATA[", "]]>", "&#x41;",
                             "\\u0041"};
  constexpr size_t kNumFragments = sizeof(fragments) / sizeof(fragments[0]);
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    size_t pieces = rng.NextBelow(30);
    for (size_t i = 0; i < pieces; ++i) {
      input += fragments[rng.NextBelow(kNumFragments)];
    }
    (void)xml::ParseXml(input);
    (void)json::ParseJson(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(11, 22, 33));

// ----------------------------------------------------------- row batcher

TEST(RowBatcherTest, FlushesAtCapacityAndOnDemand) {
  nosql::Database db;
  ASSERT_TRUE(db.CreateKeyspace("ks").ok());
  ASSERT_TRUE(db.CreateTable(nosql::TableSchema(
                    "ks", "t", {{"id", DataType::kInt}}, "id"))
                  .ok());
  mapper::RowBatcher<nosql::Database> batcher(&db, "ks", "t", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(batcher.Add({Value::Int(i)}).ok());
  }
  // Two full batches applied automatically; two rows still staged.
  EXPECT_EQ((*db.GetTable("ks", "t"))->num_rows(), 8u);
  ASSERT_TRUE(batcher.Flush().ok());
  EXPECT_EQ((*db.GetTable("ks", "t"))->num_rows(), 10u);
  EXPECT_EQ(batcher.total(), 10u);
  // Idempotent flush.
  ASSERT_TRUE(batcher.Flush().ok());
  EXPECT_EQ((*db.GetTable("ks", "t"))->num_rows(), 10u);
}

TEST(RowBatcherTest, PropagatesEngineErrors) {
  nosql::Database db;  // table never created
  mapper::RowBatcher<nosql::Database> batcher(&db, "ks", "missing",
                                              /*capacity=*/1);
  EXPECT_TRUE(batcher.Add({Value::Int(1)}).IsNotFound());
}

// --------------------------------------------------- CQL / SQL fuzzing

class QueryLanguageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryLanguageFuzzTest, RandomStatementsNeverCrash) {
  Rng rng(GetParam());
  const char* tokens[] = {"SELECT", "INSERT", "CREATE",  "TABLE", "FROM",
                          "WHERE",  "INTO",   "VALUES",  "(",     ")",
                          ",",      "*",      "=",       "'x'",   "42",
                          "ks.t",   "a",      "PRIMARY", "KEY",   "int",
                          "set",    "<",      ">",       ";",     "{1,2}",
                          "BATCH",  "APPLY",  "BEGIN",   "JOIN",  "ON"};
  constexpr size_t kNumTokens = sizeof(tokens) / sizeof(tokens[0]);
  nosql::Database db;
  sql::SqlEngine engine;
  for (int trial = 0; trial < 500; ++trial) {
    std::string statement;
    size_t pieces = 1 + rng.NextBelow(18);
    for (size_t i = 0; i < pieces; ++i) {
      statement += tokens[rng.NextBelow(kNumTokens)];
      statement += " ";
    }
    (void)nosql::ExecuteCql(&db, statement);
    (void)sql::ExecuteSql(&engine, statement);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryLanguageFuzzTest,
                         ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace scdwarf
