// End-to-end integration across every module: generated feeds flow through
// the ETL pipeline into a cube, through all four storage mappings and the
// flat-file baseline, and every stored representation answers queries
// identically. This is the whole §1-§4 system exercised in one pass.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <optional>

#include "citibikes/bike_feed.h"
#include "citibikes/datasets.h"
#include "clustered/flat_file.h"
#include "dwarf/hierarchy.h"
#include "dwarf/query.h"
#include "dwarf/update.h"
#include "etl/pipeline.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"
#include "nosql/cql.h"
#include "sql/sql.h"

namespace scdwarf {
namespace {

namespace fs = std::filesystem;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    citibikes::BikeFeedConfig config;
    config.target_records = 3000;
    config.period_seconds = 3 * 24 * 3600;
    citibikes::BikeFeedGenerator feed(config);
    auto pipeline = etl::MakeBikesXmlPipeline();
    ASSERT_TRUE(pipeline.ok());
    while (feed.HasNext()) {
      ASSERT_TRUE(pipeline->ConsumeXml(feed.NextXml()).ok());
    }
    auto cube = std::move(*pipeline).Finish();
    ASSERT_TRUE(cube.ok()) << cube.status();
    cube_ = new dwarf::DwarfCube(std::move(cube).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete cube_;
    cube_ = nullptr;
  }

  /// Compares a handful of representative queries between two cubes.
  static void ExpectQueryEquivalent(const dwarf::DwarfCube& a,
                                    const dwarf::DwarfCube& b) {
    std::vector<std::optional<std::string>> grand(8, std::nullopt);
    EXPECT_EQ(dwarf::PointQueryByName(a, grand).ValueOr(-1),
              dwarf::PointQueryByName(b, grand).ValueOr(-1));
    for (const char* day : {"Friday", "Saturday", "Sunday"}) {
      std::vector<std::optional<std::string>> query(8, std::nullopt);
      query[2] = day;
      EXPECT_EQ(dwarf::PointQueryByName(a, query).ValueOr(-1),
                dwarf::PointQueryByName(b, query).ValueOr(-1))
          << day;
    }
    auto rows_a = dwarf::RollUp(a, {4});
    auto rows_b = dwarf::RollUp(b, {4});
    ASSERT_TRUE(rows_a.ok());
    ASSERT_TRUE(rows_b.ok());
    std::map<std::string, dwarf::Measure> map_a, map_b;
    for (const auto& row : *rows_a) map_a[row.keys[0]] = row.measure;
    for (const auto& row : *rows_b) map_b[row.keys[0]] = row.measure;
    EXPECT_EQ(map_a, map_b);
  }

  static dwarf::DwarfCube* cube_;
};

dwarf::DwarfCube* IntegrationTest::cube_ = nullptr;

TEST_F(IntegrationTest, CubeHasExpectedShape) {
  EXPECT_EQ(cube_->num_dimensions(), 8u);
  EXPECT_EQ(cube_->stats().source_tuple_count, 3000u);
  EXPECT_GT(cube_->stats().coalesced_all_count, 0u);
}

TEST_F(IntegrationTest, AllFourStoresRoundTripAndAgree) {
  // NoSQL-DWARF.
  nosql::Database nosql_dwarf_db;
  mapper::NoSqlDwarfMapper nosql_dwarf(&nosql_dwarf_db, "dwarfks");
  auto id1 = nosql_dwarf.Store(*cube_);
  ASSERT_TRUE(id1.ok()) << id1.status();
  auto cube1 = nosql_dwarf.Load(*id1);
  ASSERT_TRUE(cube1.ok()) << cube1.status();
  EXPECT_TRUE(cube1->StructurallyEquals(*cube_));
  ExpectQueryEquivalent(*cube_, *cube1);

  // NoSQL-Min.
  nosql::Database nosql_min_db;
  mapper::NoSqlMinMapper nosql_min(&nosql_min_db, "minks");
  auto id2 = nosql_min.Store(*cube_);
  ASSERT_TRUE(id2.ok()) << id2.status();
  auto cube2 = nosql_min.Load(*id2);
  ASSERT_TRUE(cube2.ok()) << cube2.status();
  EXPECT_TRUE(cube2->StructurallyEquals(*cube_));

  // MySQL-DWARF.
  sql::SqlEngine sql_dwarf_engine;
  mapper::SqlDwarfMapper sql_dwarf(&sql_dwarf_engine, "dwarfdb");
  auto id3 = sql_dwarf.Store(*cube_);
  ASSERT_TRUE(id3.ok()) << id3.status();
  auto cube3 = sql_dwarf.Load(*id3);
  ASSERT_TRUE(cube3.ok()) << cube3.status();
  EXPECT_TRUE(cube3->StructurallyEquals(*cube_));

  // MySQL-Min.
  sql::SqlEngine sql_min_engine;
  mapper::SqlMinMapper sql_min(&sql_min_engine, "mindb");
  auto id4 = sql_min.Store(*cube_);
  ASSERT_TRUE(id4.ok()) << id4.status();
  auto cube4 = sql_min.Load(*id4);
  ASSERT_TRUE(cube4.ok()) << cube4.status();
  EXPECT_TRUE(cube4->StructurallyEquals(*cube_));

  // All rebuilt cubes agree with each other.
  ExpectQueryEquivalent(*cube1, *cube2);
  ExpectQueryEquivalent(*cube2, *cube3);
  ExpectQueryEquivalent(*cube3, *cube4);
}

TEST_F(IntegrationTest, StoreSizeRelationsOnThisCube) {
  // The Table-4 relations hold even at this small scale when measured via
  // serialized bytes (memory mode).
  nosql::Database nosql_dwarf_db;
  mapper::NoSqlDwarfMapper nosql_dwarf(&nosql_dwarf_db, "dwarfks");
  ASSERT_TRUE(nosql_dwarf.Store(*cube_).ok());
  nosql::Database nosql_min_db;
  mapper::NoSqlMinMapper nosql_min(&nosql_min_db, "minks");
  ASSERT_TRUE(nosql_min.Store(*cube_).ok());
  sql::SqlEngine sql_dwarf_engine;
  mapper::SqlDwarfMapper sql_dwarf(&sql_dwarf_engine, "dwarfdb");
  ASSERT_TRUE(sql_dwarf.Store(*cube_).ok());
  sql::SqlEngine sql_min_engine;
  mapper::SqlMinMapper sql_min(&sql_min_engine, "mindb");
  ASSERT_TRUE(sql_min.Store(*cube_).ok());

  uint64_t mysql_dwarf_bytes = sql_dwarf_engine.EstimateBytes();
  uint64_t mysql_min_bytes = sql_min_engine.EstimateBytes();
  uint64_t nosql_dwarf_bytes = nosql_dwarf_db.EstimateBytes();
  uint64_t nosql_min_bytes = nosql_min_db.EstimateBytes();
  EXPECT_GT(mysql_dwarf_bytes, mysql_min_bytes);
  EXPECT_GT(mysql_dwarf_bytes, nosql_dwarf_bytes);
  EXPECT_GT(mysql_dwarf_bytes, nosql_min_bytes);
  EXPECT_GT(nosql_min_bytes, nosql_dwarf_bytes);
}

TEST_F(IntegrationTest, FlatFileAgreesWithStores) {
  fs::path path = fs::temp_directory_path() /
                  ("scdwarf_integration_" + std::to_string(::getpid()) +
                   ".dwarf");
  ASSERT_TRUE(clustered::WriteDwarfFile(*cube_, path.string(),
                                        clustered::ClusterLayout::kRecursive)
                  .ok());
  auto file_cube = clustered::FlatFileCube::Open(path.string());
  ASSERT_TRUE(file_cube.ok());
  std::vector<std::optional<std::string>> grand(8, std::nullopt);
  EXPECT_EQ(*file_cube->PointQuery(grand),
            *dwarf::PointQueryByName(*cube_, grand));
  auto loaded = clustered::ReadDwarfFile(path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->StructurallyEquals(*cube_));
  fs::remove(path);
}

TEST_F(IntegrationTest, CqlAndSqlLayersSeeTheStoredCube) {
  nosql::Database db;
  mapper::NoSqlDwarfMapper nosql_mapper(&db, "dwarfks");
  auto id = nosql_mapper.Store(*cube_);
  ASSERT_TRUE(id.ok());
  // Count schema rows through CQL.
  auto result = nosql::ExecuteCql(
      &db, "SELECT node_count, cell_count FROM dwarfks.dwarf_schema WHERE id = " +
               std::to_string(*id));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(*result->rows[0][0].AsInt(),
            static_cast<int64_t>(cube_->num_nodes()));

  sql::SqlEngine engine;
  mapper::SqlDwarfMapper sql_mapper(&engine, "dwarfdb");
  auto sql_id = sql_mapper.Store(*cube_);
  ASSERT_TRUE(sql_id.ok());
  auto sql_result = sql::ExecuteSql(
      &engine, "SELECT node_count FROM dwarfdb.dwarf_cube WHERE id = " +
                   std::to_string(*sql_id));
  ASSERT_TRUE(sql_result.ok()) << sql_result.status();
  ASSERT_EQ(sql_result->rows.size(), 1u);
  EXPECT_EQ(*sql_result->rows[0][0].AsInt(),
            static_cast<int64_t>(cube_->num_nodes()));
}

TEST_F(IntegrationTest, EmittedDdlParsesBack) {
  // Every DDL statement the schema renderers emit must parse through the
  // corresponding language layer and produce the same table shape.
  nosql::Database source_db;
  mapper::NoSqlDwarfMapper source_mapper(&source_db, "dwarfks");
  ASSERT_TRUE(source_mapper.EnsureSchema().ok());

  nosql::Database fresh;
  ASSERT_TRUE(nosql::ExecuteCql(&fresh, "CREATE KEYSPACE dwarfks").ok());
  auto cql_tables = source_db.ListTables("dwarfks");
  ASSERT_TRUE(cql_tables.ok());
  for (const std::string& name : *cql_tables) {
    auto table = source_db.GetTable("dwarfks", name);
    ASSERT_TRUE(table.ok());
    auto created = nosql::ExecuteCql(&fresh, (*table)->schema().ToCqlDdl());
    ASSERT_TRUE(created.ok()) << (*table)->schema().ToCqlDdl() << "\n"
                              << created.status();
    for (const std::string& index : (*table)->schema().ToCreateIndexDdl()) {
      ASSERT_TRUE(nosql::ExecuteCql(&fresh, index).ok()) << index;
    }
    auto fresh_table = fresh.GetTable("dwarfks", name);
    ASSERT_TRUE(fresh_table.ok());
    EXPECT_EQ((*fresh_table)->schema(), (*table)->schema());
  }

  sql::SqlEngine source_engine;
  mapper::SqlDwarfMapper sql_mapper(&source_engine, "dwarfdb");
  ASSERT_TRUE(sql_mapper.EnsureSchema().ok());
  sql::SqlEngine fresh_engine;
  ASSERT_TRUE(sql::ExecuteSql(&fresh_engine, "CREATE DATABASE dwarfdb").ok());
  auto sql_tables = source_engine.ListTables("dwarfdb");
  ASSERT_TRUE(sql_tables.ok());
  for (const std::string& name : *sql_tables) {
    auto table = source_engine.GetTable("dwarfdb", name);
    ASSERT_TRUE(table.ok());
    auto created = sql::ExecuteSql(&fresh_engine, (*table)->def().ToSqlDdl());
    ASSERT_TRUE(created.ok()) << (*table)->def().ToSqlDdl() << "\n"
                              << created.status();
  }
}

TEST_F(IntegrationTest, UpdateThenStoreThenHierarchyQuery) {
  // Merge a batch into the cube, persist it, rebuild, and answer a
  // hierarchical query on the rebuilt cube — §6 + §7 combined.
  dwarf::DwarfCube working = *cube_;
  auto base_total = dwarf::PointQueryByName(
      working, std::vector<std::optional<std::string>>(8, std::nullopt));
  ASSERT_TRUE(base_total.ok());

  auto tuples = dwarf::ExtractBaseTuples(working);
  ASSERT_TRUE(tuples.ok());
  // New tuple reusing an existing coordinate: grand total changes by its
  // measure.
  std::vector<std::string> coordinate = (*tuples)[0].keys;
  auto updated = dwarf::MergeTuples(std::move(working), {{coordinate, 100}});
  ASSERT_TRUE(updated.ok()) << updated.status();
  auto new_total = dwarf::PointQueryByName(
      *updated, std::vector<std::optional<std::string>>(8, std::nullopt));
  ASSERT_TRUE(new_total.ok());
  EXPECT_EQ(*new_total, *base_total + 100);

  nosql::Database db;
  mapper::NoSqlDwarfMapper store(&db, "dwarfks");
  auto id = store.Store(*updated);
  ASSERT_TRUE(id.ok());
  auto reloaded = store.Load(*id);
  ASSERT_TRUE(reloaded.ok());

  // Hierarchy over the Area dimension (level 4): City > Area.
  auto hierarchy = dwarf::Hierarchy::Create("geo", {"City", "Area"});
  ASSERT_TRUE(hierarchy.ok());
  const dwarf::Dictionary& areas = reloaded->dictionary(4);
  for (dwarf::DimKey id2 = 0; id2 < areas.size(); ++id2) {
    ASSERT_TRUE(
        hierarchy->AddEdge(1, areas.DecodeUnchecked(id2), "Dublin").ok());
  }
  auto dublin = dwarf::HierarchicalQuery(*reloaded, 4, *hierarchy, 0, "Dublin");
  ASSERT_TRUE(dublin.ok()) << dublin.status();
  EXPECT_EQ(*dublin, *new_total);  // every area is in Dublin
}

}  // namespace
}  // namespace scdwarf
