// Tests of the concurrent cube query service (src/server): wire parsing and
// error mapping, epoch-snapshot consistency under a live updater, result-cache
// hits/invalidation, deterministic overload rejection, worker-pool sizing and
// the TCP front-end. The concurrency tests are the reason this binary carries
// the `server` ctest label: run them from a -DSCDWARF_TSAN=ON build to check
// the locking.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/parallel.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"
#include "json/json_parser.h"
#include "server/binwire.h"
#include "server/query_server.h"
#include "server/tcp_server.h"
#include "server/wire.h"

namespace scdwarf::server {
namespace {

using dwarf::DwarfCube;
using dwarf::Measure;

dwarf::CubeSchema BikesSchema() {
  return dwarf::CubeSchema(
      "bikes",
      {dwarf::DimensionSpec("Day"), dwarf::DimensionSpec("Station"),
       dwarf::DimensionSpec("Area")},
      "bikes", dwarf::AggFn::kSum);
}

using Tuple = std::pair<std::vector<std::string>, Measure>;

const std::vector<Tuple>& SeedTuples() {
  static const auto* tuples = new std::vector<Tuple>{
      {{"Mon", "Fenian St", "D2"}, 3},  {{"Mon", "Pearse St", "D2"}, 5},
      {{"Tue", "Fenian St", "D2"}, 4},  {{"Tue", "Custom House", "D1"}, 7},
      {{"Wed", "Pearse St", "D2"}, 2},  {{"Wed", "Custom House", "D1"}, 1},
      {{"Thu", "Fenian St", "D2"}, 6},  {{"Fri", "Heuston", "D8"}, 9},
  };
  return *tuples;
}

DwarfCube BuildSeedCube() {
  dwarf::DwarfBuilder builder(BikesSchema());
  for (const auto& [keys, measure] : SeedTuples()) {
    EXPECT_TRUE(builder.AddTuple(keys, measure).ok());
  }
  return std::move(builder).Build().ValueOrDie();
}

// Parses a response payload and returns (ok, epoch, cached) plus the value.
struct ParsedResponse {
  bool ok = false;
  uint64_t epoch = 0;
  bool cached = false;
  json::JsonValue value;
};

ParsedResponse ParseResponse(const std::string& payload) {
  ParsedResponse parsed;
  auto value = json::ParseJson(payload);
  EXPECT_TRUE(value.ok()) << payload;
  if (!value.ok()) return parsed;
  parsed.value = *value;
  parsed.ok = value->Get("ok").ValueOrDie().AsBool().ValueOrDie();
  parsed.epoch = static_cast<uint64_t>(
      value->Get("epoch").ValueOrDie().AsNumber().ValueOrDie());
  parsed.cached = value->Get("cached").ValueOrDie().AsBool().ValueOrDie();
  return parsed;
}

std::string ErrorCode(const ParsedResponse& parsed) {
  auto code = parsed.value.Get("code");
  return code.ok() ? code->AsString().ValueOrDie() : std::string();
}

TEST(WireTest, RejectsMalformedRequests) {
  QueryServer server{BuildSeedCube()};
  ServerHandle handle(&server);

  struct Case {
    const char* request;
    const char* want_code;
  };
  const Case cases[] = {
      {"{not json", "parse_error"},
      {"[1,2,3]", "invalid_argument"},
      {R"({"op":"transmogrify"})", "invalid_argument"},
      {R"({"op":"point"})", "invalid_argument"},
      {R"({"op":"point","keys":["Mon"]})", "invalid_argument"},  // arity 1 != 3
      {R"({"op":"slice","dim":"NoSuchDim","key":"x"})", "not_found"},
      {R"({"op":"rollup","dims":["Day","NoSuchDim"]})", "not_found"},
      {R"({"op":"aggregate","predicates":[{"kind":"all"}]})",
       "invalid_argument"},  // predicate arity 1 != 3
  };
  for (const Case& c : cases) {
    ParsedResponse parsed = ParseResponse(handle.Call(c.request));
    EXPECT_FALSE(parsed.ok) << c.request;
    EXPECT_EQ(ErrorCode(parsed), c.want_code) << c.request;
  }
}

TEST(WireTest, UnknownKeysReportNotFound) {
  QueryServer server{BuildSeedCube()};
  ServerHandle handle(&server);
  ParsedResponse parsed = ParseResponse(
      handle.Call(R"({"op":"point","keys":["Mon","No Such Station",null]})"));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(ErrorCode(parsed), "not_found");
}

TEST(WireTest, PointQueryMatchesDirectQuery) {
  DwarfCube cube = BuildSeedCube();
  QueryServer server{DwarfCube(cube)};
  ServerHandle handle(&server);

  ParsedResponse parsed = ParseResponse(
      handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})"));
  ASSERT_TRUE(parsed.ok);
  auto direct = dwarf::PointQueryByName(cube, {"Mon", std::nullopt, "D2"});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(parsed.value.Get("measure").ValueOrDie().AsNumber().ValueOrDie(),
            static_cast<double>(*direct));
  EXPECT_EQ(parsed.epoch, 0u);
}

// Focused (non-differential) check of the ranged wire surface: the column
// order of out-of-order roll-up dims, a "where" window, and a value-form
// aggregate, all against hand-computed answers. "Fri" < "Mon" < "Thu" <
// "Tue" < "Wed" lexicographically, so ["Mon","Thu"] covers {Mon, Thu} only.
TEST(WireTest, OrderedRollupAndValueRangesMatchHandComputedRows) {
  dwarf::CubeSchema schema(
      "bikes",
      {dwarf::DimensionSpec("Day", "", /*ordered_in=*/true),
       dwarf::DimensionSpec("Station"), dwarf::DimensionSpec("Area")},
      "bikes", dwarf::AggFn::kSum);
  dwarf::DwarfBuilder builder(std::move(schema));
  for (const auto& [keys, measure] : SeedTuples()) {
    ASSERT_TRUE(builder.AddTuple(keys, measure).ok());
  }
  QueryServer server{std::move(builder).Build().ValueOrDie()};
  ServerHandle handle(&server);

  // dims out of schema order + a Day window: keys[0] must be the Area.
  ParsedResponse rollup = ParseResponse(handle.Call(
      R"({"op":"rollup","dims":["Area","Day"],)"
      R"("where":[{"dim":"Day","lo":"Mon","hi":"Thu"}]})"));
  ASSERT_TRUE(rollup.ok);
  EXPECT_EQ(json::SerializeJson(rollup.value.Get("rows").ValueOrDie()),
            R"([{"keys":["D2","Mon"],"measure":8},)"
            R"({"keys":["D2","Thu"],"measure":6}])");

  // Value-form aggregate over the same window: Mon (3+5) + Thu (6).
  ParsedResponse aggregate = ParseResponse(handle.Call(
      R"({"op":"aggregate","predicates":[)"
      R"({"kind":"range","lo":"Mon","hi":"Thu"},)"
      R"({"kind":"all"},{"kind":"all"}]})"));
  ASSERT_TRUE(aggregate.ok);
  EXPECT_EQ(
      aggregate.value.Get("measure").ValueOrDie().AsNumber().ValueOrDie(),
      14.0);

  // A value range on an unordered dim is an invalid_argument, and a window
  // covering no stored value is not_found.
  ParsedResponse unordered = ParseResponse(handle.Call(
      R"({"op":"aggregate","predicates":[{"kind":"all"},)"
      R"({"kind":"range","lo":"A","hi":"Z"},{"kind":"all"}]})"));
  EXPECT_FALSE(unordered.ok);
  EXPECT_EQ(ErrorCode(unordered), "invalid_argument");
  ParsedResponse gap = ParseResponse(handle.Call(
      R"({"op":"aggregate","predicates":[)"
      R"({"kind":"range","lo":"Sat","hi":"Sun"},)"
      R"({"kind":"all"},{"kind":"all"}]})"));
  EXPECT_FALSE(gap.ok);
  EXPECT_EQ(ErrorCode(gap), "not_found");
}

TEST(WireTest, NormalizedCacheKeyIgnoresSpellingDifferences) {
  auto a = ParseRequest(R"({"op":"aggregate","predicates":[
      {"kind":"all"},{"kind":"set","keys":["b","a","b"]},
      {"kind":"range","lo":1,"hi":4}]})");
  auto b = ParseRequest(R"({ "predicates":[{"kind":"all"},
      {"keys":["a","b"],"kind":"set"},{"kind":"range","hi":4,"lo":1}],
      "op":"aggregate" })");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(NormalizedCacheKey(*a), NormalizedCacheKey(*b));
}

// Mixed read workload used by the concurrency tests: every entry is a
// (request payload) whose expected result is recomputed per epoch.
std::vector<std::string> MixedRequests() {
  return {
      R"({"op":"point","keys":["Mon",null,"D2"]})",
      R"({"op":"point","keys":[null,null,null]})",
      R"({"op":"point","keys":["Tue","Fenian St","D2"]})",
      R"({"op":"aggregate","predicates":[{"kind":"set","keys":["Mon","Tue"]},{"kind":"all"},{"kind":"point","key":"D2"}]})",
      R"({"op":"aggregate","predicates":[{"kind":"range","lo":0,"hi":2},{"kind":"all"},{"kind":"all"}]})",
      R"({"op":"slice","dim":"Area","key":"D2"})",
      R"({"op":"slice","dim":"Day","key":"Fri"})",
      R"({"op":"rollup","dims":["Area"]})",
      R"({"op":"rollup","dims":["Day","Area"]})",
  };
}

// The tentpole concurrency contract: >= 8 clients issue mixed queries while
// an updater thread repeatedly merges new tuples. Every response must
// byte-match a direct execution against the cube snapshot of the epoch the
// response reports — i.e. each request saw one consistent cube, never a
// half-published one.
TEST(QueryServerConcurrencyTest, EpochSnapshotsStayConsistentUnderUpdates) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 200;
  constexpr int kUpdates = 6;

  DwarfCube seed = BuildSeedCube();
  ServerOptions options;
  options.cache_capacity = 256;
  QueryServer server(DwarfCube(seed), options);

  // Epoch -> cube snapshot, recorded by the (single) updater thread.
  std::mutex epochs_mu;
  std::map<uint64_t, std::shared_ptr<const DwarfCube>> cubes_by_epoch;
  cubes_by_epoch[0] = std::make_shared<const DwarfCube>(std::move(seed));

  std::atomic<bool> updater_done{false};
  std::thread updater([&] {
    for (int i = 0; i < kUpdates; ++i) {
      std::vector<Tuple> batch = {
          {{"Sat", "Fenian St", "D2"}, 10 + i},
          {{"Mon", "Pearse St", "D2"}, 1},
          {{"Sun", "Heuston", "D8"}, 2 * i + 1},
      };
      auto epoch = server.ApplyUpdate(batch);
      ASSERT_TRUE(epoch.ok()) << epoch.status();
      EpochCubeStore::Snapshot snapshot = server.store().snapshot();
      ASSERT_EQ(snapshot.epoch, *epoch);  // single updater: no later publish
      std::lock_guard<std::mutex> lock(epochs_mu);
      cubes_by_epoch[snapshot.epoch] = snapshot.cube;
    }
    updater_done.store(true);
  });

  struct Observation {
    std::string request;
    std::string response;
  };
  std::vector<std::vector<Observation>> observations(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  const std::vector<std::string> pool = MixedRequests();
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      ServerHandle handle(&server);
      observations[client].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string& request = pool[(client + i) % pool.size()];
        observations[client].push_back({request, handle.Call(request)});
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  updater.join();
  EXPECT_TRUE(updater_done.load());
  EXPECT_EQ(server.epoch(), static_cast<uint64_t>(kUpdates));

  // Post-hoc verification against the recorded epoch snapshots.
  uint64_t verified = 0;
  for (const std::vector<Observation>& per_client : observations) {
    for (const Observation& observation : per_client) {
      ParsedResponse parsed = ParseResponse(observation.response);
      auto it = cubes_by_epoch.find(parsed.epoch);
      ASSERT_NE(it, cubes_by_epoch.end())
          << "response reported unknown epoch " << parsed.epoch;
      auto request = ParseRequest(observation.request);
      ASSERT_TRUE(request.ok());
      ExecResult expected = ExecuteRequest(*it->second, *request);
      EXPECT_EQ(observation.response,
                MakeResponse(expected.ok, parsed.epoch, parsed.cached,
                             expected.payload_json))
          << "request " << observation.request << " diverged at epoch "
          << parsed.epoch;
      ++verified;
    }
  }
  EXPECT_EQ(verified, static_cast<uint64_t>(kClients) * kRequestsPerClient);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_total,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.rejected_total, 0u);
  EXPECT_EQ(stats.updates_applied, static_cast<uint64_t>(kUpdates));
  EXPECT_GT(stats.cache.hits + stats.cache.misses, 0u);
}

TEST(QueryServerTest, CacheHitsThenInvalidatesOnUpdate) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  const std::string request = R"({"op":"point","keys":["Mon",null,"D2"]})";

  ParsedResponse first = ParseResponse(handle.Call(request));
  EXPECT_FALSE(first.cached);
  ParsedResponse second = ParseResponse(handle.Call(request));
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(server.cache().stats().hits, 1u);
  EXPECT_EQ(second.epoch, 0u);

  ASSERT_TRUE(server.ApplyUpdate({{{"Mon", "Fenian St", "D2"}, 100}}).ok());
  EXPECT_GT(server.cache().stats().invalidations, 0u);
  EXPECT_EQ(server.cache().stats().entries, 0u);

  ParsedResponse third = ParseResponse(handle.Call(request));
  EXPECT_FALSE(third.cached);  // new epoch, fresh execution
  EXPECT_EQ(third.epoch, 1u);
  EXPECT_EQ(third.value.Get("measure").ValueOrDie().AsNumber().ValueOrDie(),
            first.value.Get("measure").ValueOrDie().AsNumber().ValueOrDie() +
                100);
}

TEST(QueryServerTest, CachedResponseBytesMatchUncached) {
  QueryServer server{BuildSeedCube()};
  ServerHandle handle(&server);
  const std::string request = R"({"op":"rollup","dims":["Area"]})";
  std::string first = handle.Call(request);
  std::string second = handle.Call(request);
  // Only the "cached" flag may differ between the two responses.
  EXPECT_FALSE(ParseResponse(first).cached);
  EXPECT_TRUE(ParseResponse(second).cached);
  size_t flag = first.find("\"cached\":false");
  ASSERT_NE(flag, std::string::npos);
  std::string expected = first;
  expected.replace(flag, 14, "\"cached\":true");
  EXPECT_EQ(second, expected);
}

// Deterministic overload: one inline worker parks inside the pre-execute
// hook, so a second concurrent request exceeds max_queue_depth=1 and must be
// rejected immediately with code "overloaded".
TEST(QueryServerTest, RejectsWhenQueueDepthExceeded) {
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  bool release = false;

  ServerOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.pre_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  QueryServer server(BuildSeedCube(), options);

  std::thread blocker([&] {
    ServerHandle handle(&server);
    ParsedResponse parsed = ParseResponse(
        handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})"));
    EXPECT_TRUE(parsed.ok);  // the parked request still completes
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked; });
  }

  ServerHandle handle(&server);
  ParsedResponse rejected = ParseResponse(
      handle.Call(R"({"op":"point","keys":["Tue",null,null]})"));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(ErrorCode(rejected), "overloaded");
  EXPECT_EQ(server.Stats().rejected_total, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  blocker.join();
  EXPECT_EQ(server.Stats().queries_total, 1u);  // rejection didn't execute
}

TEST(QueryServerTest, WorkerCountHonorsThreadPolicy) {
  // Explicit worker count wins.
  ServerOptions explicit_options;
  explicit_options.num_workers = 2;
  QueryServer explicit_server(BuildSeedCube(), explicit_options);
  EXPECT_EQ(explicit_server.num_workers(), 2);

  // num_workers=0 resolves through SCDWARF_THREADS, same as the pipeline.
  ASSERT_EQ(setenv("SCDWARF_THREADS", "3", /*overwrite=*/1), 0);
  QueryServer env_server{BuildSeedCube()};
  EXPECT_EQ(env_server.num_workers(), 3);
  ASSERT_EQ(unsetenv("SCDWARF_THREADS"), 0);
}

TEST(QueryServerTest, StatsEndpointReportsCounters) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  ASSERT_TRUE(server.ApplyUpdate({{{"Sat", "Heuston", "D8"}, 4}}).ok());

  ParsedResponse parsed = ParseResponse(handle.Call(R"({"op":"stats"})"));
  ASSERT_TRUE(parsed.ok);
  const json::JsonValue& value = parsed.value;
  EXPECT_EQ(value.GetPath("stats.epoch").ValueOrDie().AsNumber().ValueOrDie(),
            1.0);
  EXPECT_EQ(value.GetPath("stats.queries_total")
                .ValueOrDie()
                .AsNumber()
                .ValueOrDie(),
            2.0);
  EXPECT_EQ(value.GetPath("stats.cache.hits")
                .ValueOrDie()
                .AsNumber()
                .ValueOrDie(),
            1.0);
  EXPECT_GT(value.GetPath("stats.latency.count")
                .ValueOrDie()
                .AsNumber()
                .ValueOrDie(),
            0.0);
  EXPECT_GT(value.GetPath("stats.last_update.base_tuples")
                .ValueOrDie()
                .AsNumber()
                .ValueOrDie(),
            0.0);
  EXPECT_EQ(value.GetPath("stats.num_workers").ValueOrDie()
                .AsNumber().ValueOrDie(),
            1.0);
}

// --- Cursor sessions -----------------------------------------------------

// Serialized "rows" array of a response payload ("[]" when absent).
std::string RowsJson(const ParsedResponse& parsed) {
  auto rows = parsed.value.Get("rows");
  if (!rows.ok()) return "[]";
  return json::SerializeJson(*rows);
}

uint64_t CursorId(const ParsedResponse& parsed) {
  return static_cast<uint64_t>(
      parsed.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());
}

// Drains a cursor to exhaustion, concatenating the row arrays of its pages.
struct DrainedCursor {
  json::JsonArray rows;
  size_t pages = 0;
  std::vector<size_t> page_sizes;
  std::vector<uint64_t> page_epochs;
};

DrainedCursor DrainCursor(ServerHandle& handle, uint64_t cursor) {
  DrainedCursor drained;
  for (;;) {
    ParsedResponse page = ParseResponse(handle.QueryNext(cursor));
    EXPECT_TRUE(page.ok) << json::SerializeJson(page.value);
    if (!page.ok) break;
    json::JsonValue rows_value = page.value.Get("rows").ValueOrDie();
    const json::JsonArray* rows = rows_value.AsArray();
    EXPECT_NE(rows, nullptr);
    if (rows == nullptr) break;
    drained.rows.insert(drained.rows.end(), rows->begin(), rows->end());
    drained.page_sizes.push_back(rows->size());
    drained.page_epochs.push_back(page.epoch);
    ++drained.pages;
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
  }
  return drained;
}

// Acceptance gate: for page_size 1, 7 and 64 the concatenated pages of a
// cursor session must be byte-identical to the one-shot "rows" array.
TEST(CursorSessionTest, PaginationIsByteIdenticalToOneShot) {
  const std::string queries[] = {
      R"({"op":"rollup","dims":["Day","Station"]})",
      R"({"op":"rollup","dims":["Station"]})",
      R"({"op":"slice","dim":"Area","key":"D2"})",
  };
  for (const std::string& query : queries) {
    QueryServer server{BuildSeedCube()};
    ServerHandle handle(&server);
    ParsedResponse one_shot = ParseResponse(handle.Call(query));
    ASSERT_TRUE(one_shot.ok) << query;
    const std::string want_rows = RowsJson(one_shot);

    for (size_t page_size : {size_t{1}, size_t{7}, size_t{64}}) {
      ParsedResponse opened = ParseResponse(handle.QueryOpen(query, page_size));
      ASSERT_TRUE(opened.ok) << query;
      EXPECT_EQ(opened.value.Get("page_size").ValueOrDie()
                    .AsNumber().ValueOrDie(),
                static_cast<double>(page_size));
      DrainedCursor drained = DrainCursor(handle, CursorId(opened));
      EXPECT_EQ(json::SerializeJson(json::JsonValue(drained.rows)), want_rows)
          << query << " page_size=" << page_size;
      // Every page but the last must be exactly page_size rows.
      for (size_t i = 0; i + 1 < drained.page_sizes.size(); ++i) {
        EXPECT_EQ(drained.page_sizes[i], page_size);
      }
      if (!drained.page_sizes.empty()) {
        EXPECT_LE(drained.page_sizes.back(), page_size);
      }
    }
    EXPECT_EQ(server.open_sessions(), 0u);  // drained cursors are reclaimed
  }
}

// A publish between pages must not change what the open cursor sees: the
// session serves its pinned snapshot (and reports that pinned epoch) even
// though one-shot queries already see the new epoch.
TEST(CursorSessionTest, MidPaginationPublishKeepsSnapshotPinned) {
  const std::string query = R"({"op":"rollup","dims":["Day","Station"]})";
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  const std::string rows_before = RowsJson(ParseResponse(handle.Call(query)));

  ParsedResponse opened = ParseResponse(handle.QueryOpen(query, 1));
  ASSERT_TRUE(opened.ok);
  EXPECT_EQ(opened.epoch, 0u);
  uint64_t cursor = CursorId(opened);

  // Two pages at the pinned epoch, then a publish that both changes an
  // existing row and adds a brand-new one.
  json::JsonArray rows;
  for (int i = 0; i < 2; ++i) {
    ParsedResponse page = ParseResponse(handle.QueryNext(cursor));
    ASSERT_TRUE(page.ok);
    EXPECT_EQ(page.epoch, 0u);
    const json::JsonArray* got = page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    rows.insert(rows.end(), got->begin(), got->end());
  }
  ASSERT_TRUE(server.ApplyUpdate({{{"Mon", "Fenian St", "D2"}, 100},
                                  {{"Sat", "Heuston", "D8"}, 4}})
                  .ok());
  ParsedResponse after = ParseResponse(handle.Call(query));
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_NE(RowsJson(after), rows_before);  // the one-shot view moved on

  for (;;) {
    ParsedResponse page = ParseResponse(handle.QueryNext(cursor));
    ASSERT_TRUE(page.ok);
    EXPECT_EQ(page.epoch, 0u) << "cursor must keep its pinned epoch";
    const json::JsonArray* got = page.value.Get("rows").ValueOrDie().AsArray();
    ASSERT_NE(got, nullptr);
    rows.insert(rows.end(), got->begin(), got->end());
    if (page.value.Get("done").ValueOrDie().AsBool().ValueOrDie()) break;
  }
  EXPECT_EQ(json::SerializeJson(json::JsonValue(rows)), rows_before);
}

TEST(CursorSessionTest, SessionCapCloseAndUnknownCursor) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_sessions = 2;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  const std::string query = R"({"op":"rollup","dims":["Day"]})";

  ParsedResponse first = ParseResponse(handle.QueryOpen(query, 4));
  ParsedResponse second = ParseResponse(handle.QueryOpen(query, 4));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(server.open_sessions(), 2u);

  ParsedResponse third = ParseResponse(handle.QueryOpen(query, 4));
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(ErrorCode(third), "too_many_sessions");
  EXPECT_EQ(server.Stats().sessions_rejected, 1u);

  ParsedResponse closed = ParseResponse(handle.QueryClose(CursorId(first)));
  ASSERT_TRUE(closed.ok);
  EXPECT_TRUE(closed.value.Get("closed").ValueOrDie().AsBool().ValueOrDie());
  EXPECT_TRUE(ParseResponse(handle.QueryOpen(query, 4)).ok);

  // A closed cursor is gone: next fails, a second close reports closed=false.
  ParsedResponse next = ParseResponse(handle.QueryNext(CursorId(first)));
  EXPECT_FALSE(next.ok);
  EXPECT_EQ(ErrorCode(next), "not_found");
  ParsedResponse again = ParseResponse(handle.QueryClose(CursorId(first)));
  ASSERT_TRUE(again.ok);
  EXPECT_FALSE(again.value.Get("closed").ValueOrDie().AsBool().ValueOrDie());
}

TEST(CursorSessionTest, IdleSessionsAreReapedByTtl) {
  ServerOptions options;
  options.num_workers = 1;
  options.session_ttl_seconds = 0;  // anything idle is expired
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);

  ParsedResponse opened =
      ParseResponse(handle.QueryOpen(R"({"op":"rollup","dims":["Day"]})", 4));
  ASSERT_TRUE(opened.ok);
  EXPECT_EQ(server.open_sessions(), 1u);
  EXPECT_GE(server.ReapIdleSessions(), 1u);
  EXPECT_EQ(server.open_sessions(), 0u);
  EXPECT_EQ(server.Stats().sessions_expired, 1u);

  ParsedResponse next = ParseResponse(handle.QueryNext(CursorId(opened)));
  EXPECT_FALSE(next.ok);
  EXPECT_EQ(ErrorCode(next), "not_found");
}

TEST(CursorSessionTest, RejectsMalformedSessionRequests) {
  QueryServer server{BuildSeedCube()};
  ServerHandle handle(&server);
  struct Case {
    const char* request;
    const char* want_code;
  };
  const Case cases[] = {
      // Only row-producing queries can be paged.
      {R"({"op":"query_open","query":{"op":"point","keys":["Mon",null,"D2"]},"page_size":4})",
       "invalid_argument"},
      {R"({"op":"query_open","query":{"op":"stats"},"page_size":4})",
       "invalid_argument"},
      {R"({"op":"query_open","page_size":4})", "invalid_argument"},
      {R"({"op":"query_open","query":{"op":"rollup","dims":["Day"]}})",
       "invalid_argument"},  // missing page_size
      {R"({"op":"query_open","query":{"op":"rollup","dims":["Day"]},"page_size":0})",
       "invalid_argument"},
      {R"({"op":"query_open","query":{"op":"rollup","dims":["Day"]},"page_size":100000000})",
       "invalid_argument"},
      {R"({"op":"query_next"})", "invalid_argument"},
      {R"({"op":"query_next","cursor":-3})", "invalid_argument"},
      {R"({"op":"query_close"})", "invalid_argument"},
      // Unknown dimension surfaces at open, not at first next.
      {R"({"op":"query_open","query":{"op":"rollup","dims":["NoSuchDim"]},"page_size":4})",
       "not_found"},
  };
  for (const Case& c : cases) {
    ParsedResponse parsed = ParseResponse(handle.Call(c.request));
    EXPECT_FALSE(parsed.ok) << c.request;
    EXPECT_EQ(ErrorCode(parsed), c.want_code) << c.request;
  }
  EXPECT_EQ(server.open_sessions(), 0u);
}

TEST(CursorSessionTest, UnknownSliceKeyYieldsEmptyDrainedCursor) {
  QueryServer server{BuildSeedCube()};
  ServerHandle handle(&server);
  ParsedResponse opened = ParseResponse(
      handle.QueryOpen(R"({"op":"slice","dim":"Area","key":"NoSuchArea"})", 8));
  ASSERT_TRUE(opened.ok);
  ParsedResponse page = ParseResponse(handle.QueryNext(CursorId(opened)));
  ASSERT_TRUE(page.ok);
  EXPECT_EQ(RowsJson(page), "[]");
  EXPECT_TRUE(page.value.Get("done").ValueOrDie().AsBool().ValueOrDie());
  EXPECT_EQ(server.open_sessions(), 0u);
}

// --- Delta-epoch cache revalidation --------------------------------------

TEST(QueryServerTest, CacheRevalidatesEntriesThatMissTheChangedPrefixes) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  const std::string mon_point = R"({"op":"point","keys":["Mon",null,"D2"]})";
  const std::string d1_slice = R"({"op":"slice","dim":"Area","key":"D1"})";
  const std::string day_rollup = R"({"op":"rollup","dims":["Day"]})";

  // Warm the cache at epoch 0.
  ParsedResponse mon_first = ParseResponse(handle.Call(mon_point));
  handle.Call(d1_slice);
  handle.Call(day_rollup);
  EXPECT_EQ(server.cache().stats().entries, 3u);

  // The publish touches only ("Sat","Heuston","D8"): the Mon point and the
  // D1 slice provably miss it and must carry over; the roll-up cannot (every
  // new tuple lands in some group) and must drop.
  ASSERT_TRUE(server.ApplyUpdate({{{"Sat", "Heuston", "D8"}, 4}}).ok());
  ResultCacheStats after_miss = server.cache().stats();
  EXPECT_EQ(after_miss.revalidated, 2u);
  EXPECT_EQ(after_miss.invalidations, 1u);
  EXPECT_EQ(after_miss.entries, 2u);

  // A revalidated entry serves a *cached* hit at the new epoch, byte-equal
  // to the epoch-0 result.
  ParsedResponse mon_second = ParseResponse(handle.Call(mon_point));
  EXPECT_TRUE(mon_second.cached);
  EXPECT_EQ(mon_second.epoch, 1u);
  EXPECT_EQ(json::SerializeJson(
                mon_second.value.Get("measure").ValueOrDie()),
            json::SerializeJson(mon_first.value.Get("measure").ValueOrDie()));

  // A publish that *does* touch the Mon prefix invalidates it again.
  ASSERT_TRUE(server.ApplyUpdate({{{"Mon", "Fenian St", "D2"}, 100}}).ok());
  ParsedResponse mon_third = ParseResponse(handle.Call(mon_point));
  EXPECT_FALSE(mon_third.cached);
  EXPECT_EQ(mon_third.epoch, 2u);
  EXPECT_EQ(mon_third.value.Get("measure").ValueOrDie()
                .AsNumber().ValueOrDie(),
            mon_first.value.Get("measure").ValueOrDie()
                    .AsNumber().ValueOrDie() +
                100);
}

TEST(QueryServerTest, StatsEndpointReportsSessionAndRevalidationCounters) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);
  handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  ASSERT_TRUE(server.ApplyUpdate({{{"Sat", "Heuston", "D8"}, 4}}).ok());
  ParsedResponse opened =
      ParseResponse(handle.QueryOpen(R"({"op":"rollup","dims":["Day"]})", 4));
  ASSERT_TRUE(opened.ok);

  ParsedResponse parsed = ParseResponse(handle.Call(R"({"op":"stats"})"));
  ASSERT_TRUE(parsed.ok);
  const json::JsonValue& value = parsed.value;
  EXPECT_EQ(value.GetPath("stats.cache.revalidated").ValueOrDie()
                .AsNumber().ValueOrDie(),
            1.0);
  EXPECT_EQ(value.GetPath("stats.sessions.open").ValueOrDie()
                .AsNumber().ValueOrDie(),
            1.0);
  EXPECT_EQ(value.GetPath("stats.sessions.opened").ValueOrDie()
                .AsNumber().ValueOrDie(),
            1.0);
  EXPECT_EQ(value.GetPath("stats.sessions.max_sessions").ValueOrDie()
                .AsNumber().ValueOrDie(),
            64.0);
}

// Flattens a "metrics" op payload into "name{k=v,...}" -> numeric value
// (counter/gauge "value", histogram "count").
std::map<std::string, double> FlattenMetrics(const json::JsonValue& value) {
  std::map<std::string, double> out;
  const json::JsonArray* entries =
      value.Get("metrics").ValueOrDie().AsArray();
  EXPECT_NE(entries, nullptr);
  if (entries == nullptr) return out;
  for (const json::JsonValue& entry : *entries) {
    std::string key = entry.Get("name").ValueOrDie().AsString().ValueOrDie();
    const json::JsonObject* labels =
        entry.Get("labels").ValueOrDie().AsObject();
    if (labels != nullptr && !labels->empty()) {
      key.push_back('{');
      for (const auto& [k, v] : *labels) {
        if (key.back() != '{') key.push_back(',');
        key += k + "=" + v.AsString().ValueOrDie();
      }
      key.push_back('}');
    }
    auto number = entry.Get("value");
    if (!number.ok()) number = entry.Get("count");
    out[key] = number.ValueOrDie().AsNumber().ValueOrDie();
  }
  return out;
}

TEST(QueryServerTest, MetricsEndpointExposesMovingCacheAndSessionCounters) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(BuildSeedCube(), options);
  ServerHandle handle(&server);

  ParsedResponse before = ParseResponse(handle.Call(R"({"op":"metrics"})"));
  ASSERT_TRUE(before.ok);
  std::map<std::string, double> baseline = FlattenMetrics(before.value);
  // Every registered serving series is present from the start.
  for (const char* name :
       {"server_requests_total", "server_rejected_total",
        "server_updates_applied_total", "server_request_us",
        "server_cache_hits_total", "server_cache_misses_total",
        "server_cache_evictions_total", "server_cache_invalidations_total",
        "server_cache_revalidated_total", "server_sessions_opened_total",
        "server_sessions_expired_total", "server_sessions_rejected_total",
        "server_sessions_open"}) {
    EXPECT_TRUE(baseline.count(name)) << "missing metric " << name;
  }
  EXPECT_TRUE(baseline.count("server_op_us{op=point}"));
  EXPECT_TRUE(baseline.count("server_op_us{op=metrics}"));

  // Traffic: a cache miss, a cache hit, and an open cursor session.
  handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  ParsedResponse opened =
      ParseResponse(handle.QueryOpen(R"({"op":"rollup","dims":["Day"]})", 4));
  ASSERT_TRUE(opened.ok);

  ParsedResponse after = ParseResponse(handle.Call(R"({"op":"metrics"})"));
  ASSERT_TRUE(after.ok);
  std::map<std::string, double> moved = FlattenMetrics(after.value);
  EXPECT_EQ(moved["server_cache_misses_total"],
            baseline["server_cache_misses_total"] + 1);
  EXPECT_EQ(moved["server_cache_hits_total"],
            baseline["server_cache_hits_total"] + 1);
  EXPECT_EQ(moved["server_sessions_opened_total"],
            baseline["server_sessions_opened_total"] + 1);
  EXPECT_EQ(moved["server_sessions_open"], 1.0);
  // The first metrics call itself completed, so requests moved by >= 4.
  EXPECT_GE(moved["server_requests_total"],
            baseline["server_requests_total"] + 4);
  EXPECT_GE(moved["server_op_us{op=point}"], 2.0);
}

TEST(QueryServerTest, MetricsAreScopedPerServerInstance) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer busy(BuildSeedCube(), options);
  QueryServer idle(BuildSeedCube(), options);
  ServerHandle busy_handle(&busy);
  ServerHandle idle_handle(&idle);
  busy_handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");
  busy_handle.Call(R"({"op":"point","keys":["Mon",null,"D2"]})");

  std::map<std::string, double> busy_metrics = FlattenMetrics(
      ParseResponse(busy_handle.Call(R"({"op":"metrics"})")).value);
  std::map<std::string, double> idle_metrics = FlattenMetrics(
      ParseResponse(idle_handle.Call(R"({"op":"metrics"})")).value);
  EXPECT_GE(busy_metrics["server_requests_total"], 2.0);
  // The idle server saw only its own metrics request — the busy server's
  // traffic never bled into it.
  EXPECT_EQ(idle_metrics["server_cache_misses_total"], 0.0);
  EXPECT_EQ(idle_metrics["server_sessions_opened_total"], 0.0);
}

// --- TCP front-end -------------------------------------------------------

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(TcpServerTest, RoundTripsFramesIdenticallyToInProcessHandle) {
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());
  ASSERT_GT(tcp.port(), 0);

  int fd = ConnectLoopback(tcp.port());
  ServerHandle handle(&server);
  for (const std::string& request : MixedRequests()) {
    ASSERT_TRUE(WriteFrame(fd, request).ok());
    auto response = ReadFrame(fd, 1 << 20);
    ASSERT_TRUE(response.ok()) << response.status();
    // The TCP response must match the in-process path modulo the cached
    // flag (the TCP request may have warmed the cache).
    ParsedResponse over_tcp = ParseResponse(*response);
    ParsedResponse in_process = ParseResponse(handle.Call(request));
    EXPECT_EQ(over_tcp.ok, in_process.ok) << request;
    EXPECT_EQ(json::SerializeJson(over_tcp.value.Get("epoch").ValueOrDie()),
              json::SerializeJson(in_process.value.Get("epoch").ValueOrDie()));
    auto request_parsed = ParseRequest(request);
    ASSERT_TRUE(request_parsed.ok());
    ExecResult direct = ExecuteRequest(*server.store().snapshot().cube,
                                       *request_parsed);
    EXPECT_EQ(*response, MakeResponse(direct.ok, over_tcp.epoch,
                                      over_tcp.cached, direct.payload_json))
        << request;
  }
  ::close(fd);
  tcp.Stop();
}

TEST(TcpServerTest, ManyConnectionsServeConcurrently) {
  constexpr int kConnections = 8;
  constexpr int kRequestsEach = 25;
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  const std::vector<std::string> pool = MixedRequests();
  threads.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    threads.emplace_back([&, i] {
      int fd = ConnectLoopback(tcp.port());
      for (int r = 0; r < kRequestsEach; ++r) {
        const std::string& request = pool[(i + r) % pool.size()];
        if (!WriteFrame(fd, request).ok()) { ++failures; break; }
        auto response = ReadFrame(fd, 1 << 20);
        if (!response.ok()) { ++failures; break; }
        ParsedResponse parsed = ParseResponse(*response);
        if (!parsed.ok) ++failures;
      }
      ::close(fd);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.Stats().queries_total,
            static_cast<uint64_t>(kConnections) * kRequestsEach);
  tcp.Stop();
}

TEST(TcpServerTest, ReapsFinishedConnectionThreads) {
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());

  // Many short-lived connections, each fully served then closed client-side.
  constexpr int kRounds = 12;
  for (int i = 0; i < kRounds; ++i) {
    int fd = ConnectLoopback(tcp.port());
    ASSERT_TRUE(WriteFrame(fd, R"({"op":"stats"})").ok());
    auto response = ReadFrame(fd, 1 << 20);
    ASSERT_TRUE(response.ok()) << response.status();
    ::close(fd);
  }

  // Each serving thread self-registers as finished once it observes the
  // close; a sweep must then join and forget every one of them instead of
  // accumulating kRounds dead threads until Stop().
  size_t live = tcp.ReapFinishedConnections();
  for (int spin = 0; spin < 500 && live != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    live = tcp.ReapFinishedConnections();
  }
  EXPECT_EQ(live, 0u);
  tcp.Stop();
}

TEST(TcpServerTest, DisconnectReclaimsClientCursorSessions) {
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());

  int fd = ConnectLoopback(tcp.port());
  ASSERT_TRUE(
      WriteFrame(
          fd,
          R"({"op":"query_open","query":{"op":"rollup","dims":["Day"]},"page_size":1})")
          .ok());
  auto response = ReadFrame(fd, 1 << 20);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(ParseResponse(*response).ok);
  EXPECT_EQ(server.open_sessions(), 1u);

  // Dropping the connection mid-pagination must reclaim the cursor without
  // waiting for the idle TTL.
  ::close(fd);
  size_t open = server.open_sessions();
  for (int spin = 0; spin < 500 && open != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    open = server.open_sessions();
  }
  EXPECT_EQ(open, 0u);
  tcp.Stop();
}

std::atomic<int> g_usr1_seen{0};
void OnUsr1(int) { g_usr1_seen.fetch_add(1); }

TEST(WireTest, ReadFullRetriesAcrossSignalInterruption) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // Deliberately no SA_RESTART: a blocked read() must surface EINTR, which
  // ReadFull/ReadFrame have to retry rather than fail the connection.
  struct sigaction action {};
  struct sigaction old_action {};
  action.sa_handler = OnUsr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &action, &old_action), 0);

  std::atomic<bool> started{false};
  std::string payload;
  Status read_status = Status::OK();
  std::thread reader([&] {
    started.store(true);
    auto result = ReadFrame(fds[0], 1 << 20);
    if (result.ok()) {
      payload = *result;
    } else {
      read_status = result.status();
    }
  });

  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    // Let the reader block in read(), then interrupt it.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pthread_kill(reader.native_handle(), SIGUSR1);
  }
  const std::string request = R"({"op":"stats"})";
  ASSERT_TRUE(WriteFrame(fds[1], request).ok());
  reader.join();
  sigaction(SIGUSR1, &old_action, nullptr);

  EXPECT_TRUE(read_status.ok()) << read_status;
  EXPECT_EQ(payload, request);
  EXPECT_GT(g_usr1_seen.load(), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(TcpServerTest, OversizedFrameClosesConnection) {
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server, /*max_frame_bytes=*/64);
  ASSERT_TRUE(tcp.Start().ok());
  int fd = ConnectLoopback(tcp.port());
  std::string big(1000, 'x');
  ASSERT_TRUE(WriteFrame(fd, big).ok());
  auto response = ReadFrame(fd, 1 << 20);
  EXPECT_FALSE(response.ok());  // server hung up instead of serving it
  ::close(fd);
  tcp.Stop();
}

// --- Binary wire format (bin1) -------------------------------------------

constexpr std::string_view kHelloOffer =
    R"({"op":"hello","formats":["json","bin1"]})";

// The negotiated format in a hello response payload ("" when absent).
std::string NegotiatedFormat(const std::string& response) {
  ParsedResponse parsed = ParseResponse(response);
  auto format = parsed.value.Get("format");
  return format.ok() ? format->AsString().ValueOrDie() : std::string();
}

TEST(BinaryWireTest, HelloNegotiatesBin1PerConnection) {
  QueryServer server{BuildSeedCube()};

  ClientContext offers;
  EXPECT_EQ(NegotiatedFormat(server.HandleFrame(kHelloOffer, &offers)),
            "bin1");
  EXPECT_TRUE(offers.binary);
  // Renegotiating on the same connection is idempotent for the counter.
  EXPECT_EQ(NegotiatedFormat(server.HandleFrame(kHelloOffer, &offers)),
            "bin1");

  // A client that never mentions bin1 stays on JSON.
  ClientContext json_only;
  EXPECT_EQ(NegotiatedFormat(server.HandleFrame(
                R"({"op":"hello","formats":["json"]})", &json_only)),
            "json");
  EXPECT_FALSE(json_only.binary);
  // No client context (one-shot in-process call): nowhere to pin the
  // format, so the server declines.
  EXPECT_EQ(NegotiatedFormat(server.HandleFrame(kHelloOffer)), "json");

  std::map<std::string, double> metrics = FlattenMetrics(
      ParseResponse(server.HandleFrame(R"({"op":"metrics"})")).value);
  EXPECT_EQ(metrics["server_binary_connections_total"], 1.0);
}

TEST(BinaryWireTest, RequestsRoundTripThroughTheCodec) {
  std::vector<std::string> pool = MixedRequests();
  pool.push_back(
      R"({"op":"aggregate","predicates":[{"kind":"range","lo":"Mon","hi":"Tue"},{"kind":"all"},{"kind":"all"}]})");
  pool.push_back(
      R"({"op":"rollup","dims":["Day"],"where":[{"dim":"Day","lo":"Mon","hi":"Tue"}]})");
  pool.push_back(
      R"({"op":"query_open","query":{"op":"rollup","dims":["Area"]},"page_size":3})");
  pool.push_back(R"({"op":"query_next","cursor":42})");
  pool.push_back(R"({"op":"query_close","cursor":42})");
  pool.push_back(R"({"op":"stats"})");
  pool.push_back(R"({"op":"ping"})");
  pool.push_back(R"({"op":"load_snapshot","path":"/tmp/x.snap"})");
  for (const std::string& request_json : pool) {
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    auto encoded = binwire::EncodeRequest(*request);
    ASSERT_TRUE(encoded.ok()) << request_json;
    EXPECT_TRUE(binwire::IsBinaryPayload(*encoded));
    auto decoded = binwire::DecodeRequest(*encoded);
    ASSERT_TRUE(decoded.ok()) << request_json << ": " << decoded.status();
    // The normalized spelling is the identity of a request; surviving the
    // codec means every field survived.
    EXPECT_EQ(NormalizedCacheKey(*decoded), NormalizedCacheKey(*request))
        << request_json;
  }
  // hello never travels in binary — it IS the format negotiation.
  auto hello = ParseRequest(kHelloOffer);
  ASSERT_TRUE(hello.ok());
  EXPECT_FALSE(binwire::EncodeRequest(*hello).ok());
}

TEST(BinaryWireTest, BinaryResponsesDecodeToTheExactJsonBytes) {
  // Two identical servers: one answers JSON, one binary, so cache state
  // (and thus the "cached" flag) advances in lockstep.
  QueryServer json_server{BuildSeedCube()};
  QueryServer bin_server{BuildSeedCube()};
  ClientContext json_ctx;
  ClientContext bin_ctx;
  ASSERT_EQ(NegotiatedFormat(bin_server.HandleFrame(kHelloOffer, &bin_ctx)),
            "bin1");

  for (const std::string& request_json : MixedRequests()) {
    auto request = ParseRequest(request_json);
    ASSERT_TRUE(request.ok()) << request_json;
    auto encoded = binwire::EncodeRequest(*request);
    ASSERT_TRUE(encoded.ok()) << request_json;
    for (int repeat = 0; repeat < 2; ++repeat) {  // miss then cache hit
      std::string expect = json_server.HandleFrame(request_json, &json_ctx);
      std::string raw = bin_server.HandleBinaryFrame(*encoded, &bin_ctx);
      EXPECT_TRUE(binwire::IsBinaryPayload(raw)) << request_json;
      auto decoded = binwire::DecodeResponse(raw);
      ASSERT_TRUE(decoded.ok()) << request_json << ": " << decoded.status();
      EXPECT_EQ(*decoded, expect) << request_json;
    }
  }

  // A negotiated connection may still send JSON frames: detection is per
  // frame, and the answer comes back as JSON, not binary.
  std::string mixed = bin_server.HandleBinaryFrame(
      R"({"op":"point","keys":["Mon",null,"D2"]})", &bin_ctx);
  EXPECT_FALSE(binwire::IsBinaryPayload(mixed));
  EXPECT_TRUE(ParseResponse(mixed).ok);
}

TEST(BinaryWireTest, CursorPagesServeZeroCopyAndDecodeByteIdentically) {
  QueryServer json_server{BuildSeedCube()};
  QueryServer bin_server{BuildSeedCube()};
  ServerHandle json_handle(&json_server);
  ClientContext bin_ctx;
  ASSERT_EQ(NegotiatedFormat(bin_server.HandleFrame(kHelloOffer, &bin_ctx)),
            "bin1");

  const std::string open_json =
      R"({"op":"query_open","query":{"op":"rollup","dims":["Day","Area"]},"page_size":2})";
  auto open_request = ParseRequest(open_json);
  ASSERT_TRUE(open_request.ok());
  auto open_encoded = binwire::EncodeRequest(*open_request);
  ASSERT_TRUE(open_encoded.ok());

  // query_open answers via the generic passthrough kind; the bytes must
  // still match the JSON server's answer exactly.
  std::string json_opened = json_server.HandleFrame(open_json);
  std::string raw_opened = bin_server.HandleBinaryFrame(*open_encoded,
                                                        &bin_ctx);
  auto opened = binwire::DecodeResponse(raw_opened);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, json_opened);
  ParsedResponse opened_parsed = ParseResponse(*opened);
  ASSERT_TRUE(opened_parsed.ok);
  uint64_t cursor = static_cast<uint64_t>(
      opened_parsed.value.Get("cursor").ValueOrDie().AsNumber().ValueOrDie());

  // Drain: binary pages are kind-3 (peekable without row decode) and must
  // reconstruct the JSON server's page bytes exactly.
  QueryRequest next;
  next.op = RequestOp::kQueryNext;
  next.cursor_id = cursor;
  auto next_encoded = binwire::EncodeRequest(next);
  ASSERT_TRUE(next_encoded.ok());
  bool done = false;
  int pages = 0;
  while (!done && pages < 100) {
    std::string raw_page = bin_server.HandleBinaryFrame(*next_encoded,
                                                        &bin_ctx);
    auto header = binwire::PeekCursorPage(raw_page);
    ASSERT_TRUE(header.ok()) << header.status();
    EXPECT_EQ(header->cursor_id, cursor);
    done = header->done;
    auto page = binwire::DecodeResponse(raw_page);
    ASSERT_TRUE(page.ok()) << page.status();
    EXPECT_EQ(*page, json_handle.QueryNext(cursor));
    ++pages;
  }
  EXPECT_TRUE(done);
  EXPECT_GT(pages, 1);  // page_size 2 over >2 rows: a real multi-page drain
  EXPECT_EQ(bin_server.open_sessions(), 0u);

  std::map<std::string, double> metrics = FlattenMetrics(
      ParseResponse(bin_server.HandleFrame(R"({"op":"metrics"})")).value);
  EXPECT_EQ(metrics["server_zero_copy_pages_total"],
            static_cast<double>(pages));
}

TEST(BinaryWireTest, MalformedBinaryPayloadsAreErrorsNotCrashes) {
  QueryServer server{BuildSeedCube()};
  ClientContext ctx;
  ASSERT_EQ(NegotiatedFormat(server.HandleFrame(kHelloOffer, &ctx)), "bin1");

  auto good = binwire::EncodeRequest(
      ParseRequest(R"({"op":"slice","dim":"Area","key":"D2"})").ValueOrDie());
  ASSERT_TRUE(good.ok());
  std::vector<std::string> corrupt = {
      std::string("\xB1", 1),                 // magic alone
      std::string("\xB1\x07", 2),             // unsupported version
      std::string("\xB1\x01\xFF", 3),         // unknown op
      good->substr(0, good->size() - 3),      // truncated mid-string
      *good + std::string("xx", 2),           // trailing bytes
      std::string("\xB1\x01\x01\xFF\xFF\xFF\xFF", 7),  // count > payload
  };
  for (const std::string& payload : corrupt) {
    std::string raw = server.HandleBinaryFrame(payload, &ctx);
    auto decoded = binwire::DecodeResponse(raw);
    ASSERT_TRUE(decoded.ok());
    ParsedResponse parsed = ParseResponse(*decoded);
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(ErrorCode(parsed), "invalid_argument");
  }
  // The connection survives the abuse.
  std::string after = server.HandleBinaryFrame(*good, &ctx);
  auto decoded = binwire::DecodeResponse(after);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(ParseResponse(*decoded).ok);
}

TEST(BinaryWireTest, ClientTranscodesTransparentlyOverTcp) {
  QueryServer server{BuildSeedCube()};
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());

  client::Endpoint endpoint;
  endpoint.port = static_cast<uint16_t>(tcp.port());
  client::ClientOptions binary_options;
  binary_options.prefer_binary = true;
  client::CubeClient json_client(endpoint);
  client::CubeClient bin_client(endpoint, binary_options);

  for (const std::string& request_json : MixedRequests()) {
    // Warm the cache so both observe the same cached flag, then compare
    // the JSON client's bytes against the binary client's reconstruction.
    auto warm = json_client.Call(request_json);
    ASSERT_TRUE(warm.ok()) << warm.status();
    auto via_binary = bin_client.Call(request_json);
    ASSERT_TRUE(via_binary.ok()) << via_binary.status();
    auto via_json = json_client.Call(request_json);
    ASSERT_TRUE(via_json.ok()) << via_json.status();
    EXPECT_EQ(*via_binary, *via_json) << request_json;
  }
  EXPECT_TRUE(bin_client.binary());
  EXPECT_FALSE(json_client.binary());

  std::map<std::string, double> metrics = FlattenMetrics(
      ParseResponse(server.HandleFrame(R"({"op":"metrics"})")).value);
  EXPECT_EQ(metrics["server_binary_connections_total"], 1.0);

  bin_client.Close();
  json_client.Close();
  tcp.Stop();
}

}  // namespace
}  // namespace scdwarf::server
