/// \file json_parser.h
/// \brief RFC 8259 JSON parser and serializer.

#ifndef SCDWARF_JSON_JSON_PARSER_H_
#define SCDWARF_JSON_JSON_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "json/json_value.h"

namespace scdwarf::json {

/// \brief Parses \p input as a single JSON value; trailing non-whitespace is
/// a ParseError. Nesting depth is capped at 256 to bound recursion.
Result<JsonValue> ParseJson(std::string_view input);

/// \brief Serializes \p value. With \p pretty, uses two-space indentation.
std::string SerializeJson(const JsonValue& value, bool pretty = false);

/// \brief Escapes a string for embedding in JSON output (no quotes added).
std::string EscapeJsonString(std::string_view text);

}  // namespace scdwarf::json

#endif  // SCDWARF_JSON_JSON_PARSER_H_
