#include "json/json_value.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace scdwarf::json {

Result<bool> JsonValue::AsBool() const {
  if (const bool* value = std::get_if<bool>(&data_)) return *value;
  return Status::InvalidArgument("JSON value is not a bool");
}

Result<double> JsonValue::AsNumber() const {
  if (const double* value = std::get_if<double>(&data_)) return *value;
  return Status::InvalidArgument("JSON value is not a number");
}

Result<std::string> JsonValue::AsString() const {
  if (const std::string* value = std::get_if<std::string>(&data_)) return *value;
  return Status::InvalidArgument("JSON value is not a string");
}

Result<JsonValue> JsonValue::Get(std::string_view key) const {
  const JsonObject* object = AsObject();
  if (object == nullptr) {
    return Status::InvalidArgument("JSON value is not an object");
  }
  for (const auto& [member_key, member_value] : *object) {
    if (member_key == key) return member_value;
  }
  return Status::NotFound("missing JSON key '" + std::string(key) + "'");
}

Result<JsonValue> JsonValue::GetPath(std::string_view dotted_path) const {
  JsonValue current = *this;
  for (const std::string& key : StrSplit(dotted_path, '.')) {
    SCD_ASSIGN_OR_RETURN(current, current.Get(key));
  }
  return current;
}

std::string JsonValue::ToFieldString() const {
  switch (type()) {
    case JsonType::kNull:
      return "null";
    case JsonType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case JsonType::kNumber: {
      double value = std::get<double>(data_);
      if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
        return std::to_string(static_cast<long long>(value));
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      return buffer;
    }
    case JsonType::kString:
      return std::get<std::string>(data_);
    case JsonType::kArray:
      return "[array]";
    case JsonType::kObject:
      return "[object]";
  }
  return "";
}

}  // namespace scdwarf::json
