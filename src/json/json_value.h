/// \file json_value.h
/// \brief JSON value model for feeds delivered as JSON (the paper treats XML
/// and JSON streams as equivalent inputs to the cube pipeline).

#ifndef SCDWARF_JSON_JSON_VALUE_H_
#define SCDWARF_JSON_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace scdwarf::json {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Object member order is preserved (vector of pairs) so serialization is
/// deterministic — the generators rely on byte-stable output.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

/// \brief A JSON value: null, bool, number (double), string, array or object.
class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}            // NOLINT implicit
  JsonValue(bool value) : data_(value) {}                  // NOLINT implicit
  JsonValue(double value) : data_(value) {}                // NOLINT implicit
  JsonValue(int value) : data_(static_cast<double>(value)) {}  // NOLINT
  JsonValue(int64_t value) : data_(static_cast<double>(value)) {}  // NOLINT
  JsonValue(std::string value) : data_(std::move(value)) {}     // NOLINT
  JsonValue(const char* value) : data_(std::string(value)) {}   // NOLINT
  JsonValue(JsonArray value)                                    // NOLINT
      : data_(std::make_shared<JsonArray>(std::move(value))) {}
  JsonValue(JsonObject value)                                   // NOLINT
      : data_(std::make_shared<JsonObject>(std::move(value))) {}

  JsonType type() const {
    switch (data_.index()) {
      case 0: return JsonType::kNull;
      case 1: return JsonType::kBool;
      case 2: return JsonType::kNumber;
      case 3: return JsonType::kString;
      case 4: return JsonType::kArray;
      default: return JsonType::kObject;
    }
  }

  bool is_null() const { return type() == JsonType::kNull; }
  bool is_bool() const { return type() == JsonType::kBool; }
  bool is_number() const { return type() == JsonType::kNumber; }
  bool is_string() const { return type() == JsonType::kString; }
  bool is_array() const { return type() == JsonType::kArray; }
  bool is_object() const { return type() == JsonType::kObject; }

  /// Typed accessors; each returns an error Status on type mismatch.
  Result<bool> AsBool() const;
  Result<double> AsNumber() const;
  Result<std::string> AsString() const;

  /// Borrowing accessors; nullptr on type mismatch.
  const JsonArray* AsArray() const {
    auto* p = std::get_if<std::shared_ptr<JsonArray>>(&data_);
    return p ? p->get() : nullptr;
  }
  const JsonObject* AsObject() const {
    auto* p = std::get_if<std::shared_ptr<JsonObject>>(&data_);
    return p ? p->get() : nullptr;
  }

  /// Looks up an object member by key; NotFound for missing keys or when this
  /// value is not an object.
  Result<JsonValue> Get(std::string_view key) const;

  /// Dotted-path lookup descending through nested objects
  /// (e.g. "station.status.bikes"). Array indices are not supported; use
  /// AsArray for arrays.
  Result<JsonValue> GetPath(std::string_view dotted_path) const;

  /// Renders this value as its field string for ETL purposes: strings
  /// verbatim, numbers with minimal formatting, bools as true/false.
  std::string ToFieldString() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      data_;
};

}  // namespace scdwarf::json

#endif  // SCDWARF_JSON_JSON_VALUE_H_
