#include "json/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace scdwarf::json {

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<JsonValue> Parse() {
    SCD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  bool ConsumeLiteral(std::string_view literal) {
    if (input_.size() - pos_ < literal.size()) return false;
    if (input_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("JSON nesting too deep");
    SkipWhitespace();
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        SCD_ASSIGN_OR_RETURN(std::string text, ParseString());
        return JsonValue(std::move(text));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue(nullptr);
        return Error("invalid literal");
      case '\0':
        return Error("unexpected end of input");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonObject object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Error("expected object key");
      SCD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Error("expected ':' after object key");
      ++pos_;
      SCD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return JsonValue(std::move(object));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonArray array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      SCD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return JsonValue(std::move(array));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= input_.size()) return Error("unterminated string");
      char c = input_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) return Error("unterminated escape");
      char escape = input_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SCD_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair handling.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < input_.size() && input_[pos_] == '\\' &&
                input_[pos_ + 1] == 'u') {
              pos_ += 2;
              SCD_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (input_.size() - pos_ < 4) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = input_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t begin = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    std::string literal(input_.substr(begin, pos_ - begin));
    char* end = nullptr;
    double value = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return JsonValue(value);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void SerializeInto(const JsonValue& value, bool pretty, int indent,
                   std::string* out) {
  auto pad = [&](int level) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(level) * 2, ' ');
    }
  };
  switch (value.type()) {
    case JsonType::kNull:
      out->append("null");
      break;
    case JsonType::kBool:
      out->append(value.AsBool().ValueOrDie() ? "true" : "false");
      break;
    case JsonType::kNumber:
      out->append(value.ToFieldString());
      break;
    case JsonType::kString:
      out->push_back('"');
      out->append(EscapeJsonString(value.AsString().ValueOrDie()));
      out->push_back('"');
      break;
    case JsonType::kArray: {
      const JsonArray& array = *value.AsArray();
      out->push_back('[');
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out->push_back(',');
        pad(indent + 1);
        SerializeInto(array[i], pretty, indent + 1, out);
      }
      if (!array.empty()) pad(indent);
      out->push_back(']');
      break;
    }
    case JsonType::kObject: {
      const JsonObject& object = *value.AsObject();
      out->push_back('{');
      for (size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out->push_back(',');
        pad(indent + 1);
        out->push_back('"');
        out->append(EscapeJsonString(object[i].first));
        out->append(pretty ? "\": " : "\":");
        SerializeInto(object[i].second, pretty, indent + 1, out);
      }
      if (!object.empty()) pad(indent);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

std::string SerializeJson(const JsonValue& value, bool pretty) {
  std::string out;
  SerializeInto(value, pretty, 0, &out);
  return out;
}

std::string EscapeJsonString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace scdwarf::json
