#include "etl/extractor.h"

#include "xml/xml_parser.h"

namespace scdwarf::etl {

namespace {

/// Applies required/default policy for a missing field.
Status HandleMissing(const FieldSpec& field, FeedRecord* record) {
  if (field.required) {
    return Status::NotFound("required field '" + field.name +
                            "' missing (path '" + field.path + "')");
  }
  record->Set(field.name, field.default_value);
  return Status::OK();
}

}  // namespace

Result<XmlExtractor> XmlExtractor::Create(std::string record_path,
                                          std::vector<FieldSpec> fields) {
  XmlExtractor extractor;
  SCD_ASSIGN_OR_RETURN(extractor.record_path_,
                       xml::XmlPath::Compile(record_path));
  for (const FieldSpec& field : fields) {
    SCD_ASSIGN_OR_RETURN(xml::XmlPath path, xml::XmlPath::Compile(field.path));
    extractor.field_paths_.push_back(std::move(path));
  }
  extractor.fields_ = std::move(fields);
  return extractor;
}

Result<std::vector<FeedRecord>> XmlExtractor::Extract(
    std::string_view document) const {
  SCD_ASSIGN_OR_RETURN(xml::XmlDocument parsed, xml::ParseXml(document));
  return ExtractFromDocument(parsed);
}

Result<std::vector<FeedRecord>> XmlExtractor::ExtractFromDocument(
    const xml::XmlDocument& document) const {
  if (document.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  const xml::XmlElement& root = *document.root();

  // Document-scope values are read once.
  std::vector<std::string> document_values(fields_.size());
  std::vector<bool> document_found(fields_.size(), false);
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].scope != FieldScope::kDocument) continue;
    auto value = field_paths_[i].SelectFirstValue(root);
    if (value.ok()) {
      document_values[i] = *std::move(value);
      document_found[i] = true;
    }
  }

  std::vector<FeedRecord> records;
  for (const xml::XmlElement* element : record_path_.SelectElements(root)) {
    FeedRecord record;
    for (size_t i = 0; i < fields_.size(); ++i) {
      const FieldSpec& field = fields_[i];
      if (field.scope == FieldScope::kDocument) {
        if (document_found[i]) {
          record.Set(field.name, document_values[i]);
        } else {
          SCD_RETURN_IF_ERROR(HandleMissing(field, &record));
        }
        continue;
      }
      auto value = field_paths_[i].SelectFirstValue(*element);
      if (value.ok()) {
        record.Set(field.name, *std::move(value));
      } else {
        SCD_RETURN_IF_ERROR(HandleMissing(field, &record));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

Result<JsonExtractor> JsonExtractor::Create(std::string records_path,
                                            std::vector<FieldSpec> fields) {
  if (records_path.empty()) {
    return Status::InvalidArgument("records path must not be empty");
  }
  JsonExtractor extractor;
  extractor.records_path_ = std::move(records_path);
  extractor.fields_ = std::move(fields);
  return extractor;
}

Result<std::vector<FeedRecord>> JsonExtractor::Extract(
    std::string_view document) const {
  SCD_ASSIGN_OR_RETURN(json::JsonValue parsed, json::ParseJson(document));
  return ExtractFromValue(parsed);
}

Result<std::vector<FeedRecord>> JsonExtractor::ExtractFromValue(
    const json::JsonValue& document) const {
  SCD_ASSIGN_OR_RETURN(json::JsonValue array_value,
                       document.GetPath(records_path_));
  const json::JsonArray* array = array_value.AsArray();
  if (array == nullptr) {
    return Status::InvalidArgument("records path '" + records_path_ +
                                   "' does not address an array");
  }

  std::vector<std::string> document_values(fields_.size());
  std::vector<bool> document_found(fields_.size(), false);
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].scope != FieldScope::kDocument) continue;
    auto value = document.GetPath(fields_[i].path);
    if (value.ok()) {
      document_values[i] = value->ToFieldString();
      document_found[i] = true;
    }
  }

  std::vector<FeedRecord> records;
  records.reserve(array->size());
  for (const json::JsonValue& element : *array) {
    FeedRecord record;
    for (size_t i = 0; i < fields_.size(); ++i) {
      const FieldSpec& field = fields_[i];
      if (field.scope == FieldScope::kDocument) {
        if (document_found[i]) {
          record.Set(field.name, document_values[i]);
        } else {
          SCD_RETURN_IF_ERROR(HandleMissing(field, &record));
        }
        continue;
      }
      auto value = element.GetPath(field.path);
      if (value.ok()) {
        record.Set(field.name, value->ToFieldString());
      } else {
        SCD_RETURN_IF_ERROR(HandleMissing(field, &record));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace scdwarf::etl
