/// \file extractor.h
/// \brief Declarative extraction of flat records from XML and JSON feed
/// documents. A spec names the repeating record element/array and, per
/// field, where to read it from — at record scope or document scope (shared
/// header values such as the snapshot timestamp).

#ifndef SCDWARF_ETL_EXTRACTOR_H_
#define SCDWARF_ETL_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "etl/record.h"
#include "json/json_parser.h"
#include "xml/xml_path.h"

namespace scdwarf::etl {

/// \brief Where a field's path is evaluated.
enum class FieldScope {
  kRecord,    ///< relative to each record element/object
  kDocument,  ///< relative to the document root; same value for all records
};

/// \brief One field to extract.
struct FieldSpec {
  std::string name;    ///< field name in the produced record
  std::string path;    ///< XmlPath expression (XML) or dotted path (JSON)
  FieldScope scope = FieldScope::kRecord;
  bool required = true;         ///< missing + required => record is an error
  std::string default_value;   ///< used when missing and not required
};

/// \brief Extracts records from XML documents.
class XmlExtractor {
 public:
  /// \p record_path selects the repeating record elements from the root
  /// (e.g. "station" under a <stations> root).
  static Result<XmlExtractor> Create(std::string record_path,
                                     std::vector<FieldSpec> fields);

  /// Parses \p document and extracts one record per matched element.
  Result<std::vector<FeedRecord>> Extract(std::string_view document) const;

  /// Extracts from an already-parsed document.
  Result<std::vector<FeedRecord>> ExtractFromDocument(
      const xml::XmlDocument& document) const;

 private:
  XmlExtractor() = default;

  xml::XmlPath record_path_{xml::XmlPath::Compile("x").ValueOrDie()};
  std::vector<FieldSpec> fields_;
  std::vector<xml::XmlPath> field_paths_;
};

/// \brief Extracts records from JSON documents.
class JsonExtractor {
 public:
  /// \p records_path is the dotted path to the array of record objects
  /// (e.g. "stations"); field paths are dotted paths inside each object.
  static Result<JsonExtractor> Create(std::string records_path,
                                      std::vector<FieldSpec> fields);

  Result<std::vector<FeedRecord>> Extract(std::string_view document) const;
  Result<std::vector<FeedRecord>> ExtractFromValue(
      const json::JsonValue& document) const;

 private:
  JsonExtractor() = default;

  std::string records_path_;
  std::vector<FieldSpec> fields_;
};

}  // namespace scdwarf::etl

#endif  // SCDWARF_ETL_EXTRACTOR_H_
