/// \file pipeline.h
/// \brief The end-to-end cube construction pipeline: feed documents in
/// (XML or JSON — the paper's "canonical approach" treats both alike),
/// extracted records through the tuple mapper into a DwarfBuilder, DWARF
/// cube out. Includes the stock 8-dimension bikes pipeline used by the
/// evaluation.

#ifndef SCDWARF_ETL_PIPELINE_H_
#define SCDWARF_ETL_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>

#include "dwarf/builder.h"
#include "etl/extractor.h"
#include "etl/tuple_mapper.h"

namespace scdwarf::etl {

/// \brief Pipeline counters.
struct PipelineStats {
  uint64_t documents = 0;
  uint64_t records = 0;
  uint64_t bytes = 0;          ///< raw document bytes consumed
  uint64_t skipped_records = 0;  ///< records dropped by a non-strict pipeline
};

/// \brief Per-stage wall-clock breakdown of one Finish() call.
struct PipelineProfile {
  double drain_ms = 0;       ///< waiting for queued documents (parallel only)
  double dict_merge_ms = 0;  ///< dictionary merge + shard remap (parallel only)
  dwarf::BuildProfile build;  ///< sort + construct inside the builder
};

/// \brief Drives extraction + mapping + cube construction.
///
/// A pipeline accepts either format as long as the corresponding extractor
/// was configured; a single cube can fuse XML and JSON feeds of the same
/// logical schema.
class CubePipeline {
 public:
  /// \p strict controls malformed-record policy: strict pipelines fail the
  /// document, lenient ones count and skip the record.
  CubePipeline(dwarf::CubeSchema schema, TupleMapper mapper,
               std::optional<XmlExtractor> xml_extractor,
               std::optional<JsonExtractor> json_extractor,
               bool strict = true,
               dwarf::BuilderOptions builder_options = {});

  /// Consumes one XML document.
  Status ConsumeXml(std::string_view document);

  /// Consumes one JSON document.
  Status ConsumeJson(std::string_view document);

  /// Finishes construction. The pipeline must not be reused afterwards.
  /// When \p profile is non-null it receives the stage timings.
  Result<dwarf::DwarfCube> Finish(PipelineProfile* profile = nullptr) &&;

  const PipelineStats& stats() const { return stats_; }
  size_t num_tuples() const { return builder_.num_tuples(); }

 private:
  Status ConsumeRecords(const std::vector<FeedRecord>& records);

  TupleMapper mapper_;
  std::optional<XmlExtractor> xml_extractor_;
  std::optional<JsonExtractor> json_extractor_;
  bool strict_;
  dwarf::DwarfBuilder builder_;
  PipelineStats stats_;
};

/// \brief The evaluation's 8-dimension bikes cube schema:
/// Month > Date > Weekday > Hour > Area > Station > Status > DockGroup,
/// measure SUM(available_bikes). Dimension order follows DWARF practice:
/// low-cardinality dimensions first maximize prefix sharing.
dwarf::CubeSchema MakeBikesCubeSchema();

/// \brief Pipeline for the XML bikes feed (bike_feed.h) over
/// MakeBikesCubeSchema().
Result<CubePipeline> MakeBikesXmlPipeline(
    dwarf::BuilderOptions builder_options = {});

/// \brief Same pipeline reading the JSON variant of the feed.
Result<CubePipeline> MakeBikesJsonPipeline(
    dwarf::BuilderOptions builder_options = {});

/// \brief The extraction field specs of the bikes feed (shared by the serial
/// and parallel bikes pipelines).
std::vector<FieldSpec> BikesFieldSpecs();

/// \brief The record-field -> dimension mappings of the bikes cube.
std::vector<DimensionMapping> BikesDimensionMappings();

}  // namespace scdwarf::etl

#endif  // SCDWARF_ETL_PIPELINE_H_
