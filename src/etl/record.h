/// \file record.h
/// \brief Flat field records produced by the feed extractors — the common
/// shape between XML and JSON inputs, from which cube tuples are mapped.

#ifndef SCDWARF_ETL_RECORD_H_
#define SCDWARF_ETL_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scdwarf::etl {

/// \brief One extracted record: ordered (field, value) pairs. Order follows
/// the extraction spec; duplicate field names keep the first value.
class FeedRecord {
 public:
  void Set(std::string name, std::string value) {
    if (Find(name) == nullptr) {
      fields_.emplace_back(std::move(name), std::move(value));
    }
  }

  /// Field value or NotFound.
  Result<std::string> Get(std::string_view name) const {
    const std::string* value = Find(name);
    if (value == nullptr) {
      return Status::NotFound("record has no field '" + std::string(name) + "'");
    }
    return *value;
  }

  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }
  size_t size() const { return fields_.size(); }

 private:
  const std::string* Find(std::string_view name) const {
    for (const auto& [field_name, value] : fields_) {
      if (field_name == name) return &value;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace scdwarf::etl

#endif  // SCDWARF_ETL_RECORD_H_
