#include "etl/tuple_mapper.h"

#include "common/civil_time.h"
#include "common/strings.h"

namespace scdwarf::etl {

const char* TransformName(Transform transform) {
  switch (transform) {
    case Transform::kIdentity: return "identity";
    case Transform::kMonthName: return "month";
    case Transform::kDate: return "date";
    case Transform::kWeekday: return "weekday";
    case Transform::kHour: return "hour";
    case Transform::kBucket10: return "bucket10";
    case Transform::kBucket100: return "bucket100";
  }
  return "?";
}

namespace {

Result<std::string> BucketValue(const std::string& value, int64_t width) {
  SCD_ASSIGN_OR_RETURN(int64_t number, ParseInt64(value));
  int64_t lo = (number >= 0 ? number / width : (number - width + 1) / width) *
               width;
  return std::to_string(lo) + "-" + std::to_string(lo + width - 1);
}

}  // namespace

Result<std::string> ApplyTransform(Transform transform,
                                   const std::string& value) {
  switch (transform) {
    case Transform::kIdentity:
      return value;
    case Transform::kMonthName: {
      SCD_ASSIGN_OR_RETURN(CivilTime time, ParseIso(value));
      return std::string(MonthName(time.month));
    }
    case Transform::kDate: {
      SCD_ASSIGN_OR_RETURN(CivilTime time, ParseIso(value));
      return FormatIsoDate(time);
    }
    case Transform::kWeekday: {
      SCD_ASSIGN_OR_RETURN(CivilTime time, ParseIso(value));
      return std::string(WeekdayName(WeekdayIndex(time.year, time.month,
                                                  time.day)));
    }
    case Transform::kHour: {
      SCD_ASSIGN_OR_RETURN(CivilTime time, ParseIso(value));
      return StrFormat("%02d", time.hour);
    }
    case Transform::kBucket10:
      return BucketValue(value, 10);
    case Transform::kBucket100:
      return BucketValue(value, 100);
  }
  return Status::Internal("unhandled transform");
}

Result<TupleMapper> TupleMapper::Create(const dwarf::CubeSchema& schema,
                                        std::vector<DimensionMapping> dimensions,
                                        std::string measure_field) {
  SCD_RETURN_IF_ERROR(schema.Validate());
  if (dimensions.size() != schema.num_dimensions()) {
    return Status::InvalidArgument(
        "mapping has " + std::to_string(dimensions.size()) +
        " dimensions, schema has " + std::to_string(schema.num_dimensions()));
  }
  for (const DimensionMapping& dimension : dimensions) {
    if (dimension.field.empty()) {
      return Status::InvalidArgument("dimension mapping with empty field");
    }
  }
  if (measure_field.empty()) {
    return Status::InvalidArgument("measure field must not be empty");
  }
  TupleMapper mapper;
  mapper.dimensions_ = std::move(dimensions);
  mapper.measure_field_ = std::move(measure_field);
  return mapper;
}

Result<std::pair<std::vector<std::string>, dwarf::Measure>> TupleMapper::Map(
    const FeedRecord& record) const {
  std::vector<std::string> keys;
  keys.reserve(dimensions_.size());
  for (const DimensionMapping& dimension : dimensions_) {
    SCD_ASSIGN_OR_RETURN(std::string raw, record.Get(dimension.field));
    auto transformed = ApplyTransform(dimension.transform, raw);
    if (!transformed.ok()) {
      return transformed.status().WithContext("field '" + dimension.field +
                                              "'");
    }
    keys.push_back(*std::move(transformed));
  }
  SCD_ASSIGN_OR_RETURN(std::string measure_raw, record.Get(measure_field_));
  auto measure = ParseInt64(measure_raw);
  if (!measure.ok()) {
    return measure.status().WithContext("measure field '" + measure_field_ +
                                        "'");
  }
  return std::make_pair(std::move(keys), *measure);
}

}  // namespace scdwarf::etl
