/// \file tuple_mapper.h
/// \brief Maps extracted records to cube tuples `(d_1..d_n, measure)`:
/// per-dimension field references with optional derivation transforms
/// (calendar dimensions from ISO timestamps, numeric bucketing).

#ifndef SCDWARF_ETL_TUPLE_MAPPER_H_
#define SCDWARF_ETL_TUPLE_MAPPER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/cube_schema.h"
#include "etl/record.h"

namespace scdwarf::etl {

/// \brief Derivation applied to a field value before dictionary encoding.
enum class Transform {
  kIdentity,   ///< use the field string as-is
  kMonthName,  ///< ISO timestamp -> "January" ... "December"
  kDate,       ///< ISO timestamp -> "2016-01-05"
  kWeekday,    ///< ISO timestamp -> "Monday" ... "Sunday"
  kHour,       ///< ISO timestamp -> "00" ... "23"
  kBucket10,   ///< integer -> decade bucket "20-29"
  kBucket100,  ///< integer -> century bucket "100-199"
};

const char* TransformName(Transform transform);

/// \brief Applies \p transform to \p value.
Result<std::string> ApplyTransform(Transform transform, const std::string& value);

/// \brief One cube dimension: which record field feeds it and how.
struct DimensionMapping {
  std::string field;
  Transform transform = Transform::kIdentity;

  DimensionMapping() = default;
  DimensionMapping(std::string field_in,
                   Transform transform_in = Transform::kIdentity)
      : field(std::move(field_in)), transform(transform_in) {}
};

/// \brief Record-to-tuple mapping: ordered dimension mappings plus the
/// measure field (parsed as an integer).
class TupleMapper {
 public:
  /// \p dimensions must match \p schema's dimension count.
  static Result<TupleMapper> Create(const dwarf::CubeSchema& schema,
                                    std::vector<DimensionMapping> dimensions,
                                    std::string measure_field);

  /// Maps one record. Returns the decoded string keys + measure.
  Result<std::pair<std::vector<std::string>, dwarf::Measure>> Map(
      const FeedRecord& record) const;

  const std::vector<DimensionMapping>& dimensions() const { return dimensions_; }
  const std::string& measure_field() const { return measure_field_; }

 private:
  TupleMapper() = default;

  std::vector<DimensionMapping> dimensions_;
  std::string measure_field_;
};

}  // namespace scdwarf::etl

#endif  // SCDWARF_ETL_TUPLE_MAPPER_H_
