#include "etl/parallel_pipeline.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace scdwarf::etl {

namespace {

metrics::Counter* ParallelDocumentsCounter(bool is_json) {
  static metrics::Counter* const xml = metrics::GlobalRegistry().GetCounter(
      "etl_documents_total", {{"format", "xml"}},
      "feed documents consumed by the ETL front-end");
  static metrics::Counter* const json = metrics::GlobalRegistry().GetCounter(
      "etl_documents_total", {{"format", "json"}},
      "feed documents consumed by the ETL front-end");
  return is_json ? json : xml;
}

metrics::Counter* ParallelBytesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_bytes_total", {}, "raw feed bytes consumed");
  return counter;
}

metrics::Counter* ParallelRecordsCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_records_total", {}, "feed records mapped into cube tuples");
  return counter;
}

metrics::Counter* ParallelSkippedCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_skipped_records_total", {},
      "malformed records dropped by non-strict pipelines");
  return counter;
}

FixedBucketHistogram* ParallelParseHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "etl_parse_us", {},
          "per-document extract + map + intern latency (us)");
  return hist;
}

FixedBucketHistogram* DrainHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "etl_drain_us", {},
          "Finish()-time wait for queued documents to drain (us)");
  return hist;
}

FixedBucketHistogram* DictMergeHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "etl_dict_merge_us", {},
          "deterministic dictionary merge + tuple remap time (us)");
  return hist;
}

}  // namespace

/// Shared worker state, heap-allocated so the pipeline object stays movable
/// while worker threads hold a stable pointer.
struct ParallelCubePipeline::State {
  State(dwarf::CubeSchema schema_in, TupleMapper mapper_in,
        std::optional<XmlExtractor> xml_in, std::optional<JsonExtractor> json_in,
        bool strict_in, dwarf::BuilderOptions builder_options_in,
        size_t max_queue_in)
      : schema(std::move(schema_in)),
        mapper(std::move(mapper_in)),
        xml_extractor(std::move(xml_in)),
        json_extractor(std::move(json_in)),
        strict(strict_in),
        builder_options(builder_options_in),
        max_queue(max_queue_in) {}

  // Immutable configuration (safe to share across workers: extraction and
  // mapping are const and allocation-free of shared state).
  dwarf::CubeSchema schema;
  TupleMapper mapper;
  std::optional<XmlExtractor> xml_extractor;
  std::optional<JsonExtractor> json_extractor;
  bool strict = true;
  dwarf::BuilderOptions builder_options;
  size_t max_queue = 0;

  struct DocTask {
    uint64_t seq = 0;
    bool is_json = false;
    std::string text;
  };

  /// Everything one document contributes: tuples keyed by document-local
  /// dictionary ids plus the local id -> string tables used for the merge.
  struct DocResult {
    Status status = Status::OK();
    std::vector<std::vector<std::string>> dict_values;  ///< per dim
    std::vector<dwarf::Tuple> tuples;  ///< keys are document-local ids
    uint64_t records = 0;
    uint64_t skipped = 0;
  };

  std::mutex mu;
  std::condition_variable not_empty;
  std::condition_variable not_full;
  std::deque<DocTask> queue;
  bool closed = false;
  uint64_t documents = 0;
  uint64_t bytes = 0;

  std::mutex results_mu;
  std::vector<DocResult> results;  ///< indexed by document sequence number

  /// Filled by Finish(); documents/bytes mirror the live counters.
  PipelineStats final_stats;
  bool finished = false;

  void WorkerLoop() {
    for (;;) {
      DocTask task;
      {
        std::unique_lock<std::mutex> lock(mu);
        not_empty.wait(lock, [this] { return closed || !queue.empty(); });
        if (queue.empty()) return;  // closed and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      not_full.notify_one();
      DocResult result = ProcessDocument(task);
      {
        // Workers grow the results vector themselves: a task can be picked
        // up the instant it is queued, before the producer could size it.
        std::lock_guard<std::mutex> lock(results_mu);
        if (results.size() <= task.seq) results.resize(task.seq + 1);
        results[task.seq] = std::move(result);
      }
    }
  }

  DocResult ProcessDocument(const DocTask& task) {
    trace::ScopedSpan span("etl.parse");
    Stopwatch watch;
    DocResult out;
    Result<std::vector<FeedRecord>> records =
        task.is_json ? json_extractor->Extract(task.text)
                     : xml_extractor->Extract(task.text);
    if (!records.ok()) {
      // Malformed documents fail the pipeline regardless of the record
      // policy, matching CubePipeline::Consume*.
      out.status = records.status();
      return out;
    }
    size_t dims = schema.num_dimensions();
    out.dict_values.resize(dims);
    std::vector<std::unordered_map<std::string, dwarf::DimKey>> local(dims);
    for (const FeedRecord& record : *records) {
      auto mapped = mapper.Map(record);
      if (!mapped.ok()) {
        if (strict) {
          out.status = mapped.status();
          return out;
        }
        ++out.skipped;
        continue;
      }
      dwarf::Tuple tuple;
      tuple.keys.reserve(dims);
      for (size_t dim = 0; dim < dims; ++dim) {
        const std::string& key = mapped->first[dim];
        auto [it, inserted] = local[dim].emplace(
            key, static_cast<dwarf::DimKey>(out.dict_values[dim].size()));
        if (inserted) out.dict_values[dim].push_back(key);
        tuple.keys.push_back(it->second);
      }
      tuple.measure = mapped->second;
      out.tuples.push_back(std::move(tuple));
      ++out.records;
    }
    ParallelDocumentsCounter(task.is_json)->Increment();
    ParallelBytesCounter()->Increment(task.text.size());
    ParallelRecordsCounter()->Increment(out.records);
    ParallelSkippedCounter()->Increment(out.skipped);
    ParallelParseHistogram()->Record(watch.ElapsedMicros());
    return out;
  }
};

ParallelCubePipeline::ParallelCubePipeline(
    dwarf::CubeSchema schema, TupleMapper mapper,
    std::optional<XmlExtractor> xml_extractor,
    std::optional<JsonExtractor> json_extractor, bool strict,
    dwarf::BuilderOptions builder_options,
    ParallelPipelineOptions parallel_options) {
  int threads = ResolveThreadCount(parallel_options.num_threads);
  if (threads <= 1) {
    serial_ = std::make_unique<CubePipeline>(
        std::move(schema), std::move(mapper), std::move(xml_extractor),
        std::move(json_extractor), strict, builder_options);
    return;
  }
  size_t max_queue = parallel_options.max_queued_documents > 0
                         ? parallel_options.max_queued_documents
                         : static_cast<size_t>(threads) * 4;
  state_ = std::make_unique<State>(
      std::move(schema), std::move(mapper), std::move(xml_extractor),
      std::move(json_extractor), strict, builder_options, max_queue);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([state = state_.get()] { state->WorkerLoop(); });
  }
}

ParallelCubePipeline::~ParallelCubePipeline() { JoinWorkers(); }

void ParallelCubePipeline::JoinWorkers() {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
  }
  state_->not_empty.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int ParallelCubePipeline::num_threads() const {
  return serial_ != nullptr ? 1 : static_cast<int>(workers_.size());
}

Status ParallelCubePipeline::ConsumeXml(std::string document) {
  if (serial_ != nullptr) return serial_->ConsumeXml(document);
  if (!state_->xml_extractor.has_value()) {
    return Status::FailedPrecondition("pipeline has no XML extractor");
  }
  return Enqueue(/*is_json=*/false, std::move(document));
}

Status ParallelCubePipeline::ConsumeJson(std::string document) {
  if (serial_ != nullptr) return serial_->ConsumeJson(document);
  if (!state_->json_extractor.has_value()) {
    return Status::FailedPrecondition("pipeline has no JSON extractor");
  }
  return Enqueue(/*is_json=*/true, std::move(document));
}

Status ParallelCubePipeline::Enqueue(bool is_json, std::string document) {
  uint64_t seq;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->closed) {
      return Status::FailedPrecondition("pipeline already finished");
    }
    state_->not_full.wait(
        lock, [this] { return state_->queue.size() < state_->max_queue; });
    seq = state_->documents++;
    state_->bytes += document.size();
    state_->queue.push_back({seq, is_json, std::move(document)});
  }
  state_->not_empty.notify_one();
  return Status::OK();
}

PipelineStats ParallelCubePipeline::stats() const {
  if (serial_ != nullptr) return serial_->stats();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->finished) return state_->final_stats;
  PipelineStats stats;
  stats.documents = state_->documents;
  stats.bytes = state_->bytes;
  return stats;
}

Result<dwarf::DwarfCube> ParallelCubePipeline::Finish(
    PipelineProfile* profile) && {
  if (serial_ != nullptr) return std::move(*serial_).Finish(profile);

  Stopwatch watch;
  {
    trace::ScopedSpan span("etl.drain");
    JoinWorkers();
  }
  DrainHistogram()->Record(watch.ElapsedMicros());
  if (profile != nullptr) profile->drain_ms = watch.ElapsedMillis();
  watch.Restart();

  dwarf::DwarfBuilder builder(state_->schema, state_->builder_options);
  {
    trace::ScopedSpan merge_span("etl.dict_merge");

    // The earliest failing document decides the pipeline's fate — the same
    // error the serial pipeline would have returned from its Consume* call.
    for (const State::DocResult& result : state_->results) {
      SCD_RETURN_IF_ERROR(result.status);
    }

    // Dictionary merge: global ids are assigned in document order, then in
    // per-document first-seen order — exactly the order the serial pipeline's
    // Encode calls would have produced. Tuple keys are remapped in place.
    size_t dims = state_->schema.num_dimensions();
    std::vector<dwarf::Dictionary> dictionaries;
    dictionaries.reserve(dims);
    for (const dwarf::DimensionSpec& dim : state_->schema.dimensions()) {
      dictionaries.emplace_back(dim.name);
    }
    std::vector<std::vector<dwarf::DimKey>> remap(dims);
    for (State::DocResult& result : state_->results) {
      for (size_t dim = 0; dim < dims; ++dim) {
        remap[dim].clear();
        remap[dim].reserve(result.dict_values[dim].size());
        for (const std::string& value : result.dict_values[dim]) {
          remap[dim].push_back(dictionaries[dim].Encode(value));
        }
      }
      for (dwarf::Tuple& tuple : result.tuples) {
        for (size_t dim = 0; dim < dims; ++dim) {
          tuple.keys[dim] = remap[dim][tuple.keys[dim]];
        }
      }
    }

    SCD_RETURN_IF_ERROR(builder.ImportDictionaries(std::move(dictionaries)));
    PipelineStats stats;
    stats.documents = state_->documents;
    stats.bytes = state_->bytes;
    for (State::DocResult& result : state_->results) {
      for (dwarf::Tuple& tuple : result.tuples) {
        SCD_RETURN_IF_ERROR(builder.AddEncodedTuple(std::move(tuple)));
      }
      stats.records += result.records;
      stats.skipped_records += result.skipped;
      result.tuples.clear();
      result.tuples.shrink_to_fit();
    }
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->final_stats = stats;
      state_->finished = true;
    }
  }
  DictMergeHistogram()->Record(watch.ElapsedMicros());
  if (profile != nullptr) profile->dict_merge_ms = watch.ElapsedMillis();

  return std::move(builder).Build(profile == nullptr ? nullptr
                                                     : &profile->build);
}

Result<ParallelCubePipeline> MakeBikesXmlParallelPipeline(
    dwarf::BuilderOptions builder_options,
    ParallelPipelineOptions parallel_options) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  SCD_ASSIGN_OR_RETURN(
      TupleMapper mapper,
      TupleMapper::Create(schema, BikesDimensionMappings(), "available_bikes"));
  SCD_ASSIGN_OR_RETURN(XmlExtractor extractor,
                       XmlExtractor::Create("station", BikesFieldSpecs()));
  return ParallelCubePipeline(std::move(schema), std::move(mapper),
                              std::move(extractor), std::nullopt,
                              /*strict=*/true, builder_options,
                              parallel_options);
}

Result<ParallelCubePipeline> MakeBikesJsonParallelPipeline(
    dwarf::BuilderOptions builder_options,
    ParallelPipelineOptions parallel_options) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  SCD_ASSIGN_OR_RETURN(
      TupleMapper mapper,
      TupleMapper::Create(schema, BikesDimensionMappings(), "available_bikes"));
  SCD_ASSIGN_OR_RETURN(JsonExtractor extractor,
                       JsonExtractor::Create("stations", BikesFieldSpecs()));
  return ParallelCubePipeline(std::move(schema), std::move(mapper),
                              std::nullopt, std::move(extractor),
                              /*strict=*/true, builder_options,
                              parallel_options);
}

}  // namespace scdwarf::etl
