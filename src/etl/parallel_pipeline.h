/// \file parallel_pipeline.h
/// \brief Multi-core front-end for cube construction: incoming XML/JSON
/// documents fan out to worker threads, each running its own extractor +
/// tuple mapper into a per-document tuple shard with local key interning.
/// Finish() merges the shards deterministically — local key ids are remapped
/// into global dictionaries in document order — and hands the tuples to the
/// DwarfBuilder, whose Build()-time sort is itself parallel.
///
/// Determinism guarantee: for the same document sequence the produced cube
/// is identical to CubePipeline's, for any thread count. Dictionary ids are
/// assigned in document (not completion) order, the tuple sequence handed to
/// the builder matches the serial one, and the builder's parallel sort is
/// order-insensitive (total order on keys, commutative aggregates).

#ifndef SCDWARF_ETL_PARALLEL_PIPELINE_H_
#define SCDWARF_ETL_PARALLEL_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "etl/pipeline.h"

namespace scdwarf::etl {

/// \brief Threading knobs of a ParallelCubePipeline.
struct ParallelPipelineOptions {
  /// Worker threads: 0 = auto (SCDWARF_THREADS env override, else
  /// hardware_concurrency). A resolved count of 1 degrades to the serial
  /// CubePipeline — exact single-threaded semantics, no queue, no threads.
  int num_threads = 0;

  /// Backpressure bound on queued documents; Consume* blocks when the queue
  /// is full. 0 = four documents per worker.
  size_t max_queued_documents = 0;
};

/// \brief Thread-parallel drop-in for CubePipeline.
///
/// Differences from the serial pipeline, both consequences of asynchrony:
/// Consume* only fails fast on configuration errors (missing extractor,
/// already finished); malformed documents and strict-mode record failures
/// surface at Finish() as the error of the *earliest* failing document, and
/// stats() is complete only after Finish().
class ParallelCubePipeline {
 public:
  /// Parameters mirror CubePipeline; \p parallel_options adds threading.
  ParallelCubePipeline(dwarf::CubeSchema schema, TupleMapper mapper,
                       std::optional<XmlExtractor> xml_extractor,
                       std::optional<JsonExtractor> json_extractor,
                       bool strict = true,
                       dwarf::BuilderOptions builder_options = {},
                       ParallelPipelineOptions parallel_options = {});
  ~ParallelCubePipeline();

  ParallelCubePipeline(ParallelCubePipeline&&) = default;
  ParallelCubePipeline& operator=(ParallelCubePipeline&&) = default;

  /// Enqueues one XML document (blocking when the queue is full).
  Status ConsumeXml(std::string document);

  /// Enqueues one JSON document.
  Status ConsumeJson(std::string document);

  /// Drains the workers, merges the shards and constructs the cube. The
  /// pipeline must not be reused afterwards.
  Result<dwarf::DwarfCube> Finish(PipelineProfile* profile = nullptr) &&;

  /// Counters. documents/bytes are live; records/skipped_records are
  /// complete once Finish() returns (workers may still be mapping before).
  PipelineStats stats() const;

  /// Resolved worker count (1 = serial mode).
  int num_threads() const;

 private:
  struct State;

  Status Enqueue(bool is_json, std::string document);
  void JoinWorkers();

  /// Serial fallback when the resolved thread count is 1.
  std::unique_ptr<CubePipeline> serial_;
  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// \brief Parallel analogue of MakeBikesXmlPipeline.
Result<ParallelCubePipeline> MakeBikesXmlParallelPipeline(
    dwarf::BuilderOptions builder_options = {},
    ParallelPipelineOptions parallel_options = {});

/// \brief Parallel analogue of MakeBikesJsonPipeline.
Result<ParallelCubePipeline> MakeBikesJsonParallelPipeline(
    dwarf::BuilderOptions builder_options = {},
    ParallelPipelineOptions parallel_options = {});

}  // namespace scdwarf::etl

#endif  // SCDWARF_ETL_PARALLEL_PIPELINE_H_
