#include "etl/pipeline.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace scdwarf::etl {

namespace {

metrics::Counter* DocumentsCounter(bool is_json) {
  static metrics::Counter* const xml = metrics::GlobalRegistry().GetCounter(
      "etl_documents_total", {{"format", "xml"}},
      "feed documents consumed by the ETL front-end");
  static metrics::Counter* const json = metrics::GlobalRegistry().GetCounter(
      "etl_documents_total", {{"format", "json"}},
      "feed documents consumed by the ETL front-end");
  return is_json ? json : xml;
}

metrics::Counter* BytesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_bytes_total", {}, "raw feed bytes consumed");
  return counter;
}

metrics::Counter* RecordsCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_records_total", {}, "feed records mapped into cube tuples");
  return counter;
}

metrics::Counter* SkippedRecordsCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "etl_skipped_records_total", {},
      "malformed records dropped by non-strict pipelines");
  return counter;
}

FixedBucketHistogram* ParseHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "etl_parse_us", {},
          "per-document extract + map + intern latency (us)");
  return hist;
}

}  // namespace

CubePipeline::CubePipeline(dwarf::CubeSchema schema, TupleMapper mapper,
                           std::optional<XmlExtractor> xml_extractor,
                           std::optional<JsonExtractor> json_extractor,
                           bool strict, dwarf::BuilderOptions builder_options)
    : mapper_(std::move(mapper)),
      xml_extractor_(std::move(xml_extractor)),
      json_extractor_(std::move(json_extractor)),
      strict_(strict),
      builder_(std::move(schema), builder_options) {}

Status CubePipeline::ConsumeRecords(const std::vector<FeedRecord>& records) {
  for (const FeedRecord& record : records) {
    auto mapped = mapper_.Map(record);
    if (!mapped.ok()) {
      if (strict_) return mapped.status();
      ++stats_.skipped_records;
      SkippedRecordsCounter()->Increment();
      continue;
    }
    SCD_RETURN_IF_ERROR(builder_.AddTuple(mapped->first, mapped->second));
    ++stats_.records;
  }
  RecordsCounter()->Increment(records.size());
  return Status::OK();
}

Status CubePipeline::ConsumeXml(std::string_view document) {
  if (!xml_extractor_.has_value()) {
    return Status::FailedPrecondition("pipeline has no XML extractor");
  }
  trace::ScopedSpan span("etl.parse");
  Stopwatch watch;
  SCD_ASSIGN_OR_RETURN(std::vector<FeedRecord> records,
                       xml_extractor_->Extract(document));
  ++stats_.documents;
  stats_.bytes += document.size();
  DocumentsCounter(/*is_json=*/false)->Increment();
  BytesCounter()->Increment(document.size());
  Status status = ConsumeRecords(records);
  ParseHistogram()->Record(watch.ElapsedMicros());
  return status;
}

Status CubePipeline::ConsumeJson(std::string_view document) {
  if (!json_extractor_.has_value()) {
    return Status::FailedPrecondition("pipeline has no JSON extractor");
  }
  trace::ScopedSpan span("etl.parse");
  Stopwatch watch;
  SCD_ASSIGN_OR_RETURN(std::vector<FeedRecord> records,
                       json_extractor_->Extract(document));
  ++stats_.documents;
  stats_.bytes += document.size();
  DocumentsCounter(/*is_json=*/true)->Increment();
  BytesCounter()->Increment(document.size());
  Status status = ConsumeRecords(records);
  ParseHistogram()->Record(watch.ElapsedMicros());
  return status;
}

Result<dwarf::DwarfCube> CubePipeline::Finish(PipelineProfile* profile) && {
  return std::move(builder_).Build(profile == nullptr ? nullptr
                                                      : &profile->build);
}

dwarf::CubeSchema MakeBikesCubeSchema() {
  return dwarf::CubeSchema(
      "bikes",
      {
          // Date (ISO "2013-07-01") and Hour ("%02d") are ordered: their
          // lexicographic value order is chronological. Month stays
          // unordered — its values are month *names* ("July" < "June"
          // lexicographically, which is not the calendar order).
          dwarf::DimensionSpec("Month"),
          dwarf::DimensionSpec("Date", "", /*ordered_in=*/true),
          dwarf::DimensionSpec("Weekday"),
          dwarf::DimensionSpec("Hour", "", /*ordered_in=*/true),
          dwarf::DimensionSpec("Area"),
          dwarf::DimensionSpec("Station", "Station"),
          dwarf::DimensionSpec("Status"),
          dwarf::DimensionSpec("DockGroup"),
      },
      "available_bikes", dwarf::AggFn::kSum);
}

std::vector<FieldSpec> BikesFieldSpecs() {
  return {
      {"name", "name", FieldScope::kRecord, true, ""},
      {"area", "area", FieldScope::kRecord, true, ""},
      {"bike_stands", "bike_stands", FieldScope::kRecord, true, ""},
      {"available_bikes", "available_bikes", FieldScope::kRecord, true, ""},
      {"status", "status", FieldScope::kRecord, false, "UNKNOWN"},
      {"last_update", "last_update", FieldScope::kRecord, true, ""},
  };
}

std::vector<DimensionMapping> BikesDimensionMappings() {
  return {
      {"last_update", Transform::kMonthName},
      {"last_update", Transform::kDate},
      {"last_update", Transform::kWeekday},
      {"last_update", Transform::kHour},
      {"area", Transform::kIdentity},
      {"name", Transform::kIdentity},
      {"status", Transform::kIdentity},
      {"bike_stands", Transform::kBucket10},
  };
}

Result<CubePipeline> MakeBikesXmlPipeline(
    dwarf::BuilderOptions builder_options) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  SCD_ASSIGN_OR_RETURN(
      TupleMapper mapper,
      TupleMapper::Create(schema, BikesDimensionMappings(), "available_bikes"));
  SCD_ASSIGN_OR_RETURN(XmlExtractor extractor,
                       XmlExtractor::Create("station", BikesFieldSpecs()));
  return CubePipeline(std::move(schema), std::move(mapper), std::move(extractor),
                      std::nullopt, /*strict=*/true, builder_options);
}

Result<CubePipeline> MakeBikesJsonPipeline(
    dwarf::BuilderOptions builder_options) {
  dwarf::CubeSchema schema = MakeBikesCubeSchema();
  SCD_ASSIGN_OR_RETURN(
      TupleMapper mapper,
      TupleMapper::Create(schema, BikesDimensionMappings(), "available_bikes"));
  SCD_ASSIGN_OR_RETURN(JsonExtractor extractor,
                       JsonExtractor::Create("stations", BikesFieldSpecs()));
  return CubePipeline(std::move(schema), std::move(mapper), std::nullopt,
                      std::move(extractor), /*strict=*/true, builder_options);
}

}  // namespace scdwarf::etl
