#include "clustered/flat_file.h"

#include <algorithm>
#include <cstdlib>

#include "common/bytes.h"
#include "dwarf/traversal.h"

namespace scdwarf::clustered {

namespace {

constexpr uint32_t kMagic = 0x46574453;  // "SDWF"
constexpr uint8_t kVersion = 1;

using dwarf::DwarfCell;
using dwarf::DwarfCube;
using dwarf::DwarfNode;
using dwarf::Measure;
using dwarf::NodeId;

/// Serializes one node with node-indexed children (file ids, not offsets).
void EncodeNode(const DwarfCube& cube, const dwarf::NodeView& node,
                const std::vector<uint32_t>& file_ids, ByteWriter* out) {
  bool leaf = cube.IsLeafLevel(node.level);
  out->PutVarint(node.level);
  out->PutVarint(node.cells.size());
  for (const DwarfCell& cell : node.cells) {
    out->PutVarint(cell.key);
    if (leaf) {
      out->PutSignedVarint(cell.measure);
    } else {
      out->PutVarint(file_ids[cell.child]);
    }
  }
  if (leaf) {
    out->PutSignedVarint(node.all_measure);
  } else {
    out->PutVarint(file_ids[node.all_child]);
  }
}

}  // namespace

const char* ClusterLayoutName(ClusterLayout layout) {
  switch (layout) {
    case ClusterLayout::kHierarchical:
      return "hierarchical";
    case ClusterLayout::kRecursive:
      return "recursive";
  }
  return "?";
}

Status WriteDwarfFile(const DwarfCube& cube, const std::string& path,
                      ClusterLayout layout) {
  // Layout order decides file ids.
  std::vector<NodeId> order = dwarf::CollectReachableNodes(
      cube, layout == ClusterLayout::kHierarchical
                ? dwarf::TraversalOrder::kBreadthFirst
                : dwarf::TraversalOrder::kDepthFirst);
  std::vector<uint32_t> file_ids(cube.num_nodes(), 0);
  for (uint32_t i = 0; i < order.size(); ++i) file_ids[order[i]] = i;

  // Header.
  ByteWriter header;
  header.PutU32(kMagic);
  header.PutU8(kVersion);
  header.PutU8(static_cast<uint8_t>(layout));
  header.PutString(dwarf::AggFnName(cube.agg()));
  header.PutString(cube.schema().name());
  header.PutString(cube.schema().measure_name());
  header.PutVarint(cube.num_dimensions());
  for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
    header.PutString(cube.schema().dimensions()[dim].name);
    header.PutString(cube.schema().dimensions()[dim].dimension_table);
    const dwarf::Dictionary& dictionary = cube.dictionary(dim);
    header.PutVarint(dictionary.size());
    for (dwarf::DimKey id = 0; id < dictionary.size(); ++id) {
      header.PutString(dictionary.DecodeUnchecked(id));
    }
  }
  header.PutU8(cube.empty() ? 1 : 0);
  header.PutVarint(order.size());
  if (!cube.empty()) {
    header.PutU32(file_ids[cube.root()]);
  } else {
    header.PutU32(0);
  }

  // Node payloads.
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(order.size());
  for (NodeId arena_id : order) {
    ByteWriter node_bytes;
    EncodeNode(cube, cube.node(arena_id), file_ids, &node_bytes);
    payloads.push_back(node_bytes.TakeBuffer());
  }

  // Directory: fixed-width (offset u64, size u32) per node so FlatFileCube
  // can seek directly.
  uint64_t directory_bytes = payloads.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  uint64_t payload_start = header.size() + directory_bytes;
  ByteWriter directory;
  uint64_t offset = payload_start;
  for (const auto& payload : payloads) {
    directory.PutU64(offset);
    directory.PutU32(static_cast<uint32_t>(payload.size()));
    offset += payload.size();
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  auto write_all = [&out](const std::vector<uint8_t>& bytes) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  write_all(header.data());
  write_all(directory.data());
  for (const auto& payload : payloads) write_all(payload);
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

namespace {

/// Shared header decode used by both ReadDwarfFile and FlatFileCube::Open.
struct FileHeader {
  ClusterLayout layout;
  dwarf::AggFn agg;
  std::string cube_name;
  std::string measure_name;
  std::vector<std::string> dim_names;
  std::vector<std::string> dim_tables;
  std::vector<std::vector<std::string>> dictionaries;  // id -> string
  bool empty;
  uint64_t num_nodes;
  uint32_t root_id;
};

Result<FileHeader> DecodeHeader(ByteReader* reader) {
  SCD_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kMagic) return Status::ParseError("bad dwarf file magic");
  SCD_ASSIGN_OR_RETURN(uint8_t version, reader->ReadU8());
  if (version != kVersion) {
    return Status::ParseError("unsupported dwarf file version");
  }
  FileHeader header;
  SCD_ASSIGN_OR_RETURN(uint8_t layout, reader->ReadU8());
  if (layout > static_cast<uint8_t>(ClusterLayout::kRecursive)) {
    return Status::ParseError("unknown cluster layout");
  }
  header.layout = static_cast<ClusterLayout>(layout);
  SCD_ASSIGN_OR_RETURN(std::string agg_name, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(header.agg, dwarf::ParseAggFn(agg_name));
  SCD_ASSIGN_OR_RETURN(header.cube_name, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(header.measure_name, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(uint64_t num_dims, reader->ReadVarint());
  for (uint64_t dim = 0; dim < num_dims; ++dim) {
    SCD_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    SCD_ASSIGN_OR_RETURN(std::string table, reader->ReadString());
    header.dim_names.push_back(std::move(name));
    header.dim_tables.push_back(std::move(table));
    SCD_ASSIGN_OR_RETURN(uint64_t dict_size, reader->ReadVarint());
    std::vector<std::string> entries;
    entries.reserve(dict_size);
    for (uint64_t i = 0; i < dict_size; ++i) {
      SCD_ASSIGN_OR_RETURN(std::string entry, reader->ReadString());
      entries.push_back(std::move(entry));
    }
    header.dictionaries.push_back(std::move(entries));
  }
  SCD_ASSIGN_OR_RETURN(uint8_t empty, reader->ReadU8());
  header.empty = empty != 0;
  SCD_ASSIGN_OR_RETURN(header.num_nodes, reader->ReadVarint());
  SCD_ASSIGN_OR_RETURN(header.root_id, reader->ReadU32());
  return header;
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("short read from " + path);
  }
  return bytes;
}

Result<dwarf::CubeSchema> HeaderToSchema(const FileHeader& header) {
  std::vector<dwarf::DimensionSpec> dims;
  for (size_t i = 0; i < header.dim_names.size(); ++i) {
    dims.emplace_back(header.dim_names[i], header.dim_tables[i]);
  }
  dwarf::CubeSchema schema(header.cube_name, std::move(dims),
                           header.measure_name, header.agg);
  SCD_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace

Result<DwarfCube> ReadDwarfFile(const std::string& path) {
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  ByteReader reader(bytes);
  SCD_ASSIGN_OR_RETURN(FileHeader header, DecodeHeader(&reader));
  SCD_ASSIGN_OR_RETURN(dwarf::CubeSchema schema, HeaderToSchema(header));

  std::vector<dwarf::Dictionary> dictionaries;
  for (size_t dim = 0; dim < header.dim_names.size(); ++dim) {
    dwarf::Dictionary dictionary(header.dim_names[dim]);
    for (const std::string& entry : header.dictionaries[dim]) {
      dictionary.Encode(entry);
    }
    dictionaries.push_back(std::move(dictionary));
  }

  // Directory.
  std::vector<uint64_t> offsets(header.num_nodes);
  std::vector<uint32_t> sizes(header.num_nodes);
  for (uint64_t i = 0; i < header.num_nodes; ++i) {
    SCD_ASSIGN_OR_RETURN(offsets[i], reader.ReadU64());
    SCD_ASSIGN_OR_RETURN(sizes[i], reader.ReadU32());
  }

  dwarf::CubeAssembler assembler(schema, std::move(dictionaries));
  size_t num_dims = header.dim_names.size();
  for (uint64_t i = 0; i < header.num_nodes; ++i) {
    if (offsets[i] + sizes[i] > bytes.size()) {
      return Status::ParseError("node directory points past end of file");
    }
    ByteReader node_reader(bytes.data() + offsets[i], sizes[i]);
    DwarfNode node;
    SCD_ASSIGN_OR_RETURN(uint64_t level, node_reader.ReadVarint());
    node.level = static_cast<uint16_t>(level);
    bool leaf = level + 1 == num_dims;
    SCD_ASSIGN_OR_RETURN(uint64_t num_cells, node_reader.ReadVarint());
    for (uint64_t c = 0; c < num_cells; ++c) {
      DwarfCell cell;
      SCD_ASSIGN_OR_RETURN(uint64_t key, node_reader.ReadVarint());
      cell.key = static_cast<dwarf::DimKey>(key);
      if (leaf) {
        SCD_ASSIGN_OR_RETURN(cell.measure, node_reader.ReadSignedVarint());
      } else {
        SCD_ASSIGN_OR_RETURN(uint64_t child, node_reader.ReadVarint());
        cell.child = static_cast<NodeId>(child);
      }
      node.cells.push_back(cell);
    }
    if (leaf) {
      SCD_ASSIGN_OR_RETURN(node.all_measure, node_reader.ReadSignedVarint());
    } else {
      SCD_ASSIGN_OR_RETURN(uint64_t all_child, node_reader.ReadVarint());
      node.all_child = static_cast<NodeId>(all_child);
      node.all_coalesced = node.cells.size() == 1 &&
                           node.cells[0].child == node.all_child;
    }
    assembler.AddNode(std::move(node));
  }
  if (!header.empty) assembler.SetRoot(header.root_id);
  return assembler.Finish();
}

Result<FlatFileCube> FlatFileCube::Open(const std::string& path) {
  // Read the header + directory only.
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  ByteReader reader(bytes);
  SCD_ASSIGN_OR_RETURN(FileHeader header, DecodeHeader(&reader));

  FlatFileCube cube;
  cube.path_ = path;
  cube.layout_ = header.layout;
  cube.agg_ = header.agg;
  cube.dimension_names_ = header.dim_names;
  cube.dictionaries_.resize(header.dictionaries.size());
  for (size_t dim = 0; dim < header.dictionaries.size(); ++dim) {
    for (size_t id = 0; id < header.dictionaries[dim].size(); ++id) {
      cube.dictionaries_[dim].emplace(header.dictionaries[dim][id],
                                      static_cast<dwarf::DimKey>(id));
    }
  }
  cube.node_offsets_.resize(header.num_nodes);
  cube.node_sizes_.resize(header.num_nodes);
  for (uint64_t i = 0; i < header.num_nodes; ++i) {
    SCD_ASSIGN_OR_RETURN(cube.node_offsets_[i], reader.ReadU64());
    SCD_ASSIGN_OR_RETURN(cube.node_sizes_[i], reader.ReadU32());
  }
  cube.root_id_ = header.root_id;
  cube.empty_ = header.empty;
  cube.file_size_ = bytes.size();
  cube.file_.open(path, std::ios::binary);
  if (!cube.file_) return Status::IoError("cannot reopen " + path);
  return cube;
}

Result<FlatFileCube::FileNode> FlatFileCube::FetchNode(uint32_t id) {
  if (id >= node_offsets_.size()) {
    return Status::OutOfRange("node id " + std::to_string(id) +
                              " outside directory");
  }
  uint64_t offset = node_offsets_[id];
  uint32_t size = node_sizes_[id];
  stats_.seek_distance += offset > last_read_end_ ? offset - last_read_end_
                                                  : last_read_end_ - offset;
  file_.seekg(static_cast<std::streamoff>(offset));
  std::vector<uint8_t> bytes(size);
  if (!file_.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("failed to read node " + std::to_string(id));
  }
  last_read_end_ = offset + size;
  ++stats_.node_reads;
  stats_.bytes_read += size;

  ByteReader reader(bytes);
  FileNode node;
  SCD_ASSIGN_OR_RETURN(uint64_t level, reader.ReadVarint());
  node.level = static_cast<uint16_t>(level);
  bool leaf = level + 1 == dimension_names_.size();
  SCD_ASSIGN_OR_RETURN(uint64_t num_cells, reader.ReadVarint());
  for (uint64_t c = 0; c < num_cells; ++c) {
    dwarf::DwarfCell cell;
    SCD_ASSIGN_OR_RETURN(uint64_t key, reader.ReadVarint());
    cell.key = static_cast<dwarf::DimKey>(key);
    if (leaf) {
      SCD_ASSIGN_OR_RETURN(cell.measure, reader.ReadSignedVarint());
    } else {
      SCD_ASSIGN_OR_RETURN(uint64_t child, reader.ReadVarint());
      cell.child = static_cast<NodeId>(child);
    }
    node.cells.push_back(cell);
  }
  if (leaf) {
    SCD_ASSIGN_OR_RETURN(node.all_measure, reader.ReadSignedVarint());
  } else {
    SCD_ASSIGN_OR_RETURN(uint64_t all_child, reader.ReadVarint());
    node.all_child = static_cast<uint32_t>(all_child);
  }
  return node;
}

Result<dwarf::DimKey> FlatFileCube::EncodeKey(size_t dim,
                                              const std::string& key) const {
  if (dim >= dictionaries_.size()) {
    return Status::OutOfRange("no dimension " + std::to_string(dim));
  }
  auto it = dictionaries_[dim].find(key);
  if (it == dictionaries_[dim].end()) {
    return Status::NotFound("key '" + key + "' not in dimension " +
                            dimension_names_[dim]);
  }
  return it->second;
}

Result<dwarf::Measure> FlatFileCube::PointQuery(
    const std::vector<std::optional<std::string>>& keys) {
  if (keys.size() != num_dimensions()) {
    return Status::InvalidArgument("point query arity mismatch");
  }
  if (empty_) return Status::NotFound("cube is empty");
  uint32_t current = root_id_;
  for (size_t level = 0; level < keys.size(); ++level) {
    SCD_ASSIGN_OR_RETURN(FileNode node, FetchNode(current));
    bool leaf = level + 1 == keys.size();
    if (keys[level].has_value()) {
      SCD_ASSIGN_OR_RETURN(dwarf::DimKey key, EncodeKey(level, *keys[level]));
      auto it = std::lower_bound(
          node.cells.begin(), node.cells.end(), key,
          [](const dwarf::DwarfCell& cell, dwarf::DimKey k) {
            return cell.key < k;
          });
      if (it == node.cells.end() || it->key != key) {
        return Status::NotFound("no data at dimension " +
                                std::to_string(level) + " key '" +
                                *keys[level] + "'");
      }
      if (leaf) return it->measure;
      current = it->child;
    } else {
      if (leaf) return node.all_measure;
      current = node.all_child;
    }
  }
  return Status::Internal("unreachable");
}

Result<dwarf::Measure> FlatFileCube::Aggregate(
    uint32_t node_id, size_t level,
    const std::vector<dwarf::DimPredicate>& preds, bool* found) {
  SCD_ASSIGN_OR_RETURN(FileNode node, FetchNode(node_id));
  bool leaf = level + 1 == preds.size();
  const dwarf::DimPredicate& pred = preds[level];
  Measure acc = dwarf::AggIdentity(agg_);
  if (pred.kind == dwarf::DimPredicate::Kind::kAll) {
    if (leaf) {
      *found = true;
      return node.all_measure;
    }
    return Aggregate(node.all_child, level + 1, preds, found);
  }
  for (const dwarf::DwarfCell& cell : node.cells) {
    if (!pred.Matches(cell.key)) continue;
    if (leaf) {
      acc = dwarf::AggCombine(agg_, acc, cell.measure);
      *found = true;
    } else {
      bool child_found = false;
      auto child = Aggregate(cell.child, level + 1, preds, &child_found);
      SCD_RETURN_IF_ERROR(child.status());
      if (child_found) {
        acc = dwarf::AggCombine(agg_, acc, *child);
        *found = true;
      }
    }
  }
  return acc;
}

Result<dwarf::Measure> FlatFileCube::AggregateQuery(
    const std::vector<dwarf::DimPredicate>& predicates) {
  if (predicates.size() != num_dimensions()) {
    return Status::InvalidArgument("aggregate query arity mismatch");
  }
  for (const dwarf::DimPredicate& pred : predicates) {
    if (pred.kind != dwarf::DimPredicate::Kind::kRange) continue;
    if (pred.lo > pred.hi) {
      return Status::InvalidArgument("range predicate has lo > hi");
    }
    if (pred.by_rank) {
      // The flat file stores no rank views; callers must resolve value
      // ranges to id ranges before querying the clustered layout.
      return Status::InvalidArgument(
          "rank-range predicates are not supported on flat-file cubes");
    }
  }
  if (empty_) return Status::NotFound("cube is empty");
  bool found = false;
  SCD_ASSIGN_OR_RETURN(Measure result,
                       Aggregate(root_id_, 0, predicates, &found));
  if (!found) return Status::NotFound("no tuples match the query");
  return result;
}

}  // namespace scdwarf::clustered
