/// \file flat_file.h
/// \brief Flat-file DWARF storage after Bao et al. [1] ("A Clustered Dwarf
/// Structure to Speed up Queries on Data Cubes", JCSE 2007) — the storage
/// baseline §5.1 compares against. Nodes are written to a single file using
/// *node indexing*: a node references its children by id, not by file
/// offset, exactly the indirection our Cassandra schema adopted from [1].
///
/// Two clustering layouts are implemented:
///  * **Hierarchical** — nodes laid out level by level; siblings cluster,
///    which favors range queries that fan out across one level.
///  * **Recursive** — depth-first layout; each drill-down path is nearly
///    contiguous, which favors point queries.
///
/// FlatFileCube queries the file without loading it, tracking read/seek
/// statistics so the layouts can be compared quantitatively.

#ifndef SCDWARF_CLUSTERED_FLAT_FILE_H_
#define SCDWARF_CLUSTERED_FLAT_FILE_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dwarf/dwarf_cube.h"
#include "dwarf/query.h"

namespace scdwarf::clustered {

/// \brief Node placement policy in the flat file.
enum class ClusterLayout : uint8_t {
  kHierarchical = 0,  ///< level-order clustering (range-query optimised)
  kRecursive = 1,     ///< depth-first clustering (point-query optimised)
};

const char* ClusterLayoutName(ClusterLayout layout);

/// \brief Writes \p cube to \p path using \p layout. The file carries the
/// logical schema, dictionaries, a node directory (id -> offset) and the
/// node records.
Status WriteDwarfFile(const dwarf::DwarfCube& cube, const std::string& path,
                      ClusterLayout layout);

/// \brief Loads the whole file back into an in-memory cube.
Result<dwarf::DwarfCube> ReadDwarfFile(const std::string& path);

/// \brief I/O counters of a FlatFileCube session.
struct FlatFileStats {
  uint64_t node_reads = 0;     ///< node records fetched from the file
  uint64_t bytes_read = 0;     ///< payload bytes fetched
  uint64_t seek_distance = 0;  ///< |previous end - next start| summed
};

/// \brief Queries a flat-file DWARF in place (no full load): the header and
/// node directory are resident; node records are fetched on demand.
class FlatFileCube {
 public:
  static Result<FlatFileCube> Open(const std::string& path);

  /// Point query with per-dimension key or ALL (std::nullopt), reading only
  /// the nodes on the path.
  Result<dwarf::Measure> PointQuery(
      const std::vector<std::optional<std::string>>& keys);

  /// Aggregate query with encoded-key predicates per dimension.
  Result<dwarf::Measure> AggregateQuery(
      const std::vector<dwarf::DimPredicate>& predicates);

  size_t num_dimensions() const { return dimension_names_.size(); }
  const std::vector<std::string>& dimension_names() const {
    return dimension_names_;
  }
  dwarf::AggFn agg() const { return agg_; }
  ClusterLayout layout() const { return layout_; }

  /// Encodes a key string for dimension \p dim; NotFound if absent.
  Result<dwarf::DimKey> EncodeKey(size_t dim, const std::string& key) const;

  const FlatFileStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Total file size in bytes.
  uint64_t file_size() const { return file_size_; }

 private:
  /// One decoded node record.
  struct FileNode {
    std::vector<dwarf::DwarfCell> cells;
    uint32_t all_child = 0;
    dwarf::Measure all_measure = 0;
    uint16_t level = 0;
  };

  FlatFileCube() = default;

  Result<FileNode> FetchNode(uint32_t id);
  Result<dwarf::Measure> Aggregate(uint32_t node_id, size_t level,
                                   const std::vector<dwarf::DimPredicate>& preds,
                                   bool* found);

  std::string path_;
  mutable std::ifstream file_;
  ClusterLayout layout_ = ClusterLayout::kHierarchical;
  dwarf::AggFn agg_ = dwarf::AggFn::kSum;
  std::vector<std::string> dimension_names_;
  /// Per dimension: key string -> encoded id (file dictionaries).
  std::vector<std::unordered_map<std::string, dwarf::DimKey>> dictionaries_;
  std::vector<uint64_t> node_offsets_;  ///< by node id
  std::vector<uint32_t> node_sizes_;
  uint32_t root_id_ = 0;
  bool empty_ = true;
  uint64_t file_size_ = 0;
  uint64_t last_read_end_ = 0;
  FlatFileStats stats_;
};

}  // namespace scdwarf::clustered

#endif  // SCDWARF_CLUSTERED_FLAT_FILE_H_
