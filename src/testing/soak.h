/// \file soak.h
/// \brief Fault-injected endurance harness for the replica fan-out fleet.
///
/// A soak::Fleet runs the whole serving stack the way an operator would
/// deploy it — except everything lives under one roof so a test can steer
/// it deterministically:
///
///  - an in-process publisher (server::QueryServer) that applies a random
///    tuple batch every publish interval and spools each epoch to a shared
///    snapshot directory. The publisher sends NO load_snapshot
///    notifications: replicas follow the spool purely by polling, so every
///    epoch a replica serves past its bootstrap proves the spool catch-up
///    path (the shared-filesystem deployment mode);
///  - N real scdwarf_replica subprocesses over that spool, each on a fixed
///    port so a killed replica can be respawned in place;
///  - one in-process replica::Router fronted by a server::TcpServer;
///  - M session threads hammering the router with a mixed workload (point /
///    slice / rollup / rollup-where / aggregate-range / cursor drains),
///    each answer differentially checked against a model cube pinned to the
///    epoch the answer declares (see below). Odd-numbered sessions
///    negotiate the bin1 binary wire format, so every run soaks both
///    framings — and renegotiation, via the injected connection drops;
///  - optional fault injectors: a killer (SIGKILL a random replica, respawn
///    it, require the restart to catch up to the newest spooled epoch), a
///    spool corrupter (bad-magic / truncated / leftover-tmp files dropped
///    into the spool at future epochs), and periodic client connection
///    drops inside the session threads.
///
/// Differential checking: the publisher retains a window of epoch → cube
/// models. Every one-shot answer must be byte-identical to
/// MakeResponse(ExecuteRequest(model[epoch], request)) (either cached
/// variant); every cursor drain must deliver pages all pinned to the open
/// epoch whose concatenated rows equal the model's one-shot rows. Answers
/// carrying a fleet availability code (overloaded, no_healthy_replica,
/// too_many_sessions, epoch_gone, not yet bootstrapped) and transport
/// errors are counted but are not mismatches — the soak's correctness bar
/// is "never a wrong answer", not "never a refused one".
///
/// bench/soak_fleet runs this open-ended for operators;
/// tools/check_soak.sh runs a ~45 s slice in CI; tests/soak_test.cc runs a
/// short deterministic slice plus single-step fault cases.

#ifndef SCDWARF_TESTING_SOAK_H_
#define SCDWARF_TESTING_SOAK_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "dwarf/dwarf_cube.h"
#include "replica/router.h"
#include "server/query_server.h"
#include "server/tcp_server.h"

namespace scdwarf::soak {

/// \brief Knobs of one soak run. Defaults suit the ctest slice; the bench
/// binary and check_soak.sh widen them.
struct FleetOptions {
  int replicas = 2;              ///< scdwarf_replica subprocesses
  int sessions = 2;              ///< client churn threads
  int publish_interval_ms = 500; ///< publisher batch cadence
  int kill_interval_ms = 0;      ///< 0 disables the killer thread
  int corrupt_interval_ms = 0;   ///< 0 disables the spool corrupter
  int replica_poll_ms = 100;     ///< --poll-ms handed to each replica
  int health_interval_ms = 100;  ///< router health-check cadence
  int batch_size = 16;           ///< tuples per published batch
  size_t model_epochs = 16;      ///< differential model window
  size_t retain_epochs = 6;      ///< replica/publisher epoch retention
  double p99_bound_us = 0;       ///< 0 = unchecked; else RunFor fails over it
  uint64_t seed = 0x50a1c;
  /// Drop (Close) a session's client connection roughly every N requests;
  /// 0 disables. The next call reconnects.
  int drop_every = 64;
  std::string replica_bin;   ///< empty = DefaultReplicaBinary()
  std::string spool_dir;     ///< empty = fresh directory under /tmp
};

/// \brief Monotonic run counters; Counters() returns a consistent copy.
struct FleetCounters {
  uint64_t requests = 0;        ///< one-shot answers differentially checked
  uint64_t cursor_drains = 0;   ///< cursor sessions drained and checked
  uint64_t mismatches = 0;      ///< wrong answers — must stay 0, always
  uint64_t kills = 0;           ///< SIGKILLs delivered to replicas
  uint64_t restarts = 0;        ///< replicas respawned after a kill
  uint64_t catchups = 0;        ///< restarts that rejoined at the newest
                                ///< spooled epoch (spool catch-up proof)
  uint64_t corruptions = 0;     ///< corrupt files dropped into the spool
  uint64_t availability = 0;    ///< refused answers (overloaded, failover...)
  uint64_t transport_errors = 0;///< dropped/failed connections seen
  uint64_t unchecked = 0;       ///< answers older than the model window
  uint64_t published_epochs = 0;
  double p50_us = 0;            ///< one-shot latency through the router
  double p99_us = 0;
};

/// \brief The fleet under soak. Start() brings everything up; RunFor()
/// drives churn + faults for a wall-clock window; Stop() tears down.
/// Single-step helpers (PublishBatch, KillReplica, RestartReplica,
/// CorruptSpool) let tests build deterministic fault scenarios without the
/// background threads.
class Fleet {
 public:
  explicit Fleet(FleetOptions options);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// \brief Publishes the initial cube, spawns the replicas, starts the
  /// router and the publisher thread (plus killer/corrupter when their
  /// intervals are set).
  Status Start();

  /// \brief Runs the session churn threads for \p seconds, then joins them.
  /// Publisher and fault threads keep running across calls. Returns an
  /// error when any mismatch was recorded, or when p99_bound_us is set and
  /// the one-shot p99 exceeds it.
  Status RunFor(double seconds);

  /// \brief Stops every thread and subprocess. Idempotent; run by the
  /// destructor. The spool directory is left behind only when the caller
  /// provided it.
  void Stop();

  FleetCounters Counters() const;

  /// First few recorded mismatches, for failure messages.
  std::vector<std::string> MismatchSamples() const;

  /// \brief One publisher batch: ApplyUpdate + spool + model capture.
  /// Returns the published epoch.
  Result<uint64_t> PublishBatch();

  /// \brief SIGKILLs replica \p index (no restart). Its port stays
  /// reserved for RestartReplica.
  Status KillReplica(int index);

  /// \brief Respawns replica \p index on its original port and verifies the
  /// banner epoch is at least the newest epoch the publisher had spooled
  /// before the spawn — the spool catch-up proof (there is no notifier in a
  /// soak fleet). Counts a restart, and a catch-up when the proof holds.
  Status RestartReplica(int index);

  /// \brief Drops one corrupt artifact into the spool at a near-future
  /// epoch: cycles bad-magic, truncated-copy-of-newest, and a leftover
  /// ".cf.tmp" (the mid-rename shape, invisible to ListSnapshots). Real
  /// publishes later overwrite the slot and replicas recover on their own.
  Status CorruptSpool();

  /// \brief Counter \p name (global or per-instance) read from replica
  /// \p index over its own port via the "metrics" op; 0 when absent.
  Result<uint64_t> ReplicaCounter(int index, const std::string& name);

  uint16_t router_port() const { return router_port_; }
  uint16_t replica_port(int index) const;
  uint64_t published_epoch() const;
  const std::string& spool_dir() const { return spool_; }
  server::QueryServer* publisher() { return publisher_.get(); }

 private:
  struct Replica {
    pid_t pid = -1;
    int stdin_fd = -1;
    int stdout_fd = -1;
    uint16_t port = 0;
    uint64_t banner_epoch = 0;
  };

  /// What a differential check concluded about one answer.
  enum class Verdict { kChecked, kAvailability, kTransport, kUnchecked };

  Result<Replica> SpawnReplica(uint16_t port);
  void StopReplicaProcess(Replica& replica);
  /// Model cube for \p epoch: waits (bounded) for the publisher to catch
  /// up, nullptr + kUnchecked when the epoch aged out of the window,
  /// records a mismatch on a never-published epoch.
  std::shared_ptr<const dwarf::DwarfCube> ModelFor(uint64_t epoch,
                                                   Verdict* verdict);
  void RecordMismatch(const std::string& what);
  /// One session thread: mixed workload against the router until
  /// churn_stop_ flips.
  void SessionLoop(int session_index);
  /// Differentially checks one one-shot response. \p raw is the full
  /// response frame payload as received.
  Verdict CheckOneShot(const std::string& request_json,
                       const std::string& raw);
  /// Opens, drains and checks one cursor session on \p conn.
  void RunCursorDrain(client::CubeClient& conn, const std::string& query_json,
                      size_t page_size);
  std::string MakeRandomRequest(Rng& rng) const;
  std::string MakeRowsQuery(Rng& rng) const;

  FleetOptions options_;
  std::string spool_;
  bool owns_spool_ = false;
  std::unique_ptr<server::QueryServer> publisher_;
  std::unique_ptr<replica::Router> router_;
  std::unique_ptr<server::TcpServer> router_tcp_;
  uint16_t router_port_ = 0;
  std::vector<Replica> replicas_;
  mutable std::mutex replicas_mu_;  ///< guards replicas_ (killer vs helpers)

  // epoch → model cube, pruned to the trailing model_epochs entries.
  mutable std::mutex model_mu_;
  std::condition_variable model_cv_;
  std::map<uint64_t, std::shared_ptr<const dwarf::DwarfCube>> models_;
  uint64_t newest_epoch_ = 0;

  mutable std::mutex counters_mu_;
  FleetCounters counters_;
  std::vector<std::string> mismatch_samples_;
  FixedBucketHistogram latency_us_;

  std::atomic<uint64_t> corrupt_variant_{0};  ///< cycles CorruptSpool shapes
  std::atomic<bool> stopping_{false};
  std::atomic<bool> churn_stop_{true};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;  ///< wakes the background threads early
  std::thread publish_thread_;
  std::thread kill_thread_;
  std::thread corrupt_thread_;
  std::vector<std::thread> session_threads_;
};

/// \brief The scdwarf_replica binary next to the calling test/bench binary
/// (<dir of /proc/self/exe>/../src/replica/scdwarf_replica), overridable
/// via SCDWARF_REPLICA_BIN. Empty string when neither resolves.
std::string DefaultReplicaBinary();

/// \brief The soak cube schema: Date (ordered), Day, Station — wide enough
/// to exercise value-range predicates, rollup-where and merges with fresh
/// keys. Exposed so tests can build compatible cubes directly.
dwarf::CubeSchema SoakSchema();

/// \brief A deterministic batch of \p size tuples over the soak vocabulary;
/// roughly one batch in four carries a never-seen-before station so delta
/// merges keep extending dictionaries.
std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> SoakBatch(
    Rng& rng, int size);

}  // namespace scdwarf::soak

#endif  // SCDWARF_TESTING_SOAK_H_
