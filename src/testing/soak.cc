#include "testing/soak.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/stopwatch.h"
#include "dwarf/builder.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/snapshot.h"
#include "server/wire.h"

namespace scdwarf::soak {

namespace fs = std::filesystem;

namespace {

using json::JsonArray;
using json::JsonObject;
using json::JsonValue;

/// 28 ISO dates — zero-padded, so lexicographic order is chronological and
/// value-range predicates / rollup-where clauses are exercised for real.
const std::vector<std::string>& Dates() {
  static const auto* v = [] {
    auto* dates = new std::vector<std::string>;
    for (int day = 1; day <= 28; ++day) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "2026-01-%02d", day);
      dates->push_back(buf);
    }
    return dates;
  }();
  return *v;
}

const std::vector<std::string>& Days() {
  static const auto* v = new std::vector<std::string>{
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return *v;
}

const std::vector<std::string>& Stations() {
  static const auto* v = [] {
    auto* stations = new std::vector<std::string>;
    for (int i = 0; i < 12; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "Station%02d", i);
      stations->push_back(buf);
    }
    return stations;
  }();
  return *v;
}

/// Occasionally-queried, occasionally-published station names outside the
/// base vocabulary: publishes with them force real dictionary growth, and
/// queries with them exercise the not-found-yet / found-after-merge edge.
std::string FreshStation(Rng& rng) {
  return "Fresh" + std::to_string(rng.NextBelow(32));
}

std::vector<std::string> RandomKeys(Rng& rng) {
  return {Dates()[rng.NextBelow(Dates().size())],
          Days()[rng.NextBelow(Days().size())],
          rng.NextBool(0.06)
              ? FreshStation(rng)
              : Stations()[rng.NextBelow(Stations().size())]};
}

/// Sorted inclusive date range [lo, hi] from the soak vocabulary.
std::pair<std::string, std::string> RandomDateRange(Rng& rng) {
  const auto& dates = Dates();
  size_t a = rng.NextBelow(dates.size());
  size_t b = rng.NextBelow(dates.size());
  if (a > b) std::swap(a, b);
  return {dates[a], dates[b]};
}

const std::vector<std::string>& AvailabilityCodes() {
  static const auto* v = new std::vector<std::string>{
      "overloaded", "no_healthy_replica", "too_many_sessions", "epoch_gone"};
  return *v;
}

bool IsAvailabilityCode(const std::string& code) {
  const auto& codes = AvailabilityCodes();
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

/// Envelope fields of one response payload.
struct ResponseEnvelope {
  bool parsed = false;
  bool ok = false;
  uint64_t epoch = 0;
  std::string code;
  JsonValue value;
};

ResponseEnvelope ParseEnvelope(const std::string& response) {
  ResponseEnvelope env;
  auto root = json::ParseJson(response);
  if (!root.ok()) return env;
  auto ok = root->Get("ok");
  auto epoch = root->Get("epoch");
  if (!ok.ok() || !epoch.ok()) return env;
  auto ok_flag = ok->AsBool();
  auto epoch_num = epoch->AsNumber();
  if (!ok_flag.ok() || !epoch_num.ok()) return env;
  env.parsed = true;
  env.ok = *ok_flag;
  env.epoch = static_cast<uint64_t>(*epoch_num);
  if (auto code = root->Get("code"); code.ok()) {
    if (auto text = code->AsString(); text.ok()) env.code = *text;
  }
  env.value = std::move(*root);
  return env;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

std::string DefaultReplicaBinary() {
  if (const char* env = std::getenv("SCDWARF_REPLICA_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::error_code ec;
  fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) return "";
  return (self.parent_path() / ".." / "src" / "replica" / "scdwarf_replica")
      .lexically_normal()
      .string();
}

dwarf::CubeSchema SoakSchema() {
  std::vector<dwarf::DimensionSpec> specs;
  specs.emplace_back("Date", "", /*ordered_in=*/true);
  specs.emplace_back("Day");
  specs.emplace_back("Station");
  return dwarf::CubeSchema("soak_fleet", std::move(specs), "rides",
                           dwarf::AggFn::kSum);
}

std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> SoakBatch(
    Rng& rng, int size) {
  std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
  batch.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    batch.emplace_back(RandomKeys(rng),
                       static_cast<dwarf::Measure>(rng.NextInRange(1, 40)));
  }
  return batch;
}

Fleet::Fleet(FleetOptions options)
    : options_(std::move(options)),
      latency_us_(FixedBucketHistogram::LatencyMicrosBounds()) {}

Fleet::~Fleet() { Stop(); }

Status Fleet::Start() {
  if (publisher_ != nullptr) {
    return Status::FailedPrecondition("fleet already started");
  }
  if (options_.replicas < 1) {
    return Status::InvalidArgument("a fleet needs at least one replica");
  }
  if (options_.replica_bin.empty()) {
    options_.replica_bin = DefaultReplicaBinary();
  }
  if (options_.replica_bin.empty() || !fs::exists(options_.replica_bin)) {
    return Status::NotFound("scdwarf_replica binary not found at \"" +
                            options_.replica_bin +
                            "\"; pass FleetOptions.replica_bin or set "
                            "SCDWARF_REPLICA_BIN");
  }
  if (options_.spool_dir.empty()) {
    spool_ = (fs::temp_directory_path() /
              ("scdwarf_soak_" + std::to_string(::getpid())))
                 .string();
    owns_spool_ = true;
  } else {
    spool_ = options_.spool_dir;
  }
  fs::remove_all(spool_);
  std::error_code ec;
  fs::create_directories(spool_, ec);
  if (ec) {
    return Status::IoError("create spool " + spool_ + ": " + ec.message());
  }

  // Initial cube + publisher. No notifier anywhere: replicas follow the
  // spool purely by polling, which is exactly the catch-up path under test.
  Rng seed_rng(options_.seed);
  dwarf::DwarfBuilder builder(SoakSchema());
  for (auto& [keys, measure] : SoakBatch(seed_rng, 64)) {
    SCD_RETURN_IF_ERROR(builder.AddTuple(keys, measure));
  }
  auto cube = std::move(builder).Build();
  SCD_RETURN_IF_ERROR(cube.status());
  server::ServerOptions publisher_options;
  publisher_options.num_workers = 1;
  publisher_options.snapshot_dir = spool_;
  publisher_options.retain_epochs =
      std::max(options_.model_epochs, options_.retain_epochs);
  publisher_ = std::make_unique<server::QueryServer>(std::move(*cube),
                                                     publisher_options);
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    models_[0] = publisher_->store().snapshot().cube;
    newest_epoch_ = 0;
  }

  // The fleet: real replica subprocesses, in-process router in front.
  std::vector<client::Endpoint> endpoints;
  for (int i = 0; i < options_.replicas; ++i) {
    Result<Replica> spawned = SpawnReplica(0);
    if (!spawned.ok()) {
      Stop();
      return spawned.status();
    }
    client::Endpoint endpoint;
    endpoint.port = spawned->port;
    endpoints.push_back(endpoint);
    replicas_.push_back(std::move(*spawned));
  }
  replica::RouterOptions router_options;
  router_options.health_interval_ms = options_.health_interval_ms;
  router_ = std::make_unique<replica::Router>(endpoints, router_options);
  router_->CheckReplicasOnce();
  router_tcp_ = std::make_unique<server::TcpServer>(router_.get());
  if (Status status = router_tcp_->Start(0); !status.ok()) {
    Stop();
    return status;
  }
  router_port_ = static_cast<uint16_t>(router_tcp_->port());

  stopping_.store(false, std::memory_order_release);
  if (options_.publish_interval_ms > 0) {
    publish_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stopping_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.publish_interval_ms));
        if (stopping_.load(std::memory_order_acquire)) break;
        lock.unlock();
        if (auto published = PublishBatch(); !published.ok()) {
          std::fprintf(stderr, "soak publish: %s\n",
                       published.status().ToString().c_str());
        }
        lock.lock();
      }
    });
  }
  if (options_.kill_interval_ms > 0) {
    kill_thread_ = std::thread([this] {
      Rng rng(options_.seed ^ 0xdeadbeef);
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stopping_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.kill_interval_ms));
        if (stopping_.load(std::memory_order_acquire)) break;
        lock.unlock();
        int index = static_cast<int>(
            rng.NextBelow(static_cast<uint64_t>(options_.replicas)));
        (void)KillReplica(index);  // FailedPrecondition when already dead
        if (Status status = RestartReplica(index); !status.ok()) {
          std::fprintf(stderr, "soak restart replica %d: %s\n", index,
                       status.ToString().c_str());
        }
        lock.lock();
      }
    });
  }
  if (options_.corrupt_interval_ms > 0) {
    corrupt_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stopping_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.corrupt_interval_ms));
        if (stopping_.load(std::memory_order_acquire)) break;
        lock.unlock();
        if (Status status = CorruptSpool(); !status.ok()) {
          std::fprintf(stderr, "soak corrupt: %s\n",
                       status.ToString().c_str());
        }
        lock.lock();
      }
    });
  }
  return Status::OK();
}

Status Fleet::RunFor(double seconds) {
  if (publisher_ == nullptr) {
    return Status::FailedPrecondition("fleet not started");
  }
  churn_stop_.store(false, std::memory_order_release);
  session_threads_.reserve(static_cast<size_t>(options_.sessions));
  for (int i = 0; i < options_.sessions; ++i) {
    session_threads_.emplace_back([this, i] { SessionLoop(i); });
  }
  Stopwatch watch;
  while (watch.ElapsedSeconds() < seconds &&
         !stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  churn_stop_.store(true, std::memory_order_release);
  for (std::thread& thread : session_threads_) thread.join();
  session_threads_.clear();

  FleetCounters counters = Counters();
  if (counters.mismatches > 0) {
    std::string detail;
    for (const std::string& sample : MismatchSamples()) {
      detail += "\n  " + sample;
    }
    return Status::Internal(std::to_string(counters.mismatches) +
                            " differential mismatch(es)" + detail);
  }
  if (options_.p99_bound_us > 0 && counters.p99_us > options_.p99_bound_us) {
    return Status::Internal(
        "one-shot p99 " + std::to_string(counters.p99_us) + "us over bound " +
        std::to_string(options_.p99_bound_us) + "us");
  }
  return Status::OK();
}

void Fleet::Stop() {
  stopping_.store(true, std::memory_order_release);
  churn_stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  model_cv_.notify_all();
  for (std::thread& thread : session_threads_) {
    if (thread.joinable()) thread.join();
  }
  session_threads_.clear();
  if (publish_thread_.joinable()) publish_thread_.join();
  if (kill_thread_.joinable()) kill_thread_.join();
  if (corrupt_thread_.joinable()) corrupt_thread_.join();
  if (router_tcp_ != nullptr) router_tcp_->Stop();
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    for (Replica& replica : replicas_) StopReplicaProcess(replica);
    replicas_.clear();
  }
  router_tcp_.reset();
  router_.reset();
  publisher_.reset();
  if (owns_spool_ && !spool_.empty()) {
    std::error_code ec;
    fs::remove_all(spool_, ec);
  }
}

FleetCounters Fleet::Counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  FleetCounters counters = counters_;
  counters.p50_us = latency_us_.Quantile(0.5);
  counters.p99_us = latency_us_.Quantile(0.99);
  return counters;
}

std::vector<std::string> Fleet::MismatchSamples() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return mismatch_samples_;
}

Result<uint64_t> Fleet::PublishBatch() {
  if (publisher_ == nullptr) {
    return Status::FailedPrecondition("fleet not started");
  }
  std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    Rng rng(options_.seed * 6364136223846793005ull + newest_epoch_ + 1);
    batch = SoakBatch(rng, options_.batch_size);
  }
  SCD_ASSIGN_OR_RETURN(uint64_t epoch, publisher_->ApplyUpdate(batch));
  // The model of this epoch must be the exact cube the replicas serve — the
  // retained snapshot, not a re-derivation.
  SCD_ASSIGN_OR_RETURN(server::EpochCubeStore::Snapshot snapshot,
                       publisher_->store().SnapshotAt(epoch));
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    models_[epoch] = snapshot.cube;
    newest_epoch_ = std::max(newest_epoch_, epoch);
    while (models_.size() > options_.model_epochs) {
      models_.erase(models_.begin());
    }
  }
  model_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.published_epochs;
  }
  return epoch;
}

Status Fleet::KillReplica(int index) {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  if (index < 0 || static_cast<size_t>(index) >= replicas_.size()) {
    return Status::InvalidArgument("no replica " + std::to_string(index));
  }
  Replica& replica = replicas_[static_cast<size_t>(index)];
  if (replica.pid < 0) {
    return Status::FailedPrecondition("replica " + std::to_string(index) +
                                      " already dead");
  }
  ::kill(replica.pid, SIGKILL);
  int status = 0;
  ::waitpid(replica.pid, &status, 0);
  replica.pid = -1;
  if (replica.stdin_fd >= 0) ::close(replica.stdin_fd);
  if (replica.stdout_fd >= 0) ::close(replica.stdout_fd);
  replica.stdin_fd = -1;
  replica.stdout_fd = -1;
  {
    std::lock_guard<std::mutex> counters_lock(counters_mu_);
    ++counters_.kills;
  }
  return Status::OK();
}

Status Fleet::RestartReplica(int index) {
  // Everything at or below this epoch was already spooled (ApplyUpdate
  // spools synchronously), so a restarted replica reaching it proves the
  // spool catch-up path — there is no notifier to tell it anything.
  const uint64_t newest_spooled = publisher_->epoch();
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    if (index < 0 || static_cast<size_t>(index) >= replicas_.size()) {
      return Status::InvalidArgument("no replica " + std::to_string(index));
    }
    Replica& replica = replicas_[static_cast<size_t>(index)];
    if (replica.pid >= 0) {
      return Status::FailedPrecondition("replica " + std::to_string(index) +
                                        " still running");
    }
    port = replica.port;
  }
  // The port was just freed by SIGKILL; SO_REUSEADDR makes an immediate
  // rebind legal, but give the kernel a few tries anyway.
  Result<Replica> spawned = Status::Internal("unreached");
  for (int attempt = 0; attempt < 5; ++attempt) {
    spawned = SpawnReplica(port);
    if (spawned.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  SCD_RETURN_IF_ERROR(spawned.status());
  const uint64_t banner_epoch = spawned->banner_epoch;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    replicas_[static_cast<size_t>(index)] = std::move(*spawned);
  }
  std::lock_guard<std::mutex> counters_lock(counters_mu_);
  ++counters_.restarts;
  if (banner_epoch >= newest_spooled) ++counters_.catchups;
  return Status::OK();
}

Status Fleet::CorruptSpool() {
  if (publisher_ == nullptr) {
    return Status::FailedPrecondition("fleet not started");
  }
  const uint64_t n = corrupt_variant_.fetch_add(1);
  // A near-future epoch slot: replicas trip over it now, the publisher
  // overwrites it (atomically) within a few publishes, and the replicas'
  // size-keyed retry picks up the good bytes — self-healing corruption.
  const uint64_t target = publisher_->epoch() + 1 + n % 3;
  const fs::path path = fs::path(spool_) / replica::SnapshotFileName(target);
  switch (n % 3) {
    case 0:  // wrong magic, plausible length
      WriteFileBytes(path, "NOTACUBE" + std::string(512, '\xab'));
      break;
    case 1: {  // truncated copy of the newest good snapshot
      auto listed = replica::ListSnapshots(spool_);
      if (!listed.ok() || listed->empty()) return listed.status();
      std::string bytes = ReadFileBytes(listed->back().path);
      WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
      break;
    }
    default:  // a mid-rename leftover; ListSnapshots must keep ignoring it
      WriteFileBytes(fs::path(spool_) /
                         (replica::SnapshotFileName(target) + ".tmp"),
                     std::string(128, '\xcd'));
      break;
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.corruptions;
  return Status::OK();
}

Result<uint64_t> Fleet::ReplicaCounter(int index, const std::string& name) {
  uint16_t port = replica_port(index);
  if (port == 0) {
    return Status::InvalidArgument("no replica " + std::to_string(index));
  }
  client::Endpoint endpoint;
  endpoint.port = port;
  client::CubeClient conn(endpoint);
  SCD_ASSIGN_OR_RETURN(std::string response,
                       conn.Call("{\"op\":\"metrics\"}"));
  SCD_ASSIGN_OR_RETURN(JsonValue root, json::ParseJson(response));
  SCD_ASSIGN_OR_RETURN(JsonValue metrics, root.Get("metrics"));
  const JsonArray* entries = metrics.AsArray();
  if (entries == nullptr) {
    return Status::ParseError("metrics payload is not an array");
  }
  uint64_t total = 0;
  for (const JsonValue& entry : *entries) {
    auto entry_name = entry.Get("name");
    if (!entry_name.ok()) continue;
    auto text = entry_name->AsString();
    if (!text.ok() || *text != name) continue;
    auto value = entry.Get("value");
    if (!value.ok()) continue;
    if (auto number = value->AsNumber(); number.ok()) {
      total += static_cast<uint64_t>(*number);
    }
  }
  return total;
}

uint16_t Fleet::replica_port(int index) const {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  if (index < 0 || static_cast<size_t>(index) >= replicas_.size()) return 0;
  return replicas_[static_cast<size_t>(index)].port;
}

uint64_t Fleet::published_epoch() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return newest_epoch_;
}

// ------------------------------------------------------ replica subprocesses

Result<Fleet::Replica> Fleet::SpawnReplica(uint16_t port) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::string spool_flag = "--snapshot-dir=" + spool_;
    std::string port_flag = "--port=" + std::to_string(port);
    std::string poll_flag =
        "--poll-ms=" + std::to_string(options_.replica_poll_ms);
    std::string retain_flag =
        "--retain-epochs=" + std::to_string(options_.retain_epochs);
    ::execl(options_.replica_bin.c_str(), options_.replica_bin.c_str(),
            spool_flag.c_str(), port_flag.c_str(), poll_flag.c_str(),
            retain_flag.c_str(), "--workers=1",
            static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s: %s\n", options_.replica_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Replica replica;
  replica.pid = pid;
  replica.stdin_fd = to_child[1];
  replica.stdout_fd = from_child[0];

  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos) {
    ssize_t n = ::read(replica.stdout_fd, &c, 1);
    if (n <= 0) break;
    banner.push_back(c);
  }
  size_t colon = banner.find("127.0.0.1:");
  size_t epoch_at = banner.find("(epoch ");
  if (colon == std::string::npos || epoch_at == std::string::npos) {
    StopReplicaProcess(replica);
    return Status::IoError("replica banner malformed: \"" + banner + "\"");
  }
  replica.port = static_cast<uint16_t>(
      std::atoi(banner.c_str() + colon + std::strlen("127.0.0.1:")));
  replica.banner_epoch = static_cast<uint64_t>(
      std::atoll(banner.c_str() + epoch_at + std::strlen("(epoch ")));
  if (replica.port == 0) {
    StopReplicaProcess(replica);
    return Status::IoError("replica banner carried port 0: \"" + banner +
                           "\"");
  }
  return replica;
}

void Fleet::StopReplicaProcess(Replica& replica) {
  if (replica.pid >= 0) {
    if (replica.stdin_fd >= 0) ::close(replica.stdin_fd);  // EOF: clean exit
    int status = 0;
    bool exited = false;
    for (int spin = 0; spin < 200; ++spin) {
      if (::waitpid(replica.pid, &status, WNOHANG) == replica.pid) {
        exited = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!exited) {
      ::kill(replica.pid, SIGKILL);
      ::waitpid(replica.pid, &status, 0);
    }
    replica.pid = -1;
    replica.stdin_fd = -1;
  }
  if (replica.stdin_fd >= 0) ::close(replica.stdin_fd);
  if (replica.stdout_fd >= 0) ::close(replica.stdout_fd);
  replica.stdin_fd = -1;
  replica.stdout_fd = -1;
}

// --------------------------------------------------------------- the checker

std::shared_ptr<const dwarf::DwarfCube> Fleet::ModelFor(uint64_t epoch,
                                                        Verdict* verdict) {
  std::string complaint;
  std::shared_ptr<const dwarf::DwarfCube> model;
  {
    std::unique_lock<std::mutex> lock(model_mu_);
    // The answer can race the publisher's model insert by the gap between
    // the spool write and our map update — wait it out, bounded.
    bool arrived = model_cv_.wait_for(
        lock, std::chrono::seconds(3), [this, epoch] {
          return newest_epoch_ >= epoch ||
                 stopping_.load(std::memory_order_acquire);
        });
    if (newest_epoch_ >= epoch) {
      auto it = models_.find(epoch);
      if (it != models_.end()) {
        model = it->second;
        *verdict = Verdict::kChecked;
      } else {
        *verdict = Verdict::kUnchecked;  // aged out of the model window
      }
    } else if (!arrived || stopping_.load(std::memory_order_acquire)) {
      *verdict = Verdict::kUnchecked;  // shutdown race: don't judge it
    }
    if (!arrived && !stopping_.load(std::memory_order_acquire)) {
      complaint = "answer claims epoch " + std::to_string(epoch) +
                  " but the publisher only reached " +
                  std::to_string(newest_epoch_);
      *verdict = Verdict::kChecked;
    }
  }
  if (!complaint.empty()) RecordMismatch(complaint);
  return model;
}

void Fleet::RecordMismatch(const std::string& what) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.mismatches;
  if (mismatch_samples_.size() < 8) mismatch_samples_.push_back(what);
}

Fleet::Verdict Fleet::CheckOneShot(const std::string& request_json,
                                   const std::string& raw) {
  ResponseEnvelope env = ParseEnvelope(raw);
  if (!env.parsed) {
    RecordMismatch("unparsable response to " + request_json + ": " + raw);
    return Verdict::kChecked;
  }
  if (!env.ok && IsAvailabilityCode(env.code)) return Verdict::kAvailability;
  Verdict verdict = Verdict::kUnchecked;
  std::shared_ptr<const dwarf::DwarfCube> model = ModelFor(env.epoch, &verdict);
  if (model == nullptr) return verdict;
  auto request = server::ParseRequest(request_json);
  if (!request.ok()) {
    RecordMismatch("soak generated an unparsable request: " + request_json);
    return Verdict::kChecked;
  }
  server::ExecResult direct = server::ExecuteRequest(*model, *request);
  // The cached flag is the replica's business; either variant is correct.
  if (raw !=
          server::MakeResponse(direct.ok, env.epoch, false,
                               direct.payload_json) &&
      raw != server::MakeResponse(direct.ok, env.epoch, true,
                                  direct.payload_json)) {
    RecordMismatch("epoch " + std::to_string(env.epoch) + " request " +
                   request_json + "\n    got:  " + raw + "\n    want: " +
                   server::MakeResponse(direct.ok, env.epoch, false,
                                        direct.payload_json));
  }
  return Verdict::kChecked;
}

void Fleet::RunCursorDrain(client::CubeClient& conn,
                           const std::string& query_json, size_t page_size) {
  const std::string open_frame = "{\"op\":\"query_open\",\"query\":" +
                                 query_json + ",\"page_size\":" +
                                 std::to_string(page_size) + "}";
  Result<std::string> opened = conn.Call(open_frame);
  if (!opened.ok()) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.transport_errors;
    return;
  }
  ResponseEnvelope open_env = ParseEnvelope(*opened);
  if (!open_env.parsed) {
    RecordMismatch("unparsable query_open response: " + *opened);
    return;
  }
  if (!open_env.ok) {
    if (IsAvailabilityCode(open_env.code)) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.availability;
    } else {
      RecordMismatch("query_open refused: " + *opened + " for " + open_frame);
    }
    return;
  }
  auto cursor = open_env.value.Get("cursor");
  if (!cursor.ok() || !cursor->AsNumber().ok()) {
    RecordMismatch("query_open response without cursor: " + *opened);
    return;
  }
  const uint64_t cursor_id = static_cast<uint64_t>(*cursor->AsNumber());
  const uint64_t epoch = open_env.epoch;

  JsonArray rows;
  for (int pages = 0; pages < 100000; ++pages) {
    Result<std::string> next = conn.Call(
        "{\"op\":\"query_next\",\"cursor\":" + std::to_string(cursor_id) +
        "}");
    if (!next.ok()) {  // router connection died; session reaped by TTL
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.transport_errors;
      return;
    }
    ResponseEnvelope page = ParseEnvelope(*next);
    if (!page.parsed) {
      RecordMismatch("unparsable query_next response: " + *next);
      return;
    }
    if (!page.ok) {
      if (IsAvailabilityCode(page.code)) {  // failover ran out of options
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.availability;
      } else {
        RecordMismatch("query_next failed mid-drain: " + *next);
      }
      return;
    }
    if (page.epoch != epoch) {
      RecordMismatch("cursor " + std::to_string(cursor_id) +
                     " drifted from epoch " + std::to_string(epoch) + " to " +
                     std::to_string(page.epoch) + ": " + *next);
      return;
    }
    auto got = page.value.Get("rows");
    const JsonArray* page_rows = got.ok() ? got->AsArray() : nullptr;
    if (page_rows == nullptr) {
      RecordMismatch("query_next page without rows: " + *next);
      return;
    }
    rows.insert(rows.end(), page_rows->begin(), page_rows->end());
    auto done = page.value.Get("done");
    if (done.ok() && done->AsBool().ok() && *done->AsBool()) break;
  }

  Verdict verdict = Verdict::kUnchecked;
  std::shared_ptr<const dwarf::DwarfCube> model = ModelFor(epoch, &verdict);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.cursor_drains;
  }
  if (model == nullptr) {
    if (verdict == Verdict::kUnchecked) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.unchecked;
    }
    return;
  }
  auto request = server::ParseRequest(query_json);
  if (!request.ok()) {
    RecordMismatch("soak generated an unparsable rows query: " + query_json);
    return;
  }
  server::ExecResult direct = server::ExecuteRequest(*model, *request);
  auto direct_payload = json::ParseJson(direct.payload_json);
  auto direct_rows =
      direct_payload.ok() ? direct_payload->Get("rows") : direct_payload;
  if (!direct.ok || !direct_rows.ok()) {
    RecordMismatch("model refused rows query " + query_json + ": " +
                   direct.payload_json);
    return;
  }
  const std::string got_rows = json::SerializeJson(JsonValue(std::move(rows)));
  const std::string want_rows = json::SerializeJson(*direct_rows);
  if (got_rows != want_rows) {
    RecordMismatch("cursor drain of " + query_json + " at epoch " +
                   std::to_string(epoch) + "\n    got:  " + got_rows +
                   "\n    want: " + want_rows);
  }
}

// ----------------------------------------------------------- the churn loops

std::string Fleet::MakeRandomRequest(Rng& rng) const {
  double draw = rng.NextDouble();
  JsonObject request;
  if (draw < 0.3) {  // point: concrete keys and ALL wildcards mixed
    request.emplace_back("op", JsonValue("point"));
    JsonArray keys;
    std::vector<std::string> concrete = RandomKeys(rng);
    for (const std::string& key : concrete) {
      if (rng.NextBool(0.45)) {
        keys.push_back(JsonValue(key));
      } else {
        keys.push_back(JsonValue(nullptr));
      }
    }
    request.emplace_back("keys", JsonValue(std::move(keys)));
  } else if (draw < 0.5) {  // slice
    std::vector<std::string> keys = RandomKeys(rng);
    static const char* kDims[] = {"Date", "Day", "Station"};
    size_t dim = rng.NextBelow(3);
    request.emplace_back("op", JsonValue("slice"));
    request.emplace_back("dim", JsonValue(kDims[dim]));
    request.emplace_back("key", JsonValue(keys[dim]));
  } else if (draw < 0.75) {  // rollup, sometimes with a Date where-range
    request.emplace_back("op", JsonValue("rollup"));
    JsonArray dims;
    bool with_date = rng.NextBool(0.7);
    if (with_date) dims.push_back(JsonValue("Date"));
    dims.push_back(JsonValue(rng.NextBool(0.5) ? "Day" : "Station"));
    request.emplace_back("dims", JsonValue(std::move(dims)));
    if (with_date && rng.NextBool(0.6)) {
      auto [lo, hi] = RandomDateRange(rng);
      JsonObject filter;
      filter.emplace_back("dim", JsonValue("Date"));
      filter.emplace_back("lo", JsonValue(lo));
      filter.emplace_back("hi", JsonValue(hi));
      JsonArray where;
      where.push_back(JsonValue(std::move(filter)));
      request.emplace_back("where", JsonValue(std::move(where)));
    }
  } else {  // aggregate with a value-range on the ordered Date dimension
    request.emplace_back("op", JsonValue("aggregate"));
    JsonArray predicates;
    {
      JsonObject p;
      if (rng.NextBool(0.7)) {
        auto [lo, hi] = RandomDateRange(rng);
        p.emplace_back("kind", JsonValue("range"));
        p.emplace_back("lo", JsonValue(lo));
        p.emplace_back("hi", JsonValue(hi));
      } else {
        p.emplace_back("kind", JsonValue("all"));
      }
      predicates.push_back(JsonValue(std::move(p)));
    }
    {
      JsonObject p;
      if (rng.NextBool(0.5)) {
        p.emplace_back("kind", JsonValue("set"));
        JsonArray keys;
        size_t count = 1 + rng.NextBelow(3);
        for (size_t i = 0; i < count; ++i) {
          keys.push_back(JsonValue(Days()[rng.NextBelow(Days().size())]));
        }
        p.emplace_back("keys", JsonValue(std::move(keys)));
      } else {
        p.emplace_back("kind", JsonValue("all"));
      }
      predicates.push_back(JsonValue(std::move(p)));
    }
    {
      JsonObject p;
      if (rng.NextBool(0.3)) {
        p.emplace_back("kind", JsonValue("point"));
        p.emplace_back("key",
                       JsonValue(Stations()[rng.NextBelow(Stations().size())]));
      } else {
        p.emplace_back("kind", JsonValue("all"));
      }
      predicates.push_back(JsonValue(std::move(p)));
    }
    request.emplace_back("predicates", JsonValue(std::move(predicates)));
  }
  return json::SerializeJson(JsonValue(std::move(request)));
}

std::string Fleet::MakeRowsQuery(Rng& rng) const {
  JsonObject request;
  if (rng.NextBool(0.4)) {
    std::vector<std::string> keys = RandomKeys(rng);
    static const char* kDims[] = {"Date", "Day", "Station"};
    size_t dim = rng.NextBelow(3);
    request.emplace_back("op", JsonValue("slice"));
    request.emplace_back("dim", JsonValue(kDims[dim]));
    request.emplace_back("key", JsonValue(keys[dim]));
  } else {
    request.emplace_back("op", JsonValue("rollup"));
    JsonArray dims;
    dims.push_back(JsonValue("Date"));
    if (rng.NextBool(0.5)) dims.push_back(JsonValue("Station"));
    request.emplace_back("dims", JsonValue(std::move(dims)));
  }
  return json::SerializeJson(JsonValue(std::move(request)));
}

void Fleet::SessionLoop(int session_index) {
  client::Endpoint endpoint;
  endpoint.port = router_port_;
  client::ClientOptions client_options;
  client_options.io_timeout_ms = 10000;
  // Odd sessions negotiate the bin1 wire format, so every soak run mixes
  // binary and JSON connections against the router — the injected drops
  // below also exercise renegotiation on reconnect. The differential
  // checks are format-blind: the client reconstructs canonical JSON.
  client_options.prefer_binary = (session_index % 2) == 1;
  client::CubeClient conn(endpoint, client_options);
  Rng rng(options_.seed * 7919 + static_cast<uint64_t>(session_index) + 1);
  int since_drop = 0;
  while (!churn_stop_.load(std::memory_order_acquire)) {
    if (options_.drop_every > 0 && ++since_drop >= options_.drop_every) {
      conn.Close();  // injected connection drop; the next call reconnects
      since_drop = 0;
    }
    if (rng.NextBool(0.12)) {
      RunCursorDrain(conn, MakeRowsQuery(rng), 3 + rng.NextBelow(14));
      continue;
    }
    const std::string request = MakeRandomRequest(rng);
    Stopwatch watch;
    Result<std::string> response = conn.Call(request);
    const double elapsed_us = watch.ElapsedSeconds() * 1e6;
    if (!response.ok()) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.transport_errors;
      continue;
    }
    latency_us_.Record(elapsed_us);
    switch (CheckOneShot(request, *response)) {
      case Verdict::kChecked: {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.requests;
        break;
      }
      case Verdict::kAvailability: {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.availability;
        break;
      }
      case Verdict::kTransport: {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.transport_errors;
        break;
      }
      case Verdict::kUnchecked: {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.unchecked;
        break;
      }
    }
  }
}

}  // namespace scdwarf::soak
