#include "citibikes/datasets.h"

namespace scdwarf::citibikes {

const std::vector<DatasetSpec>& Table2Datasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"Day", 7358, 1, 2.1},        {"Week", 60102, 7, 17.1},
      {"Month", 118934, 31, 54.1},  {"TMonth", 396756, 60, 113.0},
      {"SMonth", 1181344, 181, 338.0},
  };
  return kDatasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& dataset : Table2Datasets()) {
    if (dataset.name == name) return dataset;
  }
  return Status::NotFound("no dataset named '" + name +
                          "' (expected Day, Week, Month, TMonth or SMonth)");
}

BikeFeedConfig MakeFeedConfig(const DatasetSpec& dataset, uint64_t seed) {
  BikeFeedConfig config;
  config.num_stations = 46;
  config.start = {2016, 1, 1, 0, 0, 0};
  config.period_seconds = static_cast<int64_t>(dataset.days) * 24 * 3600;
  config.target_records = dataset.tuples;
  config.seed = seed;
  return config;
}

}  // namespace scdwarf::citibikes
