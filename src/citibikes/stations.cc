#include "citibikes/stations.h"

#include "common/rng.h"

namespace scdwarf::citibikes {

namespace {

const char* kStreetNames[] = {
    "Fenian Street",       "Pearse Street",      "Dame Street",
    "Eyre Square",         "Patrick Street",     "Grafton Street",
    "O'Connell Street",    "Talbot Street",      "Capel Street",
    "Parnell Square",      "Merrion Square",     "Fitzwilliam Square",
    "Mountjoy Square",     "Smithfield",         "Ormond Quay",
    "Bachelors Walk",      "Eden Quay",          "Custom House Quay",
    "North Wall Quay",     "Sir John Rogerson's Quay",
    "Grand Canal Dock",    "Barrow Street",      "Charlemont Place",
    "Portobello Harbour",  "Rathmines Road",     "Harcourt Street",
    "Camden Street",       "Wexford Street",     "Aungier Street",
    "Christchurch Place",  "High Street",        "Thomas Street",
    "James Street",        "Heuston Station",    "Parkgate Street",
    "Benburb Street",      "Blackhall Place",    "Stoneybatter",
    "Phibsborough Road",   "Dorset Street",      "Gardiner Street",
    "Amiens Street",       "Seville Place",      "Mayor Street",
    "Hanover Quay",        "Townsend Street",    "College Green",
    "Nassau Street",       "Kildare Street",     "Baggot Street",
    "Leeson Street",       "Earlsfort Terrace",  "Hatch Street",
    "Clanbrassil Terrace", "Cuffe Street",       "York Street",
    "Exchequer Street",    "Jervis Street",      "Bolton Street",
    "King Street North",
};
constexpr size_t kNumStreetNames = sizeof(kStreetNames) / sizeof(kStreetNames[0]);

const char* kRomanNumerals[] = {"",    " II",  " III", " IV", " V",
                                " VI", " VII", " VIII"};

}  // namespace

const std::vector<std::string>& CityAreas() {
  static const std::vector<std::string> kAreas = {
      "City Centre", "Docklands",  "Northside", "Southside",
      "Liberties",   "Portobello", "Smithfield", "Ballsbridge"};
  return kAreas;
}

std::vector<Station> GenerateStations(size_t count, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string>& areas = CityAreas();
  std::vector<Station> stations;
  stations.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Station station;
    station.id = static_cast<int>(i + 1);
    station.name = kStreetNames[i % kNumStreetNames];
    station.name += kRomanNumerals[(i / kNumStreetNames) % 8];
    station.area = areas[rng.NextBelow(areas.size())];
    station.capacity = static_cast<int>(20 + 5 * rng.NextBelow(5));  // 20..40
    station.latitude = 53.33 + rng.NextDouble() * 0.06;
    station.longitude = -6.30 + rng.NextDouble() * 0.08;
    stations.push_back(std::move(station));
  }
  return stations;
}

}  // namespace scdwarf::citibikes
