/// \file bike_feed.h
/// \brief Synthetic bike-sharing web feed: emits station-status snapshot
/// documents (XML or JSON) with a diurnal demand pattern, matching the shape
/// of the dublinbikes/CitiBikes feeds used in §5 [7].

#ifndef SCDWARF_CITIBIKES_BIKE_FEED_H_
#define SCDWARF_CITIBIKES_BIKE_FEED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/civil_time.h"
#include "common/rng.h"
#include "citibikes/stations.h"

namespace scdwarf::citibikes {

/// \brief Configuration of one generated feed.
struct BikeFeedConfig {
  size_t num_stations = 46;
  CivilTime start = {2016, 1, 1, 0, 0, 0};
  /// Length of the covered period in seconds (snapshots spread evenly).
  int64_t period_seconds = 24 * 3600;
  /// Exact number of station records to emit across the whole feed; the
  /// final snapshot is truncated to hit it exactly (Table 2's tuple counts).
  uint64_t target_records = 7358;
  uint64_t seed = 2016;
  std::string city = "Dublin";
};

/// \brief Streaming generator: one document per snapshot tick.
///
/// \code
///   BikeFeedGenerator feed(config);
///   while (feed.HasNext()) Consume(feed.NextXml());
/// \endcode
class BikeFeedGenerator {
 public:
  explicit BikeFeedGenerator(BikeFeedConfig config);

  bool HasNext() const { return records_emitted_ < config_.target_records; }

  /// Next snapshot as an XML document.
  std::string NextXml();

  /// Next snapshot as a JSON document (same schema, same data stream).
  std::string NextJson();

  uint64_t records_emitted() const { return records_emitted_; }
  uint64_t documents_emitted() const { return documents_emitted_; }
  /// Total bytes of all documents produced so far (Table 2's Size column).
  uint64_t bytes_emitted() const { return bytes_emitted_; }

  const std::vector<Station>& stations() const { return stations_; }
  const BikeFeedConfig& config() const { return config_; }

  /// Number of snapshot ticks this config will produce.
  uint64_t total_ticks() const { return total_ticks_; }

 private:
  struct Snapshot {
    CivilTime time;
    /// Per included station: available bikes and open/closed status.
    std::vector<int> available;
    std::vector<bool> open;
    size_t station_count;  ///< stations included in this snapshot
  };

  Snapshot NextSnapshot();

  BikeFeedConfig config_;
  std::vector<Station> stations_;
  Rng rng_;
  std::vector<int> current_bikes_;  // simulation state
  uint64_t total_ticks_ = 0;
  uint64_t tick_ = 0;
  uint64_t records_emitted_ = 0;
  uint64_t documents_emitted_ = 0;
  uint64_t bytes_emitted_ = 0;
};

}  // namespace scdwarf::citibikes

#endif  // SCDWARF_CITIBIKES_BIKE_FEED_H_
