/// \file datasets.h
/// \brief The five evaluation datasets of Table 2 (Day, Week, Month, TMonth,
/// SMonth) as generator presets with the paper's exact tuple counts.

#ifndef SCDWARF_CITIBIKES_DATASETS_H_
#define SCDWARF_CITIBIKES_DATASETS_H_

#include <string>
#include <vector>

#include "citibikes/bike_feed.h"

namespace scdwarf::citibikes {

/// \brief One Table-2 dataset row.
struct DatasetSpec {
  std::string name;         ///< "Day", "Week", "Month", "TMonth", "SMonth"
  uint64_t tuples;          ///< number of source tuples (paper's exact count)
  int days;                 ///< covered period in days
  double paper_raw_mb;      ///< raw XML size the paper reports (Table 2)
};

/// \brief Table 2, in order of increasing size.
const std::vector<DatasetSpec>& Table2Datasets();

/// \brief Looks up a dataset by name ("Day" ... "SMonth"), NotFound otherwise.
Result<DatasetSpec> FindDataset(const std::string& name);

/// \brief Builds the generator config for a dataset. All presets share the
/// same 46-station city and the 2016-01-01 epoch; only period and target
/// count vary, so smaller datasets are prefixes in time of larger ones.
BikeFeedConfig MakeFeedConfig(const DatasetSpec& dataset, uint64_t seed = 2016);

}  // namespace scdwarf::citibikes

#endif  // SCDWARF_CITIBIKES_DATASETS_H_
