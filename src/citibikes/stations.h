/// \file stations.h
/// \brief Synthetic bike-station catalog standing in for the Dublin bikes /
/// CitiBikes station list the paper's datasets were harvested from.
/// Deterministic from a seed so every dataset regenerates bit-identically.

#ifndef SCDWARF_CITIBIKES_STATIONS_H_
#define SCDWARF_CITIBIKES_STATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scdwarf::citibikes {

/// \brief One bike station.
struct Station {
  int id = 0;
  std::string name;   ///< e.g. "Fenian Street"
  std::string area;   ///< city district, e.g. "Docklands"
  int capacity = 0;   ///< total bike stands
  double latitude = 0;
  double longitude = 0;
};

/// \brief Generates \p count stations with distinct names drawn from a pool
/// of Dublin street names (cycled with Roman numerals when count exceeds the
/// pool), areas from the city's districts and capacities in 20-40.
std::vector<Station> GenerateStations(size_t count, uint64_t seed);

/// \brief The district names used by GenerateStations.
const std::vector<std::string>& CityAreas();

}  // namespace scdwarf::citibikes

#endif  // SCDWARF_CITIBIKES_STATIONS_H_
