/// \file other_feeds.h
/// \brief The remaining smart-city streams the paper's introduction lists —
/// car parks, air-quality sensors and online auctions — as small synthetic
/// generators. They feed the multi-source fusion example: the paper's goal
/// is cubes "fused from multiple sources".

#ifndef SCDWARF_CITIBIKES_OTHER_FEEDS_H_
#define SCDWARF_CITIBIKES_OTHER_FEEDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/civil_time.h"
#include "common/rng.h"

namespace scdwarf::citibikes {

/// \brief Car-park occupancy feed (XML): one document per tick listing every
/// car park with free spaces.
class CarParkFeedGenerator {
 public:
  CarParkFeedGenerator(size_t num_carparks, CivilTime start,
                       int64_t tick_seconds, uint64_t seed);

  /// One snapshot document; advances the simulation clock.
  std::string NextXml();

  size_t num_carparks() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::string> zones_;
  std::vector<int> capacities_;
  std::vector<int> occupied_;
  CivilTime clock_;
  int64_t tick_seconds_;
  Rng rng_;
};

/// \brief Air-quality sensor feed (JSON): one document per tick with one
/// reading per monitoring site (PM2.5 index).
class AirQualityFeedGenerator {
 public:
  AirQualityFeedGenerator(size_t num_sites, CivilTime start,
                          int64_t tick_seconds, uint64_t seed);

  std::string NextJson();

  size_t num_sites() const { return sites_.size(); }

 private:
  std::vector<std::string> sites_;
  std::vector<std::string> zones_;
  std::vector<double> baseline_;
  CivilTime clock_;
  int64_t tick_seconds_;
  Rng rng_;
};

/// \brief Online auction sales feed (XML): one document per batch of closed
/// auctions with category, seller rating band and final price.
class AuctionFeedGenerator {
 public:
  AuctionFeedGenerator(CivilTime start, uint64_t seed);

  /// One batch of \p lots closed auctions.
  std::string NextXml(size_t lots);

 private:
  CivilTime clock_;
  Rng rng_;
  int next_lot_id_ = 1;
};

}  // namespace scdwarf::citibikes

#endif  // SCDWARF_CITIBIKES_OTHER_FEEDS_H_
