#include "citibikes/bike_feed.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "json/json_parser.h"
#include "xml/xml_parser.h"

namespace scdwarf::citibikes {

BikeFeedGenerator::BikeFeedGenerator(BikeFeedConfig config)
    : config_(std::move(config)),
      stations_(GenerateStations(config_.num_stations, config_.seed)),
      rng_(config_.seed ^ 0xb1cefeedULL) {
  SCD_CHECK_GT(config_.num_stations, 0u);
  SCD_CHECK_GT(config_.target_records, 0u);
  total_ticks_ = (config_.target_records + config_.num_stations - 1) /
                 config_.num_stations;
  current_bikes_.reserve(stations_.size());
  for (const Station& station : stations_) {
    current_bikes_.push_back(
        static_cast<int>(rng_.NextBelow(station.capacity + 1)));
  }
}

BikeFeedGenerator::Snapshot BikeFeedGenerator::NextSnapshot() {
  SCD_CHECK(HasNext());
  Snapshot snapshot;
  int64_t offset = total_ticks_ <= 1
                       ? 0
                       : static_cast<int64_t>(
                             (static_cast<double>(tick_) / total_ticks_) *
                             config_.period_seconds);
  snapshot.time =
      CivilFromSeconds(SecondsFromCivil(config_.start) + offset);

  uint64_t remaining = config_.target_records - records_emitted_;
  snapshot.station_count = static_cast<size_t>(
      std::min<uint64_t>(remaining, config_.num_stations));

  // Diurnal demand: commuters drain stations around 8-9 and 17-18.
  double hour = snapshot.time.hour + snapshot.time.minute / 60.0;
  double pressure = 0.5 + 0.35 * std::sin((hour - 9.0) / 24.0 * 2 * M_PI);

  snapshot.available.resize(snapshot.station_count);
  snapshot.open.resize(snapshot.station_count);
  for (size_t i = 0; i < snapshot.station_count; ++i) {
    int capacity = stations_[i].capacity;
    // Random walk biased toward the diurnal target fill.
    int target = static_cast<int>(pressure * capacity);
    int delta = static_cast<int>(rng_.NextInRange(-3, 3));
    if (current_bikes_[i] < target) delta += 1;
    if (current_bikes_[i] > target) delta -= 1;
    current_bikes_[i] =
        std::clamp(current_bikes_[i] + delta, 0, capacity);
    snapshot.available[i] = current_bikes_[i];
    snapshot.open[i] = !rng_.NextBool(0.01);  // rare maintenance closures
  }

  records_emitted_ += snapshot.station_count;
  ++documents_emitted_;
  ++tick_;
  return snapshot;
}

std::string BikeFeedGenerator::NextXml() {
  Snapshot snapshot = NextSnapshot();
  std::string timestamp = FormatIso(snapshot.time);
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<stations city=\"" + xml::EscapeXmlText(config_.city) +
         "\" lastUpdate=\"" + timestamp + "\">\n";
  for (size_t i = 0; i < snapshot.station_count; ++i) {
    const Station& station = stations_[i];
    int available = snapshot.available[i];
    out += "  <station>\n";
    out += "    <id>" + std::to_string(station.id) + "</id>\n";
    out += "    <name>" + xml::EscapeXmlText(station.name) + "</name>\n";
    out += "    <area>" + xml::EscapeXmlText(station.area) + "</area>\n";
    out += "    <bike_stands>" + std::to_string(station.capacity) +
           "</bike_stands>\n";
    out += "    <available_bikes>" + std::to_string(available) +
           "</available_bikes>\n";
    out += "    <available_bike_stands>" +
           std::to_string(station.capacity - available) +
           "</available_bike_stands>\n";
    out += std::string("    <status>") +
           (snapshot.open[i] ? "OPEN" : "CLOSED") + "</status>\n";
    out += "    <last_update>" + timestamp + "</last_update>\n";
    out += "  </station>\n";
  }
  out += "</stations>\n";
  bytes_emitted_ += out.size();
  return out;
}

std::string BikeFeedGenerator::NextJson() {
  Snapshot snapshot = NextSnapshot();
  std::string timestamp = FormatIso(snapshot.time);
  json::JsonArray station_array;
  for (size_t i = 0; i < snapshot.station_count; ++i) {
    const Station& station = stations_[i];
    int available = snapshot.available[i];
    json::JsonObject obj;
    obj.emplace_back("id", json::JsonValue(station.id));
    obj.emplace_back("name", json::JsonValue(station.name));
    obj.emplace_back("area", json::JsonValue(station.area));
    obj.emplace_back("bike_stands", json::JsonValue(station.capacity));
    obj.emplace_back("available_bikes", json::JsonValue(available));
    obj.emplace_back("available_bike_stands",
                     json::JsonValue(station.capacity - available));
    obj.emplace_back("status",
                     json::JsonValue(snapshot.open[i] ? "OPEN" : "CLOSED"));
    obj.emplace_back("last_update", json::JsonValue(timestamp));
    station_array.emplace_back(std::move(obj));
  }
  json::JsonObject root;
  root.emplace_back("city", json::JsonValue(config_.city));
  root.emplace_back("lastUpdate", json::JsonValue(timestamp));
  root.emplace_back("stations", json::JsonValue(std::move(station_array)));
  std::string out = json::SerializeJson(json::JsonValue(std::move(root)));
  bytes_emitted_ += out.size();
  return out;
}

}  // namespace scdwarf::citibikes
