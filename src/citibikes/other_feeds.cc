#include "citibikes/other_feeds.h"

#include <algorithm>
#include <cmath>

#include "citibikes/stations.h"
#include "json/json_parser.h"
#include "xml/xml_parser.h"

namespace scdwarf::citibikes {

namespace {

void AdvanceClock(CivilTime* clock, int64_t seconds) {
  *clock = CivilFromSeconds(SecondsFromCivil(*clock) + seconds);
}

const char* kCarParkNames[] = {
    "Arnotts",      "Jervis",      "Ilac Centre", "Drury Street",
    "Trinity Street", "Setanta",   "Fleet Street", "Christchurch",
    "Smithfield Market", "Parnell", "Stephens Green", "Dawson",
};

const char* kAirSites[] = {
    "Winetavern Street", "Coleraine Street", "Rathmines", "Ringsend",
    "Ballyfermot",       "Finglas",          "Marino",    "Dun Laoghaire",
};

const char* kAuctionCategories[] = {
    "Electronics", "Furniture", "Vehicles", "Fashion",
    "Collectibles", "Sports",   "Garden",   "Books",
};

const char* kRatingBands[] = {"Bronze", "Silver", "Gold", "Platinum"};

}  // namespace

CarParkFeedGenerator::CarParkFeedGenerator(size_t num_carparks, CivilTime start,
                                           int64_t tick_seconds, uint64_t seed)
    : clock_(start), tick_seconds_(tick_seconds), rng_(seed ^ 0xca9a43ULL) {
  const std::vector<std::string>& areas = CityAreas();
  size_t pool = sizeof(kCarParkNames) / sizeof(kCarParkNames[0]);
  for (size_t i = 0; i < num_carparks; ++i) {
    std::string name = kCarParkNames[i % pool];
    if (i >= pool) name += " " + std::to_string(i / pool + 1);
    names_.push_back(std::move(name));
    zones_.push_back(areas[rng_.NextBelow(areas.size())]);
    capacities_.push_back(static_cast<int>(150 + 50 * rng_.NextBelow(8)));
    occupied_.push_back(
        static_cast<int>(rng_.NextBelow(capacities_.back() + 1)));
  }
}

std::string CarParkFeedGenerator::NextXml() {
  std::string timestamp = FormatIso(clock_);
  double hour = clock_.hour + clock_.minute / 60.0;
  double pressure = 0.45 + 0.4 * std::sin((hour - 14.0) / 24.0 * 2 * M_PI);
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<carparks updated=\"" +
                    timestamp + "\">\n";
  for (size_t i = 0; i < names_.size(); ++i) {
    int target = static_cast<int>(pressure * capacities_[i]);
    int delta = static_cast<int>(rng_.NextInRange(-10, 10));
    if (occupied_[i] < target) delta += 5;
    if (occupied_[i] > target) delta -= 5;
    occupied_[i] = std::clamp(occupied_[i] + delta, 0, capacities_[i]);
    out += "  <carpark>\n";
    out += "    <name>" + xml::EscapeXmlText(names_[i]) + "</name>\n";
    out += "    <zone>" + xml::EscapeXmlText(zones_[i]) + "</zone>\n";
    out += "    <capacity>" + std::to_string(capacities_[i]) + "</capacity>\n";
    out += "    <free_spaces>" + std::to_string(capacities_[i] - occupied_[i]) +
           "</free_spaces>\n";
    out += "    <updated>" + timestamp + "</updated>\n";
    out += "  </carpark>\n";
  }
  out += "</carparks>\n";
  AdvanceClock(&clock_, tick_seconds_);
  return out;
}

AirQualityFeedGenerator::AirQualityFeedGenerator(size_t num_sites,
                                                 CivilTime start,
                                                 int64_t tick_seconds,
                                                 uint64_t seed)
    : clock_(start), tick_seconds_(tick_seconds), rng_(seed ^ 0xa19ULL) {
  const std::vector<std::string>& areas = CityAreas();
  size_t pool = sizeof(kAirSites) / sizeof(kAirSites[0]);
  for (size_t i = 0; i < num_sites; ++i) {
    std::string site = kAirSites[i % pool];
    if (i >= pool) site += " " + std::to_string(i / pool + 1);
    sites_.push_back(std::move(site));
    zones_.push_back(areas[rng_.NextBelow(areas.size())]);
    baseline_.push_back(8.0 + rng_.NextDouble() * 12.0);
  }
}

std::string AirQualityFeedGenerator::NextJson() {
  std::string timestamp = FormatIso(clock_);
  json::JsonArray readings;
  for (size_t i = 0; i < sites_.size(); ++i) {
    double rush = clock_.hour == 8 || clock_.hour == 17 ? 6.0 : 0.0;
    int pm25 = static_cast<int>(baseline_[i] + rush + rng_.NextDouble() * 5.0);
    json::JsonObject reading;
    reading.emplace_back("site", json::JsonValue(sites_[i]));
    reading.emplace_back("zone", json::JsonValue(zones_[i]));
    reading.emplace_back("pollutant", json::JsonValue("PM2.5"));
    reading.emplace_back("index", json::JsonValue(pm25));
    reading.emplace_back("measured_at", json::JsonValue(timestamp));
    readings.emplace_back(std::move(reading));
  }
  json::JsonObject root;
  root.emplace_back("network", json::JsonValue("Dublin Air"));
  root.emplace_back("readings", json::JsonValue(std::move(readings)));
  AdvanceClock(&clock_, tick_seconds_);
  return json::SerializeJson(json::JsonValue(std::move(root)));
}

AuctionFeedGenerator::AuctionFeedGenerator(CivilTime start, uint64_t seed)
    : clock_(start), rng_(seed ^ 0xa0c71072ULL) {}

std::string AuctionFeedGenerator::NextXml(size_t lots) {
  std::string timestamp = FormatIso(clock_);
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<auctions closed=\"" +
      timestamp + "\">\n";
  for (size_t i = 0; i < lots; ++i) {
    const char* category =
        kAuctionCategories[rng_.NextBelow(sizeof(kAuctionCategories) /
                                          sizeof(kAuctionCategories[0]))];
    const char* band = kRatingBands[rng_.NextBelow(4)];
    int price = static_cast<int>(5 + rng_.NextBelow(500));
    out += "  <lot id=\"" + std::to_string(next_lot_id_++) + "\">\n";
    out += std::string("    <category>") + category + "</category>\n";
    out += std::string("    <seller_band>") + band + "</seller_band>\n";
    out += "    <price>" + std::to_string(price) + "</price>\n";
    out += "    <closed_at>" + timestamp + "</closed_at>\n";
    out += "  </lot>\n";
  }
  out += "</auctions>\n";
  AdvanceClock(&clock_, 3600);
  return out;
}

}  // namespace scdwarf::citibikes
