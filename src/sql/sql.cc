#include "sql/sql.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"

namespace scdwarf::sql {

namespace {

// ------------------------------------------------------------------ lexer
// (Shares its shape with the CQL lexer but supports VARCHAR(n) and
// qualified column references.)

enum class TokenType { kIdentifier, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenType type;
  std::string text;  // identifiers lower-cased
  std::string raw;
};

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t begin = pos;
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '_')) {
        ++pos;
      }
      std::string raw(input.substr(begin, pos - begin));
      tokens.push_back({TokenType::kIdentifier, AsciiToLower(raw), raw});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && pos + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[pos + 1])))) {
      size_t begin = pos;
      ++pos;
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[pos]))) {
        ++pos;
      }
      std::string raw(input.substr(begin, pos - begin));
      tokens.push_back({TokenType::kNumber, raw, raw});
    } else if (c == '\'') {
      ++pos;
      std::string text;
      while (true) {
        if (pos >= input.size()) {
          return Status::ParseError("unterminated string literal");
        }
        if (input[pos] == '\'') {
          if (pos + 1 < input.size() && input[pos + 1] == '\'') {
            text.push_back('\'');
            pos += 2;
            continue;
          }
          ++pos;
          break;
        }
        text.push_back(input[pos++]);
      }
      tokens.push_back({TokenType::kString, text, text});
    } else if (std::string("(),.=;*").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c),
                        std::string(1, c)});
      ++pos;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in SQL input");
    }
  }
  tokens.push_back({TokenType::kEnd, "", ""});
  return tokens;
}

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> ParseStatement() {
    SCD_ASSIGN_OR_RETURN(SqlStatement stmt, ParseStatementInner());
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("trailing tokens after statement");
    return stmt;
  }

 private:
  Result<SqlStatement> ParseStatementInner() {
    if (ConsumeKeyword("create")) {
      if (ConsumeKeyword("database")) {
        SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("database name"));
        return SqlStatement(SqlCreateDatabase{name});
      }
      if (ConsumeKeyword("table")) return ParseCreateTable();
      if (ConsumeKeyword("index")) return ParseCreateIndex();
      return Error("expected DATABASE, TABLE or INDEX after CREATE");
    }
    if (ConsumeKeyword("drop")) {
      if (!ConsumeKeyword("table")) return Error("expected TABLE after DROP");
      SqlDropTable stmt;
      SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.database, &stmt.table));
      return SqlStatement(stmt);
    }
    if (ConsumeKeyword("insert")) return ParseInsert();
    if (ConsumeKeyword("select")) return ParseSelect();
    if (ConsumeKeyword("delete")) {
      if (!ConsumeKeyword("from")) return Error("expected FROM after DELETE");
      SqlDelete stmt;
      SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.database, &stmt.table));
      if (!ConsumeKeyword("where")) return Error("DELETE requires WHERE");
      SCD_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("column name"));
      if (!ConsumeSymbol("=")) return Error("expected '=' in DELETE");
      SCD_ASSIGN_OR_RETURN(stmt.key, ParseLiteral());
      return SqlStatement(stmt);
    }
    return Error("unrecognized statement");
  }

  Result<SqlStatement> ParseCreateTable() {
    std::string database, table;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&database, &table));
    if (!ConsumeSymbol("(")) return Error("expected '(' after table name");
    std::vector<SqlColumn> columns;
    std::string primary_key;
    std::vector<std::string> indexes;
    while (true) {
      if (ConsumeKeyword("primary")) {
        if (!ConsumeKeyword("key")) return Error("expected KEY after PRIMARY");
        if (!ConsumeSymbol("(")) return Error("expected '(' after PRIMARY KEY");
        SCD_ASSIGN_OR_RETURN(primary_key, ExpectIdentifier("key column"));
        if (!ConsumeSymbol(")")) return Error("expected ')'");
      } else if (ConsumeKeyword("index") || ConsumeKeyword("key")) {
        if (!ConsumeSymbol("(")) return Error("expected '(' after INDEX");
        SCD_ASSIGN_OR_RETURN(std::string column,
                             ExpectIdentifier("indexed column"));
        indexes.push_back(std::move(column));
        if (!ConsumeSymbol(")")) return Error("expected ')'");
      } else {
        SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column name"));
        SCD_ASSIGN_OR_RETURN(DataType type, ParseSqlType());
        bool nullable = true;
        if (ConsumeKeyword("not")) {
          if (!ConsumeKeyword("null")) return Error("expected NULL after NOT");
          nullable = false;
        } else {
          ConsumeKeyword("null");
        }
        columns.emplace_back(name, type, nullable);
      }
      if (ConsumeSymbol(",")) continue;
      if (ConsumeSymbol(")")) break;
      return Error("expected ',' or ')' in column list");
    }
    if (primary_key.empty()) return Error("missing PRIMARY KEY clause");
    SqlTableDef def(database, table, std::move(columns), primary_key);
    for (const std::string& column : indexes) {
      SCD_RETURN_IF_ERROR(def.AddSecondaryIndex(column));
    }
    SCD_RETURN_IF_ERROR(def.Validate());
    return SqlStatement(SqlCreateTable{std::move(def)});
  }

  Result<DataType> ParseSqlType() {
    SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
    if (name == "int" || name == "integer" || name == "smallint") {
      return DataType::kInt;
    }
    if (name == "bigint") return DataType::kBigint;
    if (name == "text") return DataType::kText;
    if (name == "varchar" || name == "char") {
      if (ConsumeSymbol("(")) {
        if (Peek().type != TokenType::kNumber) {
          return Error("expected length in VARCHAR(n)");
        }
        ++pos_;
        if (!ConsumeSymbol(")")) return Error("expected ')' after length");
      }
      return DataType::kText;
    }
    if (name == "bool" || name == "boolean") return DataType::kBool;
    if (name == "tinyint") {
      if (ConsumeSymbol("(")) {
        if (Peek().type != TokenType::kNumber) return Error("expected width");
        ++pos_;
        if (!ConsumeSymbol(")")) return Error("expected ')'");
      }
      return DataType::kBool;
    }
    return Error("unknown SQL type '" + name + "'");
  }

  Result<SqlStatement> ParseCreateIndex() {
    if (Peek().type == TokenType::kIdentifier && Peek().text != "on") ++pos_;
    if (!ConsumeKeyword("on")) return Error("expected ON in CREATE INDEX");
    SqlCreateIndex stmt;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.database, &stmt.table));
    if (!ConsumeSymbol("(")) return Error("expected '('");
    SCD_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("indexed column"));
    if (!ConsumeSymbol(")")) return Error("expected ')'");
    return SqlStatement(stmt);
  }

  Result<SqlStatement> ParseInsert() {
    if (!ConsumeKeyword("into")) return Error("expected INTO after INSERT");
    SqlInsert stmt;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.database, &stmt.table));
    if (!ConsumeSymbol("(")) return Error("expected '(' after table name");
    while (true) {
      SCD_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
      stmt.columns.push_back(std::move(column));
      if (ConsumeSymbol(",")) continue;
      if (ConsumeSymbol(")")) break;
      return Error("expected ',' or ')' in column list");
    }
    if (!ConsumeKeyword("values")) return Error("expected VALUES");
    while (true) {
      if (!ConsumeSymbol("(")) return Error("expected '(' before value list");
      SqlRow values;
      while (true) {
        SCD_ASSIGN_OR_RETURN(Value value, ParseLiteral());
        values.push_back(std::move(value));
        if (ConsumeSymbol(",")) continue;
        if (ConsumeSymbol(")")) break;
        return Error("expected ',' or ')' in value list");
      }
      if (values.size() != stmt.columns.size()) {
        return Error("column/value count mismatch in INSERT");
      }
      stmt.value_lists.push_back(std::move(values));
      if (!ConsumeSymbol(",")) break;
    }
    return SqlStatement(stmt);
  }

  Result<SqlStatement> ParseSelect() {
    SqlSelect stmt;
    if (!ConsumeSymbol("*")) {
      while (true) {
        SCD_ASSIGN_OR_RETURN(SqlColumnRef ref, ParseColumnRef());
        stmt.items.push_back(std::move(ref));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (!ConsumeKeyword("from")) return Error("expected FROM");
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.database, &stmt.table));
    bool has_join = ConsumeKeyword("join");
    if (!has_join && ConsumeKeyword("inner")) {
      if (!ConsumeKeyword("join")) return Error("expected JOIN after INNER");
      has_join = true;
    }
    if (has_join) {
      std::string join_db, join_table;
      SCD_RETURN_IF_ERROR(ParseQualifiedName(&join_db, &join_table));
      if (join_db != stmt.database) {
        return Error("cross-database joins are not supported");
      }
      stmt.join_table = join_table;
      if (!ConsumeKeyword("on")) return Error("expected ON after JOIN");
      SCD_ASSIGN_OR_RETURN(stmt.join_left, ParseColumnRef());
      if (!ConsumeSymbol("=")) return Error("expected '=' in join condition");
      SCD_ASSIGN_OR_RETURN(stmt.join_right, ParseColumnRef());
    }
    if (ConsumeKeyword("where")) {
      while (true) {
        SCD_ASSIGN_OR_RETURN(SqlColumnRef ref, ParseColumnRef());
        if (!ConsumeSymbol("=")) {
          return Error("only equality predicates supported");
        }
        SCD_ASSIGN_OR_RETURN(Value value, ParseLiteral());
        stmt.where.emplace_back(std::move(ref), std::move(value));
        if (!ConsumeKeyword("and")) break;
      }
    }
    return SqlStatement(stmt);
  }

  Result<SqlColumnRef> ParseColumnRef() {
    SCD_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column name"));
    SqlColumnRef ref;
    if (ConsumeSymbol(".")) {
      SCD_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("column name"));
      ref.table = std::move(first);
      ref.column = std::move(second);
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<Value> ParseLiteral() {
    const Token& token = Peek();
    if (token.type == TokenType::kNumber) {
      ++pos_;
      SCD_ASSIGN_OR_RETURN(int64_t value, ParseInt64(token.text));
      return Value::Int(value);
    }
    if (token.type == TokenType::kString) {
      ++pos_;
      return Value::Text(token.text);
    }
    if (token.type == TokenType::kIdentifier) {
      if (token.text == "true") {
        ++pos_;
        return Value::Bool(true);
      }
      if (token.text == "false") {
        ++pos_;
        return Value::Bool(false);
      }
      if (token.text == "null") {
        ++pos_;
        return Value::Null();
      }
    }
    return Error("expected a literal");
  }

  Status ParseQualifiedName(std::string* database, std::string* table) {
    SCD_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("database name"));
    if (!ConsumeSymbol(".")) {
      return Error("table names must be database-qualified (db.table)");
    }
    SCD_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("table name"));
    *database = std::move(first);
    *table = std::move(second);
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  bool PeekKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kIdentifier && Peek().text == keyword;
  }
  bool ConsumeKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) return false;
    ++pos_;
    return true;
  }
  bool ConsumeSymbol(std::string_view symbol) {
    if (Peek().type != TokenType::kSymbol || Peek().text != symbol) return false;
    ++pos_;
    return true;
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) return Error("expected " + what);
    return tokens_[pos_++].text;
  }
  Status Error(const std::string& message) const {
    std::string near = AtEnd() ? "<end>" : Peek().raw;
    return Status::ParseError(message + " (near '" + near + "')");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- executor

/// Column binding of a (possibly joined) result: table name + schema column.
struct BoundColumn {
  std::string table;
  std::string column;
  size_t offset;  // position in the combined row
};

Result<size_t> ResolveRef(const std::vector<BoundColumn>& bindings,
                          const SqlColumnRef& ref) {
  const BoundColumn* found = nullptr;
  for (const BoundColumn& binding : bindings) {
    if (binding.column != ref.column) continue;
    if (!ref.table.empty() && binding.table != ref.table) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     ref.ToString() + "'");
    }
    found = &binding;
  }
  if (found == nullptr) {
    return Status::NotFound("unknown column '" + ref.ToString() + "'");
  }
  return found->offset;
}

Result<SqlResult> ExecuteSelect(SqlEngine* engine, const SqlSelect& stmt) {
  const SqlEngine* const_engine = engine;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const HeapTable> left,
                       const_engine->GetTable(stmt.database, stmt.table));

  // Build bindings and the combined row stream.
  std::vector<BoundColumn> bindings;
  size_t offset = 0;
  for (const SqlColumn& column : left->def().columns()) {
    bindings.push_back({stmt.table, column.name, offset++});
  }

  std::vector<SqlRow> combined;
  if (!stmt.join_table.has_value()) {
    for (const SqlRow* row : left->ScanAll()) combined.push_back(*row);
  } else {
    SCD_ASSIGN_OR_RETURN(
        std::shared_ptr<const HeapTable> right,
        const_engine->GetTable(stmt.database, *stmt.join_table));
    for (const SqlColumn& column : right->def().columns()) {
      bindings.push_back({*stmt.join_table, column.name, offset++});
    }
    // Resolve join keys against each side.
    auto resolve_side =
        [&](const SqlColumnRef& ref) -> Result<std::pair<bool, size_t>> {
      // Returns (is_left, column index within that table).
      if (ref.table == stmt.table || ref.table.empty()) {
        auto index = left->def().ColumnIndex(ref.column);
        if (index.ok()) return std::make_pair(true, *index);
      }
      if (ref.table == *stmt.join_table || ref.table.empty()) {
        auto index = right->def().ColumnIndex(ref.column);
        if (index.ok()) return std::make_pair(false, *index);
      }
      return Status::NotFound("join column '" + ref.ToString() +
                              "' not found");
    };
    SCD_ASSIGN_OR_RETURN(auto left_key, resolve_side(stmt.join_left));
    SCD_ASSIGN_OR_RETURN(auto right_key, resolve_side(stmt.join_right));
    if (left_key.first == right_key.first) {
      return Status::InvalidArgument(
          "join condition must reference both tables");
    }
    size_t left_col = left_key.first ? left_key.second : right_key.second;
    size_t right_col = left_key.first ? right_key.second : left_key.second;

    // Hash join: build on the right side.
    std::unordered_multimap<Value, const SqlRow*, ValueHash> build;
    for (const SqlRow* row : right->ScanAll()) {
      build.emplace((*row)[right_col], row);
    }
    for (const SqlRow* row : left->ScanAll()) {
      auto [begin, end] = build.equal_range((*row)[left_col]);
      for (auto it = begin; it != end; ++it) {
        SqlRow joined = *row;
        joined.insert(joined.end(), it->second->begin(), it->second->end());
        combined.push_back(std::move(joined));
      }
    }
  }

  // WHERE filtering.
  for (const auto& [ref, value] : stmt.where) {
    SCD_ASSIGN_OR_RETURN(size_t index, ResolveRef(bindings, ref));
    std::vector<SqlRow> filtered;
    for (SqlRow& row : combined) {
      if (row[index] == value) filtered.push_back(std::move(row));
    }
    combined = std::move(filtered);
  }

  // Projection.
  SqlResult result;
  std::vector<size_t> projection;
  if (stmt.items.empty()) {
    for (const BoundColumn& binding : bindings) {
      projection.push_back(binding.offset);
      result.columns.push_back(stmt.join_table.has_value()
                                   ? binding.table + "." + binding.column
                                   : binding.column);
    }
  } else {
    for (const SqlColumnRef& ref : stmt.items) {
      SCD_ASSIGN_OR_RETURN(size_t index, ResolveRef(bindings, ref));
      projection.push_back(index);
      result.columns.push_back(ref.ToString());
    }
  }
  result.rows.reserve(combined.size());
  for (const SqlRow& row : combined) {
    SqlRow projected;
    projected.reserve(projection.size());
    for (size_t index : projection) projected.push_back(row[index]);
    result.rows.push_back(std::move(projected));
  }
  return result;
}

}  // namespace

Result<SqlStatement> ParseSql(std::string_view input) {
  SCD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SqlResult> ExecuteSqlStatement(SqlEngine* engine,
                                      const SqlStatement& statement) {
  if (const auto* stmt = std::get_if<SqlCreateDatabase>(&statement)) {
    SCD_RETURN_IF_ERROR(engine->CreateDatabase(stmt->database));
    return SqlResult{};
  }
  if (const auto* stmt = std::get_if<SqlCreateTable>(&statement)) {
    SCD_RETURN_IF_ERROR(engine->CreateTable(stmt->def));
    return SqlResult{};
  }
  if (const auto* stmt = std::get_if<SqlCreateIndex>(&statement)) {
    SCD_RETURN_IF_ERROR(
        engine->CreateIndex(stmt->database, stmt->table, stmt->column));
    return SqlResult{};
  }
  if (const auto* stmt = std::get_if<SqlDropTable>(&statement)) {
    SCD_RETURN_IF_ERROR(engine->DropTable(stmt->database, stmt->table));
    return SqlResult{};
  }
  if (const auto* stmt = std::get_if<SqlInsert>(&statement)) {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const HeapTable> table,
                         static_cast<const SqlEngine*>(engine)->GetTable(
                             stmt->database, stmt->table));
    const SqlTableDef& def = table->def();
    std::vector<SqlRow> rows;
    rows.reserve(stmt->value_lists.size());
    for (const SqlRow& values : stmt->value_lists) {
      SqlRow row(def.num_columns(), Value::Null());
      for (size_t i = 0; i < stmt->columns.size(); ++i) {
        SCD_ASSIGN_OR_RETURN(size_t index, def.ColumnIndex(stmt->columns[i]));
        row[index] = values[i];
      }
      rows.push_back(std::move(row));
    }
    SCD_RETURN_IF_ERROR(
        engine->BulkInsert(stmt->database, stmt->table, std::move(rows)));
    return SqlResult{};
  }
  if (const auto* stmt = std::get_if<SqlSelect>(&statement)) {
    return ExecuteSelect(engine, *stmt);
  }
  if (const auto* stmt = std::get_if<SqlDelete>(&statement)) {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const HeapTable> table,
                         static_cast<const SqlEngine*>(engine)->GetTable(
                             stmt->database, stmt->table));
    std::vector<Value> keys;
    if (table->def().primary_key() == stmt->column) {
      keys.push_back(stmt->key);
    } else {
      SCD_ASSIGN_OR_RETURN(std::vector<const SqlRow*> rows,
                           table->SelectEq(stmt->column, stmt->key));
      size_t pk = table->def().PrimaryKeyIndex();
      for (const SqlRow* row : rows) keys.push_back((*row)[pk]);
    }
    SCD_RETURN_IF_ERROR(engine->BulkDelete(stmt->database, stmt->table, keys));
    return SqlResult{};
  }
  return Status::Internal("unhandled SQL statement variant");
}

Result<SqlResult> ExecuteSql(SqlEngine* engine, std::string_view input) {
  SCD_ASSIGN_OR_RETURN(SqlStatement statement, ParseSql(input));
  return ExecuteSqlStatement(engine, statement);
}

std::string SqlResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  out += std::string(out.size() > 1 ? out.size() - 1 : 0, '-');
  out += "\n";
  for (const SqlRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace scdwarf::sql
