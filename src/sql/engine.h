/// \file engine.h
/// \brief The MySQL-like engine: named databases of HeapTables, a redo log on
/// the write path, tablespace flush/reopen and disk accounting. Mirrors
/// nosql::Database so the benchmark harness can drive both stores uniformly.

#ifndef SCDWARF_SQL_ENGINE_H_
#define SCDWARF_SQL_ENGINE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "sql/heap_table.h"

namespace scdwarf::sql {

/// \brief A single-node relational engine.
///
/// With a data directory, mutation batches append to a redo log before being
/// applied, Flush() writes one tablespace file per table and truncates the
/// log, Open() reloads tablespaces then replays any unflushed log tail.
///
/// Concurrency: mirrors nosql::Database — mutations from different threads
/// serialize behind a fixed pool of per-table shard locks, catalog changes
/// take the catalog lock exclusively, and redo-log appends serialize behind
/// a dedicated log lock. Tables are shared_ptr-owned: GetTable() hands out
/// shared ownership, so a concurrent DropTable only removes the catalog
/// entry and the object outlives every user. Reads concurrent with writes
/// to the same table are not synchronized.
///
/// Durability: each mutation appends to the redo log and applies to the
/// table under one shard-lock critical section; Flush() rotates the log to
/// a sidecar under all shard locks, serializes every table, and deletes the
/// sidecar only after every tablespace hit disk, so acknowledged mutations
/// survive a crash at any point (replay tolerates duplicates).
class SqlEngine {
 public:
  /// In-memory engine.
  SqlEngine() = default;

  /// Creates or opens a durable engine rooted at \p data_dir.
  static Result<SqlEngine> Open(const std::string& data_dir);

  SqlEngine(SqlEngine&&) noexcept = default;
  SqlEngine& operator=(SqlEngine&&) noexcept = default;

  Status CreateDatabase(const std::string& name);
  bool HasDatabase(const std::string& name) const;

  Status CreateTable(const SqlTableDef& def);
  Status DropTable(const std::string& database, const std::string& table);
  Status CreateIndex(const std::string& database, const std::string& table,
                     const std::string& column);

  /// Looks up a table. The returned shared_ptr keeps the table alive even
  /// if it is concurrently dropped.
  Result<std::shared_ptr<HeapTable>> GetTable(const std::string& database,
                                              const std::string& table);
  Result<std::shared_ptr<const HeapTable>> GetTable(
      const std::string& database, const std::string& table) const;

  Status Insert(const std::string& database, const std::string& table,
                SqlRow row);

  /// Multi-row insert with one redo-log append (MySQL's bulk INSERT ...
  /// VALUES (...), (...), the mode §5 uses for both engines).
  Status BulkInsert(const std::string& database, const std::string& table,
                    std::vector<SqlRow> rows);

  /// Deletes one row by primary key (redo-logged like inserts).
  Status Delete(const std::string& database, const std::string& table,
                const Value& key);

  /// Deletes many rows by primary key with one redo-log append.
  Status BulkDelete(const std::string& database, const std::string& table,
                    const std::vector<Value>& keys);

  Status Flush();
  Result<uint64_t> DiskSizeBytes() const;
  uint64_t EstimateBytes() const;
  Result<std::vector<std::string>> ListTables(const std::string& database) const;

  const std::string& data_dir() const { return data_dir_; }

 private:
  static constexpr size_t kTableLockShards = 16;

  /// Lock state lives behind one heap allocation so the engine itself stays
  /// movable (mutexes are neither movable nor copyable).
  struct Sync {
    std::shared_mutex catalog_mu;  ///< databases_ map shape
    std::array<std::mutex, kTableLockShards> table_shards;  ///< row contents
    std::mutex log_mu;  ///< redo-log appends
  };

  Status AppendToRedoLog(const std::string& database, const std::string& table,
                         const std::vector<SqlRow>& rows,
                         bool is_delete = false);
  /// Replays the rotated sidecar (crash mid-flush) then the live log.
  Status ReplayRedoLog();
  Status ReplayRedoLogFile(const std::string& path);
  /// Moves the live redo log aside to the sidecar (appending if a prior
  /// flush's sidecar survived). Caller must exclude writers — every shard
  /// lock plus log_mu.
  Status RotateRedoLog();
  std::string TablespacePath(const std::string& database,
                             const std::string& table) const;
  std::string RedoLogPath() const;
  std::string RotatedRedoLogPath() const;

  /// The shard lock guarding (database, table)'s row contents.
  std::mutex& TableLock(const std::string& database,
                        const std::string& table) const;

  std::string data_dir_;
  std::map<std::string, std::map<std::string, std::shared_ptr<HeapTable>>>
      databases_;
  std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
};

}  // namespace scdwarf::sql

#endif  // SCDWARF_SQL_ENGINE_H_
