/// \file heap_table.h
/// \brief An InnoDB-style table: rows clustered in a B-tree on the primary
/// key, non-unique secondary indexes, and page-based tablespace
/// serialization that models InnoDB's on-disk overheads (record headers,
/// transaction metadata, 16 KiB pages with a 15/16 fill factor).

#ifndef SCDWARF_SQL_HEAP_TABLE_H_
#define SCDWARF_SQL_HEAP_TABLE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sql/catalog.h"

namespace scdwarf::sql {

/// InnoDB-format constants used by the tablespace serializer. Sources:
/// compact record format (5-byte record header, 6-byte DB_TRX_ID, 7-byte
/// DB_ROLL_PTR) and the default 16 KiB page with ~1/16 reserved free space.
struct InnoDbFormat {
  static constexpr size_t kRecordHeaderBytes = 5;
  static constexpr size_t kTrxMetaBytes = 13;
  static constexpr size_t kPageBytes = 16 * 1024;
  static constexpr size_t kPageOverheadBytes = 128;  // fil + page headers, dir
  static constexpr size_t kPagePayloadBytes =
      (kPageBytes - kPageOverheadBytes) * 15 / 16;
  static constexpr size_t kIndexEntryOverheadBytes = kRecordHeaderBytes;
  /// Undo record: type + table id + pk reference (rollback support).
  static constexpr size_t kUndoHeaderBytes = 12;
};

/// \brief A relational table. Insert enforces primary-key uniqueness
/// (MySQL semantics — unlike the NoSQL store's upserts).
class HeapTable {
 public:
  explicit HeapTable(SqlTableDef def);

  const SqlTableDef& def() const { return def_; }

  /// Inserts a row; AlreadyExists on duplicate primary key,
  /// InvalidArgument on arity/type/nullability violations.
  Status Insert(SqlRow row);

  Result<const SqlRow*> GetByPk(const Value& key) const;

  /// Rows where \p column == \p value; uses the clustered or a secondary
  /// index when possible, otherwise falls back to a full scan (MySQL always
  /// allows filtering; it is just slow — which the insert benches never hit).
  Result<std::vector<const SqlRow*>> SelectEq(std::string_view column,
                                              const Value& value) const;

  /// All rows in primary-key order.
  std::vector<const SqlRow*> ScanAll() const;

  size_t num_rows() const { return rows_.size(); }

  Status CreateIndex(std::string_view column);

  /// Deletes the row with primary key \p key; NotFound when absent.
  Status DeleteByPk(const Value& key);

  /// Serializes the clustered index and all secondary indexes as page
  /// images — the bytes written to the .tbl tablespace file.
  void SerializeTo(ByteWriter* writer) const;
  uint64_t EstimateTablespaceBytes() const;

  static Result<std::unique_ptr<HeapTable>> Deserialize(ByteReader* reader);

  /// Commits the open transaction: discards the insert undo log (InnoDB
  /// purges insert undo at commit). Called by the engine's flush path.
  void CommitTransaction() { undo_log_.Clear(); }

 private:
  Status ValidateRow(const SqlRow& row) const;

  SqlTableDef def_;
  size_t pk_index_ = 0;
  /// Scratch buffer for insert-time record formatting.
  ByteWriter record_scratch_;
  /// Physical bytes of all formatted records (headers included).
  uint64_t data_bytes_ = 0;
  /// Buffer-pool page images: every insert copies its formatted record into
  /// the current page, as InnoDB stores rows in page format from the moment
  /// they enter the buffer pool.
  std::vector<uint8_t> buffer_pool_;
  /// Insert undo log of the open transaction (cleared on commit/flush):
  /// InnoDB writes one undo record per inserted row for rollback.
  ByteWriter undo_log_;
  /// Clustered index: pk -> full row (InnoDB stores rows in the PK B-tree).
  std::map<Value, SqlRow> rows_;
  /// column index -> (value -> pk) non-unique index.
  std::map<size_t, std::multimap<Value, Value>> secondary_;
};

}  // namespace scdwarf::sql

#endif  // SCDWARF_SQL_HEAP_TABLE_H_
