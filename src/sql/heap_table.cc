#include "sql/heap_table.h"

#include "common/logging.h"

namespace scdwarf::sql {

namespace {

constexpr uint32_t kTablespaceMagic = 0x4C425453;  // "STBL"
constexpr uint8_t kTablespaceVersion = 1;

/// Accumulates fixed-size page images: [u32 record count][records][padding].
/// Records never straddle pages, like InnoDB's compact rows.
class PageWriter {
 public:
  explicit PageWriter(ByteWriter* out) : out_(out) {}

  /// Appends one record (pre-rendered bytes incl. header placeholders).
  void Append(const std::vector<uint8_t>& record) {
    if (!body_.empty() &&
        sizeof(uint32_t) + body_.size() + record.size() >
            InnoDbFormat::kPagePayloadBytes) {
      FlushPage();
    }
    body_.insert(body_.end(), record.begin(), record.end());
    ++count_;
  }

  void Finish() {
    if (!body_.empty()) FlushPage();
  }

 private:
  void FlushPage() {
    out_->PutU32(count_);
    out_->PutRaw(body_.data(), body_.size());
    size_t used = sizeof(uint32_t) + body_.size();
    // A record larger than the payload area spills into an oversized page
    // (InnoDB would chain overflow pages; the byte count is equivalent).
    if (used < InnoDbFormat::kPageBytes) {
      std::vector<uint8_t> padding(InnoDbFormat::kPageBytes - used, 0);
      out_->PutRaw(padding.data(), padding.size());
    }
    body_.clear();
    count_ = 0;
  }

  ByteWriter* out_;
  std::vector<uint8_t> body_;
  uint32_t count_ = 0;
};

/// Reads records back from PageWriter output.
class PageReader {
 public:
  explicit PageReader(ByteReader* in) : in_(in) {}

  /// Positions the reader at the next record, crossing page boundaries and
  /// skipping padding as needed. Call exactly once per serialized record.
  Status NextRecord() {
    if (records_left_ == 0) {
      SCD_RETURN_IF_ERROR(SkipPadding());
      page_start_ = in_->offset();
      SCD_ASSIGN_OR_RETURN(records_left_, in_->ReadU32());
      if (records_left_ == 0) {
        return Status::ParseError("empty page in tablespace");
      }
    }
    --records_left_;
    return Status::OK();
  }

  /// Skips trailing padding after the last record of the final page.
  Status FinishPages() {
    records_left_ = 0;
    return SkipPadding();
  }

 private:
  Status SkipPadding() {
    if (!in_page_) {
      in_page_ = true;
      return Status::OK();
    }
    size_t consumed = in_->offset() - page_start_;
    if (consumed >= InnoDbFormat::kPageBytes) return Status::OK();  // oversized
    size_t skip = InnoDbFormat::kPageBytes - consumed;
    for (size_t i = 0; i < skip; ++i) {
      SCD_RETURN_IF_ERROR(in_->ReadU8().status());
    }
    return Status::OK();
  }

  ByteReader* in_;
  size_t page_start_ = 0;
  uint32_t records_left_ = 0;
  bool in_page_ = false;
};

}  // namespace

HeapTable::HeapTable(SqlTableDef def) : def_(std::move(def)) {
  SCD_CHECK(def_.Validate().ok()) << "invalid definition passed to HeapTable";
  pk_index_ = def_.PrimaryKeyIndex();
  for (size_t index : def_.secondary_indexes()) {
    secondary_.emplace(index, std::multimap<Value, Value>{});
  }
}

Status HeapTable::ValidateRow(const SqlRow& row) const {
  if (row.size() != def_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, " +
        def_.QualifiedName() + " has " + std::to_string(def_.num_columns()) +
        " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const SqlColumn& column = def_.columns()[i];
    if (row[i].is_null()) {
      if (!column.nullable) {
        return Status::InvalidArgument("column '" + column.name +
                                       "' is NOT NULL");
      }
      continue;
    }
    if (!row[i].MatchesType(column.type)) {
      return Status::InvalidArgument(
          "value " + row[i].ToCqlLiteral() + " does not match type " +
          DataTypeName(column.type) + " of column '" + column.name + "'");
    }
  }
  if (row[pk_index_].is_null()) {
    return Status::InvalidArgument("primary key must not be null");
  }
  return Status::OK();
}

Status HeapTable::Insert(SqlRow row) {
  SCD_RETURN_IF_ERROR(ValidateRow(row));
  // InnoDB constructs the physical (compact-format) record when the row is
  // inserted into its clustered-index page, not at flush time; build it here
  // so insert pays the same formatting cost and page-fill accounting stays
  // exact.
  record_scratch_.Clear();
  for (const Value& value : row) value.EncodeTo(&record_scratch_);
  data_bytes_ += record_scratch_.size() + InnoDbFormat::kRecordHeaderBytes +
                 InnoDbFormat::kTrxMetaBytes;
  // Copy the record into the buffer-pool page image (page-format storage).
  buffer_pool_.insert(buffer_pool_.end(),
                      InnoDbFormat::kRecordHeaderBytes +
                          InnoDbFormat::kTrxMetaBytes,
                      0);
  buffer_pool_.insert(buffer_pool_.end(), record_scratch_.data().begin(),
                      record_scratch_.data().end());
  // Insert undo record (type + table id + primary key) for rollback.
  for (size_t i = 0; i < InnoDbFormat::kUndoHeaderBytes; ++i) {
    undo_log_.PutU8(0);
  }
  row[pk_index_].EncodeTo(&undo_log_);
  Value key = row[pk_index_];
  auto [it, inserted] = rows_.emplace(std::move(key), std::move(row));
  if (!inserted) {
    return Status::AlreadyExists("duplicate primary key " +
                                 it->first.ToCqlLiteral() + " in " +
                                 def_.QualifiedName());
  }
  for (auto& [column, index] : secondary_) {
    index.emplace(it->second[column], it->first);
  }
  return Status::OK();
}

Status HeapTable::DeleteByPk(const Value& key) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("no row with primary key " + key.ToCqlLiteral() +
                            " in " + def_.QualifiedName());
  }
  for (auto& [column, index] : secondary_) {
    auto [begin, end] = index.equal_range(it->second[column]);
    for (auto entry = begin; entry != end; ++entry) {
      if (entry->second == key) {
        index.erase(entry);
        break;
      }
    }
  }
  // Delete undo record (type + table id + pk), like the insert path.
  for (size_t i = 0; i < InnoDbFormat::kUndoHeaderBytes; ++i) {
    undo_log_.PutU8(0);
  }
  key.EncodeTo(&undo_log_);
  rows_.erase(it);
  return Status::OK();
}

Result<const SqlRow*> HeapTable::GetByPk(const Value& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("no row with primary key " + key.ToCqlLiteral() +
                            " in " + def_.QualifiedName());
  }
  return &it->second;
}

Result<std::vector<const SqlRow*>> HeapTable::SelectEq(
    std::string_view column, const Value& value) const {
  SCD_ASSIGN_OR_RETURN(size_t index, def_.ColumnIndex(column));
  std::vector<const SqlRow*> result;
  if (index == pk_index_) {
    auto row = GetByPk(value);
    if (row.ok()) result.push_back(*row);
    return result;
  }
  auto secondary_it = secondary_.find(index);
  if (secondary_it != secondary_.end()) {
    auto [begin, end] = secondary_it->second.equal_range(value);
    for (auto it = begin; it != end; ++it) {
      result.push_back(&rows_.find(it->second)->second);
    }
    return result;
  }
  for (const auto& [key, row] : rows_) {
    if (row[index] == value) result.push_back(&row);
  }
  return result;
}

std::vector<const SqlRow*> HeapTable::ScanAll() const {
  std::vector<const SqlRow*> result;
  result.reserve(rows_.size());
  for (const auto& [key, row] : rows_) result.push_back(&row);
  return result;
}

Status HeapTable::CreateIndex(std::string_view column) {
  SCD_RETURN_IF_ERROR(def_.AddSecondaryIndex(column));
  size_t index = def_.ColumnIndex(column).ValueOrDie();
  auto& entries = secondary_[index];
  for (const auto& [key, row] : rows_) entries.emplace(row[index], key);
  return Status::OK();
}

void HeapTable::SerializeTo(ByteWriter* writer) const {
  writer->PutU32(kTablespaceMagic);
  writer->PutU8(kTablespaceVersion);
  def_.EncodeTo(writer);
  writer->PutVarint(rows_.size());

  // Clustered index pages: rows in PK order, each carrying the InnoDB
  // record header and transaction metadata placeholders.
  if (!rows_.empty()) {
    PageWriter pages(writer);
    std::vector<uint8_t> record;
    for (const auto& [key, row] : rows_) {
      record.assign(
          InnoDbFormat::kRecordHeaderBytes + InnoDbFormat::kTrxMetaBytes, 0);
      ByteWriter values;
      for (const Value& value : row) value.EncodeTo(&values);
      record.insert(record.end(), values.data().begin(), values.data().end());
      pages.Append(record);
    }
    pages.Finish();
  }

  // Secondary index pages: (value, pk) entries with record headers.
  writer->PutVarint(secondary_.size());
  for (const auto& [column, entries] : secondary_) {
    writer->PutVarint(column);
    writer->PutVarint(entries.size());
    if (entries.empty()) continue;
    PageWriter pages(writer);
    std::vector<uint8_t> record;
    for (const auto& [value, pk] : entries) {
      record.assign(InnoDbFormat::kIndexEntryOverheadBytes, 0);
      ByteWriter values;
      value.EncodeTo(&values);
      pk.EncodeTo(&values);
      record.insert(record.end(), values.data().begin(), values.data().end());
      pages.Append(record);
    }
    pages.Finish();
  }
}

uint64_t HeapTable::EstimateTablespaceBytes() const {
  ByteWriter writer;
  SerializeTo(&writer);
  return writer.size();
}

Result<std::unique_ptr<HeapTable>> HeapTable::Deserialize(ByteReader* reader) {
  SCD_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kTablespaceMagic) {
    return Status::ParseError("bad tablespace magic");
  }
  SCD_ASSIGN_OR_RETURN(uint8_t version, reader->ReadU8());
  if (version != kTablespaceVersion) {
    return Status::ParseError("unsupported tablespace version");
  }
  SCD_ASSIGN_OR_RETURN(SqlTableDef def, SqlTableDef::DecodeFrom(reader));
  auto table = std::make_unique<HeapTable>(def);
  SCD_ASSIGN_OR_RETURN(uint64_t num_rows, reader->ReadVarint());

  if (num_rows > 0) {
    PageReader pages(reader);
    for (uint64_t r = 0; r < num_rows; ++r) {
      SCD_RETURN_IF_ERROR(pages.NextRecord());
      for (size_t i = 0;
           i < InnoDbFormat::kRecordHeaderBytes + InnoDbFormat::kTrxMetaBytes;
           ++i) {
        SCD_RETURN_IF_ERROR(reader->ReadU8().status());
      }
      SqlRow row;
      row.reserve(def.num_columns());
      for (size_t c = 0; c < def.num_columns(); ++c) {
        SCD_ASSIGN_OR_RETURN(Value value, Value::DecodeFrom(reader));
        row.push_back(std::move(value));
      }
      SCD_RETURN_IF_ERROR(table->Insert(std::move(row)));
    }
    SCD_RETURN_IF_ERROR(pages.FinishPages());
  }

  // Secondary index blocks are rebuilt from rows on Insert; skip the pages.
  SCD_ASSIGN_OR_RETURN(uint64_t num_indexes, reader->ReadVarint());
  for (uint64_t i = 0; i < num_indexes; ++i) {
    SCD_RETURN_IF_ERROR(reader->ReadVarint().status());  // column
    SCD_ASSIGN_OR_RETURN(uint64_t num_entries, reader->ReadVarint());
    if (num_entries == 0) continue;
    PageReader pages(reader);
    for (uint64_t e = 0; e < num_entries; ++e) {
      SCD_RETURN_IF_ERROR(pages.NextRecord());
      for (size_t b = 0; b < InnoDbFormat::kIndexEntryOverheadBytes; ++b) {
        SCD_RETURN_IF_ERROR(reader->ReadU8().status());
      }
      SCD_RETURN_IF_ERROR(Value::DecodeFrom(reader).status());
      SCD_RETURN_IF_ERROR(Value::DecodeFrom(reader).status());
    }
    SCD_RETURN_IF_ERROR(pages.FinishPages());
  }
  return table;
}

}  // namespace scdwarf::sql
