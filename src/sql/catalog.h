/// \file catalog.h
/// \brief Relational schemas for the MySQL-like engine used by the paper's
/// MySQL-DWARF (Fig. 4) and MySQL-Min comparison schemas.
///
/// The engine deliberately has no set type: a DWARF node's children must be
/// exploded into NODE_CHILDREN / CELL_CHILDREN join-table rows, which is the
/// exact storage blow-up Table 4 attributes to MySQL-DWARF.

#ifndef SCDWARF_SQL_CATALOG_H_
#define SCDWARF_SQL_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace scdwarf::sql {

/// \brief One relational column. VARCHAR/TEXT map to kText, INT/BIGINT to
/// the integer types, BOOL to kBool; kIntSet is rejected by Validate().
struct SqlColumn {
  std::string name;
  DataType type = DataType::kInt;
  bool nullable = true;

  SqlColumn() = default;
  SqlColumn(std::string name_in, DataType type_in, bool nullable_in = true)
      : name(std::move(name_in)), type(type_in), nullable(nullable_in) {}

  bool operator==(const SqlColumn& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// \brief Relational table definition: columns, one primary key column and
/// optional secondary (non-unique) indexes.
class SqlTableDef {
 public:
  SqlTableDef() = default;
  SqlTableDef(std::string database, std::string name,
              std::vector<SqlColumn> columns, std::string primary_key)
      : database_(std::move(database)),
        name_(std::move(name)),
        columns_(std::move(columns)),
        primary_key_(std::move(primary_key)) {}

  Status Validate() const;

  const std::string& database() const { return database_; }
  const std::string& name() const { return name_; }
  std::string QualifiedName() const { return database_ + "." + name_; }
  const std::vector<SqlColumn>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const std::string& primary_key() const { return primary_key_; }

  Result<size_t> ColumnIndex(std::string_view column) const;
  size_t PrimaryKeyIndex() const;

  const std::vector<size_t>& secondary_indexes() const {
    return secondary_indexes_;
  }
  Status AddSecondaryIndex(std::string_view column);

  /// Renders the CREATE TABLE statement (parsable by the SQL subset),
  /// including NOT NULL markers, the PRIMARY KEY clause and inline INDEX
  /// clauses for secondary indexes — the Fig. 4 DDL.
  std::string ToSqlDdl() const;

  /// Binary round-trip for tablespace file headers.
  void EncodeTo(ByteWriter* writer) const;
  static Result<SqlTableDef> DecodeFrom(ByteReader* reader);

 private:
  std::string database_;
  std::string name_;
  std::vector<SqlColumn> columns_;
  std::string primary_key_;
  std::vector<size_t> secondary_indexes_;
};

using SqlRow = std::vector<Value>;

}  // namespace scdwarf::sql

#endif  // SCDWARF_SQL_CATALOG_H_
