/// \file sql.h
/// \brief SQL subset for the relational engine. Covers the DDL of Fig. 4,
/// multi-row bulk INSERT (how §5 loads MySQL), and SELECT with equality
/// predicates plus inner joins (needed to stitch DWARF nodes back together
/// from the NODE_CHILDREN / CELL_CHILDREN join tables).
///
/// Grammar sketch:
///   CREATE DATABASE <name>
///   CREATE TABLE <db>.<t> ( <col> <type> [NOT NULL] [, ...]
///       , PRIMARY KEY ( <col> ) [, INDEX ( <col> )]... )
///   CREATE INDEX ON <db>.<t> ( <col> )
///   DROP TABLE <db>.<t>
///   INSERT INTO <db>.<t> ( <cols> ) VALUES ( <lits> ) [, ( <lits> )]...
///   DELETE FROM <db>.<t> WHERE <col> = <lit>
///   SELECT <*|items> FROM <db>.<t>
///       [JOIN <db>.<t2> ON <t>.<col> = <t2>.<col>]
///       [WHERE <colref> = <lit> [AND ...]]
/// Types: INT, BIGINT, VARCHAR(n), TEXT, BOOL/BOOLEAN/TINYINT.

#ifndef SCDWARF_SQL_SQL_H_
#define SCDWARF_SQL_SQL_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "sql/engine.h"

namespace scdwarf::sql {

struct SqlCreateDatabase {
  std::string database;
};

struct SqlCreateTable {
  SqlTableDef def;
};

struct SqlCreateIndex {
  std::string database;
  std::string table;
  std::string column;
};

struct SqlDropTable {
  std::string database;
  std::string table;
};

struct SqlInsert {
  std::string database;
  std::string table;
  std::vector<std::string> columns;
  std::vector<SqlRow> value_lists;
};

/// Column reference, optionally table-qualified ("cell.id" or "id").
struct SqlColumnRef {
  std::string table;  // empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

struct SqlSelect {
  std::string database;
  std::string table;
  std::optional<std::string> join_table;  // same database
  SqlColumnRef join_left, join_right;     // ON left = right
  std::vector<SqlColumnRef> items;        // empty => *
  std::vector<std::pair<SqlColumnRef, Value>> where;
};

/// DELETE with one equality predicate; non-pk predicates delete every
/// matching row through a scan (MySQL semantics).
struct SqlDelete {
  std::string database;
  std::string table;
  std::string column;
  Value key;
};

using SqlStatement = std::variant<SqlCreateDatabase, SqlCreateTable,
                                  SqlCreateIndex, SqlDropTable, SqlInsert,
                                  SqlSelect, SqlDelete>;

Result<SqlStatement> ParseSql(std::string_view input);

/// \brief Result set; DDL/DML yield empty column/row lists.
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<SqlRow> rows;

  std::string ToString() const;
};

Result<SqlResult> ExecuteSql(SqlEngine* engine, std::string_view input);
Result<SqlResult> ExecuteSqlStatement(SqlEngine* engine,
                                      const SqlStatement& statement);

}  // namespace scdwarf::sql

#endif  // SCDWARF_SQL_SQL_H_
