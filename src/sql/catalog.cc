#include "sql/catalog.h"

#include <algorithm>

namespace scdwarf::sql {

Status SqlTableDef::Validate() const {
  if (database_.empty()) return Status::InvalidArgument("empty database name");
  if (name_.empty()) return Status::InvalidArgument("empty table name");
  if (columns_.empty()) {
    return Status::InvalidArgument("table " + QualifiedName() +
                                   " has no columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name.empty()) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " has an empty name");
    }
    if (columns_[i].type == DataType::kIntSet) {
      return Status::InvalidArgument(
          "relational engine has no set type (column '" + columns_[i].name +
          "'); use a join table");
    }
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        return Status::InvalidArgument("duplicate column '" + columns_[i].name +
                                       "' in " + QualifiedName());
      }
    }
  }
  if (!ColumnIndex(primary_key_).ok()) {
    return Status::InvalidArgument("primary key '" + primary_key_ +
                                   "' is not a column of " + QualifiedName());
  }
  for (size_t index : secondary_indexes_) {
    if (index >= columns_.size()) {
      return Status::InvalidArgument("secondary index out of range");
    }
  }
  return Status::OK();
}

Result<size_t> SqlTableDef::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return Status::NotFound("no column '" + std::string(column) + "' in " +
                          QualifiedName());
}

size_t SqlTableDef::PrimaryKeyIndex() const {
  return ColumnIndex(primary_key_).ValueOrDie();
}

Status SqlTableDef::AddSecondaryIndex(std::string_view column) {
  SCD_ASSIGN_OR_RETURN(size_t index, ColumnIndex(column));
  if (columns_[index].name == primary_key_) {
    return Status::InvalidArgument("primary key is already indexed");
  }
  if (std::find(secondary_indexes_.begin(), secondary_indexes_.end(), index) !=
      secondary_indexes_.end()) {
    return Status::AlreadyExists("index on '" + std::string(column) +
                                 "' already exists");
  }
  secondary_indexes_.push_back(index);
  std::sort(secondary_indexes_.begin(), secondary_indexes_.end());
  return Status::OK();
}

std::string SqlTableDef::ToSqlDdl() const {
  std::string ddl = "CREATE TABLE " + QualifiedName() + " (";
  for (const SqlColumn& column : columns_) {
    ddl += column.name;
    switch (column.type) {
      case DataType::kInt:
        ddl += " INT";
        break;
      case DataType::kBigint:
        ddl += " BIGINT";
        break;
      case DataType::kText:
        ddl += " TEXT";
        break;
      case DataType::kBool:
        ddl += " BOOL";
        break;
      case DataType::kIntSet:
        ddl += " /* unrepresentable */";
        break;
    }
    if (!column.nullable) ddl += " NOT NULL";
    ddl += ", ";
  }
  ddl += "PRIMARY KEY (" + primary_key_ + ")";
  for (size_t index : secondary_indexes_) {
    ddl += ", INDEX (" + columns_[index].name + ")";
  }
  ddl += ")";
  return ddl;
}

void SqlTableDef::EncodeTo(ByteWriter* writer) const {
  writer->PutString(database_);
  writer->PutString(name_);
  writer->PutVarint(columns_.size());
  for (const SqlColumn& column : columns_) {
    writer->PutString(column.name);
    writer->PutU8(static_cast<uint8_t>(column.type));
    writer->PutU8(column.nullable ? 1 : 0);
  }
  writer->PutString(primary_key_);
  writer->PutVarint(secondary_indexes_.size());
  for (size_t index : secondary_indexes_) writer->PutVarint(index);
}

Result<SqlTableDef> SqlTableDef::DecodeFrom(ByteReader* reader) {
  SqlTableDef def;
  SCD_ASSIGN_OR_RETURN(def.database_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(def.name_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(uint64_t num_columns, reader->ReadVarint());
  for (uint64_t i = 0; i < num_columns; ++i) {
    SqlColumn column;
    SCD_ASSIGN_OR_RETURN(column.name, reader->ReadString());
    SCD_ASSIGN_OR_RETURN(uint8_t type, reader->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kIntSet)) {
      return Status::ParseError("invalid column type tag");
    }
    column.type = static_cast<DataType>(type);
    SCD_ASSIGN_OR_RETURN(uint8_t nullable, reader->ReadU8());
    column.nullable = nullable != 0;
    def.columns_.push_back(std::move(column));
  }
  SCD_ASSIGN_OR_RETURN(def.primary_key_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(uint64_t num_indexes, reader->ReadVarint());
  for (uint64_t i = 0; i < num_indexes; ++i) {
    SCD_ASSIGN_OR_RETURN(uint64_t index, reader->ReadVarint());
    def.secondary_indexes_.push_back(static_cast<size_t>(index));
  }
  SCD_RETURN_IF_ERROR(def.Validate());
  return def;
}

}  // namespace scdwarf::sql
