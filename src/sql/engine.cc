#include "sql/engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <functional>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace scdwarf::sql {

namespace fs = std::filesystem;

namespace {

metrics::Counter* FlushesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "sql_flushes_total", {}, "SqlEngine::Flush calls");
  return counter;
}

FixedBucketHistogram* FlushHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "sql_flush_us", {},
          "full Flush wall time: rotation + tablespace serialization (us)");
  return hist;
}

metrics::Counter* LogRotationsCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "sql_log_rotations_total", {},
      "redo-log rotations to the flush sidecar");
  return counter;
}

FixedBucketHistogram* LogRotateHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "sql_log_rotate_us", {},
          "redo-log rotation critical section incl. writer exclusion (us)");
  return hist;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("short read from " + path);
  }
  return bytes;
}

std::string SanitizeName(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

Result<SqlEngine> SqlEngine::Open(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument(
        "data_dir must not be empty; use the default constructor for memory "
        "mode");
  }
  SqlEngine engine;
  engine.data_dir_ = data_dir;
  std::error_code ec;
  fs::create_directories(data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + data_dir + ": " + ec.message());
  }
  for (const auto& db_entry : fs::directory_iterator(data_dir)) {
    if (!db_entry.is_directory()) continue;
    std::string database = db_entry.path().filename().string();
    engine.databases_[database];
    for (const auto& tbl_entry : fs::directory_iterator(db_entry.path())) {
      if (tbl_entry.path().extension() != ".tbl") continue;
      SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           ReadFile(tbl_entry.path().string()));
      ByteReader reader(bytes);
      auto table = HeapTable::Deserialize(&reader);
      if (!table.ok()) {
        return table.status().WithContext("loading " +
                                          tbl_entry.path().string());
      }
      std::string name = (*table)->def().name();
      engine.databases_[database][name] = std::move(*table);
    }
  }
  SCD_RETURN_IF_ERROR(engine.ReplayRedoLog());
  return engine;
}

bool SqlEngine::HasDatabase(const std::string& name) const {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  return databases_.count(name) > 0;
}

Status SqlEngine::CreateDatabase(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty database name");
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  if (databases_.count(name) > 0) {
    return Status::AlreadyExists("database '" + name + "' already exists");
  }
  databases_[name];
  return Status::OK();
}

Status SqlEngine::CreateTable(const SqlTableDef& def) {
  SCD_RETURN_IF_ERROR(def.Validate());
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto db = databases_.find(def.database());
  if (db == databases_.end()) {
    return Status::NotFound("database '" + def.database() + "' does not exist");
  }
  if (db->second.count(def.name()) > 0) {
    return Status::AlreadyExists("table " + def.QualifiedName() +
                                 " already exists");
  }
  db->second[def.name()] = std::make_shared<HeapTable>(def);
  return Status::OK();
}

Status SqlEngine::DropTable(const std::string& database,
                            const std::string& table) {
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto db = databases_.find(database);
  if (db == databases_.end() || db->second.erase(table) == 0) {
    return Status::NotFound("table " + database + "." + table +
                            " does not exist");
  }
  if (!data_dir_.empty()) {
    std::error_code ec;
    fs::remove(TablespacePath(database, table), ec);
  }
  return Status::OK();
}

Status SqlEngine::CreateIndex(const std::string& database,
                              const std::string& table,
                              const std::string& column) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<HeapTable> t, GetTable(database, table));
  std::lock_guard<std::mutex> lock(TableLock(database, table));
  return t->CreateIndex(column);
}

Result<std::shared_ptr<HeapTable>> SqlEngine::GetTable(
    const std::string& database, const std::string& table) {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto db = databases_.find(database);
  if (db == databases_.end()) {
    return Status::NotFound("database '" + database + "' does not exist");
  }
  auto it = db->second.find(table);
  if (it == db->second.end()) {
    return Status::NotFound("table " + database + "." + table +
                            " does not exist");
  }
  return it->second;
}

Result<std::shared_ptr<const HeapTable>> SqlEngine::GetTable(
    const std::string& database, const std::string& table) const {
  auto* self = const_cast<SqlEngine*>(this);
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<HeapTable> t,
                       self->GetTable(database, table));
  return std::shared_ptr<const HeapTable>(std::move(t));
}

Status SqlEngine::Insert(const std::string& database, const std::string& table,
                         SqlRow row) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<HeapTable> t, GetTable(database, table));
  // One shard-lock critical section covers the log append and the in-memory
  // apply, so no mutation straddles Flush()'s log rotation (which holds
  // every shard lock).
  std::lock_guard<std::mutex> lock(TableLock(database, table));
  if (!data_dir_.empty()) {
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(AppendToRedoLog(database, table, {row}));
  }
  return t->Insert(std::move(row));
}

Status SqlEngine::BulkInsert(const std::string& database,
                             const std::string& table,
                             std::vector<SqlRow> rows) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<HeapTable> t, GetTable(database, table));
  std::lock_guard<std::mutex> lock(TableLock(database, table));
  if (!data_dir_.empty()) {
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(AppendToRedoLog(database, table, rows));
  }
  for (SqlRow& row : rows) {
    SCD_RETURN_IF_ERROR(t->Insert(std::move(row)));
  }
  return Status::OK();
}

Status SqlEngine::Delete(const std::string& database, const std::string& table,
                         const Value& key) {
  return BulkDelete(database, table, {key});
}

Status SqlEngine::BulkDelete(const std::string& database,
                             const std::string& table,
                             const std::vector<Value>& keys) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<HeapTable> t, GetTable(database, table));
  std::lock_guard<std::mutex> lock(TableLock(database, table));
  if (!data_dir_.empty()) {
    std::vector<SqlRow> key_rows;
    key_rows.reserve(keys.size());
    for (const Value& key : keys) key_rows.push_back({key});
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(
        AppendToRedoLog(database, table, key_rows, /*is_delete=*/true));
  }
  for (const Value& key : keys) {
    SCD_RETURN_IF_ERROR(t->DeleteByPk(key));
  }
  return Status::OK();
}

Status SqlEngine::Flush() {
  trace::ScopedSpan span("sql.flush");
  Stopwatch flush_watch;
  FlushesCounter()->Increment();
  if (data_dir_.empty()) {
    std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
    for (const auto& [database, tables] : databases_) {
      for (const auto& [name, table] : tables) {
        std::lock_guard<std::mutex> lock(TableLock(database, name));
        table->CommitTransaction();
      }
    }
    return Status::OK();
  }
  // Rotate the redo log with every writer excluded (all shard locks +
  // log_mu); after the cut each logged mutation is either in the sidecar
  // and already applied — captured by the serialization below — or
  // entirely in the fresh live log.
  {
    Stopwatch rotate_watch;
    std::array<std::unique_lock<std::mutex>, kTableLockShards> shard_locks;
    for (size_t i = 0; i < kTableLockShards; ++i) {
      shard_locks[i] = std::unique_lock<std::mutex>(sync_->table_shards[i]);
    }
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(RotateRedoLog());
    LogRotateHistogram()->Record(rotate_watch.ElapsedMicros());
  }
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  std::string doublewrite = (fs::path(data_dir_) / "doublewrite.bin").string();
  for (const auto& [database, tables] : databases_) {
    std::error_code ec;
    fs::create_directories(fs::path(data_dir_) / SanitizeName(database), ec);
    if (ec) return Status::IoError("cannot create database dir: " + ec.message());
    for (const auto& [name, table] : tables) {
      ByteWriter writer;
      {
        // Serialize under the shard lock so a concurrent writer can't
        // mutate the page image mid-snapshot.
        std::lock_guard<std::mutex> lock(TableLock(database, name));
        table->SerializeTo(&writer);
      }
      // InnoDB writes every page twice: first to the doublewrite buffer,
      // then in place (torn-page protection; on by default).
      SCD_RETURN_IF_ERROR(WriteFileAtomic(doublewrite, writer.data()));
      SCD_RETURN_IF_ERROR(
          WriteFileAtomic(TablespacePath(database, name), writer.data()));
      std::lock_guard<std::mutex> lock(TableLock(database, name));
      table->CommitTransaction();
    }
  }
  // Every sidecar record is now covered by a tablespace; on any earlier
  // error the sidecar survives and is replayed at the next reopen.
  std::error_code ec;
  fs::remove(doublewrite, ec);
  fs::remove(RotatedRedoLogPath(), ec);
  FlushHistogram()->Record(flush_watch.ElapsedMicros());
  return Status::OK();
}

Result<uint64_t> SqlEngine::DiskSizeBytes() const {
  if (data_dir_.empty()) return uint64_t{0};
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(data_dir_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file()) total += it->file_size();
  }
  if (ec) return Status::IoError("walking " + data_dir_ + ": " + ec.message());
  return total;
}

uint64_t SqlEngine::EstimateBytes() const {
  uint64_t total = 0;
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  for (const auto& [database, tables] : databases_) {
    for (const auto& [name, table] : tables) {
      total += table->EstimateTablespaceBytes();
    }
  }
  return total;
}

Result<std::vector<std::string>> SqlEngine::ListTables(
    const std::string& database) const {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto db = databases_.find(database);
  if (db == databases_.end()) {
    return Status::NotFound("database '" + database + "' does not exist");
  }
  std::vector<std::string> names;
  names.reserve(db->second.size());
  for (const auto& [name, table] : db->second) names.push_back(name);
  return names;
}

std::string SqlEngine::TablespacePath(const std::string& database,
                                      const std::string& table) const {
  return (fs::path(data_dir_) / SanitizeName(database) /
          (SanitizeName(table) + ".tbl"))
      .string();
}

std::string SqlEngine::RedoLogPath() const {
  return (fs::path(data_dir_) / "redolog.bin").string();
}

std::string SqlEngine::RotatedRedoLogPath() const {
  return (fs::path(data_dir_) / "redolog.old.bin").string();
}

Status SqlEngine::RotateRedoLog() {
  if (!fs::exists(RedoLogPath())) return Status::OK();
  LogRotationsCounter()->Increment();
  std::error_code ec;
  const std::string rotated = RotatedRedoLogPath();
  if (!fs::exists(rotated)) {
    fs::rename(RedoLogPath(), rotated, ec);
    if (ec) return Status::IoError("rotating redo log: " + ec.message());
    return Status::OK();
  }
  // A prior flush failed (or crashed) after rotating: append the live log
  // to the surviving sidecar so replay order — sidecar, then live — still
  // reproduces append order.
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(RedoLogPath()));
  {
    std::ofstream out(rotated, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot open rotated redo log");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short append to rotated redo log");
  }
  fs::remove(RedoLogPath(), ec);
  if (ec) return Status::IoError("removing redo log: " + ec.message());
  return Status::OK();
}

std::mutex& SqlEngine::TableLock(const std::string& database,
                                 const std::string& table) const {
  size_t h = std::hash<std::string>()(database) * 1000003u ^
             std::hash<std::string>()(table);
  return sync_->table_shards[h % kTableLockShards];
}

Status SqlEngine::AppendToRedoLog(const std::string& database,
                                  const std::string& table,
                                  const std::vector<SqlRow>& rows,
                                  bool is_delete) {
  ByteWriter writer;
  writer.PutU8(is_delete ? 1 : 0);
  writer.PutString(database);
  writer.PutString(table);
  writer.PutVarint(rows.size());
  for (const SqlRow& row : rows) {
    writer.PutVarint(row.size());
    for (const Value& value : row) value.EncodeTo(&writer);
  }
  // InnoDB's default durability (innodb_flush_log_at_trx_commit = 1) flushes
  // and fsyncs the redo log at every commit; the Cassandra-style store uses
  // periodic commit-log sync instead, one of the write-path differences
  // behind Table 5.
  int fd = ::open(RedoLogPath().c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IoError("cannot open redo log");
  ByteWriter framed;
  framed.PutU32(static_cast<uint32_t>(writer.size()));
  // Loop on short writes and EINTR: a signal delivered mid-append must not
  // turn into a torn redo record or a spurious IoError.
  auto write_full = [fd](const uint8_t* data, size_t size) {
    size_t written = 0;
    while (written < size) {
      ssize_t n = ::write(fd, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      written += static_cast<size_t>(n);
    }
    return true;
  };
  bool ok = write_full(framed.data().data(), framed.size()) &&
            write_full(writer.data().data(), writer.size());
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::IoError("short write to redo log");
  return Status::OK();
}

Status SqlEngine::ReplayRedoLog() {
  // The sidecar (a flush that never finished) holds older records than the
  // live log; replay it first. Rows that also reached a tablespace replay
  // as tolerated AlreadyExists duplicates.
  SCD_RETURN_IF_ERROR(ReplayRedoLogFile(RotatedRedoLogPath()));
  return ReplayRedoLogFile(RedoLogPath());
}

Status SqlEngine::ReplayRedoLogFile(const std::string& path) {
  if (!fs::exists(path)) return Status::OK();
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    auto frame_size = reader.ReadU32();
    if (!frame_size.ok()) break;  // torn tail
    if (reader.remaining() < *frame_size) break;
    SCD_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
    SCD_ASSIGN_OR_RETURN(std::string database, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(std::string table, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
    auto table_result = GetTable(database, table);
    for (uint64_t r = 0; r < num_rows; ++r) {
      SCD_ASSIGN_OR_RETURN(uint64_t arity, reader.ReadVarint());
      SqlRow row;
      row.reserve(arity);
      for (uint64_t c = 0; c < arity; ++c) {
        SCD_ASSIGN_OR_RETURN(Value value, Value::DecodeFrom(&reader));
        row.push_back(std::move(value));
      }
      if (table_result.ok()) {
        if (op == 1) {
          Status status = (*table_result)->DeleteByPk(row[0]);
          if (!status.ok() && !status.IsNotFound()) return status;
        } else {
          Status status = (*table_result)->Insert(std::move(row));
          // Rows already present in a flushed tablespace replay as
          // duplicates.
          if (!status.ok() && !status.IsAlreadyExists()) return status;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::sql
