#include "dwarf/cursor.h"

#include "common/metrics.h"

namespace scdwarf::dwarf {

namespace {

/// Same series query.cc registers — the registry dedupes by name, so both
/// call sites feed one counter.
metrics::Counter* RangePrunedCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "dwarf_range_subtrees_pruned_total", {},
      "subtrees skipped because their min/max-rank span misses a range "
      "predicate's window");
  return counter;
}

}  // namespace

RowCursor::RowCursor(const DwarfCube& cube, std::vector<bool> enumerate,
                     std::vector<std::optional<DimKey>> pinned,
                     RankFilters filters, std::vector<size_t> order)
    : cube_(&cube),
      enumerate_(std::move(enumerate)),
      pinned_(std::move(pinned)),
      filters_(std::move(filters)),
      order_(std::move(order)) {
  if (!filters_.empty()) ridx_ = cube.range_index();
  for (size_t j = 0; j < order_.size(); ++j) {
    order_identity_ = order_identity_ && order_[j] == j;
  }
  if (!cube.empty() && !Prunable(cube.root(), 0)) {
    Frame root;
    root.node = cube.root();
    root.level = 0;
    stack_.push_back(root);
  }
}

Result<RowCursor> RowCursor::OverSlice(const DwarfCube& cube, size_t fixed_dim,
                                       DimKey key) {
  if (fixed_dim >= cube.num_dimensions()) {
    return Status::OutOfRange("slice dimension out of range");
  }
  std::vector<bool> enumerate(cube.num_dimensions(), true);
  enumerate[fixed_dim] = false;
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  pinned[fixed_dim] = key;
  return RowCursor(cube, std::move(enumerate), std::move(pinned), {}, {});
}

Result<RowCursor> RowCursor::OverRollUp(const DwarfCube& cube,
                                        const std::vector<size_t>& group_dims,
                                        const RankFilters* filters) {
  SCD_ASSIGN_OR_RETURN(std::vector<size_t> order,
                       RollUpKeyOrder(cube.num_dimensions(), group_dims));
  std::vector<bool> enumerate(cube.num_dimensions(), false);
  for (size_t dim : group_dims) enumerate[dim] = true;
  SCD_RETURN_IF_ERROR(ValidateRankFilters(cube, enumerate, filters));
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  return RowCursor(cube, std::move(enumerate), std::move(pinned),
                   filters != nullptr ? *filters : RankFilters{},
                   std::move(order));
}

bool RowCursor::Prunable(NodeId id, size_t level) {
  if (filters_.empty()) return false;
  for (size_t dim = level; dim < filters_.size(); ++dim) {
    if (!filters_[dim].has_value()) continue;
    const RankWindow& window = *filters_[dim];
    if (window.lo > window.hi) return true;  // empty window: no rows at all
    if (ridx_ != nullptr && ridx_->covers(dim) &&
        ridx_->span(id, dim).Disjoint(window.lo, window.hi)) {
      RangePrunedCounter()->Increment();
      return true;
    }
  }
  return false;
}

void RowCursor::EmitRow(Measure measure, std::vector<SliceRow>* out) {
  SliceRow row;
  row.measure = measure;
  if (order_identity_) {
    row.keys = labels_;
  } else {
    row.keys.resize(order_.size());
    for (size_t j = 0; j < order_.size(); ++j) row.keys[j] = labels_[order_[j]];
  }
  out->push_back(std::move(row));
}

void RowCursor::PopFrame() {
  if (stack_.back().pushed_label) labels_.pop_back();
  stack_.pop_back();
}

size_t RowCursor::Next(size_t max_rows, std::vector<SliceRow>* out) {
  size_t produced = 0;
  while (produced < max_rows && !stack_.empty()) {
    Frame& frame = stack_.back();
    const NodeView node = cube_->node(frame.node);
    bool leaf = static_cast<size_t>(frame.level) + 1 == cube_->num_dimensions();
    if (enumerate_[frame.level]) {
      if (frame.next_cell == node.cells.size()) {
        PopFrame();
        continue;
      }
      const DwarfCell& cell = node.cells[frame.next_cell++];
      if (!filters_.empty() && filters_[frame.level].has_value()) {
        const RankWindow& window = *filters_[frame.level];
        DimKey rank = cube_->dictionary(frame.level).RankOf(cell.key);
        if (rank < window.lo || rank > window.hi) continue;
      }
      labels_.push_back(cube_->dictionary(frame.level).DecodeUnchecked(cell.key));
      if (leaf) {
        EmitRow(cell.measure, out);
        labels_.pop_back();
        ++produced;
      } else if (Prunable(cell.child, frame.level + 1)) {
        labels_.pop_back();
      } else {
        Frame child;
        child.node = cell.child;
        child.level = static_cast<uint16_t>(frame.level + 1);
        child.pushed_label = true;  // pops the label pushed above
        stack_.push_back(child);    // invalidates `frame`
      }
      continue;
    }
    if (pinned_[frame.level].has_value()) {
      if (frame.entered) {
        PopFrame();
        continue;
      }
      frame.entered = true;
      const DwarfCell* cell = node.FindCell(*pinned_[frame.level]);
      if (cell == nullptr) {
        PopFrame();
        continue;
      }
      if (leaf) {
        EmitRow(cell->measure, out);
        ++produced;
        PopFrame();
        continue;
      }
      if (Prunable(cell->child, frame.level + 1)) {
        PopFrame();
        continue;
      }
      Frame child;
      child.node = cell->child;
      child.level = static_cast<uint16_t>(frame.level + 1);
      stack_.push_back(child);
      continue;
    }
    // Rolled-up dimension: follow the precomputed ALL cell.
    if (frame.entered) {
      PopFrame();
      continue;
    }
    frame.entered = true;
    if (leaf) {
      EmitRow(node.all_measure, out);
      ++produced;
      PopFrame();
      continue;
    }
    if (Prunable(node.all_child, frame.level + 1)) {
      PopFrame();
      continue;
    }
    Frame child;
    child.node = node.all_child;
    child.level = static_cast<uint16_t>(frame.level + 1);
    stack_.push_back(child);
  }
  rows_emitted_ += produced;
  return produced;
}

}  // namespace scdwarf::dwarf
