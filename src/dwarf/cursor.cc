#include "dwarf/cursor.h"

namespace scdwarf::dwarf {

RowCursor::RowCursor(const DwarfCube& cube, std::vector<bool> enumerate,
                     std::vector<std::optional<DimKey>> pinned)
    : cube_(&cube),
      enumerate_(std::move(enumerate)),
      pinned_(std::move(pinned)) {
  if (!cube.empty()) {
    Frame root;
    root.node = cube.root();
    root.level = 0;
    stack_.push_back(root);
  }
}

Result<RowCursor> RowCursor::OverSlice(const DwarfCube& cube, size_t fixed_dim,
                                       DimKey key) {
  if (fixed_dim >= cube.num_dimensions()) {
    return Status::OutOfRange("slice dimension out of range");
  }
  std::vector<bool> enumerate(cube.num_dimensions(), true);
  enumerate[fixed_dim] = false;
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  pinned[fixed_dim] = key;
  return RowCursor(cube, std::move(enumerate), std::move(pinned));
}

Result<RowCursor> RowCursor::OverRollUp(const DwarfCube& cube,
                                        const std::vector<size_t>& group_dims) {
  std::vector<bool> enumerate(cube.num_dimensions(), false);
  for (size_t dim : group_dims) {
    if (dim >= cube.num_dimensions()) {
      return Status::OutOfRange("group dimension out of range");
    }
    enumerate[dim] = true;
  }
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  return RowCursor(cube, std::move(enumerate), std::move(pinned));
}

void RowCursor::PopFrame() {
  if (stack_.back().pushed_label) labels_.pop_back();
  stack_.pop_back();
}

size_t RowCursor::Next(size_t max_rows, std::vector<SliceRow>* out) {
  size_t produced = 0;
  while (produced < max_rows && !stack_.empty()) {
    Frame& frame = stack_.back();
    const DwarfNode& node = cube_->node(frame.node);
    bool leaf = static_cast<size_t>(frame.level) + 1 == cube_->num_dimensions();
    if (enumerate_[frame.level]) {
      if (frame.next_cell == node.cells.size()) {
        PopFrame();
        continue;
      }
      const DwarfCell& cell = node.cells[frame.next_cell++];
      labels_.push_back(cube_->dictionary(frame.level).DecodeUnchecked(cell.key));
      if (leaf) {
        out->push_back({labels_, cell.measure});
        labels_.pop_back();
        ++produced;
      } else {
        Frame child;
        child.node = cell.child;
        child.level = static_cast<uint16_t>(frame.level + 1);
        child.pushed_label = true;  // pops the label pushed above
        stack_.push_back(child);    // invalidates `frame`
      }
      continue;
    }
    if (pinned_[frame.level].has_value()) {
      if (frame.entered) {
        PopFrame();
        continue;
      }
      frame.entered = true;
      const DwarfCell* cell = node.FindCell(*pinned_[frame.level]);
      if (cell == nullptr) {
        PopFrame();
        continue;
      }
      if (leaf) {
        out->push_back({labels_, cell->measure});
        ++produced;
        PopFrame();
        continue;
      }
      Frame child;
      child.node = cell->child;
      child.level = static_cast<uint16_t>(frame.level + 1);
      stack_.push_back(child);
      continue;
    }
    // Rolled-up dimension: follow the precomputed ALL cell.
    if (frame.entered) {
      PopFrame();
      continue;
    }
    frame.entered = true;
    if (leaf) {
      out->push_back({labels_, node.all_measure});
      ++produced;
      PopFrame();
      continue;
    }
    Frame child;
    child.node = node.all_child;
    child.level = static_cast<uint16_t>(frame.level + 1);
    stack_.push_back(child);
  }
  rows_emitted_ += produced;
  return produced;
}

}  // namespace scdwarf::dwarf
