/// \file cube_schema.h
/// \brief Logical schema of a cube: ordered dimensions, measure, aggregate.

#ifndef SCDWARF_DWARF_CUBE_SCHEMA_H_
#define SCDWARF_DWARF_CUBE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/aggregate.h"

namespace scdwarf::dwarf {

/// \brief One dimension of the cube. The optional dimension_table names an
/// auxiliary dimension table carrying extra attributes; it is copied into
/// DWARF_Cell.dimension_table_name during the NoSQL mapping (Fig. 3).
///
/// `ordered` declares that the dimension's decoded values carry a total order
/// — lexicographic string order, so it fits ISO dates ("2013-07-01") and
/// zero-padded numerics ("07") but NOT month names ("July" < "June"). Ordered
/// dimensions get a dictionary rank view and a per-subtree min/max-rank index
/// at cube finalize, enabling value-level range predicates and range subtree
/// pruning (see query.h).
struct DimensionSpec {
  std::string name;
  std::string dimension_table;  // empty when no dimension table is attached
  bool ordered = false;         // values are ordered by lexicographic compare

  DimensionSpec() = default;
  DimensionSpec(std::string name_in, std::string dimension_table_in = "",
                bool ordered_in = false)
      : name(std::move(name_in)),
        dimension_table(std::move(dimension_table_in)),
        ordered(ordered_in) {}
};

/// \brief Ordered dimensions + measure definition. Dimension order is the
/// DWARF level order: dimension 0 is the root level.
class CubeSchema {
 public:
  CubeSchema() = default;
  CubeSchema(std::string name, std::vector<DimensionSpec> dimensions,
             std::string measure_name, AggFn agg = AggFn::kSum)
      : name_(std::move(name)),
        dimensions_(std::move(dimensions)),
        measure_name_(std::move(measure_name)),
        agg_(agg) {}

  /// Validates that the schema has at least one dimension and unique names.
  Status Validate() const {
    if (dimensions_.empty()) {
      return Status::InvalidArgument("cube schema needs at least one dimension");
    }
    for (size_t i = 0; i < dimensions_.size(); ++i) {
      if (dimensions_[i].name.empty()) {
        return Status::InvalidArgument("dimension " + std::to_string(i) +
                                       " has an empty name");
      }
      for (size_t j = i + 1; j < dimensions_.size(); ++j) {
        if (dimensions_[i].name == dimensions_[j].name) {
          return Status::InvalidArgument("duplicate dimension name '" +
                                         dimensions_[i].name + "'");
        }
      }
    }
    return Status::OK();
  }

  const std::string& name() const { return name_; }
  const std::vector<DimensionSpec>& dimensions() const { return dimensions_; }
  size_t num_dimensions() const { return dimensions_.size(); }
  const std::string& measure_name() const { return measure_name_; }
  AggFn agg() const { return agg_; }

  /// Index of the named dimension, or NotFound.
  Result<size_t> DimensionIndex(const std::string& name) const {
    for (size_t i = 0; i < dimensions_.size(); ++i) {
      if (dimensions_[i].name == name) return i;
    }
    return Status::NotFound("no dimension named '" + name + "'");
  }

 private:
  std::string name_;
  std::vector<DimensionSpec> dimensions_;
  std::string measure_name_;
  AggFn agg_ = AggFn::kSum;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_CUBE_SCHEMA_H_
