/// \file traversal.h
/// \brief Full-cube traversal with a visited lookup table.
///
/// A DWARF has multiple inheritance: coalesced sub-dwarfs are reachable
/// through several parent cells. Section 4 of the paper therefore guards the
/// store transformation with a lookup table "which records each Node and Cell
/// visited by assigning them a unique ID". TraverseCube implements exactly
/// that: every reachable node is delivered to the visitor exactly once, in
/// either the paper's top-down order or true breadth-first order.

#ifndef SCDWARF_DWARF_TRAVERSAL_H_
#define SCDWARF_DWARF_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

enum class TraversalOrder {
  /// Root, then each cell's sub-dwarf fully before the next cell — the order
  /// §4 describes ("Ireland and all of its descendants, then France ...").
  kDepthFirst,
  /// Level-by-level.
  kBreadthFirst,
};

/// \brief Callbacks invoked during traversal. Any non-OK return aborts the
/// walk and is propagated.
struct CubeVisitor {
  /// Called once per reachable node, before its cells.
  std::function<Status(NodeId id, const NodeView& node)> on_node;

  /// Called once per regular cell of each visited node. \p leaf is true on
  /// the bottom level where the cell carries a measure.
  std::function<Status(NodeId parent_id, const DwarfCell& cell, bool leaf)>
      on_cell;

  /// Called once per node for its ALL cell. For interior nodes
  /// \p all_child is the aggregate sub-dwarf; for leaves \p all_measure
  /// carries the aggregate.
  std::function<Status(NodeId parent_id, const NodeView& node, bool leaf)>
      on_all_cell;
};

/// \brief Walks every node reachable from the root exactly once.
Status TraverseCube(const DwarfCube& cube, TraversalOrder order,
                    const CubeVisitor& visitor);

/// \brief Returns the ids of all reachable nodes in traversal order.
std::vector<NodeId> CollectReachableNodes(const DwarfCube& cube,
                                          TraversalOrder order);

/// \brief For each node, the ids of nodes holding a cell (or ALL pointer)
/// that references it — the DWARF_Node.parentIds field of Table 1-B.
/// Index = NodeId; root has an empty list.
std::vector<std::vector<NodeId>> ComputeParentIds(const DwarfCube& cube);

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_TRAVERSAL_H_
