#include "dwarf/builder.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace scdwarf::dwarf {

namespace {

/// Hash functor for merge memoization keys (sorted multisets of NodeId).
struct NodeListHash {
  size_t operator()(const std::vector<NodeId>& ids) const {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (NodeId id : ids) h = HashCombine(h, id);
    return static_cast<size_t>(h);
  }
};

}  // namespace

/// \brief Stateful construction pass over the sorted, deduplicated tuples.
class DwarfBuilder::Impl {
 public:
  Impl(const CubeSchema& schema, const BuilderOptions& options)
      : schema_(schema),
        options_(options),
        num_dims_(schema.num_dimensions()),
        agg_(schema.agg()) {}

  Result<NodeId> Run(const std::vector<Tuple>& tuples,
                     std::vector<DwarfNode>* nodes) {
    nodes_ = nodes;
    if (tuples.empty()) return kNullNode;

    open_.assign(num_dims_, {});
    // Seed the path for the first tuple.
    for (size_t level = 0; level < num_dims_; ++level) {
      open_[level].push_back(MakeCell(tuples[0], level));
    }

    for (size_t i = 1; i < tuples.size(); ++i) {
      const Tuple& tuple = tuples[i];
      const Tuple& prev = tuples[i - 1];
      size_t diverge = 0;
      while (tuple.keys[diverge] == prev.keys[diverge]) ++diverge;
      // Close every open node strictly below the divergence level,
      // bottom-up, wiring each closed node into its parent's pending cell.
      for (size_t level = num_dims_ - 1; level > diverge; --level) {
        NodeId closed = CloseOpenNode(level);
        open_[level - 1].back().child = closed;
        open_[level].clear();
      }
      // Extend the divergence node and reopen the path below it.
      open_[diverge].push_back(MakeCell(tuple, diverge));
      for (size_t level = diverge + 1; level < num_dims_; ++level) {
        open_[level].push_back(MakeCell(tuple, level));
      }
    }

    // Final close up to the root.
    for (size_t level = num_dims_ - 1; level > 0; --level) {
      NodeId closed = CloseOpenNode(level);
      open_[level - 1].back().child = closed;
    }
    return CloseOpenNode(0);
  }

 private:
  DwarfCell MakeCell(const Tuple& tuple, size_t level) const {
    DwarfCell cell;
    cell.key = tuple.keys[level];
    if (level + 1 == num_dims_) {
      cell.measure = tuple.measure;
    }
    return cell;
  }

  bool IsLeafLevel(size_t level) const { return level + 1 == num_dims_; }

  /// Finalizes the open node at \p level: computes its ALL cell and commits
  /// it to the arena.
  NodeId CloseOpenNode(size_t level) {
    DwarfNode node;
    node.level = static_cast<uint16_t>(level);
    node.cells = std::move(open_[level]);
    open_[level].clear();
    FinalizeAll(&node);
    return Commit(std::move(node));
  }

  /// Computes the ALL cell of \p node from its (already closed) children.
  void FinalizeAll(DwarfNode* node) {
    if (IsLeafLevel(node->level)) {
      Measure all = AggIdentity(agg_);
      for (const DwarfCell& cell : node->cells) {
        all = AggCombine(agg_, all, cell.measure);
      }
      node->all_measure = all;
      return;
    }
    std::vector<NodeId> children;
    children.reserve(node->cells.size());
    for (const DwarfCell& cell : node->cells) children.push_back(cell.child);
    node->all_child = SuffixCoalesce(std::move(children), node->level + 1);
    node->all_coalesced =
        options_.enable_suffix_coalescing && node->cells.size() == 1;
  }

  NodeId Commit(DwarfNode node) {
    NodeId id = static_cast<NodeId>(nodes_->size());
    nodes_->push_back(std::move(node));
    return id;
  }

  /// Merges the sub-dwarfs rooted at \p inputs (all at \p level) into the
  /// aggregate sub-dwarf, sharing structure where possible.
  ///
  /// Duplicate input ids are intentional and must be aggregated once per
  /// occurrence: two cells whose subtrees coalesced both contribute.
  NodeId SuffixCoalesce(std::vector<NodeId> inputs, size_t level) {
    SCD_CHECK(!inputs.empty());
    if (options_.enable_suffix_coalescing && inputs.size() == 1) {
      return inputs[0];  // Share the existing sub-dwarf.
    }
    if (!options_.enable_suffix_coalescing && inputs.size() == 1) {
      return CopySubtree(inputs[0]);
    }

    std::vector<NodeId> memo_key;
    bool use_memo =
        options_.enable_suffix_coalescing && options_.enable_merge_memoization;
    if (use_memo) {
      memo_key = inputs;
      std::sort(memo_key.begin(), memo_key.end());
      auto it = merge_memo_.find(memo_key);
      if (it != merge_memo_.end()) return it->second;
    }

    // Gather all input cells and sort by key; equal keys group together.
    struct Entry {
      DimKey key;
      NodeId child;
      Measure measure;
    };
    std::vector<Entry> entries;
    for (NodeId input : inputs) {
      const DwarfNode& in = (*nodes_)[input];
      for (const DwarfCell& cell : in.cells) {
        entries.push_back({cell.key, cell.child, cell.measure});
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.key < b.key; });

    DwarfNode merged;
    merged.level = static_cast<uint16_t>(level);
    bool leaf = IsLeafLevel(level);
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i;
      while (j < entries.size() && entries[j].key == entries[i].key) ++j;
      DwarfCell cell;
      cell.key = entries[i].key;
      if (leaf) {
        Measure value = AggIdentity(agg_);
        for (size_t k = i; k < j; ++k) {
          value = AggCombine(agg_, value, entries[k].measure);
        }
        cell.measure = value;
      } else {
        std::vector<NodeId> group;
        group.reserve(j - i);
        for (size_t k = i; k < j; ++k) group.push_back(entries[k].child);
        cell.child = SuffixCoalesce(std::move(group), level + 1);
      }
      merged.cells.push_back(cell);
      i = j;
    }
    FinalizeAll(&merged);
    NodeId id = Commit(std::move(merged));
    if (use_memo) merge_memo_.emplace(std::move(memo_key), id);
    return id;
  }

  /// Deep-copies a sub-dwarf (suffix-coalescing ablation only).
  NodeId CopySubtree(NodeId source) {
    // Copy the source node by value first: recursive Commit() calls may
    // reallocate the arena and invalidate any reference into it.
    DwarfNode copy = (*nodes_)[source];
    copy.all_coalesced = false;
    if (!IsLeafLevel(copy.level)) {
      for (DwarfCell& cell : copy.cells) {
        cell.child = CopySubtree(cell.child);
      }
      copy.all_child = CopySubtree(copy.all_child);
    }
    return Commit(std::move(copy));
  }

  const CubeSchema& schema_;
  const BuilderOptions& options_;
  size_t num_dims_;
  AggFn agg_;
  std::vector<DwarfNode>* nodes_ = nullptr;
  std::vector<std::vector<DwarfCell>> open_;
  std::unordered_map<std::vector<NodeId>, NodeId, NodeListHash> merge_memo_;
};

DwarfBuilder::DwarfBuilder(CubeSchema schema, BuilderOptions options)
    : schema_(std::move(schema)), options_(options) {
  dictionaries_.reserve(schema_.num_dimensions());
  for (const DimensionSpec& dim : schema_.dimensions()) {
    dictionaries_.emplace_back(dim.name);
  }
}

Status DwarfBuilder::AddTuple(const std::vector<std::string>& keys,
                              Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = AggLeafValue(schema_.agg(), measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddAggregatedTuple(const std::vector<std::string>& keys,
                                        Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = measure;  // no AggLeafValue: already aggregated
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddEncodedTuple(Tuple tuple) {
  if (tuple.keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument("encoded tuple arity mismatch");
  }
  for (size_t dim = 0; dim < tuple.keys.size(); ++dim) {
    if (tuple.keys[dim] >= dictionaries_[dim].size()) {
      return Status::InvalidArgument(
          "encoded key " + std::to_string(tuple.keys[dim]) +
          " not present in dictionary for dimension " + std::to_string(dim));
    }
  }
  tuple.measure = AggLeafValue(schema_.agg(), tuple.measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Result<DimKey> DwarfBuilder::EncodeKey(size_t dim, std::string_view value) {
  if (dim >= dictionaries_.size()) {
    return Status::OutOfRange("no dimension " + std::to_string(dim));
  }
  return dictionaries_[dim].Encode(value);
}

Result<DwarfCube> DwarfBuilder::Build() && {
  SCD_RETURN_IF_ERROR(schema_.Validate());

  uint64_t source_count = tuples_.size();
  std::sort(tuples_.begin(), tuples_.end(), TupleKeyLess);
  // Merge duplicate key combinations through the aggregate.
  size_t write = 0;
  for (size_t read = 0; read < tuples_.size(); ++read) {
    if (write > 0 && TupleKeysEqual(tuples_[write - 1], tuples_[read])) {
      tuples_[write - 1].measure = AggCombine(
          schema_.agg(), tuples_[write - 1].measure, tuples_[read].measure);
    } else {
      if (write != read) tuples_[write] = std::move(tuples_[read]);
      ++write;
    }
  }
  tuples_.resize(write);

  DwarfCube cube;
  cube.schema_ = schema_;
  cube.dictionaries_ = std::move(dictionaries_);
  Impl impl(schema_, options_);
  SCD_ASSIGN_OR_RETURN(cube.root_, impl.Run(tuples_, &cube.nodes_));
  cube.stats_.tuple_count = write;
  cube.stats_.source_tuple_count = source_count;
  CubeStats stats = cube.ComputeStats();
  stats.tuple_count = write;
  stats.source_tuple_count = source_count;
  cube.stats_ = stats;
  return cube;
}

}  // namespace scdwarf::dwarf
