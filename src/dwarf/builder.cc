#include "dwarf/builder.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace scdwarf::dwarf {

namespace {

/// Below this many tuples the shard/merge machinery costs more than the
/// serial sort it replaces.
constexpr size_t kMinParallelSortTuples = 4096;

/// Below this many tuples the per-subtree task machinery costs more than the
/// serial construction sweep it replaces.
constexpr size_t kMinParallelSweepTuples = 4096;

/// Hash functor for merge memoization keys (sorted multisets of NodeId).
struct NodeListHash {
  size_t operator()(const std::vector<NodeId>& ids) const {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (NodeId id : ids) h = HashCombine(h, id);
    return static_cast<size_t>(h);
  }
};

}  // namespace

/// \brief Stateful construction pass over the sorted, deduplicated tuples.
class DwarfBuilder::Impl {
 public:
  Impl(const CubeSchema& schema, const BuilderOptions& options)
      : schema_(schema),
        options_(options),
        num_dims_(schema.num_dimensions()),
        agg_(schema.agg()) {}

  /// Sweeps tuples [\p begin, \p end) whose keys agree on every dimension
  /// below \p base_level, building the sub-dwarf rooted at \p base_level.
  /// The full build is Run(tuples, 0, tuples.size(), 0, nodes).
  Result<NodeId> Run(const std::vector<Tuple>& tuples, size_t begin,
                     size_t end, size_t base_level,
                     std::vector<DwarfNode>* nodes) {
    nodes_ = nodes;
    if (begin >= end) return kNullNode;

    open_.assign(num_dims_, {});
    // Seed the path for the first tuple.
    for (size_t level = base_level; level < num_dims_; ++level) {
      open_[level].push_back(MakeCell(tuples[begin], level));
    }

    for (size_t i = begin + 1; i < end; ++i) {
      const Tuple& tuple = tuples[i];
      const Tuple& prev = tuples[i - 1];
      size_t diverge = base_level;
      while (tuple.keys[diverge] == prev.keys[diverge]) ++diverge;
      // Close every open node strictly below the divergence level,
      // bottom-up, wiring each closed node into its parent's pending cell.
      for (size_t level = num_dims_ - 1; level > diverge; --level) {
        NodeId closed = CloseOpenNode(level);
        open_[level - 1].back().child = closed;
        open_[level].clear();
      }
      // Extend the divergence node and reopen the path below it.
      open_[diverge].push_back(MakeCell(tuple, diverge));
      for (size_t level = diverge + 1; level < num_dims_; ++level) {
        open_[level].push_back(MakeCell(tuple, level));
      }
    }

    // Final close up to the base level.
    for (size_t level = num_dims_ - 1; level > base_level; --level) {
      NodeId closed = CloseOpenNode(level);
      open_[level - 1].back().child = closed;
    }
    return CloseOpenNode(base_level);
  }

  /// Closes the top of the cube over pre-built subtrees, replaying the
  /// serial sweep's behavior for levels 0..split exactly. The caller drives
  /// one cycle per group, in sorted group order:
  ///
  ///   BeginStitch(split, nodes);
  ///   for each group: StitchBoundary(first, prev);  // closes, then opens
  ///                   <append the group's rebased arena to nodes>
  ///                   WireGroupRoot(rebased_root);
  ///   root = FinishStitch();
  ///
  /// StitchBoundary runs *before* the group's arena is appended because the
  /// serial sweep commits the boundary's close cascade (levels split down to
  /// diverge+1) between the two groups' subtree nodes — the interleaving is
  /// what keeps the arena bit-identical to the serial one.
  void BeginStitch(size_t split, std::vector<DwarfNode>* nodes) {
    nodes_ = nodes;
    stitch_split_ = split;
    open_.assign(num_dims_, {});
  }

  /// Closes the open nodes below the divergence of \p first vs \p prev (the
  /// previous group's first tuple; null for the first group) and opens the
  /// cell path for the new group down to the split level.
  void StitchBoundary(const Tuple& first, const Tuple* prev) {
    size_t diverge = 0;
    if (prev != nullptr) {
      while (first.keys[diverge] == prev->keys[diverge]) ++diverge;
      // diverge <= split: groups are distinct (split+1)-length prefixes.
      for (size_t level = stitch_split_; level > diverge; --level) {
        NodeId closed = CloseOpenNode(level);
        open_[level - 1].back().child = closed;
      }
    }
    for (size_t level = diverge; level <= stitch_split_; ++level) {
      open_[level].push_back(MakeCell(first, level));
    }
  }

  /// Wires the just-appended group's subtree root into the pending
  /// split-level cell opened by StitchBoundary.
  void WireGroupRoot(NodeId root) { open_[stitch_split_].back().child = root; }

  /// Final cascade: closes split..0 and returns the root id.
  NodeId FinishStitch() {
    for (size_t level = stitch_split_; level > 0; --level) {
      NodeId closed = CloseOpenNode(level);
      open_[level - 1].back().child = closed;
    }
    return CloseOpenNode(0);
  }

 private:
  DwarfCell MakeCell(const Tuple& tuple, size_t level) const {
    DwarfCell cell;
    cell.key = tuple.keys[level];
    if (level + 1 == num_dims_) {
      cell.measure = tuple.measure;
    }
    return cell;
  }

  bool IsLeafLevel(size_t level) const { return level + 1 == num_dims_; }

  /// Finalizes the open node at \p level: computes its ALL cell and commits
  /// it to the arena.
  NodeId CloseOpenNode(size_t level) {
    DwarfNode node;
    node.level = static_cast<uint16_t>(level);
    node.cells = std::move(open_[level]);
    open_[level].clear();
    FinalizeAll(&node);
    return Commit(std::move(node));
  }

  /// Computes the ALL cell of \p node from its (already closed) children.
  void FinalizeAll(DwarfNode* node) {
    if (IsLeafLevel(node->level)) {
      Measure all = AggIdentity(agg_);
      for (const DwarfCell& cell : node->cells) {
        all = AggCombine(agg_, all, cell.measure);
      }
      node->all_measure = all;
      return;
    }
    std::vector<NodeId> children;
    children.reserve(node->cells.size());
    for (const DwarfCell& cell : node->cells) children.push_back(cell.child);
    node->all_child = SuffixCoalesce(std::move(children), node->level + 1);
    node->all_coalesced =
        options_.enable_suffix_coalescing && node->cells.size() == 1;
  }

  NodeId Commit(DwarfNode node) {
    NodeId id = static_cast<NodeId>(nodes_->size());
    nodes_->push_back(std::move(node));
    return id;
  }

  /// Merges the sub-dwarfs rooted at \p inputs (all at \p level) into the
  /// aggregate sub-dwarf, sharing structure where possible.
  ///
  /// Duplicate input ids are intentional and must be aggregated once per
  /// occurrence: two cells whose subtrees coalesced both contribute.
  NodeId SuffixCoalesce(std::vector<NodeId> inputs, size_t level) {
    SCD_CHECK(!inputs.empty());
    if (options_.enable_suffix_coalescing && inputs.size() == 1) {
      return inputs[0];  // Share the existing sub-dwarf.
    }
    if (!options_.enable_suffix_coalescing && inputs.size() == 1) {
      return CopySubtree(inputs[0]);
    }

    std::vector<NodeId> memo_key;
    bool use_memo =
        options_.enable_suffix_coalescing && options_.enable_merge_memoization;
    if (use_memo) {
      memo_key = inputs;
      std::sort(memo_key.begin(), memo_key.end());
      auto it = merge_memo_.find(memo_key);
      if (it != merge_memo_.end()) return it->second;
    }

    // Gather all input cells and sort by key; equal keys group together.
    struct Entry {
      DimKey key;
      NodeId child;
      Measure measure;
    };
    std::vector<Entry> entries;
    for (NodeId input : inputs) {
      const DwarfNode& in = (*nodes_)[input];
      for (const DwarfCell& cell : in.cells) {
        entries.push_back({cell.key, cell.child, cell.measure});
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.key < b.key; });

    DwarfNode merged;
    merged.level = static_cast<uint16_t>(level);
    bool leaf = IsLeafLevel(level);
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i;
      while (j < entries.size() && entries[j].key == entries[i].key) ++j;
      DwarfCell cell;
      cell.key = entries[i].key;
      if (leaf) {
        Measure value = AggIdentity(agg_);
        for (size_t k = i; k < j; ++k) {
          value = AggCombine(agg_, value, entries[k].measure);
        }
        cell.measure = value;
      } else {
        std::vector<NodeId> group;
        group.reserve(j - i);
        for (size_t k = i; k < j; ++k) group.push_back(entries[k].child);
        cell.child = SuffixCoalesce(std::move(group), level + 1);
      }
      merged.cells.push_back(cell);
      i = j;
    }
    FinalizeAll(&merged);
    NodeId id = Commit(std::move(merged));
    if (use_memo) merge_memo_.emplace(std::move(memo_key), id);
    return id;
  }

  /// Deep-copies a sub-dwarf (suffix-coalescing ablation only).
  NodeId CopySubtree(NodeId source) {
    // Copy the source node by value first: recursive Commit() calls may
    // reallocate the arena and invalidate any reference into it.
    DwarfNode copy = (*nodes_)[source];
    copy.all_coalesced = false;
    if (!IsLeafLevel(copy.level)) {
      for (DwarfCell& cell : copy.cells) {
        cell.child = CopySubtree(cell.child);
      }
      copy.all_child = CopySubtree(copy.all_child);
    }
    return Commit(std::move(copy));
  }

  const CubeSchema& schema_;
  const BuilderOptions& options_;
  size_t num_dims_;
  AggFn agg_;
  std::vector<DwarfNode>* nodes_ = nullptr;
  std::vector<std::vector<DwarfCell>> open_;
  size_t stitch_split_ = 0;
  std::unordered_map<std::vector<NodeId>, NodeId, NodeListHash> merge_memo_;
};

DwarfBuilder::DwarfBuilder(CubeSchema schema, BuilderOptions options)
    : schema_(std::move(schema)), options_(options) {
  dictionaries_.reserve(schema_.num_dimensions());
  for (const DimensionSpec& dim : schema_.dimensions()) {
    dictionaries_.emplace_back(dim.name);
  }
}

Status DwarfBuilder::AddTuple(const std::vector<std::string>& keys,
                              Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = AggLeafValue(schema_.agg(), measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddAggregatedTuple(const std::vector<std::string>& keys,
                                        Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = measure;  // no AggLeafValue: already aggregated
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddEncodedTuple(Tuple tuple) {
  if (tuple.keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument("encoded tuple arity mismatch");
  }
  for (size_t dim = 0; dim < tuple.keys.size(); ++dim) {
    if (tuple.keys[dim] >= dictionaries_[dim].size()) {
      return Status::InvalidArgument(
          "encoded key " + std::to_string(tuple.keys[dim]) +
          " not present in dictionary for dimension " + std::to_string(dim));
    }
  }
  tuple.measure = AggLeafValue(schema_.agg(), tuple.measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Result<DimKey> DwarfBuilder::EncodeKey(size_t dim, std::string_view value) {
  if (dim >= dictionaries_.size()) {
    return Status::OutOfRange("no dimension " + std::to_string(dim));
  }
  return dictionaries_[dim].Encode(value);
}

Status DwarfBuilder::ImportDictionaries(std::vector<Dictionary> dictionaries) {
  if (!tuples_.empty()) {
    return Status::FailedPrecondition(
        "dictionaries must be imported before any tuple is added");
  }
  if (dictionaries.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "imported " + std::to_string(dictionaries.size()) +
        " dictionaries, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  dictionaries_ = std::move(dictionaries);
  for (size_t dim = 0; dim < dictionaries_.size(); ++dim) {
    dictionaries_[dim].set_name(schema_.dimensions()[dim].name);
  }
  return Status::OK();
}

void DwarfBuilder::SortAndAggregate(int num_threads) {
  if (num_threads <= 1 || tuples_.size() < kMinParallelSortTuples) {
    std::sort(tuples_.begin(), tuples_.end(), TupleKeyLess);
    // Merge duplicate key combinations through the aggregate.
    size_t write = 0;
    for (size_t read = 0; read < tuples_.size(); ++read) {
      if (write > 0 && TupleKeysEqual(tuples_[write - 1], tuples_[read])) {
        tuples_[write - 1].measure = AggCombine(
            schema_.agg(), tuples_[write - 1].measure, tuples_[read].measure);
      } else {
        if (write != read) tuples_[write] = std::move(tuples_[read]);
        ++write;
      }
    }
    tuples_.resize(write);
    return;
  }

  // Parallel path: sort contiguous shards concurrently, then k-way merge
  // them, aggregating duplicate key combinations as they surface adjacent in
  // the merge order. Equal keys across shards are popped consecutively
  // (ties break on shard index), so one look-behind suffices exactly as in
  // the serial dedup loop; because the per-key combine is commutative and
  // associative, the merged measures match the serial result bit for bit.
  std::vector<ShardRange> shards;
  {
    ThreadPool pool(num_threads);
    shards = SplitShards(tuples_.size(), pool.num_threads());
    ParallelForShards(pool, tuples_.size(), [&](const ShardRange& shard) {
      std::sort(tuples_.begin() + shard.begin, tuples_.begin() + shard.end,
                TupleKeyLess);
    });
  }

  struct Head {
    size_t shard;
    size_t pos;  ///< absolute index into tuples_
  };
  auto greater = [this](const Head& a, const Head& b) {
    if (tuples_[b.pos].keys != tuples_[a.pos].keys) {
      return TupleKeyLess(tuples_[b.pos], tuples_[a.pos]);
    }
    return a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heads(greater);
  for (const ShardRange& shard : shards) {
    if (shard.begin < shard.end) heads.push({shard.shard, shard.begin});
  }

  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  while (!heads.empty()) {
    Head head = heads.top();
    heads.pop();
    Tuple& tuple = tuples_[head.pos];
    if (!merged.empty() && TupleKeysEqual(merged.back(), tuple)) {
      merged.back().measure =
          AggCombine(schema_.agg(), merged.back().measure, tuple.measure);
    } else {
      merged.push_back(std::move(tuple));
    }
    size_t next = head.pos + 1;
    if (next < shards[head.shard].end) heads.push({head.shard, next});
  }
  tuples_ = std::move(merged);
}

// Parallel sweep invariant (why the arena is bit-identical to serial):
//
// The sorted stream is partitioned into groups by a *split level* s chosen
// below: two consecutive tuples belong to the same group iff their keys
// agree on every dimension 0..s. In the serial sweep each group's entire
// subtree (everything at levels > s) is committed to the arena as one
// contiguous, ascending NodeId range; the boundary between group g and g+1
// then commits the close cascade for levels s down to diverge(g,g+1)+1 —
// where diverge is the first dimension on which the groups' prefixes differ
// — before any node of group g+1. The stitch Impl replays exactly that
// interleaving: StitchBoundary commits the boundary closes, the caller
// appends the group's rebased arena, WireGroupRoot wires the pending
// split-level cell, and FinishStitch replays the final cascade for levels
// s..0 in descending order.
//
// The merge memo never spans phases either: memo keys recorded while a
// group is open consist solely of that group's ids (contiguous, disjoint
// ranges in serial), while keys recorded or looked up during boundary/final
// closes contain either >= 2 distinct groups' subtree-root ids or ids of
// earlier top-phase nodes (a size-one input set is shared/copied, never
// memoized, and cells within one node have distinct keys, so every memoized
// top-phase merge draws from >= 2 children). Serial top-phase lookups
// therefore never hit group-internal entries and vice versa, so building
// each group with a fresh Impl and closing the top with another fresh Impl
// reproduces the serial arena id-for-id — for any thread count, any split
// level, and every ablation combination.
Result<NodeId> DwarfBuilder::ConstructSweep(int num_threads,
                                            std::vector<DwarfNode>* nodes,
                                            int* sweep_tasks) {
  *sweep_tasks = 0;
  const size_t num_dims = schema_.num_dimensions();
  if (num_threads > 1 && num_dims >= 2 && !tuples_.empty() &&
      tuples_.size() >= kMinParallelSweepTuples) {
    // Adaptive split level: the shallowest dimension whose group count gives
    // every worker ~2 tasks (cheap insurance against skewed group sizes).
    // Splitting at the first varying dimension alone can leave a handful of
    // huge groups (e.g. a Day-led feed with 2 distinct days on 8 threads);
    // descending one more level multiplies the group count. One pass
    // histograms consecutive-tuple divergence levels; group count at level s
    // is then 1 + sum(diverges at <= s). When no level reaches the target,
    // fall back to the deepest splittable level that still has >= 2 groups.
    std::vector<size_t> diverge_count(num_dims, 0);
    for (size_t i = 1; i < tuples_.size(); ++i) {
      size_t d = 0;
      while (tuples_[i].keys[d] == tuples_[i - 1].keys[d]) ++d;
      ++diverge_count[d];
    }
    const size_t target = 2 * static_cast<size_t>(num_threads);
    size_t split = num_dims;  // sentinel: no usable split level
    size_t running = 1;
    size_t deepest_with_groups = num_dims;
    for (size_t s = 0; s + 1 < num_dims; ++s) {
      running += diverge_count[s];
      if (running >= 2) deepest_with_groups = s;
      if (running >= target) {
        split = s;
        break;
      }
    }
    if (split == num_dims) split = deepest_with_groups;
    if (split + 1 < num_dims) {
      // Partition the sorted stream into per-(split+1)-prefix groups
      // (>= 2 by the choice of split).
      std::vector<std::pair<size_t, size_t>> groups;
      size_t begin = 0;
      auto same_group = [&](const Tuple& a, const Tuple& b) {
        for (size_t l = 0; l <= split; ++l) {
          if (a.keys[l] != b.keys[l]) return false;
        }
        return true;
      };
      for (size_t i = 1; i <= tuples_.size(); ++i) {
        if (i == tuples_.size() ||
            !same_group(tuples_[i], tuples_[begin])) {
          groups.emplace_back(begin, i);
          begin = i;
        }
      }
      struct Subtree {
        std::vector<DwarfNode> nodes;
        NodeId root = kNullNode;
      };
      std::vector<Subtree> built(groups.size());
      Status first_error;
      {
        // Workers claim groups through an atomic cursor so large groups
        // don't serialize behind a static partition. The pool destructor
        // joins every worker, ordering all writes to built before the
        // stitch below reads them. Each claimed group gets its own span,
        // parented on the enclosing dwarf.construct span (captured here,
        // on the submitting thread) so --trace-dump shows the fan-out.
        uint64_t construct_span = trace::CurrentSpanId();
        ThreadPool pool(num_threads);
        std::atomic<size_t> next{0};
        std::atomic<bool> failed{false};
        std::mutex error_mu;
        for (int worker = 0; worker < pool.num_threads(); ++worker) {
          pool.Submit([this, &groups, &built, &next, &failed, &error_mu,
                       &first_error, split, construct_span] {
            // Stop claiming groups once any build has failed — the sweep's
            // result is the error either way, so don't pay for the rest.
            for (size_t g; !failed.load(std::memory_order_relaxed) &&
                           (g = next.fetch_add(1)) < groups.size();) {
              trace::ScopedSpan task_span("dwarf.sweep_task", construct_span);
              Impl impl(schema_, options_);
              Result<NodeId> root = impl.Run(tuples_, groups[g].first,
                                             groups[g].second, split + 1,
                                             &built[g].nodes);
              if (root.ok()) {
                built[g].root = *root;
              } else {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mu);
                if (first_error.ok()) first_error = root.status();
              }
            }
          });
        }
      }
      SCD_RETURN_IF_ERROR(first_error);

      // Stitch: per group, replay the serial boundary closes first, then
      // append the group's local arena with child ids rebased by its offset,
      // then wire the group root into the pending split-level cell. The
      // interleaving matters — see the invariant note above.
      *sweep_tasks = static_cast<int>(groups.size());
      Impl top_impl(schema_, options_);
      top_impl.BeginStitch(split, nodes);
      const Tuple* prev = nullptr;
      for (size_t g = 0; g < groups.size(); ++g) {
        const Tuple& first = tuples_[groups[g].first];
        top_impl.StitchBoundary(first, prev);
        NodeId offset = static_cast<NodeId>(nodes->size());
        for (DwarfNode& node : built[g].nodes) {
          if (static_cast<size_t>(node.level) + 1 < num_dims) {
            for (DwarfCell& cell : node.cells) cell.child += offset;
            node.all_child += offset;
          }
          nodes->push_back(std::move(node));
        }
        top_impl.WireGroupRoot(offset + built[g].root);
        prev = &first;
      }
      return top_impl.FinishStitch();
    }
  }
  Impl impl(schema_, options_);
  return impl.Run(tuples_, 0, tuples_.size(), 0, nodes);
}

Result<DwarfCube> DwarfBuilder::Build(BuildProfile* profile) && {
  SCD_RETURN_IF_ERROR(schema_.Validate());

  static metrics::Counter* const builds_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_builds_total", {}, "DwarfBuilder::Build invocations");
  static metrics::Counter* const tuples_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_build_tuples_total", {},
          "raw tuples fed into cube construction");
  static metrics::Counter* const sweep_tasks_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_sweep_tasks_total", {},
          "parallel construction-sweep subtree tasks (0 per serial build)");
  static FixedBucketHistogram* const sort_us =
      metrics::GlobalRegistry().GetHistogram(
          "dwarf_sort_us", {}, "tuple sort + duplicate aggregation time (us)");
  static FixedBucketHistogram* const construct_us =
      metrics::GlobalRegistry().GetHistogram(
          "dwarf_construct_us", {}, "DWARF construction sweep time (us)");

  int num_threads = ResolveThreadCount(options_.num_threads);
  uint64_t source_count = tuples_.size();
  builds_total->Increment();
  tuples_total->Increment(source_count);
  Stopwatch watch;
  {
    trace::ScopedSpan span("dwarf.sort");
    SortAndAggregate(num_threads);
  }
  size_t write = tuples_.size();
  sort_us->Record(watch.ElapsedMicros());
  if (profile != nullptr) profile->sort_ms = watch.ElapsedMillis();

  watch.Restart();
  trace::ScopedSpan span("dwarf.construct");
  DwarfCube cube;
  cube.schema_ = schema_;
  cube.dictionaries_ = std::move(dictionaries_);
  int sweep_tasks = 0;
  std::vector<DwarfNode> arena;
  SCD_ASSIGN_OR_RETURN(cube.root_,
                       ConstructSweep(num_threads, &arena, &sweep_tasks));
  cube.AdoptArena(std::move(arena));
  cube.stats_.tuple_count = write;
  cube.stats_.source_tuple_count = source_count;
  cube.stats_ = cube.ComputeStats();
  cube.FinalizeOrderedViews();
  construct_us->Record(watch.ElapsedMicros());
  sweep_tasks_total->Increment(static_cast<uint64_t>(sweep_tasks));
  if (profile != nullptr) {
    profile->construct_ms = watch.ElapsedMillis();
    profile->sweep_tasks = sweep_tasks;
  }
  return cube;
}

}  // namespace scdwarf::dwarf
