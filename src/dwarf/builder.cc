#include "dwarf/builder.h"

#include <algorithm>
#include <queue>

#include "common/hash.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace scdwarf::dwarf {

namespace {

/// Below this many tuples the shard/merge machinery costs more than the
/// serial sort it replaces.
constexpr size_t kMinParallelSortTuples = 4096;

/// Hash functor for merge memoization keys (sorted multisets of NodeId).
struct NodeListHash {
  size_t operator()(const std::vector<NodeId>& ids) const {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (NodeId id : ids) h = HashCombine(h, id);
    return static_cast<size_t>(h);
  }
};

}  // namespace

/// \brief Stateful construction pass over the sorted, deduplicated tuples.
class DwarfBuilder::Impl {
 public:
  Impl(const CubeSchema& schema, const BuilderOptions& options)
      : schema_(schema),
        options_(options),
        num_dims_(schema.num_dimensions()),
        agg_(schema.agg()) {}

  Result<NodeId> Run(const std::vector<Tuple>& tuples,
                     std::vector<DwarfNode>* nodes) {
    nodes_ = nodes;
    if (tuples.empty()) return kNullNode;

    open_.assign(num_dims_, {});
    // Seed the path for the first tuple.
    for (size_t level = 0; level < num_dims_; ++level) {
      open_[level].push_back(MakeCell(tuples[0], level));
    }

    for (size_t i = 1; i < tuples.size(); ++i) {
      const Tuple& tuple = tuples[i];
      const Tuple& prev = tuples[i - 1];
      size_t diverge = 0;
      while (tuple.keys[diverge] == prev.keys[diverge]) ++diverge;
      // Close every open node strictly below the divergence level,
      // bottom-up, wiring each closed node into its parent's pending cell.
      for (size_t level = num_dims_ - 1; level > diverge; --level) {
        NodeId closed = CloseOpenNode(level);
        open_[level - 1].back().child = closed;
        open_[level].clear();
      }
      // Extend the divergence node and reopen the path below it.
      open_[diverge].push_back(MakeCell(tuple, diverge));
      for (size_t level = diverge + 1; level < num_dims_; ++level) {
        open_[level].push_back(MakeCell(tuple, level));
      }
    }

    // Final close up to the root.
    for (size_t level = num_dims_ - 1; level > 0; --level) {
      NodeId closed = CloseOpenNode(level);
      open_[level - 1].back().child = closed;
    }
    return CloseOpenNode(0);
  }

 private:
  DwarfCell MakeCell(const Tuple& tuple, size_t level) const {
    DwarfCell cell;
    cell.key = tuple.keys[level];
    if (level + 1 == num_dims_) {
      cell.measure = tuple.measure;
    }
    return cell;
  }

  bool IsLeafLevel(size_t level) const { return level + 1 == num_dims_; }

  /// Finalizes the open node at \p level: computes its ALL cell and commits
  /// it to the arena.
  NodeId CloseOpenNode(size_t level) {
    DwarfNode node;
    node.level = static_cast<uint16_t>(level);
    node.cells = std::move(open_[level]);
    open_[level].clear();
    FinalizeAll(&node);
    return Commit(std::move(node));
  }

  /// Computes the ALL cell of \p node from its (already closed) children.
  void FinalizeAll(DwarfNode* node) {
    if (IsLeafLevel(node->level)) {
      Measure all = AggIdentity(agg_);
      for (const DwarfCell& cell : node->cells) {
        all = AggCombine(agg_, all, cell.measure);
      }
      node->all_measure = all;
      return;
    }
    std::vector<NodeId> children;
    children.reserve(node->cells.size());
    for (const DwarfCell& cell : node->cells) children.push_back(cell.child);
    node->all_child = SuffixCoalesce(std::move(children), node->level + 1);
    node->all_coalesced =
        options_.enable_suffix_coalescing && node->cells.size() == 1;
  }

  NodeId Commit(DwarfNode node) {
    NodeId id = static_cast<NodeId>(nodes_->size());
    nodes_->push_back(std::move(node));
    return id;
  }

  /// Merges the sub-dwarfs rooted at \p inputs (all at \p level) into the
  /// aggregate sub-dwarf, sharing structure where possible.
  ///
  /// Duplicate input ids are intentional and must be aggregated once per
  /// occurrence: two cells whose subtrees coalesced both contribute.
  NodeId SuffixCoalesce(std::vector<NodeId> inputs, size_t level) {
    SCD_CHECK(!inputs.empty());
    if (options_.enable_suffix_coalescing && inputs.size() == 1) {
      return inputs[0];  // Share the existing sub-dwarf.
    }
    if (!options_.enable_suffix_coalescing && inputs.size() == 1) {
      return CopySubtree(inputs[0]);
    }

    std::vector<NodeId> memo_key;
    bool use_memo =
        options_.enable_suffix_coalescing && options_.enable_merge_memoization;
    if (use_memo) {
      memo_key = inputs;
      std::sort(memo_key.begin(), memo_key.end());
      auto it = merge_memo_.find(memo_key);
      if (it != merge_memo_.end()) return it->second;
    }

    // Gather all input cells and sort by key; equal keys group together.
    struct Entry {
      DimKey key;
      NodeId child;
      Measure measure;
    };
    std::vector<Entry> entries;
    for (NodeId input : inputs) {
      const DwarfNode& in = (*nodes_)[input];
      for (const DwarfCell& cell : in.cells) {
        entries.push_back({cell.key, cell.child, cell.measure});
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.key < b.key; });

    DwarfNode merged;
    merged.level = static_cast<uint16_t>(level);
    bool leaf = IsLeafLevel(level);
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i;
      while (j < entries.size() && entries[j].key == entries[i].key) ++j;
      DwarfCell cell;
      cell.key = entries[i].key;
      if (leaf) {
        Measure value = AggIdentity(agg_);
        for (size_t k = i; k < j; ++k) {
          value = AggCombine(agg_, value, entries[k].measure);
        }
        cell.measure = value;
      } else {
        std::vector<NodeId> group;
        group.reserve(j - i);
        for (size_t k = i; k < j; ++k) group.push_back(entries[k].child);
        cell.child = SuffixCoalesce(std::move(group), level + 1);
      }
      merged.cells.push_back(cell);
      i = j;
    }
    FinalizeAll(&merged);
    NodeId id = Commit(std::move(merged));
    if (use_memo) merge_memo_.emplace(std::move(memo_key), id);
    return id;
  }

  /// Deep-copies a sub-dwarf (suffix-coalescing ablation only).
  NodeId CopySubtree(NodeId source) {
    // Copy the source node by value first: recursive Commit() calls may
    // reallocate the arena and invalidate any reference into it.
    DwarfNode copy = (*nodes_)[source];
    copy.all_coalesced = false;
    if (!IsLeafLevel(copy.level)) {
      for (DwarfCell& cell : copy.cells) {
        cell.child = CopySubtree(cell.child);
      }
      copy.all_child = CopySubtree(copy.all_child);
    }
    return Commit(std::move(copy));
  }

  const CubeSchema& schema_;
  const BuilderOptions& options_;
  size_t num_dims_;
  AggFn agg_;
  std::vector<DwarfNode>* nodes_ = nullptr;
  std::vector<std::vector<DwarfCell>> open_;
  std::unordered_map<std::vector<NodeId>, NodeId, NodeListHash> merge_memo_;
};

DwarfBuilder::DwarfBuilder(CubeSchema schema, BuilderOptions options)
    : schema_(std::move(schema)), options_(options) {
  dictionaries_.reserve(schema_.num_dimensions());
  for (const DimensionSpec& dim : schema_.dimensions()) {
    dictionaries_.emplace_back(dim.name);
  }
}

Status DwarfBuilder::AddTuple(const std::vector<std::string>& keys,
                              Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = AggLeafValue(schema_.agg(), measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddAggregatedTuple(const std::vector<std::string>& keys,
                                        Measure measure) {
  if (keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(keys.size()) + " keys, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  Tuple tuple;
  tuple.keys.reserve(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    tuple.keys.push_back(dictionaries_[dim].Encode(keys[dim]));
  }
  tuple.measure = measure;  // no AggLeafValue: already aggregated
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status DwarfBuilder::AddEncodedTuple(Tuple tuple) {
  if (tuple.keys.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument("encoded tuple arity mismatch");
  }
  for (size_t dim = 0; dim < tuple.keys.size(); ++dim) {
    if (tuple.keys[dim] >= dictionaries_[dim].size()) {
      return Status::InvalidArgument(
          "encoded key " + std::to_string(tuple.keys[dim]) +
          " not present in dictionary for dimension " + std::to_string(dim));
    }
  }
  tuple.measure = AggLeafValue(schema_.agg(), tuple.measure);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Result<DimKey> DwarfBuilder::EncodeKey(size_t dim, std::string_view value) {
  if (dim >= dictionaries_.size()) {
    return Status::OutOfRange("no dimension " + std::to_string(dim));
  }
  return dictionaries_[dim].Encode(value);
}

Status DwarfBuilder::ImportDictionaries(std::vector<Dictionary> dictionaries) {
  if (!tuples_.empty()) {
    return Status::FailedPrecondition(
        "dictionaries must be imported before any tuple is added");
  }
  if (dictionaries.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "imported " + std::to_string(dictionaries.size()) +
        " dictionaries, schema has " +
        std::to_string(schema_.num_dimensions()) + " dimensions");
  }
  dictionaries_ = std::move(dictionaries);
  for (size_t dim = 0; dim < dictionaries_.size(); ++dim) {
    dictionaries_[dim].set_name(schema_.dimensions()[dim].name);
  }
  return Status::OK();
}

void DwarfBuilder::SortAndAggregate(int num_threads) {
  if (num_threads <= 1 || tuples_.size() < kMinParallelSortTuples) {
    std::sort(tuples_.begin(), tuples_.end(), TupleKeyLess);
    // Merge duplicate key combinations through the aggregate.
    size_t write = 0;
    for (size_t read = 0; read < tuples_.size(); ++read) {
      if (write > 0 && TupleKeysEqual(tuples_[write - 1], tuples_[read])) {
        tuples_[write - 1].measure = AggCombine(
            schema_.agg(), tuples_[write - 1].measure, tuples_[read].measure);
      } else {
        if (write != read) tuples_[write] = std::move(tuples_[read]);
        ++write;
      }
    }
    tuples_.resize(write);
    return;
  }

  // Parallel path: sort contiguous shards concurrently, then k-way merge
  // them, aggregating duplicate key combinations as they surface adjacent in
  // the merge order. Equal keys across shards are popped consecutively
  // (ties break on shard index), so one look-behind suffices exactly as in
  // the serial dedup loop; because the per-key combine is commutative and
  // associative, the merged measures match the serial result bit for bit.
  std::vector<ShardRange> shards;
  {
    ThreadPool pool(num_threads);
    shards = SplitShards(tuples_.size(), pool.num_threads());
    ParallelForShards(pool, tuples_.size(), [&](const ShardRange& shard) {
      std::sort(tuples_.begin() + shard.begin, tuples_.begin() + shard.end,
                TupleKeyLess);
    });
  }

  struct Head {
    size_t shard;
    size_t pos;  ///< absolute index into tuples_
  };
  auto greater = [this](const Head& a, const Head& b) {
    if (tuples_[b.pos].keys != tuples_[a.pos].keys) {
      return TupleKeyLess(tuples_[b.pos], tuples_[a.pos]);
    }
    return a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heads(greater);
  for (const ShardRange& shard : shards) {
    if (shard.begin < shard.end) heads.push({shard.shard, shard.begin});
  }

  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  while (!heads.empty()) {
    Head head = heads.top();
    heads.pop();
    Tuple& tuple = tuples_[head.pos];
    if (!merged.empty() && TupleKeysEqual(merged.back(), tuple)) {
      merged.back().measure =
          AggCombine(schema_.agg(), merged.back().measure, tuple.measure);
    } else {
      merged.push_back(std::move(tuple));
    }
    size_t next = head.pos + 1;
    if (next < shards[head.shard].end) heads.push({head.shard, next});
  }
  tuples_ = std::move(merged);
}

Result<DwarfCube> DwarfBuilder::Build(BuildProfile* profile) && {
  SCD_RETURN_IF_ERROR(schema_.Validate());

  uint64_t source_count = tuples_.size();
  Stopwatch watch;
  SortAndAggregate(ResolveThreadCount(options_.num_threads));
  size_t write = tuples_.size();
  if (profile != nullptr) profile->sort_ms = watch.ElapsedMillis();

  watch.Restart();
  DwarfCube cube;
  cube.schema_ = schema_;
  cube.dictionaries_ = std::move(dictionaries_);
  Impl impl(schema_, options_);
  SCD_ASSIGN_OR_RETURN(cube.root_, impl.Run(tuples_, &cube.nodes_));
  cube.stats_.tuple_count = write;
  cube.stats_.source_tuple_count = source_count;
  CubeStats stats = cube.ComputeStats();
  stats.tuple_count = write;
  stats.source_tuple_count = source_count;
  cube.stats_ = stats;
  if (profile != nullptr) profile->construct_ms = watch.ElapsedMillis();
  return cube;
}

}  // namespace scdwarf::dwarf
