/// \file range_index.h
/// \brief Per-subtree min/max-rank sidecar for ordered dimensions: for every
/// reachable node and every ordered dimension at or below the node's level,
/// the [min, max] value-order ranks of the keys appearing in that subtree.
///
/// This is the coarse pruning structure behind first-class range predicates
/// (DGFIndex-style bounds hung on the DWARF's own subtrees): a range
/// evaluator entering a node checks the span against the query window and
/// skips the whole subtree when they are disjoint instead of enumerating it.
///
/// The index is immutable and rebuilt at each cube finalize point (from-
/// scratch build, store reassembly, delta merge) over reachable nodes only;
/// dead merge slots keep the empty span. It is keyed by NodeId, so it lives
/// beside the arena, not inside the nodes — cubes without ordered dimensions
/// pay nothing.

#ifndef SCDWARF_DWARF_RANGE_INDEX_H_
#define SCDWARF_DWARF_RANGE_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

class DwarfCube;
using NodeId = uint32_t;

/// \brief Immutable (node x ordered-dim) -> [min-rank, max-rank] table.
class RangeIndex {
 public:
  /// Inclusive rank bounds; empty() when the subtree holds no key of the
  /// dimension (unreachable node, or a dim above the node's level).
  struct Span {
    DimKey min_rank = 1;
    DimKey max_rank = 0;
    bool empty() const { return min_rank > max_rank; }
    /// True when no rank in this span falls inside [lo, hi].
    bool Disjoint(DimKey lo, DimKey hi) const {
      return empty() || min_rank > hi || max_rank < lo;
    }
  };

  /// Builds the index over \p cube's reachable nodes for every dimension the
  /// schema marks ordered. The ordered dims' dictionaries must already carry
  /// rank views. Returns nullptr when no dimension is ordered.
  static std::shared_ptr<const RangeIndex> Build(const DwarfCube& cube);

  /// True when \p dim is covered (schema-ordered at build time).
  bool covers(size_t dim) const {
    return dim < slot_of_dim_.size() && slot_of_dim_[dim] >= 0;
  }

  /// Span of dimension \p dim beneath node \p id; requires covers(dim) and
  /// id < the arena extent the index was built over.
  Span span(NodeId id, size_t dim) const {
    return spans_[static_cast<size_t>(id) * num_slots_ +
                  static_cast<size_t>(slot_of_dim_[dim])];
  }

 private:
  RangeIndex() = default;

  size_t num_slots_ = 0;
  std::vector<int> slot_of_dim_;  ///< dim -> slot, -1 when not ordered
  std::vector<Span> spans_;       ///< node-major: [id * num_slots_ + slot]
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_RANGE_INDEX_H_
