/// \file aggregate.h
/// \brief Aggregation functions applied when DWARF coalesces measures.
/// DWARF requires the aggregate to be distributive; SUM/COUNT/MIN/MAX are.

#ifndef SCDWARF_DWARF_AGGREGATE_H_
#define SCDWARF_DWARF_AGGREGATE_H_

#include <algorithm>
#include <limits>
#include <string_view>

#include "common/result.h"
#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

enum class AggFn { kSum, kCount, kMin, kMax };

inline const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "SUM";
    case AggFn::kCount: return "COUNT";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

/// \brief Inverse of AggFnName; used when rebuilding cubes from a store.
inline Result<AggFn> ParseAggFn(std::string_view name) {
  if (name == "SUM") return AggFn::kSum;
  if (name == "COUNT") return AggFn::kCount;
  if (name == "MIN") return AggFn::kMin;
  if (name == "MAX") return AggFn::kMax;
  return Status::ParseError("unknown aggregate '" + std::string(name) + "'");
}

/// \brief Identity element: combining it with any x yields x.
inline Measure AggIdentity(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
      return 0;
    case AggFn::kMin:
      return std::numeric_limits<Measure>::max();
    case AggFn::kMax:
      return std::numeric_limits<Measure>::min();
  }
  return 0;
}

/// \brief Combines two already-aggregated values.
inline Measure AggCombine(AggFn fn, Measure a, Measure b) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
      return a + b;
    case AggFn::kMin:
      return std::min(a, b);
    case AggFn::kMax:
      return std::max(a, b);
  }
  return a;
}

/// \brief Maps a raw tuple measure to its leaf contribution
/// (COUNT counts tuples regardless of the measure value).
inline Measure AggLeafValue(AggFn fn, Measure raw) {
  return fn == AggFn::kCount ? 1 : raw;
}

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_AGGREGATE_H_
