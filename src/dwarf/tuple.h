/// \file tuple.h
/// \brief Input tuples for DWARF construction. A tuple is an ordered list of
/// dictionary-encoded dimension keys plus a measure, mirroring the paper's
/// input format `(dimension_1, ..., dimension_n, measure)` (Fig. 1).

#ifndef SCDWARF_DWARF_TUPLE_H_
#define SCDWARF_DWARF_TUPLE_H_

#include <cstdint>
#include <vector>

namespace scdwarf::dwarf {

/// Dictionary-encoded dimension value. Encoded ids are dense and start at 0.
using DimKey = uint32_t;

/// Measures are 64-bit integers (the paper's DWARF_Cell.measure is an int).
using Measure = int64_t;

/// \brief One fact: n dimension keys plus a measure.
struct Tuple {
  std::vector<DimKey> keys;
  Measure measure = 0;
};

/// \brief Lexicographic comparison on the key vector (construction order).
inline bool TupleKeyLess(const Tuple& a, const Tuple& b) {
  return a.keys < b.keys;
}

inline bool TupleKeysEqual(const Tuple& a, const Tuple& b) {
  return a.keys == b.keys;
}

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_TUPLE_H_
