#include "dwarf/dwarf_cube.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace scdwarf::dwarf {

std::atomic<int64_t> NodeArena::live_instances_{0};

namespace {

const DwarfCell* FindCellIn(const DwarfCell* begin, const DwarfCell* end,
                            DimKey key) {
  auto it = std::lower_bound(
      begin, end, key,
      [](const DwarfCell& cell, DimKey k) { return cell.key < k; });
  if (it == end || it->key != key) return nullptr;
  return it;
}

}  // namespace

const DwarfCell* DwarfNode::FindCell(DimKey key) const {
  return FindCellIn(cells.data(), cells.data() + cells.size(), key);
}

const DwarfCell* NodeView::FindCell(DimKey key) const {
  return FindCellIn(cells.begin(), cells.end(), key);
}

DwarfNode MaterializeNode(const NodeView& view) {
  DwarfNode node;
  node.cells.assign(view.cells.begin(), view.cells.end());
  node.all_child = view.all_child;
  node.all_measure = view.all_measure;
  node.level = view.level;
  node.all_coalesced = view.all_coalesced;
  return node;
}

std::shared_ptr<const NodeArena> FlattenNodes(const std::vector<DwarfNode>& nodes) {
  size_t total_cells = 0;
  for (const DwarfNode& node : nodes) total_cells += node.cells.size();
  std::vector<FlatNode> flat;
  flat.reserve(nodes.size());
  std::vector<DwarfCell> cells;
  cells.reserve(total_cells);
  for (const DwarfNode& node : nodes) {
    FlatNode entry;
    entry.first_cell = static_cast<uint32_t>(cells.size());
    entry.num_cells = static_cast<uint32_t>(node.cells.size());
    entry.all_child = node.all_child;
    entry.level = node.level;
    entry.flags = node.all_coalesced ? FlatNode::kAllCoalesced : 0;
    entry.all_measure = node.all_measure;
    flat.push_back(entry);
    cells.insert(cells.end(), node.cells.begin(), node.cells.end());
  }
  return std::make_shared<const NodeArena>(std::move(flat), std::move(cells));
}

NodeView DwarfCube::NodeInSharedChunk(NodeId id) const {
  // Last chunk with begin <= id; the caller already excluded the final chunk.
  auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), id,
      [](NodeId value, const NodeChunk& chunk) { return value < chunk.begin; });
  const NodeChunk& chunk = *std::prev(it);
  return chunk.arena->View(id - chunk.begin);
}

void DwarfCube::AdoptArena(std::vector<DwarfNode> nodes) {
  num_nodes_ = nodes.size();
  chunks_.clear();
  chunks_.push_back({0, FlattenNodes(nodes)});
}

void DwarfCube::ShareArenaAndAppend(const DwarfCube& base,
                                    std::vector<DwarfNode> tail) {
  chunks_ = base.chunks_;
  num_nodes_ = base.num_nodes_ + tail.size();
  chunks_.push_back({static_cast<NodeId>(base.num_nodes_), FlattenNodes(tail)});
}

void DwarfCube::FinalizeOrderedViews() {
  bool any_ordered = false;
  for (const DimensionSpec& dim : schema_.dimensions()) {
    any_ordered = any_ordered || dim.ordered;
  }
  if (!any_ordered) {
    range_index_.reset();
    return;
  }
  for (size_t dim = 0; dim < dictionaries_.size(); ++dim) {
    if (schema_.dimensions()[dim].ordered) dictionaries_[dim].BuildRankView();
  }
  range_index_ = RangeIndex::Build(*this);
}

CubeStats DwarfCube::ComputeStats() const {
  // Walk from the root rather than scanning arena slots: a merged cube's
  // arena carries dead nodes from prior epochs, and they must not count.
  // (For from-scratch cubes every slot is reachable, so the numbers are
  // identical to an arena scan.)
  CubeStats stats;
  stats.tuple_count = stats_.tuple_count;
  stats.source_tuple_count = stats_.source_tuple_count;
  if (empty()) return stats;
  std::vector<bool> visited(num_nodes_, false);
  std::vector<NodeId> stack = {root_};
  visited[root_] = true;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const NodeView node = this->node(id);
    ++stats.node_count;
    stats.cell_count += node.cells.size();
    if (node.all_coalesced) ++stats.coalesced_all_count;
    stats.approx_bytes +=
        sizeof(FlatNode) + node.cells.size() * sizeof(DwarfCell);
    if (IsLeafLevel(node.level)) continue;
    for (const DwarfCell& cell : node.cells) {
      if (!visited[cell.child]) {
        visited[cell.child] = true;
        stack.push_back(cell.child);
      }
    }
    if (!visited[node.all_child]) {
      visited[node.all_child] = true;
      stack.push_back(node.all_child);
    }
  }
  return stats;
}

Result<DwarfCube> DwarfCube::FromFlatArena(
    CubeSchema schema, std::vector<Dictionary> dictionaries,
    std::shared_ptr<const NodeArena> arena, NodeId root,
    const CubeStats& stats) {
  SCD_RETURN_IF_ERROR(schema.Validate());
  if (dictionaries.size() != schema.num_dimensions()) {
    return Status::InvalidArgument("flat arena needs one dictionary per dimension");
  }
  if (arena == nullptr) {
    return Status::InvalidArgument("flat arena is null");
  }
  const size_t num_dims = schema.num_dimensions();
  const size_t num_nodes = arena->num_nodes();
  const size_t num_cells = arena->num_cells();
  const FlatNode* nodes = arena->nodes();
  const DwarfCell* cells = arena->cells();
  if (root == kNullNode && num_nodes != 0) {
    return Status::InvalidArgument("flat arena has nodes but no root");
  }
  if (root != kNullNode && root >= num_nodes) {
    return Status::InvalidArgument("flat arena root id out of range");
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    const FlatNode& node = nodes[i];
    if (node.level >= num_dims) {
      return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                     " has invalid level " +
                                     std::to_string(node.level));
    }
    // 64-bit sum: first_cell + num_cells cannot wrap past the check.
    if (static_cast<uint64_t>(node.first_cell) + node.num_cells > num_cells) {
      return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                     " cell run out of range");
    }
    bool leaf = static_cast<size_t>(node.level) + 1 == num_dims;
    const DwarfCell* run = cells + node.first_cell;
    for (uint32_t c = 0; c < node.num_cells; ++c) {
      // Child level must be exactly level + 1: levels strictly increase along
      // every edge, so a corrupt file cannot smuggle in a reference cycle.
      if (!leaf) {
        if (run[c].child >= num_nodes) {
          return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                         " has dangling child reference");
        }
        if (nodes[run[c].child].level != node.level + 1) {
          return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                         " child level mismatch");
        }
      }
      if (c > 0 && run[c - 1].key >= run[c].key) {
        return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                       " cells are not strictly sorted");
      }
    }
    if (!leaf) {
      if (node.all_child >= num_nodes) {
        return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                       " has dangling ALL reference");
      }
      if (nodes[node.all_child].level != node.level + 1) {
        return Status::InvalidArgument("flat arena node " + std::to_string(i) +
                                       " ALL level mismatch");
      }
    }
  }
  if (root != kNullNode && nodes[root].level != 0) {
    return Status::InvalidArgument("flat arena root is not a level-0 node");
  }
  DwarfCube cube;
  cube.schema_ = std::move(schema);
  cube.dictionaries_ = std::move(dictionaries);
  cube.root_ = root;
  cube.num_nodes_ = num_nodes;
  cube.chunks_.clear();
  cube.chunks_.push_back({0, std::move(arena)});
  cube.stats_ = stats;
  cube.FinalizeOrderedViews();
  return cube;
}

namespace {

void DebugPrint(const DwarfCube& cube, NodeId id, int indent,
                std::ostringstream* out) {
  const NodeView node = cube.node(id);
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  bool leaf = cube.IsLeafLevel(node.level);
  *out << pad << "node#" << id << " ["
       << cube.schema().dimensions()[node.level].name << "]\n";
  for (const DwarfCell& cell : node.cells) {
    std::string label =
        cube.dictionary(node.level).Decode(cell.key).ValueOr("<id " +
                                                             std::to_string(cell.key) + ">");
    if (leaf) {
      *out << pad << "  " << label << " = " << cell.measure << "\n";
    } else {
      *out << pad << "  " << label << " ->\n";
      DebugPrint(cube, cell.child, indent + 2, out);
    }
  }
  if (leaf) {
    *out << pad << "  ALL = " << node.all_measure << "\n";
  } else if (node.all_coalesced) {
    *out << pad << "  ALL -> node#" << node.all_child << " (coalesced)\n";
  } else {
    *out << pad << "  ALL ->\n";
    DebugPrint(cube, node.all_child, indent + 2, out);
  }
}

/// Recursively compares the subtrees rooted at `a_id` / `b_id`.
bool SubtreeEquals(const DwarfCube& a, NodeId a_id, const DwarfCube& b,
                   NodeId b_id) {
  const NodeView na = a.node(a_id);
  const NodeView nb = b.node(b_id);
  if (na.level != nb.level) return false;
  if (na.cells.size() != nb.cells.size()) return false;
  bool leaf = a.IsLeafLevel(na.level);
  // Compare by decoded label, not raw id: two cubes may have assigned
  // dictionary ids in different orders, which also changes cell sort order.
  auto label_order = [](const DwarfCube& cube, const NodeView& node) {
    std::vector<std::pair<std::string, const DwarfCell*>> ordered;
    ordered.reserve(node.cells.size());
    for (const DwarfCell& cell : node.cells) {
      ordered.emplace_back(
          cube.dictionary(node.level).Decode(cell.key).ValueOr(""), &cell);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    return ordered;
  };
  auto oa = label_order(a, na);
  auto ob = label_order(b, nb);
  for (size_t i = 0; i < oa.size(); ++i) {
    if (oa[i].first != ob[i].first) return false;
    if (leaf) {
      if (oa[i].second->measure != ob[i].second->measure) return false;
    } else if (!SubtreeEquals(a, oa[i].second->child, b, ob[i].second->child)) {
      return false;
    }
  }
  if (leaf) {
    return na.all_measure == nb.all_measure;
  }
  return SubtreeEquals(a, na.all_child, b, nb.all_child);
}

}  // namespace

std::string DwarfCube::ToDebugString() const {
  std::ostringstream out;
  if (empty()) {
    out << "(empty cube)\n";
    return out.str();
  }
  DebugPrint(*this, root_, 0, &out);
  return out.str();
}

bool DwarfCube::StructurallyEquals(const DwarfCube& other) const {
  if (num_dimensions() != other.num_dimensions()) return false;
  if (empty() != other.empty()) return false;
  if (empty()) return true;
  return SubtreeEquals(*this, root_, other, other.root_);
}

NodeId CubeAssembler::AddNode(DwarfNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

Result<DwarfCube> CubeAssembler::Finish() {
  SCD_RETURN_IF_ERROR(schema_.Validate());
  if (dictionaries_.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "assembler needs one dictionary per dimension");
  }
  size_t num_dims = schema_.num_dimensions();
  if (root_ == kNullNode && !nodes_.empty()) {
    return Status::InvalidArgument("nodes added but no root set");
  }
  if (root_ != kNullNode && root_ >= nodes_.size()) {
    return Status::InvalidArgument("root id out of range");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const DwarfNode& node = nodes_[i];
    if (node.level >= num_dims) {
      return Status::InvalidArgument("node " + std::to_string(i) +
                                     " has invalid level " +
                                     std::to_string(node.level));
    }
    bool leaf = static_cast<size_t>(node.level) + 1 == num_dims;
    for (const DwarfCell& cell : node.cells) {
      if (!leaf) {
        if (cell.child >= nodes_.size()) {
          return Status::InvalidArgument("node " + std::to_string(i) +
                                         " has dangling child reference");
        }
        if (nodes_[cell.child].level != node.level + 1) {
          return Status::InvalidArgument(
              "node " + std::to_string(i) + " child level mismatch");
        }
      }
    }
    if (!leaf) {
      if (node.all_child >= nodes_.size()) {
        return Status::InvalidArgument("node " + std::to_string(i) +
                                       " has dangling ALL reference");
      }
    }
    for (size_t c = 1; c < node.cells.size(); ++c) {
      if (node.cells[c - 1].key >= node.cells[c].key) {
        return Status::InvalidArgument("node " + std::to_string(i) +
                                       " cells are not strictly sorted");
      }
    }
  }
  DwarfCube cube;
  cube.schema_ = std::move(schema_);
  cube.dictionaries_ = std::move(dictionaries_);
  cube.root_ = root_;
  cube.AdoptArena(std::move(nodes_));
  cube.stats_.tuple_count = tuple_count_;
  cube.stats_.source_tuple_count = source_tuple_count_;
  cube.stats_ = cube.ComputeStats();
  cube.FinalizeOrderedViews();
  return cube;
}

}  // namespace scdwarf::dwarf
