#include "dwarf/hierarchy.h"

#include <algorithm>
#include <set>

#include "dwarf/update.h"

namespace scdwarf::dwarf {

Result<Hierarchy> Hierarchy::Create(std::string name,
                                    std::vector<std::string> level_names) {
  if (level_names.size() < 2) {
    return Status::InvalidArgument(
        "a hierarchy needs at least two levels, got " +
        std::to_string(level_names.size()));
  }
  for (size_t i = 0; i < level_names.size(); ++i) {
    if (level_names[i].empty()) {
      return Status::InvalidArgument("empty hierarchy level name");
    }
    for (size_t j = i + 1; j < level_names.size(); ++j) {
      if (level_names[i] == level_names[j]) {
        return Status::InvalidArgument("duplicate hierarchy level '" +
                                       level_names[i] + "'");
      }
    }
  }
  Hierarchy hierarchy;
  hierarchy.name_ = std::move(name);
  hierarchy.parents_.resize(level_names.size() - 1);
  hierarchy.level_names_ = std::move(level_names);
  return hierarchy;
}

Status Hierarchy::AddEdge(size_t child_level, const std::string& child,
                          const std::string& parent) {
  if (child_level == 0 || child_level >= level_names_.size()) {
    return Status::OutOfRange("child level " + std::to_string(child_level) +
                              " out of range for hierarchy '" + name_ + "'");
  }
  auto [it, inserted] = parents_[child_level - 1].emplace(child, parent);
  if (!inserted && it->second != parent) {
    return Status::InvalidArgument("member '" + child + "' at level '" +
                                   level_names_[child_level] +
                                   "' already has parent '" + it->second +
                                   "'");
  }
  return Status::OK();
}

Result<size_t> Hierarchy::LevelIndex(const std::string& level_name) const {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    if (level_names_[i] == level_name) return i;
  }
  return Status::NotFound("hierarchy '" + name_ + "' has no level '" +
                          level_name + "'");
}

Result<std::string> Hierarchy::ParentOf(size_t level,
                                        const std::string& member) const {
  if (level == 0) {
    return Status::OutOfRange("level-0 members of '" + name_ +
                              "' have no parent");
  }
  if (level >= level_names_.size()) {
    return Status::OutOfRange("no level " + std::to_string(level) +
                              " in hierarchy '" + name_ + "'");
  }
  auto it = parents_[level - 1].find(member);
  if (it == parents_[level - 1].end()) {
    return Status::NotFound("member '" + member + "' unknown at level '" +
                            level_names_[level] + "'");
  }
  return it->second;
}

Result<std::string> Hierarchy::AncestorOf(size_t level,
                                          const std::string& member,
                                          size_t ancestor_level) const {
  if (ancestor_level > level) {
    return Status::InvalidArgument("ancestor level must be above the member");
  }
  std::string current = member;
  for (size_t l = level; l > ancestor_level; --l) {
    SCD_ASSIGN_OR_RETURN(current, ParentOf(l, current));
  }
  return current;
}

std::vector<std::string> Hierarchy::ChildrenOf(size_t level,
                                               const std::string& member) const {
  std::vector<std::string> children;
  if (level + 1 < level_names_.size()) {
    for (const auto& [child, parent] : parents_[level]) {
      if (parent == member) children.push_back(child);
    }
  }
  std::sort(children.begin(), children.end());
  return children;
}

std::vector<std::string> Hierarchy::LeafDescendantsOf(
    size_t level, const std::string& member) const {
  if (level + 1 == level_names_.size()) return {member};
  std::vector<std::string> leaves;
  for (const std::string& child : ChildrenOf(level, member)) {
    std::vector<std::string> sub = LeafDescendantsOf(level + 1, child);
    leaves.insert(leaves.end(), sub.begin(), sub.end());
  }
  return leaves;
}

std::vector<std::string> Hierarchy::MembersAt(size_t level) const {
  std::set<std::string> members;
  // Parents referenced by level+1 members.
  if (level < parents_.size()) {
    for (const auto& [child, parent] : parents_[level]) members.insert(parent);
  }
  // Children declared at this level.
  if (level >= 1) {
    for (const auto& [child, parent] : parents_[level - 1]) {
      members.insert(child);
    }
  }
  return {members.begin(), members.end()};
}

Status Hierarchy::ValidateCovers(const Dictionary& dictionary) const {
  size_t leaf_level = level_names_.size() - 1;
  for (DimKey id = 0; id < dictionary.size(); ++id) {
    const std::string& member = dictionary.DecodeUnchecked(id);
    auto ancestor = AncestorOf(leaf_level, member, 0);
    if (!ancestor.ok()) {
      return Status::FailedPrecondition(
          "hierarchy '" + name_ + "' does not cover dimension value '" +
          member + "': " + ancestor.status().message());
    }
  }
  return Status::OK();
}

namespace {

/// Encodes the leaf descendants of a member into cube dimension keys;
/// values absent from the cube are skipped (no data under them).
Result<DimPredicate> DescendantPredicate(const DwarfCube& cube, size_t dim,
                                         const Hierarchy& hierarchy,
                                         size_t member_level,
                                         const std::string& member) {
  if (dim >= cube.num_dimensions()) {
    return Status::OutOfRange("dimension index out of range");
  }
  if (member_level >= hierarchy.num_levels()) {
    return Status::OutOfRange("hierarchy level out of range");
  }
  std::vector<DimKey> keys;
  for (const std::string& leaf :
       hierarchy.LeafDescendantsOf(member_level, member)) {
    auto key = cube.dictionary(dim).Lookup(leaf);
    if (key.ok()) keys.push_back(*key);
  }
  return DimPredicate::Set(std::move(keys));
}

}  // namespace

Result<Measure> HierarchicalQuery(const DwarfCube& cube, size_t dim,
                                  const Hierarchy& hierarchy,
                                  size_t member_level,
                                  const std::string& member) {
  SCD_ASSIGN_OR_RETURN(
      DimPredicate predicate,
      DescendantPredicate(cube, dim, hierarchy, member_level, member));
  std::vector<DimPredicate> predicates(cube.num_dimensions(),
                                       DimPredicate::All());
  predicates[dim] = std::move(predicate);
  return AggregateQuery(cube, predicates);
}

Result<std::vector<SliceRow>> DrillDown(const DwarfCube& cube, size_t dim,
                                        const Hierarchy& hierarchy,
                                        size_t member_level,
                                        const std::string& member) {
  if (member_level + 1 >= hierarchy.num_levels()) {
    return Status::OutOfRange("cannot drill below level '" +
                              hierarchy.level_names().back() + "'");
  }
  std::vector<SliceRow> rows;
  for (const std::string& child :
       hierarchy.ChildrenOf(member_level, member)) {
    auto value =
        HierarchicalQuery(cube, dim, hierarchy, member_level + 1, child);
    if (value.status().IsNotFound()) continue;  // no data under this child
    SCD_RETURN_IF_ERROR(value.status());
    rows.push_back({{child}, *value});
  }
  return rows;
}

Result<DwarfCube> RollUpToLevel(const DwarfCube& cube, size_t dim,
                                const Hierarchy& hierarchy,
                                size_t target_level) {
  if (dim >= cube.num_dimensions()) {
    return Status::OutOfRange("dimension index out of range");
  }
  if (target_level + 1 >= hierarchy.num_levels()) {
    return Status::InvalidArgument(
        "target level must be strictly above the leaf level");
  }
  SCD_RETURN_IF_ERROR(hierarchy.ValidateCovers(cube.dictionary(dim)));

  // New schema: same dimensions, the rolled-up one renamed to the level.
  std::vector<DimensionSpec> dims = cube.schema().dimensions();
  dims[dim].name = hierarchy.level_names()[target_level];
  CubeSchema schema(cube.schema().name(), std::move(dims),
                    cube.schema().measure_name(), cube.agg());

  size_t leaf_level = hierarchy.num_levels() - 1;
  SCD_ASSIGN_OR_RETURN(std::vector<SliceRow> base, ExtractBaseTuples(cube));
  DwarfBuilder builder(schema);
  for (SliceRow& row : base) {
    SCD_ASSIGN_OR_RETURN(
        row.keys[dim],
        hierarchy.AncestorOf(leaf_level, row.keys[dim], target_level));
    SCD_RETURN_IF_ERROR(builder.AddAggregatedTuple(row.keys, row.measure));
  }
  return std::move(builder).Build();
}

}  // namespace scdwarf::dwarf
