/// \file query.h
/// \brief Query primitives over a DwarfCube: point queries with ALL
/// wildcards, range/set aggregate queries and slice extraction. These are the
/// "efficient query primitives" the paper's conclusion targets for cube
/// updates and retrieval.

#ifndef SCDWARF_DWARF_QUERY_H_
#define SCDWARF_DWARF_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

/// \brief Per-dimension predicate of an aggregate query.
struct DimPredicate {
  enum class Kind { kAll, kPoint, kRange, kSet };

  Kind kind = Kind::kAll;
  DimKey point = 0;          ///< kPoint
  DimKey lo = 0, hi = 0;     ///< kRange, inclusive bounds on encoded ids
  std::vector<DimKey> keys;  ///< kSet

  static DimPredicate All() { return {}; }
  static DimPredicate Point(DimKey key) {
    DimPredicate p;
    p.kind = Kind::kPoint;
    p.point = key;
    return p;
  }
  static DimPredicate Range(DimKey lo, DimKey hi) {
    DimPredicate p;
    p.kind = Kind::kRange;
    p.lo = lo;
    p.hi = hi;
    return p;
  }
  static DimPredicate Set(std::vector<DimKey> keys) {
    DimPredicate p;
    p.kind = Kind::kSet;
    p.keys = std::move(keys);
    return p;
  }

  /// True when \p key satisfies this predicate.
  bool Matches(DimKey key) const;
};

/// \brief Point query: one key or ALL (`std::nullopt`) per dimension.
/// Navigates a single root-to-leaf path (ALL follows the precomputed
/// aggregate pointer — the DWARF fast path). Returns NotFound when the
/// requested coordinate has no data.
Result<Measure> PointQuery(const DwarfCube& cube,
                           const std::vector<std::optional<DimKey>>& keys);

/// \brief Point query on decoded string keys ("Ireland", std::nullopt, ...).
Result<Measure> PointQueryByName(
    const DwarfCube& cube,
    const std::vector<std::optional<std::string>>& keys);

/// \brief General aggregate query: applies one predicate per dimension and
/// aggregates all matching leaf measures with the cube's aggregate function.
/// ALL predicates use the precomputed ALL sub-dwarfs; other predicates fan
/// out over matching cells. Returns NotFound when nothing matches.
Result<Measure> AggregateQuery(const DwarfCube& cube,
                               const std::vector<DimPredicate>& predicates);

/// \brief One row of a slice result: decoded keys of the non-fixed
/// dimensions plus the aggregated measure.
struct SliceRow {
  std::vector<std::string> keys;
  Measure measure = 0;
};

/// \brief Materializes the sub-cube where dimension \p fixed_dim equals
/// \p key, grouped by every remaining dimension (a classic OLAP slice).
Result<std::vector<SliceRow>> Slice(const DwarfCube& cube, size_t fixed_dim,
                                    DimKey key);

/// \brief Group-by over a subset of dimensions (roll-up of the rest):
/// returns one row per distinct combination of \p group_dims values, with
/// all other dimensions rolled up through their ALL cells.
Result<std::vector<SliceRow>> RollUp(const DwarfCube& cube,
                                     const std::vector<size_t>& group_dims);

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_QUERY_H_
