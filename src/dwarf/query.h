/// \file query.h
/// \brief Query primitives over a DwarfCube: point queries with ALL
/// wildcards, range/set aggregate queries and slice extraction. These are the
/// "efficient query primitives" the paper's conclusion targets for cube
/// updates and retrieval.

#ifndef SCDWARF_DWARF_QUERY_H_
#define SCDWARF_DWARF_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

/// \brief Per-dimension predicate of an aggregate query.
///
/// A kRange predicate comes in two bound spaces: plain Range() bounds are
/// encoded dictionary ids (first-seen feed order), RankRange() bounds are
/// value-order ranks over an *ordered* dimension's rank view (lexicographic
/// value order — "2013-07-01".."2013-07-31" selects July). Rank ranges need
/// the cube's dictionary to evaluate, so Matches() covers id-space
/// predicates only; use MatchesInCube() when the predicate may be by_rank.
struct DimPredicate {
  enum class Kind { kAll, kPoint, kRange, kSet };

  Kind kind = Kind::kAll;
  DimKey point = 0;          ///< kPoint
  DimKey lo = 0, hi = 0;     ///< kRange, inclusive bounds (ids or ranks)
  bool by_rank = false;      ///< kRange: bounds are value-order ranks
  std::vector<DimKey> keys;  ///< kSet

  static DimPredicate All() { return {}; }
  static DimPredicate Point(DimKey key) {
    DimPredicate p;
    p.kind = Kind::kPoint;
    p.point = key;
    return p;
  }
  static DimPredicate Range(DimKey lo, DimKey hi) {
    DimPredicate p;
    p.kind = Kind::kRange;
    p.lo = lo;
    p.hi = hi;
    return p;
  }
  /// Range over value-order ranks of an ordered dimension (inclusive).
  static DimPredicate RankRange(DimKey lo, DimKey hi) {
    DimPredicate p;
    p.kind = Kind::kRange;
    p.lo = lo;
    p.hi = hi;
    p.by_rank = true;
    return p;
  }
  static DimPredicate Set(std::vector<DimKey> keys) {
    DimPredicate p;
    p.kind = Kind::kSet;
    p.keys = std::move(keys);
    return p;
  }

  /// True when \p key satisfies this predicate. Valid for id-space
  /// predicates only (by_rank ranges need a dictionary; see MatchesInCube).
  bool Matches(DimKey key) const;

  /// Matches() with rank resolution: a by_rank range tests the key's
  /// value-order rank in \p dict (which must carry a rank view).
  bool MatchesInCube(DimKey key, const Dictionary& dict) const;
};

/// \brief Validates \p predicates against \p cube: one predicate per
/// dimension, lo <= hi for every range (InvalidArgument otherwise — the
/// wire layer rejects lo > hi the same way, so both entry points agree),
/// and by_rank ranges only on dimensions the schema marks ordered.
Status ValidatePredicates(const DwarfCube& cube,
                          const std::vector<DimPredicate>& predicates);

/// \brief Point query: one key or ALL (`std::nullopt`) per dimension.
/// Navigates a single root-to-leaf path (ALL follows the precomputed
/// aggregate pointer — the DWARF fast path). Returns NotFound when the
/// requested coordinate has no data.
Result<Measure> PointQuery(const DwarfCube& cube,
                           const std::vector<std::optional<DimKey>>& keys);

/// \brief Point query on decoded string keys ("Ireland", std::nullopt, ...).
Result<Measure> PointQueryByName(
    const DwarfCube& cube,
    const std::vector<std::optional<std::string>>& keys);

/// \brief General aggregate query: applies one predicate per dimension and
/// aggregates all matching leaf measures with the cube's aggregate function.
/// ALL predicates use the precomputed ALL sub-dwarfs; other predicates fan
/// out over matching cells — except ranges, which bound the fan-out: id
/// ranges binary-search the sorted cell window, and rank ranges additionally
/// skip whole subtrees whose min/max-rank span (cube.range_index()) is
/// disjoint from the window (counted by dwarf_range_subtrees_pruned_total).
/// Returns NotFound when nothing matches; InvalidArgument for a range with
/// lo > hi or a rank range on an unordered dimension.
Result<Measure> AggregateQuery(const DwarfCube& cube,
                               const std::vector<DimPredicate>& predicates);

/// \brief One row of a slice result: decoded keys of the non-fixed
/// dimensions plus the aggregated measure.
struct SliceRow {
  std::vector<std::string> keys;
  Measure measure = 0;
};

/// \brief Materializes the sub-cube where dimension \p fixed_dim equals
/// \p key, grouped by every remaining dimension (a classic OLAP slice).
Result<std::vector<SliceRow>> Slice(const DwarfCube& cube, size_t fixed_dim,
                                    DimKey key);

/// \brief Inclusive value-order rank window restricting one grouped
/// dimension of a roll-up. A window with lo > hi matches nothing (the
/// wire layer produces it when a value range falls between dictionary
/// entries) — the roll-up then has zero rows.
struct RankWindow {
  DimKey lo = 0;
  DimKey hi = 0;
};

/// One optional window per cube dimension; windows are only meaningful on
/// grouped (enumerated) dims, and require the dim to be schema-ordered.
using RankFilters = std::vector<std::optional<RankWindow>>;

/// \brief Validates roll-up rank filters: one slot per cube dimension, and
/// every set window must sit on a grouped (\p enumerate) dimension that the
/// schema marks ordered. Shared by the one-shot RollUp and RowCursor.
Status ValidateRankFilters(const DwarfCube& cube,
                           const std::vector<bool>& enumerate,
                           const RankFilters* filters);

/// \brief Permutation taking ascending-dimension-order roll-up row keys to
/// the caller's requested \p group_dims order: `out[j] = keys[order[j]]`.
/// Shared by RollUp and RowCursor so paginated rows are byte-identical to
/// one-shot rows. Rejects duplicate (InvalidArgument) and out-of-range
/// (OutOfRange) group dims.
Result<std::vector<size_t>> RollUpKeyOrder(size_t num_dimensions,
                                           const std::vector<size_t>& group_dims);

/// \brief Group-by over a subset of dimensions (roll-up of the rest):
/// returns one row per distinct combination of \p group_dims values, with
/// all other dimensions rolled up through their ALL cells. Row keys are in
/// *requested* \p group_dims order (not cube dimension order); duplicate
/// group dims are InvalidArgument.
///
/// \p filters, when non-null, restricts grouped ordered dims to rank
/// windows; subtrees whose min/max-rank span misses a window are pruned via
/// cube.range_index(). Filters on non-grouped or unordered dims are
/// InvalidArgument.
Result<std::vector<SliceRow>> RollUp(const DwarfCube& cube,
                                     const std::vector<size_t>& group_dims,
                                     const RankFilters* filters = nullptr);

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_QUERY_H_
