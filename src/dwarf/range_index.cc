#include "dwarf/range_index.h"

#include <algorithm>

#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

namespace {

/// Post-order sidecar fill: a node's row is its own level's cell ranks plus
/// the union of every child row. Memoized on the visited bitmap so shared
/// (coalesced) subtrees are computed once; recursion depth is bounded by the
/// dimension count, not the node count.
struct SpanBuilder {
  const DwarfCube& cube;
  size_t num_slots;
  const std::vector<int>& slot_of_dim;
  std::vector<RangeIndex::Span>& spans;
  std::vector<bool> visited;

  RangeIndex::Span* Row(NodeId id) {
    return &spans[static_cast<size_t>(id) * num_slots];
  }

  void MergeChildRow(NodeId dst, NodeId src) {
    // Child rows are non-empty only for dims at or below the child's level,
    // all strictly below dst's level — no own-level slot is ever clobbered.
    RangeIndex::Span* to = Row(dst);
    const RangeIndex::Span* from = Row(src);
    for (size_t slot = 0; slot < num_slots; ++slot) {
      if (from[slot].empty()) continue;
      if (to[slot].empty()) {
        to[slot] = from[slot];
      } else {
        to[slot].min_rank = std::min(to[slot].min_rank, from[slot].min_rank);
        to[slot].max_rank = std::max(to[slot].max_rank, from[slot].max_rank);
      }
    }
  }

  void Visit(NodeId id) {
    if (visited[id]) return;
    visited[id] = true;
    const NodeView node = cube.node(id);
    if (!cube.IsLeafLevel(node.level)) {
      for (const DwarfCell& cell : node.cells) Visit(cell.child);
      Visit(node.all_child);
      for (const DwarfCell& cell : node.cells) MergeChildRow(id, cell.child);
      MergeChildRow(id, node.all_child);
    }
    int slot = slot_of_dim[node.level];
    if (slot >= 0) {
      const Dictionary& dict = cube.dictionary(node.level);
      RangeIndex::Span& own = Row(id)[slot];
      for (const DwarfCell& cell : node.cells) {
        DimKey rank = dict.RankOf(cell.key);
        if (own.empty()) {
          own.min_rank = rank;
          own.max_rank = rank;
        } else {
          own.min_rank = std::min(own.min_rank, rank);
          own.max_rank = std::max(own.max_rank, rank);
        }
      }
    }
  }
};

}  // namespace

std::shared_ptr<const RangeIndex> RangeIndex::Build(const DwarfCube& cube) {
  auto index = std::shared_ptr<RangeIndex>(new RangeIndex());
  index->slot_of_dim_.assign(cube.num_dimensions(), -1);
  size_t slots = 0;
  for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
    if (cube.schema().dimensions()[dim].ordered) {
      index->slot_of_dim_[dim] = static_cast<int>(slots++);
    }
  }
  if (slots == 0) return nullptr;
  index->num_slots_ = slots;
  index->spans_.assign(cube.num_nodes() * slots, Span{});
  if (!cube.empty()) {
    SpanBuilder builder{cube, slots, index->slot_of_dim_, index->spans_,
                        std::vector<bool>(cube.num_nodes(), false)};
    builder.Visit(cube.root());
  }
  return index;
}

}  // namespace scdwarf::dwarf
