/// \file builder.h
/// \brief Single-pass DWARF construction (Sismanis et al., SIGMOD 2002).
///
/// The builder sorts the input tuples lexicographically on their dimension
/// keys, merges duplicate key combinations through the schema's aggregate,
/// and then constructs the cube in one sweep:
///
///  * **Prefix expansion** — consecutive tuples share node paths for their
///    common key prefix, so each distinct prefix is stored once.
///  * **Suffix coalescing** — when a closing node's ALL sub-dwarf would be
///    identical to an existing sub-dwarf (single-cell nodes, or repeated
///    merges), the ALL pointer aliases it instead of copying.
///
/// Both optimizations can be disabled individually for the ablation benches.

#ifndef SCDWARF_DWARF_BUILDER_H_
#define SCDWARF_DWARF_BUILDER_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

/// \brief Construction options (defaults reproduce the paper's DWARF).
struct BuilderOptions {
  /// Share the ALL sub-dwarf of single-cell nodes and memoize repeated
  /// merges. Disabling this materializes every aggregate sub-dwarf
  /// separately (the "full cube" ablation) — exponentially larger.
  bool enable_suffix_coalescing = true;

  /// Memoize SuffixCoalesce merges by input node set. Only meaningful while
  /// suffix coalescing is enabled.
  bool enable_merge_memoization = true;

  /// Threads for the Build()-time tuple sort and construction sweep: 0 =
  /// auto (SCDWARF_THREADS env override, else hardware_concurrency), 1 = the
  /// exact serial path. More than one thread (a) sorts contiguous tuple
  /// shards concurrently and k-way merges them with duplicate aggregation,
  /// and (b) partitions the sorted stream into per-key subtree tasks at the
  /// first dimension whose key varies (leading single-valued dimensions —
  /// e.g. a one-month feed led by Month — become single-cell wrapper nodes
  /// above the stitched split level), built concurrently and stitched under
  /// a fresh top. The resulting cube arena is bit-identical to the serial
  /// one for any thread count (see ConstructSweep for the invariant
  /// argument), only faster.
  int num_threads = 0;
};

/// \brief Per-stage wall-clock breakdown of one Build() call.
struct BuildProfile {
  double sort_ms = 0;       ///< tuple sort + duplicate aggregation
  double construct_ms = 0;  ///< single-sweep DWARF construction
  int sweep_tasks = 0;      ///< parallel subtree tasks (0 = serial sweep)
};

/// \brief Builds immutable DwarfCube instances.
///
/// Typical usage:
/// \code
///   DwarfBuilder builder(schema);
///   for (...) builder.AddTuple({"Ireland", "Dublin", "Fenian St"}, 3);
///   SCD_ASSIGN_OR_RETURN(DwarfCube cube, std::move(builder).Build());
/// \endcode
class DwarfBuilder {
 public:
  explicit DwarfBuilder(CubeSchema schema, BuilderOptions options = {});

  /// Adds a tuple given decoded string keys (encoded through the builder's
  /// dictionaries). Returns InvalidArgument when the arity mismatches.
  Status AddTuple(const std::vector<std::string>& keys, Measure measure);

  /// Adds a pre-encoded tuple. Keys must come from the builder's
  /// dictionaries (EncodeKey).
  Status AddEncodedTuple(Tuple tuple);

  /// Adds a tuple whose measure is already aggregated, bypassing the leaf
  /// mapping (COUNT would otherwise re-count it as one tuple). Used by the
  /// cube-update path to re-feed a cube's base tuples.
  Status AddAggregatedTuple(const std::vector<std::string>& keys,
                            Measure measure);

  /// Encodes a single key through dimension \p dim's dictionary.
  Result<DimKey> EncodeKey(size_t dim, std::string_view value);

  /// Replaces the builder's (empty) dictionaries with pre-built ones, so a
  /// front-end that interned keys itself — e.g. the parallel pipeline's
  /// dictionary merge — can feed AddEncodedTuple directly. Fails once any
  /// tuple has been added or when the dimension count mismatches.
  Status ImportDictionaries(std::vector<Dictionary> dictionaries);

  /// Number of raw tuples added so far.
  size_t num_tuples() const { return tuples_.size(); }

  /// Consumes the builder and constructs the cube. When \p profile is
  /// non-null it receives the sort/construct stage timings.
  Result<DwarfCube> Build(BuildProfile* profile = nullptr) &&;

 private:
  class Impl;

  /// Sorts tuples_ and merges duplicate key combinations through the
  /// aggregate, serially or via sort-shards + k-way merge.
  void SortAndAggregate(int num_threads);

  /// Runs the construction sweep over the sorted tuples_ into \p nodes,
  /// returning the root id. With more than one thread the sweep is split
  /// into per-key subtree tasks at the first varying dimension;
  /// \p sweep_tasks reports how many (0 for the serial sweep).
  Result<NodeId> ConstructSweep(int num_threads, std::vector<DwarfNode>* nodes,
                                int* sweep_tasks);

  CubeSchema schema_;
  BuilderOptions options_;
  std::vector<Dictionary> dictionaries_;
  std::vector<Tuple> tuples_;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_BUILDER_H_
