/// \file hierarchy.h
/// \brief Dimension hierarchies and the ROLLUP / DRILL DOWN operations the
/// paper's related work (§6, citing Sismanis et al. [11] and Jensen et al.
/// [5]) identifies as necessary for cubes built from XML sources.
///
/// A hierarchy declares named levels from coarse to fine (e.g. City > Area >
/// Station) and the parent of every member. Queries can then be posed at any
/// level of a hierarchical dimension: rolling up aggregates over all
/// descendants, drilling down enumerates children. RollUpToLevel materializes
/// a coarser cube — the Hierarchical-DWARF behaviour of [11] realized on top
/// of the unmodified DWARF structure.

#ifndef SCDWARF_DWARF_HIERARCHY_H_
#define SCDWARF_DWARF_HIERARCHY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {

/// \brief A hierarchy over one dimension's values.
///
/// Level 0 is the coarsest (e.g. City); the last level is the dimension's
/// own value domain (e.g. Station). Every member of level l+1 has exactly
/// one parent at level l.
class Hierarchy {
 public:
  /// Creates a hierarchy with the given level names (coarse to fine); at
  /// least two levels are required.
  static Result<Hierarchy> Create(std::string name,
                                  std::vector<std::string> level_names);

  /// Declares \p parent (at \p child_level - 1) as the parent of \p child
  /// (at \p child_level). InvalidArgument if the child already has a
  /// different parent.
  Status AddEdge(size_t child_level, const std::string& child,
                 const std::string& parent);

  const std::string& name() const { return name_; }
  size_t num_levels() const { return level_names_.size(); }
  const std::vector<std::string>& level_names() const { return level_names_; }
  Result<size_t> LevelIndex(const std::string& level_name) const;

  /// Parent of \p member at \p level (result lives at level - 1); NotFound
  /// for unknown members, OutOfRange at level 0.
  Result<std::string> ParentOf(size_t level, const std::string& member) const;

  /// The ancestor of \p member (at \p level) up at \p ancestor_level.
  Result<std::string> AncestorOf(size_t level, const std::string& member,
                                 size_t ancestor_level) const;

  /// Direct children of \p member at \p level (results live at level + 1).
  std::vector<std::string> ChildrenOf(size_t level,
                                      const std::string& member) const;

  /// All leaf-level descendants of \p member at \p level.
  std::vector<std::string> LeafDescendantsOf(size_t level,
                                             const std::string& member) const;

  /// Members declared at \p level (parents of level+1 members and children
  /// of level-1 members).
  std::vector<std::string> MembersAt(size_t level) const;

  /// Checks that every value of \p dictionary has a full ancestor path —
  /// required before using the hierarchy against a cube dimension.
  Status ValidateCovers(const Dictionary& dictionary) const;

 private:
  Hierarchy() = default;

  std::string name_;
  std::vector<std::string> level_names_;
  /// edge maps, one per non-root level: member at level l -> parent at l-1.
  /// parents_[l - 1] holds the parents of level-l members.
  std::vector<std::unordered_map<std::string, std::string>> parents_;
};

/// \brief Aggregate of everything under \p member (at \p member_level of
/// \p hierarchy) on \p dim, with all other dimensions rolled up: the
/// hierarchical point query / ROLLUP primitive.
Result<Measure> HierarchicalQuery(const DwarfCube& cube, size_t dim,
                                  const Hierarchy& hierarchy,
                                  size_t member_level,
                                  const std::string& member);

/// \brief DRILL DOWN: one row per child of \p member, each with the
/// aggregate of its own subtree on \p dim.
Result<std::vector<SliceRow>> DrillDown(const DwarfCube& cube, size_t dim,
                                        const Hierarchy& hierarchy,
                                        size_t member_level,
                                        const std::string& member);

/// \brief Materializes the cube with dimension \p dim coarsened to
/// \p target_level of \p hierarchy: every leaf value is replaced by its
/// ancestor and the cube is re-aggregated. The dimension keeps its position
/// and is renamed to the level name.
Result<DwarfCube> RollUpToLevel(const DwarfCube& cube, size_t dim,
                                const Hierarchy& hierarchy,
                                size_t target_level);

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_HIERARCHY_H_
