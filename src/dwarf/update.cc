#include "dwarf/update.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dwarf/merge.h"

namespace scdwarf::dwarf {

namespace {

/// True when the cube already holds a tuple at exactly \p keys (decoded).
bool CubeContainsPath(const DwarfCube& cube,
                      const std::vector<std::string>& keys) {
  if (cube.empty()) return false;
  NodeId id = cube.root();
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    auto key = cube.dictionary(dim).Lookup(keys[dim]);
    if (!key.ok()) return false;
    const NodeView node = cube.node(id);
    const DwarfCell* cell = node.FindCell(*key);
    if (cell == nullptr) return false;
    if (!cube.IsLeafLevel(node.level)) id = cell->child;
  }
  return true;
}

}  // namespace

Result<std::vector<SliceRow>> ExtractBaseTuples(const DwarfCube& cube) {
  // A group-by over every dimension enumerates exactly the distinct leaf
  // coordinates with their aggregated measures.
  std::vector<size_t> all_dims(cube.num_dimensions());
  for (size_t dim = 0; dim < all_dims.size(); ++dim) all_dims[dim] = dim;
  return RollUp(cube, all_dims);
}

Status CubeUpdater::AddTuple(const std::vector<std::string>& keys,
                             Measure measure) {
  if (keys.size() != cube_.num_dimensions()) {
    return Status::InvalidArgument(
        "update tuple has " + std::to_string(keys.size()) +
        " keys, cube has " + std::to_string(cube_.num_dimensions()) +
        " dimensions");
  }
  pending_.emplace_back(keys, measure);
  return Status::OK();
}

std::vector<std::vector<std::string>> CubeUpdater::ChangedKeyPrefixes() const {
  std::vector<std::vector<std::string>> changed;
  changed.reserve(pending_.size());
  for (const auto& [keys, measure] : pending_) changed.push_back(keys);
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

Result<DwarfCube> CubeUpdater::Rebuild(UpdateProfile* profile) && {
  static metrics::Counter* const rebuilds_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_update_rebuilds_total", {},
          "full from-scratch cube update publishes");
  rebuilds_total->Increment();
  trace::ScopedSpan span("dwarf.rebuild");
  Stopwatch watch;
  SCD_ASSIGN_OR_RETURN(std::vector<SliceRow> base, ExtractBaseTuples(cube_));
  DwarfBuilder builder(cube_.schema());
  // Seed the builder with the current dictionaries so every existing value
  // keeps its id (new values append past them). Stable ids keep cell order —
  // and therefore slice/rollup row order — stable for untouched subtrees,
  // which the serving layer's delta-epoch cache revalidation relies on.
  {
    std::vector<Dictionary> dictionaries;
    dictionaries.reserve(cube_.num_dimensions());
    for (size_t dim = 0; dim < cube_.num_dimensions(); ++dim) {
      dictionaries.push_back(cube_.dictionary(dim));
    }
    SCD_RETURN_IF_ERROR(builder.ImportDictionaries(std::move(dictionaries)));
  }
  for (const SliceRow& row : base) {
    SCD_RETURN_IF_ERROR(builder.AddAggregatedTuple(row.keys, row.measure));
  }
  for (const auto& [keys, measure] : pending_) {
    SCD_RETURN_IF_ERROR(builder.AddTuple(keys, measure));
  }
  UpdateProfile local;
  local.base_tuples = base.size();
  local.new_tuples = pending_.size();
  local.changed_prefixes = ChangedKeyPrefixes().size();
  SCD_ASSIGN_OR_RETURN(DwarfCube updated, std::move(builder).Build());
  local.rebuild_ms = watch.ElapsedMillis();
  if (profile != nullptr) *profile = local;
  if (hook_) hook_(updated, local);
  return updated;
}

Result<DwarfCube> CubeUpdater::Apply(UpdateProfile* profile) && {
  static metrics::Counter* const applies_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_update_applies_total", {},
          "incremental delta-merge cube update publishes");
  static metrics::Counter* const reused_total =
      metrics::GlobalRegistry().GetCounter(
          "dwarf_merge_nodes_reused_total", {},
          "prior-epoch subtrees adopted unrebuilt by delta merges");
  static FixedBucketHistogram* const delta_build_us =
      metrics::GlobalRegistry().GetHistogram(
          "dwarf_delta_build_us", {},
          "delta DWARF construction time per incremental publish (us)");
  static FixedBucketHistogram* const merge_us =
      metrics::GlobalRegistry().GetHistogram(
          "dwarf_merge_us", {},
          "delta-into-base merge time per incremental publish (us)");

  applies_total->Increment();
  Stopwatch watch;
  UpdateProfile local;
  local.incremental = true;
  local.base_tuples = cube_.stats().tuple_count;
  local.new_tuples = pending_.size();
  std::vector<std::vector<std::string>> changed = ChangedKeyPrefixes();
  local.changed_prefixes = changed.size();

  // Stage the batch into a delta cube. Seeding with the live dictionaries
  // keeps one id space across both cubes (merge compares keys directly) and
  // keeps existing ids stable for the serving layer's cache revalidation.
  Stopwatch phase_watch;
  DwarfCube delta;
  {
    trace::ScopedSpan span("dwarf.delta_build");
    DwarfBuilder builder(cube_.schema());
    std::vector<Dictionary> dictionaries;
    dictionaries.reserve(cube_.num_dimensions());
    for (size_t dim = 0; dim < cube_.num_dimensions(); ++dim) {
      dictionaries.push_back(cube_.dictionary(dim));
    }
    SCD_RETURN_IF_ERROR(builder.ImportDictionaries(std::move(dictionaries)));
    for (const auto& [keys, measure] : pending_) {
      SCD_RETURN_IF_ERROR(builder.AddTuple(keys, measure));
    }
    SCD_ASSIGN_OR_RETURN(delta, std::move(builder).Build());
  }
  local.delta_build_ms = phase_watch.ElapsedMillis();
  delta_build_us->Record(local.delta_build_ms * 1000.0);

  // The merged tuple count is the base count plus the changed paths the base
  // cube does not already hold — probed directly, O(delta x depth).
  uint64_t tuple_count = cube_.stats().tuple_count;
  for (const auto& path : changed) {
    if (!CubeContainsPath(cube_, path)) ++tuple_count;
  }
  uint64_t source_tuple_count =
      cube_.stats().source_tuple_count + pending_.size();

  phase_watch.Restart();
  DwarfCube merged;
  {
    trace::ScopedSpan span("dwarf.merge");
    CubeMerger merger(cube_, delta);
    SCD_ASSIGN_OR_RETURN(
        merged, merger.Merge(tuple_count, source_tuple_count,
                             &local.nodes_reused));
  }
  local.merge_ms = phase_watch.ElapsedMillis();
  merge_us->Record(local.merge_ms * 1000.0);
  reused_total->Increment(local.nodes_reused);

  local.rebuild_ms = watch.ElapsedMillis();
  if (profile != nullptr) *profile = local;
  if (hook_) hook_(merged, local);
  return merged;
}

Result<DwarfCube> MaterializeSubCube(
    const DwarfCube& cube, const std::vector<DimPredicate>& predicates) {
  if (predicates.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("sub-cube predicate arity mismatch");
  }
  SCD_RETURN_IF_ERROR(ValidatePredicates(cube, predicates));
  SCD_ASSIGN_OR_RETURN(std::vector<SliceRow> base, ExtractBaseTuples(cube));
  DwarfBuilder builder(cube.schema());
  for (const SliceRow& row : base) {
    bool match = true;
    for (size_t dim = 0; dim < predicates.size(); ++dim) {
      // Base tuples carry decoded keys; translate through the dictionary.
      // MatchesInCube resolves by_rank ranges against the rank view.
      auto key = cube.dictionary(dim).Lookup(row.keys[dim]);
      if (!key.ok() || !predicates[dim].MatchesInCube(*key, cube.dictionary(dim))) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    SCD_RETURN_IF_ERROR(builder.AddAggregatedTuple(row.keys, row.measure));
  }
  return std::move(builder).Build();
}

Result<DwarfCube> MergeTuples(
    DwarfCube cube,
    const std::vector<std::pair<std::vector<std::string>, Measure>>&
        new_tuples) {
  CubeUpdater updater(std::move(cube));
  for (const auto& [keys, measure] : new_tuples) {
    SCD_RETURN_IF_ERROR(updater.AddTuple(keys, measure));
  }
  // The incremental path is the production default; its equality with
  // Rebuild() is covered by the update and fuzz test suites.
  return std::move(updater).Apply();
}

}  // namespace scdwarf::dwarf
