#include "dwarf/update.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace scdwarf::dwarf {

Result<std::vector<SliceRow>> ExtractBaseTuples(const DwarfCube& cube) {
  // A group-by over every dimension enumerates exactly the distinct leaf
  // coordinates with their aggregated measures.
  std::vector<size_t> all_dims(cube.num_dimensions());
  for (size_t dim = 0; dim < all_dims.size(); ++dim) all_dims[dim] = dim;
  return RollUp(cube, all_dims);
}

Status CubeUpdater::AddTuple(const std::vector<std::string>& keys,
                             Measure measure) {
  if (keys.size() != cube_.num_dimensions()) {
    return Status::InvalidArgument(
        "update tuple has " + std::to_string(keys.size()) +
        " keys, cube has " + std::to_string(cube_.num_dimensions()) +
        " dimensions");
  }
  pending_.emplace_back(keys, measure);
  return Status::OK();
}

std::vector<std::vector<std::string>> CubeUpdater::ChangedKeyPrefixes() const {
  std::vector<std::vector<std::string>> changed;
  changed.reserve(pending_.size());
  for (const auto& [keys, measure] : pending_) changed.push_back(keys);
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

Result<DwarfCube> CubeUpdater::Rebuild(UpdateProfile* profile) && {
  Stopwatch watch;
  SCD_ASSIGN_OR_RETURN(std::vector<SliceRow> base, ExtractBaseTuples(cube_));
  DwarfBuilder builder(cube_.schema());
  // Seed the builder with the current dictionaries so every existing value
  // keeps its id (new values append past them). Stable ids keep cell order —
  // and therefore slice/rollup row order — stable for untouched subtrees,
  // which the serving layer's delta-epoch cache revalidation relies on.
  {
    std::vector<Dictionary> dictionaries;
    dictionaries.reserve(cube_.num_dimensions());
    for (size_t dim = 0; dim < cube_.num_dimensions(); ++dim) {
      dictionaries.push_back(cube_.dictionary(dim));
    }
    SCD_RETURN_IF_ERROR(builder.ImportDictionaries(std::move(dictionaries)));
  }
  for (const SliceRow& row : base) {
    SCD_RETURN_IF_ERROR(builder.AddAggregatedTuple(row.keys, row.measure));
  }
  for (const auto& [keys, measure] : pending_) {
    SCD_RETURN_IF_ERROR(builder.AddTuple(keys, measure));
  }
  UpdateProfile local;
  local.base_tuples = base.size();
  local.new_tuples = pending_.size();
  local.changed_prefixes = ChangedKeyPrefixes().size();
  SCD_ASSIGN_OR_RETURN(DwarfCube updated, std::move(builder).Build());
  local.rebuild_ms = watch.ElapsedMillis();
  if (profile != nullptr) *profile = local;
  if (hook_) hook_(updated, local);
  return updated;
}

Result<DwarfCube> MaterializeSubCube(
    const DwarfCube& cube, const std::vector<DimPredicate>& predicates) {
  if (predicates.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("sub-cube predicate arity mismatch");
  }
  SCD_ASSIGN_OR_RETURN(std::vector<SliceRow> base, ExtractBaseTuples(cube));
  DwarfBuilder builder(cube.schema());
  for (const SliceRow& row : base) {
    bool match = true;
    for (size_t dim = 0; dim < predicates.size(); ++dim) {
      // Base tuples carry decoded keys; translate through the dictionary.
      auto key = cube.dictionary(dim).Lookup(row.keys[dim]);
      if (!key.ok() || !predicates[dim].Matches(*key)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    SCD_RETURN_IF_ERROR(builder.AddAggregatedTuple(row.keys, row.measure));
  }
  return std::move(builder).Build();
}

Result<DwarfCube> MergeTuples(
    DwarfCube cube,
    const std::vector<std::pair<std::vector<std::string>, Measure>>&
        new_tuples) {
  CubeUpdater updater(std::move(cube));
  for (const auto& [keys, measure] : new_tuples) {
    SCD_RETURN_IF_ERROR(updater.AddTuple(keys, measure));
  }
  return std::move(updater).Rebuild();
}

}  // namespace scdwarf::dwarf
