/// \file dictionary.h
/// \brief Per-dimension dictionary encoding between feed strings (station
/// names, weekdays, ...) and the dense DimKey ids the cube operates on.
/// The NoSQL mapping stores the decoded string in DWARF_Cell.key (Fig. 3),
/// so dictionaries are retained by the cube for bidirectional mapping.

#ifndef SCDWARF_DWARF_DICTIONARY_H_
#define SCDWARF_DWARF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

/// \brief Append-only string dictionary assigning ids in first-seen order.
class Dictionary {
 public:
  Dictionary() = default;
  explicit Dictionary(std::string name) : name_(std::move(name)) {}

  /// Returns the id for \p value, inserting it if new.
  DimKey Encode(std::string_view value) {
    auto it = index_.find(std::string(value));
    if (it != index_.end()) return it->second;
    DimKey id = static_cast<DimKey>(values_.size());
    values_.emplace_back(value);
    index_.emplace(values_.back(), id);
    return id;
  }

  /// Returns the id for \p value or NotFound without inserting.
  Result<DimKey> Lookup(std::string_view value) const {
    auto it = index_.find(std::string(value));
    if (it == index_.end()) {
      return Status::NotFound("value '" + std::string(value) +
                              "' not in dictionary '" + name_ + "'");
    }
    return it->second;
  }

  /// Returns the string for \p id or OutOfRange.
  Result<std::string> Decode(DimKey id) const {
    if (id >= values_.size()) {
      return Status::OutOfRange("dictionary '" + name_ + "' has no id " +
                                std::to_string(id));
    }
    return values_[id];
  }

  /// Unchecked decode for hot paths; id must be < size().
  const std::string& DecodeUnchecked(DimKey id) const { return values_[id]; }

  size_t size() const { return values_.size(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  std::vector<std::string> values_;
  std::unordered_map<std::string, DimKey> index_;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_DICTIONARY_H_
