/// \file dictionary.h
/// \brief Per-dimension dictionary encoding between feed strings (station
/// names, weekdays, ...) and the dense DimKey ids the cube operates on.
/// The NoSQL mapping stores the decoded string in DWARF_Cell.key (Fig. 3),
/// so dictionaries are retained by the cube for bidirectional mapping.

#ifndef SCDWARF_DWARF_DICTIONARY_H_
#define SCDWARF_DWARF_DICTIONARY_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

/// \brief Append-only string dictionary assigning ids in first-seen order.
///
/// Ordered dimensions additionally carry a *rank view*: the permutation
/// between first-seen ids and lexicographic value order (rank 0 = smallest
/// value). Because ids are append-only and the view is a pure function of the
/// value set, ranks are deterministic across epochs — a dictionary-seeded
/// rebuild or a delta merge that adds no new values reproduces the identical
/// permutation, and adding values only re-ranks deterministically.
class Dictionary {
 public:
  Dictionary() = default;
  explicit Dictionary(std::string name) : name_(std::move(name)) {}

  /// Returns the id for \p value, inserting it if new.
  DimKey Encode(std::string_view value) {
    auto it = index_.find(std::string(value));
    if (it != index_.end()) return it->second;
    DimKey id = static_cast<DimKey>(values_.size());
    values_.emplace_back(value);
    index_.emplace(values_.back(), id);
    return id;
  }

  /// Returns the id for \p value or NotFound without inserting.
  Result<DimKey> Lookup(std::string_view value) const {
    auto it = index_.find(std::string(value));
    if (it == index_.end()) {
      return Status::NotFound("value '" + std::string(value) +
                              "' not in dictionary '" + name_ + "'");
    }
    return it->second;
  }

  /// Returns the string for \p id or OutOfRange.
  Result<std::string> Decode(DimKey id) const {
    if (id >= values_.size()) {
      return Status::OutOfRange("dictionary '" + name_ + "' has no id " +
                                std::to_string(id));
    }
    return values_[id];
  }

  /// Unchecked decode for hot paths; id must be < size().
  const std::string& DecodeUnchecked(DimKey id) const { return values_[id]; }

  size_t size() const { return values_.size(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \brief (Re)builds the rank view over the current value set. Idempotent:
  /// a no-op when the view already covers every value (values are append-only,
  /// so an up-to-date view can never be stale). O(V log V) otherwise.
  void BuildRankView() {
    if (rank_of_id_.size() == values_.size()) return;
    id_of_rank_.resize(values_.size());
    for (DimKey id = 0; id < values_.size(); ++id) id_of_rank_[id] = id;
    std::sort(id_of_rank_.begin(), id_of_rank_.end(),
              [this](DimKey a, DimKey b) { return values_[a] < values_[b]; });
    rank_of_id_.resize(values_.size());
    for (DimKey rank = 0; rank < id_of_rank_.size(); ++rank) {
      rank_of_id_[id_of_rank_[rank]] = rank;
    }
  }

  /// True when the rank view covers every value.
  bool has_rank_view() const { return rank_of_id_.size() == values_.size(); }

  /// Value-order rank of \p id; requires has_rank_view() and id < size().
  DimKey RankOf(DimKey id) const { return rank_of_id_[id]; }

  /// Id at value-order \p rank; requires has_rank_view() and rank < size().
  DimKey IdAtRank(DimKey rank) const { return id_of_rank_[rank]; }

  /// First rank whose value is >= \p value (== size() when all are smaller).
  DimKey LowerBoundRank(std::string_view value) const {
    auto it = std::lower_bound(
        id_of_rank_.begin(), id_of_rank_.end(), value,
        [this](DimKey id, std::string_view v) { return values_[id] < v; });
    return static_cast<DimKey>(it - id_of_rank_.begin());
  }

  /// First rank whose value is > \p value (== size() when none is larger).
  DimKey UpperBoundRank(std::string_view value) const {
    auto it = std::upper_bound(
        id_of_rank_.begin(), id_of_rank_.end(), value,
        [this](std::string_view v, DimKey id) { return v < values_[id]; });
    return static_cast<DimKey>(it - id_of_rank_.begin());
  }

 private:
  std::string name_;
  std::vector<std::string> values_;
  std::unordered_map<std::string, DimKey> index_;
  /// Rank view (ordered dimensions only): id -> lexicographic rank and back.
  std::vector<DimKey> rank_of_id_;
  std::vector<DimKey> id_of_rank_;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_DICTIONARY_H_
