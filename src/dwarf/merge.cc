#include "dwarf/merge.h"

#include <utility>

#include "common/logging.h"

namespace scdwarf::dwarf {

Result<DwarfCube> CubeMerger::Merge(uint64_t tuple_count,
                                    uint64_t source_tuple_count,
                                    uint64_t* nodes_reused) {
  if (base_.num_dimensions() != delta_.num_dimensions() ||
      base_.agg() != delta_.agg()) {
    return Status::InvalidArgument("merge schema mismatch");
  }
  for (size_t dim = 0; dim < base_.num_dimensions(); ++dim) {
    if (delta_.dictionary(dim).size() < base_.dictionary(dim).size()) {
      return Status::InvalidArgument(
          "delta dictionaries must extend the base cube's (seed the delta "
          "builder with ImportDictionaries)");
    }
  }
  if (nodes_reused != nullptr) *nodes_reused = 0;

  // Degenerate epochs short-circuit to a cheap cube copy; only the logical
  // tuple stats need restating.
  if (delta_.empty() || base_.empty()) {
    DwarfCube merged = delta_.empty() ? base_ : delta_;
    merged.stats_.tuple_count = tuple_count;
    merged.stats_.source_tuple_count = source_tuple_count;
    return merged;
  }

  NodeId root = MergeNodes(base_.root_, delta_.root_);

  DwarfCube merged;
  merged.schema_ = delta_.schema_;
  merged.dictionaries_ = delta_.dictionaries_;  // superset of the base's
  merged.root_ = root;
  merged.ShareArenaAndAppend(base_, std::move(tail_));
  merged.stats_.tuple_count = tuple_count;
  merged.stats_.source_tuple_count = source_tuple_count;
  merged.stats_ = merged.ComputeStats();
  merged.FinalizeOrderedViews();
  if (nodes_reused != nullptr) *nodes_reused = reused_;
  return merged;
}

NodeId CubeMerger::Commit(DwarfNode node) {
  NodeId id = static_cast<NodeId>(base_.num_nodes() + tail_.size());
  tail_.push_back(std::move(node));
  return id;
}

NodeId CubeMerger::ImportSubtree(NodeId delta_id) {
  auto it = import_memo_.find(delta_id);
  if (it != import_memo_.end()) return it->second;
  // Copy by value: Commit below may reallocate tail_ but never touches the
  // delta arena, so holding a reference into delta_ across recursion is fine;
  // the copy is for the remap.
  DwarfNode copy = MaterializeNode(delta_.node(delta_id));
  if (!delta_.IsLeafLevel(copy.level)) {
    for (DwarfCell& cell : copy.cells) cell.child = ImportSubtree(cell.child);
    // Memoization keeps a coalesced ALL aliasing its cell's subtree: the
    // lookup for all_child hits the entry the cell recursion just wrote.
    copy.all_child = ImportSubtree(copy.all_child);
  }
  NodeId id = Commit(std::move(copy));
  import_memo_.emplace(delta_id, id);
  return id;
}

NodeId CubeMerger::MergeNodes(NodeId base_id, NodeId delta_id) {
  uint64_t key = (static_cast<uint64_t>(base_id) << 32) | delta_id;
  auto it = merge_memo_.find(key);
  if (it != merge_memo_.end()) return it->second;

  const NodeView b = base_.node(base_id);
  const NodeView d = delta_.node(delta_id);
  SCD_CHECK(b.level == d.level);
  bool leaf = base_.IsLeafLevel(b.level);
  AggFn agg = base_.agg();

  // Two-pointer union over the sorted cells — one id space, so keys compare
  // directly.
  DwarfNode merged;
  merged.level = b.level;
  merged.cells.reserve(b.cells.size() + d.cells.size());
  size_t bi = 0, di = 0;
  while (bi < b.cells.size() || di < d.cells.size()) {
    bool take_base = di >= d.cells.size() ||
                     (bi < b.cells.size() && b.cells[bi].key < d.cells[di].key);
    bool take_delta = bi >= b.cells.size() ||
                      (di < d.cells.size() && d.cells[di].key < b.cells[bi].key);
    DwarfCell cell;
    if (take_base) {
      // Untouched prefix: adopt the base subtree id as-is (shared chunk).
      cell = b.cells[bi++];
      if (!leaf) ++reused_;
    } else if (take_delta) {
      cell = d.cells[di];
      if (!leaf) cell.child = ImportSubtree(d.cells[di].child);
      ++di;
    } else {
      cell.key = b.cells[bi].key;
      if (leaf) {
        cell.measure =
            AggCombine(agg, b.cells[bi].measure, d.cells[di].measure);
      } else {
        cell.child = MergeNodes(b.cells[bi].child, d.cells[di].child);
      }
      ++bi;
      ++di;
    }
    merged.cells.push_back(cell);
  }

  if (leaf) {
    // Every source tuple contributes exactly once on each side, so the union
    // ALL is the combine of the two ALLs for any distributive aggregate.
    merged.all_measure = AggCombine(agg, b.all_measure, d.all_measure);
  } else {
    // Same argument structurally: the ALL sub-dwarf of the union is the
    // merge of the two ALL sub-dwarfs. When this node kept a single cell the
    // memo makes the ALL pointer alias the cell's subtree (both sides were
    // coalesced to their cell children, so the pair is the same pair).
    merged.all_child = MergeNodes(b.all_child, d.all_child);
    merged.all_coalesced =
        merged.cells.size() == 1 && merged.all_child == merged.cells[0].child;
  }

  NodeId id = Commit(std::move(merged));
  merge_memo_.emplace(key, id);
  return id;
}

}  // namespace scdwarf::dwarf
