/// \file update.h
/// \brief Cube updates — the paper's stated next step ("Our current focus is
/// on cube updates", §7). New feed batches are merged into an existing cube
/// by re-aggregating its base tuples together with the new ones: correct for
/// every distributive aggregate the library supports, and bounded by the
/// size of the *compressed* cube rather than the original stream.

#ifndef SCDWARF_DWARF_UPDATE_H_
#define SCDWARF_DWARF_UPDATE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dwarf/builder.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {

/// \brief The cube's base relation: one row per distinct dimension
/// combination with its aggregated measure (equivalent to a group-by over
/// every dimension). COUNT cubes return counts as measures.
Result<std::vector<SliceRow>> ExtractBaseTuples(const DwarfCube& cube);

/// \brief Volume and wall-clock profile of one CubeUpdater publish —
/// either a full Rebuild() or an incremental Apply().
struct UpdateProfile {
  uint64_t base_tuples = 0;  ///< distinct tuples in the pre-update cube
  uint64_t new_tuples = 0;   ///< tuples staged through AddTuple
  uint64_t changed_prefixes = 0;  ///< |ChangedKeyPrefixes()| of the batch
  double rebuild_ms = 0;     ///< end-to-end publish wall time (either path)
  bool incremental = false;  ///< true when Apply() took the delta-merge path
  double delta_build_ms = 0;  ///< Apply(): building the delta DWARF
  double merge_ms = 0;        ///< Apply(): merging delta into the base cube
  uint64_t nodes_reused = 0;  ///< Apply(): base subtrees adopted unrebuilt
};

/// \brief Observer invoked with the rebuilt cube and its profile immediately
/// before a successful Rebuild() returns. This is the hook the serving layer
/// (src/server) uses to account for an epoch bump: the cube it sees is
/// exactly the one the caller will publish next.
using PostRebuildHook =
    std::function<void(const DwarfCube& updated, const UpdateProfile& profile)>;

/// \brief Applies batches of new tuples to an existing cube.
///
/// \code
///   CubeUpdater updater(std::move(cube));
///   updater.AddTuple({"Ireland", "Dublin", "Fenian St"}, 4);
///   SCD_ASSIGN_OR_RETURN(cube, std::move(updater).Rebuild());
/// \endcode
///
/// Rebuild() re-runs DWARF construction over the cube's base tuples plus the
/// added ones. Because already-aggregated measures re-enter construction,
/// the updater feeds them through a raw path that bypasses the COUNT
/// leaf-value mapping (a re-counted count would collapse to 1).
class CubeUpdater {
 public:
  /// Takes over \p cube. Fails only later, at Rebuild(), never here.
  explicit CubeUpdater(DwarfCube cube) : cube_(std::move(cube)) {}

  /// Stages one new source tuple (measure semantics identical to
  /// DwarfBuilder::AddTuple, including COUNT counting tuples).
  Status AddTuple(const std::vector<std::string>& keys, Measure measure);

  /// Number of staged tuples.
  size_t num_pending() const { return pending_.size(); }

  /// \brief The changed dimension-key prefixes of the staged batch: the
  /// deduped, sorted decoded key paths of every pending tuple. Publishing
  /// this set alongside an epoch lets the serving layer revalidate cached
  /// results whose queries provably miss every changed path instead of
  /// invalidating its cache wholesale.
  std::vector<std::vector<std::string>> ChangedKeyPrefixes() const;

  /// Installs \p hook, replacing any previous one. See PostRebuildHook.
  void set_post_rebuild_hook(PostRebuildHook hook) { hook_ = std::move(hook); }

  /// Builds the updated cube by re-running DWARF construction over the base
  /// tuples plus the staged ones — O(history) per publish, but the reference
  /// path every other strategy must match. Consumes the updater. When
  /// \p profile is non-null it receives the rebuild profile on success.
  Result<DwarfCube> Rebuild(UpdateProfile* profile = nullptr) &&;

  /// \brief Incremental publish: builds a small *delta* DWARF from just the
  /// staged tuples (dictionaries seeded from the live cube, so ids stay
  /// stable) and merges it into the live structure, re-aggregating only the
  /// subtrees whose prefixes actually changed and sharing every untouched
  /// subtree with the prior epoch (see dwarf/merge.h). Cost is
  /// O(delta x depth) instead of O(history); the result is equal to
  /// Rebuild() — same query answers, and byte-identical stored segments.
  /// Consumes the updater.
  Result<DwarfCube> Apply(UpdateProfile* profile = nullptr) &&;

 private:
  DwarfCube cube_;
  std::vector<std::pair<std::vector<std::string>, Measure>> pending_;
  PostRebuildHook hook_;
};

/// \brief Materializes the sub-cube of tuples matching \p predicates (same
/// schema, re-aggregated). This is the "DWARF cube constructed from querying
/// a DWARF schema" that Table 1-A's is_cube flag marks when stored.
Result<DwarfCube> MaterializeSubCube(const DwarfCube& cube,
                                     const std::vector<DimPredicate>& predicates);

/// \brief One-shot convenience: merge \p new_tuples into \p cube.
Result<DwarfCube> MergeTuples(
    DwarfCube cube,
    const std::vector<std::pair<std::vector<std::string>, Measure>>&
        new_tuples);

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_UPDATE_H_
