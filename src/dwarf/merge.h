/// \file merge.h
/// \brief Node-level merge of a small *delta* DWARF into a live cube — the
/// incremental-publish primitive behind CubeUpdater::Apply().
///
/// The delta cube must be built with dictionaries seeded from the base cube
/// (DwarfBuilder::ImportDictionaries), so both cubes index dimension values
/// in one id space and cell orders line up. The merge walks the two cubes in
/// lockstep: key prefixes present only in the base adopt the base subtree id
/// unchanged (structural sharing across epochs — this is where the
/// O(delta x depth) bound comes from), prefixes only in the delta are copied
/// in, and common prefixes recurse, re-aggregating measures with the cube's
/// aggregate. The merged arena shares every chunk of the base cube and
/// appends one new chunk holding only the rebuilt nodes
/// (DwarfCube::ShareArenaAndAppend).
///
/// Aggregate sub-dwarfs merge pairwise too: the ALL sub-dwarf of a union is
/// the merge of the two ALL sub-dwarfs, because every source tuple
/// contributes exactly once on each side and the aggregates are commutative
/// and associative. Merge results are memoized per (base id, delta id) pair,
/// which reproduces the from-scratch builder's suffix-coalescing sharing:
/// wherever the from-scratch build would share one aggregate node between
/// two parents, both parents reach the same (base, delta) pair here.

#ifndef SCDWARF_DWARF_MERGE_H_
#define SCDWARF_DWARF_MERGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::dwarf {

/// \brief One-shot merger of a delta cube into a base cube. See file comment.
class CubeMerger {
 public:
  /// Both cubes must share the schema, and \p delta's dictionaries must be
  /// extensions of \p base's (guaranteed when the delta builder imported the
  /// base dictionaries before adding tuples).
  CubeMerger(const DwarfCube& base, const DwarfCube& delta)
      : base_(base), delta_(delta) {}

  /// Builds the merged cube. \p tuple_count / \p source_tuple_count are the
  /// merged cube's logical tuple stats (the merger cannot derive them
  /// structurally — dead base slots hide how many distinct paths are new).
  /// When \p nodes_reused is non-null it receives the number of base
  /// subtrees adopted wholesale instead of rebuilt.
  Result<DwarfCube> Merge(uint64_t tuple_count, uint64_t source_tuple_count,
                          uint64_t* nodes_reused);

 private:
  NodeId MergeNodes(NodeId base_id, NodeId delta_id);
  NodeId ImportSubtree(NodeId delta_id);
  NodeId Commit(DwarfNode node);

  const DwarfCube& base_;
  const DwarfCube& delta_;
  std::vector<DwarfNode> tail_;  ///< new nodes; ids offset by base extent
  uint64_t reused_ = 0;
  /// Memo for MergeNodes, keyed (base_id << 32) | delta_id.
  std::unordered_map<uint64_t, NodeId> merge_memo_;
  /// Memo for ImportSubtree, keyed on the delta id (preserves delta-internal
  /// sharing in the copy).
  std::unordered_map<NodeId, NodeId> import_memo_;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_MERGE_H_
