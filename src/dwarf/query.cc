#include "dwarf/query.h"

#include <algorithm>

namespace scdwarf::dwarf {

bool DimPredicate::Matches(DimKey key) const {
  switch (kind) {
    case Kind::kAll:
      return true;
    case Kind::kPoint:
      return key == point;
    case Kind::kRange:
      return key >= lo && key <= hi;
    case Kind::kSet:
      return std::find(keys.begin(), keys.end(), key) != keys.end();
  }
  return false;
}

Result<Measure> PointQuery(const DwarfCube& cube,
                           const std::vector<std::optional<DimKey>>& keys) {
  if (keys.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("point query arity mismatch: got " +
                                   std::to_string(keys.size()) + ", cube has " +
                                   std::to_string(cube.num_dimensions()));
  }
  if (cube.empty()) return Status::NotFound("cube is empty");

  NodeId current = cube.root();
  for (size_t level = 0; level < keys.size(); ++level) {
    const DwarfNode& node = cube.node(current);
    bool leaf = level + 1 == keys.size();
    if (keys[level].has_value()) {
      const DwarfCell* cell = node.FindCell(*keys[level]);
      if (cell == nullptr) {
        return Status::NotFound("no data at dimension " + std::to_string(level) +
                                " key id " + std::to_string(*keys[level]));
      }
      if (leaf) return cell->measure;
      current = cell->child;
    } else {
      if (leaf) return node.all_measure;
      current = node.all_child;
    }
  }
  return Status::Internal("unreachable: point query fell through");
}

Result<Measure> PointQueryByName(
    const DwarfCube& cube,
    const std::vector<std::optional<std::string>>& keys) {
  if (keys.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("point query arity mismatch");
  }
  std::vector<std::optional<DimKey>> encoded(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    if (keys[dim].has_value()) {
      SCD_ASSIGN_OR_RETURN(DimKey id, cube.dictionary(dim).Lookup(*keys[dim]));
      encoded[dim] = id;
    }
  }
  return PointQuery(cube, encoded);
}

namespace {

/// Recursive evaluator for AggregateQuery.
struct AggregateEvaluator {
  const DwarfCube& cube;
  const std::vector<DimPredicate>& predicates;
  AggFn agg;
  Measure accumulated;
  bool found = false;

  void Visit(NodeId id, size_t level) {
    const DwarfNode& node = cube.node(id);
    const DimPredicate& pred = predicates[level];
    bool leaf = level + 1 == predicates.size();
    if (pred.kind == DimPredicate::Kind::kAll) {
      // Use the precomputed ALL aggregate instead of fanning out.
      if (leaf) {
        if (!node.cells.empty()) {
          accumulated = AggCombine(agg, accumulated, node.all_measure);
          found = true;
        }
      } else {
        Visit(node.all_child, level + 1);
      }
      return;
    }
    if (pred.kind == DimPredicate::Kind::kPoint) {
      const DwarfCell* cell = node.FindCell(pred.point);
      if (cell == nullptr) return;
      if (leaf) {
        accumulated = AggCombine(agg, accumulated, cell->measure);
        found = true;
      } else {
        Visit(cell->child, level + 1);
      }
      return;
    }
    for (const DwarfCell& cell : node.cells) {
      if (!pred.Matches(cell.key)) continue;
      if (leaf) {
        accumulated = AggCombine(agg, accumulated, cell.measure);
        found = true;
      } else {
        Visit(cell.child, level + 1);
      }
    }
  }
};

}  // namespace

Result<Measure> AggregateQuery(const DwarfCube& cube,
                               const std::vector<DimPredicate>& predicates) {
  if (predicates.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("aggregate query arity mismatch");
  }
  if (cube.empty()) return Status::NotFound("cube is empty");
  AggregateEvaluator evaluator{cube, predicates, cube.agg(),
                               AggIdentity(cube.agg())};
  evaluator.Visit(cube.root(), 0);
  if (!evaluator.found) return Status::NotFound("no tuples match the query");
  return evaluator.accumulated;
}

namespace {

/// Shared enumerator for Slice and RollUp: dims in `enumerate` are grouped
/// (cells fanned out and labels recorded); dims with a pinned key filter to
/// that key; all remaining dims roll up through the ALL pointer.
struct Enumerator {
  const DwarfCube& cube;
  const std::vector<bool>& enumerate;
  const std::vector<std::optional<DimKey>>& pinned;
  std::vector<SliceRow>* rows;
  std::vector<std::string> labels;

  void Visit(NodeId id, size_t level) {
    const DwarfNode& node = cube.node(id);
    bool leaf = level + 1 == cube.num_dimensions();
    if (enumerate[level]) {
      for (const DwarfCell& cell : node.cells) {
        labels.push_back(cube.dictionary(level).DecodeUnchecked(cell.key));
        Emit(node, cell, leaf, level);
        labels.pop_back();
      }
    } else if (pinned[level].has_value()) {
      const DwarfCell* cell = node.FindCell(*pinned[level]);
      if (cell != nullptr) Emit(node, *cell, leaf, level);
    } else {
      if (leaf) {
        rows->push_back({labels, node.all_measure});
      } else {
        Visit(node.all_child, level + 1);
      }
    }
  }

  void Emit(const DwarfNode&, const DwarfCell& cell, bool leaf, size_t level) {
    if (leaf) {
      rows->push_back({labels, cell.measure});
    } else {
      Visit(cell.child, level + 1);
    }
  }
};

}  // namespace

Result<std::vector<SliceRow>> Slice(const DwarfCube& cube, size_t fixed_dim,
                                    DimKey key) {
  if (fixed_dim >= cube.num_dimensions()) {
    return Status::OutOfRange("slice dimension out of range");
  }
  if (cube.empty()) return std::vector<SliceRow>{};
  std::vector<bool> enumerate(cube.num_dimensions(), true);
  enumerate[fixed_dim] = false;
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  pinned[fixed_dim] = key;
  std::vector<SliceRow> rows;
  Enumerator enumerator{cube, enumerate, pinned, &rows, {}};
  enumerator.Visit(cube.root(), 0);
  return rows;
}

Result<std::vector<SliceRow>> RollUp(const DwarfCube& cube,
                                     const std::vector<size_t>& group_dims) {
  std::vector<bool> enumerate(cube.num_dimensions(), false);
  for (size_t dim : group_dims) {
    if (dim >= cube.num_dimensions()) {
      return Status::OutOfRange("group dimension out of range");
    }
    enumerate[dim] = true;
  }
  if (cube.empty()) return std::vector<SliceRow>{};
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  std::vector<SliceRow> rows;
  Enumerator enumerator{cube, enumerate, pinned, &rows, {}};
  enumerator.Visit(cube.root(), 0);
  return rows;
}

}  // namespace scdwarf::dwarf
