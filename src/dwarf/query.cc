#include "dwarf/query.h"

#include <algorithm>

#include "common/metrics.h"

namespace scdwarf::dwarf {

namespace {

/// Subtrees skipped via the ordered-dim min/max-rank sidecar. Shared with
/// cursor.cc by name: the registry hands back one counter per series.
metrics::Counter* RangePrunedCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "dwarf_range_subtrees_pruned_total", {},
      "subtrees skipped because their min/max-rank span misses a range "
      "predicate's window");
  return counter;
}

}  // namespace

bool DimPredicate::Matches(DimKey key) const {
  switch (kind) {
    case Kind::kAll:
      return true;
    case Kind::kPoint:
      return key == point;
    case Kind::kRange:
      return key >= lo && key <= hi;
    case Kind::kSet:
      return std::find(keys.begin(), keys.end(), key) != keys.end();
  }
  return false;
}

bool DimPredicate::MatchesInCube(DimKey key, const Dictionary& dict) const {
  if (kind == Kind::kRange && by_rank) {
    DimKey rank = dict.RankOf(key);
    return rank >= lo && rank <= hi;
  }
  return Matches(key);
}

Status ValidatePredicates(const DwarfCube& cube,
                          const std::vector<DimPredicate>& predicates) {
  if (predicates.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("aggregate query arity mismatch");
  }
  for (size_t dim = 0; dim < predicates.size(); ++dim) {
    const DimPredicate& pred = predicates[dim];
    if (pred.kind != DimPredicate::Kind::kRange) continue;
    if (pred.lo > pred.hi) {
      return Status::InvalidArgument("range predicate on dimension " +
                                     std::to_string(dim) + " has lo > hi");
    }
    if (pred.by_rank && (!cube.schema().dimensions()[dim].ordered ||
                         !cube.dictionary(dim).has_rank_view())) {
      return Status::InvalidArgument(
          "rank range on dimension '" +
          cube.schema().dimensions()[dim].name +
          "', which is not marked ordered in the cube schema");
    }
  }
  return Status::OK();
}

Result<Measure> PointQuery(const DwarfCube& cube,
                           const std::vector<std::optional<DimKey>>& keys) {
  if (keys.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("point query arity mismatch: got " +
                                   std::to_string(keys.size()) + ", cube has " +
                                   std::to_string(cube.num_dimensions()));
  }
  if (cube.empty()) return Status::NotFound("cube is empty");

  NodeId current = cube.root();
  for (size_t level = 0; level < keys.size(); ++level) {
    const NodeView node = cube.node(current);
    bool leaf = level + 1 == keys.size();
    if (keys[level].has_value()) {
      const DwarfCell* cell = node.FindCell(*keys[level]);
      if (cell == nullptr) {
        return Status::NotFound("no data at dimension " + std::to_string(level) +
                                " key id " + std::to_string(*keys[level]));
      }
      if (leaf) return cell->measure;
      current = cell->child;
    } else {
      if (leaf) return node.all_measure;
      current = node.all_child;
    }
  }
  return Status::Internal("unreachable: point query fell through");
}

Result<Measure> PointQueryByName(
    const DwarfCube& cube,
    const std::vector<std::optional<std::string>>& keys) {
  if (keys.size() != cube.num_dimensions()) {
    return Status::InvalidArgument("point query arity mismatch");
  }
  std::vector<std::optional<DimKey>> encoded(keys.size());
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    if (keys[dim].has_value()) {
      SCD_ASSIGN_OR_RETURN(DimKey id, cube.dictionary(dim).Lookup(*keys[dim]));
      encoded[dim] = id;
    }
  }
  return PointQuery(cube, encoded);
}

namespace {

/// Recursive evaluator for AggregateQuery.
struct AggregateEvaluator {
  const DwarfCube& cube;
  const std::vector<DimPredicate>& predicates;
  AggFn agg;
  Measure accumulated;
  bool found = false;
  /// Dims with a pending rank-range predicate, for subtree span pruning
  /// (empty when the query has no rank ranges — zero per-node overhead).
  std::vector<size_t> rank_dims;
  const RangeIndex* ridx = nullptr;
  uint64_t pruned = 0;

  void Visit(NodeId id, size_t level) {
    if (ridx != nullptr) {
      for (size_t dim : rank_dims) {
        if (dim < level) continue;
        const DimPredicate& rp = predicates[dim];
        if (ridx->span(id, dim).Disjoint(rp.lo, rp.hi)) {
          ++pruned;
          return;
        }
      }
    }
    const NodeView node = cube.node(id);
    const DimPredicate& pred = predicates[level];
    bool leaf = level + 1 == predicates.size();
    if (pred.kind == DimPredicate::Kind::kAll) {
      // Use the precomputed ALL aggregate instead of fanning out.
      if (leaf) {
        if (!node.cells.empty()) {
          accumulated = AggCombine(agg, accumulated, node.all_measure);
          found = true;
        }
      } else {
        Visit(node.all_child, level + 1);
      }
      return;
    }
    if (pred.kind == DimPredicate::Kind::kPoint) {
      const DwarfCell* cell = node.FindCell(pred.point);
      if (cell == nullptr) return;
      if (leaf) {
        accumulated = AggCombine(agg, accumulated, cell->measure);
        found = true;
      } else {
        Visit(cell->child, level + 1);
      }
      return;
    }
    if (pred.kind == DimPredicate::Kind::kRange && !pred.by_rank) {
      // Cells are sorted by key, so an id range is a contiguous window.
      auto it = std::lower_bound(
          node.cells.begin(), node.cells.end(), pred.lo,
          [](const DwarfCell& cell, DimKey k) { return cell.key < k; });
      for (; it != node.cells.end() && it->key <= pred.hi; ++it) {
        Take(*it, leaf, level);
      }
      return;
    }
    const Dictionary& dict = cube.dictionary(level);
    for (const DwarfCell& cell : node.cells) {
      if (!pred.MatchesInCube(cell.key, dict)) continue;
      Take(cell, leaf, level);
    }
  }

  void Take(const DwarfCell& cell, bool leaf, size_t level) {
    if (leaf) {
      accumulated = AggCombine(agg, accumulated, cell.measure);
      found = true;
    } else {
      Visit(cell.child, level + 1);
    }
  }
};

}  // namespace

Result<Measure> AggregateQuery(const DwarfCube& cube,
                               const std::vector<DimPredicate>& predicates) {
  SCD_RETURN_IF_ERROR(ValidatePredicates(cube, predicates));
  if (cube.empty()) return Status::NotFound("cube is empty");
  AggregateEvaluator evaluator{cube,  predicates, cube.agg(),
                               AggIdentity(cube.agg()),
                               false, {},         nullptr,
                               0};
  for (size_t dim = 0; dim < predicates.size(); ++dim) {
    if (predicates[dim].kind == DimPredicate::Kind::kRange &&
        predicates[dim].by_rank) {
      evaluator.rank_dims.push_back(dim);
    }
  }
  if (!evaluator.rank_dims.empty()) evaluator.ridx = cube.range_index();
  evaluator.Visit(cube.root(), 0);
  if (evaluator.pruned > 0) RangePrunedCounter()->Increment(evaluator.pruned);
  if (!evaluator.found) return Status::NotFound("no tuples match the query");
  return evaluator.accumulated;
}

Status ValidateRankFilters(const DwarfCube& cube,
                           const std::vector<bool>& enumerate,
                           const RankFilters* filters) {
  if (filters == nullptr) return Status::OK();
  if (filters->size() != cube.num_dimensions()) {
    return Status::InvalidArgument("rank filter arity mismatch");
  }
  for (size_t dim = 0; dim < filters->size(); ++dim) {
    if (!(*filters)[dim].has_value()) continue;
    const std::string& name = cube.schema().dimensions()[dim].name;
    if (!enumerate[dim]) {
      return Status::InvalidArgument(
          "rank filter on dimension '" + name +
          "', which is not a grouped dimension of this roll-up");
    }
    if (!cube.schema().dimensions()[dim].ordered ||
        !cube.dictionary(dim).has_rank_view()) {
      return Status::InvalidArgument(
          "rank filter on dimension '" + name +
          "', which is not marked ordered in the cube schema");
    }
  }
  return Status::OK();
}

Result<std::vector<size_t>> RollUpKeyOrder(
    size_t num_dimensions, const std::vector<size_t>& group_dims) {
  std::vector<size_t> sorted = group_dims;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= num_dimensions) {
      return Status::OutOfRange("group dimension out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate group dimension " +
                                     std::to_string(sorted[i]));
    }
  }
  // The enumerator emits one key per grouped dim in ascending dimension
  // order; position j of the requested order reads the key at the dim's
  // ascending position.
  std::vector<size_t> order(group_dims.size());
  for (size_t j = 0; j < group_dims.size(); ++j) {
    order[j] = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), group_dims[j]) -
        sorted.begin());
  }
  return order;
}

namespace {

/// Shared enumerator for Slice and RollUp: dims in `enumerate` are grouped
/// (cells fanned out and labels recorded); dims with a pinned key filter to
/// that key; all remaining dims roll up through the ALL pointer. Grouped
/// dims may carry a rank window; subtrees whose span misses a pending
/// window are pruned through the cube's range index.
struct Enumerator {
  const DwarfCube& cube;
  const std::vector<bool>& enumerate;
  const std::vector<std::optional<DimKey>>& pinned;
  std::vector<SliceRow>* rows;
  const RankFilters* filters = nullptr;
  const RangeIndex* ridx = nullptr;
  uint64_t pruned = 0;
  std::vector<std::string> labels;

  bool Prunable(NodeId id, size_t level) {
    if (filters == nullptr) return false;
    for (size_t dim = level; dim < filters->size(); ++dim) {
      if (!(*filters)[dim].has_value()) continue;
      const RankWindow& window = *(*filters)[dim];
      if (window.lo > window.hi) return true;  // empty window: no rows
      if (ridx != nullptr && ridx->covers(dim) &&
          ridx->span(id, dim).Disjoint(window.lo, window.hi)) {
        ++pruned;
        return true;
      }
    }
    return false;
  }

  void Visit(NodeId id, size_t level) {
    if (Prunable(id, level)) return;
    const NodeView node = cube.node(id);
    bool leaf = level + 1 == cube.num_dimensions();
    if (enumerate[level]) {
      const Dictionary& dict = cube.dictionary(level);
      const std::optional<RankWindow>& window =
          filters != nullptr ? (*filters)[level] : std::optional<RankWindow>{};
      for (const DwarfCell& cell : node.cells) {
        if (window.has_value()) {
          DimKey rank = dict.RankOf(cell.key);
          if (rank < window->lo || rank > window->hi) continue;
        }
        labels.push_back(dict.DecodeUnchecked(cell.key));
        Emit(node, cell, leaf, level);
        labels.pop_back();
      }
    } else if (pinned[level].has_value()) {
      const DwarfCell* cell = node.FindCell(*pinned[level]);
      if (cell != nullptr) Emit(node, *cell, leaf, level);
    } else {
      if (leaf) {
        rows->push_back({labels, node.all_measure});
      } else {
        Visit(node.all_child, level + 1);
      }
    }
  }

  void Emit(const NodeView&, const DwarfCell& cell, bool leaf, size_t level) {
    if (leaf) {
      rows->push_back({labels, cell.measure});
    } else {
      Visit(cell.child, level + 1);
    }
  }
};

}  // namespace

Result<std::vector<SliceRow>> Slice(const DwarfCube& cube, size_t fixed_dim,
                                    DimKey key) {
  if (fixed_dim >= cube.num_dimensions()) {
    return Status::OutOfRange("slice dimension out of range");
  }
  if (cube.empty()) return std::vector<SliceRow>{};
  std::vector<bool> enumerate(cube.num_dimensions(), true);
  enumerate[fixed_dim] = false;
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  pinned[fixed_dim] = key;
  std::vector<SliceRow> rows;
  Enumerator enumerator{cube, enumerate, pinned, &rows, nullptr, nullptr, 0, {}};
  enumerator.Visit(cube.root(), 0);
  return rows;
}

Result<std::vector<SliceRow>> RollUp(const DwarfCube& cube,
                                     const std::vector<size_t>& group_dims,
                                     const RankFilters* filters) {
  SCD_ASSIGN_OR_RETURN(std::vector<size_t> order,
                       RollUpKeyOrder(cube.num_dimensions(), group_dims));
  std::vector<bool> enumerate(cube.num_dimensions(), false);
  for (size_t dim : group_dims) enumerate[dim] = true;
  SCD_RETURN_IF_ERROR(ValidateRankFilters(cube, enumerate, filters));
  if (cube.empty()) return std::vector<SliceRow>{};
  std::vector<std::optional<DimKey>> pinned(cube.num_dimensions());
  std::vector<SliceRow> rows;
  Enumerator enumerator{cube,    enumerate,          pinned, &rows,
                        filters, cube.range_index(), 0,      {}};
  enumerator.Visit(cube.root(), 0);
  if (enumerator.pruned > 0) RangePrunedCounter()->Increment(enumerator.pruned);
  // Row keys come out of the enumerator in ascending dimension order;
  // reorder to the caller's requested group_dims order.
  bool identity = true;
  for (size_t j = 0; j < order.size(); ++j) identity = identity && order[j] == j;
  if (!identity) {
    std::vector<std::string> reordered(order.size());
    for (SliceRow& row : rows) {
      for (size_t j = 0; j < order.size(); ++j) {
        reordered[j] = std::move(row.keys[order[j]]);
      }
      row.keys.swap(reordered);
    }
  }
  return rows;
}

}  // namespace scdwarf::dwarf
