/// \file dwarf_cube.h
/// \brief The in-memory DWARF cube: an arena of nodes, each holding sorted
/// cells, plus per-node ALL aggregates with suffix coalescing (shared
/// subtrees). See Sismanis et al., SIGMOD 2002, and Fig. 2 of the paper.
///
/// Layout notes: nodes live in an arena indexed by NodeId so that traversal,
/// the visited lookup table used by the NoSQL mapper, and serialization are
/// all O(1) per node with no pointer chasing through the heap. A cell is 16
/// bytes; a leaf cell stores its measure in place of the child id.
///
/// The arena is a short list of immutable shared *chunks*: a cube built from
/// scratch owns a single chunk covering ids [0, n), and an incrementally
/// merged cube (dwarf::CubeMerger) shares every chunk of the prior epoch by
/// shared_ptr and appends one new chunk holding only the merged nodes. Ids
/// never move, so cross-epoch subtree sharing is free and copying a DwarfCube
/// costs O(chunks), not O(nodes). Ids left behind by a merge (interior nodes
/// the new epoch replaced) stay allocated but unreachable — every consumer
/// walks from the root (TraverseCube), so dead slots are never observed.

#ifndef SCDWARF_DWARF_DWARF_CUBE_H_
#define SCDWARF_DWARF_DWARF_CUBE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/cube_schema.h"
#include "dwarf/dictionary.h"
#include "dwarf/range_index.h"
#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

/// Index of a node in the cube's arena.
using NodeId = uint32_t;
constexpr NodeId kNullNode = static_cast<NodeId>(-1);

/// \brief One cell of a DWARF node: a dimension key plus either a pointer to
/// the node at the next level (interior) or the aggregated measure (leaf).
struct DwarfCell {
  DimKey key = 0;
  NodeId child = kNullNode;  ///< valid for interior cells only
  Measure measure = 0;       ///< valid for leaf cells only
};

/// \brief One DWARF node: sorted cells plus the ALL cell.
///
/// The ALL cell holds the aggregate over every cell of the node. For interior
/// nodes it points at the aggregate sub-dwarf (`all_child`); when the node has
/// a single cell that pointer is *suffix-coalesced*: it aliases the cell's own
/// child and `all_coalesced` is set. For leaf nodes the ALL cell carries
/// `all_measure` directly.
struct DwarfNode {
  std::vector<DwarfCell> cells;      ///< sorted by key, ascending
  NodeId all_child = kNullNode;      ///< interior nodes
  Measure all_measure = 0;           ///< leaf nodes
  uint16_t level = 0;                ///< 0-based dimension index
  bool all_coalesced = false;        ///< ALL pointer aliases a cell subtree

  /// Binary search for \p key; nullptr when absent.
  const DwarfCell* FindCell(DimKey key) const;
};

/// \brief Aggregate statistics about a cube's physical structure.
struct CubeStats {
  uint64_t node_count = 0;
  uint64_t cell_count = 0;        ///< regular cells, excluding ALL cells
  uint64_t coalesced_all_count = 0;
  uint64_t tuple_count = 0;       ///< distinct input tuples
  uint64_t source_tuple_count = 0;  ///< raw tuples before duplicate merging
  /// Approximate in-memory bytes (arena + cell payloads).
  uint64_t approx_bytes = 0;
};

/// \brief An immutable DWARF cube. Build one with DwarfBuilder; query with
/// the functions in query.h; persist with the mappers in src/mapper.
class DwarfCube {
 public:
  DwarfCube() = default;

  const CubeSchema& schema() const { return schema_; }
  size_t num_dimensions() const { return schema_.num_dimensions(); }
  AggFn agg() const { return schema_.agg(); }

  NodeId root() const { return root_; }
  bool empty() const { return root_ == kNullNode; }

  const DwarfNode& node(NodeId id) const {
    // Fast path covers every from-scratch cube (one chunk) and, for merged
    // cubes, the newest chunk; older chunks binary-search by start id.
    const NodeChunk& last = chunks_.back();
    if (id >= last.begin) return (*last.nodes)[id - last.begin];
    return NodeInSharedChunk(id);
  }
  /// Arena extent (dead merge slots included) — the bound for id-indexed
  /// lookup tables. Reachable counts live in stats().node_count.
  size_t num_nodes() const { return num_nodes_; }
  /// Arena chunks: 1 for a from-scratch cube, +1 per incremental merge.
  size_t arena_chunks() const { return chunks_.size(); }

  /// True when \p level is the bottom (measure-carrying) level.
  bool IsLeafLevel(uint16_t level) const {
    return static_cast<size_t>(level) + 1 == num_dimensions();
  }

  /// Dictionary for dimension \p dim (decodes DimKey ids back to strings).
  const Dictionary& dictionary(size_t dim) const { return dictionaries_[dim]; }
  const std::vector<Dictionary>& dictionaries() const { return dictionaries_; }

  /// Min/max-rank subtree sidecar for ordered dimensions, or nullptr when no
  /// dimension is marked ordered. Rebuilt at every finalize point; range
  /// evaluators use it to skip subtrees disjoint from the query window.
  const RangeIndex* range_index() const { return range_index_.get(); }

  const CubeStats& stats() const { return stats_; }

  /// \brief Recomputes structural statistics by walking the arena.
  /// (Counts every node exactly once even though coalesced subtrees are
  /// reachable through several parents.)
  CubeStats ComputeStats() const;

  /// \brief Renders the cube as an indented tree for debugging and the
  /// quickstart example (mirrors Fig. 2). Intended for small cubes.
  std::string ToDebugString() const;

  /// \brief Structural equality: same schema shape, same tree contents.
  /// Used to verify that a cube rebuilt from a store round-trips.
  /// Compares the logical structure (keys, measures, ALL aggregates)
  /// independent of arena numbering.
  bool StructurallyEquals(const DwarfCube& other) const;

 private:
  friend class DwarfBuilder;
  friend class CubeAssembler;
  friend class CubeMerger;

  /// One immutable run of the arena: ids [begin, begin + nodes->size()).
  struct NodeChunk {
    NodeId begin = 0;
    std::shared_ptr<const std::vector<DwarfNode>> nodes;
  };

  /// Out-of-line slow path of node(): binary search over the chunk list.
  const DwarfNode& NodeInSharedChunk(NodeId id) const;

  /// Replaces the arena with a single chunk owning \p nodes (from-scratch
  /// builds and store-side reassembly).
  void AdoptArena(std::vector<DwarfNode> nodes);

  /// Shares \p base's chunks and appends \p tail as one new chunk whose ids
  /// start at base.num_nodes() (the incremental-merge publish path).
  void ShareArenaAndAppend(const DwarfCube& base, std::vector<DwarfNode> tail);

  /// Builds the ordered-dimension state — dictionary rank views plus the
  /// min/max-rank subtree index — for schemas with ordered dims (no-op and
  /// zero cost otherwise). Every finalize point (DwarfBuilder::Build,
  /// CubeAssembler::Finish, CubeMerger::Merge) calls this eagerly: cubes are
  /// shared immutably across server epochs, so building lazily on first
  /// query would be a data race.
  void FinalizeOrderedViews();

  CubeSchema schema_;
  std::vector<NodeChunk> chunks_;
  size_t num_nodes_ = 0;
  std::vector<Dictionary> dictionaries_;
  NodeId root_ = kNullNode;
  CubeStats stats_;
  std::shared_ptr<const RangeIndex> range_index_;
};

/// \brief Low-level assembler used by the store mappers to rebuild a cube
/// from persisted nodes/cells. Performs validation on Finish().
class CubeAssembler {
 public:
  explicit CubeAssembler(CubeSchema schema, std::vector<Dictionary> dictionaries)
      : schema_(std::move(schema)), dictionaries_(std::move(dictionaries)) {}

  /// Appends a node and returns its id.
  NodeId AddNode(DwarfNode node);

  void SetRoot(NodeId root) { root_ = root; }

  /// \brief Carries the input-tuple counts into the assembled cube's stats.
  /// They are a property of the feed, not of the node structure, so a cube
  /// reassembled from storage (or from an epoch snapshot file) would
  /// otherwise report zero tuples.
  void SetTupleCounts(uint64_t tuple_count, uint64_t source_tuple_count) {
    tuple_count_ = tuple_count;
    source_tuple_count_ = source_tuple_count;
  }

  /// Validates child references and level consistency, computes stats and
  /// produces the cube.
  Result<DwarfCube> Finish();

 private:
  CubeSchema schema_;
  std::vector<Dictionary> dictionaries_;
  std::vector<DwarfNode> nodes_;
  NodeId root_ = kNullNode;
  uint64_t tuple_count_ = 0;
  uint64_t source_tuple_count_ = 0;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_DWARF_CUBE_H_
