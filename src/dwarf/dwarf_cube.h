/// \file dwarf_cube.h
/// \brief The in-memory DWARF cube: a flat arena of nodes, each holding
/// sorted cells, plus per-node ALL aggregates with suffix coalescing (shared
/// subtrees). See Sismanis et al., SIGMOD 2002, and Fig. 2 of the paper.
///
/// Layout notes (DESIGN.md §12): the arena is two contiguous POD arrays — a
/// FlatNode array (24 bytes per node) and a DwarfCell array (16 bytes per
/// cell) — addressed by 32-bit index offsets instead of pointers. A node's
/// cells are one run [first_cell, first_cell + num_cells) of the cell array,
/// so traversal, the visited lookup tables used by the mappers, and
/// serialization are all O(1) per node with no heap indirection, and an epoch
/// drop frees two allocations per chunk instead of running one destructor per
/// node (both arrays are trivially destructible — enforced below).
///
/// The arena is a short list of immutable shared *chunks*: a cube built from
/// scratch owns a single chunk covering ids [0, n), and an incrementally
/// merged cube (dwarf::CubeMerger) shares every chunk of the prior epoch by
/// shared_ptr and appends one new chunk holding only the merged nodes. Ids
/// never move, so cross-epoch subtree sharing is free and copying a DwarfCube
/// costs O(chunks), not O(nodes). Ids left behind by a merge (interior nodes
/// the new epoch replaced) stay allocated but unreachable — every consumer
/// walks from the root (TraverseCube), so dead slots are never observed.
///
/// A chunk's arrays may be backed by owned vectors (built in memory) or by a
/// read-only mmap of a v3 snapshot file held alive by a keepalive handle —
/// replica load is then validate-and-point, not rebuild (snapshot.cc).

#ifndef SCDWARF_DWARF_DWARF_CUBE_H_
#define SCDWARF_DWARF_DWARF_CUBE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "dwarf/cube_schema.h"
#include "dwarf/dictionary.h"
#include "dwarf/range_index.h"
#include "dwarf/tuple.h"

namespace scdwarf::dwarf {

/// Index of a node in the cube's arena.
using NodeId = uint32_t;
constexpr NodeId kNullNode = static_cast<NodeId>(-1);

/// \brief One cell of a DWARF node: a dimension key plus either a pointer to
/// the node at the next level (interior) or the aggregated measure (leaf).
struct DwarfCell {
  DimKey key = 0;
  NodeId child = kNullNode;  ///< valid for interior cells only
  Measure measure = 0;       ///< valid for leaf cells only
};
static_assert(sizeof(DwarfCell) == 16, "DwarfCell is the 16-byte wire/arena unit");
static_assert(std::is_trivially_destructible_v<DwarfCell>,
              "cell arrays must free as whole blocks (no per-cell destructors)");

/// \brief One node of the flat arena: a run of the chunk's cell array plus
/// the ALL cell. 24 bytes, snapshot v3 writes this layout verbatim (with
/// first_cell globalized across chunks — snapshot.cc).
///
/// The ALL cell holds the aggregate over every cell of the node. For interior
/// nodes it points at the aggregate sub-dwarf (`all_child`); when the node has
/// a single cell that pointer is *suffix-coalesced*: it aliases the cell's own
/// child and the kAllCoalesced flag is set. For leaf nodes the ALL cell
/// carries `all_measure` directly.
struct FlatNode {
  static constexpr uint8_t kAllCoalesced = 1;  ///< flags bit 0

  uint32_t first_cell = 0;       ///< chunk-local index into the cell array
  uint32_t num_cells = 0;
  NodeId all_child = kNullNode;  ///< interior nodes
  uint16_t level = 0;            ///< 0-based dimension index
  uint8_t flags = 0;
  uint8_t pad = 0;
  Measure all_measure = 0;       ///< leaf nodes

  bool all_coalesced() const { return (flags & kAllCoalesced) != 0; }
};
static_assert(sizeof(FlatNode) == 24, "FlatNode is the 24-byte arena/snapshot unit");
static_assert(std::is_trivially_destructible_v<FlatNode>,
              "node arrays must free as whole blocks (no per-node destructors)");

/// \brief A read-only view over one node's sorted cell run. Vector-like API
/// so query/traversal code reads the same as with heap-owned cells.
class CellSpan {
 public:
  CellSpan() = default;
  CellSpan(const DwarfCell* data, size_t size) : data_(data), size_(size) {}

  const DwarfCell* begin() const { return data_; }
  const DwarfCell* end() const { return data_ + size_; }
  const DwarfCell* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const DwarfCell& operator[](size_t i) const { return data_[i]; }
  const DwarfCell& front() const { return data_[0]; }
  const DwarfCell& back() const { return data_[size_ - 1]; }

 private:
  const DwarfCell* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Value-type view of one arena node, returned by DwarfCube::node().
/// Cheap to copy (pointer + scalars); the cells it spans live as long as the
/// cube (or any cube sharing the chunk) does.
struct NodeView {
  CellSpan cells;                ///< sorted by key, ascending
  NodeId all_child = kNullNode;  ///< interior nodes
  Measure all_measure = 0;       ///< leaf nodes
  uint16_t level = 0;            ///< 0-based dimension index
  bool all_coalesced = false;    ///< ALL pointer aliases a cell subtree

  /// Binary search for \p key; nullptr when absent.
  const DwarfCell* FindCell(DimKey key) const;
};

/// \brief Builder-side transient node: heap-owned cells, flattened into the
/// arena at every finalize point (AdoptArena / ShareArenaAndAppend). Never
/// stored in a finished cube.
struct DwarfNode {
  std::vector<DwarfCell> cells;  ///< sorted by key, ascending
  NodeId all_child = kNullNode;  ///< interior nodes
  Measure all_measure = 0;       ///< leaf nodes
  uint16_t level = 0;            ///< 0-based dimension index
  bool all_coalesced = false;    ///< ALL pointer aliases a cell subtree

  /// Binary search for \p key; nullptr when absent.
  const DwarfCell* FindCell(DimKey key) const;
};

/// \brief Copies an arena node back into builder form (the merge path edits
/// imported subtree nodes before re-committing them).
DwarfNode MaterializeNode(const NodeView& view);

/// \brief One immutable chunk of the flat arena: a FlatNode array plus the
/// cell array its first_cell offsets index into. Backing storage is either
/// owned vectors or an external read-only block (an mmap'd snapshot) pinned
/// by a keepalive handle.
///
/// Tracks a process-wide live-instance count so tests can assert that epoch
/// drops free whole chunks instead of walking nodes.
class NodeArena {
 public:
  NodeArena() { live_instances_.fetch_add(1, std::memory_order_relaxed); }

  /// Takes ownership of materialized arrays (in-memory build paths).
  NodeArena(std::vector<FlatNode> nodes, std::vector<DwarfCell> cells)
      : owned_nodes_(std::move(nodes)), owned_cells_(std::move(cells)) {
    nodes_ = owned_nodes_.data();
    num_nodes_ = owned_nodes_.size();
    cells_ = owned_cells_.data();
    num_cells_ = owned_cells_.size();
    live_instances_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Points at externally owned arrays (an mmap'd snapshot); \p keepalive
  /// pins the backing storage for the arena's lifetime.
  NodeArena(const FlatNode* nodes, size_t num_nodes, const DwarfCell* cells,
            size_t num_cells, std::shared_ptr<const void> keepalive)
      : keepalive_(std::move(keepalive)),
        nodes_(nodes),
        num_nodes_(num_nodes),
        cells_(cells),
        num_cells_(num_cells) {
    live_instances_.fetch_add(1, std::memory_order_relaxed);
  }

  ~NodeArena() { live_instances_.fetch_sub(1, std::memory_order_relaxed); }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  const FlatNode* nodes() const { return nodes_; }
  size_t num_nodes() const { return num_nodes_; }
  const DwarfCell* cells() const { return cells_; }
  size_t num_cells() const { return num_cells_; }

  /// View of the node at chunk-local index \p local.
  NodeView View(size_t local) const {
    const FlatNode& node = nodes_[local];
    NodeView view;
    view.cells = CellSpan(cells_ + node.first_cell, node.num_cells);
    view.all_child = node.all_child;
    view.all_measure = node.all_measure;
    view.level = node.level;
    view.all_coalesced = node.all_coalesced();
    return view;
  }

  /// Process-wide count of live arenas — the epoch-drop test's probe.
  static int64_t live_instances() {
    return live_instances_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<int64_t> live_instances_;

  std::vector<FlatNode> owned_nodes_;
  std::vector<DwarfCell> owned_cells_;
  std::shared_ptr<const void> keepalive_;
  const FlatNode* nodes_ = nullptr;
  size_t num_nodes_ = 0;
  const DwarfCell* cells_ = nullptr;
  size_t num_cells_ = 0;
};

/// \brief Flattens builder-side nodes into one arena chunk (cells packed in
/// node order).
std::shared_ptr<const NodeArena> FlattenNodes(const std::vector<DwarfNode>& nodes);

/// \brief Aggregate statistics about a cube's physical structure.
struct CubeStats {
  uint64_t node_count = 0;
  uint64_t cell_count = 0;        ///< regular cells, excluding ALL cells
  uint64_t coalesced_all_count = 0;
  uint64_t tuple_count = 0;       ///< distinct input tuples
  uint64_t source_tuple_count = 0;  ///< raw tuples before duplicate merging
  /// Approximate in-memory bytes (arena + cell payloads).
  uint64_t approx_bytes = 0;
};

/// \brief An immutable DWARF cube. Build one with DwarfBuilder; query with
/// the functions in query.h; persist with the mappers in src/mapper.
class DwarfCube {
 public:
  DwarfCube() = default;

  const CubeSchema& schema() const { return schema_; }
  size_t num_dimensions() const { return schema_.num_dimensions(); }
  AggFn agg() const { return schema_.agg(); }

  NodeId root() const { return root_; }
  bool empty() const { return root_ == kNullNode; }

  NodeView node(NodeId id) const {
    // Fast path covers every from-scratch cube (one chunk) and, for merged
    // cubes, the newest chunk; older chunks binary-search by start id.
    const NodeChunk& last = chunks_.back();
    if (id >= last.begin) return last.arena->View(id - last.begin);
    return NodeInSharedChunk(id);
  }
  /// Arena extent (dead merge slots included) — the bound for id-indexed
  /// lookup tables. Reachable counts live in stats().node_count.
  size_t num_nodes() const { return num_nodes_; }
  /// Arena chunks: 1 for a from-scratch cube, +1 per incremental merge.
  size_t arena_chunks() const { return chunks_.size(); }

  /// True when \p level is the bottom (measure-carrying) level.
  bool IsLeafLevel(uint16_t level) const {
    return static_cast<size_t>(level) + 1 == num_dimensions();
  }

  /// Dictionary for dimension \p dim (decodes DimKey ids back to strings).
  const Dictionary& dictionary(size_t dim) const { return dictionaries_[dim]; }
  const std::vector<Dictionary>& dictionaries() const { return dictionaries_; }

  /// Min/max-rank subtree sidecar for ordered dimensions, or nullptr when no
  /// dimension is marked ordered. Rebuilt at every finalize point; range
  /// evaluators use it to skip subtrees disjoint from the query window.
  const RangeIndex* range_index() const { return range_index_.get(); }

  const CubeStats& stats() const { return stats_; }

  /// \brief Recomputes structural statistics by walking the arena.
  /// (Counts every node exactly once even though coalesced subtrees are
  /// reachable through several parents.)
  CubeStats ComputeStats() const;

  /// \brief Builds a cube directly over a validated single-chunk flat arena —
  /// the snapshot v3 load path (validate-and-point instead of rebuild).
  /// Validates id bounds, level monotonicity (which also rules out cycles)
  /// and strict cell sort; \p stats is trusted from the snapshot header so no
  /// arena walk happens. FinalizeOrderedViews still runs (rank views are not
  /// persisted).
  static Result<DwarfCube> FromFlatArena(CubeSchema schema,
                                         std::vector<Dictionary> dictionaries,
                                         std::shared_ptr<const NodeArena> arena,
                                         NodeId root, const CubeStats& stats);

  /// \brief Renders the cube as an indented tree for debugging and the
  /// quickstart example (mirrors Fig. 2). Intended for small cubes.
  std::string ToDebugString() const;

  /// \brief Structural equality: same schema shape, same tree contents.
  /// Used to verify that a cube rebuilt from a store round-trips.
  /// Compares the logical structure (keys, measures, ALL aggregates)
  /// independent of arena numbering.
  bool StructurallyEquals(const DwarfCube& other) const;

 private:
  friend class DwarfBuilder;
  friend class CubeAssembler;
  friend class CubeMerger;

  /// One immutable run of the arena: ids [begin, begin + arena->num_nodes()).
  struct NodeChunk {
    NodeId begin = 0;
    std::shared_ptr<const NodeArena> arena;
  };

  /// Out-of-line slow path of node(): binary search over the chunk list.
  NodeView NodeInSharedChunk(NodeId id) const;

  /// Replaces the arena with a single chunk flattened from \p nodes
  /// (from-scratch builds and store-side reassembly).
  void AdoptArena(std::vector<DwarfNode> nodes);

  /// Shares \p base's chunks and appends \p tail, flattened, as one new
  /// chunk whose ids start at base.num_nodes() (the incremental-merge
  /// publish path).
  void ShareArenaAndAppend(const DwarfCube& base, std::vector<DwarfNode> tail);

  /// Builds the ordered-dimension state — dictionary rank views plus the
  /// min/max-rank subtree index — for schemas with ordered dims (no-op and
  /// zero cost otherwise). Every finalize point (DwarfBuilder::Build,
  /// CubeAssembler::Finish, CubeMerger::Merge) calls this eagerly: cubes are
  /// shared immutably across server epochs, so building lazily on first
  /// query would be a data race.
  void FinalizeOrderedViews();

  CubeSchema schema_;
  std::vector<NodeChunk> chunks_;
  size_t num_nodes_ = 0;
  std::vector<Dictionary> dictionaries_;
  NodeId root_ = kNullNode;
  CubeStats stats_;
  std::shared_ptr<const RangeIndex> range_index_;
};

/// \brief Low-level assembler used by the store mappers to rebuild a cube
/// from persisted nodes/cells. Performs validation on Finish().
class CubeAssembler {
 public:
  explicit CubeAssembler(CubeSchema schema, std::vector<Dictionary> dictionaries)
      : schema_(std::move(schema)), dictionaries_(std::move(dictionaries)) {}

  /// Appends a node and returns its id.
  NodeId AddNode(DwarfNode node);

  void SetRoot(NodeId root) { root_ = root; }

  /// \brief Carries the input-tuple counts into the assembled cube's stats.
  /// They are a property of the feed, not of the node structure, so a cube
  /// reassembled from storage (or from an epoch snapshot file) would
  /// otherwise report zero tuples.
  void SetTupleCounts(uint64_t tuple_count, uint64_t source_tuple_count) {
    tuple_count_ = tuple_count;
    source_tuple_count_ = source_tuple_count;
  }

  /// Validates child references and level consistency, computes stats and
  /// produces the cube.
  Result<DwarfCube> Finish();

 private:
  CubeSchema schema_;
  std::vector<Dictionary> dictionaries_;
  std::vector<DwarfNode> nodes_;
  NodeId root_ = kNullNode;
  uint64_t tuple_count_ = 0;
  uint64_t source_tuple_count_ = 0;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_DWARF_CUBE_H_
