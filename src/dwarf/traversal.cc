#include "dwarf/traversal.h"

#include <algorithm>
#include <deque>

namespace scdwarf::dwarf {

namespace {

Status VisitOneNode(const DwarfCube& cube, NodeId id, const CubeVisitor& visitor,
                    bool leaf) {
  const NodeView node = cube.node(id);
  if (visitor.on_node) {
    SCD_RETURN_IF_ERROR(visitor.on_node(id, node));
  }
  if (visitor.on_cell) {
    for (const DwarfCell& cell : node.cells) {
      SCD_RETURN_IF_ERROR(visitor.on_cell(id, cell, leaf));
    }
  }
  if (visitor.on_all_cell) {
    SCD_RETURN_IF_ERROR(visitor.on_all_cell(id, node, leaf));
  }
  return Status::OK();
}

/// Appends a node's unvisited children (cell children plus the ALL child).
void PushChildren(const DwarfCube& cube, NodeId id, std::vector<bool>* visited,
                  std::deque<NodeId>* queue, bool front) {
  const NodeView node = cube.node(id);
  if (cube.IsLeafLevel(node.level)) return;
  // For depth-first order children are pushed to the front in reverse so the
  // first cell's subtree is processed first, mirroring §4's description.
  std::vector<NodeId> children;
  children.reserve(node.cells.size() + 1);
  for (const DwarfCell& cell : node.cells) children.push_back(cell.child);
  children.push_back(node.all_child);
  if (front) {
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      if (!(*visited)[*it]) {
        (*visited)[*it] = true;
        queue->push_front(*it);
      }
    }
  } else {
    for (NodeId child : children) {
      if (!(*visited)[child]) {
        (*visited)[child] = true;
        queue->push_back(child);
      }
    }
  }
}

}  // namespace

Status TraverseCube(const DwarfCube& cube, TraversalOrder order,
                    const CubeVisitor& visitor) {
  if (cube.empty()) return Status::OK();
  std::vector<bool> visited(cube.num_nodes(), false);
  std::deque<NodeId> queue;
  visited[cube.root()] = true;
  queue.push_back(cube.root());
  bool depth_first = order == TraversalOrder::kDepthFirst;
  while (!queue.empty()) {
    NodeId id = queue.front();
    queue.pop_front();
    bool leaf = cube.IsLeafLevel(cube.node(id).level);
    SCD_RETURN_IF_ERROR(VisitOneNode(cube, id, visitor, leaf));
    PushChildren(cube, id, &visited, &queue, depth_first);
  }
  return Status::OK();
}

std::vector<NodeId> CollectReachableNodes(const DwarfCube& cube,
                                          TraversalOrder order) {
  std::vector<NodeId> ids;
  ids.reserve(cube.num_nodes());
  CubeVisitor visitor;
  visitor.on_node = [&ids](NodeId id, const NodeView&) {
    ids.push_back(id);
    return Status::OK();
  };
  // Traversal over an in-memory cube cannot fail; assert-free ignore.
  (void)TraverseCube(cube, order, visitor);
  return ids;
}

std::vector<std::vector<NodeId>> ComputeParentIds(const DwarfCube& cube) {
  std::vector<std::vector<NodeId>> parents(cube.num_nodes());
  auto add_parent = [&parents](NodeId child, NodeId parent) {
    std::vector<NodeId>& list = parents[child];
    if (list.empty() || list.back() != parent) list.push_back(parent);
  };
  // Walk reachable nodes only, in ascending id order: a merged cube's arena
  // carries dead nodes from prior epochs, and scanning them would record
  // phantom parents for subtrees the new epoch still shares.
  std::vector<NodeId> reachable =
      CollectReachableNodes(cube, TraversalOrder::kBreadthFirst);
  std::sort(reachable.begin(), reachable.end());
  for (NodeId id : reachable) {
    const NodeView node = cube.node(id);
    if (cube.IsLeafLevel(node.level)) continue;
    for (const DwarfCell& cell : node.cells) add_parent(cell.child, id);
    add_parent(node.all_child, id);
  }
  return parents;
}

}  // namespace scdwarf::dwarf
