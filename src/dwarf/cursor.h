/// \file cursor.h
/// \brief Resumable row enumeration over a DwarfCube: the traversal state of
/// Slice / RollUp captured in an explicit stack so it can emit a bounded
/// number of rows per call and pick up exactly where it stopped.
///
/// This is what the query service's cursor sessions page with: a RowCursor
/// opened against one cube snapshot yields, across any sequence of Next()
/// calls with any page sizes, exactly the row sequence the one-shot
/// dwarf::Slice / dwarf::RollUp would return — same rows, same order.
///
/// A RowCursor holds a plain pointer to the cube; the caller owns the cube
/// and must keep it alive for the cursor's lifetime (the serving layer pins
/// the epoch snapshot's shared_ptr next to the cursor for this reason).

#ifndef SCDWARF_DWARF_CURSOR_H_
#define SCDWARF_DWARF_CURSOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/query.h"

namespace scdwarf::dwarf {

/// \brief Paused depth-first enumeration of slice/rollup rows.
class RowCursor {
 public:
  /// Cursor over the rows of dwarf::Slice(cube, fixed_dim, key).
  static Result<RowCursor> OverSlice(const DwarfCube& cube, size_t fixed_dim,
                                     DimKey key);

  /// Cursor over the rows of dwarf::RollUp(cube, group_dims, filters).
  /// Row keys come back in requested \p group_dims order, and \p filters
  /// (optional, copied) restricts grouped ordered dims to rank windows with
  /// the same subtree pruning as the one-shot roll-up — the paged row
  /// sequence stays byte-identical to the one-shot rows in every case.
  static Result<RowCursor> OverRollUp(const DwarfCube& cube,
                                      const std::vector<size_t>& group_dims,
                                      const RankFilters* filters = nullptr);

  /// \brief Appends up to \p max_rows next rows to \p out and returns how
  /// many were produced (< max_rows only when the traversal finished).
  /// Calling Next on an exhausted cursor appends nothing.
  size_t Next(size_t max_rows, std::vector<SliceRow>* out);

  /// True once every row has been emitted.
  bool done() const { return stack_.empty(); }

  /// Rows emitted so far across all Next() calls.
  uint64_t rows_emitted() const { return rows_emitted_; }

 private:
  /// One suspended level of the recursive enumerator. Enumerated levels
  /// iterate cells through next_cell; pinned and rolled-up (ALL) levels
  /// descend or emit once, tracked by entered.
  struct Frame {
    NodeId node = kNullNode;
    uint16_t level = 0;
    size_t next_cell = 0;
    bool entered = false;
    bool pushed_label = false;  ///< pop labels_ when this frame pops
  };

  RowCursor(const DwarfCube& cube, std::vector<bool> enumerate,
            std::vector<std::optional<DimKey>> pinned, RankFilters filters,
            std::vector<size_t> order);

  void PopFrame();

  /// True when the subtree rooted at \p id cannot contain a row: some rank
  /// filter at or below \p level has an empty window, or the cube's range
  /// index proves the subtree's span disjoint from a window.
  bool Prunable(NodeId id, size_t level);

  /// Appends one result row holding the current labels (permuted to the
  /// caller's requested key order) and \p measure.
  void EmitRow(Measure measure, std::vector<SliceRow>* out);

  const DwarfCube* cube_ = nullptr;
  std::vector<bool> enumerate_;
  std::vector<std::optional<DimKey>> pinned_;
  RankFilters filters_;             ///< empty when the cursor has no windows
  const RangeIndex* ridx_ = nullptr;
  std::vector<size_t> order_;       ///< labels_ index per output key position
  bool order_identity_ = true;
  std::vector<Frame> stack_;
  std::vector<std::string> labels_;
  uint64_t rows_emitted_ = 0;
};

}  // namespace scdwarf::dwarf

#endif  // SCDWARF_DWARF_CURSOR_H_
