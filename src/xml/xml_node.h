/// \file xml_node.h
/// \brief DOM node model produced by the XML parser. Smart-city feeds are
/// small documents arriving at high rate, so the model favors construction
/// speed and cheap traversal over mutation ergonomics.

#ifndef SCDWARF_XML_XML_NODE_H_
#define SCDWARF_XML_XML_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace scdwarf::xml {

class XmlElement;

/// \brief An XML element: tag name, attributes, child elements and text.
///
/// Mixed content is simplified: all text children are concatenated into
/// text() in document order. This matches how the feed extractors consume
/// documents (leaf values only) and is the behaviour the pipeline in the
/// paper's prior work [Gui & Roantree 2013] relies on.
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Concatenated character data directly inside this element (trimmed).
  const std::string& text() const { return text_; }
  void AppendText(std::string_view text) { text_.append(text); }
  void SetText(std::string text) { text_ = std::move(text); }

  /// Attributes in document order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  void AddAttribute(std::string name, std::string value) {
    attributes_.emplace_back(std::move(name), std::move(value));
  }
  /// Returns the attribute value or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// Child elements in document order.
  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  XmlElement* AddChild(std::string name);

  /// Transfers ownership of an already-built subtree into this element.
  void AdoptChild(std::unique_ptr<XmlElement> child) {
    children_.push_back(std::move(child));
  }

  /// First child element with the given tag name, or nullptr.
  const XmlElement* FindChild(std::string_view name) const;

  /// All child elements with the given tag name.
  std::vector<const XmlElement*> FindChildren(std::string_view name) const;

  /// Total number of elements in this subtree including this element.
  size_t SubtreeSize() const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
};

/// \brief A parsed XML document owning its root element.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlElement> root)
      : root_(std::move(root)) {}

  const XmlElement* root() const { return root_.get(); }
  XmlElement* mutable_root() { return root_.get(); }
  void set_root(std::unique_ptr<XmlElement> root) { root_ = std::move(root); }

 private:
  std::unique_ptr<XmlElement> root_;
};

}  // namespace scdwarf::xml

#endif  // SCDWARF_XML_XML_NODE_H_
