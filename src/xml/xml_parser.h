/// \file xml_parser.h
/// \brief Recursive-descent XML parser covering the subset produced by
/// smart-city web feeds: elements, attributes, character data, CDATA,
/// comments, processing instructions, DOCTYPE skipping and the five named
/// entities plus numeric character references.
///
/// Not supported (rejected with ParseError where encountered): internal DTD
/// subsets with entity definitions, namespaces beyond treating ':' as a name
/// character.

#ifndef SCDWARF_XML_XML_PARSER_H_
#define SCDWARF_XML_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/xml_node.h"

namespace scdwarf::xml {

/// \brief Parses \p input into a document. Returns ParseError with
/// line:column context on malformed input.
Result<XmlDocument> ParseXml(std::string_view input);

/// \brief Serializes \p element (recursively) as indented XML.
std::string SerializeXml(const XmlElement& element, int indent = 0);

/// \brief Serializes a whole document with the XML declaration header.
std::string SerializeXml(const XmlDocument& document);

/// \brief Escapes the five XML special characters in character data.
std::string EscapeXmlText(std::string_view text);

namespace internal {

/// \brief Character-level cursor with line/column tracking, shared by the
/// parser; exposed for white-box tests.
class XmlCursor {
 public:
  explicit XmlCursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t lookahead) const {
    return pos_ + lookahead < input_.size() ? input_[pos_ + lookahead] : '\0';
  }
  char Advance();
  bool Consume(char expected);
  bool ConsumeLiteral(std::string_view literal);
  void SkipWhitespace();

  size_t position() const { return pos_; }
  int line() const { return line_; }
  int column() const { return column_; }

  /// Formats "line L, column C" for error messages.
  std::string Location() const;

  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace internal
}  // namespace scdwarf::xml

#endif  // SCDWARF_XML_XML_PARSER_H_
