#include "xml/xml_parser.h"

#include <cctype>

#include "common/strings.h"

namespace scdwarf::xml {

namespace internal {

char XmlCursor::Advance() {
  if (AtEnd()) return '\0';
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool XmlCursor::Consume(char expected) {
  if (Peek() != expected) return false;
  Advance();
  return true;
}

bool XmlCursor::ConsumeLiteral(std::string_view literal) {
  if (input_.size() - pos_ < literal.size()) return false;
  if (input_.compare(pos_, literal.size(), literal) != 0) return false;
  for (size_t i = 0; i < literal.size(); ++i) Advance();
  return true;
}

void XmlCursor::SkipWhitespace() {
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
    Advance();
  }
}

std::string XmlCursor::Location() const {
  return "line " + std::to_string(line_) + ", column " + std::to_string(column_);
}

}  // namespace internal

namespace {

using internal::XmlCursor;

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Parser over an XmlCursor producing XmlElement trees.
class Parser {
 public:
  explicit Parser(std::string_view input) : cursor_(input) {}

  Result<XmlDocument> ParseDocument() {
    SCD_RETURN_IF_ERROR(SkipProlog());
    SCD_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement());
    // Trailing misc: whitespace, comments, PIs.
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) break;
      if (cursor_.ConsumeLiteral("<!--")) {
        SCD_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cursor_.ConsumeLiteral("<?")) {
        SCD_RETURN_IF_ERROR(SkipUntil("?>"));
      } else {
        return Error("unexpected content after document element");
      }
    }
    return XmlDocument(std::move(root));
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at " + cursor_.Location());
  }

  Status SkipUntil(std::string_view terminator) {
    while (!cursor_.AtEnd()) {
      if (cursor_.ConsumeLiteral(terminator)) return Status::OK();
      cursor_.Advance();
    }
    return Error("unterminated construct, expected '" + std::string(terminator) +
                 "'");
  }

  Status SkipProlog() {
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.ConsumeLiteral("<?")) {
        SCD_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (cursor_.ConsumeLiteral("<!--")) {
        SCD_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cursor_.ConsumeLiteral("<!DOCTYPE")) {
        // Skip a DOCTYPE without an internal subset; reject subsets since we
        // do not implement entity definitions.
        while (!cursor_.AtEnd() && cursor_.Peek() != '>') {
          if (cursor_.Peek() == '[') {
            return Error("DOCTYPE internal subsets are not supported");
          }
          cursor_.Advance();
        }
        if (!cursor_.Consume('>')) return Error("unterminated DOCTYPE");
      } else {
        return Status::OK();
      }
    }
  }

  Result<std::string> ParseName() {
    if (!IsNameStartChar(cursor_.Peek())) {
      return Error("expected a name");
    }
    size_t begin = cursor_.position();
    while (IsNameChar(cursor_.Peek())) cursor_.Advance();
    return std::string(cursor_.Slice(begin, cursor_.position()));
  }

  /// Decodes one entity reference starting after the '&'.
  Result<std::string> ParseEntity() {
    size_t begin = cursor_.position();
    while (!cursor_.AtEnd() && cursor_.Peek() != ';') {
      if (cursor_.position() - begin > 10) {
        return Error("entity reference too long");
      }
      cursor_.Advance();
    }
    if (cursor_.AtEnd()) return Error("unterminated entity reference");
    std::string name(cursor_.Slice(begin, cursor_.position()));
    cursor_.Advance();  // ';'
    if (name == "lt") return std::string("<");
    if (name == "gt") return std::string(">");
    if (name == "amp") return std::string("&");
    if (name == "apos") return std::string("'");
    if (name == "quot") return std::string("\"");
    if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits(name);
      digits.remove_prefix(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.remove_prefix(1);
      }
      if (digits.empty()) return Error("empty character reference");
      char* end = nullptr;
      std::string buffer(digits);
      long code = std::strtol(buffer.c_str(), &end, base);
      if (end != buffer.c_str() + buffer.size() || code <= 0 || code > 0x10FFFF) {
        return Error("invalid character reference '&" + name + ";'");
      }
      return EncodeUtf8(static_cast<uint32_t>(code));
    }
    return Error("unknown entity '&" + name + ";'");
  }

  static std::string EncodeUtf8(uint32_t code) {
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  Result<std::string> ParseAttributeValue() {
    char quote = cursor_.Peek();
    if (quote != '"' && quote != '\'') {
      return Error("expected quoted attribute value");
    }
    cursor_.Advance();
    std::string value;
    while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
      char c = cursor_.Peek();
      if (c == '<') return Error("'<' not allowed in attribute value");
      if (c == '&') {
        cursor_.Advance();
        SCD_ASSIGN_OR_RETURN(std::string decoded, ParseEntity());
        value += decoded;
      } else {
        value.push_back(cursor_.Advance());
      }
    }
    if (!cursor_.Consume(quote)) return Error("unterminated attribute value");
    return value;
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    if (!cursor_.Consume('<')) return Error("expected '<'");
    SCD_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<XmlElement>(std::move(name));

    // Attributes.
    while (true) {
      cursor_.SkipWhitespace();
      char c = cursor_.Peek();
      if (c == '>' || c == '/') break;
      SCD_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      cursor_.SkipWhitespace();
      if (!cursor_.Consume('=')) return Error("expected '=' after attribute name");
      cursor_.SkipWhitespace();
      SCD_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      if (element->FindAttribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      element->AddAttribute(std::move(attr_name), std::move(attr_value));
    }

    if (cursor_.ConsumeLiteral("/>")) return element;
    if (!cursor_.Consume('>')) return Error("expected '>'");

    // Content.
    std::string text;
    while (true) {
      if (cursor_.AtEnd()) {
        return Error("unexpected end of input inside <" + element->name() + ">");
      }
      if (cursor_.ConsumeLiteral("<!--")) {
        SCD_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cursor_.ConsumeLiteral("<![CDATA[")) {
        size_t begin = cursor_.position();
        while (!cursor_.AtEnd()) {
          if (cursor_.PeekAt(0) == ']' && cursor_.PeekAt(1) == ']' &&
              cursor_.PeekAt(2) == '>') {
            break;
          }
          cursor_.Advance();
        }
        if (cursor_.AtEnd()) return Error("unterminated CDATA section");
        text.append(cursor_.Slice(begin, cursor_.position()));
        cursor_.ConsumeLiteral("]]>");
      } else if (cursor_.ConsumeLiteral("<?")) {
        SCD_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (cursor_.PeekAt(0) == '<' && cursor_.PeekAt(1) == '/') {
        break;
      } else if (cursor_.Peek() == '<') {
        SCD_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child, ParseElement());
        element->AdoptChild(std::move(child));
      } else if (cursor_.Peek() == '&') {
        cursor_.Advance();
        SCD_ASSIGN_OR_RETURN(std::string decoded, ParseEntity());
        text += decoded;
      } else {
        text.push_back(cursor_.Advance());
      }
    }

    // Closing tag.
    cursor_.ConsumeLiteral("</");
    SCD_ASSIGN_OR_RETURN(std::string close_name, ParseName());
    if (close_name != element->name()) {
      return Error("mismatched closing tag </" + close_name + "> for <" +
                   element->name() + ">");
    }
    cursor_.SkipWhitespace();
    if (!cursor_.Consume('>')) return Error("expected '>' in closing tag");

    element->SetText(std::string(StrTrim(text)));
    return element;
  }

  XmlCursor cursor_;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

std::string EscapeXmlText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '\'':
        out += "&apos;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {
void SerializeInto(const XmlElement& element, int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out->append(pad);
  out->push_back('<');
  out->append(element.name());
  for (const auto& [name, value] : element.attributes()) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(EscapeXmlText(value));
    out->push_back('"');
  }
  if (element.children().empty() && element.text().empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (element.children().empty()) {
    out->append(EscapeXmlText(element.text()));
    out->append("</");
    out->append(element.name());
    out->append(">\n");
    return;
  }
  out->push_back('\n');
  if (!element.text().empty()) {
    out->append(pad);
    out->append("  ");
    out->append(EscapeXmlText(element.text()));
    out->push_back('\n');
  }
  for (const auto& child : element.children()) {
    SerializeInto(*child, indent + 1, out);
  }
  out->append(pad);
  out->append("</");
  out->append(element.name());
  out->append(">\n");
}
}  // namespace

std::string SerializeXml(const XmlElement& element, int indent) {
  std::string out;
  SerializeInto(element, indent, &out);
  return out;
}

std::string SerializeXml(const XmlDocument& document) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if (document.root() != nullptr) {
    SerializeInto(*document.root(), 0, &out);
  }
  return out;
}

}  // namespace scdwarf::xml
