#include "xml/xml_path.h"

#include "common/strings.h"

namespace scdwarf::xml {

Result<XmlPath> XmlPath::Compile(std::string_view expression) {
  if (StrTrim(expression).empty()) {
    return Status::ParseError("empty path expression");
  }
  XmlPath path;
  path.expression_ = std::string(expression);
  std::vector<std::string> parts = StrSplit(expression, '/');
  for (size_t i = 0; i < parts.size(); ++i) {
    std::string step(StrTrim(parts[i]));
    if (step.empty()) {
      return Status::ParseError("empty step in path '" + path.expression_ + "'");
    }
    if (step[0] == '@') {
      if (i + 1 != parts.size()) {
        return Status::ParseError("attribute step must be last in path '" +
                                  path.expression_ + "'");
      }
      path.attribute_ = step.substr(1);
      if (path.attribute_.empty()) {
        return Status::ParseError("empty attribute name in path '" +
                                  path.expression_ + "'");
      }
    } else {
      path.steps_.push_back(std::move(step));
    }
  }
  return path;
}

std::vector<const XmlElement*> XmlPath::SelectElements(
    const XmlElement& context) const {
  std::vector<const XmlElement*> current = {&context};
  for (const std::string& step : steps_) {
    std::vector<const XmlElement*> next;
    for (const XmlElement* element : current) {
      for (const auto& child : element->children()) {
        if (step == "*" || child->name() == step) {
          next.push_back(child.get());
        }
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  if (!attribute_.empty()) {
    std::vector<const XmlElement*> with_attr;
    for (const XmlElement* element : current) {
      if (element->FindAttribute(attribute_) != nullptr) {
        with_attr.push_back(element);
      }
    }
    return with_attr;
  }
  return current;
}

std::vector<std::string> XmlPath::SelectValues(const XmlElement& context) const {
  std::vector<std::string> values;
  for (const XmlElement* element : SelectElements(context)) {
    if (!attribute_.empty()) {
      const std::string* attr = element->FindAttribute(attribute_);
      if (attr != nullptr) values.push_back(*attr);
    } else {
      values.push_back(element->text());
    }
  }
  return values;
}

Result<std::string> XmlPath::SelectFirstValue(const XmlElement& context) const {
  std::vector<std::string> values = SelectValues(context);
  if (values.empty()) {
    return Status::NotFound("path '" + expression_ + "' matched nothing under <" +
                            context.name() + ">");
  }
  return values.front();
}

}  // namespace scdwarf::xml
