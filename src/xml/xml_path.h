/// \file xml_path.h
/// \brief A tiny XPath-like selector used by the ETL extractors to address
/// feed fields, e.g. "stations/station/name" or "station/@id".
///
/// Grammar:  path     := step ('/' step)*
///           step     := NAME | '@' NAME | '*'
/// A path is evaluated relative to a context element. The final step may be
/// an attribute reference; intermediate steps must be element names or '*'
/// (any element).

#ifndef SCDWARF_XML_XML_PATH_H_
#define SCDWARF_XML_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/xml_node.h"

namespace scdwarf::xml {

/// \brief A compiled path expression.
class XmlPath {
 public:
  /// Compiles \p expression; returns ParseError on invalid syntax (empty
  /// steps, '@' on a non-final step, empty expression).
  static Result<XmlPath> Compile(std::string_view expression);

  /// Returns every element matched by this path under \p context.
  /// For attribute paths this returns the elements owning the attribute.
  std::vector<const XmlElement*> SelectElements(const XmlElement& context) const;

  /// Returns the string values matched by this path: attribute values for
  /// attribute paths, element text otherwise.
  std::vector<std::string> SelectValues(const XmlElement& context) const;

  /// Returns the first matched value, or NotFound.
  Result<std::string> SelectFirstValue(const XmlElement& context) const;

  const std::string& expression() const { return expression_; }

 private:
  XmlPath() = default;

  std::string expression_;
  std::vector<std::string> steps_;  // element name steps, "*" for wildcard
  std::string attribute_;           // non-empty for attribute paths
};

}  // namespace scdwarf::xml

#endif  // SCDWARF_XML_XML_PATH_H_
