#include "xml/xml_node.h"

namespace scdwarf::xml {

const std::string* XmlElement::FindAttribute(std::string_view name) const {
  for (const auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) return &attr_value;
  }
  return nullptr;
}

XmlElement* XmlElement::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return children_.back().get();
}

const XmlElement* XmlElement::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view name) const {
  std::vector<const XmlElement*> result;
  for (const auto& child : children_) {
    if (child->name() == name) result.push_back(child.get());
  }
  return result;
}

size_t XmlElement::SubtreeSize() const {
  size_t total = 1;
  for (const auto& child : children_) total += child->SubtreeSize();
  return total;
}

}  // namespace scdwarf::xml
