/// \file wire.h
/// \brief Wire format of the cube query service: length-prefixed JSON frames
/// carrying one request or response each.
///
/// A frame is a 4-byte big-endian payload length followed by that many bytes
/// of UTF-8 JSON. Requests are objects with an "op" field:
///
///   {"op":"point",     "keys":["Ireland", null, "Fenian St"]}
///   {"op":"aggregate", "predicates":[{"kind":"point","key":"D2"},
///                                    {"kind":"range","lo":0,"hi":4},
///                                    {"kind":"range","lo":"2013-07-01",
///                                                    "hi":"2013-07-31"},
///                                    {"kind":"set","keys":["Mon","Fri"]},
///                                    {"kind":"all"}]}
///   {"op":"slice",     "dim":"Area", "key":"D2"}
///   {"op":"rollup",    "dims":["Weekday","Area"]}
///   {"op":"rollup",    "dims":["Date","Area"],
///                      "where":[{"dim":"Date","lo":"2013-07-01",
///                                             "hi":"2013-07-31"}]}
///   {"op":"stats"}
///   {"op":"metrics"}
///   {"op":"metrics_text"}
///   {"op":"ping"}
///   {"op":"load_snapshot", "path":"/spool/epoch-...cf"}
///
/// "ping" is the fleet health probe: {"epoch":N,"uptime_s":S,"sessions":K}
/// with no cube work. "metrics_text" returns {"text":...} holding the metric
/// registries rendered in the Prometheus text exposition format.
/// "load_snapshot" asks a replica to publish the epoch snapshot file at
/// "path" (see src/replica/snapshot.h); servers reject it unless
/// ServerOptions.allow_snapshot_load is set.
///
/// Cursor sessions page large row results (slice/rollup) incrementally:
///
///   {"op":"query_open",  "query":{"op":"rollup","dims":["Weekday"]},
///                        "page_size":64}
///   {"op":"query_next",  "cursor":7}
///   {"op":"query_close", "cursor":7}
///
/// query_open pins the session to the server's current epoch snapshot and
/// answers {"cursor":id,"epoch":E,"page_size":N}; each query_next returns up
/// to page_size rows plus {"done":bool} — the pinned snapshot keeps serving
/// even across later epoch publishes, and the cursor is reclaimed once done
/// is reported (or on query_close / idle-TTL expiry). query_open accepts an
/// optional "epoch" field pinning the session to a *retained* prior epoch
/// instead of the current one (code "epoch_gone" when it is no longer
/// retained) — the router uses this to fail a mid-drain cursor over to
/// another replica at the exact epoch the session started on.
///
/// "point" takes one entry per dimension (null = ALL, the roll-up wildcard);
/// "aggregate" takes one predicate per dimension in schema order. Point and
/// set predicate keys are decoded dimension values. Range bounds come in two
/// forms that must not be mixed within one predicate:
///
///  - number bounds are encoded dictionary ids (the id order is first-seen
///    feed order, exactly the semantics of dwarf::DimPredicate::Range);
///  - string bounds are decoded dimension *values*, resolved through the
///    dimension's value-order rank view — valid only on dimensions the cube
///    schema marks ordered (InvalidArgument otherwise). Value order is
///    lexicographic, so ISO dates and zero-padded numerics are chronological.
///
/// "rollup" accepts an optional "where" array restricting grouped ordered
/// dimensions to inclusive value ranges (string bounds, same rank-view
/// semantics); each "where" entry's dim must appear in "dims" exactly once.
/// lo > hi is InvalidArgument for every range form, at this layer and in the
/// direct dwarf API alike.
///
/// Responses carry {"ok":bool, "epoch":N, "cached":bool} plus either a
/// result ("measure" or "rows") or {"code","error"} on failure. Overloaded
/// servers answer {"ok":false, "code":"overloaded", ...} without executing.
///
/// Format negotiation: {"op":"hello","formats":["json","bin1"]} offers the
/// server the wire formats this connection can speak. The server answers
/// {"format":"bin1"} (or "json") and, once "bin1" is chosen, decodes every
/// later frame on the connection by its first payload byte — 0xB1 for the
/// length-prefixed binary encoding of binwire.h, '{' for JSON. The complete
/// frame-level spec of both formats lives in docs/WIRE_PROTOCOL.md.

#ifndef SCDWARF_SERVER_WIRE_H_
#define SCDWARF_SERVER_WIRE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dwarf/cursor.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/query.h"

namespace scdwarf::server {

/// \brief Operation requested by a client.
enum class RequestOp {
  kPoint,
  kAggregate,
  kSlice,
  kRollUp,
  kStats,
  kMetrics,
  kQueryOpen,
  kQueryNext,
  kQueryClose,
  kPing,
  kMetricsText,
  kLoadSnapshot,
  kHello,
};

/// Number of RequestOp values, for op-indexed tables.
constexpr size_t kNumRequestOps = static_cast<size_t>(RequestOp::kHello) + 1;

/// Wire name of \p op ("point", "aggregate", ...).
const char* RequestOpName(RequestOp op);

/// \brief One per-dimension predicate of an "aggregate" request, still at
/// the string level (dictionary encoding happens per epoch snapshot).
struct WirePredicate {
  dwarf::DimPredicate::Kind kind = dwarf::DimPredicate::Kind::kAll;
  std::string key;                    ///< kPoint: decoded dimension value
  dwarf::DimKey lo = 0;               ///< kRange id form: encoded id bounds,
  dwarf::DimKey hi = 0;               ///< inclusive
  bool value_bounds = false;          ///< kRange: bounds are decoded values
  std::string lo_value;               ///< kRange value form, inclusive
  std::string hi_value;               ///< kRange value form, inclusive
  std::vector<std::string> keys;      ///< kSet: decoded dimension values
};

/// \brief One "where" entry of a rollup request: an inclusive value range
/// over a grouped ordered dimension.
struct WireRangeFilter {
  std::string dim;
  std::string lo;
  std::string hi;
};

/// \brief A parsed request. Only the fields of the active op are meaningful.
struct QueryRequest {
  RequestOp op = RequestOp::kStats;
  std::vector<std::optional<std::string>> point_keys;  ///< kPoint
  std::vector<WirePredicate> predicates;               ///< kAggregate
  std::string slice_dim;                               ///< kSlice
  std::string slice_key;                               ///< kSlice
  std::vector<std::string> rollup_dims;                ///< kRollUp
  std::vector<WireRangeFilter> rollup_where;           ///< kRollUp, optional
  /// kQueryOpen: the wrapped rows query (slice or rollup only).
  std::shared_ptr<QueryRequest> open_query;
  size_t page_size = 0;     ///< kQueryOpen
  uint64_t cursor_id = 0;   ///< kQueryNext / kQueryClose
  /// kQueryOpen: pin the session to this retained epoch instead of the
  /// current one (absent = current).
  std::optional<uint64_t> open_epoch;
  std::string snapshot_path;  ///< kLoadSnapshot
  /// kHello: wire formats the client can speak, in preference order
  /// (e.g. ["json","bin1"]). Empty means JSON only.
  std::vector<std::string> hello_formats;
};

/// Largest accepted query_open page_size (keeps one response frame bounded).
constexpr size_t kMaxPageSize = 1 << 16;

/// \brief Parses one request frame payload. InvalidArgument / ParseError on
/// malformed input.
Result<QueryRequest> ParseRequest(std::string_view request_json);

/// \brief Canonical serialization of \p request: fixed field order and
/// formatting, so syntactically different frames of the same logical query
/// normalize to one string. This is the result-cache key (paired with the
/// epoch by the cache itself).
std::string NormalizedCacheKey(const QueryRequest& request);

/// \brief Encodes the predicates of an "aggregate" request against \p cube's
/// dictionaries. Set members unknown to the dictionary are dropped (they can
/// match nothing); a point key or a fully-unknown set yields NotFound, which
/// matches AggregateQuery's no-tuples-match result. Value-form range bounds
/// resolve to a rank window over the dimension's rank view (the dimension
/// must be schema-ordered — InvalidArgument otherwise); a value range that
/// covers no dictionary entry yields NotFound like an unmatched point.
Result<std::vector<dwarf::DimPredicate>> EncodePredicates(
    const dwarf::DwarfCube& cube, const std::vector<WirePredicate>& predicates);

/// \brief Result of executing a request against one cube snapshot: the
/// response payload fields (a serialized JSON object such as {"measure":42}
/// or {"code":"not_found","error":"..."}) plus the ok flag.
struct ExecResult {
  bool ok = false;
  std::string payload_json = "{}";
};

/// \brief Executes a point/aggregate/slice/rollup request against \p cube.
/// Pure function of (cube, request) — the server calls it under an epoch
/// snapshot and the tests call it directly to verify responses byte-for-byte.
/// Session ops (query_open/next/close) are stateful and handled by the
/// server; passing one here yields an internal error result.
ExecResult ExecuteRequest(const dwarf::DwarfCube& cube,
                          const QueryRequest& request);

/// \brief Opens a resumable row cursor for the query wrapped by a
/// "query_open" request (\p query must be a slice or rollup). A slice key
/// the dictionary has never seen yields an immediately-exhausted cursor —
/// the same empty row set the one-shot path returns.
Result<dwarf::RowCursor> OpenRowCursor(const dwarf::DwarfCube& cube,
                                       const QueryRequest& query);

/// \brief Payload of one "query_next" page:
/// {"cursor":id,"rows":[...],"done":bool}. Rows are serialized exactly as
/// the one-shot slice/rollup payload serializes them, so concatenating the
/// pages of a session reproduces the one-shot "rows" array byte for byte.
std::string MakeCursorPagePayload(uint64_t cursor_id,
                                  const std::vector<dwarf::SliceRow>& rows,
                                  bool done);

/// \brief Appends \p text as a quoted, escaped JSON string to \p out.
void AppendJsonString(std::string_view text, std::string* out);

/// \brief Appends \p value formatted exactly as the JSON model serializes a
/// number (integers up to 1e15 in decimal, %.17g beyond), so hand-assembled
/// payloads stay byte-identical to JsonValue-built ones.
void AppendJsonMeasure(dwarf::Measure value, std::string* out);

/// \brief Appends the canonical "rows" array serialization of \p rows
/// ([{"keys":[...],"measure":N},...]) to \p out. Both the one-shot
/// slice/rollup payload and cursor pages are built from this, appending into
/// one reserved buffer instead of materializing a JsonValue tree per row.
void AppendRowsJson(const std::vector<dwarf::SliceRow>& rows,
                    std::string* out);

/// \brief Delta-epoch revalidation predicate: true when executing \p request
/// against a cube updated with tuples whose decoded key paths are \p changed
/// could produce a different result than on the previous epoch — i.e. the
/// request does NOT provably miss every changed prefix. Conservative: any
/// constraint it cannot decide at the string level (id-form range predicates,
/// unknown dimension names, arity mismatches) counts as touching. Value-form
/// ranges ARE decidable: rank order is lexicographic value order, so a
/// changed key outside [lo, hi] provably misses the range. Plain roll-ups
/// always touch (every new tuple lands in some group), but a roll-up with a
/// "where" clause misses when every changed path falls outside some filter's
/// value range.
bool RequestMayTouchPrefixes(
    const dwarf::CubeSchema& schema, const QueryRequest& request,
    const std::vector<std::vector<std::string>>& changed);

/// \brief Assembles a response frame payload from the envelope fields and a
/// serialized payload object (merged into the envelope).
std::string MakeResponse(bool ok, uint64_t epoch, bool cached,
                         const std::string& payload_json);

/// \brief Payload for a failed request: {"code":<slug>,"error":<message>}.
std::string MakeErrorPayload(const Status& status);

/// \brief Writes exactly \p size bytes to \p fd, looping over short writes
/// and retrying on EINTR — a signal delivered mid-write must not tear a
/// frame or surface as a spurious IoError. \p peer, when non-empty, names
/// the remote endpoint in every error message ("... (peer 127.0.0.1:4321)"),
/// so client-path callers (the router, the client pool) produce actionable
/// retry logs instead of anonymous I/O failures.
Status WriteFull(int fd, const char* data, size_t size,
                 std::string_view peer = {});

/// \brief Reads up to \p size bytes from \p fd, stopping early only at EOF
/// and retrying on EINTR. Returns the number of bytes actually read
/// (== \p size unless EOF arrived first). \p peer as in WriteFull; a socket
/// receive timeout (SO_RCVTIMEO) surfaces as IoError "... timed out".
Result<size_t> ReadFull(int fd, char* data, size_t size,
                        std::string_view peer = {});

/// \brief Writes one frame (4-byte big-endian length + payload) to \p fd.
Status WriteFrame(int fd, std::string_view payload, std::string_view peer = {});

/// \brief Reads one frame from \p fd. NotFound on clean EOF before a frame
/// starts; IoError on truncation, read failure, or a frame longer than
/// \p max_frame_bytes.
Result<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                              std::string_view peer = {});

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_WIRE_H_
