#include "server/query_server.h"

#include <sys/stat.h>

#include <cstdio>
#include <future>
#include <iterator>

#include "common/parallel.h"
#include "common/trace.h"
#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/snapshot.h"
#include "server/binwire.h"

namespace scdwarf::server {

namespace {

using json::JsonObject;
using json::JsonValue;

std::string MakeOverloadPayload(size_t max_queue_depth) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("overloaded"));
  payload.emplace_back(
      "error", JsonValue("server over capacity (max queue depth " +
                         std::to_string(max_queue_depth) + "); retry later"));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

std::string MakeTooManySessionsPayload(size_t max_sessions) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("too_many_sessions"));
  payload.emplace_back(
      "error",
      JsonValue("cursor session table full (max " +
                std::to_string(max_sessions) +
                "); close or drain a session and retry"));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

std::string MakeEpochGonePayload(const Status& status) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("epoch_gone"));
  payload.emplace_back("error", JsonValue(status.message()));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

/// True when \p request carries a value-range constraint — a value-bound
/// aggregate range or a rollup "where" clause — i.e. the constraints the
/// revalidation sweep can decide at the string level.
bool RequestHasRangeConstraint(const QueryRequest& request) {
  for (const WirePredicate& predicate : request.predicates) {
    if (predicate.kind == dwarf::DimPredicate::Kind::kRange &&
        predicate.value_bounds) {
      return true;
    }
  }
  return !request.rollup_where.empty();
}

void ForgetClientCursor(ClientContext* client, uint64_t cursor_id) {
  if (client == nullptr) return;
  auto& cursors = client->cursors;
  for (auto it = cursors.begin(); it != cursors.end(); ++it) {
    if (*it == cursor_id) {
      cursors.erase(it);
      return;
    }
  }
}

}  // namespace

QueryServer::QueryServer(dwarf::DwarfCube cube, ServerOptions options)
    : options_(std::move(options)),
      num_workers_(ResolveThreadCount(options_.num_workers)),
      store_(std::move(cube), options_.initial_epoch),
      cache_(options_.cache_capacity, options_.cache_shards, &registry_),
      schema_(store_.snapshot().cube->schema()),
      latency_us_(registry_.GetHistogram(
          "server_request_us", {},
          "end-to-end request latency including queueing (us)")),
      requests_total_(registry_.GetCounter(
          "server_requests_total", {},
          "completed requests, including error responses")),
      rejected_total_(registry_.GetCounter(
          "server_rejected_total", {},
          "requests rejected by admission control")),
      updates_applied_(registry_.GetCounter(
          "server_updates_applied_total", {},
          "epoch publishes via ApplyUpdate")),
      range_revalidations_(registry_.GetCounter(
          "server_range_revalidations_total", {},
          "cached range-constrained results carried across an epoch publish "
          "because every changed key provably missed the range")),
      sessions_opened_(registry_.GetCounter(
          "server_sessions_opened_total", {},
          "successful query_open calls")),
      sessions_expired_(registry_.GetCounter(
          "server_sessions_expired_total", {},
          "cursor sessions reaped by the idle TTL")),
      sessions_rejected_(registry_.GetCounter(
          "server_sessions_rejected_total", {},
          "query_open calls rejected by max_sessions")),
      sessions_open_(registry_.GetGauge(
          "server_sessions_open", {},
          "cursor sessions currently held open")),
      snapshots_published_(registry_.GetCounter(
          "server_snapshots_published_total", {},
          "epoch snapshot files spooled to snapshot_dir")),
      snapshot_write_us_(registry_.GetHistogram(
          "server_snapshot_write_us", {},
          "snapshot file serialize + atomic-rename latency (us)")),
      snapshots_loaded_(registry_.GetCounter(
          "replica_snapshots_loaded_total", {},
          "snapshot files loaded and published via LoadSnapshot")),
      snapshot_load_us_(registry_.GetHistogram(
          "replica_snapshot_load_us", {},
          "snapshot mmap + parse + publish latency (us)")),
      snapshot_bytes_(registry_.GetGauge(
          "replica_snapshot_bytes", {},
          "size of the most recently loaded snapshot file")),
      binary_connections_(registry_.GetCounter(
          "server_binary_connections_total", {},
          "connections that negotiated the bin1 wire format")),
      zero_copy_pages_(registry_.GetCounter(
          "server_zero_copy_pages_total", {},
          "cursor pages served on the native binary path, rows encoded "
          "straight from the cursor with no JSON materialization")) {
  for (size_t i = 0; i < kNumRequestOps; ++i) {
    op_latency_us_[i] = registry_.GetHistogram(
        "server_op_us", {{"op", RequestOpName(static_cast<RequestOp>(i))}},
        "per-op execute latency, excluding admission queueing (us)");
  }
  if (num_workers_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_workers_);
  }
  store_.set_full_rebuild(options_.full_rebuild);
  store_.set_retain_epochs(options_.retain_epochs);
  // Delta-epoch revalidation: carry a cached result over to the new epoch
  // iff its query provably misses every changed key prefix. The hook runs
  // under the store's update lock, so sweeps — and snapshot spools — arrive
  // in epoch order.
  store_.set_publish_hook(
      [this](uint64_t epoch,
             const std::vector<std::vector<std::string>>& changed) {
        cache_.Revalidate(epoch, [this, &changed](const std::string& key) {
          Result<QueryRequest> parsed = ParseRequest(key);
          bool keep = parsed.ok() &&
                      !RequestMayTouchPrefixes(schema_, *parsed, changed);
          if (keep && RequestHasRangeConstraint(*parsed)) {
            range_revalidations_->Increment();
          }
          return keep;
        });
        SpoolSnapshot(epoch);
      });
  // The spool starts with the initial cube so a replica fleet can bootstrap
  // before the first update arrives.
  SpoolSnapshot(options_.initial_epoch);
}

void QueryServer::SpoolSnapshot(uint64_t epoch) {
  if (options_.snapshot_dir.empty()) return;
  std::string path;
  Status status = WriteSnapshotFile(*store_.snapshot().cube, epoch, &path);
  if (!status.ok()) {
    // Serving must not die with the spool; the gap in published files is
    // visible to operators through server_snapshots_published_total.
    std::fprintf(stderr, "scdwarf: snapshot spool for epoch %llu failed: %s\n",
                 static_cast<unsigned long long>(epoch),
                 status.ToString().c_str());
    return;
  }
  if (options_.post_publish) options_.post_publish(epoch, path);
}

Status QueryServer::WriteSnapshotFile(const dwarf::DwarfCube& cube,
                                      uint64_t epoch, std::string* path_out) {
  Stopwatch watch;
  std::string path =
      options_.snapshot_dir + "/" + replica::SnapshotFileName(epoch);
  SCD_RETURN_IF_ERROR(replica::WriteCubeSnapshot(cube, epoch, path));
  snapshots_published_->Increment();
  snapshot_write_us_->Record(watch.ElapsedMicros());
  if (path_out != nullptr) *path_out = path;
  return Status::OK();
}

std::string QueryServer::Admitted(const std::function<std::string()>& run,
                                  const std::string& reject_response) {
  Stopwatch watch;
  size_t depth = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= options_.max_queue_depth) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_total_->Increment();
    return reject_response;
  }
  std::string response;
  if (pool_ == nullptr) {
    // Single-worker servers execute inline, the repo-wide num_threads == 1
    // convention; admission control above still bounds concurrent callers.
    if (options_.pre_execute_hook) options_.pre_execute_hook();
    response = run();
  } else {
    std::promise<std::string> promise;
    std::future<std::string> future = promise.get_future();
    // The caller blocks on the future below, so everything \p run captures
    // (the request bytes, the ClientContext) outlives the worker-side call.
    pool_->Submit([this, &run, &promise] {
      if (options_.pre_execute_hook) options_.pre_execute_hook();
      promise.set_value(run());
    });
    response = future.get();
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  requests_total_->Increment();
  latency_us_->Record(watch.ElapsedMicros());
  return response;
}

std::string QueryServer::HandleFrame(std::string_view request_json,
                                     ClientContext* client) {
  return Admitted(
      [this, request_json, client] { return Process(request_json, client); },
      MakeResponse(false, store_.epoch(), false,
                   MakeOverloadPayload(options_.max_queue_depth)));
}

std::string QueryServer::HandleBinaryFrame(std::string_view request_payload,
                                           ClientContext* client) {
  if (!binwire::IsBinaryPayload(request_payload)) {
    return HandleFrame(request_payload, client);
  }
  Result<QueryRequest> request = binwire::DecodeRequest(request_payload);
  if (!request.ok()) {
    return binwire::EncodeJsonPassthrough(MakeResponse(
        false, store_.epoch(), false, MakeErrorPayload(request.status())));
  }
  if (request->op != RequestOp::kQueryNext) {
    // Everything but paging routes through the canonical JSON path: same
    // parsing, same cache keys, same responses — wrapped as a passthrough.
    return binwire::EncodeJsonPassthrough(
        HandleFrame(NormalizedCacheKey(*request), client));
  }
  // Native page path: rows are encoded from the cursor straight into the
  // binary response, with no JSON materialized anywhere.
  const uint64_t cursor_id = request->cursor_id;
  return Admitted(
      [this, cursor_id, client] {
        Stopwatch watch;
        CursorPage page = FetchCursorPage(cursor_id, client);
        std::string response;
        if (page.ok) {
          response = binwire::EncodeCursorPage(page.epoch, cursor_id,
                                               page.rows, page.done);
          zero_copy_pages_->Increment();
        } else {
          response = binwire::EncodeJsonPassthrough(
              MakeResponse(false, page.epoch, false, page.error_payload));
        }
        op_latency_us_[static_cast<size_t>(RequestOp::kQueryNext)]->Record(
            watch.ElapsedMicros());
        return response;
      },
      binwire::EncodeJsonPassthrough(
          MakeResponse(false, store_.epoch(), false,
                       MakeOverloadPayload(options_.max_queue_depth))));
}

std::string QueryServer::Process(std::string_view request_json,
                                 ClientContext* client) {
  trace::ScopedSpan span("server.process");
  Result<QueryRequest> request = ParseRequest(request_json);
  EpochCubeStore::Snapshot snapshot = store_.snapshot();
  if (!request.ok()) {
    return MakeResponse(false, snapshot.epoch, false,
                        MakeErrorPayload(request.status()));
  }
  Stopwatch watch;
  std::string response = Dispatch(*request, snapshot, client);
  op_latency_us_[static_cast<size_t>(request->op)]->Record(
      watch.ElapsedMicros());
  return response;
}

std::string QueryServer::Dispatch(const QueryRequest& request,
                                  const EpochCubeStore::Snapshot& snapshot,
                                  ClientContext* client) {
  switch (request.op) {
    case RequestOp::kStats:
      return MakeResponse(true, snapshot.epoch, false, BuildStatsPayload());
    case RequestOp::kMetrics:
      return MakeResponse(true, snapshot.epoch, false, MetricsJson());
    case RequestOp::kPing: {
      JsonObject payload;
      payload.emplace_back("epoch",
                           JsonValue(static_cast<int64_t>(snapshot.epoch)));
      payload.emplace_back("uptime_s", JsonValue(uptime_.ElapsedSeconds()));
      payload.emplace_back("sessions",
                           JsonValue(static_cast<int64_t>(open_sessions())));
      return MakeResponse(true, snapshot.epoch, false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kMetricsText: {
      JsonObject payload;
      payload.emplace_back("text", JsonValue(MetricsText()));
      return MakeResponse(true, snapshot.epoch, false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kLoadSnapshot:
      return HandleLoadSnapshot(request);
    case RequestOp::kHello: {
      // Format negotiation. "bin1" is accepted only for callers with a
      // per-connection context to pin the choice to; everyone else (and any
      // client that did not offer it) stays on JSON.
      bool offers_binary = false;
      for (const std::string& format : request.hello_formats) {
        if (format == "bin1") offers_binary = true;
      }
      bool accept = offers_binary && client != nullptr;
      if (accept && !client->binary) {
        client->binary = true;
        binary_connections_->Increment();
      }
      JsonObject payload;
      payload.emplace_back("format", JsonValue(accept ? "bin1" : "json"));
      return MakeResponse(true, snapshot.epoch, false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kQueryOpen: {
      // An epoch-pinned open (router failover) re-opens against the retained
      // snapshot of that exact epoch, so the new cursor replays the same
      // pages byte for byte.
      if (request.open_epoch.has_value() &&
          *request.open_epoch != snapshot.epoch) {
        Result<EpochCubeStore::Snapshot> pinned =
            store_.SnapshotAt(*request.open_epoch);
        if (!pinned.ok()) {
          return MakeResponse(false, snapshot.epoch, false,
                              MakeEpochGonePayload(pinned.status()));
        }
        return HandleQueryOpen(request, *pinned, client);
      }
      return HandleQueryOpen(request, snapshot, client);
    }
    case RequestOp::kQueryNext:
      return HandleQueryNext(request, client);
    case RequestOp::kQueryClose:
      return HandleQueryClose(request, client);
    default:
      break;
  }
  std::string key = NormalizedCacheKey(request);
  if (std::optional<CachedResult> cached = cache_.Get(key, snapshot.epoch)) {
    return MakeResponse(cached->ok, snapshot.epoch, true, cached->payload_json);
  }
  ExecResult result = ExecuteRequest(*snapshot.cube, request);
  cache_.Put(key, snapshot.epoch, CachedResult{result.ok, result.payload_json});
  return MakeResponse(result.ok, snapshot.epoch, false, result.payload_json);
}

std::string QueryServer::HandleQueryOpen(
    const QueryRequest& request, const EpochCubeStore::Snapshot& snapshot,
    ClientContext* client) {
  Result<dwarf::RowCursor> cursor =
      OpenRowCursor(*snapshot.cube, *request.open_query);
  if (!cursor.ok()) {
    return MakeResponse(false, snapshot.epoch, false,
                        MakeErrorPayload(cursor.status()));
  }
  double now = uptime_.ElapsedSeconds();
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapIdleSessionsLocked(now);
    if (sessions_.size() >= options_.max_sessions) {
      sessions_rejected_->Increment();
      return MakeResponse(false, snapshot.epoch, false,
                          MakeTooManySessionsPayload(options_.max_sessions));
    }
    id = next_cursor_id_++;
    sessions_.emplace(
        id, std::make_shared<Session>(id, snapshot.epoch, snapshot.cube,
                                      std::move(*cursor), request.page_size,
                                      now));
    sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
  }
  sessions_opened_->Increment();
  if (client != nullptr) client->cursors.push_back(id);
  JsonObject payload;
  payload.emplace_back("cursor", JsonValue(static_cast<int64_t>(id)));
  payload.emplace_back("epoch",
                       JsonValue(static_cast<int64_t>(snapshot.epoch)));
  payload.emplace_back(
      "page_size", JsonValue(static_cast<int64_t>(request.page_size)));
  return MakeResponse(true, snapshot.epoch, false,
                      json::SerializeJson(JsonValue(std::move(payload))));
}

QueryServer::CursorPage QueryServer::FetchCursorPage(uint64_t cursor_id,
                                                     ClientContext* client) {
  CursorPage page;
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(cursor_id);
    if (it != sessions_.end()) {
      session = it->second;
      session->last_used = uptime_.ElapsedSeconds();
    }
  }
  if (session == nullptr) {
    page.epoch = store_.epoch();
    page.error_payload = MakeErrorPayload(Status::NotFound(
        "unknown cursor " + std::to_string(cursor_id) +
        " (closed, drained, or expired)"));
    return page;
  }
  {
    std::lock_guard<std::mutex> lock(session->mu);
    page.rows.reserve(session->page_size);
    session->cursor.Next(session->page_size, &page.rows);
    page.done = session->cursor.done();
  }
  if (page.done) {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(session->id);
    sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
    ForgetClientCursor(client, session->id);
  }
  page.ok = true;
  // The page reports the session's pinned epoch — what the rows were
  // computed against — not the store's possibly-newer epoch.
  page.epoch = session->epoch;
  return page;
}

std::string QueryServer::HandleQueryNext(const QueryRequest& request,
                                         ClientContext* client) {
  CursorPage page = FetchCursorPage(request.cursor_id, client);
  if (!page.ok) {
    return MakeResponse(false, page.epoch, false, page.error_payload);
  }
  return MakeResponse(
      true, page.epoch, false,
      MakeCursorPagePayload(request.cursor_id, page.rows, page.done));
}

std::string QueryServer::HandleQueryClose(const QueryRequest& request,
                                          ClientContext* client) {
  bool closed = false;
  uint64_t epoch = store_.epoch();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(request.cursor_id);
    if (it != sessions_.end()) {
      epoch = it->second->epoch;
      sessions_.erase(it);
      sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
      closed = true;
    }
    ForgetClientCursor(client, request.cursor_id);
  }
  JsonObject payload;
  payload.emplace_back("closed", JsonValue(closed));
  return MakeResponse(true, epoch, false,
                      json::SerializeJson(JsonValue(std::move(payload))));
}

std::string QueryServer::HandleLoadSnapshot(const QueryRequest& request) {
  if (!options_.allow_snapshot_load) {
    return MakeResponse(
        false, store_.epoch(), false,
        MakeErrorPayload(Status::FailedPrecondition(
            "load_snapshot is disabled on this server (replica mode only)")));
  }
  Result<uint64_t> epoch = LoadSnapshot(request.snapshot_path);
  if (!epoch.ok()) {
    return MakeResponse(false, store_.epoch(), false,
                        MakeErrorPayload(epoch.status()));
  }
  JsonObject payload;
  payload.emplace_back("loaded", JsonValue(true));
  payload.emplace_back("epoch", JsonValue(static_cast<int64_t>(*epoch)));
  payload.emplace_back(
      "nodes", JsonValue(static_cast<int64_t>(
                   store_.snapshot().cube->num_nodes())));
  return MakeResponse(true, *epoch, false,
                      json::SerializeJson(JsonValue(std::move(payload))));
}

Result<uint64_t> QueryServer::LoadSnapshot(const std::string& path) {
  Stopwatch watch;
  Result<replica::CubeSnapshot> loaded = replica::LoadCubeSnapshot(path);
  SCD_RETURN_IF_ERROR(loaded.status());
  if (loaded->cube.num_dimensions() != schema_.num_dimensions()) {
    return Status::InvalidArgument(
        "snapshot " + path + " has " +
        std::to_string(loaded->cube.num_dimensions()) +
        " dimensions; this server serves " +
        std::to_string(schema_.num_dimensions()));
  }
  SCD_ASSIGN_OR_RETURN(
      uint64_t epoch,
      store_.PublishCube(std::move(loaded->cube), loaded->epoch));
  // A snapshot publish carries no changed-prefix list, so no cached entry
  // can be proven unaffected: drop the cache wholesale. Open cursor
  // sessions keep their pinned snapshots and are untouched.
  cache_.Revalidate(epoch, [](const std::string&) { return false; });
  snapshots_loaded_->Increment();
  snapshot_load_us_->Record(watch.ElapsedMicros());
  struct stat file_info {};
  if (::stat(path.c_str(), &file_info) == 0) {
    snapshot_bytes_->Set(static_cast<int64_t>(file_info.st_size));
  }
  return epoch;
}

void QueryServer::CloseClientSessions(ClientContext& client) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (uint64_t id : client.cursors) sessions_.erase(id);
  sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
  client.cursors.clear();
}

size_t QueryServer::ReapIdleSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return ReapIdleSessionsLocked(uptime_.ElapsedSeconds());
}

size_t QueryServer::ReapIdleSessionsLocked(double now) {
  size_t reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second->last_used > options_.session_ttl_seconds) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  if (reaped > 0) {
    sessions_expired_->Increment(reaped);
    sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return reaped;
}

size_t QueryServer::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

Result<uint64_t> QueryServer::ApplyUpdate(
    const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
        tuples) {
  dwarf::UpdateProfile profile;
  SCD_ASSIGN_OR_RETURN(uint64_t epoch, store_.ApplyUpdate(tuples, &profile));
  updates_applied_->Increment();
  {
    std::lock_guard<std::mutex> lock(last_update_mu_);
    last_update_ = profile;
  }
  return epoch;
}

ServerStats QueryServer::Stats() const {
  ServerStats stats;
  stats.epoch = store_.epoch();
  stats.queries_total = requests_total_->value();
  stats.rejected_total = rejected_total_->value();
  stats.updates_applied = updates_applied_->value();
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0
                  ? static_cast<double>(stats.queries_total) /
                        stats.uptime_seconds
                  : 0;
  stats.latency_count = latency_us_->count();
  stats.latency_p50_us = latency_us_->Quantile(0.50);
  stats.latency_p90_us = latency_us_->Quantile(0.90);
  stats.latency_p99_us = latency_us_->Quantile(0.99);
  stats.cache = cache_.stats();
  uint64_t lookups = stats.cache.hits + stats.cache.misses;
  stats.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) /
                        static_cast<double>(lookups)
                  : 0;
  stats.sessions_open = open_sessions();
  stats.sessions_opened = sessions_opened_->value();
  stats.sessions_expired = sessions_expired_->value();
  stats.sessions_rejected = sessions_rejected_->value();
  stats.num_workers = num_workers_;
  stats.max_queue_depth = options_.max_queue_depth;
  {
    std::lock_guard<std::mutex> lock(last_update_mu_);
    stats.last_update = last_update_;
  }
  return stats;
}

std::string QueryServer::BuildStatsPayload() const {
  ServerStats stats = Stats();
  JsonObject latency;
  latency.emplace_back("count", JsonValue(static_cast<int64_t>(stats.latency_count)));
  latency.emplace_back("p50_us", JsonValue(stats.latency_p50_us));
  latency.emplace_back("p90_us", JsonValue(stats.latency_p90_us));
  latency.emplace_back("p99_us", JsonValue(stats.latency_p99_us));
  JsonObject cache;
  cache.emplace_back("hits", JsonValue(static_cast<int64_t>(stats.cache.hits)));
  cache.emplace_back("misses", JsonValue(static_cast<int64_t>(stats.cache.misses)));
  cache.emplace_back("evictions", JsonValue(static_cast<int64_t>(stats.cache.evictions)));
  cache.emplace_back("invalidations", JsonValue(static_cast<int64_t>(stats.cache.invalidations)));
  cache.emplace_back("revalidated", JsonValue(static_cast<int64_t>(stats.cache.revalidated)));
  cache.emplace_back("entries", JsonValue(static_cast<int64_t>(stats.cache.entries)));
  cache.emplace_back("hit_rate", JsonValue(stats.cache_hit_rate));
  JsonObject sessions;
  sessions.emplace_back("open", JsonValue(static_cast<int64_t>(stats.sessions_open)));
  sessions.emplace_back("opened", JsonValue(static_cast<int64_t>(stats.sessions_opened)));
  sessions.emplace_back("expired", JsonValue(static_cast<int64_t>(stats.sessions_expired)));
  sessions.emplace_back("rejected", JsonValue(static_cast<int64_t>(stats.sessions_rejected)));
  sessions.emplace_back("max_sessions", JsonValue(static_cast<int64_t>(options_.max_sessions)));
  sessions.emplace_back("ttl_seconds", JsonValue(options_.session_ttl_seconds));
  JsonObject last_update;
  last_update.emplace_back("base_tuples", JsonValue(static_cast<int64_t>(stats.last_update.base_tuples)));
  last_update.emplace_back("new_tuples", JsonValue(static_cast<int64_t>(stats.last_update.new_tuples)));
  last_update.emplace_back("rebuild_ms", JsonValue(stats.last_update.rebuild_ms));
  last_update.emplace_back("incremental", JsonValue(stats.last_update.incremental));
  last_update.emplace_back("delta_build_ms", JsonValue(stats.last_update.delta_build_ms));
  last_update.emplace_back("merge_ms", JsonValue(stats.last_update.merge_ms));
  last_update.emplace_back("nodes_reused", JsonValue(static_cast<int64_t>(stats.last_update.nodes_reused)));
  JsonObject inner;
  inner.emplace_back("epoch", JsonValue(static_cast<int64_t>(stats.epoch)));
  inner.emplace_back("queries_total", JsonValue(static_cast<int64_t>(stats.queries_total)));
  inner.emplace_back("rejected_total", JsonValue(static_cast<int64_t>(stats.rejected_total)));
  inner.emplace_back("updates_applied", JsonValue(static_cast<int64_t>(stats.updates_applied)));
  inner.emplace_back("uptime_seconds", JsonValue(stats.uptime_seconds));
  inner.emplace_back("qps", JsonValue(stats.qps));
  inner.emplace_back("latency", JsonValue(std::move(latency)));
  inner.emplace_back("cache", JsonValue(std::move(cache)));
  inner.emplace_back("sessions", JsonValue(std::move(sessions)));
  inner.emplace_back("num_workers", JsonValue(stats.num_workers));
  inner.emplace_back("max_queue_depth", JsonValue(static_cast<int64_t>(stats.max_queue_depth)));
  inner.emplace_back("last_update", JsonValue(std::move(last_update)));
  JsonObject payload;
  payload.emplace_back("stats", JsonValue(std::move(inner)));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

std::string QueryServer::MetricsJson() const {
  std::vector<metrics::MetricSnapshot> all = registry_.Snapshot();
  std::vector<metrics::MetricSnapshot> global =
      metrics::GlobalRegistry().Snapshot();
  all.insert(all.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  return "{\"metrics\":" + metrics::SnapshotToJson(all) + "}";
}

std::string QueryServer::MetricsText() const {
  std::vector<metrics::MetricSnapshot> all = registry_.Snapshot();
  std::vector<metrics::MetricSnapshot> global =
      metrics::GlobalRegistry().Snapshot();
  all.insert(all.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  return metrics::SnapshotToPrometheusText(all);
}

}  // namespace scdwarf::server
