#include "server/query_server.h"

#include <future>

#include "common/parallel.h"
#include "json/json_parser.h"
#include "json/json_value.h"

namespace scdwarf::server {

namespace {

using json::JsonObject;
using json::JsonValue;

std::string MakeOverloadPayload(size_t max_queue_depth) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("overloaded"));
  payload.emplace_back(
      "error", JsonValue("server over capacity (max queue depth " +
                         std::to_string(max_queue_depth) + "); retry later"));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

}  // namespace

QueryServer::QueryServer(dwarf::DwarfCube cube, ServerOptions options)
    : options_(std::move(options)),
      num_workers_(ResolveThreadCount(options_.num_workers)),
      store_(std::move(cube)),
      cache_(options_.cache_capacity, options_.cache_shards),
      latency_us_(FixedBucketHistogram::ForLatencyMicros()) {
  if (num_workers_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_workers_);
  }
  store_.set_publish_hook([this](uint64_t) { cache_.InvalidateAll(); });
}

std::string QueryServer::HandleFrame(std::string_view request_json) {
  Stopwatch watch;
  size_t depth = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= options_.max_queue_depth) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_total_.fetch_add(1, std::memory_order_relaxed);
    return MakeResponse(false, store_.epoch(), false,
                        MakeOverloadPayload(options_.max_queue_depth));
  }
  std::string response;
  if (pool_ == nullptr) {
    // Single-worker servers execute inline, the repo-wide num_threads == 1
    // convention; admission control above still bounds concurrent callers.
    if (options_.pre_execute_hook) options_.pre_execute_hook();
    response = Process(request_json);
  } else {
    std::promise<std::string> promise;
    std::future<std::string> future = promise.get_future();
    pool_->Submit([this, request = std::string(request_json), &promise] {
      if (options_.pre_execute_hook) options_.pre_execute_hook();
      promise.set_value(Process(request));
    });
    response = future.get();
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  latency_us_.Record(watch.ElapsedMicros());
  return response;
}

std::string QueryServer::Process(std::string_view request_json) {
  Result<QueryRequest> request = ParseRequest(request_json);
  EpochCubeStore::Snapshot snapshot = store_.snapshot();
  if (!request.ok()) {
    return MakeResponse(false, snapshot.epoch, false,
                        MakeErrorPayload(request.status()));
  }
  if (request->op == RequestOp::kStats) {
    return MakeResponse(true, snapshot.epoch, false, BuildStatsPayload());
  }
  std::string key = NormalizedCacheKey(*request);
  if (std::optional<CachedResult> cached = cache_.Get(key, snapshot.epoch)) {
    return MakeResponse(cached->ok, snapshot.epoch, true, cached->payload_json);
  }
  ExecResult result = ExecuteRequest(*snapshot.cube, *request);
  cache_.Put(key, snapshot.epoch, CachedResult{result.ok, result.payload_json});
  return MakeResponse(result.ok, snapshot.epoch, false, result.payload_json);
}

Result<uint64_t> QueryServer::ApplyUpdate(
    const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
        tuples) {
  dwarf::UpdateProfile profile;
  SCD_ASSIGN_OR_RETURN(uint64_t epoch, store_.ApplyUpdate(tuples, &profile));
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(last_update_mu_);
    last_update_ = profile;
  }
  return epoch;
}

ServerStats QueryServer::Stats() const {
  ServerStats stats;
  stats.epoch = store_.epoch();
  stats.queries_total = queries_total_.load(std::memory_order_relaxed);
  stats.rejected_total = rejected_total_.load(std::memory_order_relaxed);
  stats.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0
                  ? static_cast<double>(stats.queries_total) /
                        stats.uptime_seconds
                  : 0;
  stats.latency_count = latency_us_.count();
  stats.latency_p50_us = latency_us_.Quantile(0.50);
  stats.latency_p90_us = latency_us_.Quantile(0.90);
  stats.latency_p99_us = latency_us_.Quantile(0.99);
  stats.cache = cache_.stats();
  uint64_t lookups = stats.cache.hits + stats.cache.misses;
  stats.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) /
                        static_cast<double>(lookups)
                  : 0;
  stats.num_workers = num_workers_;
  stats.max_queue_depth = options_.max_queue_depth;
  {
    std::lock_guard<std::mutex> lock(last_update_mu_);
    stats.last_update = last_update_;
  }
  return stats;
}

std::string QueryServer::BuildStatsPayload() const {
  ServerStats stats = Stats();
  JsonObject latency;
  latency.emplace_back("count", JsonValue(static_cast<int64_t>(stats.latency_count)));
  latency.emplace_back("p50_us", JsonValue(stats.latency_p50_us));
  latency.emplace_back("p90_us", JsonValue(stats.latency_p90_us));
  latency.emplace_back("p99_us", JsonValue(stats.latency_p99_us));
  JsonObject cache;
  cache.emplace_back("hits", JsonValue(static_cast<int64_t>(stats.cache.hits)));
  cache.emplace_back("misses", JsonValue(static_cast<int64_t>(stats.cache.misses)));
  cache.emplace_back("evictions", JsonValue(static_cast<int64_t>(stats.cache.evictions)));
  cache.emplace_back("invalidations", JsonValue(static_cast<int64_t>(stats.cache.invalidations)));
  cache.emplace_back("entries", JsonValue(static_cast<int64_t>(stats.cache.entries)));
  cache.emplace_back("hit_rate", JsonValue(stats.cache_hit_rate));
  JsonObject last_update;
  last_update.emplace_back("base_tuples", JsonValue(static_cast<int64_t>(stats.last_update.base_tuples)));
  last_update.emplace_back("new_tuples", JsonValue(static_cast<int64_t>(stats.last_update.new_tuples)));
  last_update.emplace_back("rebuild_ms", JsonValue(stats.last_update.rebuild_ms));
  JsonObject inner;
  inner.emplace_back("epoch", JsonValue(static_cast<int64_t>(stats.epoch)));
  inner.emplace_back("queries_total", JsonValue(static_cast<int64_t>(stats.queries_total)));
  inner.emplace_back("rejected_total", JsonValue(static_cast<int64_t>(stats.rejected_total)));
  inner.emplace_back("updates_applied", JsonValue(static_cast<int64_t>(stats.updates_applied)));
  inner.emplace_back("uptime_seconds", JsonValue(stats.uptime_seconds));
  inner.emplace_back("qps", JsonValue(stats.qps));
  inner.emplace_back("latency", JsonValue(std::move(latency)));
  inner.emplace_back("cache", JsonValue(std::move(cache)));
  inner.emplace_back("num_workers", JsonValue(stats.num_workers));
  inner.emplace_back("max_queue_depth", JsonValue(static_cast<int64_t>(stats.max_queue_depth)));
  inner.emplace_back("last_update", JsonValue(std::move(last_update)));
  JsonObject payload;
  payload.emplace_back("stats", JsonValue(std::move(inner)));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

}  // namespace scdwarf::server
