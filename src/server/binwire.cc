#include "server/binwire.h"

#include <cstring>

namespace scdwarf::server::binwire {

namespace {

void PutU8(uint8_t value, std::string* out) {
  out->push_back(static_cast<char>(value));
}

void PutU16(uint16_t value, std::string* out) {
  for (int shift = 0; shift < 16; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU32(uint32_t value, std::string* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU64(uint64_t value, std::string* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutI64(int64_t value, std::string* out) {
  PutU64(static_cast<uint64_t>(value), out);
}

void PutString(std::string_view text, std::string* out) {
  PutU32(static_cast<uint32_t>(text.size()), out);
  out->append(text);
}

/// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Result<uint8_t> U8() {
    SCD_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint16_t> U16() {
    SCD_RETURN_IF_ERROR(Need(2));
    uint16_t value = 0;
    for (int i = 0; i < 2; ++i) {
      value |= static_cast<uint16_t>(
          static_cast<unsigned char>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += 2;
    return value;
  }

  Result<uint32_t> U32() {
    SCD_RETURN_IF_ERROR(Need(4));
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  Result<uint64_t> U64() {
    SCD_RETURN_IF_ERROR(Need(8));
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  Result<int64_t> I64() {
    SCD_ASSIGN_OR_RETURN(uint64_t raw, U64());
    return static_cast<int64_t>(raw);
  }

  Result<std::string> String() {
    SCD_ASSIGN_OR_RETURN(uint32_t size, U32());
    SCD_RETURN_IF_ERROR(Need(size));
    std::string value(data_.substr(pos_, size));
    pos_ += size;
    return value;
  }

  Result<std::string_view> Bytes(size_t size) {
    SCD_RETURN_IF_ERROR(Need(size));
    std::string_view value = data_.substr(pos_, size);
    pos_ += size;
    return value;
  }

  /// Rejects a declared element count no payload of this size could hold
  /// (each element needs at least \p min_element_bytes), so corrupt counts
  /// never drive a huge reserve or a long parse loop.
  Status CheckCount(uint64_t count, size_t min_element_bytes) const {
    if (count > remaining() / (min_element_bytes ? min_element_bytes : 1)) {
      return Status::InvalidArgument(
          "binary payload declares " + std::to_string(count) +
          " elements but only " + std::to_string(remaining()) +
          " bytes remain");
    }
    return Status::OK();
  }

  Status ExpectExhausted() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          "binary payload has " + std::to_string(remaining()) +
          " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Need(size_t bytes) const {
    if (data_.size() - pos_ < bytes) {
      return Status::InvalidArgument("binary payload truncated (need " +
                                     std::to_string(bytes) + " bytes at " +
                                     std::to_string(pos_) + ")");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Predicate kind tags on the wire (fixed, independent of the enum values).
constexpr uint8_t kPredAll = 0;
constexpr uint8_t kPredPoint = 1;
constexpr uint8_t kPredRange = 2;
constexpr uint8_t kPredSet = 3;

Status EncodeRequestBody(const QueryRequest& request, std::string* out);

Status EncodeOpFields(const QueryRequest& request, std::string* out) {
  switch (request.op) {
    case RequestOp::kPoint:
      PutU32(static_cast<uint32_t>(request.point_keys.size()), out);
      for (const std::optional<std::string>& key : request.point_keys) {
        PutU8(key.has_value() ? 1 : 0, out);
        if (key.has_value()) PutString(*key, out);
      }
      return Status::OK();
    case RequestOp::kAggregate:
      PutU32(static_cast<uint32_t>(request.predicates.size()), out);
      for (const WirePredicate& predicate : request.predicates) {
        switch (predicate.kind) {
          case dwarf::DimPredicate::Kind::kAll:
            PutU8(kPredAll, out);
            break;
          case dwarf::DimPredicate::Kind::kPoint:
            PutU8(kPredPoint, out);
            PutString(predicate.key, out);
            break;
          case dwarf::DimPredicate::Kind::kRange:
            PutU8(kPredRange, out);
            PutU8(predicate.value_bounds ? 1 : 0, out);
            if (predicate.value_bounds) {
              PutString(predicate.lo_value, out);
              PutString(predicate.hi_value, out);
            } else {
              PutU32(predicate.lo, out);
              PutU32(predicate.hi, out);
            }
            break;
          case dwarf::DimPredicate::Kind::kSet:
            PutU8(kPredSet, out);
            PutU32(static_cast<uint32_t>(predicate.keys.size()), out);
            for (const std::string& member : predicate.keys) {
              PutString(member, out);
            }
            break;
        }
      }
      return Status::OK();
    case RequestOp::kSlice:
      PutString(request.slice_dim, out);
      PutString(request.slice_key, out);
      return Status::OK();
    case RequestOp::kRollUp:
      PutU32(static_cast<uint32_t>(request.rollup_dims.size()), out);
      for (const std::string& dim : request.rollup_dims) PutString(dim, out);
      PutU32(static_cast<uint32_t>(request.rollup_where.size()), out);
      for (const WireRangeFilter& filter : request.rollup_where) {
        PutString(filter.dim, out);
        PutString(filter.lo, out);
        PutString(filter.hi, out);
      }
      return Status::OK();
    case RequestOp::kStats:
    case RequestOp::kMetrics:
    case RequestOp::kPing:
    case RequestOp::kMetricsText:
      return Status::OK();
    case RequestOp::kQueryOpen: {
      if (request.open_query == nullptr) {
        return Status::InvalidArgument(
            "query_open request has no inner query");
      }
      std::string inner;
      SCD_RETURN_IF_ERROR(EncodeRequestBody(*request.open_query, &inner));
      PutU32(static_cast<uint32_t>(inner.size()), out);
      out->append(inner);
      PutU64(request.page_size, out);
      PutU8(request.open_epoch.has_value() ? 1 : 0, out);
      if (request.open_epoch.has_value()) PutU64(*request.open_epoch, out);
      return Status::OK();
    }
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose:
      PutU64(request.cursor_id, out);
      return Status::OK();
    case RequestOp::kLoadSnapshot:
      PutString(request.snapshot_path, out);
      return Status::OK();
    case RequestOp::kHello:
      return Status::InvalidArgument(
          "hello is the negotiation op and only travels as JSON");
  }
  return Status::Internal("unreachable");
}

Status EncodeRequestBody(const QueryRequest& request, std::string* out) {
  PutU8(kMagic, out);
  PutU8(kVersion, out);
  PutU8(static_cast<uint8_t>(request.op), out);
  return EncodeOpFields(request, out);
}

Result<QueryRequest> DecodeRequestBody(Reader* in);

Status DecodeOpFields(RequestOp op, Reader* in, QueryRequest* request) {
  switch (op) {
    case RequestOp::kPoint: {
      SCD_ASSIGN_OR_RETURN(uint32_t count, in->U32());
      SCD_RETURN_IF_ERROR(in->CheckCount(count, 1));
      request->point_keys.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        SCD_ASSIGN_OR_RETURN(uint8_t has_value, in->U8());
        if (has_value == 0) {
          request->point_keys.push_back(std::nullopt);
        } else {
          SCD_ASSIGN_OR_RETURN(std::string key, in->String());
          request->point_keys.push_back(std::move(key));
        }
      }
      return Status::OK();
    }
    case RequestOp::kAggregate: {
      SCD_ASSIGN_OR_RETURN(uint32_t count, in->U32());
      SCD_RETURN_IF_ERROR(in->CheckCount(count, 1));
      request->predicates.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WirePredicate predicate;
        SCD_ASSIGN_OR_RETURN(uint8_t kind, in->U8());
        switch (kind) {
          case kPredAll:
            predicate.kind = dwarf::DimPredicate::Kind::kAll;
            break;
          case kPredPoint: {
            predicate.kind = dwarf::DimPredicate::Kind::kPoint;
            SCD_ASSIGN_OR_RETURN(predicate.key, in->String());
            break;
          }
          case kPredRange: {
            predicate.kind = dwarf::DimPredicate::Kind::kRange;
            SCD_ASSIGN_OR_RETURN(uint8_t value_bounds, in->U8());
            predicate.value_bounds = value_bounds != 0;
            if (predicate.value_bounds) {
              SCD_ASSIGN_OR_RETURN(predicate.lo_value, in->String());
              SCD_ASSIGN_OR_RETURN(predicate.hi_value, in->String());
            } else {
              SCD_ASSIGN_OR_RETURN(predicate.lo, in->U32());
              SCD_ASSIGN_OR_RETURN(predicate.hi, in->U32());
            }
            break;
          }
          case kPredSet: {
            predicate.kind = dwarf::DimPredicate::Kind::kSet;
            SCD_ASSIGN_OR_RETURN(uint32_t members, in->U32());
            SCD_RETURN_IF_ERROR(in->CheckCount(members, 4));
            predicate.keys.reserve(members);
            for (uint32_t j = 0; j < members; ++j) {
              SCD_ASSIGN_OR_RETURN(std::string member, in->String());
              predicate.keys.push_back(std::move(member));
            }
            break;
          }
          default:
            return Status::InvalidArgument(
                "unknown binary predicate kind " + std::to_string(kind));
        }
        request->predicates.push_back(std::move(predicate));
      }
      return Status::OK();
    }
    case RequestOp::kSlice: {
      SCD_ASSIGN_OR_RETURN(request->slice_dim, in->String());
      SCD_ASSIGN_OR_RETURN(request->slice_key, in->String());
      return Status::OK();
    }
    case RequestOp::kRollUp: {
      SCD_ASSIGN_OR_RETURN(uint32_t dims, in->U32());
      SCD_RETURN_IF_ERROR(in->CheckCount(dims, 4));
      request->rollup_dims.reserve(dims);
      for (uint32_t i = 0; i < dims; ++i) {
        SCD_ASSIGN_OR_RETURN(std::string dim, in->String());
        request->rollup_dims.push_back(std::move(dim));
      }
      SCD_ASSIGN_OR_RETURN(uint32_t filters, in->U32());
      SCD_RETURN_IF_ERROR(in->CheckCount(filters, 12));
      request->rollup_where.reserve(filters);
      for (uint32_t i = 0; i < filters; ++i) {
        WireRangeFilter filter;
        SCD_ASSIGN_OR_RETURN(filter.dim, in->String());
        SCD_ASSIGN_OR_RETURN(filter.lo, in->String());
        SCD_ASSIGN_OR_RETURN(filter.hi, in->String());
        request->rollup_where.push_back(std::move(filter));
      }
      return Status::OK();
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
    case RequestOp::kPing:
    case RequestOp::kMetricsText:
      return Status::OK();
    case RequestOp::kQueryOpen: {
      SCD_ASSIGN_OR_RETURN(uint32_t inner_size, in->U32());
      SCD_ASSIGN_OR_RETURN(std::string_view inner_bytes,
                           in->Bytes(inner_size));
      Reader inner(inner_bytes);
      SCD_ASSIGN_OR_RETURN(QueryRequest inner_request,
                           DecodeRequestBody(&inner));
      SCD_RETURN_IF_ERROR(inner.ExpectExhausted());
      request->open_query =
          std::make_shared<QueryRequest>(std::move(inner_request));
      SCD_ASSIGN_OR_RETURN(uint64_t page_size, in->U64());
      request->page_size = static_cast<size_t>(page_size);
      SCD_ASSIGN_OR_RETURN(uint8_t has_epoch, in->U8());
      if (has_epoch != 0) {
        SCD_ASSIGN_OR_RETURN(uint64_t epoch, in->U64());
        request->open_epoch = epoch;
      }
      return Status::OK();
    }
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose: {
      SCD_ASSIGN_OR_RETURN(request->cursor_id, in->U64());
      return Status::OK();
    }
    case RequestOp::kLoadSnapshot: {
      SCD_ASSIGN_OR_RETURN(request->snapshot_path, in->String());
      return Status::OK();
    }
    case RequestOp::kHello:
      return Status::InvalidArgument(
          "hello is the negotiation op and only travels as JSON");
  }
  return Status::InvalidArgument("unknown binary op");
}

Result<QueryRequest> DecodeRequestBody(Reader* in) {
  SCD_ASSIGN_OR_RETURN(uint8_t magic, in->U8());
  if (magic != kMagic) {
    return Status::InvalidArgument("binary request magic mismatch");
  }
  SCD_ASSIGN_OR_RETURN(uint8_t version, in->U8());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported binary wire version " +
                                   std::to_string(version));
  }
  SCD_ASSIGN_OR_RETURN(uint8_t op_byte, in->U8());
  if (op_byte >= kNumRequestOps) {
    return Status::InvalidArgument("unknown binary op " +
                                   std::to_string(op_byte));
  }
  QueryRequest request;
  request.op = static_cast<RequestOp>(op_byte);
  SCD_RETURN_IF_ERROR(DecodeOpFields(request.op, in, &request));
  return request;
}

}  // namespace

Result<std::string> EncodeRequest(const QueryRequest& request) {
  std::string out;
  out.reserve(64);
  SCD_RETURN_IF_ERROR(EncodeRequestBody(request, &out));
  return out;
}

Result<QueryRequest> DecodeRequest(std::string_view payload) {
  Reader in(payload);
  SCD_ASSIGN_OR_RETURN(QueryRequest request, DecodeRequestBody(&in));
  SCD_RETURN_IF_ERROR(in.ExpectExhausted());
  return request;
}

std::string EncodeJsonPassthrough(std::string_view response_json) {
  std::string out;
  out.reserve(response_json.size() + 8);
  PutU8(kMagic, &out);
  PutU8(kKindJsonPassthrough, &out);
  PutString(response_json, &out);
  return out;
}

std::string EncodeCursorPage(uint64_t epoch, uint64_t cursor_id,
                             const std::vector<dwarf::SliceRow>& rows,
                             bool done) {
  size_t bytes = 2 + 8 + 8 + 1 + 4;
  for (const dwarf::SliceRow& row : rows) {
    bytes += 2 + 8;
    for (const std::string& key : row.keys) bytes += 4 + key.size();
  }
  std::string out;
  out.reserve(bytes);
  PutU8(kMagic, &out);
  PutU8(kKindCursorPage, &out);
  PutU64(epoch, &out);
  PutU64(cursor_id, &out);
  PutU8(done ? 1 : 0, &out);
  PutU32(static_cast<uint32_t>(rows.size()), &out);
  for (const dwarf::SliceRow& row : rows) {
    PutU16(static_cast<uint16_t>(row.keys.size()), &out);
    for (const std::string& key : row.keys) PutString(key, &out);
    PutI64(row.measure, &out);
  }
  return out;
}

Result<std::string> DecodeResponse(std::string_view payload) {
  Reader in(payload);
  SCD_ASSIGN_OR_RETURN(uint8_t magic, in.U8());
  if (magic != kMagic) {
    return Status::InvalidArgument("binary response magic mismatch");
  }
  SCD_ASSIGN_OR_RETURN(uint8_t kind, in.U8());
  if (kind == kKindJsonPassthrough) {
    SCD_ASSIGN_OR_RETURN(std::string response, in.String());
    SCD_RETURN_IF_ERROR(in.ExpectExhausted());
    return response;
  }
  if (kind != kKindCursorPage) {
    return Status::InvalidArgument("unknown binary response kind " +
                                   std::to_string(kind));
  }
  SCD_ASSIGN_OR_RETURN(uint64_t epoch, in.U64());
  SCD_ASSIGN_OR_RETURN(uint64_t cursor_id, in.U64());
  SCD_ASSIGN_OR_RETURN(uint8_t done, in.U8());
  SCD_ASSIGN_OR_RETURN(uint32_t num_rows, in.U32());
  SCD_RETURN_IF_ERROR(in.CheckCount(num_rows, 10));
  std::vector<dwarf::SliceRow> rows;
  rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    dwarf::SliceRow row;
    SCD_ASSIGN_OR_RETURN(uint16_t num_keys, in.U16());
    SCD_RETURN_IF_ERROR(in.CheckCount(num_keys, 4));
    row.keys.reserve(num_keys);
    for (uint16_t k = 0; k < num_keys; ++k) {
      SCD_ASSIGN_OR_RETURN(std::string key, in.String());
      row.keys.push_back(std::move(key));
    }
    SCD_ASSIGN_OR_RETURN(row.measure, in.I64());
    rows.push_back(std::move(row));
  }
  SCD_RETURN_IF_ERROR(in.ExpectExhausted());
  // Reconstruct the canonical JSON response through the same payload
  // builders the JSON path uses, so the bytes a binary client hands back up
  // are indistinguishable from a JSON connection's.
  return MakeResponse(true, epoch, false,
                      MakeCursorPagePayload(cursor_id, rows, done != 0));
}

Result<CursorPageHeader> PeekCursorPage(std::string_view payload) {
  Reader in(payload);
  SCD_ASSIGN_OR_RETURN(uint8_t magic, in.U8());
  SCD_ASSIGN_OR_RETURN(uint8_t kind, in.U8());
  if (magic != kMagic || kind != kKindCursorPage) {
    return Status::InvalidArgument("not a binary cursor page");
  }
  CursorPageHeader header;
  SCD_ASSIGN_OR_RETURN(header.epoch, in.U64());
  SCD_ASSIGN_OR_RETURN(header.cursor_id, in.U64());
  SCD_ASSIGN_OR_RETURN(uint8_t done, in.U8());
  header.done = done != 0;
  SCD_ASSIGN_OR_RETURN(header.num_rows, in.U32());
  return header;
}

}  // namespace scdwarf::server::binwire
